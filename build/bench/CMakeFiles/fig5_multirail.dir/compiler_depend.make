# Empty compiler generated dependencies file for fig5_multirail.
# This may be replaced when dependencies are built.
