file(REMOVE_RECURSE
  "CMakeFiles/fig5_multirail.dir/fig5_multirail.cc.o"
  "CMakeFiles/fig5_multirail.dir/fig5_multirail.cc.o.d"
  "fig5_multirail"
  "fig5_multirail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_multirail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
