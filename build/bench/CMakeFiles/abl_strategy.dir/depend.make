# Empty dependencies file for abl_strategy.
# This may be replaced when dependencies are built.
