file(REMOVE_RECURSE
  "CMakeFiles/abl_strategy.dir/abl_strategy.cc.o"
  "CMakeFiles/abl_strategy.dir/abl_strategy.cc.o.d"
  "abl_strategy"
  "abl_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
