# Empty dependencies file for ext_datatype.
# This may be replaced when dependencies are built.
