file(REMOVE_RECURSE
  "CMakeFiles/ext_datatype.dir/ext_datatype.cc.o"
  "CMakeFiles/ext_datatype.dir/ext_datatype.cc.o.d"
  "ext_datatype"
  "ext_datatype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
