file(REMOVE_RECURSE
  "CMakeFiles/fig8_nas.dir/fig8_nas.cc.o"
  "CMakeFiles/fig8_nas.dir/fig8_nas.cc.o.d"
  "fig8_nas"
  "fig8_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
