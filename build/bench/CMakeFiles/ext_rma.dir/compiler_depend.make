# Empty compiler generated dependencies file for ext_rma.
# This may be replaced when dependencies are built.
