file(REMOVE_RECURSE
  "CMakeFiles/ext_rma.dir/ext_rma.cc.o"
  "CMakeFiles/ext_rma.dir/ext_rma.cc.o.d"
  "ext_rma"
  "ext_rma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
