# Empty dependencies file for abl_splitratio.
# This may be replaced when dependencies are built.
