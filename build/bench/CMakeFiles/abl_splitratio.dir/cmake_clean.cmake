file(REMOVE_RECURSE
  "CMakeFiles/abl_splitratio.dir/abl_splitratio.cc.o"
  "CMakeFiles/abl_splitratio.dir/abl_splitratio.cc.o.d"
  "abl_splitratio"
  "abl_splitratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_splitratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
