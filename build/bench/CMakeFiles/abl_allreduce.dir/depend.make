# Empty dependencies file for abl_allreduce.
# This may be replaced when dependencies are built.
