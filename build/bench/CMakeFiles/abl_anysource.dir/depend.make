# Empty dependencies file for abl_anysource.
# This may be replaced when dependencies are built.
