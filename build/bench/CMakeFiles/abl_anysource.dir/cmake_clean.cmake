file(REMOVE_RECURSE
  "CMakeFiles/abl_anysource.dir/abl_anysource.cc.o"
  "CMakeFiles/abl_anysource.dir/abl_anysource.cc.o.d"
  "abl_anysource"
  "abl_anysource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_anysource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
