file(REMOVE_RECURSE
  "CMakeFiles/abl_bypass.dir/abl_bypass.cc.o"
  "CMakeFiles/abl_bypass.dir/abl_bypass.cc.o.d"
  "abl_bypass"
  "abl_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
