# Empty compiler generated dependencies file for abl_bypass.
# This may be replaced when dependencies are built.
