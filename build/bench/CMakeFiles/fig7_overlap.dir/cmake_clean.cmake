file(REMOVE_RECURSE
  "CMakeFiles/fig7_overlap.dir/fig7_overlap.cc.o"
  "CMakeFiles/fig7_overlap.dir/fig7_overlap.cc.o.d"
  "fig7_overlap"
  "fig7_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
