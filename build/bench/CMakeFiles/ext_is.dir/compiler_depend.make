# Empty compiler generated dependencies file for ext_is.
# This may be replaced when dependencies are built.
