file(REMOVE_RECURSE
  "CMakeFiles/ext_is.dir/ext_is.cc.o"
  "CMakeFiles/ext_is.dir/ext_is.cc.o.d"
  "ext_is"
  "ext_is.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_is.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
