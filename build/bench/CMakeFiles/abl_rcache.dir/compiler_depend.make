# Empty compiler generated dependencies file for abl_rcache.
# This may be replaced when dependencies are built.
