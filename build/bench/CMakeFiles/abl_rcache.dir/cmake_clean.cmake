file(REMOVE_RECURSE
  "CMakeFiles/abl_rcache.dir/abl_rcache.cc.o"
  "CMakeFiles/abl_rcache.dir/abl_rcache.cc.o.d"
  "abl_rcache"
  "abl_rcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
