# Empty compiler generated dependencies file for fig4_ib.
# This may be replaced when dependencies are built.
