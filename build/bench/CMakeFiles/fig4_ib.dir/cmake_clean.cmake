file(REMOVE_RECURSE
  "CMakeFiles/fig4_ib.dir/fig4_ib.cc.o"
  "CMakeFiles/fig4_ib.dir/fig4_ib.cc.o.d"
  "fig4_ib"
  "fig4_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
