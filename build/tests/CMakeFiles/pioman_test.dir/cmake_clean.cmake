file(REMOVE_RECURSE
  "CMakeFiles/pioman_test.dir/pioman_test.cpp.o"
  "CMakeFiles/pioman_test.dir/pioman_test.cpp.o.d"
  "pioman_test"
  "pioman_test.pdb"
  "pioman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pioman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
