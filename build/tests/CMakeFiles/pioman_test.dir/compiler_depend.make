# Empty compiler generated dependencies file for pioman_test.
# This may be replaced when dependencies are built.
