file(REMOVE_RECURSE
  "CMakeFiles/nemesis_test.dir/nemesis_test.cpp.o"
  "CMakeFiles/nemesis_test.dir/nemesis_test.cpp.o.d"
  "nemesis_test"
  "nemesis_test.pdb"
  "nemesis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
