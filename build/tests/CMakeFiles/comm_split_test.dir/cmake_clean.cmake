file(REMOVE_RECURSE
  "CMakeFiles/comm_split_test.dir/comm_split_test.cpp.o"
  "CMakeFiles/comm_split_test.dir/comm_split_test.cpp.o.d"
  "comm_split_test"
  "comm_split_test.pdb"
  "comm_split_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
