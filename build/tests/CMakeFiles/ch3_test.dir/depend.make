# Empty dependencies file for ch3_test.
# This may be replaced when dependencies are built.
