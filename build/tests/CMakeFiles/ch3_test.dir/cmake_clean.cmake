file(REMOVE_RECURSE
  "CMakeFiles/ch3_test.dir/ch3_test.cpp.o"
  "CMakeFiles/ch3_test.dir/ch3_test.cpp.o.d"
  "ch3_test"
  "ch3_test.pdb"
  "ch3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
