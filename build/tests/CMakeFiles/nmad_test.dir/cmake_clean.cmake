file(REMOVE_RECURSE
  "CMakeFiles/nmad_test.dir/nmad_test.cpp.o"
  "CMakeFiles/nmad_test.dir/nmad_test.cpp.o.d"
  "nmad_test"
  "nmad_test.pdb"
  "nmad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
