# Empty compiler generated dependencies file for nmad_test.
# This may be replaced when dependencies are built.
