
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/boundary_test.cpp" "tests/CMakeFiles/boundary_test.dir/boundary_test.cpp.o" "gcc" "tests/CMakeFiles/boundary_test.dir/boundary_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/nmx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/nmx_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/nmx_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/ch3/CMakeFiles/nmx_ch3.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/nmx_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/rcache/CMakeFiles/nmx_rcache.dir/DependInfo.cmake"
  "/root/repo/build/src/nmad/CMakeFiles/nmx_nmad.dir/DependInfo.cmake"
  "/root/repo/build/src/nemesis/CMakeFiles/nmx_nemesis.dir/DependInfo.cmake"
  "/root/repo/build/src/pioman/CMakeFiles/nmx_pioman.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nmx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nmx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
