# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rcache_test[1]_include.cmake")
include("/root/repo/build/tests/nemesis_test[1]_include.cmake")
include("/root/repo/build/tests/nmad_test[1]_include.cmake")
include("/root/repo/build/tests/pioman_test[1]_include.cmake")
include("/root/repo/build/tests/ch3_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/nas_test[1]_include.cmake")
include("/root/repo/build/tests/shape_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/ext_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/boundary_test[1]_include.cmake")
include("/root/repo/build/tests/comm_split_test[1]_include.cmake")
