# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("net")
subdirs("rcache")
subdirs("nemesis")
subdirs("nmad")
subdirs("pioman")
subdirs("ch3")
subdirs("mpi")
subdirs("baseline")
subdirs("harness")
subdirs("nas")
