file(REMOVE_RECURSE
  "CMakeFiles/nmx_net.dir/fabric.cpp.o"
  "CMakeFiles/nmx_net.dir/fabric.cpp.o.d"
  "libnmx_net.a"
  "libnmx_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmx_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
