file(REMOVE_RECURSE
  "libnmx_net.a"
)
