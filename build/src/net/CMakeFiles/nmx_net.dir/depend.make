# Empty dependencies file for nmx_net.
# This may be replaced when dependencies are built.
