# Empty dependencies file for nmx_sim.
# This may be replaced when dependencies are built.
