file(REMOVE_RECURSE
  "CMakeFiles/nmx_sim.dir/condition.cpp.o"
  "CMakeFiles/nmx_sim.dir/condition.cpp.o.d"
  "CMakeFiles/nmx_sim.dir/engine.cpp.o"
  "CMakeFiles/nmx_sim.dir/engine.cpp.o.d"
  "CMakeFiles/nmx_sim.dir/trace.cpp.o"
  "CMakeFiles/nmx_sim.dir/trace.cpp.o.d"
  "libnmx_sim.a"
  "libnmx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
