file(REMOVE_RECURSE
  "libnmx_sim.a"
)
