file(REMOVE_RECURSE
  "CMakeFiles/nmx_pioman.dir/ltask.cpp.o"
  "CMakeFiles/nmx_pioman.dir/ltask.cpp.o.d"
  "CMakeFiles/nmx_pioman.dir/pioman.cpp.o"
  "CMakeFiles/nmx_pioman.dir/pioman.cpp.o.d"
  "libnmx_pioman.a"
  "libnmx_pioman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmx_pioman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
