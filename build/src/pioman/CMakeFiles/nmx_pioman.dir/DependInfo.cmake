
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pioman/ltask.cpp" "src/pioman/CMakeFiles/nmx_pioman.dir/ltask.cpp.o" "gcc" "src/pioman/CMakeFiles/nmx_pioman.dir/ltask.cpp.o.d"
  "/root/repo/src/pioman/pioman.cpp" "src/pioman/CMakeFiles/nmx_pioman.dir/pioman.cpp.o" "gcc" "src/pioman/CMakeFiles/nmx_pioman.dir/pioman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nmx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nmx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
