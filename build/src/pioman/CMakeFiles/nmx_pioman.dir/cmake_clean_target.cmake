file(REMOVE_RECURSE
  "libnmx_pioman.a"
)
