# Empty compiler generated dependencies file for nmx_pioman.
# This may be replaced when dependencies are built.
