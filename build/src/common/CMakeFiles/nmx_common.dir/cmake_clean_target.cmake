file(REMOVE_RECURSE
  "libnmx_common.a"
)
