file(REMOVE_RECURSE
  "CMakeFiles/nmx_common.dir/assert.cpp.o"
  "CMakeFiles/nmx_common.dir/assert.cpp.o.d"
  "libnmx_common.a"
  "libnmx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
