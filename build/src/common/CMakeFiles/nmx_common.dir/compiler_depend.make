# Empty compiler generated dependencies file for nmx_common.
# This may be replaced when dependencies are built.
