file(REMOVE_RECURSE
  "libnmx_nemesis.a"
)
