file(REMOVE_RECURSE
  "CMakeFiles/nmx_nemesis.dir/lfqueue.cpp.o"
  "CMakeFiles/nmx_nemesis.dir/lfqueue.cpp.o.d"
  "CMakeFiles/nmx_nemesis.dir/shm.cpp.o"
  "CMakeFiles/nmx_nemesis.dir/shm.cpp.o.d"
  "libnmx_nemesis.a"
  "libnmx_nemesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmx_nemesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
