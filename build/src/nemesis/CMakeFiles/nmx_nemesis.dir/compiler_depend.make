# Empty compiler generated dependencies file for nmx_nemesis.
# This may be replaced when dependencies are built.
