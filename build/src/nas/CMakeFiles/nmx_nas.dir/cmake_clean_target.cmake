file(REMOVE_RECURSE
  "libnmx_nas.a"
)
