# Empty compiler generated dependencies file for nmx_nas.
# This may be replaced when dependencies are built.
