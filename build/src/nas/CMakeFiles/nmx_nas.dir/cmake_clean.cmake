file(REMOVE_RECURSE
  "CMakeFiles/nmx_nas.dir/btsp.cpp.o"
  "CMakeFiles/nmx_nas.dir/btsp.cpp.o.d"
  "CMakeFiles/nmx_nas.dir/cg.cpp.o"
  "CMakeFiles/nmx_nas.dir/cg.cpp.o.d"
  "CMakeFiles/nmx_nas.dir/ep.cpp.o"
  "CMakeFiles/nmx_nas.dir/ep.cpp.o.d"
  "CMakeFiles/nmx_nas.dir/ft.cpp.o"
  "CMakeFiles/nmx_nas.dir/ft.cpp.o.d"
  "CMakeFiles/nmx_nas.dir/is.cpp.o"
  "CMakeFiles/nmx_nas.dir/is.cpp.o.d"
  "CMakeFiles/nmx_nas.dir/lu.cpp.o"
  "CMakeFiles/nmx_nas.dir/lu.cpp.o.d"
  "CMakeFiles/nmx_nas.dir/mg.cpp.o"
  "CMakeFiles/nmx_nas.dir/mg.cpp.o.d"
  "CMakeFiles/nmx_nas.dir/nas.cpp.o"
  "CMakeFiles/nmx_nas.dir/nas.cpp.o.d"
  "libnmx_nas.a"
  "libnmx_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmx_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
