# Empty dependencies file for nmx_mpi.
# This may be replaced when dependencies are built.
