file(REMOVE_RECURSE
  "libnmx_mpi.a"
)
