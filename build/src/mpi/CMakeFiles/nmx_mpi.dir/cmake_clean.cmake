file(REMOVE_RECURSE
  "CMakeFiles/nmx_mpi.dir/cluster.cpp.o"
  "CMakeFiles/nmx_mpi.dir/cluster.cpp.o.d"
  "CMakeFiles/nmx_mpi.dir/comm.cpp.o"
  "CMakeFiles/nmx_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/nmx_mpi.dir/rma.cpp.o"
  "CMakeFiles/nmx_mpi.dir/rma.cpp.o.d"
  "libnmx_mpi.a"
  "libnmx_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmx_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
