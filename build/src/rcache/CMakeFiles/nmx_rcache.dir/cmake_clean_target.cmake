file(REMOVE_RECURSE
  "libnmx_rcache.a"
)
