file(REMOVE_RECURSE
  "CMakeFiles/nmx_rcache.dir/rcache.cpp.o"
  "CMakeFiles/nmx_rcache.dir/rcache.cpp.o.d"
  "libnmx_rcache.a"
  "libnmx_rcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmx_rcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
