# Empty compiler generated dependencies file for nmx_rcache.
# This may be replaced when dependencies are built.
