file(REMOVE_RECURSE
  "libnmx_nmad.a"
)
