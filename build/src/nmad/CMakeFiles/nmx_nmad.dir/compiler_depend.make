# Empty compiler generated dependencies file for nmx_nmad.
# This may be replaced when dependencies are built.
