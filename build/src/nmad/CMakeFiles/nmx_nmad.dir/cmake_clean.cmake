file(REMOVE_RECURSE
  "CMakeFiles/nmx_nmad.dir/core.cpp.o"
  "CMakeFiles/nmx_nmad.dir/core.cpp.o.d"
  "CMakeFiles/nmx_nmad.dir/sampling.cpp.o"
  "CMakeFiles/nmx_nmad.dir/sampling.cpp.o.d"
  "CMakeFiles/nmx_nmad.dir/strategy.cpp.o"
  "CMakeFiles/nmx_nmad.dir/strategy.cpp.o.d"
  "libnmx_nmad.a"
  "libnmx_nmad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmx_nmad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
