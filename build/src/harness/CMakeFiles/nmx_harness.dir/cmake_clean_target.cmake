file(REMOVE_RECURSE
  "libnmx_harness.a"
)
