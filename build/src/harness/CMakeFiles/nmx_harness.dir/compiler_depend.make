# Empty compiler generated dependencies file for nmx_harness.
# This may be replaced when dependencies are built.
