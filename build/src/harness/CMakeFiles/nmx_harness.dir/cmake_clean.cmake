file(REMOVE_RECURSE
  "CMakeFiles/nmx_harness.dir/netpipe.cpp.o"
  "CMakeFiles/nmx_harness.dir/netpipe.cpp.o.d"
  "CMakeFiles/nmx_harness.dir/overlap.cpp.o"
  "CMakeFiles/nmx_harness.dir/overlap.cpp.o.d"
  "CMakeFiles/nmx_harness.dir/table.cpp.o"
  "CMakeFiles/nmx_harness.dir/table.cpp.o.d"
  "libnmx_harness.a"
  "libnmx_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmx_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
