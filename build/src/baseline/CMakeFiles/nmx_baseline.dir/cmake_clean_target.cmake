file(REMOVE_RECURSE
  "libnmx_baseline.a"
)
