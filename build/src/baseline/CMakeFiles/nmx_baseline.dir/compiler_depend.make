# Empty compiler generated dependencies file for nmx_baseline.
# This may be replaced when dependencies are built.
