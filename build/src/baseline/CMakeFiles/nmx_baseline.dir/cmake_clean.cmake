file(REMOVE_RECURSE
  "CMakeFiles/nmx_baseline.dir/base_transport.cpp.o"
  "CMakeFiles/nmx_baseline.dir/base_transport.cpp.o.d"
  "CMakeFiles/nmx_baseline.dir/mvapich.cpp.o"
  "CMakeFiles/nmx_baseline.dir/mvapich.cpp.o.d"
  "CMakeFiles/nmx_baseline.dir/openmpi.cpp.o"
  "CMakeFiles/nmx_baseline.dir/openmpi.cpp.o.d"
  "libnmx_baseline.a"
  "libnmx_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmx_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
