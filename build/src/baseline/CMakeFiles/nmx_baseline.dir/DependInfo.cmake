
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/base_transport.cpp" "src/baseline/CMakeFiles/nmx_baseline.dir/base_transport.cpp.o" "gcc" "src/baseline/CMakeFiles/nmx_baseline.dir/base_transport.cpp.o.d"
  "/root/repo/src/baseline/mvapich.cpp" "src/baseline/CMakeFiles/nmx_baseline.dir/mvapich.cpp.o" "gcc" "src/baseline/CMakeFiles/nmx_baseline.dir/mvapich.cpp.o.d"
  "/root/repo/src/baseline/openmpi.cpp" "src/baseline/CMakeFiles/nmx_baseline.dir/openmpi.cpp.o" "gcc" "src/baseline/CMakeFiles/nmx_baseline.dir/openmpi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nemesis/CMakeFiles/nmx_nemesis.dir/DependInfo.cmake"
  "/root/repo/build/src/rcache/CMakeFiles/nmx_rcache.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nmx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nmx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
