# Empty dependencies file for nmx_ch3.
# This may be replaced when dependencies are built.
