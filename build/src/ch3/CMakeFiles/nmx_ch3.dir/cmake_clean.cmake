file(REMOVE_RECURSE
  "CMakeFiles/nmx_ch3.dir/anysource.cpp.o"
  "CMakeFiles/nmx_ch3.dir/anysource.cpp.o.d"
  "CMakeFiles/nmx_ch3.dir/process.cpp.o"
  "CMakeFiles/nmx_ch3.dir/process.cpp.o.d"
  "libnmx_ch3.a"
  "libnmx_ch3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmx_ch3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
