file(REMOVE_RECURSE
  "libnmx_ch3.a"
)
