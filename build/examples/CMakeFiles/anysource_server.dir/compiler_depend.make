# Empty compiler generated dependencies file for anysource_server.
# This may be replaced when dependencies are built.
