file(REMOVE_RECURSE
  "CMakeFiles/anysource_server.dir/anysource_server.cpp.o"
  "CMakeFiles/anysource_server.dir/anysource_server.cpp.o.d"
  "anysource_server"
  "anysource_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anysource_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
