# Empty dependencies file for multirail_bandwidth.
# This may be replaced when dependencies are built.
