file(REMOVE_RECURSE
  "CMakeFiles/multirail_bandwidth.dir/multirail_bandwidth.cpp.o"
  "CMakeFiles/multirail_bandwidth.dir/multirail_bandwidth.cpp.o.d"
  "multirail_bandwidth"
  "multirail_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirail_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
