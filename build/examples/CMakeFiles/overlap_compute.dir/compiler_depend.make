# Empty compiler generated dependencies file for overlap_compute.
# This may be replaced when dependencies are built.
