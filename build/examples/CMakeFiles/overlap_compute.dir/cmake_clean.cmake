file(REMOVE_RECURSE
  "CMakeFiles/overlap_compute.dir/overlap_compute.cpp.o"
  "CMakeFiles/overlap_compute.dir/overlap_compute.cpp.o.d"
  "overlap_compute"
  "overlap_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
