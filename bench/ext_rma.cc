// Extension bench — MPI-2 RMA (§5 future work): fence-epoch put/get
// latency and bandwidth across the stacks, against plain send/recv. Because
// the one-sided layer rides the normal transports, NewMadeleine's
// optimizations (and PIOMan's costs) show through unchanged.
#include "bench_common.hpp"

#include "mpi/rma.hpp"

namespace {

using namespace nmx;

struct RmaPoint {
  double put_us;
  double get_us;
  double sendrecv_us;
};

RmaPoint measure(mpi::StackKind stack, std::size_t size) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.stack = stack;
  mpi::Cluster cluster(cfg);
  RmaPoint out{};
  cluster.run([&](mpi::Comm& c) {
    std::vector<std::byte> win_mem(size);
    std::vector<std::byte> local(size);
    mpi::Window win(c, win_mem.data(), win_mem.size());

    win.fence();  // warm everything up
    double t0 = c.wtime();
    if (c.rank() == 0) win.put(local.data(), size, 1, 0);
    win.fence();
    if (c.rank() == 0) out.put_us = (c.wtime() - t0) * 1e6;

    t0 = c.wtime();
    if (c.rank() == 0) win.get(local.data(), size, 1, 0);
    win.fence();
    if (c.rank() == 0) out.get_us = (c.wtime() - t0) * 1e6;

    // two-sided reference
    t0 = c.wtime();
    if (c.rank() == 0) {
      c.send(local.data(), size, 1, 1);
      char ack;
      c.recv(&ack, 1, 1, 2);
      out.sendrecv_us = (c.wtime() - t0) * 1e6;
    } else {
      c.recv(local.data(), size, 0, 1);
      char ack = 0;
      c.send(&ack, 1, 0, 2);
    }
  });
  return out;
}

void print_table() {
  for (auto [label, stack] :
       {std::pair<const char*, mpi::StackKind>{"MPICH2-NMad", mpi::StackKind::Mpich2Nmad},
        {"MVAPICH2", mpi::StackKind::Mvapich2}}) {
    harness::Table t({"size", "put+fence (us)", "get+fence (us)", "send/recv+ack (us)"});
    for (std::size_t size : {std::size_t{8}, std::size_t{4} << 10, std::size_t{256} << 10,
                             std::size_t{4} << 20}) {
      const RmaPoint p = measure(stack, size);
      t.add_row({harness::Table::bytes(size), harness::Table::fmt(p.put_us, 1),
                 harness::Table::fmt(p.get_us, 1), harness::Table::fmt(p.sendrecv_us, 1)});
    }
    std::cout << "== Extension: MPI-2 RMA over " << label << " (fence epochs) ==\n";
    t.print(std::cout);
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::RegisterBenchmark("ext/rma/put4K", [](benchmark::State& st) {
    for (auto _ : st) {
      st.counters["put_us"] = measure(nmx::mpi::StackKind::Mpich2Nmad, 4096).put_us;
    }
  })->Iterations(1)->Unit(benchmark::kMicrosecond);
  return nmx::bench::run_registered(argc, argv);
}
