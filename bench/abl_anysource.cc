// Ablation A4 — the cost of the any-source management lists (§3.2.2,
// Figure 3): ping-pong with MPI_ANY_SOURCE receives against known-source
// receives. The paper measures a constant ~300 ns gap (§4.1.1).
#include "bench_common.hpp"

namespace {

using namespace nmx;

mpi::ClusterConfig cfg_ib() {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  return cfg;
}

void print_table() {
  const std::vector<std::size_t> sizes = harness::latency_sizes();
  auto known = harness::netpipe(cfg_ib(), sizes);
  auto anysrc = harness::netpipe(cfg_ib(), sizes, 3, /*any_source=*/true);
  harness::Table t({"size(B)", "known source (us)", "ANY_SOURCE (us)", "gap (ns)"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    t.add_row({harness::Table::bytes(sizes[i]), harness::Table::fmt(known[i].latency_us),
               harness::Table::fmt(anysrc[i].latency_us),
               harness::Table::fmt((anysrc[i].latency_us - known[i].latency_us) * 1000, 0)});
  }
  std::cout << "== Ablation: any-source management lists latency cost ==\n";
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  for (bool as : {false, true}) {
    const char* name = as ? "abl/anysource/wildcard" : "abl/anysource/known";
    benchmark::RegisterBenchmark(name, [as](benchmark::State& st) {
      for (auto _ : st) {
        st.counters["lat_us"] = nmx::harness::netpipe(cfg_ib(), {4}, 3, as)[0].latency_us;
      }
    })->Iterations(1)->Unit(benchmark::kMicrosecond);
  }
  return nmx::bench::run_registered(argc, argv);
}
