// Ablation A6 — load-aware cost model vs load-blind SplitBalance under
// asymmetric cross-traffic. Two processes per node share the node's NICs: a
// foreground pair streams large rendezvous messages while a co-located pair
// injects an eager storm that SplitBalance pins to the fastest rail (its
// small-message rule is load-blind), starving the foreground's biggest split
// share. The cost model sees the occupied NIC through the fabric probe,
// steers small traffic away and re-balances the rendezvous split, so the
// same offered load finishes sooner. On an idle fabric the two strategies
// must agree (the cost model degenerates to the sampled split).
#include "bench_common.hpp"

#include <vector>

namespace {

using namespace nmx;

struct Result {
  double aggregate_MBps = 0;  ///< all bytes moved / run makespan
};

Result run_case(nmad::StrategyKind strat, bool contended, obs::Report* rep = nullptr) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 4;  // block mapping: ranks 0,1 on node 0 / ranks 2,3 on node 1
  cfg.rails = {net::ib_profile(), net::mx_profile()};
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.strategy = strat;
  cfg.trace = rep != nullptr;

  constexpr std::size_t kFgMsg = 8_MiB;  // rendezvous foreground stream
  constexpr int kFgIters = 6;
  constexpr std::size_t kNoise = 32_KiB;  // eager: below the rendezvous switch
  constexpr int kNoiseMsgs = 512;

  mpi::Cluster cluster(cfg);
  const Time t0 = cluster.now();
  cluster.run([&](mpi::Comm& c) {
    switch (c.rank()) {
      case 0: {  // foreground sender (node 0)
        std::vector<std::byte> buf(kFgMsg);
        for (int i = 0; i < kFgIters; ++i) c.send(buf.data(), buf.size(), 2, 1);
        char ack = 0;
        c.recv(&ack, 1, 2, 2);
        break;
      }
      case 2: {  // foreground receiver (node 1)
        std::vector<std::byte> buf(kFgMsg);
        for (int i = 0; i < kFgIters; ++i) c.recv(buf.data(), buf.size(), 0, 1);
        const char ack = 1;
        c.send(&ack, 1, 0, 2);
        break;
      }
      case 1: {  // cross-traffic source, same node as the foreground sender
        if (!contended) break;
        // Injection storm: many eager messages queued at once. A load-blind
        // strategy pins the whole backlog on the fastest rail; the cost
        // model spreads it by predicted completion.
        std::vector<std::byte> noise(kNoise);
        std::vector<mpi::Request> reqs;
        reqs.reserve(kNoiseMsgs);
        for (int i = 0; i < kNoiseMsgs; ++i) {
          reqs.push_back(c.isend(noise.data(), noise.size(), 3, 5));
        }
        c.waitall(reqs);
        break;
      }
      case 3: {
        if (!contended) break;
        std::vector<std::byte> noise(kNoise);
        for (int i = 0; i < kNoiseMsgs; ++i) c.recv(noise.data(), noise.size(), 1, 5);
        break;
      }
      default: break;
    }
  });
  const double elapsed = cluster.now() - t0;
  const double bytes = static_cast<double>(kFgIters) * static_cast<double>(kFgMsg) +
                       (contended ? static_cast<double>(kNoiseMsgs) * kNoise : 0.0);
  if (rep != nullptr) {
    // No per-iteration structure here: the analyzer falls back to one
    // whole-trace window, so the report covers the run's full makespan.
    const std::string name = std::string(strat == nmad::StrategyKind::CostModel ? "cost" : "split") +
                             (contended ? "/contended" : "/idle");
    rep->runs.push_back(harness::analyze_cluster(cluster, name));
  }
  Result r;
  r.aggregate_MBps = bytes / elapsed / (1024.0 * 1024.0);
  return r;
}

// Receiver-contended scenario: the congestion lives at the *receiver's*
// ingress, where the sender's egress probe cannot see it. Ranks 2 and 3 (own
// nodes, pinned to the MX rail) blast open-loop eager storms at the foreground
// receiver; their combined egress is twice the MX ingress bandwidth, so the
// receiver's MX ingress horizon grows without bound while its IB rail carries
// only the (tiny) control traffic. Rendezvous interference would not do this:
// its own RTS/CTS handshake rides the congested rail and throttles the
// senders, so the queue self-limits at about one message per sender. A
// one-ended cost model still hands MX its bandwidth-proportional split share
// and those chunks land behind tens of milliseconds of queued storm; the
// two-ended model reads the receiver's CTS load advertisement and prunes MX
// out of the split entirely.
Result run_recv_contended(bool two_ended) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.procs = 4;
  cfg.cyclic_mapping = true;  // rank p on node p: four independent egresses
  cfg.rails = {net::ib_profile(), net::mx_profile()};
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.strategy = nmad::StrategyKind::CostModel;
  cfg.two_ended_rdv = two_ended;
  cfg.rank_rails[2] = {1};  // interferers drive only the MX rail
  cfg.rank_rails[3] = {1};

  constexpr std::size_t kFgMsg = 24_MiB;  // rendezvous foreground stream
  constexpr int kFgIters = 2;
  constexpr std::size_t kNoise = 32_KiB;  // eager: below the rendezvous switch
  constexpr int kNoiseMsgs = 5000;        // outlives the foreground stream
  constexpr int kWarmup = 1000;           // storm landed before the fg grant

  Time fg_begin = 0, fg_end = 0;
  mpi::Cluster cluster(cfg);
  cluster.run([&](mpi::Comm& c) {
    switch (c.rank()) {
      case 0: {  // foreground sender: waits for "go" so the ingress queue exists
        char go = 0;
        c.recv(&go, 1, 1, 2);
        std::vector<std::byte> buf(kFgMsg);
        for (int i = 0; i < kFgIters; ++i) c.send(buf.data(), buf.size(), 1, 1);
        break;
      }
      case 1: {  // foreground receiver, also sink for both interferer storms
        std::vector<std::byte> noise(kNoise);
        std::vector<std::byte> buf(kFgMsg);
        // Let the storm ramp: by the time the foreground grant is issued the
        // MX ingress horizon is deep enough that the two-ended solve prunes
        // the rail (rank 3's stream stays unexpected until drained below).
        for (int i = 0; i < kWarmup; ++i) c.recv(noise.data(), noise.size(), 2, 5);
        const char go = 1;
        c.send(&go, 1, 0, 2);
        fg_begin = cluster.now();
        for (int i = 0; i < kFgIters; ++i) c.recv(buf.data(), buf.size(), 0, 1);
        fg_end = cluster.now();
        for (int i = kWarmup; i < kNoiseMsgs; ++i) c.recv(noise.data(), noise.size(), 2, 5);
        for (int i = 0; i < kNoiseMsgs; ++i) c.recv(noise.data(), noise.size(), 3, 5);
        break;
      }
      case 2:
      case 3: {  // interferer: open-loop eager storm into the receiver's MX rail
        std::vector<std::byte> noise(kNoise);
        std::vector<mpi::Request> reqs;
        reqs.reserve(kNoiseMsgs);
        for (int i = 0; i < kNoiseMsgs; ++i) {
          reqs.push_back(c.isend(noise.data(), noise.size(), 1, 5));
        }
        c.waitall(reqs);
        break;
      }
      default: break;
    }
  });
  Result r;
  r.aggregate_MBps =
      static_cast<double>(kFgIters) * static_cast<double>(kFgMsg) / (fg_end - fg_begin) /
      (1024.0 * 1024.0);
  return r;
}

void print_table() {
  harness::Table t({"fabric", "SplitBalance (MBps)", "CostModel (MBps)", "gain"});
  for (bool contended : {false, true}) {
    const double sb = run_case(nmad::StrategyKind::SplitBalance, contended).aggregate_MBps;
    const double cm = run_case(nmad::StrategyKind::CostModel, contended).aggregate_MBps;
    t.add_row({contended ? "eager cross-traffic" : "idle", harness::Table::fmt(sb, 1),
               harness::Table::fmt(cm, 1), harness::Table::fmt(cm / sb, 3) + "x"});
  }
  std::cout << "== Ablation: load-aware cost model vs SplitBalance (IB+MX, shared NICs) ==\n";
  t.print(std::cout);
  std::cout << "\n";

  harness::Table t2({"scenario", "one-ended (MBps)", "two-ended (MBps)", "gain"});
  const double one = run_recv_contended(/*two_ended=*/false).aggregate_MBps;
  const double two = run_recv_contended(/*two_ended=*/true).aggregate_MBps;
  t2.add_row({"receiver-contended", harness::Table::fmt(one, 1), harness::Table::fmt(two, 1),
              harness::Table::fmt(two / one, 3) + "x"});
  std::cout << "== Ablation: receiver-advertised rail load in the CTS (two-ended split) ==\n";
  t2.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  for (bool contended : {false, true}) {
    for (auto strat : {nmad::StrategyKind::SplitBalance, nmad::StrategyKind::CostModel}) {
      const std::string name = std::string("abl/costmodel/") +
                               (strat == nmad::StrategyKind::CostModel ? "cost" : "split") +
                               (contended ? "/contended" : "/idle");
      benchmark::RegisterBenchmark(name.c_str(), [strat, contended](benchmark::State& st) {
        for (auto _ : st) {
          st.counters["MBps"] = run_case(strat, contended).aggregate_MBps;
        }
      })->Iterations(1);
    }
  }
  for (bool two_ended : {false, true}) {
    const std::string name =
        std::string("abl/costmodel/recv_contended/") + (two_ended ? "two_ended" : "one_ended");
    benchmark::RegisterBenchmark(name.c_str(), [two_ended](benchmark::State& st) {
      for (auto _ : st) {
        st.counters["MBps"] = run_recv_contended(two_ended).aggregate_MBps;
      }
    })->Iterations(1);
  }
  // Critical-path report for both strategies under contention: composition
  // (how much of the makespan is wire vs software) is the ablation's story
  // in machine-readable form.
  obs::Report rep;
  rep.bench = "abl_costmodel";
  run_case(nmad::StrategyKind::SplitBalance, /*contended=*/true, &rep);
  run_case(nmad::StrategyKind::CostModel, /*contended=*/true, &rep);
  harness::write_report_sidecar(rep, "abl_costmodel");

  nmx::bench::emit_default_sidecar("abl_costmodel", [] {
    mpi::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.procs = 4;
    cfg.rails = {net::ib_profile(), net::mx_profile()};
    cfg.strategy = nmad::StrategyKind::CostModel;
    return cfg;
  }());
  return nmx::bench::run_registered(argc, argv);
}
