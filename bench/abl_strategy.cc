// Ablation A1 — message aggregation (§2.2: "Such strategies may use, for
// instance, reordering techniques or messages aggregation"): a burst of
// small sends to one destination, queued while the sender is outside MPI,
// then flushed. strat_aggreg packs them into few wire packets; strat_default
// pays the per-packet NIC cost for each.
#include "bench_common.hpp"

namespace {

using namespace nmx;

double burst_time(nmad::StrategyKind strategy, int msgs, std::size_t size) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.strategy = strategy;
  mpi::Cluster cluster(cfg);
  double t = 0;
  cluster.run([&](mpi::Comm& c) {
    std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(msgs));
    for (auto& b : bufs) b.resize(size);
    if (c.rank() == 0) {
      const double t0 = c.wtime();
      std::vector<mpi::Request> reqs;
      reqs.reserve(bufs.size());
      // isends queue in the submission window; the waitall flushes them —
      // by then the strategy sees the whole burst at once.
      for (int i = 0; i < msgs; ++i) {
        reqs.push_back(c.isend(bufs[static_cast<std::size_t>(i)].data(), size, 1, i));
      }
      c.waitall(reqs);
      char ack;
      c.recv(&ack, 1, 1, 999);
      t = c.wtime() - t0;
    } else {
      std::vector<mpi::Request> reqs;
      reqs.reserve(bufs.size());
      for (int i = 0; i < msgs; ++i) {
        reqs.push_back(c.irecv(bufs[static_cast<std::size_t>(i)].data(), size, 0, i));
      }
      c.waitall(reqs);
      char ack = 1;
      c.send(&ack, 1, 0, 999);
    }
  });
  return t * 1e6;
}

void print_table() {
  harness::Table t({"msgs x size", "strat_default(us)", "strat_aggreg(us)", "speedup"});
  for (auto [msgs, size] : {std::pair<int, std::size_t>{16, 64},
                            {64, 64},
                            {16, 512},
                            {64, 512},
                            {128, 1024}}) {
    const double d = burst_time(nmx::nmad::StrategyKind::Default, msgs, size);
    const double a = burst_time(nmx::nmad::StrategyKind::Aggreg, msgs, size);
    t.add_row({std::to_string(msgs) + " x " + harness::Table::bytes(size),
               harness::Table::fmt(d, 1), harness::Table::fmt(a, 1),
               harness::Table::fmt(d / a, 2) + "x"});
  }
  std::cout << "== Ablation: message aggregation (burst of small sends, one destination) ==\n";
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  for (auto strat : {nmx::nmad::StrategyKind::Default, nmx::nmad::StrategyKind::Aggreg}) {
    const char* name = strat == nmx::nmad::StrategyKind::Default ? "abl/strategy/default"
                                                                 : "abl/strategy/aggreg";
    benchmark::RegisterBenchmark(name, [strat](benchmark::State& st) {
      for (auto _ : st) {
        st.counters["burst_us"] = burst_time(strat, 64, 512);
      }
    })->Iterations(1)->Unit(benchmark::kMicrosecond);
  }
  return nmx::bench::run_registered(argc, argv);
}
