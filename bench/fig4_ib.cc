// Figure 4 — InfiniBand point-to-point comparisons (§4.1.1):
//   (a) latency 1..512 B:  MVAPICH2 1.5µs, Open MPI 1.6µs,
//       MPICH2:Nem:Nmad:IB 2.1µs, +300 ns with MPI_ANY_SOURCE;
//   (b) bandwidth 1 B..64 MB: MVAPICH2 on top (registration cache),
//       MPICH2-Nmad above Open MPI at medium sizes, slightly below
//       MVAPICH2 at large sizes (on-the-fly registration).
#include "bench_common.hpp"

namespace {

using namespace nmx;

mpi::ClusterConfig ib_config(mpi::StackKind stack) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.rails = {net::ib_profile()};
  cfg.stack = stack;
  return cfg;
}

void print_tables() {
  const auto lat_sizes = harness::latency_sizes();
  const auto bw_sizes = harness::bandwidth_sizes();

  auto mvapich_l = harness::netpipe(ib_config(mpi::StackKind::Mvapich2), lat_sizes);
  auto ompi_l = harness::netpipe(ib_config(mpi::StackKind::OpenMpiBtlIb), lat_sizes);
  auto nmad_l = harness::netpipe(ib_config(mpi::StackKind::Mpich2Nmad), lat_sizes);
  auto nmad_as_l = harness::netpipe(ib_config(mpi::StackKind::Mpich2Nmad), lat_sizes, 3,
                                    /*any_source=*/true);

  harness::Table lat({"size(B)", "MVAPICH2", "Open MPI", "MPICH2:Nem:Nmad:IB", "w/AS"});
  for (std::size_t i = 0; i < lat_sizes.size(); ++i) {
    lat.add_row({harness::Table::bytes(lat_sizes[i]), harness::Table::fmt(mvapich_l[i].latency_us),
                 harness::Table::fmt(ompi_l[i].latency_us),
                 harness::Table::fmt(nmad_l[i].latency_us),
                 harness::Table::fmt(nmad_as_l[i].latency_us)});
  }
  std::cout << "== Figure 4(a): Infiniband latency (usec, one-way) ==\n";
  lat.print(std::cout);

  auto mvapich_b = harness::netpipe(ib_config(mpi::StackKind::Mvapich2), bw_sizes);
  auto ompi_b = harness::netpipe(ib_config(mpi::StackKind::OpenMpiBtlIb), bw_sizes);
  auto nmad_b = harness::netpipe(ib_config(mpi::StackKind::Mpich2Nmad), bw_sizes);

  harness::Table bw({"size(B)", "MVAPICH2", "Open MPI", "MPICH2:Nem:Nmad:IB"});
  for (std::size_t i = 0; i < bw_sizes.size(); ++i) {
    bw.add_row({harness::Table::bytes(bw_sizes[i]),
                harness::Table::fmt(mvapich_b[i].bandwidth_MBps, 1),
                harness::Table::fmt(ompi_b[i].bandwidth_MBps, 1),
                harness::Table::fmt(nmad_b[i].bandwidth_MBps, 1)});
  }
  std::cout << "\n== Figure 4(b): Infiniband bandwidth (MBps) ==\n";
  bw.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  nmx::bench::emit_default_sidecar("fig4_ib", ib_config(nmx::mpi::StackKind::Mpich2Nmad));
  using nmx::bench::register_netpipe;
  register_netpipe("fig4/latency4B/MVAPICH2", ib_config(nmx::mpi::StackKind::Mvapich2), 4);
  register_netpipe("fig4/latency4B/OpenMPI", ib_config(nmx::mpi::StackKind::OpenMpiBtlIb), 4);
  register_netpipe("fig4/latency4B/MPICH2-Nmad", ib_config(nmx::mpi::StackKind::Mpich2Nmad), 4);
  register_netpipe("fig4/latency4B/MPICH2-Nmad-AS", ib_config(nmx::mpi::StackKind::Mpich2Nmad), 4,
                   true);
  register_netpipe("fig4/bw4M/MVAPICH2", ib_config(nmx::mpi::StackKind::Mvapich2), 4 << 20);
  register_netpipe("fig4/bw4M/OpenMPI", ib_config(nmx::mpi::StackKind::OpenMpiBtlIb), 4 << 20);
  register_netpipe("fig4/bw4M/MPICH2-Nmad", ib_config(nmx::mpi::StackKind::Mpich2Nmad), 4 << 20);
  return nmx::bench::run_registered(argc, argv);
}
