// Shared plumbing for the per-figure bench binaries: every binary first
// prints the paper-style series tables (computed once — the simulation is
// deterministic), then runs its registered google-benchmark entries so the
// same numbers are available as machine-readable counters.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <string>

#include "harness/netpipe.hpp"
#include "harness/overlap.hpp"
#include "harness/sidecar.hpp"
#include "harness/table.hpp"
#include "mpi/cluster.hpp"

namespace nmx::bench {

/// Emit the figure's observability sidecar: a traced mixed workload on `cfg`,
/// written as `<stem>.trace.json` (Perfetto) and `<stem>.metrics.csv`.
inline void emit_default_sidecar(const std::string& stem, mpi::ClusterConfig cfg) {
  harness::run_traced_sidecar(std::move(cfg), stem);
}

/// Register a google-benchmark entry reporting a netpipe point's latency and
/// bandwidth as counters.
inline void register_netpipe(const std::string& name, mpi::ClusterConfig cfg, std::size_t size,
                             bool any_source = false) {
  benchmark::RegisterBenchmark(name.c_str(), [cfg, size, any_source](benchmark::State& st) {
    for (auto _ : st) {
      auto pts = harness::netpipe(cfg, {size}, 3, any_source);
      st.counters["lat_us"] = pts[0].latency_us;
      st.counters["MBps"] = pts[0].bandwidth_MBps;
    }
  })->Iterations(1)->Unit(benchmark::kMicrosecond);
}

inline int run_registered(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace nmx::bench
