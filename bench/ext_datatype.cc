// Extension bench — derived datatypes (§5 future work): transferring a
// strided matrix column. Pack-based stacks gather into a bounce buffer and
// pay the copy on both sides; the NewMadeleine path hands the segments to
// the packet wrapper's existing gather machinery — the paper's hypothesis
// that "NewMadeleine's optimization schemes might improve performance for
// non-contiguous user datatypes", quantified.
#include "bench_common.hpp"

#include "mpi/datatype.hpp"

namespace {

using namespace nmx;

double strided_oneway_us(mpi::StackKind stack, std::size_t packed) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.stack = stack;
  mpi::Cluster cluster(cfg);
  // One column of doubles from a packed x 2 matrix.
  const auto dt =
      mpi::Datatype::vector(static_cast<int>(packed / sizeof(double)), sizeof(double),
                            2 * sizeof(double));
  double t = 0;
  cluster.run([&](mpi::Comm& c) {
    std::vector<std::byte> buf(dt.extent());
    for (int i = 0; i < 2; ++i) {
      const double t0 = c.wtime();
      if (c.rank() == 0) {
        c.send(buf.data(), dt, 1, 0);
        c.recv(buf.data(), dt, 1, 0);
      } else {
        c.recv(buf.data(), dt, 0, 0);
        c.send(buf.data(), dt, 0, 0);
      }
      if (c.rank() == 0 && i == 1) t = (c.wtime() - t0) / 2 * 1e6;
    }
  });
  return t;
}

void print_table() {
  harness::Table t({"packed size", "MPICH2-NMad (us)", "MVAPICH2 (us)", "Open MPI (us)"});
  for (std::size_t packed : {std::size_t{1} << 10, std::size_t{8} << 10, std::size_t{32} << 10,
                             std::size_t{256} << 10}) {
    t.add_row({harness::Table::bytes(packed),
               harness::Table::fmt(strided_oneway_us(mpi::StackKind::Mpich2Nmad, packed), 1),
               harness::Table::fmt(strided_oneway_us(mpi::StackKind::Mvapich2, packed), 1),
               harness::Table::fmt(strided_oneway_us(mpi::StackKind::OpenMpiBtlIb, packed), 1)});
  }
  std::cout << "== Extension: strided (vector) datatype one-way time ==\n";
  t.print(std::cout);
  std::cout << "(pack-based stacks pay the gather copy on both sides; the\n"
               " NewMadeleine path absorbs the segments in its packet wrapper)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  for (auto [name, stack] : {std::pair<const char*, nmx::mpi::StackKind>{
                                 "ext/datatype/nmad", nmx::mpi::StackKind::Mpich2Nmad},
                             {"ext/datatype/mvapich", nmx::mpi::StackKind::Mvapich2}}) {
    benchmark::RegisterBenchmark(name, [stack](benchmark::State& st) {
      for (auto _ : st) {
        st.counters["us_32K"] = strided_oneway_us(stack, std::size_t{32} << 10);
      }
    })->Iterations(1)->Unit(benchmark::kMicrosecond);
  }
  return nmx::bench::run_registered(argc, argv);
}
