// Figure 7 — asynchronous progression (§4.1.2): isend + compute + wait.
//   (a) eager messages over MX, 20 µs of computation: only the PIOMan stack
//       overlaps (sending time ≈ max(comm, compute); everyone else sums);
//   (b) rendezvous progression over IB, 400 µs of computation: only PIOMan
//       detects the handshake during the computation.
#include "bench_common.hpp"

namespace {

using namespace nmx;

mpi::ClusterConfig cfg_for(mpi::StackKind stack, bool pioman, bool mx) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.rails = {mx ? net::mx_profile() : net::ib_profile()};
  cfg.stack = stack;
  cfg.pioman = pioman;
  return cfg;
}

void table_for(const char* title, bool mx, const std::vector<std::size_t>& sizes,
               double compute_s) {
  struct Entry {
    const char* label;
    mpi::StackKind stack;
    bool pioman;
    double compute;
  };
  std::vector<Entry> entries;
  if (mx) {
    entries = {{"Reference (no computation)", mpi::StackKind::Mpich2Nmad, false, 0.0},
               {"MPICH2:Nem:NMad:MX", mpi::StackKind::Mpich2Nmad, false, compute_s},
               {"MPICH2:Nem:Nmad:PIOMan:MX", mpi::StackKind::Mpich2Nmad, true, compute_s},
               {"Open MPI:BTL:MX", mpi::StackKind::OpenMpiBtlMx, false, compute_s},
               {"Open MPI:PML:MX", mpi::StackKind::OpenMpiCmMx, false, compute_s}};
  } else {
    entries = {{"Reference (no computation)", mpi::StackKind::Mpich2Nmad, false, 0.0},
               {"MPICH2:Nem:NMad:IB", mpi::StackKind::Mpich2Nmad, false, compute_s},
               {"MPICH2:Nem:Nmad:PIOMan:IB", mpi::StackKind::Mpich2Nmad, true, compute_s},
               {"Open MPI", mpi::StackKind::OpenMpiBtlIb, false, compute_s},
               {"MVAPICH2", mpi::StackKind::Mvapich2, false, compute_s}};
  }

  std::vector<std::string> headers{"size(B)"};
  for (const auto& e : entries) headers.push_back(e.label);
  harness::Table t(std::move(headers));

  std::vector<std::vector<harness::OverlapPoint>> series;
  for (const auto& e : entries) {
    series.push_back(harness::overlap(cfg_for(e.stack, e.pioman, mx), sizes, e.compute));
  }
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row{harness::Table::bytes(sizes[i])};
    for (const auto& s : series) row.push_back(harness::Table::fmt(s[i].send_time_us, 1));
    t.add_row(std::move(row));
  }
  std::cout << title;
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  table_for("== Figure 7(a): overlapping eager messages over MX, 20us computation "
            "(sending time, usec) ==\n",
            /*mx=*/true, {4096, 16384}, 20e-6);
  table_for("== Figure 7(b): rendezvous progression over IB, 400us computation "
            "(sending time, usec) ==\n",
            /*mx=*/false, {16384, 65536, 262144, 1048576}, 400e-6);

  nmx::bench::emit_default_sidecar(
      "fig7_overlap", cfg_for(nmx::mpi::StackKind::Mpich2Nmad, /*pioman=*/true, /*mx=*/false));

  auto reg = [](const std::string& name, nmx::mpi::StackKind stack, bool pioman, bool mx,
                std::size_t size, double comp) {
    benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
      for (auto _ : st) {
        auto pts = nmx::harness::overlap(cfg_for(stack, pioman, mx), {size}, comp);
        st.counters["send_us"] = pts[0].send_time_us;
      }
    })->Iterations(1)->Unit(benchmark::kMicrosecond);
  };
  reg("fig7a/16K/MPICH2-Nmad", nmx::mpi::StackKind::Mpich2Nmad, false, true, 16384, 20e-6);
  reg("fig7a/16K/MPICH2-Nmad-PIOMan", nmx::mpi::StackKind::Mpich2Nmad, true, true, 16384, 20e-6);
  reg("fig7b/1M/MPICH2-Nmad", nmx::mpi::StackKind::Mpich2Nmad, false, false, 1 << 20, 400e-6);
  reg("fig7b/1M/MPICH2-Nmad-PIOMan", nmx::mpi::StackKind::Mpich2Nmad, true, false, 1 << 20,
      400e-6);
  reg("fig7b/1M/MVAPICH2", nmx::mpi::StackKind::Mvapich2, false, false, 1 << 20, 400e-6);
  return nmx::bench::run_registered(argc, argv);
}
