// Ablation A5 — the CH3 bypass itself (§2.1.3 / §3.1, Figure 2): the same
// stack with the paper's direct CH3->NewMadeleine path vs the stock netmod
// path (copies through fixed cells, CH3 rendezvous nested on top of
// NewMadeleine's internal one).
#include "bench_common.hpp"

namespace {

using namespace nmx;

mpi::ClusterConfig cfg_mode(bool bypass) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.bypass = bypass;
  return cfg;
}

void print_tables() {
  const auto lat_sizes = harness::latency_sizes();
  auto legacy_l = harness::netpipe(cfg_mode(false), lat_sizes);
  auto bypass_l = harness::netpipe(cfg_mode(true), lat_sizes);
  harness::Table lat({"size(B)", "legacy netmod (us)", "CH3 bypass (us)"});
  for (std::size_t i = 0; i < lat_sizes.size(); ++i) {
    lat.add_row({harness::Table::bytes(lat_sizes[i]), harness::Table::fmt(legacy_l[i].latency_us),
                 harness::Table::fmt(bypass_l[i].latency_us)});
  }
  std::cout << "== Ablation: CH3 bypass vs stock netmod path — latency ==\n";
  lat.print(std::cout);

  const auto bw_sizes = harness::bandwidth_sizes();
  auto legacy_b = harness::netpipe(cfg_mode(false), bw_sizes);
  auto bypass_b = harness::netpipe(cfg_mode(true), bw_sizes);
  harness::Table bw({"size(B)", "legacy netmod (MBps)", "CH3 bypass (MBps)"});
  for (std::size_t i = 0; i < bw_sizes.size(); ++i) {
    bw.add_row({harness::Table::bytes(bw_sizes[i]),
                harness::Table::fmt(legacy_b[i].bandwidth_MBps, 1),
                harness::Table::fmt(bypass_b[i].bandwidth_MBps, 1)});
  }
  std::cout << "\n== Ablation: CH3 bypass vs stock netmod path — bandwidth "
               "(nested handshake, Figure 2) ==\n";
  bw.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  for (bool bypass : {false, true}) {
    const char* name = bypass ? "abl/bypass/on" : "abl/bypass/off";
    benchmark::RegisterBenchmark(name, [bypass](benchmark::State& st) {
      for (auto _ : st) {
        st.counters["lat_us"] = nmx::harness::netpipe(cfg_mode(bypass), {4})[0].latency_us;
        st.counters["bw96K_MBps"] =
            nmx::harness::netpipe(cfg_mode(bypass), {96 * 1024})[0].bandwidth_MBps;
      }
    })->Iterations(1);
  }
  return nmx::bench::run_registered(argc, argv);
}
