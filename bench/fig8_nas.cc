// Figure 8 — NAS Parallel Benchmarks, class C, on the Grid'5000-like testbed
// (§4.2): 10 nodes, IB rail, cyclic process placement ("in the 8 (or 9)
// processes case, only one process runs on a node"), 8/9, 16, 32/36 and 64
// processes. BT and SP use the square counts 9 and 36.
//
// Stacks: MVAPICH2, Open MPI, MPICH2-NMad without and with PIOMan. The
// paper's Figure 8 lacks PIOMan numbers for MG, LU and the whole 64-process
// case ("a problem in the current implementation that leads to deadlocks");
// our implementation runs them — those cells are printed with a trailing '*'
// and flagged "(paper: n/a)".
//
// Environment knobs:
//   NMX_FIG8_CLASS=A|B|C   (default C)
//   NMX_FIG8_FRACTION=0.03 (fraction of full iterations simulated)
//   NMX_FIG8_REPORT_ONLY=1 (skip the tables/benchmarks; only produce the
//                           critical-path report — CI's perf-smoke mode)
#include <cstdlib>

#include "bench_common.hpp"
#include "nas/nas.hpp"

namespace {

using namespace nmx;

struct StackDef {
  const char* label;
  mpi::StackKind stack;
  bool pioman;
};

const StackDef kStacks[] = {
    {"MVAPICH2", mpi::StackKind::Mvapich2, false},
    {"Open_MPI", mpi::StackKind::OpenMpiBtlIb, false},
    {"MPICH2-NMad_NO_PIOMan", mpi::StackKind::Mpich2Nmad, false},
    {"MPICH2-NMad_with_PIOMan", mpi::StackKind::Mpich2Nmad, true},
};

mpi::ClusterConfig testbed(mpi::StackKind stack, bool pioman, int procs) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 10;  // the Grid'5000 testbed
  cfg.procs = procs;
  cfg.rails = {net::ib_profile()};
  cfg.cyclic_mapping = true;
  cfg.stack = stack;
  cfg.pioman = pioman;
  return cfg;
}

nas::NasClass parse_class() {
  const char* e = std::getenv("NMX_FIG8_CLASS");
  if (e == nullptr) return nas::NasClass::C;
  switch (e[0]) {
    case 'S': return nas::NasClass::S;
    case 'A': return nas::NasClass::A;
    case 'B': return nas::NasClass::B;
    default: return nas::NasClass::C;
  }
}

double parse_fraction() {
  const char* e = std::getenv("NMX_FIG8_FRACTION");
  return e != nullptr ? std::atof(e) : 0.03;
}

bool paper_na(const std::string& kernel, bool pioman, int procs) {
  if (!pioman) return false;
  return procs >= 64 || kernel == "MG" || kernel == "LU";
}

void run_proc_count(int procs, nas::NasClass cls, double fraction) {
  harness::Table t({"Kernel", kStacks[0].label, kStacks[1].label, kStacks[2].label,
                    std::string(kStacks[3].label) + "(* = paper: n/a)"});
  for (const std::string& kernel : nas::all_kernels()) {
    const bool square_needed = kernel == "BT" || kernel == "SP";
    int p = procs;
    if (square_needed) {
      // 8 -> 9, 32 -> 36 (the paper's substitution); 16 and 64 are square.
      if (procs == 8) p = 9;
      if (procs == 32) p = 36;
    }
    // Built with append: the `"(" + std::to_string(p)` temporary trips a
    // GCC 12 -Wrestrict false positive when inlined at -O3.
    std::string label = kernel;
    if (p != procs) {
      label += "(";
      label += std::to_string(p);
      label += ")";
    }
    std::vector<std::string> row{label};
    for (const StackDef& s : kStacks) {
      mpi::Cluster cluster(testbed(s.stack, s.pioman, p));
      nas::NasConfig nc;
      nc.cls = cls;
      nc.iter_fraction = fraction;
      const nas::NasResult r = nas::run_nas(cluster, kernel, nc);
      std::string cell = harness::Table::fmt(r.seconds, 1);
      if (paper_na(kernel, s.pioman, p)) cell += "*";
      row.push_back(std::move(cell));
    }
    t.add_row(std::move(row));
  }
  std::cout << "-- " << procs << " processes (BT/SP on the square count in parentheses) --\n";
  t.print(std::cout);
  std::cout << "\n";
}

// Critical-path report: trace CG and FT on the paper's stack at 32 procs —
// plus FT's engine-routed transpose all-to-all at 128 and 512 ranks (class B
// there, to bound the full send+recv slice footprint) — extract the
// per-iteration critical path, the rail latency tolerance and the
// collective-phase tiling, and leave fig8_nas.report.json behind for the CI
// composition gate.
void emit_report(nas::NasClass cls, double fraction) {
  struct Leg {
    const char* kernel;
    int procs;
    nas::NasClass cls;
  };
  const Leg legs[] = {
      {"CG", 32, cls},
      {"FT", 32, cls},
      {"FT", 128, nas::NasClass::B},
      {"FT", 512, nas::NasClass::B},
  };
  obs::Report rep;
  rep.bench = "fig8_nas";
  for (const Leg& leg : legs) {
    mpi::ClusterConfig cfg = testbed(mpi::StackKind::Mpich2Nmad, false, leg.procs);
    cfg.trace = true;
    mpi::Cluster cluster(cfg);
    nas::NasConfig nc;
    nc.cls = leg.cls;
    nc.iter_fraction = fraction;
    nas::run_nas(cluster, leg.kernel, nc);
    rep.runs.push_back(harness::analyze_cluster(
        cluster,
        std::string(leg.kernel) + "/" + std::to_string(leg.procs) + "procs/MPICH2-NMad"));
  }
  harness::write_report_sidecar(rep, "fig8_nas");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const nas::NasClass cls = parse_class();
  const double fraction = parse_fraction();
  if (std::getenv("NMX_FIG8_REPORT_ONLY") != nullptr) {
    emit_report(cls, fraction);
    return 0;
  }
  std::cout << "== Figure 8: NAS kernels, class " << nas::to_char(cls)
            << ", execution time in seconds (fraction=" << fraction << ") ==\n\n";
  for (int procs : {8, 16, 32, 64}) run_proc_count(procs, cls, fraction);
  emit_report(cls, fraction);

  nmx::bench::emit_default_sidecar("fig8_nas",
                                   testbed(nmx::mpi::StackKind::Mpich2Nmad, true, 8));

  // Machine-readable subset: CG and FT at 16 procs across the stacks.
  for (const auto& s : kStacks) {
    for (const char* kernel : {"CG", "FT"}) {
      std::string name = std::string("fig8/") + kernel + "/16procs/" + s.label;
      benchmark::RegisterBenchmark(name.c_str(), [s, kernel, cls, fraction](benchmark::State& st) {
        for (auto _ : st) {
          nmx::mpi::Cluster cluster(testbed(s.stack, s.pioman, 16));
          nmx::nas::NasConfig nc;
          nc.cls = cls;
          nc.iter_fraction = fraction;
          const auto r = nmx::nas::run_nas(cluster, kernel, nc);
          st.counters["seconds"] = r.seconds;
        }
      })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
  }
  return nmx::bench::run_registered(argc, argv);
}
