// Ablation A6 — allreduce algorithm choice: binomial reduce + broadcast
// (2·log2 P latency, each round moves the vector once) versus recursive
// doubling (log2 P rounds, full vector every round). The crossover is the
// classic small-vs-large payload tradeoff MPI implementations tune.
#include "bench_common.hpp"

namespace {

using namespace nmx;

double allreduce_time(bool recursive_doubling, int procs, std::size_t doubles) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 10;
  cfg.procs = procs;
  cfg.cyclic_mapping = true;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  mpi::Cluster cluster(cfg);
  double t = 0;
  cluster.run([&](mpi::Comm& c) {
    std::vector<double> in(doubles, 1.0), out(doubles);
    // warmup + measured
    for (int i = 0; i < 2; ++i) {
      c.barrier();
      const double t0 = c.wtime();
      if (recursive_doubling) {
        c.allreduce_rd(in.data(), out.data(), doubles, mpi::ReduceOp::Sum);
      } else {
        c.allreduce(in.data(), out.data(), doubles, mpi::ReduceOp::Sum);
      }
      if (c.rank() == 0 && i == 1) t = c.wtime() - t0;
    }
  });
  return t * 1e6;
}

void print_table() {
  harness::Table t({"procs", "doubles", "reduce+bcast (us)", "recursive-dbl (us)", "winner"});
  for (int procs : {8, 16, 32}) {
    for (std::size_t doubles : {std::size_t{1}, std::size_t{256}, std::size_t{16384},
                                std::size_t{262144}}) {
      const double rb = allreduce_time(false, procs, doubles);
      const double rd = allreduce_time(true, procs, doubles);
      t.add_row({std::to_string(procs), std::to_string(doubles), harness::Table::fmt(rb, 1),
                 harness::Table::fmt(rd, 1), rd < rb ? "recursive-dbl" : "reduce+bcast"});
    }
  }
  std::cout << "== Ablation: allreduce algorithm (latency vs bandwidth tradeoff) ==\n";
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  for (bool rd : {false, true}) {
    const char* name = rd ? "abl/allreduce/recursive_dbl" : "abl/allreduce/reduce_bcast";
    benchmark::RegisterBenchmark(name, [rd](benchmark::State& st) {
      for (auto _ : st) st.counters["us_8B_x16"] = allreduce_time(rd, 16, 1);
    })->Iterations(1)->Unit(benchmark::kMicrosecond);
  }
  return nmx::bench::run_registered(argc, argv);
}
