// Ablation A7 — collective algorithm choice, swept through the engine.
//
// Part 1 sweeps every engine algorithm (binomial / k-ary / ring / recursive
// doubling / NIC offload) across rank counts and payload regimes: the
// classic latency-vs-bandwidth crossover MPI implementations tune, plus the
// modeled NIC-offloaded combine for the scalar shapes it serves.
//
// Part 2 is the rail-routing headline: the same binomial reduce+bcast on a
// two-rail testbed where an interfering stream pins one rail, with and
// without the cost-model strategy routing each edge's chunks. The fixed
// (Default-strategy) variant keeps feeding the contended rail; the
// cost-model variant sheds onto the quiet one — the speedup is the point of
// wiring the collectives through the cost model at all.
//
// The whole session is deterministic virtual time, so the numbers are
// runner-independent. They are emitted as BENCH_abl_allreduce.json — rows of
// {"bench", "ranks", "events_per_s"} where events_per_s is collective
// operations per *virtual* second — and CI gates them against
// bench/BENCH_abl_allreduce.baseline.json with check_bench_regression.py.
#include <fstream>

#include "bench_common.hpp"

namespace {

using namespace nmx;

constexpr coll::Algo kAlgos[] = {coll::Algo::Binomial, coll::Algo::Kary, coll::Algo::Ring,
                                 coll::Algo::RecDoubling, coll::Algo::NicOffload};

/// One engine-routed allreduce (warmup + measured) on the 10-node testbed;
/// returns virtual microseconds.
double allreduce_time(coll::Algo algo, int procs, std::size_t doubles) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 10;
  cfg.procs = procs;
  cfg.cyclic_mapping = true;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.coll.allreduce = algo;
  mpi::Cluster cluster(cfg);
  double t = 0;
  cluster.run([&](mpi::Comm& c) {
    std::vector<double> in(doubles, 1.0), out(doubles);
    for (int i = 0; i < 2; ++i) {
      c.barrier();
      const double t0 = c.wtime();
      c.allreduce(in.data(), out.data(), doubles, mpi::ReduceOp::Sum);
      if (c.rank() == 0 && i == 1) t = c.wtime() - t0;
    }
  });
  return t * 1e6;
}

/// Rail-contended 2 MiB allreduce: ranks 2 and 5 (one per node) flood rail 0
/// with pinned point-to-point traffic while ranks {0,1,3,4} run the binomial
/// reduce+bcast in a sub-communicator. `cost_model` toggles whether chunk
/// routing sees the congestion.
double contended_time(bool cost_model) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 6;  // ranks 0-2 on node 0, ranks 3-5 on node 1
  cfg.rails = {net::ib_profile(), net::ib_profile()};
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.strategy = cost_model ? nmad::StrategyKind::CostModel : nmad::StrategyKind::Default;
  cfg.rank_rails[2] = {0};  // the interferers drive rail 0 only
  cfg.rank_rails[5] = {0};

  constexpr std::size_t kDoubles = 262144;  // 2 MiB vector
  constexpr int kNoiseRounds = 24;
  double t = 0;
  mpi::Cluster cluster(cfg);
  cluster.run([&](mpi::Comm& c) {
    const bool interferer = c.rank() == 2 || c.rank() == 5;
    mpi::Comm sub = c.split(interferer ? 1 : 0, c.rank());
    if (interferer) {
      const int peer = c.rank() == 2 ? 5 : 2;
      std::vector<std::byte> out(2_MiB), in(2_MiB);
      for (int i = 0; i < kNoiseRounds; ++i) {
        c.sendrecv(out.data(), out.size(), peer, i, in.data(), in.size(), peer, i);
      }
    } else {
      std::vector<double> in(kDoubles, 1.0), out(kDoubles);
      for (int i = 0; i < 2; ++i) {
        sub.barrier();
        const double t0 = c.wtime();
        sub.allreduce(in.data(), out.data(), kDoubles, mpi::ReduceOp::Sum);
        if (c.rank() == 0 && i == 1) t = c.wtime() - t0;
      }
    }
  });
  return t * 1e6;
}

struct Row {
  std::string bench;
  int ranks;
  double us;
};

void write_sidecar(const std::vector<Row>& rows) {
  std::ofstream os("BENCH_abl_allreduce.json");
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  {\"bench\": \"%s\", \"ranks\": %d, \"us\": %.6g, "
                  "\"events_per_s\": %.9g}%s\n",
                  rows[i].bench.c_str(), rows[i].ranks, rows[i].us, 1e6 / rows[i].us,
                  i + 1 < rows.size() ? "," : "");
    os << buf;
  }
  os << "]\n";
  std::cout << "bench sidecar: BENCH_abl_allreduce.json (" << rows.size() << " series)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Row> rows;

  std::cout << "== Ablation: allreduce algorithm x ranks x payload (virtual us) ==\n";
  for (const std::size_t doubles : {std::size_t{1}, std::size_t{1024}, std::size_t{262144}}) {
    harness::Table t({"procs", "binomial", "kary", "ring", "recdbl", "nic", "winner"});
    for (const int procs : {8, 16, 32, 64}) {
      std::vector<std::string> row{std::to_string(procs)};
      double best = 0;
      const char* winner = "";
      for (const coll::Algo algo : kAlgos) {
        const double us = allreduce_time(algo, procs, doubles);
        row.push_back(harness::Table::fmt(us, 1));
        if (winner[0] == '\0' || us < best) {
          best = us;
          winner = coll::to_string(algo);
        }
        rows.push_back({std::string("abl_allreduce/") + coll::to_string(algo) + "/" +
                            std::to_string(doubles),
                        procs, us});
      }
      row.push_back(winner);
      t.add_row(std::move(row));
    }
    std::cout << "-- " << doubles << " doubles --\n";
    t.print(std::cout);
    std::cout << "\n";
  }

  const double fixed = contended_time(false);
  const double routed = contended_time(true);
  std::cout << "== Rail-contended 2 MiB allreduce (4 ranks + rail-0 interferers) ==\n";
  std::cout << "  fixed binomial (Default strategy):  " << harness::Table::fmt(fixed, 1)
            << " us\n";
  std::cout << "  cost-model-routed binomial:         " << harness::Table::fmt(routed, 1)
            << " us\n";
  std::cout << "  speedup: " << harness::Table::fmt(fixed / routed, 2) << "x\n\n";
  rows.push_back({"abl_allreduce/contended/fixed", 4, fixed});
  rows.push_back({"abl_allreduce/contended/routed", 4, routed});
  write_sidecar(rows);

  benchmark::RegisterBenchmark("abl/allreduce/contended", [fixed, routed](benchmark::State& st) {
    for (auto _ : st) {
      st.counters["fixed_us"] = fixed;
      st.counters["routed_us"] = routed;
      st.counters["speedup"] = fixed / routed;
    }
  })->Iterations(1)->Unit(benchmark::kMicrosecond);
  return nmx::bench::run_registered(argc, argv);
}
