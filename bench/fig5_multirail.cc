// Figure 5 — heterogeneous multirail (Myri-10G + InfiniBand 10G) with the
// split_balance strategy (§4.1.1): small messages ride the fastest rail
// (latency ≈ the IB-only curve), large messages are split across both rails
// with the sampled adaptive ratio (aggregated bandwidth ≈ the sum of the
// rails).
#include "bench_common.hpp"

namespace {

using namespace nmx;

mpi::ClusterConfig rail_config(std::vector<net::NicProfile> rails) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.rails = std::move(rails);
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.strategy = nmad::StrategyKind::SplitBalance;
  return cfg;
}

void print_tables() {
  const auto lat_sizes = harness::latency_sizes();
  const auto bw_sizes = harness::bandwidth_sizes();

  const auto mx = rail_config({net::mx_profile()});
  const auto ib = rail_config({net::ib_profile()});
  const auto multi = rail_config({net::ib_profile(), net::mx_profile()});

  auto mx_l = harness::netpipe(mx, lat_sizes);
  auto ib_l = harness::netpipe(ib, lat_sizes);
  auto multi_l = harness::netpipe(multi, lat_sizes);

  harness::Table lat({"size(B)", "MPICH2:Nmad:MX", "MPICH2:Nmad:IB", "MPICH2:Nmad:Multi-MX-IB"});
  for (std::size_t i = 0; i < lat_sizes.size(); ++i) {
    lat.add_row({harness::Table::bytes(lat_sizes[i]), harness::Table::fmt(mx_l[i].latency_us),
                 harness::Table::fmt(ib_l[i].latency_us),
                 harness::Table::fmt(multi_l[i].latency_us)});
  }
  std::cout << "== Figure 5(a): multirail latency (usec, one-way) ==\n";
  lat.print(std::cout);

  auto mx_b = harness::netpipe(mx, bw_sizes);
  auto ib_b = harness::netpipe(ib, bw_sizes);
  auto multi_b = harness::netpipe(multi, bw_sizes);

  harness::Table bw({"size(B)", "MPICH2:Nmad:MX", "MPICH2:Nmad:IB", "MPICH2:Nmad:Multi-MX-IB"});
  for (std::size_t i = 0; i < bw_sizes.size(); ++i) {
    bw.add_row({harness::Table::bytes(bw_sizes[i]), harness::Table::fmt(mx_b[i].bandwidth_MBps, 1),
                harness::Table::fmt(ib_b[i].bandwidth_MBps, 1),
                harness::Table::fmt(multi_b[i].bandwidth_MBps, 1)});
  }
  std::cout << "\n== Figure 5(b): multirail bandwidth (MBps) ==\n";
  bw.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  nmx::bench::emit_default_sidecar(
      "fig5_multirail", rail_config({nmx::net::ib_profile(), nmx::net::mx_profile()}));
  using nmx::bench::register_netpipe;
  register_netpipe("fig5/latency4B/MX", rail_config({nmx::net::mx_profile()}), 4);
  register_netpipe("fig5/latency4B/IB", rail_config({nmx::net::ib_profile()}), 4);
  register_netpipe("fig5/latency4B/Multi",
                   rail_config({nmx::net::ib_profile(), nmx::net::mx_profile()}), 4);
  register_netpipe("fig5/bw16M/MX", rail_config({nmx::net::mx_profile()}), 16 << 20);
  register_netpipe("fig5/bw16M/IB", rail_config({nmx::net::ib_profile()}), 16 << 20);
  register_netpipe("fig5/bw16M/Multi",
                   rail_config({nmx::net::ib_profile(), nmx::net::mx_profile()}), 16 << 20);
  return nmx::bench::run_registered(argc, argv);
}
