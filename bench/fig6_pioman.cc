// Figure 6 — the raw cost of centralizing progression in PIOMan (§4.1.2):
//   (a) shared memory: Nemesis vs Nemesis+PIOMan (~ +450 ns, constant) with
//       Open MPI's sm path for reference;
//   (b) Myrinet MX: MPICH2:Nem:Nmad:MX vs +PIOMan (~ +2 µs), against Open
//       MPI's two MX paths (lean CM PML vs heavier BTL).
#include "bench_common.hpp"

namespace {

using namespace nmx;

mpi::ClusterConfig shm_config(mpi::StackKind stack, bool pioman) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.procs = 2;
  cfg.stack = stack;
  cfg.pioman = pioman;
  return cfg;
}

mpi::ClusterConfig mx_config(mpi::StackKind stack, bool pioman) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.rails = {net::mx_profile()};
  cfg.stack = stack;
  cfg.pioman = pioman;
  return cfg;
}

void print_tables() {
  const auto sizes = harness::latency_sizes();

  auto nem = harness::netpipe(shm_config(mpi::StackKind::Mpich2Nmad, false), sizes);
  auto nem_piom = harness::netpipe(shm_config(mpi::StackKind::Mpich2Nmad, true), sizes);
  auto ompi_shm = harness::netpipe(shm_config(mpi::StackKind::OpenMpiBtlIb, false), sizes);

  harness::Table a({"size(B)", "MPICH2:Nemesis", "MPICH2:Nemesis:PIOMan", "Open MPI"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    a.add_row({harness::Table::bytes(sizes[i]), harness::Table::fmt(nem[i].latency_us),
               harness::Table::fmt(nem_piom[i].latency_us),
               harness::Table::fmt(ompi_shm[i].latency_us)});
  }
  std::cout << "== Figure 6(a): latency over shared memory (usec, one-way) ==\n";
  a.print(std::cout);

  auto cm = harness::netpipe(mx_config(mpi::StackKind::OpenMpiCmMx, false), sizes);
  auto btl = harness::netpipe(mx_config(mpi::StackKind::OpenMpiBtlMx, false), sizes);
  auto nmad_mx = harness::netpipe(mx_config(mpi::StackKind::Mpich2Nmad, false), sizes);
  auto nmad_piom = harness::netpipe(mx_config(mpi::StackKind::Mpich2Nmad, true), sizes);

  harness::Table b({"size(B)", "OpenMPI:PML:MX", "OpenMPI:BTL:MX", "MPICH2:Nem:Nmad:MX",
                    "MPICH2:Nem:Nmad:PIOM:MX"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    b.add_row({harness::Table::bytes(sizes[i]), harness::Table::fmt(cm[i].latency_us),
               harness::Table::fmt(btl[i].latency_us), harness::Table::fmt(nmad_mx[i].latency_us),
               harness::Table::fmt(nmad_piom[i].latency_us)});
  }
  std::cout << "\n== Figure 6(b): latency over Myrinet MX (usec, one-way) ==\n";
  b.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  nmx::bench::emit_default_sidecar("fig6_pioman",
                                   mx_config(nmx::mpi::StackKind::Mpich2Nmad, true));
  using nmx::bench::register_netpipe;
  register_netpipe("fig6/shm4B/Nemesis", shm_config(nmx::mpi::StackKind::Mpich2Nmad, false), 4);
  register_netpipe("fig6/shm4B/Nemesis-PIOMan", shm_config(nmx::mpi::StackKind::Mpich2Nmad, true),
                   4);
  register_netpipe("fig6/shm4B/OpenMPI", shm_config(nmx::mpi::StackKind::OpenMpiBtlIb, false), 4);
  register_netpipe("fig6/mx4B/OpenMPI-CM", mx_config(nmx::mpi::StackKind::OpenMpiCmMx, false), 4);
  register_netpipe("fig6/mx4B/OpenMPI-BTL", mx_config(nmx::mpi::StackKind::OpenMpiBtlMx, false),
                   4);
  register_netpipe("fig6/mx4B/MPICH2-Nmad", mx_config(nmx::mpi::StackKind::Mpich2Nmad, false), 4);
  register_netpipe("fig6/mx4B/MPICH2-Nmad-PIOMan", mx_config(nmx::mpi::StackKind::Mpich2Nmad, true),
                   4);
  return nmx::bench::run_registered(argc, argv);
}
