// Ablation A2 — adaptive vs naive multirail split ratio (§2.2, [4]): on
// asymmetric rails (fast IB + slower MX), splitting 50/50 makes the slow
// rail the bottleneck; the sampling-driven adaptive ratio equalizes finish
// times. On symmetric rails the two policies coincide.
#include "bench_common.hpp"

namespace {

using namespace nmx;

double multirail_bw(bool adaptive, net::NicProfile second_rail, std::size_t size) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.rails = {net::ib_profile(), second_rail};
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.strategy = nmad::StrategyKind::SplitBalance;
  cfg.adaptive_split = adaptive;
  return harness::netpipe(cfg, {size})[0].bandwidth_MBps;
}

net::NicProfile slow_mx(double factor) {
  net::NicProfile p = net::mx_profile();
  p.bandwidth *= factor;
  p.name = "myri-slowed";
  return p;
}

void print_table() {
  harness::Table t({"2nd rail", "size", "even 50/50 (MBps)", "adaptive (MBps)", "gain"});
  for (double factor : {1.0, 0.5, 0.25, 0.1}) {
    for (std::size_t size : {std::size_t{4} << 20, std::size_t{64} << 20}) {
      const double even = multirail_bw(false, slow_mx(factor), size);
      const double adaptive = multirail_bw(true, slow_mx(factor), size);
      t.add_row({"MX x" + harness::Table::fmt(factor, 2), harness::Table::bytes(size),
                 harness::Table::fmt(even, 1), harness::Table::fmt(adaptive, 1),
                 harness::Table::fmt(adaptive / even, 2) + "x"});
    }
  }
  std::cout << "== Ablation: adaptive split ratio vs even split on asymmetric rails ==\n";
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  for (bool adaptive : {false, true}) {
    const char* name = adaptive ? "abl/split/adaptive" : "abl/split/even";
    benchmark::RegisterBenchmark(name, [adaptive](benchmark::State& st) {
      for (auto _ : st) {
        st.counters["MBps"] = multirail_bw(adaptive, slow_mx(0.25), std::size_t{16} << 20);
      }
    })->Iterations(1);
  }
  return nmx::bench::run_registered(argc, argv);
}
