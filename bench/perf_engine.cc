// Wall-clock performance harness for the simulation engine — the repo's perf
// trajectory. Three workloads:
//
//   * storm      — a synthetic self-sustaining event storm (4096 concurrent
//                  chains, NIC-style constant deltas, periodic far-future
//                  timeouts cancelled by the next event) that isolates the
//                  raw schedule/cancel/dispatch path. This is the ≥2x
//                  microbench the pooled-event engine is measured by.
//   * spawn      — actor spawn/teardown microbench: waves of short-lived
//                  actors created, run, and reaped. Measures the fiber
//                  forge + pooled-stack acquire/release path (one mmap per
//                  concurrently-live actor, reuse after); "events" counts
//                  actors created + destroyed.
//   * nas_cg_s   — fig8-style NAS CG class S on the Grid'5000 testbed
//                  (10 nodes, IB, cyclic placement, MPICH2-NMad + PIOMan):
//                  the real simulator hot path, with actors, the fabric and
//                  the full protocol stack in play. The fiber runtime runs
//                  it from 8 up to 1024 ranks (--ranks=128,256,512,1024);
//                  peak RSS must stay sub-linear in ranks (pooled lazily
//                  committed stacks), gated by --rss-sublinear in CI.
//
// Each run reports simulated events, wall seconds, events/sec and peak RSS,
// and the whole session is emitted as a JSON array (BENCH_engine.json):
//   [{"bench": ..., "ranks": N, "events": N, "wall_s": X,
//     "events_per_s": X, "rss_mb": X}, ...]
// CI compares events_per_s against the checked-in baseline and fails on a
// >25% regression (tools/check_bench_regression.py).
//
// Flags:  --ranks=8,16     NAS rank subset (default 8,16,32,64)
//         --out=PATH       JSON output path (default BENCH_engine.json)
//         --skip-storm / --skip-spawn / --skip-nas
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"
#include "nas/nas.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace {

using namespace nmx;

struct Row {
  std::string bench;
  int ranks = 0;  // 0: no simulated ranks (pure engine microbench)
  std::size_t events = 0;
  double wall_s = 0;
  double events_per_s = 0;
  double rss_mb = 0;
};

/// Peak resident set size so far, from /proc/self/status (VmHWM). 0 when the
/// proc filesystem is unavailable (non-Linux).
double peak_rss_mb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;  // kB -> MB
    }
  }
  return 0.0;
}

Row run_storm() {
  constexpr std::size_t kEvents = 3'000'000;
  constexpr Time kDeltas[4] = {1e-7, 3e-7, 1.1e-6, 1.9e-6};
  sim::Engine eng;
  sim::Xoshiro256 rng(42);
  std::size_t fired = 0;
  struct Chain {
    sim::EventId timeout = 0;
  };
  static Chain chains[4096];
  for (auto& c : chains) c.timeout = 0;
  std::function<void(int)> arm = [&](int c) {
    if (fired >= kEvents) return;
    ++fired;
    Chain& ch = chains[c];
    if (ch.timeout != 0) {
      eng.cancel(ch.timeout);
      ch.timeout = 0;
    }
    if ((fired & 3u) == 0) {
      ch.timeout = eng.schedule_in(1e-3, [] {});
    }
    const Time dt = kDeltas[rng.below(4)];
    void* pad[3] = {&eng, &ch, nullptr};  // typical 3-pointer capture size
    eng.schedule_in(dt, [&arm, c, pad] { (void)pad; arm(c); });
  };
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < 4096; ++c) {
    eng.schedule_in(kDeltas[c & 3], [&arm, c] { arm(c); });
  }
  eng.run();
  const auto t1 = std::chrono::steady_clock::now();

  Row r;
  r.bench = "storm";
  r.events = eng.events_processed();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_s = static_cast<double>(r.events) / r.wall_s;
  r.rss_mb = peak_rss_mb();
  if (eng.closure_heap_allocs() != 0) {
    std::fprintf(stderr, "WARNING: storm closures spilled to the heap (%llu)\n",
                 static_cast<unsigned long long>(eng.closure_heap_allocs()));
  }
  return r;
}

Row run_spawn() {
  // 64 waves of 1024 actors: each actor does one sleep (forcing a real
  // schedule + fiber switch round trip) and exits; the wave is then run to
  // completion and reaped. Peak concurrency is one wave, so the stack pool's
  // high-water mark stays at 1024 while 65536 actors pass through it —
  // steady-state spawn cost is a free-list pop, not an mmap.
  constexpr int kWaves = 64;
  constexpr int kActorsPerWave = 1024;
  sim::Engine eng;
  std::size_t done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int w = 0; w < kWaves; ++w) {
    for (int i = 0; i < kActorsPerWave; ++i) {
      eng.spawn("spawn." + std::to_string(w) + "." + std::to_string(i), [&done](sim::Actor& self) {
        self.sleep_for(1e-9);
        ++done;
      });
    }
    eng.run();
    eng.reap_finished();
  }
  const auto t1 = std::chrono::steady_clock::now();

  Row r;
  r.bench = "spawn";
  r.events = 2 * done;  // created + destroyed
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_s = static_cast<double>(r.events) / r.wall_s;
  r.rss_mb = peak_rss_mb();
  if (done != static_cast<std::size_t>(kWaves) * kActorsPerWave) {
    std::fprintf(stderr, "WARNING: spawn bench lost actors (%zu)\n", done);
  }
  if (eng.fiber_stacks_allocated() > kActorsPerWave) {
    std::fprintf(stderr, "WARNING: stack pool failed to reuse (allocated %llu > wave size)\n",
                 static_cast<unsigned long long>(eng.fiber_stacks_allocated()));
  }
  return r;
}

Row run_nas(int ranks) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 10;  // the fig8 Grid'5000 testbed
  cfg.procs = ranks;
  cfg.rails = {net::ib_profile()};
  cfg.cyclic_mapping = true;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.pioman = true;

  const auto t0 = std::chrono::steady_clock::now();
  mpi::Cluster cluster(cfg);
  nas::NasConfig nc;
  nc.cls = nas::NasClass::S;  // CI-budget class; the shape is rank-scaling
  const nas::NasResult res = nas::run_nas(cluster, "CG", nc);
  const auto t1 = std::chrono::steady_clock::now();
  (void)res;

  Row r;
  r.bench = "nas_cg_s";
  r.ranks = ranks;
  r.events = cluster.engine().events_processed();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_s = static_cast<double>(r.events) / r.wall_s;
  r.rss_mb = peak_rss_mb();
  return r;
}

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  {\"bench\": \"%s\", \"ranks\": %d, \"events\": %zu, \"wall_s\": %.4f, "
                  "\"events_per_s\": %.0f, \"rss_mb\": %.1f}%s\n",
                  r.bench.c_str(), r.ranks, r.events, r.wall_s, r.events_per_s, r.rss_mb,
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> ranks{8, 16, 32, 64};
  std::string out_path = "BENCH_engine.json";
  bool do_storm = true, do_spawn = true, do_nas = true;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--ranks=", 0) == 0) {
      ranks.clear();
      for (std::size_t pos = 8; pos < a.size();) {
        ranks.push_back(std::atoi(a.c_str() + pos));
        pos = a.find(',', pos);
        if (pos == std::string::npos) break;
        ++pos;
      }
    } else if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else if (a == "--skip-storm") {
      do_storm = false;
    } else if (a == "--skip-spawn") {
      do_spawn = false;
    } else if (a == "--skip-nas") {
      do_nas = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return 2;
    }
  }

  std::vector<Row> rows;
  auto report = [&](const Row& r) {
    std::printf("%-10s ranks=%-3d events=%-9zu wall_s=%-7.3f events_per_s=%-10.0f rss_mb=%.1f\n",
                r.bench.c_str(), r.ranks, r.events, r.wall_s, r.events_per_s, r.rss_mb);
    rows.push_back(r);
  };

  std::printf("== perf_engine: wall-clock engine throughput ==\n");
  if (do_storm) report(run_storm());
  if (do_spawn) report(run_spawn());
  if (do_nas) {
    for (int n : ranks) report(run_nas(n));
  }
  write_json(rows, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
