// Ablation A3 — the registration cache (the mechanism behind MVAPICH2's
// Figure 4b lead, and what NewMadeleine deliberately does without, §4.1.1):
// repeated large transfers from the same buffer with the MVAPICH2-like
// stack, cache on vs off.
#include "bench_common.hpp"

namespace {

using namespace nmx;

double mvapich_bw(bool rcache, std::size_t size) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.stack = mpi::StackKind::Mvapich2;
  cfg.mvapich_rcache = rcache;
  return harness::netpipe(cfg, {size})[0].bandwidth_MBps;
}

void print_table() {
  harness::Table t({"size", "no cache (MBps)", "cache (MBps)", "gain", "Nmad (no cache by design)"});
  mpi::ClusterConfig nmad;
  nmad.nodes = 2;
  nmad.procs = 2;
  nmad.stack = mpi::StackKind::Mpich2Nmad;
  for (std::size_t size : {std::size_t{256} << 10, std::size_t{1} << 20, std::size_t{4} << 20,
                           std::size_t{64} << 20}) {
    const double off = mvapich_bw(false, size);
    const double on = mvapich_bw(true, size);
    const double n = harness::netpipe(nmad, {size})[0].bandwidth_MBps;
    t.add_row({harness::Table::bytes(size), harness::Table::fmt(off, 1),
               harness::Table::fmt(on, 1), harness::Table::fmt(on / off, 2) + "x",
               harness::Table::fmt(n, 1)});
  }
  std::cout << "== Ablation: registration cache on the MVAPICH2-like RDMA path ==\n";
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  for (bool on : {false, true}) {
    const char* name = on ? "abl/rcache/on" : "abl/rcache/off";
    benchmark::RegisterBenchmark(name, [on](benchmark::State& st) {
      for (auto _ : st) st.counters["MBps"] = mvapich_bw(on, std::size_t{4} << 20);
    })->Iterations(1);
  }
  return nmx::bench::run_registered(argc, argv);
}
