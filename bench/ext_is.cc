// Extension bench — the IS kernel the paper excluded ("IS needs datatypes
// support and MPICH2-NewMadeleine does not handle yet this functionality",
// §4.2). With the datatype engine and alltoallv in place, IS runs on the
// same Figure 8 testbed as the other kernels.
#include <cstdlib>

#include "bench_common.hpp"
#include "nas/nas.hpp"

namespace {

using namespace nmx;

double run_is(mpi::StackKind stack, bool pioman, int procs, nas::NasClass cls, double fraction) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 10;
  cfg.procs = procs;
  cfg.rails = {net::ib_profile()};
  cfg.cyclic_mapping = true;
  cfg.stack = stack;
  cfg.pioman = pioman;
  mpi::Cluster cluster(cfg);
  nas::NasConfig nc;
  nc.cls = cls;
  nc.iter_fraction = fraction;
  return nas::run_nas(cluster, "IS", nc).seconds;
}

void print_table() {
  const char* e = std::getenv("NMX_FIG8_CLASS");
  const nas::NasClass cls = (e && e[0] == 'A')   ? nas::NasClass::A
                            : (e && e[0] == 'B') ? nas::NasClass::B
                            : (e && e[0] == 'S') ? nas::NasClass::S
                                                 : nas::NasClass::C;
  const char* f = std::getenv("NMX_FIG8_FRACTION");
  const double fraction = f ? std::atof(f) : 0.2;

  harness::Table t({"procs", "MVAPICH2", "Open_MPI", "MPICH2-NMad", "MPICH2-NMad+PIOMan"});
  for (int procs : {8, 16, 32, 64}) {
    t.add_row({std::to_string(procs),
               harness::Table::fmt(run_is(mpi::StackKind::Mvapich2, false, procs, cls, fraction), 1),
               harness::Table::fmt(run_is(mpi::StackKind::OpenMpiBtlIb, false, procs, cls, fraction), 1),
               harness::Table::fmt(run_is(mpi::StackKind::Mpich2Nmad, false, procs, cls, fraction), 1),
               harness::Table::fmt(run_is(mpi::StackKind::Mpich2Nmad, true, procs, cls, fraction), 1)});
  }
  std::cout << "== Extension: IS class " << nas::to_char(cls)
            << " (seconds; excluded from the paper's Figure 8) ==\n";
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::RegisterBenchmark("ext/is/16procs", [](benchmark::State& st) {
    for (auto _ : st) {
      st.counters["seconds"] =
          run_is(nmx::mpi::StackKind::Mpich2Nmad, false, 16, nmx::nas::NasClass::A, 0.5);
    }
  })->Iterations(1);
  return nmx::bench::run_registered(argc, argv);
}
