// Communication/computation overlap demo (the paper's Figure 7): the same
// isend + compute + wait sequence on the plain stack and on the stack with
// PIOMan's background progression. Only the latter hides the transfer.
//
//   $ ./examples/overlap_compute
#include <cstdio>
#include <vector>

#include "mpi/cluster.hpp"

namespace {

double send_and_compute(bool pioman, std::size_t bytes, double compute_us) {
  using namespace nmx;
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.rails = {net::ib_profile()};
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.pioman = pioman;
  mpi::Cluster cluster(cfg);

  double measured = 0;
  cluster.run([&](mpi::Comm& c) {
    std::vector<std::byte> buf(bytes);
    if (c.rank() == 0) {
      const double t0 = c.wtime();
      mpi::Request r = c.isend(buf.data(), buf.size(), 1, 0);
      c.compute(compute_us * 1e-6);  // the application does real work here
      c.wait(r);
      measured = (c.wtime() - t0) * 1e6;
    } else {
      c.recv(buf.data(), buf.size(), 0, 0);
    }
  });
  return measured;
}

}  // namespace

int main() {
  const double compute_us = 400.0;
  std::printf("isend(1 MB) + compute(%.0f us) + wait, over InfiniBand:\n\n", compute_us);
  const double comm_only = send_and_compute(false, 1 << 20, 0.0);
  const double plain = send_and_compute(false, 1 << 20, compute_us);
  const double piom = send_and_compute(true, 1 << 20, compute_us);
  std::printf("  communication alone:               %7.1f us\n", comm_only);
  std::printf("  without PIOMan (no progression):   %7.1f us  ~ comm + compute\n", plain);
  std::printf("  with PIOMan (background engine):   %7.1f us  ~ max(comm, compute)\n", piom);
  std::printf("\noverlap efficiency: %.0f%% of the computation is hidden.\n",
              100.0 * (plain - piom) / compute_us);
  return 0;
}
