// Quickstart: build a simulated 2-node cluster running the
// MPICH2-NewMadeleine stack, exchange a message, time a ping-pong, and run a
// collective — everything in a few lines.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <vector>

#include "mpi/cluster.hpp"

int main() {
  using namespace nmx;

  // A cluster is a simulated machine: nodes, processes, NIC rails, and the
  // MPI stack that runs on it.
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 4;  // two ranks per node: ranks 0,1 talk over shared memory
  cfg.rails = {net::ib_profile()};
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  mpi::Cluster cluster(cfg);

  // run() executes the lambda once per rank, SPMD-style, in virtual time.
  cluster.run([](mpi::Comm& c) {
    // Point-to-point: rank 0 pings rank 3 (a different node).
    if (c.rank() == 0) {
      std::vector<double> payload(1024, 3.14);
      const double t0 = c.wtime();
      c.send(payload.data(), payload.size() * sizeof(double), 3, /*tag=*/1);
      double echo = c.recv_value<double>(3, 2);
      std::printf("[rank 0] round trip with rank 3: %.2f us, echo=%.2f\n",
                  (c.wtime() - t0) * 1e6, echo);
    } else if (c.rank() == 3) {
      std::vector<double> in(1024);
      auto st = c.recv(in.data(), in.size() * sizeof(double), 0, 1);
      std::printf("[rank 3] got %zu bytes from rank %d\n", st.count, st.source);
      c.send_value(in[0] * 2, 0, 2);
    }

    // Collective: everyone contributes, everyone agrees.
    const double sum = c.allreduce_one(static_cast<double>(c.rank() + 1), mpi::ReduceOp::Sum);
    if (c.rank() == 0) {
      std::printf("[rank 0] allreduce sum over %d ranks = %.0f (virtual time %.2f us)\n",
                  c.size(), sum, c.wtime() * 1e6);
    }
  });
  return 0;
}
