// Tracing demo: run a small mixed workload (rendezvous over the network,
// eager over shared memory, a collective, PIOMan in the background) with the
// event tracer attached, then print the per-category summary and the head of
// the trace — the simulator's stand-in for the PM2 suite's FxT traces.
//
// Also writes the two observability sidecars:
//   trace_dump.trace.json — Chrome trace-event JSON; open it in Perfetto
//                           (https://ui.perfetto.dev) or chrome://tracing to
//                           see one track per rank (spans for MPI waits,
//                           compute, message lifecycles, NIC activity) plus
//                           an engine-level track for PIOMan passes;
//   trace_dump.metrics.csv — counters/gauges/histograms (per-rail bytes,
//                           strategy queue depth, rendezvous handshake
//                           latency, PIOMan passes, ...).
//
//   $ ./examples/trace_dump
#include <cstdio>
#include <iostream>
#include <sstream>

#include "mpi/cluster.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_csv.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace nmx;

  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 4;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.pioman = true;
  cfg.trace = true;
  mpi::Cluster cluster(cfg);

  cluster.run([](mpi::Comm& c) {
    std::vector<std::byte> big(512 * 1024), small(2 * 1024);
    if (c.rank() == 0) {
      mpi::Request r = c.isend(big.data(), big.size(), 2, 1);  // network rendezvous
      c.compute(50e-6);                                        // PIOMan progresses it
      c.wait(r);
      c.send(small.data(), small.size(), 1, 2);  // shared-memory eager
    } else if (c.rank() == 2) {
      c.recv(big.data(), big.size(), 0, 1);
    } else if (c.rank() == 1) {
      c.recv(small.data(), small.size(), 0, 2);
    }
    c.barrier();
  });

  sim::Tracer& tr = *cluster.tracer();
  std::printf("captured %zu events over %.1f us of virtual time\n\n", tr.size(),
              cluster.now() * 1e6);

  std::printf("%-10s %8s %12s\n", "category", "count", "bytes");
  for (const auto& [cat, s] : tr.summary()) {
    std::printf("%-10s %8llu %12llu\n", sim::to_string(cat),
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.bytes));
  }

  std::printf("\nfirst 12 trace lines (t_us rank category bytes aux):\n");
  std::ostringstream os;
  tr.dump(os);
  std::istringstream is(os.str());
  std::string line;
  for (int i = 0; i < 13 && std::getline(is, line); ++i) std::printf("  %s\n", line.c_str());

  obs::Recorder& rec = tr.recorder();
  obs::write_chrome_trace_file(rec, "trace_dump.trace.json");
  obs::write_metrics_csv_file(rec, "trace_dump.metrics.csv");
  std::printf("\nwrote trace_dump.trace.json (%zu chrome events) — open in "
              "https://ui.perfetto.dev or chrome://tracing\n",
              obs::chrome_event_count(rec));
  std::printf("wrote trace_dump.metrics.csv (%zu counters, %zu gauges, %zu histograms)\n",
              rec.metrics().counters().size(), rec.metrics().gauges().size(),
              rec.metrics().histograms().size());
  return 0;
}
