// Multirail demo: a heterogeneous InfiniBand + Myrinet configuration with
// the split_balance strategy. Shows the sampled rail parameters, the
// adaptive split ratio chosen for several message sizes, and the achieved
// aggregate bandwidth versus each rail alone (the paper's Figure 5 story).
//
//   $ ./examples/multirail_bandwidth
#include <cstdio>
#include <vector>

#include "ch3/process.hpp"
#include "harness/netpipe.hpp"
#include "mpi/cluster.hpp"

int main() {
  using namespace nmx;

  auto config = [](std::vector<net::NicProfile> rails) {
    mpi::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.procs = 2;
    cfg.rails = std::move(rails);
    cfg.stack = mpi::StackKind::Mpich2Nmad;
    cfg.strategy = nmad::StrategyKind::SplitBalance;
    return cfg;
  };

  // Peek at what the sampling module measured and how it would split.
  {
    mpi::Cluster cluster(config({net::ib_profile(), net::mx_profile()}));
    auto& ch3p = dynamic_cast<ch3::Ch3Process&>(cluster.transport(0));
    const nmad::Sampling& s = ch3p.core().sampling();
    std::printf("sampled rails:\n");
    for (std::size_t r = 0; r < s.num_rails(); ++r) {
      std::printf("  rail %zu: alpha=%.2f us  beta=%.1f MBps%s\n", r,
                  s.rails()[r].alpha * 1e6, s.rails()[r].beta / (1024.0 * 1024.0),
                  static_cast<int>(r) == s.fastest() ? "  (fastest: small messages go here)" : "");
    }
    std::printf("\nadaptive split (bytes per rail):\n");
    for (std::size_t len : {std::size_t{16} << 10, std::size_t{1} << 20, std::size_t{16} << 20}) {
      auto shares = s.split(len, 16 << 10);
      std::printf("  %8zu B  ->  IB %zu / MX %zu\n", len, shares[0], shares[1]);
    }
  }

  // Measure: each rail alone vs both together.
  const std::vector<std::size_t> sizes{std::size_t{1} << 20, std::size_t{16} << 20};
  auto ib = harness::netpipe(config({net::ib_profile()}), sizes);
  auto mx = harness::netpipe(config({net::mx_profile()}), sizes);
  auto both = harness::netpipe(config({net::ib_profile(), net::mx_profile()}), sizes);
  std::printf("\nbandwidth (MBps):      IB-only    MX-only    IB+MX\n");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("  %8zu B:          %7.1f    %7.1f    %7.1f\n", sizes[i], ib[i].bandwidth_MBps,
                mx[i].bandwidth_MBps, both[i].bandwidth_MBps);
  }
  std::printf("\nthe multirail aggregate approaches the sum of the rails (Fig 5b).\n");
  return 0;
}
