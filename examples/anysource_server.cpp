// MPI_ANY_SOURCE demo: a master/worker task farm where the master receives
// results with ANY_SOURCE — the exact pattern that exercises the paper's
// any-source management lists (§3.2.2, Figure 3), since NewMadeleine cannot
// cancel posted requests and the receive must be created only once a
// matching message is known to have arrived.
//
//   $ ./examples/anysource_server
#include <cstdio>
#include <vector>

#include "ch3/process.hpp"
#include "mpi/cluster.hpp"

int main() {
  using namespace nmx;

  mpi::ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.procs = 6;  // master + 5 workers, two ranks per node
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  mpi::Cluster cluster(cfg);

  constexpr int kTasks = 20;
  constexpr int kTagWork = 1, kTagResult = 2, kTagStop = 3;

  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      // Master: deal tasks round-robin, then collect results from whoever
      // finishes first (ANY_SOURCE), keeping workers busy.
      int next_task = 0, done = 0;
      for (int w = 1; w < c.size(); ++w) c.send_value(next_task++, w, kTagWork);
      while (done < kTasks) {
        double result = 0;
        auto st = c.recv(&result, sizeof(result), mpi::ANY_SOURCE, kTagResult);
        ++done;
        std::printf("[master] task result %.1f from worker %d (%d/%d)\n", result, st.source,
                    done, kTasks);
        if (next_task < kTasks) c.send_value(next_task++, st.source, kTagWork);
      }
      for (int w = 1; w < c.size(); ++w) c.send_value(-1, w, kTagStop);
    } else {
      // Workers: tasks take different amounts of (virtual) time, so results
      // come back out of order — that's why the master needs ANY_SOURCE.
      for (;;) {
        int task = -1;
        auto st = c.recv(&task, sizeof(task), 0, mpi::ANY_TAG);
        if (st.tag == kTagStop) break;
        c.compute((1 + (task * 7 + c.rank()) % 5) * 10e-6);
        c.send_value(task * 1.5, 0, kTagResult);
      }
    }
  });

  auto& master = dynamic_cast<ch3::Ch3Process&>(cluster.transport(0));
  std::printf("\n[done] all tasks complete at t=%.1f us; any-source sublists now: %zu\n",
              cluster.now() * 1e6, master.any_source_lists().sublist_count());
  return 0;
}
