// NAS kernel demo: run the CG and FT kernels (class A) on the paper's
// Grid'5000-like testbed with two different MPI stacks and compare.
//
//   $ ./examples/nas_demo
#include <cstdio>

#include "mpi/cluster.hpp"
#include "nas/nas.hpp"

int main() {
  using namespace nmx;

  auto run = [](mpi::StackKind stack, const char* kernel, int procs) {
    mpi::ClusterConfig cfg;
    cfg.nodes = 10;
    cfg.procs = procs;
    cfg.cyclic_mapping = true;  // one process per node while they last
    cfg.rails = {net::ib_profile()};
    cfg.stack = stack;
    mpi::Cluster cluster(cfg);
    nas::NasConfig nc;
    nc.cls = nas::NasClass::A;
    nc.iter_fraction = 0.3;  // simulate 30% of the iterations, extrapolate
    return nas::run_nas(cluster, kernel, nc);
  };

  std::printf("mini-NAS, class A, 16 processes on 10 nodes (times extrapolated):\n\n");
  std::printf("  kernel    MPICH2-NMad    MVAPICH2-like\n");
  for (const char* kernel : {"CG", "FT", "MG"}) {
    const auto nmad = run(mpi::StackKind::Mpich2Nmad, kernel, 16);
    const auto mvapich = run(mpi::StackKind::Mvapich2, kernel, 16);
    std::printf("  %-6s    %8.2f s     %8.2f s\n", kernel, nmad.seconds, mvapich.seconds);
  }
  std::printf("\nsee bench/fig8_nas for the full Figure 8 reproduction.\n");
  return 0;
}
