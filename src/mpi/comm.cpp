#include "mpi/comm.hpp"

#include <algorithm>
#include <tuple>

namespace nmx::mpi {

void Comm::csend(const void* buf, std::size_t len, int dst, int tag) {
  Request r = wrap(tx_.isend(global(dst), tag, ctx_base_ + kCollContext, buf, len));
  wait(r);
}

Status Comm::crecv(void* buf, std::size_t cap, int src, int tag) {
  Request r = wrap(tx_.irecv(global(src), tag, ctx_base_ + kCollContext, buf, cap));
  return wait(r);
}

Status Comm::csendrecv(const void* sbuf, std::size_t slen, int dst, int stag, void* rbuf,
                       std::size_t rcap, int src, int rtag) {
  Request rr = wrap(tx_.irecv(global(src), rtag, ctx_base_ + kCollContext, rbuf, rcap));
  Request sr = wrap(tx_.isend(global(dst), stag, ctx_base_ + kCollContext, sbuf, slen));
  wait(sr);
  return wait(rr);
}

Comm Comm::split(int color, int key) {
  // Gather every member's (color, key): an allgather keeps this collective
  // deterministic, then each rank derives its group locally.
  std::vector<std::int64_t> mine{color, key, rank_};
  std::vector<std::int64_t> all(static_cast<std::size_t>(size_) * 3);
  allgather(mine.data(), 3 * sizeof(std::int64_t), all.data());

  struct Member {
    int key, parent_rank;
  };
  std::vector<Member> members;
  for (int p = 0; p < size_; ++p) {
    if (all[static_cast<std::size_t>(p) * 3] == color) {
      members.push_back(Member{static_cast<int>(all[static_cast<std::size_t>(p) * 3 + 1]),
                               static_cast<int>(all[static_cast<std::size_t>(p) * 3 + 2])});
    }
  }
  std::sort(members.begin(), members.end(), [](const Member& a, const Member& b) {
    return std::tie(a.key, a.parent_rank) < std::tie(b.key, b.parent_rank);
  });

  Comm sub(actor_, tx_, eng_, 0, static_cast<int>(members.size()), local_ranks_);
  sub.coll_ = coll_;
  sub.group_.clear();
  for (std::size_t i = 0; i < members.size(); ++i) {
    const int world = global(members[i].parent_rank);
    sub.group_.push_back(world);
    if (members[i].parent_rank == rank_) sub.rank_ = static_cast<int>(i);
  }
  // Context allocation: every member executes the same split sequence, so
  // this counter agrees across the group. Distinct colors get distinct
  // blocks so sibling communicators cannot cross-match.
  NMX_ASSERT_MSG(color >= 0, "negative split colors are not supported");
  int max_color = 0;
  for (int p = 0; p < size_; ++p) {
    max_color = std::max(max_color, static_cast<int>(all[static_cast<std::size_t>(p) * 3]));
  }
  sub.ctx_base_ = ctx_base_ + next_split_ctx_ + color * 16;
  NMX_ASSERT_MSG(sub.ctx_base_ + 16 < 0x7ffffff0, "context space exhausted");
  next_split_ctx_ += 16 * (1 + max_color);
  sub.next_split_ctx_ = 16;
  return sub;
}

int Comm::waitany(std::span<Request> reqs, Status* st) {
  // Poll-free: wait on each in turn would serialize; instead register this
  // actor as a waiter on every active request and block until one fires.
  // Request spans are zeroed at completion, so capture them up front: the
  // MpiWait End arg names the request that unblocked the wait.
  std::vector<obs::SpanId> entry_spans(reqs.size(), 0);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i].valid()) entry_spans[i] = reqs[i].req_->span;
  }
  const obs::SpanId sp = span_begin(obs::Cat::MpiWait);
  tx_.enter_progress();
  for (;;) {
    int active = -1;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (!reqs[i].valid()) continue;
      active = static_cast<int>(i);
      if (reqs[i].req_->completed) {
        if (st != nullptr) *st = localized(reqs[i].req_->status);
        tx_.release(reqs[i].req_);
        reqs[i].req_ = nullptr;
        tx_.leave_progress();
        span_end(obs::Cat::MpiWait, sp, 0, static_cast<std::int64_t>(entry_spans[i]));
        return static_cast<int>(i);
      }
    }
    NMX_ASSERT_MSG(active >= 0, "waitany with no active requests");
    for (Request& r : reqs) {
      if (r.valid()) r.req_->waiters.push_back(&actor_);
    }
    actor_.block();
    // Remove ourselves from the requests that did not fire; completed ones
    // cleared their waiter lists already.
    for (Request& r : reqs) {
      if (!r.valid()) continue;
      auto& w = r.req_->waiters;
      w.erase(std::remove(w.begin(), w.end(), &actor_), w.end());
    }
  }
}

void Comm::barrier() {
  trace(obs::Cat::MpiColl, 0, 0);
  if (obs::Recorder* r = rec()) r->metrics().counter("mpi.coll.count").add(1);
  coll::Engine::barrier(*this, coll_);
}

void Comm::bcast(void* buf, std::size_t len, int root) {
  coll::Engine::bcast(*this, buf, len, root, coll_);
}

void Comm::gather(const void* sendbuf, std::size_t block, void* recvbuf, int root) {
  constexpr int kTag = 4000;
  if (rank_ == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    std::memcpy(out + static_cast<std::size_t>(rank_) * block, sendbuf, block);
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(size_ - 1));
    for (int p = 0; p < size_; ++p) {
      if (p == root) continue;
      reqs.push_back(wrap(tx_.irecv(global(p), kTag, ctx_base_ + kCollContext,
                                    out + static_cast<std::size_t>(p) * block, block)));
    }
    waitall(reqs);
  } else {
    csend(sendbuf, block, root, kTag);
  }
}

void Comm::scatter(const void* sendbuf, std::size_t block, void* recvbuf, int root) {
  constexpr int kTag = 5000;
  if (rank_ == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(size_ - 1));
    for (int p = 0; p < size_; ++p) {
      if (p == root) continue;
      reqs.push_back(wrap(tx_.isend(global(p), kTag, ctx_base_ + kCollContext,
                                    in + static_cast<std::size_t>(p) * block, block)));
    }
    std::memcpy(recvbuf, in + static_cast<std::size_t>(rank_) * block, block);
    waitall(reqs);
  } else {
    crecv(recvbuf, block, root, kTag);
  }
}

void Comm::allgather(const void* sendbuf, std::size_t block, void* recvbuf) {
  // Ring: P-1 steps, each forwarding the block received in the previous one.
  // Tags wrap modulo 16 (same scheme as alltoallv): the blocking per-step
  // exchange keeps each (pair, tag) stream FIFO, while a distinct tag per
  // step would leave O(P) per-(peer, tag) matching entries alive at every
  // rank — hundreds of MB of dead matching state at 512 ranks.
  constexpr int kTag = 6000;
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(rank_) * block, sendbuf, block);
  const int right = (rank_ + 1) % size_;
  const int left = (rank_ - 1 + size_) % size_;
  int cur = rank_;
  for (int step = 0; step < size_ - 1; ++step) {
    const int incoming = (cur - 1 + size_) % size_;
    csendrecv(out + static_cast<std::size_t>(cur) * block, block, right, kTag + (step & 15),
              out + static_cast<std::size_t>(incoming) * block, block, left, kTag + (step & 15));
    cur = incoming;
  }
}

void Comm::alltoall(const void* sendbuf, std::size_t block, void* recvbuf) {
  coll::Engine::alltoall(*this, sendbuf, block, recvbuf, coll_);
}

void Comm::alltoallv(const void* sendbuf, const std::size_t* sendcounts,
                     const std::size_t* senddispls, void* recvbuf,
                     const std::size_t* recvcounts, const std::size_t* recvdispls) {
  constexpr int kTag = 7500;
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + recvdispls[rank_], in + senddispls[rank_], sendcounts[rank_]);
  for (int k = 1; k < size_; ++k) {
    const int dst = (rank_ + k) % size_;
    const int src = (rank_ - k + size_) % size_;
    csendrecv(in + senddispls[dst], sendcounts[dst], dst, kTag + (k & 15),
              out + recvdispls[src], recvcounts[src], src, kTag + (k & 15));
  }
}

}  // namespace nmx::mpi
