// MPI-2 one-sided communication — the paper's second future-work item:
// "Another challenge would be to efficiently support MPI2 RMA operations
// without compromising the optimizations implemented" (§5).
//
// Active-target (fence) synchronization implemented over the two-sided
// transports, the way MPICH2's ch3 device did it: origins record put/get/
// accumulate operations during the epoch; MPI_Win_fence exchanges per-pair
// operation counts (alltoall), ships every recorded operation as ordinary
// messages on a reserved context, services incoming operations, and closes
// with a barrier. Because all data movement rides the normal stack, the
// optimizations under study (strategies, multirail, PIOMan) apply to RMA
// traffic for free — which is exactly the paper's hope.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mpi/comm.hpp"

namespace nmx::mpi {

class Window {
 public:
  /// Collective over `comm`: every rank exposes [base, base+size).
  Window(Comm& comm, void* base, std::size_t size);
  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  std::size_t size() const { return size_; }

  /// MPI_Put: write `len` bytes into `target`'s window at `target_offset`.
  /// Completes at the closing fence.
  void put(const void* src, std::size_t len, int target, std::size_t target_offset);

  /// MPI_Get: read `len` bytes from `target`'s window at `target_offset`
  /// into `dst`. The data is valid after the closing fence.
  void get(void* dst, std::size_t len, int target, std::size_t target_offset);

  /// MPI_Accumulate(MPI_SUM) on doubles.
  void accumulate(const double* src, std::size_t count, int target, std::size_t target_offset);

  /// MPI_Win_fence: collective; completes every operation issued by any
  /// rank during the epoch, at the origin and at the target.
  void fence();

 private:
  enum class Op : std::uint32_t { Put, Acc, GetReq };
  struct WireHdr {
    Op op = Op::Put;
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
    std::int32_t reply_tag = 0;
  };
  struct PendingPut {  // put or accumulate
    int target;
    Op op;
    std::uint64_t offset;
    std::vector<std::byte> data;
  };
  struct PendingGet {
    int target;
    std::uint64_t offset;
    std::byte* dst;
    std::uint64_t len;
  };

  void apply(const WireHdr& hdr, const std::byte* payload);

  Comm& comm_;
  std::byte* base_;
  std::size_t size_;
  std::vector<PendingPut> puts_;
  std::vector<PendingGet> gets_;
};

}  // namespace nmx::mpi
