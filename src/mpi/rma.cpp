#include "mpi/rma.hpp"

#include <cstring>

namespace nmx::mpi {

namespace {
constexpr int kTagOp = 100;          // put / accumulate / get-request messages
constexpr int kTagReplyBase = 1000;  // + per-epoch get index
}  // namespace

Window::Window(Comm& comm, void* base, std::size_t size)
    : comm_(comm), base_(static_cast<std::byte*>(base)), size_(size) {
  NMX_ASSERT(base_ != nullptr || size_ == 0);
  comm_.barrier();  // window creation is collective
}

void Window::put(const void* src, std::size_t len, int target, std::size_t target_offset) {
  NMX_ASSERT(target >= 0 && target < comm_.size());
  PendingPut p;
  p.target = target;
  p.op = Op::Put;
  p.offset = target_offset;
  p.data.resize(len);
  if (len > 0) std::memcpy(p.data.data(), src, len);
  puts_.push_back(std::move(p));
}

void Window::accumulate(const double* src, std::size_t count, int target,
                        std::size_t target_offset) {
  NMX_ASSERT(target >= 0 && target < comm_.size());
  PendingPut p;
  p.target = target;
  p.op = Op::Acc;
  p.offset = target_offset;
  p.data.resize(count * sizeof(double));
  if (count > 0) std::memcpy(p.data.data(), src, p.data.size());
  puts_.push_back(std::move(p));
}

void Window::get(void* dst, std::size_t len, int target, std::size_t target_offset) {
  NMX_ASSERT(target >= 0 && target < comm_.size());
  gets_.push_back(PendingGet{target, target_offset, static_cast<std::byte*>(dst), len});
}

void Window::apply(const WireHdr& hdr, const std::byte* payload) {
  NMX_ASSERT_MSG(hdr.offset + hdr.len <= size_, "RMA operation outside the window");
  if (hdr.op == Op::Put) {
    if (hdr.len > 0) std::memcpy(base_ + hdr.offset, payload, hdr.len);
  } else {
    NMX_ASSERT(hdr.op == Op::Acc);
    NMX_ASSERT(hdr.len % sizeof(double) == 0);
    const auto* in = reinterpret_cast<const double*>(payload);
    auto* out = reinterpret_cast<double*>(base_ + hdr.offset);
    for (std::size_t i = 0; i < hdr.len / sizeof(double); ++i) out[i] += in[i];
  }
}

void Window::fence() {
  const int P = comm_.size();
  const int me = comm_.rank();

  // Operations on our own window short-circuit locally.
  std::vector<std::uint32_t> to_send(static_cast<std::size_t>(P), 0);
  for (const PendingPut& p : puts_) {
    if (p.target == me) {
      WireHdr h{p.op, p.offset, p.data.size(), 0};
      apply(h, p.data.data());
    } else {
      ++to_send[static_cast<std::size_t>(p.target)];
    }
  }
  for (const PendingGet& g : gets_) {
    if (g.target == me) {
      NMX_ASSERT(g.offset + g.len <= size_);
      if (g.len > 0) std::memcpy(g.dst, base_ + g.offset, g.len);
    } else {
      ++to_send[static_cast<std::size_t>(g.target)];
    }
  }

  // 1. Every rank learns how many operation messages to expect from whom.
  std::vector<std::uint32_t> expected(static_cast<std::size_t>(P), 0);
  comm_.alltoall(to_send.data(), sizeof(std::uint32_t), expected.data());

  // 2. Ship the recorded operations and post reply receives for gets.
  std::vector<Request> pending;
  std::vector<std::vector<std::byte>> bufs;  // keep wire buffers alive
  bufs.reserve(puts_.size() + gets_.size());
  for (const PendingPut& p : puts_) {
    if (p.target == me) continue;
    std::vector<std::byte> wire(sizeof(WireHdr) + p.data.size());
    WireHdr h{p.op, p.offset, p.data.size(), 0};
    std::memcpy(wire.data(), &h, sizeof(h));
    if (!p.data.empty()) std::memcpy(wire.data() + sizeof(h), p.data.data(), p.data.size());
    bufs.push_back(std::move(wire));
    pending.push_back(comm_.isend_ctx(bufs.back().data(), bufs.back().size(), p.target, kTagOp,
                                      Comm::kRmaContext));
  }
  int reply_idx = 0;
  for (const PendingGet& g : gets_) {
    if (g.target == me) continue;
    const int reply_tag = kTagReplyBase + reply_idx++;
    std::vector<std::byte> wire(sizeof(WireHdr));
    WireHdr h{Op::GetReq, g.offset, g.len, reply_tag};
    std::memcpy(wire.data(), &h, sizeof(h));
    bufs.push_back(std::move(wire));
    pending.push_back(comm_.isend_ctx(bufs.back().data(), bufs.back().size(), g.target, kTagOp,
                                      Comm::kRmaContext));
    pending.push_back(comm_.irecv_ctx(g.dst, g.len, g.target, reply_tag, Comm::kRmaContext));
  }

  // 3. Service incoming operations. Every peer's sends are already in
  //    flight, so blocking receives here cannot cycle.
  std::size_t incoming = 0;
  for (std::uint32_t e : expected) incoming += e;
  std::vector<std::byte> scratch(sizeof(WireHdr) + size_);
  std::vector<std::vector<std::byte>> replies;
  for (std::size_t i = 0; i < incoming; ++i) {
    Request r = comm_.irecv_ctx(scratch.data(), scratch.size(), ANY_SOURCE, kTagOp,
                                Comm::kRmaContext);
    const Status st = comm_.wait(r);
    WireHdr h;
    std::memcpy(&h, scratch.data(), sizeof(h));
    if (h.op == Op::GetReq) {
      NMX_ASSERT_MSG(h.offset + h.len <= size_, "RMA get outside the window");
      replies.emplace_back(base_ + h.offset, base_ + h.offset + h.len);
      pending.push_back(comm_.isend_ctx(replies.back().data(), replies.back().size(), st.source,
                                        h.reply_tag, Comm::kRmaContext));
    } else {
      apply(h, scratch.data() + sizeof(WireHdr));
    }
  }

  // 4. Drain and close the epoch.
  comm_.waitall(pending);
  comm_.barrier();
  puts_.clear();
  gets_.clear();
}

}  // namespace nmx::mpi
