#include "mpi/cluster.hpp"

#include <numeric>

#include "baseline/mvapich.hpp"
#include "baseline/openmpi.hpp"
#include "ch3/process.hpp"

namespace nmx::mpi {

std::string to_string(StackKind k) {
  switch (k) {
    case StackKind::Mpich2Nmad: return "MPICH2-NMad";
    case StackKind::Mvapich2: return "MVAPICH2";
    case StackKind::OpenMpiBtlIb: return "OpenMPI-BTL-IB";
    case StackKind::OpenMpiBtlMx: return "OpenMPI-BTL-MX";
    case StackKind::OpenMpiCmMx: return "OpenMPI-CM-MX";
  }
  return "?";
}

Cluster::Cluster(ClusterConfig cfg) : cfg_(cfg) {
  NMX_ASSERT(cfg_.nodes > 0 && cfg_.procs > 0);
  NMX_ASSERT(!cfg_.rails.empty());
  cfg_.coll.apply_env();  // NMX_COLL_* overrides the programmatic selection
  if (cfg_.trace) {
    tracer_ = std::make_unique<sim::Tracer>();
    eng_.set_recorder(&tracer_->recorder());
  }
  net::Topology topo = cfg_.cyclic_mapping
                           ? net::Topology::cyclic(cfg_.nodes, cfg_.procs, cfg_.rails)
                           : net::Topology::blocked(cfg_.nodes, cfg_.procs, cfg_.rails);
  fabric_ = std::make_unique<net::Fabric>(eng_, topo);
  if (!cfg_.faults.empty()) {
    fault_plan_ = std::make_unique<sim::FaultPlan>(cfg_.faults);
    fabric_->set_fault_plan(fault_plan_.get());
  }
  const net::Topology& t = fabric_->topology();

  // Per-node infrastructure: shared-memory region (when >1 local process)
  // and the NIC demultiplexer.
  std::vector<int> local_count(static_cast<std::size_t>(t.num_nodes), 0);
  for (int p = 0; p < t.num_procs(); ++p) local_count[static_cast<std::size_t>(t.node_of(p))]++;
  shm_nodes_.resize(static_cast<std::size_t>(t.num_nodes));
  for (int n = 0; n < t.num_nodes; ++n) {
    if (local_count[static_cast<std::size_t>(n)] > 1) {
      shm_nodes_[static_cast<std::size_t>(n)] =
          std::make_unique<nemesis::ShmNode>(eng_, local_count[static_cast<std::size_t>(n)]);
    }
    routers_.push_back(std::make_unique<net::ProcRouter>(*fabric_, n));
  }

  std::vector<int> next_local(static_cast<std::size_t>(t.num_nodes), 0);
  for (int p = 0; p < t.num_procs(); ++p) {
    const int node = t.node_of(p);
    const int local = next_local[static_cast<std::size_t>(node)]++;
    nemesis::ShmNode* shm = shm_nodes_[static_cast<std::size_t>(node)].get();
    net::ProcRouter& router = *routers_[static_cast<std::size_t>(node)];

    switch (cfg_.stack) {
      case StackKind::Mpich2Nmad: {
        ch3::Ch3Process::Config c;
        c.nmad.strategy = cfg_.strategy;
        c.nmad.adaptive_split = cfg_.adaptive_split;
        c.nmad.rdv_quantum = cfg_.rdv_quantum;
        c.nmad.advertise_rdv_load = cfg_.two_ended_rdv;
        c.nmad.rdv_retry_timeout = cfg_.rdv_retry_timeout;
        c.nmad.beta_relearn = cfg_.beta_relearn;
        c.nmad.fault_plan = fault_plan_.get();
        c.nmad.rails.clear();
        if (auto rr = cfg_.rank_rails.find(p); rr != cfg_.rank_rails.end()) {
          c.nmad.rails = rr->second;
        } else {
          for (int r = 0; r < t.num_rails(); ++r) c.nmad.rails.push_back(r);
        }
        c.pioman = cfg_.pioman;
        c.bypass = cfg_.bypass;
        transports_.push_back(
            std::make_unique<ch3::Ch3Process>(eng_, *fabric_, router, shm, p, local, c));
        break;
      }
      case StackKind::Mvapich2: {
        baseline::MvapichTransport::Config c;
        c.use_rcache = cfg_.mvapich_rcache;
        baseline::BaseTransport::Env env{&eng_, fabric_.get(), &router, shm, p, local};
        transports_.push_back(std::make_unique<baseline::MvapichTransport>(env, c));
        break;
      }
      case StackKind::OpenMpiBtlIb:
      case StackKind::OpenMpiBtlMx:
      case StackKind::OpenMpiCmMx: {
        baseline::OmpiTransport::Config c;
        c.variant = cfg_.stack == StackKind::OpenMpiBtlIb  ? baseline::OmpiVariant::BtlIb
                    : cfg_.stack == StackKind::OpenMpiBtlMx ? baseline::OmpiVariant::BtlMx
                                                             : baseline::OmpiVariant::CmMx;
        c.dilation = cfg_.ompi_dilation;
        baseline::BaseTransport::Env env{&eng_, fabric_.get(), &router, shm, p, local};
        transports_.push_back(std::make_unique<baseline::OmpiTransport>(env, c));
        break;
      }
    }
  }
  // Arm after every transport exists: the cores' rail-down/restart listeners
  // are registered in their constructors, and arm() schedules the timed
  // faults that will invoke them.
  if (fault_plan_ != nullptr) fault_plan_->arm(eng_);
}

Cluster::~Cluster() = default;

void Cluster::run_threads(int threads, std::function<void(Comm&, int thread)> body) {
  NMX_ASSERT(threads > 0);
  ++runs_;
  // Rank actors from a previous run() are all finished; drop their records
  // so repeated runs on one cluster pool per-rank state instead of growing
  // the actor table (their fiber stacks were already recycled on exit).
  eng_.reap_finished();
  const net::Topology& t = fabric_->topology();
  for (int p = 0; p < cfg_.procs; ++p) {
    int locals = 0;
    for (int q = 0; q < t.num_procs(); ++q) {
      if (t.same_node(p, q)) ++locals;
    }
    for (int th = 0; th < threads; ++th) {
      eng_.spawn("rank" + std::to_string(p) + ".t" + std::to_string(th) + ".run" +
                     std::to_string(runs_),
                 [this, p, th, locals, body](sim::Actor& self) {
                   Comm comm(self, *transports_[static_cast<std::size_t>(p)], eng_, p,
                             cfg_.procs, locals);
                   comm.set_coll_config(cfg_.coll);
                   body(comm, th);
                 });
    }
  }
  eng_.run();
}

void Cluster::run(std::function<void(Comm&)> body) {
  ++runs_;
  eng_.reap_finished();  // see run_threads: pool per-rank state across runs
  const net::Topology& t = fabric_->topology();
  for (int p = 0; p < cfg_.procs; ++p) {
    int locals = 0;
    for (int q = 0; q < t.num_procs(); ++q) {
      if (t.same_node(p, q)) ++locals;
    }
    eng_.spawn("rank" + std::to_string(p) + ".run" + std::to_string(runs_),
               [this, p, locals, body](sim::Actor& self) {
                 Comm comm(self, *transports_[static_cast<std::size_t>(p)], eng_, p, cfg_.procs,
                           locals);
                 comm.set_coll_config(cfg_.coll);
                 body(comm);
               });
  }
  eng_.run();
}

}  // namespace nmx::mpi
