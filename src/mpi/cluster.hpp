// SPMD launcher: builds the simulated cluster (fabric, per-node shared
// memory, one transport per process) and runs one actor per MPI rank.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/transport.hpp"
#include "sim/trace.hpp"
#include "nemesis/shm.hpp"
#include "net/fabric.hpp"
#include "net/router.hpp"
#include "nmad/types.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace nmx::mpi {

enum class StackKind {
  Mpich2Nmad,   ///< the paper's stack (CH3 + Nemesis + NewMadeleine [+PIOMan])
  Mvapich2,     ///< MVAPICH2 1.0.3-like baseline
  OpenMpiBtlIb, ///< Open MPI 1.2.7-like, openib BTL
  OpenMpiBtlMx, ///< Open MPI, MX BTL
  OpenMpiCmMx,  ///< Open MPI, CM PML over the MX MTL
};

std::string to_string(StackKind k);

struct ClusterConfig {
  int nodes = 2;
  int procs = 2;
  std::vector<net::NicProfile> rails{net::ib_profile()};
  /// false: block mapping (fill node 0 first). true: cyclic/scatter mapping
  /// (rank p on node p % nodes), the paper's Grid'5000 placement.
  bool cyclic_mapping = false;

  StackKind stack = StackKind::Mpich2Nmad;

  // MPICH2-NewMadeleine knobs
  nmad::StrategyKind strategy = nmad::StrategyKind::Aggreg;
  bool pioman = false;
  bool bypass = true;          ///< false = legacy netmod path (Fig 2 ablation)
  bool adaptive_split = true;  ///< false = naive even multirail split
  /// CostModel: rendezvous chunk cap so the split re-plans while draining.
  std::size_t rdv_quantum = 2_MiB;
  /// Receiver-directed flow control: CTS grants carry the receiver's per-rail
  /// ingress load, and the cost model folds it into the split (tentpole of
  /// the two-ended estimator). false = legacy 16-byte CTS, one-ended model.
  bool two_ended_rdv = true;
  /// Per-rank local-rails override (Mpich2Nmad only): rank -> fabric rail
  /// indices it drives. Ranks not listed drive every rail. Lets benchmarks
  /// pin interfering traffic to one rail of a multirail node.
  std::map<int, std::vector<int>> rank_rails;

  /// Collective algorithm selection (src/coll). NMX_COLL_* environment
  /// variables override these at Cluster construction.
  coll::Config coll;

  // baseline knobs
  bool mvapich_rcache = true;
  double ompi_dilation = 1.09;

  /// Record a sim::Tracer event stream (Cluster::tracer()).
  bool trace = false;

  // Chaos / fault injection (Mpich2Nmad only)
  /// Deterministic fault schedule; empty = healthy run (no FaultPlan is
  /// built, so the hot path never even branches on it).
  sim::FaultSpec faults;
  /// CTS-timeout RTS retransmission (0 = off, the default — see
  /// nmad::Config::rdv_retry_timeout).
  Time rdv_retry_timeout = 0;
  /// Feed measured egress occupancy back into the bandwidth model (silent
  /// degradation recovery). On by default; exact-model healthy runs are
  /// unaffected because the observed beta equals the fitted one.
  bool beta_relearn = true;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  ~Cluster();

  /// Run `body` as an SPMD program, one simulated rank per process. May be
  /// called repeatedly; virtual time keeps advancing.
  void run(std::function<void(Comm&)> body);

  /// MPI_THREAD_MULTIPLE-style execution: `threads` application threads per
  /// rank, each with its own Comm view onto the shared per-process stack.
  /// This is the usage §3.3.2 anticipates: "whenever an application thread
  /// waits for a message completion ... it is blocked on a semaphore and
  /// another thread can be scheduled" — here each thread is a simulated
  /// actor that blocks independently and is woken by its own completion.
  void run_threads(int threads, std::function<void(Comm&, int thread)> body);

  sim::Engine& engine() { return eng_; }
  net::Fabric& fabric() { return *fabric_; }
  Transport& transport(int rank) { return *transports_.at(static_cast<std::size_t>(rank)); }
  const ClusterConfig& config() const { return cfg_; }
  /// Virtual time now (seconds).
  Time now() const { return eng_.now(); }
  /// The attached tracer (null unless config().trace).
  sim::Tracer* tracer() { return tracer_.get(); }
  /// The underlying observability store (null unless config().trace).
  obs::Recorder* recorder() { return tracer_ ? &tracer_->recorder() : nullptr; }
  /// The armed fault plan (null on healthy runs).
  sim::FaultPlan* fault_plan() { return fault_plan_.get(); }

 private:
  ClusterConfig cfg_;
  sim::Engine eng_;
  std::unique_ptr<sim::FaultPlan> fault_plan_;  // before fabric_: outlives users
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<nemesis::ShmNode>> shm_nodes_;   // per node (may be null)
  std::vector<std::unique_ptr<net::ProcRouter>> routers_;      // per node
  std::vector<std::unique_ptr<Transport>> transports_;         // per proc
  std::unique_ptr<sim::Tracer> tracer_;
  int runs_ = 0;
};

}  // namespace nmx::mpi
