// The device-level transport interface every MPI stack variant implements:
// the MPICH2-NewMadeleine stack (src/ch3), and the MVAPICH2-like / Open
// MPI-like baselines (src/baseline). The public MPI API (comm.hpp) and the
// collectives are built once on top of this, so all stacks run the exact
// same application code — like the paper's NAS evaluation.
//
// This header is intentionally dependency-light: implementors include it
// without linking the mpi library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "sim/engine.hpp"

namespace nmx::mpi {

inline constexpr int ANY_SOURCE = -1;
inline constexpr int ANY_TAG = -1;

struct Status {
  int source = -1;
  int tag = -1;
  std::size_t count = 0;  ///< received bytes
};

/// Device-level request (the ADI3 request object). Transports may subclass.
struct TxRequest {
  bool completed = false;
  Status status;
  std::vector<sim::Actor*> waiters;
  /// Message-lifecycle span id (obs::SpanId), open from post to completion.
  /// Lives on the base so the MPI layer can name the request a wait blocked
  /// on without knowing the transport's request subtype. 0 = untraced.
  std::uint64_t span = 0;

  virtual ~TxRequest() = default;

  /// Mark complete and wake blocked waiters. Engine-thread or actor context.
  void complete_and_wake() {
    NMX_ASSERT_MSG(!completed, "request completed twice");
    completed = true;
    for (sim::Actor* a : waiters) a->wake();
    waiters.clear();
  }
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int rank() const = 0;

  /// Post a send. `tag` is the user tag (>= 0); `context` distinguishes
  /// communicator/collective traffic.
  virtual TxRequest* isend(int dst, int tag, int context, const void* buf, std::size_t len) = 0;

  /// Post a receive. `src` may be ANY_SOURCE and `tag` ANY_TAG.
  virtual TxRequest* irecv(int src, int tag, int context, void* buf, std::size_t len) = 0;

  /// Free a completed request.
  virtual void release(TxRequest* r) = 0;

  /// Bracket for blocking waits: while entered, the stack's progress engine
  /// reacts to events as they arrive (the caller is "inside MPI").
  virtual void enter_progress() = 0;
  virtual void leave_progress() = 0;

  /// Multiplier applied to application compute time — models progression
  /// machinery stealing CPU cycles (1.0 for stacks that burn none).
  virtual double compute_dilation() const { return 1.0; }

  /// True when the stack gathers/scatters non-contiguous datatype segments
  /// natively (NewMadeleine's packet wrapper does); false = the MPI layer
  /// packs through a bounce buffer and pays the copy.
  virtual bool native_datatypes() const { return false; }

  /// Non-destructive check for a matching incoming message (MPI_Iprobe).
  /// Drives one progress pass; `src`/`tag` may be wildcards.
  virtual std::optional<Status> iprobe(int /*src*/, int /*tag*/, int /*context*/) {
    return std::nullopt;
  }

  /// NIC-offloaded collective combine (Yu/Buntinas/Graham/Panda): post this
  /// rank's contribution `*inout` into the combine tree named by `coll_id`
  /// (`parent` < 0 at the root). Ops: 0 sum, 1 prod, 2 min, 3 max,
  /// 4 broadcast (the root's value wins). Returns a request that completes
  /// when the root's broadcast-down releases this rank, with the combined
  /// result stored back into `*inout` — or nullptr when the stack has no
  /// NIC collective unit (the collective layer falls back to host trees).
  virtual TxRequest* nic_coll(std::uint64_t /*coll_id*/, int /*parent*/,
                              const std::vector<int>& /*children*/, int /*op*/,
                              double* /*inout*/) {
    return nullptr;
  }

  /// Block until `r` completes, driving progress (MPI_Wait).
  void wait(sim::Actor& self, TxRequest* r) {
    enter_progress();
    while (!r->completed) {
      r->waiters.push_back(&self);
      self.block();
    }
    leave_progress();
  }

  /// One progress poke + completion check (MPI_Test).
  bool test(TxRequest* r) {
    enter_progress();
    leave_progress();
    return r->completed;
  }
};

}  // namespace nmx::mpi
