// Derived datatypes — the paper's first future-work item: "we think that
// NewMadeleine's optimization schemes might improve performance for
// non-contiguous user datatypes" (§5). A Datatype describes a non-contiguous
// memory layout as (offset, length) segments relative to a base pointer.
//
// Stacks without segment support pack into a bounce buffer (and pay the copy
// on both sides); the NewMadeleine path hands segments to the packet wrapper
// directly, where the strategy's existing gather machinery absorbs them —
// the hypothesis the paper states, measured in bench/ext_datatype.
#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

#include "common/assert.hpp"

namespace nmx::mpi {

class Datatype {
 public:
  struct Segment {
    std::size_t offset = 0;  ///< byte offset from the base pointer
    std::size_t length = 0;  ///< bytes
  };

  /// `bytes` contiguous bytes at the base pointer.
  static Datatype contiguous(std::size_t bytes) {
    Datatype d;
    if (bytes > 0) d.segments_.push_back({0, bytes});
    d.extent_ = bytes;
    d.packed_ = bytes;
    return d;
  }

  /// MPI_Type_vector (in bytes): `count` blocks of `blocklen` bytes, the
  /// start of consecutive blocks `stride` bytes apart.
  static Datatype vector(int count, std::size_t blocklen, std::size_t stride) {
    NMX_ASSERT(count >= 0 && stride >= blocklen);
    Datatype d;
    for (int i = 0; i < count; ++i) {
      d.segments_.push_back({static_cast<std::size_t>(i) * stride, blocklen});
    }
    d.packed_ = static_cast<std::size_t>(count) * blocklen;
    d.extent_ = count > 0 ? (static_cast<std::size_t>(count - 1) * stride + blocklen) : 0;
    return d;
  }

  /// MPI_Type_indexed (in bytes): explicit (offset, length) segments.
  /// Segments must be non-overlapping and in increasing offset order.
  static Datatype indexed(std::vector<Segment> segments) {
    Datatype d;
    std::size_t packed = 0;
    std::size_t end = 0;
    for (const Segment& s : segments) {
      NMX_ASSERT_MSG(s.offset >= end, "indexed segments must be ordered and disjoint");
      packed += s.length;
      end = s.offset + s.length;
    }
    d.segments_ = std::move(segments);
    d.packed_ = packed;
    d.extent_ = end;
    return d;
  }

  /// `count` copies of this type laid out extent-to-extent (MPI count > 1).
  Datatype replicate(int count) const {
    NMX_ASSERT(count >= 0);
    Datatype d;
    for (int i = 0; i < count; ++i) {
      for (const Segment& s : segments_) {
        d.segments_.push_back({static_cast<std::size_t>(i) * extent_ + s.offset, s.length});
      }
    }
    d.packed_ = packed_ * static_cast<std::size_t>(count);
    d.extent_ = extent_ * static_cast<std::size_t>(count);
    return d;
  }

  bool contiguous_layout() const {
    return segments_.size() <= 1;
  }
  std::size_t packed_size() const { return packed_; }
  std::size_t extent() const { return extent_; }
  const std::vector<Segment>& segments() const { return segments_; }

  /// Gather the described bytes from `base` into `out` (size packed_size()).
  void pack(const void* base, void* out) const {
    const auto* b = static_cast<const std::byte*>(base);
    auto* o = static_cast<std::byte*>(out);
    for (const Segment& s : segments_) {
      std::memcpy(o, b + s.offset, s.length);
      o += s.length;
    }
  }

  /// Scatter `in` (packed_size() bytes) into the layout at `base`.
  void unpack(const void* in, void* base) const {
    const auto* i = static_cast<const std::byte*>(in);
    auto* b = static_cast<std::byte*>(base);
    for (const Segment& s : segments_) {
      std::memcpy(b + s.offset, i, s.length);
      i += s.length;
    }
  }

 private:
  std::vector<Segment> segments_;
  std::size_t packed_ = 0;
  std::size_t extent_ = 0;
};

}  // namespace nmx::mpi
