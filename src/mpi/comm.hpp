// The public MPI-like API. One Comm per rank, usable only from that rank's
// simulated actor. All stacks (MPICH2-NewMadeleine and the baselines) sit
// behind the same Transport interface, so application code — examples, the
// NAS kernels, the netpipe harness — is identical across stacks, as in the
// paper's evaluation.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "coll/coll.hpp"
#include "common/assert.hpp"
#include "mpi/datatype.hpp"
#include "mpi/transport.hpp"
#include "net/calibration.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace nmx::mpi {

/// User-visible request handle (MPI_Request).
class Request {
 public:
  Request() = default;
  bool valid() const { return req_ != nullptr; }

 private:
  friend class Comm;
  TxRequest* req_ = nullptr;
};

enum class ReduceOp { Sum, Prod, Min, Max };

class Comm {
 public:
  Comm(sim::Actor& actor, Transport& tx, sim::Engine& eng, int rank, int size,
       int local_ranks = 1)
      : actor_(actor), tx_(tx), eng_(eng), rank_(rank), size_(size), local_ranks_(local_ranks) {
    group_.resize(static_cast<std::size_t>(size));
    for (int p = 0; p < size; ++p) group_[static_cast<std::size_t>(p)] = p;
  }

  int rank() const { return rank_; }
  int size() const { return size_; }

  /// MPI_Comm_split: collective; ranks supplying the same `color` form a
  /// new communicator, ordered by `key` (ties by parent rank). Each new
  /// communicator gets its own context block, so its traffic — including
  /// MPI_ANY_SOURCE — cannot match the parent's or a sibling's. Must be
  /// called by all members of this communicator in the same program order.
  Comm split(int color, int key);
  /// Number of ranks placed on this rank's node (for shared-resource
  /// contention models: memory bandwidth, NIC sharing).
  int local_ranks() const { return local_ranks_; }

  // --- point-to-point -----------------------------------------------------

  Request isend(const void* buf, std::size_t len, int dst, int tag) {
    trace(obs::Cat::MpiSend, len, dst);
    if (obs::Recorder* r = rec()) {
      r->metrics().counter("mpi.send.count").add(1);
      r->metrics().counter("mpi.send.bytes").add(len);
    }
    return wrap(tx_.isend(global(dst), tag, ctx_base_ + kUserContext, buf, len));
  }
  Request irecv(void* buf, std::size_t cap, int src, int tag) {
    trace(obs::Cat::MpiRecv, cap, src);
    if (obs::Recorder* r = rec()) r->metrics().counter("mpi.recv.count").add(1);
    return wrap(tx_.irecv(global_or_any(src), tag, ctx_base_ + kUserContext, buf, cap));
  }
  void send(const void* buf, std::size_t len, int dst, int tag) {
    Request r = isend(buf, len, dst, tag);
    wait(r);
  }
  Status recv(void* buf, std::size_t cap, int src, int tag) {
    Request r = irecv(buf, cap, src, tag);
    return wait(r);
  }

  Status wait(Request& r) {
    NMX_ASSERT_MSG(r.valid(), "wait on an inactive request");
    // Capture the waited request's span before completion zeroes it: the
    // MpiWait End arg names what the wait was blocked on (critpath edge).
    const obs::SpanId waited = r.req_->span;
    const obs::SpanId sp = span_begin(obs::Cat::MpiWait);
    tx_.wait(actor_, r.req_);
    span_end(obs::Cat::MpiWait, sp, 0, static_cast<std::int64_t>(waited));
    const Status st = localized(r.req_->status);
    tx_.release(r.req_);
    r.req_ = nullptr;
    return st;
  }

  /// Block until one of `reqs` completes; returns its index and frees it
  /// (MPI_Waitany). At least one request must be active.
  int waitany(std::span<Request> reqs, Status* st = nullptr);

  void waitall(std::span<Request> reqs) {
    for (Request& r : reqs) {
      if (r.valid()) wait(r);
    }
  }

  /// Non-blocking completion check; fills `st` on success and frees the
  /// request (one progress poke per call, like MPI_Test).
  bool test(Request& r, Status* st = nullptr) {
    NMX_ASSERT_MSG(r.valid(), "test on an inactive request");
    if (!tx_.test(r.req_)) return false;
    if (st != nullptr) *st = localized(r.req_->status);
    tx_.release(r.req_);
    r.req_ = nullptr;
    return true;
  }

  Status sendrecv(const void* sbuf, std::size_t slen, int dst, int stag, void* rbuf,
                  std::size_t rcap, int src, int rtag) {
    Request rr = irecv(rbuf, rcap, src, rtag);
    Request sr = isend(sbuf, slen, dst, stag);
    wait(sr);
    return wait(rr);
  }

  /// Non-destructive check for a matching incoming message (MPI_Iprobe);
  /// `src` / `tag` may be wildcards. Charges one progress-engine poll pass
  /// (handling the already-arrived packets is what the pass pays for).
  std::optional<Status> iprobe(int src, int tag) {
    if (auto st = tx_.iprobe(global_or_any(src), tag, ctx_base_ + kUserContext)) {
      return localized(*st);
    }
    actor_.sleep_for(1.0_us);  // let the drained packets finish handling
    if (auto st = tx_.iprobe(global_or_any(src), tag, ctx_base_ + kUserContext)) {
      return localized(*st);
    }
    return std::nullopt;
  }

  // --- derived datatypes (§5 future work — see mpi/datatype.hpp) -----------

  /// Send the layout `dt` rooted at `base`. Stacks without native segment
  /// support pack through a bounce buffer and pay the gather copy.
  void send(const void* base, const Datatype& dt, int dst, int tag) {
    if (dt.contiguous_layout()) {
      const auto& segs = dt.segments();
      send(segs.empty() ? base : static_cast<const std::byte*>(base) + segs[0].offset,
           dt.packed_size(), dst, tag);
      return;
    }
    std::vector<std::byte> packed(dt.packed_size());
    dt.pack(base, packed.data());
    if (!tx_.native_datatypes()) actor_.sleep_for(calib::copy_cost(packed.size()));
    send(packed.data(), packed.size(), dst, tag);
  }

  /// Receive into the layout `dt` rooted at `base`.
  Status recv(void* base, const Datatype& dt, int src, int tag) {
    if (dt.contiguous_layout()) {
      const auto& segs = dt.segments();
      return recv(segs.empty() ? base : static_cast<std::byte*>(base) + segs[0].offset,
                  dt.packed_size(), src, tag);
    }
    std::vector<std::byte> packed(dt.packed_size());
    Status st = recv(packed.data(), packed.size(), src, tag);
    if (!tx_.native_datatypes()) actor_.sleep_for(calib::copy_cost(packed.size()));
    dt.unpack(packed.data(), base);
    return st;
  }

  // --- typed convenience ----------------------------------------------------

  template <class T>
  void send(std::span<const T> data, int dst, int tag) {
    send(data.data(), data.size_bytes(), dst, tag);
  }
  template <class T>
  Status recv(std::span<T> data, int src, int tag) {
    return recv(data.data(), data.size_bytes(), src, tag);
  }
  template <class T>
  void send_value(const T& v, int dst, int tag) {
    send(&v, sizeof(T), dst, tag);
  }
  template <class T>
  T recv_value(int src, int tag) {
    T v{};
    recv(&v, sizeof(T), src, tag);
    return v;
  }

  // --- collectives ----------------------------------------------------------
  // Implemented by the coll::Engine (src/coll): per-op algorithms are
  // selected by the coll::Config knob (ClusterConfig::coll + NMX_COLL_* env),
  // and every host-tree edge routes through the transport — rail choice and
  // rendezvous chunking stay with the NewMadeleine cost model.

  /// Install the collective algorithm configuration (Cluster does this from
  /// ClusterConfig::coll; split children inherit it).
  void set_coll_config(const coll::Config& cfg) { coll_ = cfg; }
  const coll::Config& coll_config() const { return coll_; }

  void barrier();
  void bcast(void* buf, std::size_t len, int root);
  /// `block` bytes contributed per rank; recvbuf holds size()*block at root.
  void gather(const void* sendbuf, std::size_t block, void* recvbuf, int root);
  void scatter(const void* sendbuf, std::size_t block, void* recvbuf, int root);
  void allgather(const void* sendbuf, std::size_t block, void* recvbuf);
  void alltoall(const void* sendbuf, std::size_t block, void* recvbuf);
  /// Variable-size all-to-all (MPI_Alltoallv, byte counts/displacements) —
  /// what the IS kernel needs.
  void alltoallv(const void* sendbuf, const std::size_t* sendcounts,
                 const std::size_t* senddispls, void* recvbuf, const std::size_t* recvcounts,
                 const std::size_t* recvdispls);
  /// Inclusive prefix reduction (MPI_Scan).
  template <class T>
  void scan(const T* sendbuf, T* recvbuf, std::size_t count, ReduceOp op);
  /// Reduce + scatter of equal blocks (MPI_Reduce_scatter_block).
  template <class T>
  void reduce_scatter_block(const T* sendbuf, T* recvbuf, std::size_t count, ReduceOp op);

  template <class T>
  void reduce(const T* sendbuf, T* recvbuf, std::size_t count, ReduceOp op, int root);
  /// Binomial reduce + binomial broadcast (bandwidth-friendly; the default).
  template <class T>
  void allreduce(const T* sendbuf, T* recvbuf, std::size_t count, ReduceOp op);
  /// Recursive-doubling allreduce: log2(P) rounds of pairwise exchange —
  /// half the latency of reduce+bcast for small payloads, at the cost of
  /// sending the full vector every round. Non-power-of-two counts fold the
  /// excess ranks in and out (the MPICH algorithm). See bench/abl_allreduce.
  template <class T>
  void allreduce_rd(const T* sendbuf, T* recvbuf, std::size_t count, ReduceOp op);
  template <class T>
  T allreduce_one(T value, ReduceOp op) {
    T out{};
    allreduce(&value, &out, 1, op);
    return out;
  }

  // --- time -----------------------------------------------------------------

  /// Virtual wall-clock seconds (MPI_Wtime).
  double wtime() const { return eng_.now(); }
  /// Model `seconds` of application computation (advances virtual time;
  /// dilated by stacks whose progression machinery steals cycles).
  void compute(double seconds) {
    const obs::SpanId sp =
        span_begin(obs::Cat::Compute, static_cast<std::size_t>(seconds * 1e9));
    actor_.sleep_for(seconds * tx_.compute_dilation());
    span_end(obs::Cat::Compute, sp, static_cast<std::size_t>(seconds * 1e9));
  }

  sim::Actor& actor() { return actor_; }
  Transport& transport() { return tx_; }

  /// Open/close an application-defined region span on this rank (e.g. the
  /// per-iteration Cat::Iter spans nas::timed_loop emits for the critical-path
  /// analyzer). Returns 0 (and region_end no-ops) without a recorder.
  obs::SpanId region_begin(obs::Cat cat, std::size_t bytes = 0, std::int64_t a = 0) {
    return span_begin(cat, bytes, a);
  }
  void region_end(obs::Cat cat, obs::SpanId sp, std::size_t bytes = 0, std::int64_t a = 0) {
    span_end(cat, sp, bytes, a);
  }

  // --- subsystem plumbing (used by mpi::Window; not part of the user API) --

  /// Reserved context for one-sided (RMA) traffic.
  static constexpr int kRmaContext = 2;
  Request isend_ctx(const void* buf, std::size_t len, int dst, int tag, int context) {
    return wrap(tx_.isend(global(dst), tag, ctx_base_ + context, buf, len));
  }
  Request irecv_ctx(void* buf, std::size_t cap, int src, int tag, int context) {
    return wrap(tx_.irecv(global_or_any(src), tag, ctx_base_ + context, buf, cap));
  }

 private:
  friend class ::nmx::coll::Engine;  // uses inline plumbing only (see coll.hpp)

  static constexpr int kUserContext = 0;
  static constexpr int kCollContext = 1;

  Request wrap(TxRequest* r) {
    Request h;
    h.req_ = r;
    return h;
  }
  obs::Recorder* rec() { return eng_.recorder(); }
  void trace(obs::Cat cat, std::size_t bytes = 0, std::int64_t a = 0) {
    if (obs::Recorder* r = rec()) r->instant(eng_.now(), rank_, cat, bytes, a);
  }
  obs::SpanId span_begin(obs::Cat cat, std::size_t bytes = 0, std::int64_t a = 0) {
    obs::Recorder* r = rec();
    return r != nullptr ? r->begin(eng_.now(), rank_, cat, bytes, a) : obs::SpanId{0};
  }
  void span_end(obs::Cat cat, obs::SpanId sp, std::size_t bytes = 0, std::int64_t a = 0) {
    if (sp == 0) return;
    if (obs::Recorder* r = rec()) r->end(eng_.now(), rank_, cat, sp, bytes, a);
  }
  /// local rank in this communicator -> transport (world) rank
  int global(int local) const {
    NMX_ASSERT_MSG(local >= 0 && local < size_, "peer rank outside this communicator");
    return group_[static_cast<std::size_t>(local)];
  }
  int global_or_any(int local) const { return local == ANY_SOURCE ? ANY_SOURCE : global(local); }
  /// world rank in a status -> local rank in this communicator
  Status localized(Status st) const {
    if (st.source >= 0) {
      for (int p = 0; p < size_; ++p) {
        if (group_[static_cast<std::size_t>(p)] == st.source) {
          st.source = p;
          return st;
        }
      }
      NMX_FAIL("status source outside this communicator");
    }
    return st;
  }
  // collective-internal pt2pt on the collective context
  void csend(const void* buf, std::size_t len, int dst, int tag);
  Status crecv(void* buf, std::size_t cap, int src, int tag);
  Status csendrecv(const void* sbuf, std::size_t slen, int dst, int stag, void* rbuf,
                   std::size_t rcap, int src, int rtag);

  template <class T>
  static void apply(ReduceOp op, T* inout, const T* in, std::size_t n);

  /// Shared tail of allreduce/allreduce_rd: hand the byte-erased in-place
  /// vector to the coll engine. One scalar double is NIC-offloadable.
  template <class T>
  void allreduce_inplace(T* data, std::size_t count, ReduceOp op, const coll::Config& cfg) {
    const int nic_op = std::is_same_v<T, double> && count == 1 ? static_cast<int>(op) : -1;
    coll::Engine::allreduce(
        *this, data, sizeof(T), count,
        [op](void* inout, const void* in, std::size_t n) {
          apply(op, static_cast<T*>(inout), static_cast<const T*>(in), n);
        },
        nic_op, cfg);
  }

  sim::Actor& actor_;
  Transport& tx_;
  sim::Engine& eng_;
  int rank_;
  int size_;
  int local_ranks_;
  std::vector<int> group_;  ///< local rank -> world rank
  int ctx_base_ = 0;        ///< context block of this communicator
  int next_split_ctx_ = 16; ///< context block for the next split (collective)
  coll::Config coll_;       ///< collective algorithm selection
  /// Group-wide collective sequence number: feeds the NIC combine-tree ids
  /// (identical call sequence on every member keeps it in agreement).
  std::uint32_t next_coll_id_ = 1;
};

// ---------------------------------------------------------------------------
// templated collectives
// ---------------------------------------------------------------------------

template <class T>
void Comm::apply(ReduceOp op, T* inout, const T* in, std::size_t n) {
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < n; ++i) inout[i] = inout[i] + in[i];
      break;
    case ReduceOp::Prod:
      for (std::size_t i = 0; i < n; ++i) inout[i] = inout[i] * in[i];
      break;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < n; ++i) inout[i] = in[i] < inout[i] ? in[i] : inout[i];
      break;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < n; ++i) inout[i] = in[i] > inout[i] ? in[i] : inout[i];
      break;
  }
}

template <class T>
void Comm::reduce(const T* sendbuf, T* recvbuf, std::size_t count, ReduceOp op, int root) {
  // Binomial-tree reduce on the rank space rotated so `root` maps to 0.
  constexpr int kTag = 3000;
  const int vr = (rank_ - root + size_) % size_;
  std::vector<T> acc(sendbuf, sendbuf + count);
  std::vector<T> tmp(count);

  int lowbit = vr == 0 ? 1 : (vr & -vr);
  if (vr == 0) {
    while (lowbit < size_) lowbit <<= 1;
  }
  for (int m = 1; m < lowbit && vr + m < size_; m <<= 1) {
    const int child = (vr + m + root) % size_;
    crecv(tmp.data(), count * sizeof(T), child, kTag);
    apply(op, acc.data(), tmp.data(), count);
  }
  if (vr != 0) {
    const int parent = (vr - lowbit + root) % size_;
    csend(acc.data(), count * sizeof(T), parent, kTag);
  } else if (recvbuf != nullptr) {
    std::memcpy(recvbuf, acc.data(), count * sizeof(T));
  }
}

template <class T>
void Comm::allreduce(const T* sendbuf, T* recvbuf, std::size_t count, ReduceOp op) {
  if (recvbuf != sendbuf) std::memcpy(recvbuf, sendbuf, count * sizeof(T));
  allreduce_inplace(recvbuf, count, op, coll_);
}

template <class T>
void Comm::allreduce_rd(const T* sendbuf, T* recvbuf, std::size_t count, ReduceOp op) {
  if (recvbuf != sendbuf) std::memcpy(recvbuf, sendbuf, count * sizeof(T));
  coll::Config cfg = coll_;
  cfg.allreduce = coll::Algo::RecDoubling;
  allreduce_inplace(recvbuf, count, op, cfg);
}

template <class T>
void Comm::scan(const T* sendbuf, T* recvbuf, std::size_t count, ReduceOp op) {
  // Linear pipeline: receive the prefix from rank-1, fold in our values,
  // forward to rank+1.
  constexpr int kTag = 8000;
  std::vector<T> acc(sendbuf, sendbuf + count);
  if (rank_ > 0) {
    std::vector<T> prefix(count);
    crecv(prefix.data(), count * sizeof(T), rank_ - 1, kTag);
    apply(op, acc.data(), prefix.data(), count);
  }
  if (rank_ + 1 < size_) csend(acc.data(), count * sizeof(T), rank_ + 1, kTag);
  std::memcpy(recvbuf, acc.data(), count * sizeof(T));
}

template <class T>
void Comm::reduce_scatter_block(const T* sendbuf, T* recvbuf, std::size_t count, ReduceOp op) {
  // Reduce the full vector to rank 0, then scatter the blocks.
  std::vector<T> full(count * static_cast<std::size_t>(size_));
  reduce(sendbuf, full.data(), count * static_cast<std::size_t>(size_), op, 0);
  scatter(full.data(), count * sizeof(T), recvbuf, 0);
}

}  // namespace nmx::mpi
