#include "baseline/mvapich.hpp"

#include <cstring>

#include "obs/recorder.hpp"

namespace nmx::baseline {

MvapichTransport::MvapichTransport(Env env) : MvapichTransport(env, Config{}) {}

MvapichTransport::MvapichTransport(Env env, Config cfg)
    : BaseTransport(env, calib::kMvapichSwSend, calib::kMvapichSwRecv, /*shm_extra=*/0.05_us),
      cfg_(cfg),
      rcache_(cfg.rcache_capacity, [](std::size_t bytes) { return calib::ib_reg_cost(bytes); }) {}

Time MvapichTransport::acquire_registration(const void* buf, std::size_t len) {
  if (!fabric().profile(rail()).needs_registration) return 0;
  if (!cfg_.use_rcache) return calib::ib_reg_cost(len);
  const std::size_t hits_before = rcache_.hits();
  const Time cost = rcache_.acquire(reinterpret_cast<std::uintptr_t>(buf), len);
  if (obs::Recorder* rec = eng().recorder()) {
    const bool hit = rcache_.hits() > hits_before;
    rec->metrics().counter(hit ? "rcache.hits" : "rcache.misses").add(1);
  }
  return cost;
}

void MvapichTransport::net_send(BaseRequest* req, const void* buf, std::size_t len) {
  if (len <= cfg_.eager_threshold) {
    // Copy through a pre-registered vbuf; completes at local NIC completion.
    BasePkt pkt;
    pkt.kind = BasePkt::Kind::Eager;
    pkt.src = rank();
    pkt.tag = req->tag;
    pkt.context = req->context;
    pkt.bytes.resize(len);
    if (len > 0) std::memcpy(pkt.bytes.data(), buf, len);
    post_tx(req->peer, calib::copy_cost(len), std::move(pkt),
            [this, req] { complete_send(req); });
    return;
  }
  // RDMA rendezvous.
  const std::uint64_t xid = next_xid_++;
  rdv_out_.emplace(xid, std::make_pair(req, static_cast<const std::byte*>(buf)));
  BasePkt rts;
  rts.kind = BasePkt::Kind::Rts;
  rts.src = rank();
  rts.tag = req->tag;
  rts.context = req->context;
  rts.xid = xid;
  rts.total = len;
  post_tx(req->peer, 0, std::move(rts));
}

void MvapichTransport::grant_rdv(BaseRequest* req, const BasePkt& rts) {
  req->matched_tag = rts.tag;
  rdv_in_.emplace(std::make_pair(rts.src, rts.xid), req);
  // Register the receive buffer (cache hit on reuse) before granting.
  const Time reg = acquire_registration(req->rbuf, rts.total);
  BasePkt cts;
  cts.kind = BasePkt::Kind::Cts;
  cts.src = rank();
  cts.xid = rts.xid;
  post_tx(rts.src, reg, std::move(cts));
}

void MvapichTransport::handle_protocol(BasePkt&& pkt) {
  switch (pkt.kind) {
    case BasePkt::Kind::Cts: {
      auto it = rdv_out_.find(pkt.xid);
      NMX_ASSERT_MSG(it != rdv_out_.end(), "CTS for unknown rendezvous");
      auto [req, buf] = it->second;
      rdv_out_.erase(it);
      const Time reg = acquire_registration(buf, req->len);
      BasePkt data;
      data.kind = BasePkt::Kind::Data;
      data.src = rank();
      data.xid = pkt.xid;
      data.total = req->len;
      data.bytes.assign(buf, buf + req->len);  // RDMA read of user memory
      post_tx(pkt.src, reg, std::move(data), [this, req] { complete_send(req); });
      break;
    }
    case BasePkt::Kind::Data: {
      auto it = rdv_in_.find({pkt.src, pkt.xid});
      NMX_ASSERT_MSG(it != rdv_in_.end(), "DATA without matching grant");
      BaseRequest* req = it->second;
      rdv_in_.erase(it);
      NMX_ASSERT(pkt.bytes.size() <= req->len);
      if (!pkt.bytes.empty()) std::memcpy(req->rbuf, pkt.bytes.data(), pkt.bytes.size());
      // RDMA write lands directly in the user buffer: no copy-out.
      complete_recv_after(req, pkt.src, req->matched_tag, pkt.bytes.size(), 0);
      break;
    }
    default:
      NMX_FAIL("unexpected packet kind in MVAPICH2-like stack");
  }
}

}  // namespace nmx::baseline
