#include "baseline/openmpi.hpp"

#include <algorithm>
#include <cstring>

namespace nmx::baseline {

Time OmpiTransport::sw_send_for(OmpiVariant v) {
  switch (v) {
    case OmpiVariant::BtlIb: return calib::kOmpiIbSwSend;
    case OmpiVariant::BtlMx: return calib::kOmpiBtlSwSend;
    case OmpiVariant::CmMx: return calib::kOmpiCmSwSend;
  }
  NMX_FAIL("bad variant");
}

Time OmpiTransport::sw_recv_for(OmpiVariant v) {
  switch (v) {
    case OmpiVariant::BtlIb: return calib::kOmpiIbSwRecv;
    case OmpiVariant::BtlMx: return calib::kOmpiBtlSwRecv;
    case OmpiVariant::CmMx: return calib::kOmpiCmSwRecv;
  }
  NMX_FAIL("bad variant");
}

OmpiTransport::OmpiTransport(Env env) : OmpiTransport(env, Config{}) {}

OmpiTransport::OmpiTransport(Env env, Config cfg)
    : BaseTransport(env, sw_send_for(cfg.variant), sw_recv_for(cfg.variant),
                    /*shm_extra=*/0.15_us),
      cfg_(cfg) {
  if (cfg_.variant == OmpiVariant::CmMx) {
    // The MTL path hands messages to MX directly; MX's internal eager
    // threshold is larger and there is no PML fragment pipeline.
    cfg_.eager_threshold = 32_KiB;
  }
}

bool OmpiTransport::needs_reg() const {
  return fabric().profile(rail()).needs_registration;
}

void OmpiTransport::net_send(BaseRequest* req, const void* buf, std::size_t len) {
  if (len <= cfg_.eager_threshold) {
    BasePkt pkt;
    pkt.kind = BasePkt::Kind::Eager;
    pkt.src = rank();
    pkt.tag = req->tag;
    pkt.context = req->context;
    pkt.bytes.resize(len);
    if (len > 0) std::memcpy(pkt.bytes.data(), buf, len);
    post_tx(req->peer, calib::copy_cost(len), std::move(pkt),
            [this, req] { complete_send(req); });
    return;
  }
  const std::uint64_t xid = next_xid_++;
  rdv_out_.emplace(xid, OutRdv{req, static_cast<const std::byte*>(buf), 0});
  BasePkt rts;
  rts.kind = BasePkt::Kind::Rts;
  rts.src = rank();
  rts.tag = req->tag;
  rts.context = req->context;
  rts.xid = xid;
  rts.total = len;
  post_tx(req->peer, 0, std::move(rts));
}

void OmpiTransport::grant_rdv(BaseRequest* req, const BasePkt& rts) {
  req->matched_tag = rts.tag;
  req->frag_received = 0;
  rdv_in_.emplace(std::make_pair(rts.src, rts.xid), req);
  BasePkt cts;
  cts.kind = BasePkt::Kind::Cts;
  cts.src = rank();
  cts.xid = rts.xid;
  post_tx(rts.src, 0, std::move(cts));
}

void OmpiTransport::send_next_large_frag(std::uint64_t xid) {
  auto it = rdv_out_.find(xid);
  NMX_ASSERT(it != rdv_out_.end());
  OutRdv& o = it->second;
  BaseRequest* req = o.req;
  const std::size_t frag = std::min(cfg_.large_frag, req->len - o.offset);
  BasePkt pkt;
  pkt.kind = BasePkt::Kind::Frag;
  pkt.src = rank();
  pkt.xid = xid;
  pkt.total = req->len;
  pkt.offset = o.offset;
  pkt.bytes.assign(o.buf + o.offset, o.buf + o.offset + frag);
  o.offset += frag;
  const bool last = o.offset >= req->len;
  const bool first = pkt.offset == 0;
  // The first fragment pays its registration + descriptor management up
  // front; later fragments' registration overlaps the previous transfer
  // (pipelined), leaving only the descriptor post plus a turnaround stall
  // on the critical path — the pipeline never quite saturates the wire.
  const Time prep = first
                        ? (needs_reg() ? calib::ib_reg_cost(frag) : 0.0) + cfg_.per_frag_overhead
                        : cfg_.pipeline_post;
  if (last) {
    rdv_out_.erase(it);
    post_tx(req->peer, prep, std::move(pkt), [this, req] { complete_send(req); });
  } else {
    post_tx(req->peer, prep, std::move(pkt), [this, xid] {
      eng().schedule_in_checked(cfg_.pipeline_stall, [this, xid] { send_next_large_frag(xid); });
    });
  }
}

void OmpiTransport::handle_protocol(BasePkt&& pkt) {
  switch (pkt.kind) {
    case BasePkt::Kind::Cts: {
      auto it = rdv_out_.find(pkt.xid);
      NMX_ASSERT_MSG(it != rdv_out_.end(), "CTS for unknown rendezvous");
      OutRdv& o = it->second;
      BaseRequest* req = o.req;
      if (cfg_.variant == OmpiVariant::CmMx) {
        // MTL: single transfer by the MX library.
        BasePkt data;
        data.kind = BasePkt::Kind::Data;
        data.src = rank();
        data.xid = pkt.xid;
        data.total = req->len;
        data.bytes.assign(o.buf, o.buf + req->len);
        rdv_out_.erase(it);
        post_tx(req->peer, 0, std::move(data), [this, req] { complete_send(req); });
        break;
      }
      if (req->len <= cfg_.send_protocol_max) {
        // Copy-in/copy-out send protocol: a stream of copied fragments,
        // pipelined on the prep CPU vs the NIC.
        const std::byte* buf = o.buf;
        const std::size_t total = req->len;
        const int dst = req->peer;
        rdv_out_.erase(it);
        for (std::size_t off = 0; off < total; off += cfg_.medium_frag) {
          const std::size_t frag = std::min(cfg_.medium_frag, total - off);
          BasePkt f;
          f.kind = BasePkt::Kind::Frag;
          f.src = rank();
          f.xid = pkt.xid;
          f.total = total;
          f.offset = off;
          f.bytes.assign(buf + off, buf + off + frag);
          const bool last = off + frag >= total;
          const Time prep = calib::copy_cost(frag) + cfg_.per_frag_overhead;
          if (last) {
            post_tx(dst, prep, std::move(f), [this, req] { complete_send(req); });
          } else {
            post_tx(dst, prep, std::move(f));
          }
        }
      } else {
        send_next_large_frag(pkt.xid);
      }
      break;
    }
    case BasePkt::Kind::Data: {  // CmMx single transfer
      auto it = rdv_in_.find({pkt.src, pkt.xid});
      NMX_ASSERT_MSG(it != rdv_in_.end(), "DATA without matching grant");
      BaseRequest* req = it->second;
      rdv_in_.erase(it);
      NMX_ASSERT(pkt.bytes.size() <= req->len);
      if (!pkt.bytes.empty()) std::memcpy(req->rbuf, pkt.bytes.data(), pkt.bytes.size());
      complete_recv_after(req, pkt.src, req->matched_tag, pkt.bytes.size(), 0);
      break;
    }
    case BasePkt::Kind::Frag: {
      auto it = rdv_in_.find({pkt.src, pkt.xid});
      NMX_ASSERT_MSG(it != rdv_in_.end(), "FRAG without matching grant");
      BaseRequest* req = it->second;
      NMX_ASSERT(pkt.offset + pkt.bytes.size() <= req->len);
      if (!pkt.bytes.empty()) {
        std::memcpy(req->rbuf + pkt.offset, pkt.bytes.data(), pkt.bytes.size());
      }
      req->frag_received += pkt.bytes.size();
      if (req->frag_received >= pkt.total) {
        rdv_in_.erase(it);
        complete_recv_after(req, pkt.src, req->matched_tag, pkt.total, 0);
      }
      break;
    }
    default:
      NMX_FAIL("unexpected packet kind in Open MPI-like stack");
  }
}

}  // namespace nmx::baseline
