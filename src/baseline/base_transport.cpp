#include "baseline/base_transport.hpp"

#include <cstring>
#include <utility>

namespace nmx::baseline {

namespace {
constexpr Time kSelfLatency = 0.1_us;

struct BaseShmHdr {
  int src_rank = -1;
  int tag = 0;
  int context = 0;
};
}  // namespace

BaseTransport::BaseTransport(Env env, Time sw_send, Time sw_recv, Time shm_extra)
    : eng_(env.eng),
      fabric_(env.fabric),
      shm_(env.shm),
      rank_(env.rank),
      local_index_(env.local_index),
      my_node_(env.fabric->topology().node_of(env.rank)),
      sw_send_(sw_send),
      sw_recv_(sw_recv),
      shm_extra_(shm_extra) {
  env.router->register_proc(rank_, [this](net::WirePacket&& p) { rx_wire(std::move(p)); });
  if (shm_) {
    shm_->set_deliver(local_index_, [this](nemesis::Message&& m) { handle_shm(std::move(m)); });
    shm_->set_activity_hook(local_index_, [this] {
      if (in_progress()) shm_->poll(local_index_);
      // No PIOMan equivalent: cells wait for the next MPI call.
    });
  }
}

BaseTransport::~BaseTransport() = default;

BaseRequest* BaseTransport::new_request(BaseRequest::Kind kind) {
  requests_.emplace_back();
  auto it = std::prev(requests_.end());
  it->self = it;
  it->kind = kind;
  return &*it;
}

void BaseTransport::release(mpi::TxRequest* r) {
  auto* req = static_cast<BaseRequest*>(r);
  NMX_ASSERT_MSG(req->completed, "releasing an incomplete request");
  requests_.erase(req->self);
}

// ---------------------------------------------------------------------------
// matching
// ---------------------------------------------------------------------------

BaseRequest* BaseTransport::match_posted(int src, int tag, int context) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    BaseRequest* r = *it;
    if (r->context != context) continue;
    if (r->peer != mpi::ANY_SOURCE && r->peer != src) continue;
    if (r->tag != mpi::ANY_TAG && r->tag != tag) continue;
    posted_.erase(it);
    return r;
  }
  return nullptr;
}

bool BaseTransport::match_unexpected(BaseRequest* req) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (it->context != req->context) continue;
    if (req->peer != mpi::ANY_SOURCE && req->peer != it->src) continue;
    if (req->tag != mpi::ANY_TAG && req->tag != it->tag) continue;
    UnexMsg msg = std::move(*it);
    unexpected_.erase(it);
    if (msg.rdv) {
      grant_rdv(req, msg.rts);
    } else {
      NMX_ASSERT_MSG(msg.payload.size() <= req->len, "message overflows receive buffer");
      if (!msg.payload.empty()) std::memcpy(req->rbuf, msg.payload.data(), msg.payload.size());
      complete_recv_after(req, msg.src, msg.tag, msg.payload.size(),
                          calib::copy_cost(msg.payload.size()));
    }
    return true;
  }
  return false;
}

void BaseTransport::deliver_eager(int src, int tag, int context,
                                  std::vector<std::byte> payload) {
  BaseRequest* req = match_posted(src, tag, context);
  if (req == nullptr) {
    UnexMsg u;
    u.src = src;
    u.tag = tag;
    u.context = context;
    u.len = payload.size();
    u.payload = std::move(payload);
    unexpected_.push_back(std::move(u));
    return;
  }
  NMX_ASSERT_MSG(payload.size() <= req->len, "message overflows receive buffer");
  if (!payload.empty()) std::memcpy(req->rbuf, payload.data(), payload.size());
  complete_recv_after(req, src, tag, payload.size(), calib::copy_cost(payload.size()));
}

// ---------------------------------------------------------------------------
// isend / irecv
// ---------------------------------------------------------------------------

mpi::TxRequest* BaseTransport::isend(int dst, int tag, int context, const void* buf,
                                     std::size_t len) {
  BaseRequest* req = new_request(BaseRequest::Kind::Send);
  req->peer = dst;
  req->tag = tag;
  req->context = context;
  req->len = len;
  if (dst == rank_) {
    send_self(req, buf, len);
  } else if (fabric_->topology().same_node(rank_, dst)) {
    send_shm(req, buf, len);
  } else {
    net_send(req, buf, len);
  }
  return req;
}

mpi::TxRequest* BaseTransport::irecv(int src, int tag, int context, void* buf,
                                     std::size_t len) {
  BaseRequest* req = new_request(BaseRequest::Kind::Recv);
  req->peer = src;
  req->tag = tag;
  req->context = context;
  req->rbuf = static_cast<std::byte*>(buf);
  req->len = len;
  if (!match_unexpected(req)) posted_.push_back(req);
  return req;
}

// ---------------------------------------------------------------------------
// completions
// ---------------------------------------------------------------------------

void BaseTransport::complete_recv_after(BaseRequest* req, int src, int tag, std::size_t count,
                                        Time delay) {
  req->status.source = src;
  req->status.tag = tag;
  req->status.count = count;
  if (delay > 0) {
    eng_->schedule_in_checked(delay, [req] { req->complete_and_wake(); });
  } else {
    req->complete_and_wake();
  }
}

void BaseTransport::complete_send(BaseRequest* req) {
  req->status.count = req->len;
  req->complete_and_wake();
}

// ---------------------------------------------------------------------------
// network path
// ---------------------------------------------------------------------------

void BaseTransport::post_tx(int dst, Time prep, BasePkt pkt, std::function<void()> on_egress) {
  PendingTx tx{dst, prep, std::move(pkt), std::move(on_egress)};
  if (in_progress()) {
    inject(std::move(tx));
  } else {
    pending_tx_.push_back(std::move(tx));  // no progress engine running
  }
}

void BaseTransport::inject(PendingTx tx) {
  // Send-side software (sw cost + copy/registration prep) serializes on the
  // host CPU; the NIC then serializes transfers on its own.
  const net::Channel::Grant g = prep_cpu_.reserve(eng_->now(), sw_send_ + tx.prep);
  const int dst = tx.dst;
  // Wrap the packet now rather than inside the closure: capturing the raw
  // BasePkt (64 bytes) next to the on_egress std::function would spill the
  // event slot's inline closure storage; the WirePacket's std::any wrapper
  // is half the size and the NIC only reads it at g.end anyway.
  net::WirePacket wp;
  wp.src_node = my_node_;
  wp.dst_node = fabric_->topology().node_of(dst);
  wp.dst_proc = dst;
  wp.rail = rail();
  wp.bytes = tx.pkt.wire_bytes();
  wp.payload = std::move(tx.pkt);
  eng_->schedule_checked(g.end, [this, wp = std::move(wp),
                         on_egress = std::move(tx.on_egress)]() mutable {
    const Time egress = fabric_->transmit(std::move(wp));
    if (on_egress) eng_->schedule_checked(egress, std::move(on_egress));
  });
}

void BaseTransport::rx_wire(net::WirePacket&& pkt) {
  pending_rx_.push_back(std::move(std::any_cast<BasePkt&>(pkt.payload)));
  if (in_progress()) drain();
  // else: no background progress — handled at the next MPI call.
}

void BaseTransport::drain() {
  while (!pending_rx_.empty()) {
    BasePkt p = std::move(pending_rx_.front());
    pending_rx_.pop_front();
    eng_->schedule_in_checked(sw_recv_, [this, p = std::move(p)]() mutable { deliver(std::move(p)); });
  }
  while (!pending_tx_.empty()) {
    PendingTx tx = std::move(pending_tx_.front());
    pending_tx_.pop_front();
    inject(std::move(tx));
  }
}

void BaseTransport::deliver(BasePkt&& pkt) {
  switch (pkt.kind) {
    case BasePkt::Kind::Eager:
      deliver_eager(pkt.src, pkt.tag, pkt.context, std::move(pkt.bytes));
      break;
    case BasePkt::Kind::Rts: {
      BaseRequest* req = match_posted(pkt.src, pkt.tag, pkt.context);
      if (req == nullptr) {
        UnexMsg u;
        u.rdv = true;
        u.src = pkt.src;
        u.tag = pkt.tag;
        u.context = pkt.context;
        u.len = pkt.total;
        u.rts = std::move(pkt);
        unexpected_.push_back(std::move(u));
      } else {
        grant_rdv(req, pkt);
      }
      break;
    }
    default:
      handle_protocol(std::move(pkt));
  }
}

std::optional<mpi::Status> BaseTransport::iprobe(int src, int tag, int context) {
  enter_progress();
  leave_progress();
  for (const UnexMsg& m : unexpected_) {
    if (m.context != context) continue;
    if (src != mpi::ANY_SOURCE && src != m.src) continue;
    if (tag != mpi::ANY_TAG && tag != m.tag) continue;
    mpi::Status st;
    st.source = m.src;
    st.tag = m.tag;
    st.count = m.len;
    return st;
  }
  return std::nullopt;
}

void BaseTransport::enter_progress() {
  ++depth_;
  drain();
  if (shm_) shm_->poll(local_index_);
}

void BaseTransport::leave_progress() {
  NMX_ASSERT(depth_ > 0);
  --depth_;
}

// ---------------------------------------------------------------------------
// self and shared-memory paths
// ---------------------------------------------------------------------------

void BaseTransport::send_self(BaseRequest* req, const void* buf, std::size_t len) {
  std::vector<std::byte> payload(len);
  if (len > 0) std::memcpy(payload.data(), buf, len);
  const int tag = req->tag;
  const int ctx = req->context;
  eng_->schedule_in_checked(kSelfLatency, [this, tag, ctx, payload = std::move(payload)]() mutable {
    deliver_eager(rank_, tag, ctx, std::move(payload));
  });
  complete_send(req);
}

void BaseTransport::send_shm(BaseRequest* req, const void* buf, std::size_t len) {
  NMX_ASSERT_MSG(shm_ != nullptr, "same-node send without a shared-memory region");
  BaseShmHdr hdr;
  hdr.src_rank = rank_;
  hdr.tag = req->tag;
  hdr.context = req->context;
  nemesis::Message m;
  m.src_local = local_index_;
  m.header = hdr;
  m.payload.resize(len);
  if (len > 0) std::memcpy(m.payload.data(), buf, len);
  // dst local index
  const net::Topology& topo = fabric_->topology();
  const int node = topo.node_of(req->peer);
  int local = 0;
  for (int p = 0; p < req->peer; ++p) {
    if (topo.node_of(p) == node) ++local;
  }
  shm_->send(local, std::move(m));
  complete_send(req);  // copied into cells
}

void BaseTransport::handle_shm(nemesis::Message&& m) {
  const BaseShmHdr hdr = std::any_cast<BaseShmHdr>(m.header);
  if (shm_extra_ > 0) {
    eng_->schedule_in_checked(shm_extra_, [this, hdr, payload = std::move(m.payload)]() mutable {
      deliver_eager(hdr.src_rank, hdr.tag, hdr.context, std::move(payload));
    });
  } else {
    deliver_eager(hdr.src_rank, hdr.tag, hdr.context, std::move(m.payload));
  }
}

}  // namespace nmx::baseline
