// Open MPI 1.2.7-like comparison stack (§4). Three variants, matching the
// curves the paper plots:
//
//  * BtlIb — openib BTL through the OB1 PML (Fig 4): eager copies below 12K,
//    a copy-in/copy-out "send protocol" for medium messages and a pipelined
//    RDMA protocol with per-fragment registration (no cache by default in
//    1.2.7) for large ones. The per-fragment costs are why MPICH2-Nmad
//    "is able to reach a higher bandwidth than Open MPI for medium-sized
//    messages" (§4.1.1).
//  * BtlMx — the MX BTL: same PML machinery, higher per-message cost
//    (Fig 6b shows it clearly above the CM PML), no registration cost.
//  * CmMx  — the CM PML over the MX MTL: thin, hands whole messages to the
//    (simulated) MX library; no fragment pipeline.
//
// None of the variants progresses communication in the background (Fig 7).
// `compute_dilation` models the PML's polling machinery stealing cycles from
// tight compute loops — the modeling choice behind Open MPI's EP/LU lag in
// Figure 8 (see DESIGN.md, "Known deviations").
#pragma once

#include "baseline/base_transport.hpp"

namespace nmx::baseline {

enum class OmpiVariant { BtlIb, BtlMx, CmMx };

class OmpiTransport final : public BaseTransport {
 public:
  struct Config {
    OmpiVariant variant = OmpiVariant::BtlIb;
    std::size_t eager_threshold = calib::kOmpiEagerThreshold;
    std::size_t send_protocol_max = 256_KiB;  ///< copy protocol up to here
    std::size_t medium_frag = 32_KiB;
    std::size_t large_frag = calib::kOmpiPipelineFrag;
    Time per_frag_overhead = calib::kOmpiPerFragOverhead;
    Time pipeline_stall = 15.0_us;  ///< descriptor turnaround between frags
    /// Registration of fragment i+1 overlaps fragment i's transfer; only a
    /// short descriptor-post cost stays on the critical path.
    Time pipeline_post = 2.0_us;
    double dilation = 1.09;         ///< compute-time multiplier (see header)
  };

  explicit OmpiTransport(Env env);
  OmpiTransport(Env env, Config cfg);

  double compute_dilation() const override { return cfg_.dilation; }

 protected:
  void net_send(BaseRequest* req, const void* buf, std::size_t len) override;
  void grant_rdv(BaseRequest* req, const BasePkt& rts) override;
  void handle_protocol(BasePkt&& pkt) override;

 private:
  struct OutRdv {
    BaseRequest* req = nullptr;
    const std::byte* buf = nullptr;
    std::size_t offset = 0;
  };
  static Time sw_send_for(OmpiVariant v);
  static Time sw_recv_for(OmpiVariant v);
  bool needs_reg() const;
  void send_next_large_frag(std::uint64_t xid);

  Config cfg_;
  std::uint64_t next_xid_ = 1;
  std::map<std::uint64_t, OutRdv> rdv_out_;
};

}  // namespace nmx::baseline
