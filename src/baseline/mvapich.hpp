// MVAPICH2 1.0.3-like comparison stack (§4: "MVAPICH2 which is derived from
// MPICH2"): a thin ADI3 device straight on InfiniBand Verbs.
//
// Mechanisms that shape its curves in Figure 4:
//  * small eager messages copied through pre-registered vbufs (no
//    registration on the data path, but a copy on each side),
//  * RDMA rendezvous for large messages with a *registration cache* —
//    repeated transfers from the same buffer pay no pinning cost, which is
//    why it posts the best large-message bandwidth (NewMadeleine, §4.1.1,
//    registers on the fly every time),
//  * no background progression (Figure 7b: the handshake is not detected
//    during computation).
#pragma once

#include "baseline/base_transport.hpp"
#include "rcache/rcache.hpp"

namespace nmx::baseline {

class MvapichTransport final : public BaseTransport {
 public:
  struct Config {
    std::size_t eager_threshold = calib::kMvapichEagerThreshold;
    std::size_t rcache_capacity = 1_GiB;
    bool use_rcache = true;  ///< ablation switch (bench/abl_rcache)
  };

  explicit MvapichTransport(Env env);
  MvapichTransport(Env env, Config cfg);

  const rcache::RegistrationCache& rcache() const { return rcache_; }

 protected:
  void net_send(BaseRequest* req, const void* buf, std::size_t len) override;
  void grant_rdv(BaseRequest* req, const BasePkt& rts) override;
  void handle_protocol(BasePkt&& pkt) override;

 private:
  Time acquire_registration(const void* buf, std::size_t len);

  Config cfg_;
  rcache::RegistrationCache rcache_;
  std::uint64_t next_xid_ = 1;
  std::map<std::uint64_t, std::pair<BaseRequest*, const std::byte*>> rdv_out_;
};

}  // namespace nmx::baseline
