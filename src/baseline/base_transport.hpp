// Shared machinery for the comparison MPI stacks (MVAPICH2 1.0.3-like and
// Open MPI 1.2.7-like, §4): centralized posted/unexpected matching (these
// stacks match in one place, which is also why MPI_ANY_SOURCE is trivial for
// them), the gated progress rule (no background progression — the very thing
// Figure 7 shows they lack), a simple shared-memory path over the Nemesis
// cell channel, and a prep-CPU + NIC submission pipeline.
//
// Derived classes implement the network protocol: eager thresholds,
// rendezvous flavor, registration caching, fragmentation — the mechanisms the
// paper's comparisons hinge on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "mpi/transport.hpp"
#include "nemesis/shm.hpp"
#include "net/calibration.hpp"
#include "net/fabric.hpp"
#include "net/router.hpp"
#include "sim/engine.hpp"

namespace nmx::baseline {

struct BaseRequest : mpi::TxRequest {
  enum class Kind { Send, Recv };
  Kind kind = Kind::Send;
  int peer = -1;
  int tag = 0;
  int context = 0;
  std::byte* rbuf = nullptr;
  std::size_t len = 0;
  int matched_tag = 0;             ///< actual tag once a rendezvous matched
  std::size_t frag_received = 0;   ///< reassembly progress (fragment protocols)
  std::list<BaseRequest>::iterator self{};
};

/// Network packet of the baseline stacks.
struct BasePkt {
  enum class Kind : std::uint8_t { Eager, Rts, Cts, Data, Frag };
  Kind kind = Kind::Eager;
  int src = -1;
  int tag = 0;
  int context = 0;
  std::uint64_t xid = 0;      ///< rendezvous / message id
  std::size_t total = 0;      ///< full message size (Rts, Frag reassembly)
  std::size_t offset = 0;     ///< Frag position
  std::vector<std::byte> bytes;

  std::size_t wire_bytes() const { return 64 + bytes.size(); }
};

class BaseTransport : public mpi::Transport {
 public:
  struct Env {
    sim::Engine* eng;
    net::Fabric* fabric;
    net::ProcRouter* router;
    nemesis::ShmNode* shm;  ///< may be null (alone on the node)
    int rank;
    int local_index;
  };

  int rank() const override { return rank_; }
  mpi::TxRequest* isend(int dst, int tag, int context, const void* buf,
                        std::size_t len) override;
  mpi::TxRequest* irecv(int src, int tag, int context, void* buf, std::size_t len) override;
  void release(mpi::TxRequest* r) override;
  void enter_progress() override;
  void leave_progress() override;
  std::optional<mpi::Status> iprobe(int src, int tag, int context) override;

  std::size_t outstanding_requests() const { return requests_.size(); }
  std::size_t unexpected_count() const { return unexpected_.size(); }

 protected:
  /// `sw_send`/`sw_recv`: per-message software cost on each side.
  /// `shm_extra`: additional one-way cost of this stack's shm path relative
  /// to raw Nemesis (Fig 6a shows Open MPI's shm above Nemesis).
  BaseTransport(Env env, Time sw_send, Time sw_recv, Time shm_extra);
  ~BaseTransport() override;

  // ---- hooks the concrete stacks implement --------------------------------
  /// Start the network protocol for a send (eager or rendezvous).
  virtual void net_send(BaseRequest* req, const void* buf, std::size_t len) = 0;
  /// A receive matched an Rts: grant it (send CTS, set up reassembly).
  virtual void grant_rdv(BaseRequest* req, const BasePkt& rts) = 0;
  /// Protocol packets (Cts, Data, Frag) — Eager and Rts are routed by the
  /// base class through central matching.
  virtual void handle_protocol(BasePkt&& pkt) = 0;

  // ---- services for derived classes ---------------------------------------
  /// Submit a packet: `prep` seconds of send-side CPU (copy, registration),
  /// then the NIC. `on_egress` (optional) fires when the NIC finishes
  /// reading the buffer. Injection is gated: queued until someone is in the
  /// progress engine.
  void post_tx(int dst, Time prep, BasePkt pkt, std::function<void()> on_egress = {});
  /// Complete a recv request (status + wakeup), charging `delay` (copy-out).
  void complete_recv_after(BaseRequest* req, int src, int tag, std::size_t count, Time delay);
  void complete_send(BaseRequest* req);
  /// Central matching entry for a fully-arrived message that behaves like an
  /// eager delivery (payload ready to copy).
  void deliver_eager(int src, int tag, int context, std::vector<std::byte> payload);

  sim::Engine& eng() { return *eng_; }
  net::Fabric& fabric() const { return *fabric_; }
  bool in_progress() const { return depth_ > 0; }
  int rail() const { return 0; }  ///< baselines drive a single rail

  std::map<std::pair<int, std::uint64_t>, BaseRequest*> rdv_in_;  ///< (src,xid)->req

 private:
  struct UnexMsg {
    bool rdv = false;
    int src = -1;
    int tag = 0;
    int context = 0;
    std::size_t len = 0;
    std::vector<std::byte> payload;
    BasePkt rts;  ///< original Rts packet (rdv case)
  };
  struct PendingTx {
    int dst;
    Time prep;
    BasePkt pkt;
    std::function<void()> on_egress;
  };

  BaseRequest* new_request(BaseRequest::Kind kind);
  BaseRequest* match_posted(int src, int tag, int context);
  bool match_unexpected(BaseRequest* req);
  void deliver(BasePkt&& pkt);  // post-gating dispatch
  void rx_wire(net::WirePacket&& pkt);
  void drain();
  void inject(PendingTx tx);
  void send_self(BaseRequest* req, const void* buf, std::size_t len);
  void send_shm(BaseRequest* req, const void* buf, std::size_t len);
  void handle_shm(nemesis::Message&& m);

  sim::Engine* eng_;
  net::Fabric* fabric_;
  nemesis::ShmNode* shm_;
  int rank_;
  int local_index_;
  int my_node_;
  Time sw_send_, sw_recv_, shm_extra_;

  std::list<BaseRequest> requests_;
  std::list<BaseRequest*> posted_;
  std::list<UnexMsg> unexpected_;
  std::deque<BasePkt> pending_rx_;
  std::deque<PendingTx> pending_tx_;
  net::Channel prep_cpu_;
  int depth_ = 0;
};

}  // namespace nmx::baseline
