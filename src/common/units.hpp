// Unit helpers shared across the stack. Virtual time is `double` seconds
// (discrete-event convention); sizes are bytes. The literals below keep
// calibration tables readable: `1.2_us`, `64_KiB`, `1.25_GBps`.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nmx {

using Time = double;  ///< virtual seconds

constexpr Time operator""_s(long double v) { return static_cast<Time>(v); }
constexpr Time operator""_ms(long double v) { return static_cast<Time>(v) * 1e-3; }
constexpr Time operator""_us(long double v) { return static_cast<Time>(v) * 1e-6; }
constexpr Time operator""_ns(long double v) { return static_cast<Time>(v) * 1e-9; }
constexpr Time operator""_us(unsigned long long v) { return static_cast<Time>(v) * 1e-6; }
constexpr Time operator""_ns(unsigned long long v) { return static_cast<Time>(v) * 1e-9; }

constexpr std::size_t operator""_KiB(unsigned long long v) { return v * 1024ull; }
constexpr std::size_t operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }
constexpr std::size_t operator""_GiB(unsigned long long v) { return v * 1024ull * 1024ull * 1024ull; }

/// Bandwidths are stored as bytes/second. The paper reports MBps with
/// 1 MB = 1024*1024 bytes (§4.1), so we do too.
using Bandwidth = double;
constexpr Bandwidth operator""_MBps(long double v) { return static_cast<Bandwidth>(v) * 1024.0 * 1024.0; }
constexpr Bandwidth operator""_MBps(unsigned long long v) { return static_cast<Bandwidth>(v) * 1024.0 * 1024.0; }
constexpr Bandwidth operator""_GBps(long double v) { return static_cast<Bandwidth>(v) * 1024.0 * 1024.0 * 1024.0; }

/// Convert a transfer measurement back to the paper's MBps for reporting.
constexpr double to_MBps(double bytes_per_second) { return bytes_per_second / (1024.0 * 1024.0); }
constexpr double to_us(Time t) { return t * 1e6; }

}  // namespace nmx
