// Project-wide invariant checking.
//
// NMX_ASSERT is active in all build types: a simulator whose invariants are
// silently violated produces plausible-but-wrong timing curves, which is worse
// than crashing. The cost is negligible next to the event-queue work.
#pragma once

#include <string>

namespace nmx {

/// Raised by NMX_ASSERT / NMX_FAIL. Tests can catch it; production callers
/// should treat it as a programming error and let it terminate.
struct AssertionError {
  std::string message;
};

[[noreturn]] void assertion_failure(const char* expr, const char* file, int line,
                                    const std::string& detail = {});

}  // namespace nmx

#define NMX_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr)) ::nmx::assertion_failure(#expr, __FILE__, __LINE__); \
  } while (0)

#define NMX_ASSERT_MSG(expr, detail)                                            \
  do {                                                                          \
    if (!(expr)) ::nmx::assertion_failure(#expr, __FILE__, __LINE__, (detail)); \
  } while (0)

#define NMX_FAIL(detail) ::nmx::assertion_failure("unreachable", __FILE__, __LINE__, (detail))
