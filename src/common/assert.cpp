#include "common/assert.hpp"

#include <sstream>

namespace nmx {

void assertion_failure(const char* expr, const char* file, int line, const std::string& detail) {
  std::ostringstream os;
  os << "NMX_ASSERT failed: " << expr << " at " << file << ":" << line;
  if (!detail.empty()) os << " — " << detail;
  throw AssertionError{os.str()};
}

}  // namespace nmx
