// The Nemesis lock-free queue (Buntinas, Mercier, Gropp — EuroPVM/MPI 2006):
// a multiple-producer / single-consumer queue of fixed-size message cells
// living in a shared region, addressed by index (Nemesis uses offsets so the
// region can map at different addresses in each process; indices model that).
//
// Enqueue is a single atomic exchange on the tail; dequeue is consumer-only.
// This is the real algorithm — the simulator runs it single-threaded by
// construction, and tests/nemesis_lfqueue_test.cpp hammers it with actual
// concurrent producers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace nmx::nemesis {

using CellIndex = std::int32_t;
inline constexpr CellIndex kNilCell = -1;

/// Per-cell queue linkage. The payload lives alongside in the owner's pool;
/// the queue only ever touches `next`.
struct CellLink {
  std::atomic<CellIndex> next{kNilCell};
};

/// Shared pool of cell links. One pool per simulated shm region.
class CellPool {
 public:
  explicit CellPool(std::size_t n) : links_(n) {}
  CellLink& link(CellIndex i) {
    NMX_ASSERT(i >= 0 && static_cast<std::size_t>(i) < links_.size());
    return links_[static_cast<std::size_t>(i)];
  }
  std::size_t size() const { return links_.size(); }

 private:
  std::vector<CellLink> links_;
};

/// MPSC lock-free queue over a CellPool.
class LockFreeQueue {
 public:
  /// Enqueue `cell` (any thread). The cell must not be in any queue.
  void enqueue(CellPool& pool, CellIndex cell);

  /// Dequeue the head cell (consumer thread only). Returns kNilCell when
  /// empty.
  CellIndex dequeue(CellPool& pool);

  /// Consumer-side emptiness hint (exact for the single consumer).
  bool empty() const { return head_.load(std::memory_order_acquire) == kNilCell; }

 private:
  std::atomic<CellIndex> head_{kNilCell};
  std::atomic<CellIndex> tail_{kNilCell};
};

}  // namespace nmx::nemesis
