#include "nemesis/lfqueue.hpp"

namespace nmx::nemesis {

void LockFreeQueue::enqueue(CellPool& pool, CellIndex cell) {
  NMX_ASSERT(cell != kNilCell);
  pool.link(cell).next.store(kNilCell, std::memory_order_relaxed);
  // Swap ourselves in as the new tail; whoever was there links to us.
  const CellIndex prev = tail_.exchange(cell, std::memory_order_acq_rel);
  if (prev == kNilCell) {
    head_.store(cell, std::memory_order_release);
  } else {
    pool.link(prev).next.store(cell, std::memory_order_release);
  }
}

CellIndex LockFreeQueue::dequeue(CellPool& pool) {
  const CellIndex cell = head_.load(std::memory_order_acquire);
  if (cell == kNilCell) return kNilCell;

  const CellIndex next = pool.link(cell).next.load(std::memory_order_acquire);
  if (next != kNilCell) {
    head_.store(next, std::memory_order_release);
    return cell;
  }

  // `cell` looks like the last element. Try to swing tail to empty; if a
  // producer raced us (tail moved on), wait for its link write to land.
  head_.store(kNilCell, std::memory_order_release);
  CellIndex expected = cell;
  if (!tail_.compare_exchange_strong(expected, kNilCell, std::memory_order_acq_rel)) {
    CellIndex n;
    while ((n = pool.link(cell).next.load(std::memory_order_acquire)) == kNilCell) {
      // producer is between its tail swap and next-pointer write
    }
    head_.store(n, std::memory_order_release);
  }
  return cell;
}

}  // namespace nmx::nemesis
