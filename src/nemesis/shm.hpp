// The Nemesis intra-node channel (§2.1.1): a shared region of fixed-size
// message cells, one free queue + one receive queue per process, lock-free
// enqueue. Large messages are fragmented into cells; the receiver polls its
// single receive queue (which is what makes MPI_ANY_SOURCE cheap here).
//
// Timing model: copying into a cell occupies the sender CPU (serialized via a
// Channel), each cell then becomes visible to the receiver after
// calib::kShmLatency plus the copy-out cost. Flow control is real: a sender
// with an empty free queue stalls until the receiver polls and returns cells
// — which is why a non-progressing receiver (computing, no PIOMan) stalls
// large shared-memory transfers, exactly the effect PIOMan exists to fix.
#pragma once

#include <any>
#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "nemesis/lfqueue.hpp"
#include "net/calibration.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace nmx::nemesis {

/// One logical message handed to / delivered by the channel. `header` is an
/// opaque upper-layer struct (CH3 packet header); `payload` is copied for
/// real through the cells.
struct Message {
  int src_local = -1;  ///< sender's node-local process index
  std::any header;
  std::vector<std::byte> payload;
};

struct ShmConfig {
  std::size_t cells_per_proc = 64;
  std::size_t cell_payload = calib::kNemesisCellPayload;
  std::size_t header_bytes = 64;  ///< wire size of the serialized header
  Time latency = calib::kShmLatency;
  Bandwidth copy_bandwidth = calib::kShmCopyBandwidth;
};

/// The shared-memory region and queue state of one node.
class ShmNode {
 public:
  /// Called when a full message for `dst_local` has been reassembled by
  /// poll(). Runs on the engine thread at poll time.
  using DeliverFn = std::function<void(Message&&)>;
  /// Called (engine thread) whenever a cell lands in a process's receive
  /// queue — the hook the progress layer / PIOMan mailbox watches.
  using ActivityFn = std::function<void()>;

  ShmNode(sim::Engine& eng, int num_local_procs, ShmConfig cfg = {});

  int num_local_procs() const { return num_local_; }

  void set_deliver(int local_proc, DeliverFn fn);
  void set_activity_hook(int local_proc, ActivityFn fn);

  /// Asynchronously send `msg` to `dst_local`. Per-sender FIFO ordering.
  void send(int dst_local, Message msg);

  /// Drain `local_proc`'s receive queue: dequeue arrived cells, reassemble,
  /// deliver completed messages, return cells to their owners' free queues.
  /// Returns true if any cell was processed. Called from progress engines.
  bool poll(int local_proc);

  /// PIOMan mailbox counter (§3.3.2): incremented when a cell is enqueued,
  /// so the I/O manager "can check the state of shared memory as it checks
  /// the state of networks" without a full poll.
  std::uint64_t mailbox(int local_proc) const;

  std::size_t cells_in_flight() const { return cells_in_flight_; }

 private:
  struct Cell {
    int owner = -1;      ///< process whose free queue this cell belongs to
    int src_local = -1;  ///< filled at send time
    int dst_local = -1;
    bool first = false;           ///< first fragment: carries the header
    std::size_t total_bytes = 0;  ///< payload size of the whole message
    std::any header;              ///< only on first fragment
    std::vector<std::byte> data;  ///< this fragment's payload slice
  };

  struct PendingSend {
    int dst_local;
    Message msg;
    std::size_t offset = 0;
    bool started = false;
  };

  struct ProcState {
    LockFreeQueue free_queue;
    LockFreeQueue recv_queue;
    std::deque<PendingSend> sends;  ///< FIFO of outgoing messages
    bool waiting_for_cell = false;
    net::Channel cpu;  ///< serializes this process's copy-in work
    Time last_arrival = 0;  ///< keeps this sender's cell arrivals in order
    DeliverFn deliver;
    ActivityFn activity;
    std::uint64_t mailbox = 0;
    // Reassembly of the in-flight message from each local sender.
    struct Partial {
      bool active = false;
      std::any header;
      std::vector<std::byte> payload;
      std::size_t expected = 0;
    };
    std::vector<Partial> partial;  ///< indexed by src_local
  };

  void pump(int src_local);
  Time copy_time(std::size_t bytes) const {
    return static_cast<double>(bytes) / cfg_.copy_bandwidth;
  }

  sim::Engine& eng_;
  ShmConfig cfg_;
  int num_local_;
  CellPool pool_;
  std::vector<Cell> cells_;
  std::vector<ProcState> procs_;
  std::size_t cells_in_flight_ = 0;
};

}  // namespace nmx::nemesis
