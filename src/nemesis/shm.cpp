#include "nemesis/shm.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace nmx::nemesis {

ShmNode::ShmNode(sim::Engine& eng, int num_local_procs, ShmConfig cfg)
    : eng_(eng),
      cfg_(cfg),
      num_local_(num_local_procs),
      pool_(static_cast<std::size_t>(num_local_procs) * cfg.cells_per_proc),
      cells_(pool_.size()),
      procs_(static_cast<std::size_t>(num_local_procs)) {
  NMX_ASSERT(num_local_ > 0);
  NMX_ASSERT(cfg_.cells_per_proc > 0 && cfg_.cell_payload > 0);
  for (int p = 0; p < num_local_; ++p) {
    procs_[p].partial.resize(static_cast<std::size_t>(num_local_));
    for (std::size_t c = 0; c < cfg_.cells_per_proc; ++c) {
      const auto ci = static_cast<CellIndex>(p * cfg_.cells_per_proc + c);
      cells_[static_cast<std::size_t>(ci)].owner = p;
      procs_[p].free_queue.enqueue(pool_, ci);
    }
  }
}

void ShmNode::set_deliver(int local_proc, DeliverFn fn) {
  procs_.at(static_cast<std::size_t>(local_proc)).deliver = std::move(fn);
}

void ShmNode::set_activity_hook(int local_proc, ActivityFn fn) {
  procs_.at(static_cast<std::size_t>(local_proc)).activity = std::move(fn);
}

std::uint64_t ShmNode::mailbox(int local_proc) const {
  return procs_.at(static_cast<std::size_t>(local_proc)).mailbox;
}

void ShmNode::send(int dst_local, Message msg) {
  NMX_ASSERT(msg.src_local >= 0 && msg.src_local < num_local_);
  NMX_ASSERT(dst_local >= 0 && dst_local < num_local_);
  NMX_ASSERT_MSG(msg.src_local != dst_local, "self-sends are short-circuited above Nemesis");
  const int src = msg.src_local;
  procs_[src].sends.push_back(PendingSend{dst_local, std::move(msg), 0, false});
  pump(src);
}

void ShmNode::pump(int src_local) {
  ProcState& ps = procs_[static_cast<std::size_t>(src_local)];
  while (!ps.sends.empty()) {
    PendingSend& s = ps.sends.front();
    const std::size_t total = s.msg.payload.size();
    // Inject fragments while cells are available. A zero-byte message still
    // takes one (header-only) cell.
    while (!s.started || s.offset < total) {
      const CellIndex ci = ps.free_queue.dequeue(pool_);
      if (ci == kNilCell) {
        ps.waiting_for_cell = true;  // resume when the receiver returns cells
        return;
      }
      Cell& cell = cells_[static_cast<std::size_t>(ci)];
      const std::size_t frag = std::min(cfg_.cell_payload, total - s.offset);
      cell.src_local = src_local;
      cell.dst_local = s.dst_local;
      cell.first = !s.started;
      cell.total_bytes = total;
      if (cell.first) cell.header = std::move(s.msg.header);
      cell.data.assign(s.msg.payload.begin() + static_cast<std::ptrdiff_t>(s.offset),
                       s.msg.payload.begin() + static_cast<std::ptrdiff_t>(s.offset + frag));
      s.offset += frag;
      s.started = true;

      // Copy-in occupies the sender CPU; the cell is visible to the
      // receiver after the queue latency plus its copy-out cost. Arrivals
      // are clamped monotonic per sender: enqueue order is program order,
      // even when a small cell follows a large one.
      const std::size_t wire_bytes = frag + (cell.first ? cfg_.header_bytes : 0);
      const net::Channel::Grant g = ps.cpu.reserve(eng_.now(), copy_time(wire_bytes));
      const Time arrival =
          std::max(g.end + cfg_.latency + copy_time(wire_bytes), ps.last_arrival);
      ps.last_arrival = arrival;
      ++cells_in_flight_;
      if (obs::Recorder* rec = eng_.recorder()) {
        rec->instant(eng_.now(), src_local, obs::Cat::ShmCell, wire_bytes, s.dst_local);
        rec->metrics().counter("shm.cells").add(1);
        rec->metrics().counter("shm.cell_bytes").add(wire_bytes);
      }
      const int dst = s.dst_local;
      eng_.schedule_checked(arrival, [this, ci, dst] {
        ProcState& pd = procs_[static_cast<std::size_t>(dst)];
        pd.recv_queue.enqueue(pool_, ci);
        ++pd.mailbox;
        if (pd.activity) pd.activity();
      });
    }
    ps.sends.pop_front();
  }
}

bool ShmNode::poll(int local_proc) {
  ProcState& pd = procs_.at(static_cast<std::size_t>(local_proc));
  bool any = false;
  CellIndex ci;
  while ((ci = pd.recv_queue.dequeue(pool_)) != kNilCell) {
    any = true;
    Cell& cell = cells_[static_cast<std::size_t>(ci)];
    NMX_ASSERT(cell.dst_local == local_proc);
    ProcState::Partial& part = pd.partial[static_cast<std::size_t>(cell.src_local)];
    if (cell.first) {
      NMX_ASSERT_MSG(!part.active, "new message started before previous completed");
      part.active = true;
      part.header = std::move(cell.header);
      part.expected = cell.total_bytes;
      part.payload.clear();
      part.payload.reserve(part.expected);
    }
    NMX_ASSERT_MSG(part.active, "fragment without a first-fragment header");
    part.payload.insert(part.payload.end(), cell.data.begin(), cell.data.end());
    const int src = cell.src_local;
    const int owner = cell.owner;

    // Return the cell before delivering: delivery code may trigger sends
    // that need it.
    cell.data.clear();
    cell.header.reset();
    --cells_in_flight_;
    procs_[static_cast<std::size_t>(owner)].free_queue.enqueue(pool_, ci);
    if (procs_[static_cast<std::size_t>(owner)].waiting_for_cell) {
      procs_[static_cast<std::size_t>(owner)].waiting_for_cell = false;
      pump(owner);
    }

    if (part.active && part.payload.size() == part.expected) {
      Message m;
      m.src_local = src;
      m.header = std::move(part.header);
      m.payload = std::move(part.payload);
      part.active = false;
      part.payload.clear();
      NMX_ASSERT_MSG(pd.deliver != nullptr, "no deliver callback registered");
      pd.deliver(std::move(m));
    }
  }
  return any;
}

}  // namespace nmx::nemesis
