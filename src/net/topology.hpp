// Cluster topology: nodes, the mapping of MPI processes to nodes, and the
// set of network rails (NIC profiles) every node is equipped with.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace nmx::net {

/// Static description of one NIC model. Instances for the paper's testbed
/// are built by ib_profile() / mx_profile() from the calibration constants.
struct NicProfile {
  std::string name;
  Time wire_latency = 0;    ///< one-way propagation + switch traversal
  Time per_message = 0;     ///< fixed DMA/doorbell cost per wire packet
  Bandwidth bandwidth = 0;  ///< sustained unidirectional bandwidth
  bool needs_registration = false;  ///< true: host memory must be pinned (IB)

  /// Uncontended time the NIC occupies for a packet of `bytes`.
  Time occupancy(std::size_t bytes) const {
    return per_message + static_cast<double>(bytes) / bandwidth;
  }
};

NicProfile ib_profile();
NicProfile mx_profile();

/// Cluster layout. Rails are uniform across nodes (the paper's testbeds are
/// homogeneous: every box has the same NICs).
struct Topology {
  int num_nodes = 0;
  std::vector<int> proc_node;       ///< proc rank -> node index
  std::vector<NicProfile> rails;    ///< rail index -> NIC model

  int num_procs() const { return static_cast<int>(proc_node.size()); }
  int num_rails() const { return static_cast<int>(rails.size()); }
  int node_of(int proc) const {
    NMX_ASSERT(proc >= 0 && proc < num_procs());
    return proc_node[proc];
  }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// `procs` ranks distributed round-robin-block over `nodes` nodes
  /// (ranks 0..k-1 on node 0, etc. — the usual block mapping).
  static Topology blocked(int nodes, int procs, std::vector<NicProfile> rails_) {
    NMX_ASSERT(nodes > 0 && procs > 0);
    Topology t;
    t.num_nodes = nodes;
    t.rails = std::move(rails_);
    const int per = (procs + nodes - 1) / nodes;
    for (int p = 0; p < procs; ++p) t.proc_node.push_back(p / per);
    return t;
  }

  /// Cyclic (scatter) mapping: rank p on node p % nodes. This is the
  /// paper's Grid'5000 placement — "in the 8 (or 9) processes case, only
  /// one process runs on a node" (§4.2).
  static Topology cyclic(int nodes, int procs, std::vector<NicProfile> rails_) {
    NMX_ASSERT(nodes > 0 && procs > 0);
    Topology t;
    t.num_nodes = nodes;
    t.rails = std::move(rails_);
    for (int p = 0; p < procs; ++p) t.proc_node.push_back(p % nodes);
    return t;
  }
};

}  // namespace nmx::net
