// The simulated network fabric: per-node NICs on each rail, FIFO occupancy
// on both the egress and ingress side (which is where NIC contention — a
// motivating concern of the paper's introduction — emerges mechanistically),
// and delivery of wire packets to registered receive handlers.
#pragma once

#include <any>
#include <cstddef>
#include <functional>
#include <vector>

#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace nmx::net {

/// A packet on the wire. `payload` carries whatever the sending driver put
/// in (header structs, aggregated packet lists); `bytes` is what the NIC
/// actually times.
struct WirePacket {
  int src_node = -1;
  int dst_node = -1;
  int dst_proc = -1;  ///< destination process (for per-node demultiplexing)
  int rail = -1;
  std::size_t bytes = 0;
  std::any payload;
};

/// One direction of a NIC: a FIFO resource that transfers occupy.
class Channel {
 public:
  /// Reserve the channel for `duration` starting no earlier than `t`.
  /// Returns the interval [begin, end) actually granted.
  struct Grant {
    Time begin;
    Time end;
  };
  Grant reserve(Time t, Time duration) {
    const Time begin = std::max(t, busy_until_);
    busy_until_ = begin + duration;
    return {begin, busy_until_};
  }
  Time busy_until() const { return busy_until_; }

 private:
  Time busy_until_ = 0;
};

class Fabric {
 public:
  using RxHandler = std::function<void(WirePacket&&)>;

  Fabric(sim::Engine& eng, Topology topo);

  const Topology& topology() const { return topo_; }
  const NicProfile& profile(int rail) const;

  /// Register the receive handler for (node, rail). Called at delivery time
  /// on the engine thread. Exactly one handler per (node, rail).
  // nmx-lint: engine-context (setup or engine callbacks; never from actor bodies)
  void register_rx(int node, int rail, RxHandler h);

  /// Queue `pkt` on the source node's NIC for `pkt.rail`. The receive
  /// handler fires when the last byte lands (wire latency + occupancy +
  /// any queueing behind earlier transfers on either NIC). Returns the time
  /// the sending NIC finishes reading the buffer (local/egress completion) —
  /// drivers use it to schedule their next submission.
  ///
  /// Reserves NIC occupancy *at the current virtual time*: calling this from
  /// an actor body instead of a scheduled callback would book the channel
  /// before the driver's software pre-cost has elapsed, corrupting every
  /// load probe that reads busy_until. nmx_lint's thread-discipline pass
  /// enforces the marker below.
  // nmx-lint: engine-context
  Time transmit(WirePacket pkt);

  /// Uncontended one-way transfer time on `rail` for `bytes` — what a
  /// network-sampling probe would measure on an idle machine.
  Time uncontended_time(int rail, std::size_t bytes) const;

  /// Uncontended *egress* time on `rail` for `bytes`: how long the sending
  /// NIC holds the buffer (what transmit() returns relative to submission on
  /// an idle machine). Excludes wire latency — that share overlaps with the
  /// sender's next submission, so completion-time estimators that include it
  /// carry a systematic offset.
  Time uncontended_egress_time(int rail, std::size_t bytes) const;

  /// Absolute time (node, rail)'s egress channel is booked until (<= now when
  /// the NIC is idle). This is the live occupancy signal a load-aware
  /// strategy reads; it includes traffic from co-located processes sharing
  /// the NIC, which the sender's own queue accounting cannot see.
  Time egress_busy_until(int node, int rail) const;

  /// Absolute time (node, rail)'s *ingress* channel is booked until (<= now
  /// when idle). Mirrors egress_busy_until for the receive direction: this is
  /// what a receiver samples at CTS-grant time to advertise its rail load to
  /// the sender (in-flight arrivals from any peer, including traffic for
  /// co-located processes sharing the NIC).
  Time ingress_busy_until(int node, int rail) const;

  std::size_t packets_sent() const { return packets_sent_; }

  /// Attach a fault plan (not owned; null = healthy fabric). Degraded rails
  /// transmit at beta_factor x bandwidth — *silently*: the uncontended_*
  /// probes keep answering with the healthy profile, so samplers only learn
  /// of the degradation through prediction error. Dead rails still deliver
  /// packets already granted admission (fail-stop at admission is the
  /// senders' job, via FaultPlan::on_rail_down); a transmit that races the
  /// death inside its software pre-cost window counts as in-flight and is
  /// delivered, surfacing as net.fault.tx_on_dead_rail.
  void set_fault_plan(sim::FaultPlan* plan) { fault_plan_ = plan; }
  sim::FaultPlan* fault_plan() const { return fault_plan_; }

 private:
  struct Nic {
    Channel egress;
    Channel ingress;
    RxHandler rx;
  };
  Nic& nic(int node, int rail);

  sim::Engine& eng_;
  Topology topo_;
  std::vector<Nic> nics_;  // node-major [node * num_rails + rail]
  std::size_t packets_sent_ = 0;
  sim::FaultPlan* fault_plan_ = nullptr;
};

}  // namespace nmx::net
