// Calibration constants for the simulated hardware and the per-stack software
// overheads. Every value is annotated with the sentence of the paper it is
// derived from (Mercier, Trahay, Buntinas, Brunet — "NewMadeleine: An
// Efficient Support for High-Performance Networks in MPICH2", IPDPS 2009).
//
// The protocol *behaviour* (who sends what when) is implemented as real code
// in src/nmad, src/ch3, src/nemesis, src/pioman and src/baseline; the numbers
// here only set the speed of the simulated silicon and the measured fixed
// costs the paper reports for each software layer.
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace nmx::calib {

// ---------------------------------------------------------------------------
// Hardware: the two NICs of the point-to-point testbed (§4.1: one Myri-10G
// NIC with MX, one ConnectX InfiniBand NIC with Verbs, per box).
// ---------------------------------------------------------------------------

// "very close to the hardware's raw performance (1.2µs, not shown)" — §4.1.1.
inline constexpr Time kIbWireLatency = 1.1_us;
inline constexpr Time kIbPerMessage = 0.1_us;  // DMA descriptor + doorbell
// Fig 4b: MVAPICH2 (thin software on top of Verbs, registration cache warm)
// peaks near 1400 MB/s on ConnectX DDR.
inline constexpr Bandwidth kIbBandwidth = 1450_MBps;
// Dynamic ibv_reg_mr cost: base syscall + per-page pinning. NewMadeleine
// "registers dynamically and on-the-fly the needed memory" (§4.1.1), so it
// pays this on every large transfer; the MVAPICH2-like baseline caches.
inline constexpr Time kIbRegBase = 20.0_us;
inline constexpr Time kIbRegPerPage = 0.15_us;
inline constexpr std::size_t kPageSize = 4096;

// Myri-10G with MX. Fig 5a: MPICH2-Nmad over MX sits ~0.7µs above the IB
// curve; MX handles registration internally (folded into its bandwidth).
inline constexpr Time kMxWireLatency = 1.9_us;
inline constexpr Time kMxPerMessage = 0.1_us;
inline constexpr Bandwidth kMxBandwidth = 1200_MBps;

// Intra-node shared memory (Nemesis cells). Fig 6a: Nemesis latency ~0.3µs;
// the copy in and out of the cell bounds small-message bandwidth.
inline constexpr Time kShmLatency = 0.30_us;          // one-way, per cell
inline constexpr Bandwidth kShmCopyBandwidth = 4096_MBps;  // each memcpy side
inline constexpr std::size_t kNemesisCellPayload = 8_KiB;  // fixed-size cells (§2.1.1)

// ---------------------------------------------------------------------------
// Software layer costs (one-way, small message). §4.1.1 latency table:
//   raw IB 1.2µs → NewMadeleine 1.8µs → MPICH2-Nmad 2.1µs (+0.3 any-source)
//   MVAPICH2 1.5µs, Open MPI 1.6µs.
// Each figure is split half send-side / half receive-side.
// ---------------------------------------------------------------------------

// "the latency is higher (2.1µs) ... compared to NewMadeleine (1.8µs)".
inline constexpr Time kNmadSwSend = 0.30_us;  // generic layer, packet wrapper
inline constexpr Time kNmadSwRecv = 0.30_us;  // matching + completion dispatch
// "an overhead of 300 nanoseconds" for the CH3/netmod glue above NewMadeleine.
inline constexpr Time kCh3SwSend = 0.15_us;
inline constexpr Time kCh3SwRecv = 0.15_us;
// "MPICH2-NewMadeleine's latency is affected by a 300 nanoseconds gap when
// MPI_ANY_SOURCE is used. This gap remains constant" — §4.1.1. Cost of the
// any-source management lists (Fig 3) on the receive path.
inline constexpr Time kAnySourceOverhead = 0.30_us;

// MVAPICH2-like: thin ADI3 device straight on Verbs (1.5µs total).
inline constexpr Time kMvapichSwSend = 0.15_us;
inline constexpr Time kMvapichSwRecv = 0.15_us;
// Open MPI-like over IB (openib BTL + IB MTL, 1.6µs total).
inline constexpr Time kOmpiIbSwSend = 0.20_us;
inline constexpr Time kOmpiIbSwRecv = 0.20_us;
// Open MPI over MX: the CM PML (MTL path) is lean; the BTL path pays the full
// PML/BTL stack (Fig 6b shows BTL clearly above CM).
inline constexpr Time kOmpiCmSwSend = 0.25_us;
inline constexpr Time kOmpiCmSwRecv = 0.25_us;
inline constexpr Time kOmpiBtlSwSend = 0.60_us;
inline constexpr Time kOmpiBtlSwRecv = 0.60_us;

// ---------------------------------------------------------------------------
// PIOMan synchronization overheads (§4.1.2, "PIOMan's raw overhead"):
// "significantly affects the latency (roughly 450 ns for shared memory)" and
// "also introduces an overhead (roughly 2 µs)" for the network, attributed to
// thread-safe request lists and non-thread-safe drivers needing locks.
// Constant in message size, negligible for large messages — as measured.
// ---------------------------------------------------------------------------
inline constexpr Time kPiomanShmOverhead = 0.45_us;
inline constexpr Time kPiomanNetOverhead = 2.0_us;
// Reaction period of the background progress engine: how long after an event
// an idle core notices it. "a fast detection of communication events" — small.
inline constexpr Time kPiomanReactionPeriod = 0.5_us;

// ---------------------------------------------------------------------------
// Protocol thresholds.
// ---------------------------------------------------------------------------
// NewMadeleine internal eager→rendezvous switch.
inline constexpr std::size_t kNmadRdvThreshold = 64_KiB;
// Maximum bytes strat_aggreg packs into one wire packet.
inline constexpr std::size_t kNmadMaxAggregate = 8_KiB;
// MVAPICH2-like eager (vbuf) threshold and Open MPI-like first-frag/pipeline.
inline constexpr std::size_t kMvapichEagerThreshold = 8_KiB;
inline constexpr std::size_t kOmpiEagerThreshold = 12_KiB;
inline constexpr std::size_t kOmpiPipelineFrag = 128_KiB;
// Per-fragment software cost of the Open MPI pipeline protocol (descriptor
// management + per-frag registration, no cache in 1.2.7 by default). This is
// what makes MPICH2-Nmad "reach a higher bandwidth than Open MPI for
// medium-sized messages" (§4.1.1).
inline constexpr Time kOmpiPerFragOverhead = 18.0_us;
// Copy bandwidth for eager copy-in/copy-out paths (vbufs, BTL buffers,
// NewMadeleine packet wrappers).
inline constexpr Bandwidth kHostCopyBandwidth = 3000_MBps;

/// Registration cost of `bytes` of memory on the IB HCA.
constexpr Time ib_reg_cost(std::size_t bytes) {
  const std::size_t pages = (bytes + kPageSize - 1) / kPageSize;
  return kIbRegBase + static_cast<double>(pages) * kIbRegPerPage;
}

/// Host memcpy cost for eager copy paths.
constexpr Time copy_cost(std::size_t bytes) {
  return static_cast<double>(bytes) / kHostCopyBandwidth;
}

}  // namespace nmx::calib
