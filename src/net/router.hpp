// Per-node demultiplexer: the NICs of a node are shared by every process on
// it (the source of the contention concerns in the paper's introduction), so
// one rx handler per (node, rail) routes arriving packets to the destination
// process's endpoint by WirePacket::dst_proc.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/fabric.hpp"

namespace nmx::net {

class ProcRouter {
 public:
  using Handler = std::function<void(WirePacket&&)>;

  /// Installs itself as the rx handler for every rail of `node`.
  ProcRouter(Fabric& fabric, int node) : node_(node) {
    for (int r = 0; r < fabric.topology().num_rails(); ++r) {
      fabric.register_rx(node_, r, [this](WirePacket&& pkt) { route(std::move(pkt)); });
    }
  }

  void register_proc(int proc, Handler h) {
    NMX_ASSERT_MSG(!handlers_.count(proc), "proc endpoint registered twice");
    handlers_.emplace(proc, std::move(h));
  }

  /// NIC-internal loopback between co-located processes: the fabric refuses
  /// intra-node traffic (that is Nemesis' job), but the NIC-offloaded
  /// collective unit legitimately combines across local ranks without
  /// touching the wire — deliver straight to the destination endpoint.
  void deliver_local(WirePacket&& pkt) {
    NMX_ASSERT(pkt.dst_node == node_);
    route(std::move(pkt));
  }

 private:
  void route(WirePacket&& pkt) {
    auto it = handlers_.find(pkt.dst_proc);
    NMX_ASSERT_MSG(it != handlers_.end(), "packet for unregistered process");
    it->second(std::move(pkt));
  }

  int node_;
  std::unordered_map<int, Handler> handlers_;
};

}  // namespace nmx::net
