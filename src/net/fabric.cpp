#include "net/fabric.hpp"

#include <string>
#include <utility>

#include "net/calibration.hpp"
#include "obs/recorder.hpp"

namespace nmx::net {

NicProfile ib_profile() {
  NicProfile p;
  p.name = "ib-connectx";
  p.wire_latency = calib::kIbWireLatency;
  p.per_message = calib::kIbPerMessage;
  p.bandwidth = calib::kIbBandwidth;
  p.needs_registration = true;
  return p;
}

NicProfile mx_profile() {
  NicProfile p;
  p.name = "myri-10g-mx";
  p.wire_latency = calib::kMxWireLatency;
  p.per_message = calib::kMxPerMessage;
  p.bandwidth = calib::kMxBandwidth;
  p.needs_registration = false;  // MX registers internally
  return p;
}

Fabric::Fabric(sim::Engine& eng, Topology topo) : eng_(eng), topo_(std::move(topo)) {
  NMX_ASSERT(topo_.num_nodes > 0);
  NMX_ASSERT(topo_.num_rails() > 0);
  nics_.resize(static_cast<std::size_t>(topo_.num_nodes) * topo_.num_rails());
}

const NicProfile& Fabric::profile(int rail) const {
  NMX_ASSERT(rail >= 0 && rail < topo_.num_rails());
  return topo_.rails[rail];
}

Fabric::Nic& Fabric::nic(int node, int rail) {
  NMX_ASSERT(node >= 0 && node < topo_.num_nodes);
  NMX_ASSERT(rail >= 0 && rail < topo_.num_rails());
  return nics_[static_cast<std::size_t>(node) * topo_.num_rails() + rail];
}

void Fabric::register_rx(int node, int rail, RxHandler h) {
  Nic& n = nic(node, rail);
  NMX_ASSERT_MSG(!n.rx, "rx handler already registered for this (node, rail)");
  n.rx = std::move(h);
}

Time Fabric::transmit(WirePacket pkt) {
  NMX_ASSERT_MSG(pkt.src_node != pkt.dst_node,
                 "network loopback: intra-node traffic must use Nemesis shm");
  const NicProfile& prof = profile(pkt.rail);
  Nic& src = nic(pkt.src_node, pkt.rail);
  Nic& dst = nic(pkt.dst_node, pkt.rail);
  NMX_ASSERT_MSG(dst.rx != nullptr, "no rx handler at destination");

  Time occupancy = prof.occupancy(pkt.bytes);
  bool on_dead_rail = false;
  if (fault_plan_ != nullptr) {
    // Silent degradation: the wire moves bytes at beta_factor x nominal, but
    // the profile (and thus every sampling probe) still claims full speed.
    const double f = fault_plan_->beta_factor(pkt.rail, eng_.now());
    if (f < 1.0) {
      occupancy = prof.per_message + static_cast<double>(pkt.bytes) / (prof.bandwidth * f);
    }
    // A dead rail admits nothing new; cores are notified synchronously at the
    // death event, so reaching here means the submission's software pre-cost
    // straddled the death instant. That packet was already committed to the
    // NIC — treat it as in-flight (it drains), and count it.
    on_dead_rail = fault_plan_->rail_dead(pkt.rail);
  }
  // Egress: the packet queues behind earlier sends from this node.
  const Channel::Grant out = src.egress.reserve(eng_.now(), occupancy);
  // Ingress: the receiving NIC is pipelined with the wire, but serializes
  // with other arrivals (this is where many-senders-one-node contention,
  // e.g. SP on 36 processes / 10 nodes, comes from).
  const Channel::Grant in = dst.ingress.reserve(out.begin + prof.wire_latency, occupancy);
  const Time delivery = std::max(out.end + prof.wire_latency, in.end);

  ++packets_sent_;
  if (obs::Recorder* rec = eng_.recorder()) {
    const std::string rail_label = "rail=" + std::to_string(pkt.rail);
    rec->metrics().counter("net.rail.tx_packets", rail_label).add(1);
    rec->metrics().counter("net.rail.tx_bytes", rail_label).add(pkt.bytes);
    if (on_dead_rail) rec->metrics().counter("net.fault.tx_on_dead_rail", rail_label).add(1);
  }
  eng_.schedule_checked(delivery, [&dst, p = std::move(pkt)]() mutable { dst.rx(std::move(p)); });
  return out.end;
}

Time Fabric::egress_busy_until(int node, int rail) const {
  NMX_ASSERT(node >= 0 && node < topo_.num_nodes);
  NMX_ASSERT(rail >= 0 && rail < topo_.num_rails());
  return nics_[static_cast<std::size_t>(node) * topo_.num_rails() + rail].egress.busy_until();
}

Time Fabric::ingress_busy_until(int node, int rail) const {
  NMX_ASSERT(node >= 0 && node < topo_.num_nodes);
  NMX_ASSERT(rail >= 0 && rail < topo_.num_rails());
  return nics_[static_cast<std::size_t>(node) * topo_.num_rails() + rail].ingress.busy_until();
}

Time Fabric::uncontended_time(int rail, std::size_t bytes) const {
  const NicProfile& prof = profile(rail);
  return prof.wire_latency + prof.occupancy(bytes);
}

Time Fabric::uncontended_egress_time(int rail, std::size_t bytes) const {
  return profile(rail).occupancy(bytes);
}

}  // namespace nmx::net
