// Memory registration (pin-down) cache, as used by InfiniBand MPI stacks.
//
// The MVAPICH2-like baseline registers user buffers once and reuses the
// registration on later transfers from the same buffer — which is why it
// posts the best large-message bandwidth in Figure 4b. NewMadeleine
// deliberately has no such cache ("registers dynamically and on-the-fly",
// §4.1.1) and pays the pinning cost on every rendezvous; the gap between the
// two curves at large sizes is exactly this module being on or off.
//
// Model: byte-interval granularity with LRU eviction by capacity. The caller
// provides the cost function (pages → time) so the cache stays independent of
// the NIC model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>

#include "common/units.hpp"

namespace nmx::rcache {

class RegistrationCache {
 public:
  using CostFn = std::function<Time(std::size_t bytes)>;

  /// `capacity_bytes`: total pinned memory allowed before LRU eviction.
  /// `cost`: time to register a contiguous range of the given size.
  RegistrationCache(std::size_t capacity_bytes, CostFn cost);

  /// Ensure [addr, addr+len) is registered. Returns the registration time
  /// to charge now: zero when the interval is fully cached (a hit).
  Time acquire(std::uintptr_t addr, std::size_t len);

  /// Drop every cached registration (e.g. simulated process teardown).
  void clear();

  std::size_t pinned_bytes() const { return pinned_bytes_; }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t evictions() const { return evictions_; }

 private:
  struct Region;
  using Map = std::map<std::uintptr_t, Region>;  // keyed by region start
  struct Region {
    std::uintptr_t end = 0;
    std::list<std::uintptr_t>::iterator lru;  // position in lru_ (stores start key)
  };

  void touch(Map::iterator it);
  void erase_region(Map::iterator it);
  void evict_down_to(std::size_t budget, std::uintptr_t protect_begin,
                     std::uintptr_t protect_end);

  std::size_t capacity_;
  CostFn cost_;
  Map regions_;
  std::list<std::uintptr_t> lru_;  // front = most recent
  std::size_t pinned_bytes_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace nmx::rcache
