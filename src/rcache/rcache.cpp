#include "rcache/rcache.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace nmx::rcache {

RegistrationCache::RegistrationCache(std::size_t capacity_bytes, CostFn cost)
    : capacity_(capacity_bytes), cost_(std::move(cost)) {
  NMX_ASSERT(capacity_ > 0);
  NMX_ASSERT(cost_ != nullptr);
}

void RegistrationCache::touch(Map::iterator it) {
  lru_.erase(it->second.lru);
  lru_.push_front(it->first);
  it->second.lru = lru_.begin();
}

void RegistrationCache::erase_region(Map::iterator it) {
  pinned_bytes_ -= it->second.end - it->first;
  lru_.erase(it->second.lru);
  regions_.erase(it);
}

void RegistrationCache::evict_down_to(std::size_t budget, std::uintptr_t protect_begin,
                                      std::uintptr_t protect_end) {
  while (pinned_bytes_ > budget && !lru_.empty()) {
    // Walk from the LRU end, skipping the region we are in the middle of
    // installing/using.
    auto lit = std::prev(lru_.end());
    bool evicted = false;
    while (true) {
      auto it = regions_.find(*lit);
      NMX_ASSERT(it != regions_.end());
      if (it->first >= protect_end || it->second.end <= protect_begin) {
        ++evictions_;
        erase_region(it);
        evicted = true;
        break;
      }
      if (lit == lru_.begin()) break;
      --lit;
    }
    if (!evicted) break;  // everything pinned is protected; over-budget stays
  }
}

Time RegistrationCache::acquire(std::uintptr_t addr, std::size_t len) {
  NMX_ASSERT(len > 0);
  const std::uintptr_t begin = addr;
  const std::uintptr_t end = addr + len;

  // Collect overlapping (or touching) regions: they merge with the request.
  auto it = regions_.upper_bound(begin);
  if (it != regions_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end >= begin) it = prev;
  }
  std::uintptr_t merged_begin = begin;
  std::uintptr_t merged_end = end;
  std::size_t covered = 0;
  while (it != regions_.end() && it->first <= merged_end) {
    merged_begin = std::min(merged_begin, it->first);
    merged_end = std::max(merged_end, it->second.end);
    const std::uintptr_t ov_b = std::max(it->first, begin);
    const std::uintptr_t ov_e = std::min(it->second.end, end);
    if (ov_e > ov_b) covered += ov_e - ov_b;
    auto next = std::next(it);
    erase_region(it);
    it = next;
  }

  NMX_ASSERT(covered <= len);
  const std::size_t uncovered = len - covered;
  Time t = 0;
  if (uncovered == 0) {
    ++hits_;
  } else {
    ++misses_;
    t = cost_(uncovered);
  }

  // Install the merged region as most-recently-used.
  lru_.push_front(merged_begin);
  Region r;
  r.end = merged_end;
  r.lru = lru_.begin();
  pinned_bytes_ += merged_end - merged_begin;
  regions_.emplace(merged_begin, r);

  evict_down_to(capacity_, merged_begin, merged_end);
  return t;
}

void RegistrationCache::clear() {
  regions_.clear();
  lru_.clear();
  pinned_bytes_ = 0;
}

}  // namespace nmx::rcache
