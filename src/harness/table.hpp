// Minimal fixed-width table printer for the paper-style bench output.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace nmx::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }
  void print(std::ostream& os) const;

  /// Format a double with `prec` digits after the point.
  static std::string fmt(double v, int prec = 2);
  /// Human-readable byte count ("4K", "16M").
  static std::string bytes(std::size_t n);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nmx::harness
