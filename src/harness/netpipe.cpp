#include "harness/netpipe.hpp"

#include <algorithm>

namespace nmx::harness {

std::vector<std::size_t> latency_sizes() {
  std::vector<std::size_t> s;
  for (std::size_t v = 1; v <= 512; v *= 2) s.push_back(v);
  return s;
}

std::vector<std::size_t> bandwidth_sizes() {
  std::vector<std::size_t> s;
  for (std::size_t v = 1; v <= 64ull * 1024 * 1024; v *= 4) s.push_back(v);
  return s;
}

std::vector<NetpipePoint> netpipe(mpi::Cluster& cluster, const std::vector<std::size_t>& sizes,
                                  int iters, bool any_source) {
  std::vector<NetpipePoint> out;
  for (const std::size_t size : sizes) {
    double best_rtt = 0;
    cluster.run([&](mpi::Comm& c) {
      if (c.rank() > 1) return;
      std::vector<std::byte> buf(std::max<std::size_t>(size, 1));
      const int peer = 1 - c.rank();
      const int recv_src = any_source ? mpi::ANY_SOURCE : peer;
      auto pingpong = [&] {
        if (c.rank() == 0) {
          c.send(buf.data(), size, peer, 99);
          c.recv(buf.data(), size, recv_src, 99);
        } else {
          c.recv(buf.data(), size, recv_src, 99);
          c.send(buf.data(), size, peer, 99);
        }
      };
      pingpong();  // warmup (fills registration caches, like Netpipe's loop)
      double best = 0;
      for (int i = 0; i < iters; ++i) {
        const double t0 = c.wtime();
        pingpong();
        const double rtt = c.wtime() - t0;
        if (best == 0 || rtt < best) best = rtt;
      }
      if (c.rank() == 0) best_rtt = best;
    });
    NetpipePoint p;
    p.size = size;
    p.latency_us = best_rtt / 2.0 * 1e6;
    p.bandwidth_MBps = static_cast<double>(size) / (best_rtt / 2.0) / (1024.0 * 1024.0);
    out.push_back(p);
  }
  return out;
}

std::vector<NetpipePoint> netpipe(mpi::ClusterConfig cfg, const std::vector<std::size_t>& sizes,
                                  int iters, bool any_source) {
  mpi::Cluster cluster(cfg);
  return netpipe(cluster, sizes, iters, any_source);
}

}  // namespace nmx::harness
