// Observability sidecars: given a traced cluster, write the Chrome
// trace-event JSON (`<stem>.trace.json`, loadable in Perfetto / about:tracing)
// and the metrics CSV (`<stem>.metrics.csv`) next to a bench's printed
// tables. The per-figure benches call run_traced_sidecar() after their tables
// so every fig*_* run leaves machine-readable artifacts behind.
#pragma once

#include <string>
#include <vector>

#include "mpi/cluster.hpp"
#include "obs/report.hpp"

namespace nmx::harness {

/// Write `<stem>.trace.json` and `<stem>.metrics.csv` from the cluster's
/// recorder. Returns false (and writes nothing) if tracing was off.
bool write_sidecars(mpi::Cluster& cluster, const std::string& stem);

/// Analytic rail parameters (lambda = wire latency + per-message cost,
/// beta = bandwidth) of a cluster's rails, for the latency-tolerance model.
std::vector<obs::RailParam> rail_params(const mpi::ClusterConfig& cfg);

/// Analyze the cluster's trace (critical path + latency tolerance) into one
/// report entry named `name`.
obs::RunReport analyze_cluster(mpi::Cluster& cluster, std::string name);

/// Write `<stem>.report.json` from an assembled report and print its
/// human-readable summary table. Returns false if the file cannot be written.
bool write_report_sidecar(const obs::Report& rep, const std::string& stem);

/// Run a small mixed workload (network rendezvous + overlap compute, eager
/// shared-memory traffic, a barrier) on `cfg` with tracing and PIOMan forced
/// on, then write both sidecars. One call per bench binary gives every
/// figure a Perfetto-loadable trace without touching its measured runs.
/// Returns the number of trace records captured.
std::size_t run_traced_sidecar(mpi::ClusterConfig cfg, const std::string& stem);

}  // namespace nmx::harness
