#include "harness/table.hpp"

#include <algorithm>
#include <cstdio>

namespace nmx::harness {

std::string Table::fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::bytes(std::size_t n) {
  if (n >= 1024ull * 1024 && n % (1024ull * 1024) == 0) return std::to_string(n / 1024 / 1024) + "M";
  if (n >= 1024 && n % 1024 == 0) return std::to_string(n / 1024) + "K";
  return std::to_string(n);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) w[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < w.size(); ++i) {
      w[i] = std::max(w[i], row[i].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "" : "  ");
      os.width(static_cast<std::streamsize>(w[i]));
      os << cells[i];
    }
    os << "\n";
  };
  line(headers_);
  std::string dash;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    dash += std::string(w[i], '-') + (i + 1 < headers_.size() ? "  " : "");
  }
  os << dash << "\n";
  for (const auto& row : rows_) line(row);
}

}  // namespace nmx::harness
