// Netpipe-style ping-pong sweep (Snell, Mikler, Gustafson — the tool the
// paper uses for Figures 4, 5 and 6): for each message size, time ping-pong
// round trips between ranks 0 and 1 and report one-way latency and
// bandwidth. The paper's convention of 1 MB = 1024*1024 bytes is kept.
#pragma once

#include <cstddef>
#include <vector>

#include "mpi/cluster.hpp"

namespace nmx::harness {

struct NetpipePoint {
  std::size_t size = 0;
  double latency_us = 0;      ///< one-way, best of the measured iterations
  double bandwidth_MBps = 0;  ///< size / one-way time
};

/// Message sizes of the paper's latency plots (1 B .. 512 B, powers of two).
std::vector<std::size_t> latency_sizes();
/// Message sizes of the paper's bandwidth plots (1 B .. 64 MB).
std::vector<std::size_t> bandwidth_sizes();

/// Run the sweep on an existing cluster (ranks 0 and 1 must exist). Each
/// size does one warmup and `iters` measured round trips. `any_source`
/// replaces the known-source receives with MPI_ANY_SOURCE — the "w/AS"
/// curve of Figure 4a.
std::vector<NetpipePoint> netpipe(mpi::Cluster& cluster, const std::vector<std::size_t>& sizes,
                                  int iters = 3, bool any_source = false);

/// Convenience: build a 2-process cluster from `cfg` and sweep it.
std::vector<NetpipePoint> netpipe(mpi::ClusterConfig cfg, const std::vector<std::size_t>& sizes,
                                  int iters = 3, bool any_source = false);

}  // namespace nmx::harness
