// The overlap benchmark of §4.1.2 / Figure 7: "the sender calls MPI_Isend,
// computes for a while and waits for the end of the communication (using
// MPI_Wait) ... We measure the time required to send the message and to
// perform the computation."
//
// A stack with background progression (PIOMan) yields
//   sending_time ≈ max(computation, communication);
// one without yields
//   sending_time ≈ computation + communication.
#pragma once

#include <cstddef>
#include <vector>

#include "mpi/cluster.hpp"

namespace nmx::harness {

struct OverlapPoint {
  std::size_t size = 0;
  double send_time_us = 0;  ///< isend + compute + wait, averaged
};

/// `compute_seconds` = 0 gives the "Reference (no computation)" curve.
std::vector<OverlapPoint> overlap(mpi::Cluster& cluster, const std::vector<std::size_t>& sizes,
                                  double compute_seconds, int iters = 3);

std::vector<OverlapPoint> overlap(mpi::ClusterConfig cfg, const std::vector<std::size_t>& sizes,
                                  double compute_seconds, int iters = 3);

}  // namespace nmx::harness
