#include "harness/overlap.hpp"

#include <algorithm>

namespace nmx::harness {

std::vector<OverlapPoint> overlap(mpi::Cluster& cluster, const std::vector<std::size_t>& sizes,
                                  double compute_seconds, int iters) {
  std::vector<OverlapPoint> out;
  for (const std::size_t size : sizes) {
    double total = 0;
    cluster.run([&](mpi::Comm& c) {
      std::vector<std::byte> buf(std::max<std::size_t>(size, 1));
      char ack = 0;
      if (c.rank() == 0) {
        // warmup exchange
        c.send(buf.data(), size, 1, 7);
        c.recv(&ack, 1, 1, 8);
        double sum = 0;
        for (int i = 0; i < iters; ++i) {
          const double t0 = c.wtime();
          mpi::Request r = c.isend(buf.data(), size, 1, 7);
          if (compute_seconds > 0) c.compute(compute_seconds);
          c.wait(r);
          sum += c.wtime() - t0;
          // close the loop so iterations do not pipeline into each other
          c.recv(&ack, 1, 1, 8);
        }
        total = sum / iters;
      } else if (c.rank() == 1) {
        c.recv(buf.data(), size, 0, 7);
        c.send(&ack, 1, 0, 8);
        for (int i = 0; i < iters; ++i) {
          c.recv(buf.data(), size, 0, 7);  // receiver sits in MPI_Recv
          c.send(&ack, 1, 0, 8);
        }
      }
    });
    OverlapPoint p;
    p.size = size;
    p.send_time_us = total * 1e6;
    out.push_back(p);
  }
  return out;
}

std::vector<OverlapPoint> overlap(mpi::ClusterConfig cfg, const std::vector<std::size_t>& sizes,
                                  double compute_seconds, int iters) {
  mpi::Cluster cluster(cfg);
  return overlap(cluster, sizes, compute_seconds, iters);
}

}  // namespace nmx::harness
