#include "harness/sidecar.hpp"

#include <cstdio>
#include <iostream>
#include <vector>

#include "obs/export_chrome.hpp"
#include "obs/export_csv.hpp"

namespace nmx::harness {

bool write_sidecars(mpi::Cluster& cluster, const std::string& stem) {
  obs::Recorder* rec = cluster.recorder();
  if (rec == nullptr) return false;
  obs::write_chrome_trace_file(*rec, stem + ".trace.json");
  obs::write_metrics_csv_file(*rec, stem + ".metrics.csv");
  return true;
}

std::vector<obs::RailParam> rail_params(const mpi::ClusterConfig& cfg) {
  std::vector<obs::RailParam> out;
  out.reserve(cfg.rails.size());
  for (const net::NicProfile& p : cfg.rails) {
    obs::RailParam rp;
    rp.name = p.name;
    rp.lambda = p.wire_latency + p.per_message;
    rp.beta = p.bandwidth;
    out.push_back(std::move(rp));
  }
  return out;
}

obs::RunReport analyze_cluster(mpi::Cluster& cluster, std::string name) {
  obs::Recorder* rec = cluster.recorder();
  if (rec == nullptr) {
    obs::RunReport empty;
    empty.name = std::move(name);
    return empty;
  }
  return obs::analyze_run(*rec, std::move(name), cluster.config().procs,
                          rail_params(cluster.config()));
}

bool write_report_sidecar(const obs::Report& rep, const std::string& stem) {
  const std::string path = stem + ".report.json";
  if (!obs::write_report_file(rep, path)) return false;
  obs::print_report_summary(rep, std::cout);
  std::printf("report sidecar: %s\n", path.c_str());
  return true;
}

std::size_t run_traced_sidecar(mpi::ClusterConfig cfg, const std::string& stem) {
  cfg.trace = true;
  cfg.pioman = true;  // so PIOMan pass metrics show up in the sidecar
  mpi::Cluster cluster(cfg);

  cluster.run([](mpi::Comm& c) {
    // Rendezvous-sized ping across the network with overlapped compute, an
    // eager message, and a closing barrier — touches every instrumented
    // layer (strategy, rails, PIOMan, rendezvous handshake, wire, shm when
    // ranks share a node).
    std::vector<std::byte> big(256 * 1024), small(1024);
    const int partner = c.rank() ^ 1;
    if (partner < c.size()) {
      if (c.rank() % 2 == 0) {
        mpi::Request r = c.isend(big.data(), big.size(), partner, 7);
        c.compute(30e-6);
        c.wait(r);
        c.send(small.data(), small.size(), partner, 8);
      } else {
        c.recv(big.data(), big.size(), partner, 7);
        c.recv(small.data(), small.size(), partner, 8);
      }
    }
    c.barrier();
  });

  const bool ok = write_sidecars(cluster, stem);
  if (ok) {
    std::printf("sidecars: %s.trace.json (open in https://ui.perfetto.dev), %s.metrics.csv\n",
                stem.c_str(), stem.c_str());
  }
  return cluster.recorder() != nullptr ? cluster.recorder()->size() : 0;
}

}  // namespace nmx::harness
