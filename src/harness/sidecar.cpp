#include "harness/sidecar.hpp"

#include <cstdio>
#include <vector>

#include "obs/export_chrome.hpp"
#include "obs/export_csv.hpp"

namespace nmx::harness {

bool write_sidecars(mpi::Cluster& cluster, const std::string& stem) {
  obs::Recorder* rec = cluster.recorder();
  if (rec == nullptr) return false;
  obs::write_chrome_trace_file(*rec, stem + ".trace.json");
  obs::write_metrics_csv_file(*rec, stem + ".metrics.csv");
  return true;
}

std::size_t run_traced_sidecar(mpi::ClusterConfig cfg, const std::string& stem) {
  cfg.trace = true;
  cfg.pioman = true;  // so PIOMan pass metrics show up in the sidecar
  mpi::Cluster cluster(cfg);

  cluster.run([](mpi::Comm& c) {
    // Rendezvous-sized ping across the network with overlapped compute, an
    // eager message, and a closing barrier — touches every instrumented
    // layer (strategy, rails, PIOMan, rendezvous handshake, wire, shm when
    // ranks share a node).
    std::vector<std::byte> big(256 * 1024), small(1024);
    const int partner = c.rank() ^ 1;
    if (partner < c.size()) {
      if (c.rank() % 2 == 0) {
        mpi::Request r = c.isend(big.data(), big.size(), partner, 7);
        c.compute(30e-6);
        c.wait(r);
        c.send(small.data(), small.size(), partner, 8);
      } else {
        c.recv(big.data(), big.size(), partner, 7);
        c.recv(small.data(), small.size(), partner, 8);
      }
    }
    c.barrier();
  });

  const bool ok = write_sidecars(cluster, stem);
  if (ok) {
    std::printf("sidecars: %s.trace.json (open in https://ui.perfetto.dev), %s.metrics.csv\n",
                stem.c_str(), stem.c_str());
  }
  return cluster.recorder() != nullptr ? cluster.recorder()->size() : 0;
}

}  // namespace nmx::harness
