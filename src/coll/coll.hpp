// Topology/rail-aware collective engine. One implementation of the MPI
// collectives (barrier, bcast, allreduce, alltoall) with selectable
// per-collective algorithms — binomial and k-ary trees, ring, recursive
// doubling, and a modeled NIC-offloaded combine tree (Yu/Buntinas/Graham/
// Panda) — that all stacks share through mpi::Comm.
//
// Every host-tree edge is an ordinary transport send, so its rail choice and
// rendezvous chunking route through the NewMadeleine cost model
// (Strategy::pick_rail / the CostModel chunk planner, fed by the RailAd
// two-ended horizons): the collective layer decides *who talks to whom*, the
// strategy decides *which wire carries it*. The NIC-offloaded path bypasses
// the host trees entirely: contributions combine inside the nmad::Core NIC
// unit and cross nodes as CollCtl control frames on the
// min-predicted-egress rail.
//
// Layering: nmx_coll sits *below* nmx_mpi (nmx_mpi links it). Engine is a
// friend of mpi::Comm and uses only Comm's inline members plus the raw
// Transport, so this library never references a symbol defined in comm.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace nmx::mpi {
class Comm;
struct TxRequest;
}  // namespace nmx::mpi

namespace nmx::coll {

/// Per-collective algorithm selector. Auto resolves to the op's default
/// (Engine::resolve_*), chosen to match the pre-engine behaviour:
/// dissemination barrier, binomial bcast, binomial reduce+bcast allreduce,
/// shifted-pairwise alltoall.
enum class Algo : std::uint8_t {
  Auto,         ///< the op's default algorithm
  Binomial,     ///< binomial tree (alltoall: Bruck's log-round algorithm)
  Kary,         ///< k-ary tree, arity Config::kary (alltoall: windowed pairwise)
  Ring,         ///< ring / pipelined chain (alltoall: shifted pairwise)
  RecDoubling,  ///< recursive doubling (bcast: binomial scatter + ring allgather)
  NicOffload,   ///< NIC combine tree; falls back to a host tree when the
                ///< stack has no NIC unit or the payload is not one double
};

const char* to_string(Algo a);
/// Parse "auto|binomial|kary|ring|recdbl|nic"; unknown text yields Auto.
Algo parse_algo(const std::string& s);

struct Config {
  Algo barrier = Algo::Auto;
  Algo bcast = Algo::Auto;
  Algo allreduce = Algo::Auto;
  Algo alltoall = Algo::Auto;
  /// Tree arity for Algo::Kary (also the in-flight window of the windowed
  /// alltoall). Clamped to >= 2 at use.
  int kary = 4;
  /// Pipeline chunk of the ring bcast: chunks this size flow down the chain
  /// with a bounded send window, so a long broadcast overlaps hops. Sized to
  /// a few rendezvous quanta by default.
  std::size_t ring_chunk = 256_KiB;

  /// Environment overrides: NMX_COLL_ALGO sets all four ops, then
  /// NMX_COLL_BARRIER / NMX_COLL_BCAST / NMX_COLL_ALLREDUCE /
  /// NMX_COLL_ALLTOALL override per op ("auto|binomial|kary|ring|recdbl|nic")
  /// and NMX_COLL_KARY sets the arity. Unset variables leave the
  /// programmatic configuration untouched.
  void apply_env();
};

/// Element-wise reduction: fold `count` elements of `in` into `inout`.
using ReduceFn = std::function<void(void* inout, const void* in, std::size_t count)>;

class Engine {
 public:
  static void barrier(mpi::Comm& c, const Config& cfg);
  static void bcast(mpi::Comm& c, void* buf, std::size_t len, int root, const Config& cfg);
  /// In-place allreduce: `data` holds this rank's `count` contributions of
  /// `elem` bytes and receives the combined vector. `nic_op` >= 0 (the NIC
  /// combine op code) marks a payload the NIC unit can take — one double —
  /// and is only honoured under Algo::NicOffload.
  static void allreduce(mpi::Comm& c, void* data, std::size_t elem, std::size_t count,
                        const ReduceFn& fold, int nic_op, const Config& cfg);
  static void alltoall(mpi::Comm& c, const void* sendbuf, std::size_t block, void* recvbuf,
                       const Config& cfg);

  // Auto resolution, exposed so tests can pin the default per op.
  static Algo resolve_barrier(Algo a) { return a == Algo::Auto ? Algo::RecDoubling : a; }
  static Algo resolve_bcast(Algo a) { return a == Algo::Auto ? Algo::Binomial : a; }
  static Algo resolve_allreduce(Algo a) { return a == Algo::Auto ? Algo::Binomial : a; }
  static Algo resolve_alltoall(Algo a) { return a == Algo::Auto ? Algo::Ring : a; }

 private:
  // --- pt2pt plumbing on the collective context ----------------------------
  // Replicates Comm's csend/crecv family through friendship: same context,
  // same MpiWait span bookkeeping (the critpath walker needs the End arg to
  // name the request a wait resolved on).
  static int ctx(const mpi::Comm& c);
  static mpi::TxRequest* post_send(mpi::Comm& c, int dst, int tag, const void* buf,
                                   std::size_t len);
  static mpi::TxRequest* post_recv(mpi::Comm& c, int src, int tag, void* buf, std::size_t cap);
  static void wait(mpi::Comm& c, mpi::TxRequest* r);
  static void send(mpi::Comm& c, const void* buf, std::size_t len, int dst, int tag);
  static void recv(mpi::Comm& c, void* buf, std::size_t cap, int src, int tag);
  static void sendrecv(mpi::Comm& c, const void* sbuf, std::size_t slen, int dst, int stag,
                       void* rbuf, std::size_t rcap, int src, int rtag);

  // Cat::Coll span + nmad.coll.* metrics around one collective phase.
  static std::uint64_t phase_begin(mpi::Comm& c, int op_id, Algo algo, std::size_t bytes);
  static void phase_end(mpi::Comm& c, std::uint64_t sp, std::size_t bytes);

  /// Binomial (arity == 0) or k-ary parent/children of `vr` in a tree rooted
  /// at virtual rank 0; children ascending.
  static int tree_edges(int vr, int size, int arity, std::vector<int>* children);

  /// NIC combine tree rooted at `root`: returns false when the transport has
  /// no NIC unit (caller falls back to a host tree).
  static bool nic_combine_tree(mpi::Comm& c, double* value, int op, int root);

  // barrier bodies
  static void barrier_dissemination(mpi::Comm& c);
  static void barrier_tree(mpi::Comm& c, int arity);
  static void barrier_ring(mpi::Comm& c);

  // bcast bodies
  static void bcast_tree(mpi::Comm& c, void* buf, std::size_t len, int root, int arity);
  static void bcast_ring(mpi::Comm& c, void* buf, std::size_t len, int root, std::size_t chunk);
  static void bcast_scatter_allgather(mpi::Comm& c, void* buf, std::size_t len, int root);

  // allreduce bodies (root 0 where rooted)
  static void reduce_tree(mpi::Comm& c, void* data, std::size_t elem, std::size_t count,
                          const ReduceFn& fold, int arity);
  static void allreduce_rd_impl(mpi::Comm& c, void* data, std::size_t elem, std::size_t count,
                                const ReduceFn& fold);
  static void allreduce_ring(mpi::Comm& c, void* data, std::size_t elem, std::size_t count,
                             const ReduceFn& fold);

  // alltoall bodies
  static void alltoall_pairwise(mpi::Comm& c, const std::byte* in, std::size_t block,
                                std::byte* out);
  static void alltoall_bruck(mpi::Comm& c, const std::byte* in, std::size_t block,
                             std::byte* out);
  static void alltoall_xor(mpi::Comm& c, const std::byte* in, std::size_t block, std::byte* out);
  static void alltoall_windowed(mpi::Comm& c, const std::byte* in, std::size_t block,
                                std::byte* out, int window);
};

}  // namespace nmx::coll
