#include "coll/coll.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>

#include "common/assert.hpp"
#include "mpi/comm.hpp"
#include "obs/recorder.hpp"

namespace nmx::coll {

namespace {

// Collective-engine tags live above every legacy collective tag (<= 8502).
// Distinct ops use distinct blocks; within an op, blocking rounds are
// disambiguated by source rank, so small tag windows suffice.
constexpr int kTagBarrier = 9000;      // + round (dissemination)
constexpr int kTagBarrierUp = 9040;    // tree gather
constexpr int kTagBarrierDown = 9041;  // tree release
constexpr int kTagBarrierRing0 = 9050; // token pass 1
constexpr int kTagBarrierRing1 = 9051; // token pass 2 (release)
constexpr int kTagBcast = 9100;        // binomial / k-ary tree
constexpr int kTagBcastRing = 9150;    // + (chunk & 15)
constexpr int kTagBcastScatter = 9180;
constexpr int kTagBcastAg = 9250;      // + (step & 15)
constexpr int kTagReduce = 9200;       // tree reduce (allreduce up-phase)
constexpr int kTagRd = 9300;           // .. 9302 (recursive doubling)
constexpr int kTagRs = 9400;           // + (step & 15) (ring reduce-scatter)
constexpr int kTagRag = 9450;          // + (step & 15) (ring allgather)
constexpr int kTagA2aPair = 9500;      // + (round & 15)
constexpr int kTagA2aBruck = 9550;
constexpr int kTagA2aXor = 9560;
constexpr int kTagA2aWin = 9580;       // + (round & 15)

const char* const kOpName[] = {"barrier", "bcast", "allreduce", "alltoall"};

}  // namespace

const char* to_string(Algo a) {
  switch (a) {
    case Algo::Auto: return "auto";
    case Algo::Binomial: return "binomial";
    case Algo::Kary: return "kary";
    case Algo::Ring: return "ring";
    case Algo::RecDoubling: return "recdbl";
    case Algo::NicOffload: return "nic";
  }
  return "?";
}

Algo parse_algo(const std::string& s) {
  if (s == "binomial") return Algo::Binomial;
  if (s == "kary") return Algo::Kary;
  if (s == "ring") return Algo::Ring;
  if (s == "recdbl") return Algo::RecDoubling;
  if (s == "nic") return Algo::NicOffload;
  return Algo::Auto;
}

void Config::apply_env() {
  if (const char* v = std::getenv("NMX_COLL_ALGO")) {
    const Algo a = parse_algo(v);
    barrier = bcast = allreduce = alltoall = a;
  }
  if (const char* v = std::getenv("NMX_COLL_BARRIER")) barrier = parse_algo(v);
  if (const char* v = std::getenv("NMX_COLL_BCAST")) bcast = parse_algo(v);
  if (const char* v = std::getenv("NMX_COLL_ALLREDUCE")) allreduce = parse_algo(v);
  if (const char* v = std::getenv("NMX_COLL_ALLTOALL")) alltoall = parse_algo(v);
  if (const char* v = std::getenv("NMX_COLL_KARY")) kary = std::max(2, std::atoi(v));
}

// ---------------------------------------------------------------------------
// plumbing
// ---------------------------------------------------------------------------

int Engine::ctx(const mpi::Comm& c) { return c.ctx_base_ + mpi::Comm::kCollContext; }

mpi::TxRequest* Engine::post_send(mpi::Comm& c, int dst, int tag, const void* buf,
                                  std::size_t len) {
  return c.tx_.isend(c.global(dst), tag, ctx(c), buf, len);
}

mpi::TxRequest* Engine::post_recv(mpi::Comm& c, int src, int tag, void* buf, std::size_t cap) {
  return c.tx_.irecv(c.global(src), tag, ctx(c), buf, cap);
}

void Engine::wait(mpi::Comm& c, mpi::TxRequest* r) {
  // Same bookkeeping as Comm::wait: the MpiWait End arg names the span the
  // wait resolved on (a critical-path edge).
  const obs::SpanId waited = r->span;
  const obs::SpanId sp = c.span_begin(obs::Cat::MpiWait);
  c.tx_.wait(c.actor_, r);
  c.span_end(obs::Cat::MpiWait, sp, 0, static_cast<std::int64_t>(waited));
  c.tx_.release(r);
}

void Engine::send(mpi::Comm& c, const void* buf, std::size_t len, int dst, int tag) {
  wait(c, post_send(c, dst, tag, buf, len));
}

void Engine::recv(mpi::Comm& c, void* buf, std::size_t cap, int src, int tag) {
  wait(c, post_recv(c, src, tag, buf, cap));
}

void Engine::sendrecv(mpi::Comm& c, const void* sbuf, std::size_t slen, int dst, int stag,
                      void* rbuf, std::size_t rcap, int src, int rtag) {
  mpi::TxRequest* rr = post_recv(c, src, rtag, rbuf, rcap);
  mpi::TxRequest* sr = post_send(c, dst, stag, sbuf, slen);
  wait(c, sr);
  wait(c, rr);
}

std::uint64_t Engine::phase_begin(mpi::Comm& c, int op_id, Algo algo, std::size_t bytes) {
  if (obs::Recorder* r = c.rec()) {
    const std::string label = std::string("op=") + kOpName[op_id];
    r->metrics().counter("nmad.coll.count", label).add(1);
    if (bytes != 0) r->metrics().counter("nmad.coll.bytes", label).add(bytes);
  }
  return c.span_begin(obs::Cat::Coll, bytes,
                      (static_cast<std::int64_t>(op_id) << 8) |
                          static_cast<std::int64_t>(algo));
}

void Engine::phase_end(mpi::Comm& c, std::uint64_t sp, std::size_t bytes) {
  c.span_end(obs::Cat::Coll, sp, bytes);
}

int Engine::tree_edges(int vr, int size, int arity, std::vector<int>* children) {
  children->clear();
  if (arity <= 0) {
    // Binomial: parent clears vr's lowest set bit; children ascend from +1.
    int lowbit = vr == 0 ? 1 : (vr & -vr);
    if (vr == 0) {
      while (lowbit < size) lowbit <<= 1;
    }
    for (int m = 1; m < lowbit && vr + m < size; m <<= 1) children->push_back(vr + m);
    return vr == 0 ? -1 : vr - lowbit;
  }
  for (int j = 1; j <= arity; ++j) {
    const int kid = vr * arity + j;
    if (kid < size) children->push_back(kid);
  }
  return vr == 0 ? -1 : (vr - 1) / arity;
}

bool Engine::nic_combine_tree(mpi::Comm& c, double* value, int op, int root) {
  // All ranks of a communicator execute the same collective sequence, so the
  // counter agrees group-wide; the context block keeps sibling communicators
  // from colliding inside the NIC unit's id space.
  const std::uint64_t id =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ctx(c))) << 32) | c.next_coll_id_++;
  const int vr = (c.rank_ - root + c.size_) % c.size_;
  std::vector<int> kids;
  const int parent = tree_edges(vr, c.size_, 0, &kids);
  std::vector<int> world_kids;
  world_kids.reserve(kids.size());
  for (const int k : kids) world_kids.push_back(c.global((k + root) % c.size_));
  const int world_parent = parent >= 0 ? c.global((parent + root) % c.size_) : -1;
  mpi::TxRequest* r = c.tx_.nic_coll(id, world_parent, world_kids, op, value);
  if (r == nullptr) return false;  // no NIC unit on this stack: host fallback
  wait(c, r);
  return true;
}

// ---------------------------------------------------------------------------
// barrier
// ---------------------------------------------------------------------------

void Engine::barrier(mpi::Comm& c, const Config& cfg) {
  if (c.size_ == 1) return;
  const Algo a = resolve_barrier(cfg.barrier);
  const std::uint64_t sp = phase_begin(c, 0, a, 0);
  switch (a) {
    case Algo::NicOffload: {
      double v = 0;
      if (!nic_combine_tree(c, &v, /*op=*/0, /*root=*/0)) barrier_dissemination(c);
      break;
    }
    case Algo::Binomial: barrier_tree(c, 0); break;
    case Algo::Kary: barrier_tree(c, std::max(2, cfg.kary)); break;
    case Algo::Ring: barrier_ring(c); break;
    default: barrier_dissemination(c); break;
  }
  phase_end(c, sp, 0);
}

void Engine::barrier_dissemination(mpi::Comm& c) {
  int round = 0;
  for (int k = 1; k < c.size_; k <<= 1, ++round) {
    const int dst = (c.rank_ + k) % c.size_;
    const int src = (c.rank_ - k + c.size_) % c.size_;
    sendrecv(c, nullptr, 0, dst, kTagBarrier + round, nullptr, 0, src, kTagBarrier + round);
  }
}

void Engine::barrier_tree(mpi::Comm& c, int arity) {
  std::vector<int> kids;
  const int parent = tree_edges(c.rank_, c.size_, arity, &kids);
  for (const int k : kids) recv(c, nullptr, 0, k, kTagBarrierUp);
  if (parent >= 0) {
    send(c, nullptr, 0, parent, kTagBarrierUp);
    recv(c, nullptr, 0, parent, kTagBarrierDown);
  }
  for (const int k : kids) send(c, nullptr, 0, k, kTagBarrierDown);
}

void Engine::barrier_ring(mpi::Comm& c) {
  // Two token circuits: the first proves every rank entered, the second
  // releases them.
  const int right = (c.rank_ + 1) % c.size_;
  const int left = (c.rank_ - 1 + c.size_) % c.size_;
  if (c.rank_ == 0) {
    send(c, nullptr, 0, right, kTagBarrierRing0);
    recv(c, nullptr, 0, left, kTagBarrierRing0);
    send(c, nullptr, 0, right, kTagBarrierRing1);
    recv(c, nullptr, 0, left, kTagBarrierRing1);
  } else {
    recv(c, nullptr, 0, left, kTagBarrierRing0);
    send(c, nullptr, 0, right, kTagBarrierRing0);
    recv(c, nullptr, 0, left, kTagBarrierRing1);
    send(c, nullptr, 0, right, kTagBarrierRing1);
  }
}

// ---------------------------------------------------------------------------
// bcast
// ---------------------------------------------------------------------------

void Engine::bcast(mpi::Comm& c, void* buf, std::size_t len, int root, const Config& cfg) {
  if (c.size_ == 1) return;
  Algo a = resolve_bcast(cfg.bcast);
  // The NIC unit broadcasts exactly one double; the ring pipeline degenerates
  // on empty payloads. Everything else falls back to the binomial tree.
  if (a == Algo::NicOffload && len != sizeof(double)) a = Algo::Binomial;
  if ((a == Algo::Ring || a == Algo::RecDoubling) && len == 0) a = Algo::Binomial;
  const std::uint64_t sp = phase_begin(c, 1, a, len);
  switch (a) {
    case Algo::NicOffload: {
      double v = 0;
      std::memcpy(&v, buf, sizeof v);
      if (nic_combine_tree(c, &v, /*op=*/4, root)) {
        std::memcpy(buf, &v, sizeof v);
      } else {
        bcast_tree(c, buf, len, root, 0);
      }
      break;
    }
    case Algo::Kary: bcast_tree(c, buf, len, root, std::max(2, cfg.kary)); break;
    case Algo::Ring: bcast_ring(c, buf, len, root, cfg.ring_chunk); break;
    case Algo::RecDoubling: bcast_scatter_allgather(c, buf, len, root); break;
    default: bcast_tree(c, buf, len, root, 0); break;
  }
  phase_end(c, sp, len);
}

void Engine::bcast_tree(mpi::Comm& c, void* buf, std::size_t len, int root, int arity) {
  const int vr = (c.rank_ - root + c.size_) % c.size_;
  std::vector<int> kids;
  const int parent = tree_edges(vr, c.size_, arity, &kids);
  if (parent >= 0) recv(c, buf, len, (parent + root) % c.size_, kTagBcast);
  // Largest subtree first (binomial kids ascend, so iterate in reverse): the
  // deep branches start flowing before the leaves.
  for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
    send(c, buf, len, (*it + root) % c.size_, kTagBcast);
  }
}

void Engine::bcast_ring(mpi::Comm& c, void* buf, std::size_t len, int root, std::size_t chunk) {
  const int vr = (c.rank_ - root + c.size_) % c.size_;
  const int prev = vr > 0 ? (vr - 1 + root) % c.size_ : -1;
  const int next = vr + 1 < c.size_ ? (vr + 1 + root) % c.size_ : -1;
  chunk = std::max<std::size_t>(chunk, 1);
  auto* p = static_cast<std::byte*>(buf);
  std::deque<mpi::TxRequest*> inflight;
  for (std::size_t off = 0, i = 0; off < len; off += chunk, ++i) {
    const std::size_t n = std::min(chunk, len - off);
    const int tag = kTagBcastRing + static_cast<int>(i & 15);
    if (prev >= 0) recv(c, p + off, n, prev, tag);
    if (next >= 0) {
      inflight.push_back(post_send(c, next, tag, p + off, n));
      // Window of two outstanding chunks keeps the pipe full without
      // unbounded posted sends.
      while (inflight.size() > 2) {
        wait(c, inflight.front());
        inflight.pop_front();
      }
    }
  }
  while (!inflight.empty()) {
    wait(c, inflight.front());
    inflight.pop_front();
  }
}

void Engine::bcast_scatter_allgather(mpi::Comm& c, void* buf, std::size_t len, int root) {
  // van de Geijn long-message bcast: binomial scatter of P byte-blocks, then
  // a ring allgather — bandwidth-optimal at the cost of P-1 latency steps.
  const int P = c.size_;
  const int vr = (c.rank_ - root + P) % P;
  auto* p = static_cast<std::byte*>(buf);
  const std::size_t base = len / static_cast<std::size_t>(P);
  const std::size_t rem = len % static_cast<std::size_t>(P);
  const auto bsz = [&](int b) {
    return base + (static_cast<std::size_t>(b) < rem ? 1 : 0);
  };
  const auto boff = [&](int b) {
    return static_cast<std::size_t>(b) * base + std::min(static_cast<std::size_t>(b), rem);
  };

  // Scatter: vr's subtree owns blocks [vr, vr + lowbit(vr)).
  int lowbit = vr == 0 ? 1 : (vr & -vr);
  if (vr == 0) {
    while (lowbit < P) lowbit <<= 1;
  } else {
    const int hi = std::min(vr + lowbit, P);
    recv(c, p + boff(vr), boff(hi) - boff(vr), ((vr - lowbit) + root) % P, kTagBcastScatter);
  }
  for (int m = lowbit >> 1; m >= 1; m >>= 1) {
    if (vr + m < P) {
      const int hi = std::min(vr + 2 * m, P);
      send(c, p + boff(vr + m), boff(hi) - boff(vr + m), (vr + m + root) % P, kTagBcastScatter);
    }
  }

  // Ring allgather over the virtual-rank ring.
  const int right = (vr + 1) % P;
  const int left = (vr - 1 + P) % P;
  int cur = vr;
  for (int step = 0; step < P - 1; ++step) {
    const int incoming = (cur - 1 + P) % P;
    const int tag = kTagBcastAg + (step & 15);
    sendrecv(c, p + boff(cur), bsz(cur), (right + root) % P, tag, p + boff(incoming),
             bsz(incoming), (left + root) % P, tag);
    cur = incoming;
  }
}

// ---------------------------------------------------------------------------
// allreduce
// ---------------------------------------------------------------------------

void Engine::allreduce(mpi::Comm& c, void* data, std::size_t elem, std::size_t count,
                       const ReduceFn& fold, int nic_op, const Config& cfg) {
  if (c.size_ == 1) return;
  const std::size_t bytes = elem * count;
  Algo a = resolve_allreduce(cfg.allreduce);
  if (a == Algo::NicOffload && !(nic_op >= 0 && count == 1 && elem == sizeof(double))) {
    a = Algo::Binomial;  // the NIC unit combines exactly one double
  }
  const std::uint64_t sp = phase_begin(c, 2, a, bytes);
  switch (a) {
    case Algo::NicOffload: {
      double v = 0;
      std::memcpy(&v, data, sizeof v);
      if (nic_combine_tree(c, &v, nic_op, /*root=*/0)) {
        std::memcpy(data, &v, sizeof v);
      } else {
        reduce_tree(c, data, elem, count, fold, 0);
        bcast_tree(c, data, bytes, 0, 0);
      }
      break;
    }
    case Algo::Kary: {
      const int arity = std::max(2, cfg.kary);
      reduce_tree(c, data, elem, count, fold, arity);
      bcast_tree(c, data, bytes, 0, arity);
      break;
    }
    case Algo::RecDoubling: allreduce_rd_impl(c, data, elem, count, fold); break;
    case Algo::Ring: allreduce_ring(c, data, elem, count, fold); break;
    default:
      reduce_tree(c, data, elem, count, fold, 0);
      bcast_tree(c, data, bytes, 0, 0);
      break;
  }
  phase_end(c, sp, bytes);
}

void Engine::reduce_tree(mpi::Comm& c, void* data, std::size_t elem, std::size_t count,
                         const ReduceFn& fold, int arity) {
  std::vector<int> kids;
  const int parent = tree_edges(c.rank_, c.size_, arity, &kids);
  std::vector<std::byte> tmp(elem * count);
  for (const int k : kids) {
    recv(c, tmp.data(), tmp.size(), k, kTagReduce);
    fold(data, tmp.data(), count);
  }
  if (parent >= 0) send(c, data, elem * count, parent, kTagReduce);
}

void Engine::allreduce_rd_impl(mpi::Comm& c, void* data, std::size_t elem, std::size_t count,
                               const ReduceFn& fold) {
  // Recursive doubling with the MPICH non-power-of-two fold: excess ranks
  // contribute to a partner, sit out the doubling, and get the result after.
  const std::size_t bytes = elem * count;
  auto* acc = static_cast<std::byte*>(data);
  std::vector<std::byte> tmp(bytes);

  int pof2 = 1;
  while (pof2 * 2 <= c.size_) pof2 *= 2;
  const int rem = c.size_ - pof2;

  int newrank;
  if (c.rank_ < 2 * rem) {
    if (c.rank_ % 2 == 0) {
      send(c, acc, bytes, c.rank_ + 1, kTagRd);
      newrank = -1;
    } else {
      recv(c, tmp.data(), bytes, c.rank_ - 1, kTagRd);
      fold(acc, tmp.data(), count);
      newrank = c.rank_ / 2;
    }
  } else {
    newrank = c.rank_ - rem;
  }

  if (newrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int newdst = newrank ^ mask;
      const int dst = newdst < rem ? newdst * 2 + 1 : newdst + rem;
      sendrecv(c, acc, bytes, dst, kTagRd + 1, tmp.data(), bytes, dst, kTagRd + 1);
      fold(acc, tmp.data(), count);
    }
  }

  if (c.rank_ < 2 * rem) {
    if (c.rank_ % 2 == 0) {
      recv(c, acc, bytes, c.rank_ + 1, kTagRd + 2);
    } else {
      send(c, acc, bytes, c.rank_ - 1, kTagRd + 2);
    }
  }
}

void Engine::allreduce_ring(mpi::Comm& c, void* data, std::size_t elem, std::size_t count,
                            const ReduceFn& fold) {
  // Ring reduce-scatter then ring allgather over P element-blocks: each of
  // the 2(P-1) steps moves ~count/P elements, so every rank sends the
  // bandwidth-optimal 2*count*(P-1)/P elements total.
  const int P = c.size_;
  auto* p = static_cast<std::byte*>(data);
  const std::size_t base = count / static_cast<std::size_t>(P);
  const std::size_t rem = count % static_cast<std::size_t>(P);
  const auto bsz = [&](int b) {
    return base + (static_cast<std::size_t>(b) < rem ? 1 : 0);
  };
  const auto boff = [&](int b) {
    return static_cast<std::size_t>(b) * base + std::min(static_cast<std::size_t>(b), rem);
  };
  std::vector<std::byte> tmp((base + (rem != 0 ? 1 : 0)) * elem);
  const int right = (c.rank_ + 1) % P;
  const int left = (c.rank_ - 1 + P) % P;

  for (int s = 0; s < P - 1; ++s) {
    const int sb = (c.rank_ - s + P) % P;
    const int rb = (c.rank_ - s - 1 + 2 * P) % P;
    const int tag = kTagRs + (s & 15);
    sendrecv(c, p + boff(sb) * elem, bsz(sb) * elem, right, tag, tmp.data(), bsz(rb) * elem,
             left, tag);
    fold(p + boff(rb) * elem, tmp.data(), bsz(rb));
  }
  // Rank r now owns the fully reduced block (r+1) mod P; circulate it.
  for (int s = 0; s < P - 1; ++s) {
    const int sb = (c.rank_ + 1 - s + 2 * P) % P;
    const int rb = (c.rank_ - s + 2 * P) % P;
    const int tag = kTagRag + (s & 15);
    sendrecv(c, p + boff(sb) * elem, bsz(sb) * elem, right, tag, p + boff(rb) * elem,
             bsz(rb) * elem, left, tag);
  }
}

// ---------------------------------------------------------------------------
// alltoall
// ---------------------------------------------------------------------------

void Engine::alltoall(mpi::Comm& c, const void* sendbuf, std::size_t block, void* recvbuf,
                      const Config& cfg) {
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(c.rank_) * block,
              in + static_cast<std::size_t>(c.rank_) * block, block);
  if (c.size_ == 1) return;
  Algo a = resolve_alltoall(cfg.alltoall);
  if (a == Algo::NicOffload) a = Algo::Ring;  // no NIC path for alltoall
  if (a == Algo::RecDoubling && (c.size_ & (c.size_ - 1)) != 0) a = Algo::Ring;
  const std::uint64_t sp = phase_begin(c, 3, a, block * static_cast<std::size_t>(c.size_));
  switch (a) {
    case Algo::Binomial: alltoall_bruck(c, in, block, out); break;
    case Algo::RecDoubling: alltoall_xor(c, in, block, out); break;
    case Algo::Kary: alltoall_windowed(c, in, block, out, std::max(2, cfg.kary)); break;
    default: alltoall_pairwise(c, in, block, out); break;
  }
  phase_end(c, sp, block * static_cast<std::size_t>(c.size_));
}

void Engine::alltoall_pairwise(mpi::Comm& c, const std::byte* in, std::size_t block,
                               std::byte* out) {
  for (int k = 1; k < c.size_; ++k) {
    const int dst = (c.rank_ + k) % c.size_;
    const int src = (c.rank_ - k + c.size_) % c.size_;
    const int tag = kTagA2aPair + (k & 15);
    sendrecv(c, in + static_cast<std::size_t>(dst) * block, block, dst, tag,
             out + static_cast<std::size_t>(src) * block, block, src, tag);
  }
}

void Engine::alltoall_bruck(mpi::Comm& c, const std::byte* in, std::size_t block,
                            std::byte* out) {
  // Bruck: ceil(log2 P) rounds of bundled blocks — latency-optimal for small
  // blocks at the cost of local copies and log-factor extra bytes.
  const int P = c.size_;
  const int r = c.rank_;
  std::vector<std::byte> tmp(static_cast<std::size_t>(P) * block);
  const std::size_t half = (static_cast<std::size_t>(P) + 1) / 2;
  std::vector<std::byte> pack(half * block);
  std::vector<std::byte> rbuf(half * block);

  for (int i = 0; i < P; ++i) {
    std::memcpy(tmp.data() + static_cast<std::size_t>(i) * block,
                in + static_cast<std::size_t>((r + i) % P) * block, block);
  }
  for (int mask = 1; mask < P; mask <<= 1) {
    std::size_t n = 0;
    for (int i = 0; i < P; ++i) {
      if ((i & mask) != 0) {
        std::memcpy(pack.data() + n * block, tmp.data() + static_cast<std::size_t>(i) * block,
                    block);
        ++n;
      }
    }
    const int dst = (r + mask) % P;
    const int src = (r - mask + P) % P;
    sendrecv(c, pack.data(), n * block, dst, kTagA2aBruck, rbuf.data(), n * block, src,
             kTagA2aBruck);
    n = 0;
    for (int i = 0; i < P; ++i) {
      if ((i & mask) != 0) {
        std::memcpy(tmp.data() + static_cast<std::size_t>(i) * block, rbuf.data() + n * block,
                    block);
        ++n;
      }
    }
  }
  for (int i = 0; i < P; ++i) {
    std::memcpy(out + static_cast<std::size_t>((r - i + P) % P) * block,
                tmp.data() + static_cast<std::size_t>(i) * block, block);
  }
}

void Engine::alltoall_xor(mpi::Comm& c, const std::byte* in, std::size_t block,
                          std::byte* out) {
  // XOR pairwise exchange: power-of-two only; every round is a perfect
  // matching, so no rank ever waits on a busy partner.
  for (int k = 1; k < c.size_; ++k) {
    const int peer = c.rank_ ^ k;
    sendrecv(c, in + static_cast<std::size_t>(peer) * block, block, peer, kTagA2aXor,
             out + static_cast<std::size_t>(peer) * block, block, peer, kTagA2aXor);
  }
}

void Engine::alltoall_windowed(mpi::Comm& c, const std::byte* in, std::size_t block,
                               std::byte* out, int window) {
  // Nonblocking batches of `window` peers: receives posted first so eager
  // arrivals match instead of queueing unexpected.
  const int P = c.size_;
  std::vector<mpi::TxRequest*> reqs;
  for (int lo = 1; lo < P; lo += window) {
    const int hi = std::min(lo + window, P);
    reqs.clear();
    for (int k = lo; k < hi; ++k) {
      const int src = (c.rank_ - k + P) % P;
      reqs.push_back(
          post_recv(c, src, kTagA2aWin + (k & 15), out + static_cast<std::size_t>(src) * block,
                    block));
    }
    for (int k = lo; k < hi; ++k) {
      const int dst = (c.rank_ + k) % P;
      reqs.push_back(
          post_send(c, dst, kTagA2aWin + (k & 15), in + static_cast<std::size_t>(dst) * block,
                    block));
    }
    for (mpi::TxRequest* q : reqs) wait(c, q);
  }
}

}  // namespace nmx::coll
