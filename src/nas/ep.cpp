// EP — embarrassingly parallel: random-number pair generation with almost no
// communication; only three reductions at the end (sx, sy and the ten
// annulus counts). The kernel every stack should run at the same speed —
// unless its progression machinery steals compute cycles, which is exactly
// where Open MPI's lag shows in Figure 8.
#include "nas/grid.hpp"
#include "nas/nas.hpp"

namespace nmx::nas {

namespace {

class EpKernel final : public NasKernel {
 public:
  std::string name() const override { return "EP"; }

  double run(mpi::Comm& c, const NasConfig& cfg) override {
    // Class C ~ 2^32 pairs; calibrated serial time (see DESIGN.md §4).
    const double serial = 1050.0 / class_scale(cfg.cls);
    const int chunks = 16;  // the k-loop over batches of random pairs

    c.barrier();
    const double t0 = c.wtime();
    for (int k = 0; k < chunks; ++k) {
      c.compute(serial / chunks / c.size());
    }
    // Final reductions, as in NPB: sums of the accepted coordinates and the
    // per-annulus counts.
    double sx = 0.5 * (c.rank() + 1), sy = -0.25 * (c.rank() + 1);
    double gsx = 0, gsy = 0;
    c.allreduce(&sx, &gsx, 1, mpi::ReduceOp::Sum);
    c.allreduce(&sy, &gsy, 1, mpi::ReduceOp::Sum);
    long q[10], gq[10];
    for (int i = 0; i < 10; ++i) q[i] = c.rank() + i;
    c.allreduce(q, gq, 10, mpi::ReduceOp::Sum);
    c.barrier();

    if (cfg.validate) {
      const double n = c.size();
      NMX_ASSERT_MSG(gsx == 0.5 * n * (n + 1) / 2, "EP sx reduction mismatch");
      NMX_ASSERT_MSG(gsy == -0.25 * n * (n + 1) / 2, "EP sy reduction mismatch");
      long expect0 = 0;
      for (int p = 0; p < c.size(); ++p) expect0 += p;
      NMX_ASSERT_MSG(gq[0] == expect0, "EP count reduction mismatch");
    }
    return c.wtime() - t0;
  }
};

}  // namespace

std::unique_ptr<NasKernel> make_ep() { return std::make_unique<EpKernel>(); }

}  // namespace nmx::nas
