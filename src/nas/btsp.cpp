// BT and SP — ADI solvers on a square process grid (the paper substitutes
// 9/36 for 8/32 because of this), exchanging 100KB-class cell faces with the
// grid neighbors in each of the three solve directions every iteration. SP
// iterates twice as often with lighter per-iteration compute, making it the
// most bandwidth-pressured kernel — with several processes per node sharing
// a NIC (36 procs / 10 nodes), ingress/egress contention produces the
// across-the-board SP dip of Figure 8c.
#include <algorithm>
#include <cmath>

#include "nas/grid.hpp"
#include "nas/nas.hpp"

namespace nmx::nas {

namespace {

struct AdiParams {
  std::size_t n;
  int niter;
  double serial_seconds;
  int substeps;  ///< face exchanges per direction per iteration
};

class AdiKernel final : public NasKernel {
 public:
  AdiKernel(std::string name, double serial_c, int niter_c, int substeps, double mem_intensity)
      : name_(std::move(name)),
        serial_c_(serial_c),
        niter_c_(niter_c),
        substeps_(substeps),
        mem_intensity_(mem_intensity) {}

  std::string name() const override { return name_; }
  bool requires_square() const override { return true; }

  double run(mpi::Comm& c, const NasConfig& cfg) override {
    const AdiParams p = params(cfg.cls);
    const int side = static_cast<int>(std::lround(std::sqrt(c.size())));
    NMX_ASSERT_MSG(side * side == c.size(), name_ + " requires a square process count");
    Grid2D g;
    g.px = side;
    g.py = side;
    g.x = c.rank() % side;
    g.y = c.rank() / side;

    // Cell face: (n/side)^2 points x 5 flow variables.
    const std::size_t cell = p.n / static_cast<std::size_t>(side);
    const std::size_t face_bytes = std::max<std::size_t>(cell * cell * 5 * sizeof(double), 16);
    std::vector<std::byte> out(face_bytes), in(face_bytes);

    const double step_compute = p.serial_seconds /
                                (static_cast<double>(p.niter) * 3.0 * p.substeps) / c.size() *
                                membw_dilation(c, mem_intensity_);

    auto exchange = [&](int a, int b, int tag, int iter) {
      // Ordered pair exchange with the two neighbors of one direction.
      if (a >= 0) {
        stamp(out, c.rank(), iter);
        c.sendrecv(out.data(), face_bytes, a, tag, in.data(), in.size(), a, tag);
        check_stamp(in, a, iter, cfg.validate);
      }
      if (b >= 0) {
        stamp(out, c.rank(), iter);
        c.sendrecv(out.data(), face_bytes, b, tag, in.data(), in.size(), b, tag);
        check_stamp(in, b, iter, cfg.validate);
      }
    };

    return timed_loop(c, p.niter, cfg.iter_fraction, [&](int iter) {
      for (int sub = 0; sub < p.substeps; ++sub) {
        // x-solve
        c.compute(step_compute);
        exchange(g.west(), g.east(), 700 + sub, iter);
        // y-solve
        c.compute(step_compute);
        exchange(g.north(), g.south(), 710 + sub, iter);
        // z-solve: the multi-partition scheme routes z-direction faces
        // through the same grid links.
        c.compute(step_compute);
        exchange(g.east(), g.west(), 720 + sub, iter);
      }
    });
  }

 private:
  AdiParams params(NasClass cls) const {
    AdiParams p;
    p.substeps = substeps_;
    p.serial_seconds = serial_c_ / class_scale(cls);
    switch (cls) {
      case NasClass::C: p.n = 162; p.niter = niter_c_; break;
      case NasClass::B: p.n = 102; p.niter = niter_c_; break;
      case NasClass::A: p.n = 64; p.niter = niter_c_; break;
      case NasClass::S: p.n = 12; p.niter = std::max(niter_c_ / 4, 8); break;
    }
    return p;
  }

  std::string name_;
  double serial_c_;
  int niter_c_;
  int substeps_;
  double mem_intensity_;
};

}  // namespace

std::unique_ptr<NasKernel> make_bt() {
  return std::make_unique<AdiKernel>("BT", 5600.0, 200, /*substeps=*/1, /*mem_intensity=*/0.20);
}
std::unique_ptr<NasKernel> make_sp() {
  // SP is the most memory-bandwidth-bound NPB kernel: sharing a node among
  // 3-4 processes dilates its compute — the Figure 8c dip at 36 processes.
  return std::make_unique<AdiKernel>("SP", 6000.0, 400, /*substeps=*/2, /*mem_intensity=*/0.90);
}

}  // namespace nmx::nas
