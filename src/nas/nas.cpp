#include "nas/nas.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace nmx::nas {

char to_char(NasClass cls) {
  switch (cls) {
    case NasClass::S: return 'S';
    case NasClass::A: return 'A';
    case NasClass::B: return 'B';
    case NasClass::C: return 'C';
  }
  return '?';
}

double class_scale(NasClass cls) {
  switch (cls) {
    case NasClass::C: return 1.0;
    case NasClass::B: return 4.0;
    case NasClass::A: return 16.0;
    case NasClass::S: return 20000.0;
  }
  return 1.0;
}

double timed_loop(mpi::Comm& c, int full_iters, double fraction,
                  const std::function<void(int)>& iter_body) {
  const int run = std::clamp(static_cast<int>(std::lround(full_iters * fraction)), 2, full_iters);
  iter_body(-1);  // warmup (registration caches, route warm-up)
  c.barrier();
  const double t0 = c.wtime();
  for (int i = 0; i < run; ++i) {
    // Iteration spans bound the critical-path analyzer's per-iteration
    // windows (arg = iteration index; the warmup iteration is untraced).
    const obs::SpanId it = c.region_begin(obs::Cat::Iter, 0, i);
    iter_body(i);
    c.region_end(obs::Cat::Iter, it, 0, i);
  }
  c.barrier();
  const double t = c.wtime() - t0;
  return t * static_cast<double>(full_iters) / run;
}

void stamp(std::vector<std::byte>& buf, int sender, int step) {
  if (buf.size() < 2 * sizeof(double)) return;
  const double a = sender;
  const double b = step;
  std::memcpy(buf.data(), &a, sizeof(double));
  std::memcpy(buf.data() + sizeof(double), &b, sizeof(double));
}

void check_stamp(const std::vector<std::byte>& buf, int sender, int step, bool enabled) {
  if (!enabled || buf.size() < 2 * sizeof(double)) return;
  double a = 0, b = 0;
  std::memcpy(&a, buf.data(), sizeof(double));
  std::memcpy(&b, buf.data() + sizeof(double), sizeof(double));
  NMX_ASSERT_MSG(static_cast<int>(a) == sender && static_cast<int>(b) == step,
                 "NAS message stamp mismatch: wrong sender or iteration");
}

double membw_dilation(const mpi::Comm& c, double intensity) {
  const int local = c.local_ranks();
  if (local <= 2) return 1.0;
  return 1.0 + intensity * static_cast<double>(local - 2) / static_cast<double>(local);
}

// Kernel factories are defined in their own translation units.
std::unique_ptr<NasKernel> make_ep();
std::unique_ptr<NasKernel> make_cg();
std::unique_ptr<NasKernel> make_mg();
std::unique_ptr<NasKernel> make_ft();
std::unique_ptr<NasKernel> make_lu();
std::unique_ptr<NasKernel> make_bt();
std::unique_ptr<NasKernel> make_sp();
std::unique_ptr<NasKernel> make_is();

std::unique_ptr<NasKernel> make_kernel(const std::string& name) {
  if (name == "EP") return make_ep();
  if (name == "CG") return make_cg();
  if (name == "MG") return make_mg();
  if (name == "FT") return make_ft();
  if (name == "LU") return make_lu();
  if (name == "BT") return make_bt();
  if (name == "SP") return make_sp();
  if (name == "IS") return make_is();  // future-work extension (see is.cpp)
  NMX_FAIL("unknown NAS kernel: " + name);
}

std::vector<std::string> all_kernels() {
  return {"BT", "CG", "EP", "FT", "SP", "MG", "LU"};  // the paper's x-axis order
}

NasResult run_nas(mpi::Cluster& cluster, const std::string& kernel, const NasConfig& cfg) {
  auto k = make_kernel(kernel);
  NasResult res;
  res.kernel = kernel;
  res.cls = cfg.cls;
  res.procs = cluster.config().procs;
  if (k->requires_square()) {
    const int r = static_cast<int>(std::lround(std::sqrt(res.procs)));
    NMX_ASSERT_MSG(r * r == res.procs, kernel + " requires a square process count");
  }
  cluster.run([&](mpi::Comm& c) {
    const double t = k->run(c, cfg);
    if (c.rank() == 0) res.seconds = t;
  });
  return res;
}

}  // namespace nmx::nas
