// MG — multigrid V-cycles on a 3D periodic grid: halo exchanges with the six
// neighbors at every level, so message sizes span from hundreds of KB at the
// fine level down to a few bytes at the coarse ones. Exercises both
// bandwidth and small-message latency in one kernel.
#include <algorithm>

#include "nas/grid.hpp"
#include "nas/nas.hpp"

namespace nmx::nas {

namespace {

struct MgParams {
  std::size_t n;  ///< grid edge (n^3 points)
  int niter;
  double serial_seconds;
};

MgParams mg_params(NasClass cls) {
  switch (cls) {
    case NasClass::C: return {512, 20, 1050.0};
    case NasClass::B: return {256, 20, 262.0};
    case NasClass::A: return {256, 4, 66.0};
    case NasClass::S: return {32, 4, 0.05};
  }
  NMX_FAIL("bad class");
}

class MgKernel final : public NasKernel {
 public:
  std::string name() const override { return "MG"; }

  double run(mpi::Comm& c, const NasConfig& cfg) override {
    const MgParams p = mg_params(cfg.cls);
    const Grid3D g = Grid3D::make(c.rank(), c.size());

    // Levels: n, n/2, ..., 4.
    std::vector<std::size_t> levels;
    for (std::size_t m = p.n; m >= 4; m /= 2) levels.push_back(m);

    // Compute weight per level ~ points per level; normalize so one V-cycle
    // (down + up) costs serial/niter in total across ranks.
    double weight_sum = 0;
    for (std::size_t m : levels) weight_sum += 2.0 * static_cast<double>(m) * m * m;
    const double unit =
        p.serial_seconds / p.niter / weight_sum / c.size() * membw_dilation(c, 0.25);

    // Pre-size halo buffers per level per dimension.
    struct Halo {
      std::size_t bytes;
      std::vector<std::byte> out, in;
    };
    std::vector<std::array<Halo, 3>> halos(levels.size());
    for (std::size_t l = 0; l < levels.size(); ++l) {
      const std::size_t m = levels[l];
      for (int d = 0; d < 3; ++d) {
        // Face normal to dimension d: product of the local extents of the
        // two other dimensions.
        std::size_t face = sizeof(double);
        for (int o = 0; o < 3; ++o) {
          if (o == d) continue;
          face *= std::max<std::size_t>(m / static_cast<std::size_t>(g.dims[static_cast<std::size_t>(o)]), 1);
        }
        // Clamp to the 16-byte validation stamp: coarse-level faces can
        // shrink below it.
        face = std::max<std::size_t>(face, 16);
        halos[l][static_cast<std::size_t>(d)].bytes = face;
        halos[l][static_cast<std::size_t>(d)].out.resize(face);
        halos[l][static_cast<std::size_t>(d)].in.resize(face);
      }
    }

    auto periodic = [&](int dim, int dir) {
      auto coord = g.coord;
      const auto ud = static_cast<std::size_t>(dim);
      coord[ud] = (coord[ud] + dir + g.dims[ud]) % g.dims[ud];
      return g.rank_of(coord);
    };

    auto exchange_level = [&](std::size_t l, int step) {
      for (int d = 0; d < 3; ++d) {
        if (g.dims[static_cast<std::size_t>(d)] == 1) continue;  // no remote neighbor
        Halo& h = halos[l][static_cast<std::size_t>(d)];
        const int plus = periodic(d, +1);
        const int minus = periodic(d, -1);
        stamp(h.out, c.rank(), step);
        c.sendrecv(h.out.data(), h.bytes, plus, 400 + d, h.in.data(), h.in.size(), minus,
                   400 + d);
        check_stamp(h.in, minus, step, cfg.validate && plus != c.rank());
        c.sendrecv(h.out.data(), h.bytes, minus, 410 + d, h.in.data(), h.in.size(), plus,
                   410 + d);
      }
    };

    return timed_loop(c, p.niter, cfg.iter_fraction, [&](int iter) {
      // Down-sweep: restrict to coarser grids.
      for (std::size_t l = 0; l < levels.size(); ++l) {
        const double m = static_cast<double>(levels[l]);
        c.compute(unit * m * m * m);
        exchange_level(l, iter);
      }
      // Up-sweep: prolongate back to the fine grid.
      for (std::size_t l = levels.size(); l-- > 0;) {
        const double m = static_cast<double>(levels[l]);
        c.compute(unit * m * m * m);
        exchange_level(l, iter);
      }
    });
  }
};

}  // namespace

std::unique_ptr<NasKernel> make_mg() { return std::make_unique<MgKernel>(); }

}  // namespace nmx::nas
