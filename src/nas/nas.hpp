// Mini-NAS parallel benchmarks (§4.2 / Figure 8).
//
// Each kernel reproduces the *communication pattern and per-class message
// sizes* of its NPB counterpart — halo exchanges, wavefront pencils,
// transpose all-to-alls — moving real bytes through whichever MPI stack the
// cluster was built with. Computation is virtual time (Comm::compute) from a
// per-kernel analytic model calibrated so class C absolute times land in
// Figure 8's range; see DESIGN.md §3 for the substitution argument.
//
// IS is excluded, like the paper (the module lacked datatype support).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"

namespace nmx::nas {

enum class NasClass { S, A, B, C };
char to_char(NasClass cls);
/// Serial-work divisor relative to class C (problem sizes shrink ~4x/class).
double class_scale(NasClass cls);

struct NasConfig {
  NasClass cls = NasClass::S;
  /// Fraction of the full iteration count actually simulated; the timed
  /// loop is steady-state, so the result is extrapolated linearly. 1.0 runs
  /// everything (fine for small classes; reduce for class C benches).
  double iter_fraction = 1.0;
  /// Stamp messages with (sender, step) and verify on receipt.
  bool validate = true;
};

struct NasResult {
  std::string kernel;
  NasClass cls = NasClass::S;
  int procs = 0;
  double seconds = 0;  ///< extrapolated full virtual execution time
};

class NasKernel {
 public:
  virtual ~NasKernel() = default;
  virtual std::string name() const = 0;
  /// BT and SP need a square process count (the paper runs them on 9/36).
  virtual bool requires_square() const { return false; }
  /// Runs on every rank; the rank-0 return value is the result.
  virtual double run(mpi::Comm& c, const NasConfig& cfg) = 0;
};

/// Factory: "EP", "CG", "MG", "FT", "LU", "BT", "SP".
std::unique_ptr<NasKernel> make_kernel(const std::string& name);
/// Kernel names in the paper's plotting order.
std::vector<std::string> all_kernels();

/// Run one kernel on an existing cluster and return the rank-0 result.
NasResult run_nas(mpi::Cluster& cluster, const std::string& kernel, const NasConfig& cfg);

// --- shared helpers for kernel implementations ------------------------------

/// Timed steady-state loop with one warmup iteration; returns the
/// extrapolated full-run seconds.
double timed_loop(mpi::Comm& c, int full_iters, double fraction,
                  const std::function<void(int)>& iter_body);

/// Stamp the head of a message with (sender, step) for validation.
void stamp(std::vector<std::byte>& buf, int sender, int step);
/// Verify a stamp written by `stamp` (no-op for buffers < 16 bytes).
void check_stamp(const std::vector<std::byte>& buf, int sender, int step, bool enabled);

/// Shared-memory-bandwidth contention: when several ranks share a node, the
/// memory-bound fraction of a kernel's compute dilates. `intensity` in [0,1]
/// is how memory-bandwidth-bound the kernel is (SP is the most memory-bound
/// of the NPB kernels — the mechanism behind the across-the-board SP dip at
/// 36 processes on 10 nodes in Figure 8c). Up to two ranks per node run at
/// full speed (the node has two memory controllers).
double membw_dilation(const mpi::Comm& c, double intensity);

}  // namespace nmx::nas
