// Process-grid decompositions used by the NAS kernels.
#pragma once

#include <array>
#include <cmath>

#include "common/assert.hpp"

namespace nmx::nas {

/// Near-square 2D factorization of P: px <= py, px the largest divisor of P
/// not exceeding sqrt(P).
struct Grid2D {
  int px = 1, py = 1;  ///< grid dimensions (px * py == P)
  int x = 0, y = 0;    ///< this rank's coordinates (row-major: rank = y*px + x)

  static Grid2D make(int rank, int procs) {
    Grid2D g;
    int best = 1;
    for (int d = 1; d * d <= procs; ++d) {
      if (procs % d == 0) best = d;
    }
    g.px = best;
    g.py = procs / best;
    g.x = rank % g.px;
    g.y = rank / g.px;
    return g;
  }

  int rank_of(int x, int y) const { return y * px + x; }
  int west() const { return x > 0 ? rank_of(x - 1, y) : -1; }
  int east() const { return x < px - 1 ? rank_of(x + 1, y) : -1; }
  int north() const { return y > 0 ? rank_of(x, y - 1) : -1; }
  int south() const { return y < py - 1 ? rank_of(x, y + 1) : -1; }
};

/// Near-cubic 3D factorization (dims non-increasing divisors of P).
struct Grid3D {
  std::array<int, 3> dims{1, 1, 1};
  std::array<int, 3> coord{0, 0, 0};

  static Grid3D make(int rank, int procs) {
    Grid3D g;
    int rest = procs;
    for (int i = 0; i < 3; ++i) {
      const int target = static_cast<int>(std::round(std::pow(rest, 1.0 / (3 - i))));
      int best = 1;
      for (int d = 1; d <= rest; ++d) {
        if (rest % d == 0 && std::abs(d - target) < std::abs(best - target)) best = d;
      }
      g.dims[static_cast<std::size_t>(i)] = best;
      rest /= best;
    }
    int r = rank;
    for (int i = 0; i < 3; ++i) {
      g.coord[static_cast<std::size_t>(i)] = r % g.dims[static_cast<std::size_t>(i)];
      r /= g.dims[static_cast<std::size_t>(i)];
    }
    return g;
  }

  int rank_of(std::array<int, 3> c) const {
    return (c[2] * dims[1] + c[1]) * dims[0] + c[0];
  }

  /// Neighbor along `dim` in direction `dir` (+1/-1), or -1 at the boundary.
  int neighbor(int dim, int dir) const {
    auto c = coord;
    c[static_cast<std::size_t>(dim)] += dir;
    if (c[static_cast<std::size_t>(dim)] < 0 ||
        c[static_cast<std::size_t>(dim)] >= dims[static_cast<std::size_t>(dim)]) {
      return -1;
    }
    return rank_of(c);
  }
};

}  // namespace nmx::nas
