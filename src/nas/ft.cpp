// FT — 3D FFT: each iteration transposes the (complex) grid with an
// all-to-all of N*16/P^2 bytes per pair, the most bandwidth-hungry pattern
// in the suite. The transpose routes through the collective engine
// (`Comm::alltoall`), so the algorithm — pairwise ring, Bruck, XOR — and
// every edge's rail choice come from the engine's selection knob and cost
// model, exactly like a real MPI's FT would. Buffers are the rank's full
// send/receive slices (block * P each — together the grid plus a scratch
// copy, the same footprint as NPB FT's u1/u2 arrays), so the collective
// moves and validates real bytes end to end.
#include <algorithm>
#include <cstring>

#include "nas/grid.hpp"
#include "nas/nas.hpp"

namespace nmx::nas {

namespace {

struct FtParams {
  std::size_t nx, ny, nz;
  int niter;
  double serial_seconds;
};

FtParams ft_params(NasClass cls) {
  switch (cls) {
    case NasClass::C: return {512, 512, 512, 20, 2200.0};
    case NasClass::B: return {512, 256, 256, 20, 550.0};
    case NasClass::A: return {256, 256, 128, 6, 137.0};
    case NasClass::S: return {64, 64, 64, 6, 0.05};
  }
  NMX_FAIL("bad class");
}

/// Per-block (sender, step) stamp at an arbitrary offset — the vector-based
/// stamp()/check_stamp() helpers only touch a buffer's head, but the
/// transpose validates every one of the P blocks a rank receives.
void stamp_block(std::byte* p, int sender, int step) {
  const double v[2] = {static_cast<double>(sender), static_cast<double>(step)};
  std::memcpy(p, v, sizeof v);
}

void check_block(const std::byte* p, int sender, int step) {
  double v[2];
  std::memcpy(v, p, sizeof v);
  NMX_ASSERT_MSG(v[0] == static_cast<double>(sender) && v[1] == static_cast<double>(step),
                 "FT transpose block stamp mismatch");
}

class FtKernel final : public NasKernel {
 public:
  std::string name() const override { return "FT"; }

  double run(mpi::Comm& c, const NasConfig& cfg) override {
    const FtParams p = ft_params(cfg.cls);
    const std::size_t total = p.nx * p.ny * p.nz;
    const std::size_t complex_bytes = 16;
    const std::size_t procs = static_cast<std::size_t>(c.size());
    const std::size_t block = std::max<std::size_t>(total * complex_bytes / (procs * procs), 16);

    std::vector<std::byte> sendbuf(block * procs), recvbuf(block * procs);
    const double per_iter_compute =
        p.serial_seconds / p.niter / c.size() * membw_dilation(c, 0.15);

    return timed_loop(c, p.niter, cfg.iter_fraction, [&](int iter) {
      // evolve + local FFTs
      c.compute(per_iter_compute);
      // global transpose: one engine collective moves all P blocks
      if (cfg.validate) {
        for (std::size_t b = 0; b < procs; ++b) {
          stamp_block(sendbuf.data() + b * block, c.rank(), iter);
        }
      }
      c.alltoall(sendbuf.data(), block, recvbuf.data());
      if (cfg.validate) {
        for (std::size_t b = 0; b < procs; ++b) {
          check_block(recvbuf.data() + b * block, static_cast<int>(b), iter);
        }
      }
      // checksum reduction
      double local[2] = {1.0 * c.rank(), -1.0 * c.rank()};
      double global[2];
      c.allreduce(local, global, 2, mpi::ReduceOp::Sum);
      if (cfg.validate) {
        double expect = 0;
        for (int r = 0; r < c.size(); ++r) expect += r;
        NMX_ASSERT_MSG(global[0] == expect, "FT checksum reduction mismatch");
      }
    });
  }
};

}  // namespace

std::unique_ptr<NasKernel> make_ft() { return std::make_unique<FtKernel>(); }

}  // namespace nmx::nas
