// FT — 3D FFT: each iteration transposes the (complex) grid with an
// all-to-all of N*16/P^2 bytes per pair, the most bandwidth-hungry pattern
// in the suite. The transpose is done as the pairwise exchange MPI
// implementations use, with rotating partners — message sizes and ordering
// are exact; payload buffers are reused per pair to keep the simulator's
// memory footprint sane (documented in DESIGN.md).
#include <algorithm>

#include "nas/grid.hpp"
#include "nas/nas.hpp"

namespace nmx::nas {

namespace {

struct FtParams {
  std::size_t nx, ny, nz;
  int niter;
  double serial_seconds;
};

FtParams ft_params(NasClass cls) {
  switch (cls) {
    case NasClass::C: return {512, 512, 512, 20, 2200.0};
    case NasClass::B: return {512, 256, 256, 20, 550.0};
    case NasClass::A: return {256, 256, 128, 6, 137.0};
    case NasClass::S: return {64, 64, 64, 6, 0.05};
  }
  NMX_FAIL("bad class");
}

class FtKernel final : public NasKernel {
 public:
  std::string name() const override { return "FT"; }

  double run(mpi::Comm& c, const NasConfig& cfg) override {
    const FtParams p = ft_params(cfg.cls);
    const std::size_t total = p.nx * p.ny * p.nz;
    const std::size_t complex_bytes = 16;
    const std::size_t procs = static_cast<std::size_t>(c.size());
    const std::size_t block = std::max<std::size_t>(total * complex_bytes / (procs * procs), 16);

    std::vector<std::byte> out(block), in(block);
    const double per_iter_compute =
        p.serial_seconds / p.niter / c.size() * membw_dilation(c, 0.15);

    return timed_loop(c, p.niter, cfg.iter_fraction, [&](int iter) {
      // evolve + local FFTs
      c.compute(per_iter_compute);
      // global transpose: pairwise exchange, P-1 rounds
      for (int k = 1; k < c.size(); ++k) {
        const int dst = (c.rank() + k) % c.size();
        const int src = (c.rank() - k + c.size()) % c.size();
        stamp(out, c.rank(), iter);
        c.sendrecv(out.data(), block, dst, 500 + (k & 7), in.data(), in.size(), src,
                   500 + (k & 7));
        check_stamp(in, src, iter, cfg.validate);
      }
      // checksum reduction
      double local[2] = {1.0 * c.rank(), -1.0 * c.rank()};
      double global[2];
      c.allreduce(local, global, 2, mpi::ReduceOp::Sum);
      if (cfg.validate) {
        double expect = 0;
        for (int r = 0; r < c.size(); ++r) expect += r;
        NMX_ASSERT_MSG(global[0] == expect, "FT checksum reduction mismatch");
      }
    });
  }
};

}  // namespace

std::unique_ptr<NasKernel> make_ft() { return std::make_unique<FtKernel>(); }

}  // namespace nmx::nas
