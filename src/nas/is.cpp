// IS — integer bucket sort. The paper excluded it ("IS needs datatypes
// support and MPICH2-NewMadeleine does not handle yet this functionality",
// §4.2); with the datatype engine and alltoallv in place it runs here — the
// first of the paper's future-work items closed out.
//
// Pattern per iteration (NPB 3 IS): local ranking, an allreduce of the
// bucket-size table, then an all-to-all-v redistributing the keys with
// deliberately uneven bucket sizes.
#include <algorithm>

#include "nas/grid.hpp"
#include "nas/nas.hpp"
#include "sim/rng.hpp"

namespace nmx::nas {

namespace {

struct IsParams {
  std::size_t total_keys;
  int niter;
  double serial_seconds;
};

IsParams is_params(NasClass cls) {
  switch (cls) {
    case NasClass::C: return {std::size_t{1} << 27, 10, 280.0};
    case NasClass::B: return {std::size_t{1} << 25, 10, 70.0};
    case NasClass::A: return {std::size_t{1} << 23, 10, 17.5};
    case NasClass::S: return {std::size_t{1} << 16, 10, 0.01};
  }
  NMX_FAIL("bad class");
}

class IsKernel final : public NasKernel {
 public:
  std::string name() const override { return "IS"; }

  double run(mpi::Comm& c, const NasConfig& cfg) override {
    const IsParams p = is_params(cfg.cls);
    const int P = c.size();
    const std::size_t keys_per_rank = p.total_keys / static_cast<std::size_t>(P);
    const std::size_t key_bytes = 4;
    const std::size_t local_bytes = keys_per_rank * key_bytes;

    std::vector<std::byte> sendbuf(local_bytes), recvbuf(2 * local_bytes);
    std::vector<std::size_t> scounts(static_cast<std::size_t>(P)),
        sdispls(static_cast<std::size_t>(P)), rcounts(static_cast<std::size_t>(P)),
        rdispls(static_cast<std::size_t>(P));

    const double per_iter_compute =
        p.serial_seconds / p.niter / P * membw_dilation(c, 0.30);

    return timed_loop(c, p.niter, cfg.iter_fraction, [&](int iter) {
      // local ranking
      c.compute(per_iter_compute);

      // Bucket sizes: uneven but deterministic and consistent across ranks
      // (every rank derives every rank's split with the same generator).
      std::vector<std::vector<std::size_t>> counts(static_cast<std::size_t>(P));
      for (int src = 0; src < P; ++src) {
        sim::Xoshiro256 rng(static_cast<std::uint64_t>(src) * 1315423911u +
                            static_cast<std::uint64_t>(iter + 1));
        auto& row = counts[static_cast<std::size_t>(src)];
        row.resize(static_cast<std::size_t>(P));
        std::size_t left = local_bytes;
        for (int d = 0; d < P - 1; ++d) {
          const std::size_t avg = left / static_cast<std::size_t>(P - d);
          const std::size_t v = std::min(left, avg / 2 + rng.below(std::max<std::uint64_t>(avg, 1)));
          row[static_cast<std::size_t>(d)] = v;
          left -= v;
        }
        row[static_cast<std::size_t>(P - 1)] = left;
      }

      // the bucket-size table is agreed on with an allreduce, as in NPB
      std::vector<long> table(static_cast<std::size_t>(P)), gtable(static_cast<std::size_t>(P));
      for (int d = 0; d < P; ++d) {
        table[static_cast<std::size_t>(d)] =
            static_cast<long>(counts[static_cast<std::size_t>(c.rank())][static_cast<std::size_t>(d)]);
      }
      c.allreduce(table.data(), gtable.data(), table.size(), mpi::ReduceOp::Sum);

      // key redistribution
      std::size_t off = 0;
      for (int d = 0; d < P; ++d) {
        scounts[static_cast<std::size_t>(d)] =
            counts[static_cast<std::size_t>(c.rank())][static_cast<std::size_t>(d)];
        sdispls[static_cast<std::size_t>(d)] = off;
        off += scounts[static_cast<std::size_t>(d)];
      }
      off = 0;
      for (int s = 0; s < P; ++s) {
        rcounts[static_cast<std::size_t>(s)] =
            counts[static_cast<std::size_t>(s)][static_cast<std::size_t>(c.rank())];
        rdispls[static_cast<std::size_t>(s)] = off;
        off += rcounts[static_cast<std::size_t>(s)];
      }
      NMX_ASSERT_MSG(off <= recvbuf.size(), "IS receive buffer overflow");
      c.alltoallv(sendbuf.data(), scounts.data(), sdispls.data(), recvbuf.data(), rcounts.data(),
                  rdispls.data());
    });
  }
};

}  // namespace

std::unique_ptr<NasKernel> make_is() { return std::make_unique<IsKernel>(); }

}  // namespace nmx::nas
