// LU — SSOR solver with wavefront (pipelined) sweeps: for every one of the
// nz grid planes, a rank receives boundary pencils from its north and west
// neighbors, computes, and forwards to south and east. Thousands of
// kilobyte-sized messages per iteration whose latency sits on the critical
// path — "most of the traffic is composed of small messages" (§4.2).
#include <algorithm>

#include "nas/grid.hpp"
#include "nas/nas.hpp"

namespace nmx::nas {

namespace {

struct LuParams {
  std::size_t n;  ///< n^3 grid
  int niter;
  double serial_seconds;
};

LuParams lu_params(NasClass cls) {
  switch (cls) {
    case NasClass::C: return {162, 250, 3700.0};
    case NasClass::B: return {102, 250, 925.0};
    case NasClass::A: return {64, 250, 231.0};
    case NasClass::S: return {12, 50, 0.05};
  }
  NMX_FAIL("bad class");
}

class LuKernel final : public NasKernel {
 public:
  std::string name() const override { return "LU"; }

  double run(mpi::Comm& c, const NasConfig& cfg) override {
    const LuParams p = lu_params(cfg.cls);
    const Grid2D g = Grid2D::make(c.rank(), c.size());
    const std::size_t nz = p.n;
    const std::size_t nx_local = std::max<std::size_t>(p.n / static_cast<std::size_t>(g.px), 1);
    const std::size_t ny_local = std::max<std::size_t>(p.n / static_cast<std::size_t>(g.py), 1);
    // Boundary pencils: 5 flow variables per point.
    const std::size_t ew_bytes = std::max<std::size_t>(ny_local * 5 * sizeof(double), 16);
    const std::size_t ns_bytes = std::max<std::size_t>(nx_local * 5 * sizeof(double), 16);

    std::vector<std::byte> ew_out(ew_bytes), ew_in(ew_bytes);
    std::vector<std::byte> ns_out(ns_bytes), ns_in(ns_bytes);

    const double plane_compute = p.serial_seconds /
                                 (static_cast<double>(p.niter) * 2.0 * static_cast<double>(nz)) /
                                 c.size() * membw_dilation(c, 0.10);

    auto sweep = [&](bool lower, int iter) {
      // Lower sweep flows from the north-west corner; upper from south-east.
      const int recv_ns = lower ? g.north() : g.south();
      const int recv_ew = lower ? g.west() : g.east();
      const int send_ns = lower ? g.south() : g.north();
      const int send_ew = lower ? g.east() : g.west();
      const int tag = lower ? 600 : 601;
      for (std::size_t k = 0; k < nz; ++k) {
        if (recv_ns >= 0) {
          c.recv(ns_in.data(), ns_in.size(), recv_ns, tag);
          check_stamp(ns_in, recv_ns, static_cast<int>(k), cfg.validate);
        }
        if (recv_ew >= 0) c.recv(ew_in.data(), ew_in.size(), recv_ew, tag);
        c.compute(plane_compute);
        if (send_ns >= 0) {
          stamp(ns_out, c.rank(), static_cast<int>(k));
          c.send(ns_out.data(), ns_bytes, send_ns, tag);
        }
        if (send_ew >= 0) {
          stamp(ew_out, c.rank(), static_cast<int>(k));
          c.send(ew_out.data(), ew_bytes, send_ew, tag);
        }
      }
      (void)iter;
    };

    const double t = timed_loop(c, p.niter, cfg.iter_fraction, [&](int iter) {
      sweep(/*lower=*/true, iter);
      sweep(/*lower=*/false, iter);
    });
    // Residual norms at the end, as in NPB.
    double r = 1.0;
    double gr = c.allreduce_one(r, mpi::ReduceOp::Sum);
    if (cfg.validate) NMX_ASSERT_MSG(gr == c.size(), "LU residual reduction mismatch");
    return t;
  }
};

}  // namespace

std::unique_ptr<NasKernel> make_lu() { return std::make_unique<LuKernel>(); }

}  // namespace nmx::nas
