// CG — conjugate gradient with an irregular sparse matrix, 2D-decomposed as
// in NPB: every matrix-vector product reduces partial results across the
// processor row (log2 steps of n/npcols doubles) and exchanges the result
// with a transpose partner. Latency- and medium-message-sensitive.
#include <cmath>

#include "nas/grid.hpp"
#include "nas/nas.hpp"

namespace nmx::nas {

namespace {

struct CgParams {
  std::size_t n;
  int niter;
  int matvecs_per_iter;
  double serial_seconds;
};

CgParams cg_params(NasClass cls) {
  switch (cls) {
    case NasClass::C: return {150000, 75, 26, 2500.0};
    case NasClass::B: return {75000, 75, 26, 625.0};
    case NasClass::A: return {14000, 15, 26, 156.0};
    case NasClass::S: return {1400, 15, 26, 0.125};
  }
  NMX_FAIL("bad class");
}

class CgKernel final : public NasKernel {
 public:
  std::string name() const override { return "CG"; }

  double run(mpi::Comm& c, const NasConfig& cfg) override {
    const CgParams p = cg_params(cfg.cls);
    const Grid2D g = Grid2D::make(c.rank(), c.size());
    const int row_size = g.px;  // ranks sharing a processor row

    // Row-reduction exchange: n/npcols doubles per step.
    const std::size_t seg_bytes = p.n / static_cast<std::size_t>(row_size) * sizeof(double);
    std::vector<std::byte> seg_out(std::max<std::size_t>(seg_bytes, 16));
    std::vector<std::byte> seg_in(seg_out.size());
    // Transpose exchange: the rank's own share of the vector.
    const std::size_t tr_bytes =
        std::max<std::size_t>(p.n * sizeof(double) / static_cast<std::size_t>(c.size()), 16);
    std::vector<std::byte> tr_out(tr_bytes), tr_in(tr_bytes);

    const double matvec_compute = p.serial_seconds /
                                  (static_cast<double>(p.niter) * p.matvecs_per_iter * c.size()) *
                                  membw_dilation(c, 0.15);
    // Transpose exchange partner: an involution (partner(partner(r)) == r)
    // so the pairwise sendrecv cannot deadlock; ranks that map to themselves
    // keep their segment locally.
    const int transpose_partner = (c.size() - c.rank()) % c.size();

    const bool row_pow2 = (row_size & (row_size - 1)) == 0;

    return timed_loop(c, p.niter, cfg.iter_fraction, [&](int iter) {
      for (int mv = 0; mv < p.matvecs_per_iter; ++mv) {
        c.compute(matvec_compute);
        // Reduce partial products across the processor row.
        if (row_pow2) {
          for (int bit = 1; bit < row_size; bit <<= 1) {
            const int partner = g.rank_of(g.x ^ bit, g.y);
            stamp(seg_out, c.rank(), mv);
            c.sendrecv(seg_out.data(), seg_bytes, partner, 300 + mv % 8, seg_in.data(),
                       seg_in.size(), partner, 300 + mv % 8);
            check_stamp(seg_in, partner, mv, cfg.validate);
          }
        } else {
          for (int s = 1; s < row_size; ++s) {
            const int to = g.rank_of((g.x + s) % row_size, g.y);
            const int from = g.rank_of((g.x - s + row_size) % row_size, g.y);
            c.sendrecv(seg_out.data(), seg_bytes, to, 300 + mv % 8, seg_in.data(), seg_in.size(),
                       from, 300 + mv % 8);
          }
        }
        // Transpose exchange of the reduced segment.
        if (transpose_partner != c.rank()) {
          stamp(tr_out, c.rank(), mv);
          c.sendrecv(tr_out.data(), tr_bytes, transpose_partner, 350, tr_in.data(), tr_in.size(),
                     transpose_partner, 350);
          check_stamp(tr_in, transpose_partner, mv, cfg.validate);
        }
      }
      // Per-iteration scalar reductions (rho, residual norm).
      double rho = 1.0 + iter;
      double grho = c.allreduce_one(rho, mpi::ReduceOp::Sum);
      if (cfg.validate) {
        NMX_ASSERT_MSG(grho == (1.0 + iter) * c.size(), "CG rho reduction mismatch");
      }
    });
  }
};

}  // namespace

std::unique_ptr<NasKernel> make_cg() { return std::make_unique<CgKernel>(); }

}  // namespace nmx::nas
