// CG — conjugate gradient with an irregular sparse matrix, 2D-decomposed as
// in NPB: every matrix-vector product reduces partial results across the
// processor row (n/npcols doubles) and exchanges the result with a transpose
// partner. Latency- and medium-message-sensitive.
//
// The row reduction routes through the collective engine: each processor row
// is a sub-communicator (Comm::split) and the partial products fold with a
// real `allreduce`, so the reduction's tree shape and every edge's rail
// choice come from the engine's algorithm knob and cost model. The engine
// handles non-power-of-two rows too, so the old shifted-ring fallback is
// gone. The transpose stays a pairwise sendrecv — it is a point-to-point
// exchange, not a collective.
#include <cmath>

#include "nas/grid.hpp"
#include "nas/nas.hpp"

namespace nmx::nas {

namespace {

struct CgParams {
  std::size_t n;
  int niter;
  int matvecs_per_iter;
  double serial_seconds;
};

CgParams cg_params(NasClass cls) {
  switch (cls) {
    case NasClass::C: return {150000, 75, 26, 2500.0};
    case NasClass::B: return {75000, 75, 26, 625.0};
    case NasClass::A: return {14000, 15, 26, 156.0};
    case NasClass::S: return {1400, 15, 26, 0.125};
  }
  NMX_FAIL("bad class");
}

class CgKernel final : public NasKernel {
 public:
  std::string name() const override { return "CG"; }

  double run(mpi::Comm& c, const NasConfig& cfg) override {
    const CgParams p = cg_params(cfg.cls);
    const Grid2D g = Grid2D::make(c.rank(), c.size());
    const int row_size = g.px;  // ranks sharing a processor row

    // One sub-communicator per processor row; the engine's collectives run
    // inside it with the parent's algorithm configuration.
    mpi::Comm row = c.split(g.y, g.x);

    // Row-reduction: n/npcols doubles of partial products per matvec.
    const std::size_t seg_count =
        std::max<std::size_t>(p.n / static_cast<std::size_t>(row_size), 2);
    std::vector<double> seg(seg_count);
    // Transpose exchange: the rank's own share of the vector.
    const std::size_t tr_bytes =
        std::max<std::size_t>(p.n * sizeof(double) / static_cast<std::size_t>(c.size()), 16);
    std::vector<std::byte> tr_out(tr_bytes), tr_in(tr_bytes);

    const double matvec_compute = p.serial_seconds /
                                  (static_cast<double>(p.niter) * p.matvecs_per_iter * c.size()) *
                                  membw_dilation(c, 0.15);
    // Transpose exchange partner: an involution (partner(partner(r)) == r)
    // so the pairwise sendrecv cannot deadlock; ranks that map to themselves
    // keep their segment locally.
    const int transpose_partner = (c.size() - c.rank()) % c.size();

    const double row_expect =
        static_cast<double>(row_size) * (row_size + 1) / 2;

    return timed_loop(c, p.niter, cfg.iter_fraction, [&](int iter) {
      for (int mv = 0; mv < p.matvecs_per_iter; ++mv) {
        c.compute(matvec_compute);
        // Reduce partial products across the processor row.
        seg.assign(seg_count, 1.0 + g.x);
        if (row_size > 1) {
          row.allreduce(seg.data(), seg.data(), seg_count, mpi::ReduceOp::Sum);
        }
        if (cfg.validate) {
          NMX_ASSERT_MSG(row_size == 1 || seg.front() == row_expect,
                         "CG row reduction mismatch");
          NMX_ASSERT_MSG(row_size == 1 || seg.back() == row_expect,
                         "CG row reduction mismatch");
        }
        // Transpose exchange of the reduced segment.
        if (transpose_partner != c.rank()) {
          stamp(tr_out, c.rank(), mv);
          c.sendrecv(tr_out.data(), tr_bytes, transpose_partner, 350, tr_in.data(), tr_in.size(),
                     transpose_partner, 350);
          check_stamp(tr_in, transpose_partner, mv, cfg.validate);
        }
      }
      // Per-iteration scalar reductions (rho, residual norm).
      double rho = 1.0 + iter;
      double grho = c.allreduce_one(rho, mpi::ReduceOp::Sum);
      if (cfg.validate) {
        NMX_ASSERT_MSG(grho == (1.0 + iter) * c.size(), "CG rho reduction mismatch");
      }
    });
  }
};

}  // namespace

std::unique_ptr<NasKernel> make_cg() { return std::make_unique<CgKernel>(); }

}  // namespace nmx::nas
