// The MPICH2 (ADI3) request object, with the field the paper adds: a pointer
// to the corresponding NewMadeleine request ("we added a new field to the
// Nemesis-specific portion of the MPICH2 request which points to the
// corresponding NewMadeleine request", §3.1.1).
#pragma once

#include <cstddef>
#include <list>

#include "mpi/transport.hpp"
#include "nmad/types.hpp"
#include "obs/recorder.hpp"

namespace nmx::ch3 {

struct MpidRequest : mpi::TxRequest {
  enum class Kind { Send, Recv };

  Kind kind = Kind::Send;
  int peer = -1;  ///< recv: requested source (may be mpi::ANY_SOURCE)
  int tag = 0;    ///< requested tag (may be mpi::ANY_TAG)
  int context = 0;
  std::byte* rbuf = nullptr;
  std::size_t len = 0;  ///< recv: buffer capacity; send: message size

  /// §3.1.1: the NewMadeleine request backing this ADI request (bypass path).
  nmad::Request* nmad_req = nullptr;

  // The message-lifecycle span lives on mpi::TxRequest (`span`), so the MPI
  // layer can attribute waits to the request that blocked them.

  /// Completion reached through the any-source lists — charge the extra
  /// 300 ns the paper measures (§4.1.1).
  bool via_any_source = false;

  /// Bookkeeping for the CH3 posted-receive queue (shared-memory matching).
  bool in_posted_queue = false;
  std::list<MpidRequest*>::iterator posted_it{};

  std::list<MpidRequest>::iterator self{};
};

}  // namespace nmx::ch3
