#include "ch3/process.hpp"

#include <cstring>
#include <utility>

namespace nmx::ch3 {

namespace {
// Reserved context ids for the legacy netmod channel (never visible to MPI).
constexpr int kLegacyCtlContext = 0x7ffffff0;
constexpr int kLegacyDataContext = 0x7ffffff1;
// Loopback (self) delivery latency: a queue push and pop in one process.
constexpr Time kSelfLatency = 0.1_us;

std::vector<std::byte> serialize_ctl(const ShmHdr& hdr, const void* payload, std::size_t len) {
  std::vector<std::byte> buf(sizeof(ShmHdr) + len);
  std::memcpy(buf.data(), &hdr, sizeof(ShmHdr));
  if (len > 0) std::memcpy(buf.data() + sizeof(ShmHdr), payload, len);
  return buf;
}
}  // namespace

Ch3Process::Ch3Process(sim::Engine& eng, net::Fabric& fabric, net::ProcRouter& router,
                       nemesis::ShmNode* shm, int rank, int local_index, Config cfg)
    : eng_(eng), fabric_(fabric), shm_(shm), rank_(rank), local_index_(local_index), cfg_(cfg) {
  cfg_.nmad.pioman_sync = cfg_.pioman;
  // §4.1.1: the CH3/netmod glue adds ~300 ns on top of NewMadeleine's own
  // generic-layer cost (1.8µs -> 2.1µs one-way).
  cfg_.nmad.sw_send += calib::kCh3SwSend;
  cfg_.nmad.sw_recv += calib::kCh3SwRecv;
  core_ = std::make_unique<nmad::Core>(eng, fabric, router, rank, cfg_.nmad);
  core_->set_on_complete([this](nmad::Request& r) { run_nmad_completion(r); });
  core_->set_on_unexpected([this](const nmad::ProbeInfo& info) {
    if (cfg_.bypass) {
      as_probe_all();
    } else {
      legacy_on_unexpected(info);
    }
  });

  // §3.1.2: virtual connections with per-destination overridable send paths.
  const net::Topology& topo = fabric.topology();
  vcs_.resize(static_cast<std::size_t>(topo.num_procs()));
  for (int p = 0; p < topo.num_procs(); ++p) {
    VirtualConnection& vc = vcs_[static_cast<std::size_t>(p)];
    vc.peer = p;
    vc.same_node = topo.same_node(rank_, p);
    if (p == rank_) {
      vc.isend_fn = [this](MpidRequest* r, const void* b, std::size_t l) { send_self(r, b, l); };
    } else if (vc.same_node) {
      vc.isend_fn = [this](MpidRequest* r, const void* b, std::size_t l) { send_shm(r, b, l); };
    } else if (cfg_.bypass) {
      // The paper's modification: MPID_Send on a remote VC goes straight to
      // nm_sr_isend, skipping Nemesis and the CH3 protocols.
      vc.isend_fn = [this](MpidRequest* r, const void* b, std::size_t l) {
        send_nmad_direct(r, b, l);
      };
    } else {
      vc.isend_fn = [this](MpidRequest* r, const void* b, std::size_t l) { send_legacy(r, b, l); };
    }
  }

  if (shm_) {
    shm_->set_deliver(local_index_,
                      [this](nemesis::Message&& m) { handle_shm_message(std::move(m)); });
    shm_->set_activity_hook(local_index_, [this] {
      if (in_progress()) {
        shm_->poll(local_index_);
      } else if (pioman_) {
        pioman_->notify();
      }
      // else: cells wait for the next MPI call — no progress without PIOMan.
    });
  }

  if (cfg_.pioman) {
    // §3.3.1: one polling authority for both intra- and inter-node traffic.
    pioman::ManagerConfig pc;
    pc.rank = rank_;
    pioman_ = std::make_unique<pioman::Manager>(eng_, pc);
    pioman_->submit("nmad-progress", [this] {
      core_->service();
      if (cfg_.bypass) as_probe_all();
      return core_->has_gated_work();
    });
    if (shm_) {
      // §3.3.2: the shared-memory mailbox counter PIOMan watches.
      pioman_->submit("shm-mailbox", [this, last = std::uint64_t(0)]() mutable {
        const std::uint64_t mb = shm_->mailbox(local_index_);
        if (mb != last) {
          last = mb;
          shm_->poll(local_index_);
        }
        return false;
      });
    }
    core_->set_async_notifier([this] { pioman_->notify(); });
  }
}

Ch3Process::~Ch3Process() = default;

int Ch3Process::local_of(int rank) const {
  const net::Topology& topo = fabric_.topology();
  const int node = topo.node_of(rank);
  int local = 0;
  for (int p = 0; p < rank; ++p) {
    if (topo.node_of(p) == node) ++local;
  }
  return local;
}

// ---------------------------------------------------------------------------
// pools and nmad plumbing
// ---------------------------------------------------------------------------

MpidRequest* Ch3Process::new_request(MpidRequest::Kind kind) {
  requests_.emplace_back();
  auto it = std::prev(requests_.end());
  it->self = it;
  it->kind = kind;
  return &*it;
}

Ch3Process::NmCtx* Ch3Process::new_ctx(std::function<void(nmad::Request&)> fn) {
  nm_ctxs_.emplace_back();
  auto it = std::prev(nm_ctxs_.end());
  it->self = it;
  it->fn = std::move(fn);
  return &*it;
}

void Ch3Process::run_nmad_completion(nmad::Request& r) {
  auto* ctx = static_cast<NmCtx*>(r.user_ctx);
  NMX_ASSERT_MSG(ctx != nullptr, "nmad request without completion context");
  auto fn = std::move(ctx->fn);
  nm_ctxs_.erase(ctx->self);
  fn(r);
}

nmad::Request* Ch3Process::nm_isend(int dst, nmad::Tag tag, const void* buf, std::size_t len,
                                    std::function<void(nmad::Request&)> done, obs::SpanId span) {
  return core_->isend(dst, tag, buf, len, new_ctx(std::move(done)), span);
}

nmad::Request* Ch3Process::nm_irecv(int src, nmad::Tag tag, void* buf, std::size_t len,
                                    std::function<void(nmad::Request&)> done, obs::SpanId span) {
  return core_->irecv(src, tag, buf, len, new_ctx(std::move(done)), span);
}

// ---------------------------------------------------------------------------
// completion helpers
// ---------------------------------------------------------------------------

void Ch3Process::finish(MpidRequest* req) {
  if (req->via_any_source) {
    // §4.1.1: the any-source management adds a constant ~300 ns.
    eng_.schedule_in_checked(calib::kAnySourceOverhead, [req] { req->complete_and_wake(); });
  } else {
    req->complete_and_wake();
  }
}

void Ch3Process::complete_recv(MpidRequest* req, int src, int tag, std::size_t count,
                               obs::SpanId sender_span) {
  req->status.source = src;
  req->status.tag = tag;
  req->status.count = count;
  if (obs::Recorder* rec = eng_.recorder()) {
    // Match link for the critical-path analyzer: receiver's span -> the
    // sender's span that satisfied it (0 when the path cannot know it).
    if (req->span != 0 && sender_span != 0) {
      rec->link(eng_.now(), rank_, obs::Cat::MsgMatch, req->span, count,
                static_cast<std::int64_t>(sender_span));
    }
    rec->end(eng_.now(), rank_, obs::Cat::MsgRecv, req->span, count, src);
    req->span = 0;
  }
  finish(req);
}

void Ch3Process::complete_send(MpidRequest* req) {
  req->status.count = req->len;
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->end(eng_.now(), rank_, obs::Cat::MsgSend, req->span, req->len, req->peer);
    req->span = 0;
  }
  finish(req);
}

// ---------------------------------------------------------------------------
// CH3 queue pair
// ---------------------------------------------------------------------------

MpidRequest* Ch3Process::match_posted(int src, int tag, int context) {
  for (MpidRequest* r : posted_queue_) {
    if (r->context != context) continue;
    if (r->peer != mpi::ANY_SOURCE && r->peer != src) continue;
    if (r->tag != mpi::ANY_TAG && r->tag != tag) continue;
    return r;
  }
  return nullptr;
}

void Ch3Process::push_posted(MpidRequest* req) {
  posted_queue_.push_back(req);
  req->posted_it = std::prev(posted_queue_.end());
  req->in_posted_queue = true;
}

void Ch3Process::remove_posted(MpidRequest* req) {
  if (!req->in_posted_queue) return;
  posted_queue_.erase(req->posted_it);
  req->in_posted_queue = false;
}

bool Ch3Process::match_unexpected(MpidRequest* req) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (it->context != req->context) continue;
    if (req->peer != mpi::ANY_SOURCE && req->peer != it->src) continue;
    if (req->tag != mpi::ANY_TAG && req->tag != it->tag) continue;
    UnexMsg msg = std::move(*it);
    unexpected_.erase(it);
    if (obs::Recorder* rec = eng_.recorder()) {
      rec->metrics().gauge("ch3.unexpected.depth").set(static_cast<double>(unexpected_.size()));
    }
    if (msg.kind == UnexMsg::Kind::Eager) {
      NMX_ASSERT_MSG(msg.payload.size() <= req->len, "message overflows receive buffer");
      if (!msg.payload.empty()) {
        std::memcpy(req->rbuf, msg.payload.data(), msg.payload.size());
      }
      complete_recv(req, msg.src, msg.tag, msg.payload.size(), msg.span);
    } else if (msg.origin == UnexMsg::Origin::Shm) {
      NMX_ASSERT(msg.len <= req->len);
      shm_rdv_in_.emplace(std::make_pair(msg.src, msg.rdv_id), req);
      ShmHdr cts;
      cts.kind = ShmHdr::Kind::Cts;
      cts.src_rank = rank_;
      cts.tag = msg.tag;
      cts.context = msg.context;
      cts.rdv_id = msg.rdv_id;
      nemesis::Message m;
      m.src_local = local_index_;
      m.header = cts;
      shm_->send(local_of(msg.src), std::move(m));
    } else {
      NMX_ASSERT(msg.origin == UnexMsg::Origin::LegacyNet);
      legacy_grant(msg.src, msg.tag, msg.rdv_id, req);
    }
    return true;
  }
  return false;
}

void Ch3Process::deliver_local(UnexMsg msg) {
  MpidRequest* req = match_posted(msg.src, msg.tag, msg.context);
  if (req == nullptr) {
    if (obs::Recorder* rec = eng_.recorder()) {
      rec->instant(eng_.now(), rank_, obs::Cat::Unexpected, msg.len, msg.src);
      rec->metrics()
          .gauge("ch3.unexpected.depth")
          .set(static_cast<double>(unexpected_.size() + 1));
    }
    unexpected_.push_back(std::move(msg));
    return;
  }
  remove_posted(req);
  if (req->peer == mpi::ANY_SOURCE && cfg_.bypass && !as_lists_.empty()) {
    // §3.2.2: an intra-node match removes the any-source entry and releases
    // the requests queued behind it.
    as_lists_.resolve(req, [this](MpidRequest* r) { release_deferred(r); });
  }
  if (msg.kind == UnexMsg::Kind::Eager) {
    NMX_ASSERT_MSG(msg.payload.size() <= req->len, "message overflows receive buffer");
    if (!msg.payload.empty()) std::memcpy(req->rbuf, msg.payload.data(), msg.payload.size());
    complete_recv(req, msg.src, msg.tag, msg.payload.size(), msg.span);
  } else if (msg.origin == UnexMsg::Origin::Shm) {
    NMX_ASSERT(msg.len <= req->len);
    shm_rdv_in_.emplace(std::make_pair(msg.src, msg.rdv_id), req);
    ShmHdr cts;
    cts.kind = ShmHdr::Kind::Cts;
    cts.src_rank = rank_;
    cts.tag = msg.tag;
    cts.context = msg.context;
    cts.rdv_id = msg.rdv_id;
    nemesis::Message m;
    m.src_local = local_index_;
    m.header = cts;
    shm_->send(local_of(msg.src), std::move(m));
  } else {
    legacy_grant(msg.src, msg.tag, msg.rdv_id, req);
  }
}

// ---------------------------------------------------------------------------
// Transport: isend / irecv
// ---------------------------------------------------------------------------

mpi::TxRequest* Ch3Process::isend(int dst, int tag, int context, const void* buf,
                                  std::size_t len) {
  NMX_ASSERT(dst >= 0 && dst < static_cast<int>(vcs_.size()));
  NMX_ASSERT(tag >= 0 && context >= 0 && context < kLegacyCtlContext);
  MpidRequest* req = new_request(MpidRequest::Kind::Send);
  req->peer = dst;
  req->tag = tag;
  req->context = context;
  req->len = len;
  if (obs::Recorder* rec = eng_.recorder()) {
    req->span = rec->begin(eng_.now(), rank_, obs::Cat::MsgSend, len, dst);
  }
  vcs_[static_cast<std::size_t>(dst)].isend_fn(req, buf, len);
  return req;
}

mpi::TxRequest* Ch3Process::irecv(int src, int tag, int context, void* buf, std::size_t len) {
  MpidRequest* req = new_request(MpidRequest::Kind::Recv);
  req->peer = src;
  req->tag = tag;
  req->context = context;
  req->rbuf = static_cast<std::byte*>(buf);
  req->len = len;
  if (obs::Recorder* rec = eng_.recorder()) {
    req->span = rec->begin(eng_.now(), rank_, obs::Cat::MsgRecv, len, src);
  }

  if (src == mpi::ANY_SOURCE) {
    if (match_unexpected(req)) return req;
    push_posted(req);  // eligible for shared-memory / self matching
    if (cfg_.bypass) {
      as_lists_.add_any_source(req);
      as_probe_all();  // the message may already sit in nmad's buffers
    }
    return req;
  }

  const bool ch3_matched =
      (src == rank_) || vcs_[static_cast<std::size_t>(src)].same_node || !cfg_.bypass;
  if (ch3_matched) {
    if (match_unexpected(req)) return req;
    push_posted(req);
    return req;
  }

  if (tag == mpi::ANY_TAG) {
    // Known remote source but wildcard tag: NewMadeleine's exact matching
    // cannot serve it — park it in the wildcard lists like an any-source
    // request and create the NewMadeleine request once a message is known
    // to be there.
    if (match_unexpected(req)) return req;
    as_lists_.add_any_source(req);
    as_probe_all();
    return req;
  }

  // Known remote source on the bypass path: NewMadeleine does the matching —
  // unless an earlier wildcard request forces ordering (§3.2.2).
  if (as_lists_.blocks(context, tag)) {
    as_lists_.defer(req);
    return req;
  }
  post_remote_recv(req);
  return req;
}

void Ch3Process::post_remote_recv(MpidRequest* req) {
  req->nmad_req = nm_irecv(
      req->peer, pack_tag(req->context, req->tag), req->rbuf, req->len,
      [this, req](nmad::Request& nr) {
        complete_recv(req, nr.peer, unpack_user_tag(nr.tag), nr.received, nr.peer_span);
      },
      req->span);
}

void Ch3Process::release_deferred(MpidRequest* req) {
  if (as_lists_.blocks(req->context, req->tag)) {
    as_lists_.defer(req);  // still blocked (e.g. a wildcard-tag any-source)
    return;
  }
  post_remote_recv(req);
}

void Ch3Process::as_probe_all() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (MpidRequest* head : as_lists_.heads()) {
      const std::optional<int> src_filter =
          head->peer == mpi::ANY_SOURCE ? std::nullopt : std::optional<int>(head->peer);
      auto found = core_->probe(src_filter, selector_for(head->context, head->tag));
      if (found) {
        bind_any_source(head, *found);
        progressed = true;
        break;  // heads changed — restart the scan
      }
    }
  }
}

void Ch3Process::bind_any_source(MpidRequest* req, const nmad::ProbeInfo& found) {
  // The message sits in NewMadeleine's buffers: create the NewMadeleine
  // request dynamically; "it will be completed shortly after its creation".
  remove_posted(req);  // no longer eligible for shared-memory matching
  req->via_any_source = true;
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->metrics().counter("ch3.anysource.binds").add(1);
  }
  req->nmad_req = nm_irecv(
      found.src, found.tag, req->rbuf, req->len,
      [this, req](nmad::Request& nr) {
        complete_recv(req, nr.peer, unpack_user_tag(nr.tag), nr.received, nr.peer_span);
      },
      req->span);
  // Now remove the entry and release the deferred requests behind it. Done
  // after binding so none of them can steal the probed message.
  as_lists_.resolve(req, [this](MpidRequest* r) { release_deferred(r); });
}

void Ch3Process::release(mpi::TxRequest* r) {
  auto* req = static_cast<MpidRequest*>(r);
  NMX_ASSERT_MSG(req->completed, "releasing an incomplete request");
  if (req->nmad_req != nullptr) {
    NMX_ASSERT(req->nmad_req->completed);
    core_->release(req->nmad_req);
  }
  requests_.erase(req->self);
}

// ---------------------------------------------------------------------------
// send paths
// ---------------------------------------------------------------------------

void Ch3Process::send_self(MpidRequest* req, const void* buf, std::size_t len) {
  UnexMsg msg;
  msg.origin = UnexMsg::Origin::Self;
  msg.kind = UnexMsg::Kind::Eager;
  msg.src = rank_;
  msg.tag = req->tag;
  msg.context = req->context;
  msg.len = len;
  msg.span = req->span;
  msg.payload.resize(len);
  if (len > 0) std::memcpy(msg.payload.data(), buf, len);
  eng_.schedule_in_checked(kSelfLatency, [this, msg = std::move(msg)]() mutable {
    deliver_local(std::move(msg));
  });
  complete_send(req);  // buffered
}

void Ch3Process::send_shm(MpidRequest* req, const void* buf, std::size_t len) {
  NMX_ASSERT_MSG(shm_ != nullptr, "same-node send without a shared-memory region");
  ShmHdr hdr;
  hdr.src_rank = rank_;
  hdr.tag = req->tag;
  hdr.context = req->context;
  hdr.len = len;
  hdr.span = req->span;
  if (len <= cfg_.shm_rdv_threshold) {
    hdr.kind = ShmHdr::Kind::Eager;
    nemesis::Message m;
    m.src_local = local_index_;
    m.header = hdr;
    m.payload.resize(len);
    if (len > 0) std::memcpy(m.payload.data(), buf, len);
    shm_->send(local_of(req->peer), std::move(m));
    complete_send(req);  // copied into cells — buffer reusable
  } else {
    // CH3 shared-memory rendezvous (the left half of Figure 2).
    hdr.kind = ShmHdr::Kind::Rts;
    hdr.rdv_id = next_shm_rdv_++;
    ShmRdvOut out;
    out.req = req;
    out.dst = req->peer;
    out.payload.resize(len);
    std::memcpy(out.payload.data(), buf, len);
    shm_rdv_out_.emplace(hdr.rdv_id, std::move(out));
    nemesis::Message m;
    m.src_local = local_index_;
    m.header = hdr;
    shm_->send(local_of(req->peer), std::move(m));
  }
}

void Ch3Process::send_nmad_direct(MpidRequest* req, const void* buf, std::size_t len) {
  req->nmad_req = nm_isend(
      req->peer, pack_tag(req->context, req->tag), buf, len,
      [this, req](nmad::Request&) { complete_send(req); }, req->span);
}

// ---------------------------------------------------------------------------
// shared-memory channel
// ---------------------------------------------------------------------------

void Ch3Process::handle_shm_message(nemesis::Message&& m) {
  ShmHdr hdr = std::any_cast<ShmHdr>(m.header);
  if (cfg_.pioman) {
    // §4.1.2: the thread-safe progression machinery costs ~450 ns per
    // shared-memory message.
    eng_.schedule_in_checked(calib::kPiomanShmOverhead,
                     [this, hdr, payload = std::move(m.payload), src = m.src_local]() mutable {
                       process_shm(hdr, std::move(payload), src);
                     });
  } else {
    process_shm(hdr, std::move(m.payload), m.src_local);
  }
}

void Ch3Process::process_shm(ShmHdr hdr, std::vector<std::byte> payload, int /*src_local*/) {
  switch (hdr.kind) {
    case ShmHdr::Kind::Eager: {
      UnexMsg msg;
      msg.origin = UnexMsg::Origin::Shm;
      msg.kind = UnexMsg::Kind::Eager;
      msg.src = hdr.src_rank;
      msg.tag = hdr.tag;
      msg.context = hdr.context;
      msg.len = payload.size();
      msg.span = hdr.span;
      msg.payload = std::move(payload);
      deliver_local(std::move(msg));
      break;
    }
    case ShmHdr::Kind::Rts: {
      UnexMsg msg;
      msg.origin = UnexMsg::Origin::Shm;
      msg.kind = UnexMsg::Kind::Rdv;
      msg.src = hdr.src_rank;
      msg.tag = hdr.tag;
      msg.context = hdr.context;
      msg.rdv_id = hdr.rdv_id;
      msg.len = hdr.len;
      msg.span = hdr.span;
      deliver_local(std::move(msg));
      break;
    }
    case ShmHdr::Kind::Cts: {
      auto it = shm_rdv_out_.find(hdr.rdv_id);
      NMX_ASSERT_MSG(it != shm_rdv_out_.end(), "shm CTS for unknown rendezvous");
      ShmRdvOut out = std::move(it->second);
      shm_rdv_out_.erase(it);
      ShmHdr data;
      data.kind = ShmHdr::Kind::Data;
      data.src_rank = rank_;
      data.tag = out.req->tag;
      data.context = out.req->context;
      data.rdv_id = hdr.rdv_id;
      data.len = out.payload.size();
      data.span = out.req->span;
      nemesis::Message m;
      m.src_local = local_index_;
      m.header = data;
      m.payload = std::move(out.payload);
      shm_->send(local_of(out.dst), std::move(m));
      complete_send(out.req);
      break;
    }
    case ShmHdr::Kind::Data: {
      auto it = shm_rdv_in_.find({hdr.src_rank, hdr.rdv_id});
      NMX_ASSERT_MSG(it != shm_rdv_in_.end(), "shm DATA without matching grant");
      MpidRequest* req = it->second;
      shm_rdv_in_.erase(it);
      NMX_ASSERT(payload.size() <= req->len);
      if (!payload.empty()) std::memcpy(req->rbuf, payload.data(), payload.size());
      complete_recv(req, hdr.src_rank, hdr.tag, payload.size(), hdr.span);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// legacy netmod path (bypass = false): CH3 protocols over NewMadeleine used
// as a dumb channel — copies through fixed cells, nested rendezvous.
// ---------------------------------------------------------------------------

void Ch3Process::send_legacy(MpidRequest* req, const void* buf, std::size_t len) {
  ShmHdr hdr;
  hdr.src_rank = rank_;
  hdr.tag = req->tag;
  hdr.context = req->context;
  hdr.len = len;
  hdr.span = req->span;
  if (len <= cfg_.legacy_cell_payload) {
    hdr.kind = ShmHdr::Kind::Eager;
    auto cell = serialize_ctl(hdr, buf, len);
    nm_isend(req->peer, pack_tag(kLegacyCtlContext, 0), cell.data(), cell.size(),
             [this, req](nmad::Request& nr) {
               complete_send(req);
               eng_.schedule_checked(eng_.now(), [this, pr = &nr] { core_->release(pr); });
             });
  } else {
    // CH3 network rendezvous — whose DATA message will trigger
    // NewMadeleine's own internal rendezvous: the nested handshake of Fig 2.
    hdr.kind = ShmHdr::Kind::Rts;
    hdr.rdv_id = next_net_rdv_++;
    net_rdv_out_.emplace(hdr.rdv_id, std::make_pair(req, buf));
    auto cell = serialize_ctl(hdr, nullptr, 0);
    nm_isend(req->peer, pack_tag(kLegacyCtlContext, 0), cell.data(), cell.size(),
             [this](nmad::Request& nr) {
               eng_.schedule_checked(eng_.now(), [this, pr = &nr] { core_->release(pr); });
             });
  }
}

void Ch3Process::legacy_on_unexpected(const nmad::ProbeInfo& info) {
  if (unpack_context(info.tag) == kLegacyCtlContext) legacy_fetch_ctl(info);
  // Data-context messages are never unexpected: the receive is posted
  // before the CH3 CTS that triggers them.
}

void Ch3Process::legacy_fetch_ctl(const nmad::ProbeInfo& info) {
  // Dequeue the cell: receive it into a bounce buffer, then parse. The
  // extra copy is the §2.1.3 "unnecessary copies in and from the queue
  // cells" penalty of the non-bypassed design.
  auto cell = std::make_shared<std::vector<std::byte>>(sizeof(ShmHdr) + cfg_.legacy_cell_payload);
  const int src = info.src;
  nm_irecv(src, info.tag, cell->data(), cell->size(),
           [this, cell, src](nmad::Request& nr) {
             const std::size_t got = nr.received;
             eng_.schedule_in_checked(calib::copy_cost(got), [this, cell, src, got] {
               legacy_process_ctl(src, std::move(*cell), got);
             });
             eng_.schedule_checked(eng_.now(), [this, pr = &nr] { core_->release(pr); });
           });
}

void Ch3Process::legacy_process_ctl(int src, std::vector<std::byte> cell, std::size_t len) {
  NMX_ASSERT(len >= sizeof(ShmHdr));
  ShmHdr hdr;
  std::memcpy(&hdr, cell.data(), sizeof(ShmHdr));
  const std::size_t payload_len = len - sizeof(ShmHdr);
  switch (hdr.kind) {
    case ShmHdr::Kind::Eager: {
      UnexMsg msg;
      msg.origin = UnexMsg::Origin::LegacyNet;
      msg.kind = UnexMsg::Kind::Eager;
      msg.src = hdr.src_rank;
      msg.tag = hdr.tag;
      msg.context = hdr.context;
      msg.len = payload_len;
      msg.span = hdr.span;
      msg.payload.assign(cell.begin() + sizeof(ShmHdr),
                         cell.begin() + static_cast<std::ptrdiff_t>(len));
      deliver_local(std::move(msg));
      break;
    }
    case ShmHdr::Kind::Rts: {
      UnexMsg msg;
      msg.origin = UnexMsg::Origin::LegacyNet;
      msg.kind = UnexMsg::Kind::Rdv;
      msg.src = hdr.src_rank;
      msg.tag = hdr.tag;
      msg.context = hdr.context;
      msg.rdv_id = hdr.rdv_id;
      msg.len = hdr.len;
      msg.span = hdr.span;
      deliver_local(std::move(msg));
      break;
    }
    case ShmHdr::Kind::Cts: {
      auto it = net_rdv_out_.find(hdr.rdv_id);
      NMX_ASSERT_MSG(it != net_rdv_out_.end(), "legacy CTS for unknown rendezvous");
      auto [req, buf] = it->second;
      net_rdv_out_.erase(it);
      nm_isend(src, pack_tag(kLegacyDataContext, static_cast<int>(hdr.rdv_id & 0x7fffffff)),
               buf, req->len,
               [this, req](nmad::Request&) { complete_send(req); });
      break;
    }
    case ShmHdr::Kind::Data:
      NMX_FAIL("legacy DATA must not arrive on the control channel");
  }
}

void Ch3Process::legacy_grant(int src, int tag, std::uint64_t rdv_id, MpidRequest* req) {
  // Post the data receive *before* granting, so the DATA message (and the
  // internal NewMadeleine rendezvous underneath it) finds it posted.
  nm_irecv(src, pack_tag(kLegacyDataContext, static_cast<int>(rdv_id & 0x7fffffff)), req->rbuf,
           req->len, [this, req, src, tag](nmad::Request& nr) {
             complete_recv(req, src, tag, nr.received, nr.peer_span);
             eng_.schedule_checked(eng_.now(), [this, pr = &nr] { core_->release(pr); });
           });
  ShmHdr cts;
  cts.kind = ShmHdr::Kind::Cts;
  cts.src_rank = rank_;
  cts.rdv_id = rdv_id;
  legacy_send_ctl(src, cts, nullptr, 0);
}

void Ch3Process::legacy_send_ctl(int dst, ShmHdr hdr, const void* payload, std::size_t len) {
  auto cell = serialize_ctl(hdr, payload, len);
  nm_isend(dst, pack_tag(kLegacyCtlContext, 0), cell.data(), cell.size(),
           [this](nmad::Request& nr) {
             eng_.schedule_checked(eng_.now(), [this, pr = &nr] { core_->release(pr); });
           });
}

// ---------------------------------------------------------------------------
// progress
// ---------------------------------------------------------------------------

std::optional<mpi::Status> Ch3Process::iprobe(int src, int tag, int context) {
  enter_progress();
  leave_progress();
  // CH3-matched traffic (shared memory, self, legacy network).
  for (const UnexMsg& m : unexpected_) {
    if (m.context != context) continue;
    if (src != mpi::ANY_SOURCE && src != m.src) continue;
    if (tag != mpi::ANY_TAG && tag != m.tag) continue;
    mpi::Status st;
    st.source = m.src;
    st.tag = m.tag;
    st.count = m.len;
    return st;
  }
  // NewMadeleine's buffers (bypass path).
  if (cfg_.bypass) {
    const std::optional<int> src_filter =
        src == mpi::ANY_SOURCE ? std::nullopt : std::optional<int>(src);
    if (auto found = core_->probe(src_filter, selector_for(context, tag))) {
      mpi::Status st;
      st.source = found->src;
      st.tag = unpack_user_tag(found->tag);
      st.count = found->len;
      return st;
    }
  }
  return std::nullopt;
}

mpi::TxRequest* Ch3Process::nic_coll(std::uint64_t coll_id, int parent,
                                     const std::vector<int>& children, int op, double* inout) {
  MpidRequest* req = new_request(MpidRequest::Kind::Recv);
  req->peer = parent;
  req->len = sizeof(double);
  core_->nic_coll_post(coll_id, parent, children, *inout, op, [req, inout](double result) {
    *inout = result;
    req->status.count = sizeof(double);
    req->complete_and_wake();
  });
  return req;
}

void Ch3Process::enter_progress() {
  ++depth_;
  if (depth_ == 1) {
    core_->enter_progress();
  } else {
    core_->progress();
  }
  if (shm_) shm_->poll(local_index_);
  if (cfg_.bypass) as_probe_all();
}

void Ch3Process::leave_progress() {
  NMX_ASSERT(depth_ > 0);
  if (--depth_ == 0) core_->leave_progress();
}

}  // namespace nmx::ch3
