// The MPICH2-NewMadeleine device: CH3/ADI3 glued to Nemesis (intra-node) and
// NewMadeleine (inter-node), with PIOMan as the centralized progression
// authority (§3).
//
// Two operating modes:
//
//  * bypass = true  — the paper's contribution (§3.1): per-VC function
//    pointers route remote sends straight to nm_sr_isend, remote receives are
//    posted to NewMadeleine's own matching, and MPI_ANY_SOURCE is handled by
//    the management lists of Figure 3. One handshake per rendezvous.
//
//  * bypass = false — the stock Nemesis network-module path (§2.1.3): every
//    CH3 packet is copied through fixed-size netmod cells, CH3 runs its own
//    eager/rendezvous protocol, and large DATA transfers trigger
//    NewMadeleine's *internal* rendezvous underneath CH3's — the nested
//    handshake of Figure 2. Kept as a first-class mode so the benefit of the
//    bypass is measurable (bench/abl_bypass).
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <vector>

#include "ch3/anysource.hpp"
#include "ch3/packet.hpp"
#include "ch3/request.hpp"
#include "mpi/transport.hpp"
#include "nemesis/shm.hpp"
#include "net/fabric.hpp"
#include "net/router.hpp"
#include "nmad/core.hpp"
#include "pioman/pioman.hpp"
#include "sim/engine.hpp"

namespace nmx::ch3 {

class Ch3Process final : public mpi::Transport {
 public:
  struct Config {
    nmad::Core::ExtendedConfig nmad;
    /// Enable PIOMan: background progression + its synchronization costs.
    bool pioman = false;
    /// CH3 -> NewMadeleine direct path (the paper's modification).
    bool bypass = true;
    /// Intra-node CH3 eager/rendezvous switch (Nemesis LMT).
    std::size_t shm_rdv_threshold = 64_KiB;
    /// Legacy mode: netmod cell payload and the CH3 eager/rdv switch for the
    /// network path (single-cell eager keeps the cells fixed-size).
    std::size_t legacy_cell_payload = 32000;
  };

  /// `shm` may be null when the process is alone on its node.
  Ch3Process(sim::Engine& eng, net::Fabric& fabric, net::ProcRouter& router,
             nemesis::ShmNode* shm, int rank, int local_index, Config cfg);
  ~Ch3Process() override;

  // --- mpi::Transport -----------------------------------------------------
  int rank() const override { return rank_; }
  mpi::TxRequest* isend(int dst, int tag, int context, const void* buf,
                        std::size_t len) override;
  mpi::TxRequest* irecv(int src, int tag, int context, void* buf, std::size_t len) override;
  void release(mpi::TxRequest* r) override;
  void enter_progress() override;
  void leave_progress() override;
  /// The bypass path gathers datatype segments in NewMadeleine's packet
  /// wrapper (§5 future work); the legacy path packs like everyone else.
  bool native_datatypes() const override { return cfg_.bypass; }
  std::optional<mpi::Status> iprobe(int src, int tag, int context) override;
  /// NIC-offloaded collective combine: forwarded to the NewMadeleine core's
  /// NIC unit. The request completes from the NIC context — no host matching,
  /// no progress gating (the offload the Yu et al. protocol models).
  mpi::TxRequest* nic_coll(std::uint64_t coll_id, int parent, const std::vector<int>& children,
                           int op, double* inout) override;

  // --- introspection ------------------------------------------------------
  nmad::Core& core() { return *core_; }
  pioman::Manager* pioman() { return pioman_.get(); }
  const AnySourceLists& any_source_lists() const { return as_lists_; }
  std::size_t outstanding_requests() const { return requests_.size(); }
  std::size_t unexpected_count() const { return unexpected_.size(); }

 private:
  // §3.1.2: per-connection virtual connection with overridable send path.
  struct VirtualConnection {
    int peer = -1;
    bool same_node = false;
    std::function<void(MpidRequest*, const void*, std::size_t)> isend_fn;
  };

  struct UnexMsg {
    enum class Origin { Shm, Self, LegacyNet };
    enum class Kind { Eager, Rdv };
    Origin origin = Origin::Shm;
    Kind kind = Kind::Eager;
    int src = -1;
    int tag = 0;
    int context = 0;
    std::uint64_t rdv_id = 0;  ///< shm or legacy CH3 rendezvous id
    std::size_t len = 0;
    obs::SpanId span = 0;  ///< sender's message-lifecycle span (tracing)
    std::vector<std::byte> payload;
  };

  struct ShmRdvOut {
    MpidRequest* req;
    std::vector<std::byte> payload;
    int dst;
  };

  /// Completion context attached to every NewMadeleine request we create.
  struct NmCtx {
    std::function<void(nmad::Request&)> fn;
    std::list<NmCtx>::iterator self;
  };

  // request / ctx pools
  MpidRequest* new_request(MpidRequest::Kind kind);
  NmCtx* new_ctx(std::function<void(nmad::Request&)> fn);
  void run_nmad_completion(nmad::Request& r);
  nmad::Request* nm_isend(int dst, nmad::Tag tag, const void* buf, std::size_t len,
                          std::function<void(nmad::Request&)> done, obs::SpanId span = 0);
  nmad::Request* nm_irecv(int src, nmad::Tag tag, void* buf, std::size_t len,
                          std::function<void(nmad::Request&)> done, obs::SpanId span = 0);

  // send paths
  void send_self(MpidRequest* req, const void* buf, std::size_t len);
  void send_shm(MpidRequest* req, const void* buf, std::size_t len);
  void send_nmad_direct(MpidRequest* req, const void* buf, std::size_t len);
  void send_legacy(MpidRequest* req, const void* buf, std::size_t len);

  // receive paths
  void post_remote_recv(MpidRequest* req);      // bypass: bind to nmad
  void bind_any_source(MpidRequest* req, const nmad::ProbeInfo& found);
  void release_deferred(MpidRequest* req);      // re-check blocking, then post
  void as_probe_all();                          // probe nmad for AS heads

  // CH3 queues (shared-memory / self / legacy-net matching)
  MpidRequest* match_posted(int src, int tag, int context);
  void push_posted(MpidRequest* req);
  void remove_posted(MpidRequest* req);
  bool match_unexpected(MpidRequest* req);  // consume an unexpected msg if any
  void deliver_local(UnexMsg msg);          // arrival -> match or store

  // shared-memory channel
  void handle_shm_message(nemesis::Message&& m);
  void process_shm(ShmHdr hdr, std::vector<std::byte> payload, int src_local);

  // legacy netmod (bypass = false)
  void legacy_on_unexpected(const nmad::ProbeInfo& info);
  void legacy_fetch_ctl(const nmad::ProbeInfo& info);
  void legacy_process_ctl(int src, std::vector<std::byte> cell, std::size_t len);
  void legacy_send_ctl(int dst, ShmHdr hdr, const void* payload, std::size_t len);
  void legacy_grant(int src, int tag, std::uint64_t rdv_id, MpidRequest* req);

  // completion helpers
  void complete_recv(MpidRequest* req, int src, int tag, std::size_t count,
                     obs::SpanId sender_span = 0);
  void complete_send(MpidRequest* req);
  void finish(MpidRequest* req);  // complete_and_wake with any-source penalty

  bool in_progress() const { return depth_ > 0; }
  int local_of(int rank) const;

  sim::Engine& eng_;
  net::Fabric& fabric_;
  nemesis::ShmNode* shm_;
  int rank_;
  int local_index_;
  Config cfg_;
  std::unique_ptr<nmad::Core> core_;
  std::unique_ptr<pioman::Manager> pioman_;
  std::vector<VirtualConnection> vcs_;

  std::list<MpidRequest> requests_;
  std::list<NmCtx> nm_ctxs_;

  // ADI3 queue pair (§3.1.1) for traffic CH3 itself matches.
  std::list<MpidRequest*> posted_queue_;
  std::list<UnexMsg> unexpected_;

  AnySourceLists as_lists_;

  // shared-memory CH3 rendezvous state
  std::uint64_t next_shm_rdv_ = 1;
  std::map<std::uint64_t, ShmRdvOut> shm_rdv_out_;
  std::map<std::pair<int, std::uint64_t>, MpidRequest*> shm_rdv_in_;

  // legacy CH3 network rendezvous state
  std::uint64_t next_net_rdv_ = 1;
  std::map<std::uint64_t, std::pair<MpidRequest*, const void*>> net_rdv_out_;

  int depth_ = 0;
};

}  // namespace nmx::ch3
