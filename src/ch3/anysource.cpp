#include "ch3/anysource.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace nmx::ch3 {

AnySourceLists::Key AnySourceLists::key_for(const MpidRequest* req) const {
  return {req->context, req->tag};
}

bool AnySourceLists::blocks(int context, int tag) const {
  if (sublists_.count({context, tag}) > 0) return true;
  return sublists_.count({context, mpi::ANY_TAG}) > 0;
}

void AnySourceLists::add_any_source(MpidRequest* req) {
  NMX_ASSERT(req->peer == mpi::ANY_SOURCE || req->tag == mpi::ANY_TAG);
  sublists_[key_for(req)].push_back(Item{req, next_seq_++});
}

void AnySourceLists::defer(MpidRequest* req) {
  NMX_ASSERT(req->peer != mpi::ANY_SOURCE && req->tag != mpi::ANY_TAG);
  // Prefer the exact-tag sublist; fall back to the context wildcard.
  auto it = sublists_.find({req->context, req->tag});
  if (it == sublists_.end()) it = sublists_.find({req->context, mpi::ANY_TAG});
  NMX_ASSERT_MSG(it != sublists_.end(), "defer() without a blocking sublist");
  it->second.push_back(Item{req, next_seq_++});
}

std::vector<MpidRequest*> AnySourceLists::heads() const {
  std::vector<std::pair<std::uint64_t, MpidRequest*>> hs;
  for (const auto& [key, list] : sublists_) {
    NMX_ASSERT(!list.empty());
    NMX_ASSERT_MSG(list.front().req->peer == mpi::ANY_SOURCE ||
                       list.front().req->tag == mpi::ANY_TAG,
                   "sublist head must be a wildcard request");
    hs.emplace_back(list.front().seq, list.front().req);
  }
  std::sort(hs.begin(), hs.end());
  std::vector<MpidRequest*> out;
  out.reserve(hs.size());
  for (auto& [seq, req] : hs) out.push_back(req);
  return out;
}

void AnySourceLists::resolve(MpidRequest* req, const ReleaseFn& release) {
  auto it = sublists_.find(key_for(req));
  NMX_ASSERT_MSG(it != sublists_.end(), "resolving a request with no sublist");
  auto& list = it->second;
  NMX_ASSERT_MSG(!list.empty() && list.front().req == req,
                 "only the sublist head can be resolved");
  list.pop_front();

  // Release deferred exact receives until the next wildcard request,
  // which becomes the new head.
  std::vector<MpidRequest*> released;
  while (!list.empty() && list.front().req->peer != mpi::ANY_SOURCE &&
         list.front().req->tag != mpi::ANY_TAG) {
    released.push_back(list.front().req);
    list.pop_front();
  }
  if (list.empty()) sublists_.erase(it);
  for (MpidRequest* r : released) release(r);
}

}  // namespace nmx::ch3
