// The any-source management lists of §3.2.2 / Figure 3.
//
// NewMadeleine cannot cancel a posted request, so an MPI_ANY_SOURCE receive
// is never posted to it eagerly. Instead it is parked here, in a per-(context,
// tag) sublist hanging off a main list. While a sublist's head is an active
// any-source request:
//   * later known-source receives on the same (context, tag) are *deferred*
//     into the sublist ("in order to ensure message ordering, they are
//     enqueued in the list of pending any sources"),
//   * every progress pass probes NewMadeleine; when a matching message has
//     arrived, a NewMadeleine request is created dynamically for it and the
//     head is resolved,
//   * an intra-node (shared-memory) match simply removes the head ("the
//     entry ... is simply removed and all requests that might have been
//     posted after are created").
// Resolving a head releases the deferred requests behind it, up to the next
// any-source request, which becomes the new head.
//
// ANY_TAG receives live in a per-context wildcard sublist that conservatively
// blocks every tag of that context.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "ch3/request.hpp"

namespace nmx::ch3 {

class AnySourceLists {
 public:
  /// Invoked for each deferred known-source request released by a resolve;
  /// the owner re-checks blocking and posts to NewMadeleine.
  using ReleaseFn = std::function<void(MpidRequest*)>;

  /// True when a known-source receive on (context, tag) must be deferred
  /// behind a pending any-source request.
  bool blocks(int context, int tag) const;

  /// Park a wildcard request: MPI_ANY_SOURCE, or a known source with
  /// MPI_ANY_TAG (which NewMadeleine's exact matching cannot serve either —
  /// the same dynamic-request machinery handles both).
  void add_any_source(MpidRequest* req);

  /// Defer a known-source receive blocked by blocks(). Must only be called
  /// when blocks(context, tag) is true.
  void defer(MpidRequest* req);

  /// Active sublist heads (all any-source requests), oldest-posted first —
  /// the set the progress engine probes NewMadeleine for.
  std::vector<MpidRequest*> heads() const;

  /// Remove head request `req` (matched via nmad bind or shared memory) and
  /// release deferred followers until the next any-source request.
  void resolve(MpidRequest* req, const ReleaseFn& release);

  bool empty() const { return sublists_.empty(); }
  std::size_t sublist_count() const { return sublists_.size(); }

 private:
  struct Item {
    MpidRequest* req;
    std::uint64_t seq;  ///< global post order
  };
  /// Key: (context, tag); tag == mpi::ANY_TAG is the wildcard sublist.
  using Key = std::pair<int, int>;

  Key key_for(const MpidRequest* req) const;
  std::map<Key, std::deque<Item>> sublists_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace nmx::ch3
