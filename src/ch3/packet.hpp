// CH3 packet headers and matching types.
//
// The CH3 device matches messages on (source, tag, context id). On the
// NewMadeleine bypass path the (context, tag) pair is packed into one 64-bit
// NewMadeleine tag so nmad's internal tag matching does the work (§3.1.1);
// on the Nemesis shared-memory path the header below rides the first cell.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mpi/transport.hpp"
#include "nmad/types.hpp"

namespace nmx::ch3 {

/// Pack (context id, user tag) into a NewMadeleine tag. Context in the high
/// 32 bits so a masked probe can select "any user tag in this context".
constexpr nmad::Tag pack_tag(int context, int tag) {
  return (static_cast<nmad::Tag>(static_cast<std::uint32_t>(context)) << 32) |
         static_cast<std::uint32_t>(tag);
}
constexpr int unpack_user_tag(nmad::Tag t) {
  return static_cast<int>(static_cast<std::uint32_t>(t & 0xffffffffull));
}
constexpr int unpack_context(nmad::Tag t) {
  return static_cast<int>(static_cast<std::uint32_t>(t >> 32));
}

/// Selector for an exact (context, tag) probe.
constexpr nmad::TagSelector exact_selector(int context, int tag) {
  return nmad::TagSelector{pack_tag(context, tag), ~nmad::Tag{0}};
}
/// Selector for "any user tag within this context" (MPI_ANY_TAG).
constexpr nmad::TagSelector context_selector(int context) {
  return nmad::TagSelector{pack_tag(context, 0), 0xffffffff00000000ull};
}
constexpr nmad::TagSelector selector_for(int context, int tag) {
  return tag == mpi::ANY_TAG ? context_selector(context) : exact_selector(context, tag);
}

/// Header of a CH3 message on the Nemesis shared-memory channel. The
/// rendezvous kinds implement the CH3 RTS/CTS/DATA protocol of Figure 2 —
/// used here only intra-node, because the network path bypasses CH3
/// protocols entirely (that bypass is the paper's point, §3.1.1).
struct ShmHdr {
  enum class Kind : std::uint8_t { Eager, Rts, Cts, Data };
  Kind kind = Kind::Eager;
  int src_rank = -1;
  int tag = 0;
  int context = 0;
  std::uint64_t rdv_id = 0;
  std::size_t len = 0;  ///< full payload size (Rts announces it)
  std::uint64_t span = 0;  ///< sender's message-lifecycle span (tracing)
};

}  // namespace nmx::ch3
