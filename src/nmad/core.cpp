#include "nmad/core.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "sim/fault.hpp"

namespace nmx::nmad {

namespace {
/// Pseudo-byte weight of the beta-proportional prior in the per-peer arrival
/// mix (sample_rail_ads): the prior only fills the gap until this much
/// *recent* (decayed) landing mass has been observed, then fades out.
constexpr std::size_t kMixPriorBytes = 256 * 1024;
/// Time constant of the exponential decay on the observed per-rail landing
/// mix: a couple of large-chunk landings wide, so the mix tracks the current
/// landing rate instead of the whole run's history. Sim-time based —
/// deterministic.
constexpr Time kMixDecayTau = 2e-3;
/// NIC firmware processing per collective control packet (Yu et al. report
/// the NIC-based barrier's per-hop cost is dominated by wire latency, with
/// firmware handling well under a microsecond).
constexpr Time kNicCollProc = 0.2e-6;
/// NIC-internal loopback between co-located processes sharing the node's
/// NICs: no wire, no egress occupancy, just a doorbell across the bus.
constexpr Time kNicCollLoopback = 0.3e-6;
}  // namespace

Core::Core(sim::Engine& eng, net::Fabric& fabric, net::ProcRouter& router, int my_proc,
           ExtendedConfig cfg)
    : eng_(eng),
      fabric_(fabric),
      router_(router),
      my_proc_(my_proc),
      my_node_(fabric.topology().node_of(my_proc)),
      cfg_(cfg),
      sampling_(fabric, cfg.rails) {
  NMX_ASSERT(!cfg_.rails.empty());
  StrategyOptions opts;
  opts.max_aggregate = cfg_.max_aggregate;
  opts.min_split_chunk = cfg_.min_split_chunk;
  opts.rdv_quantum = cfg_.rdv_quantum;
  opts.adaptive_split = cfg_.adaptive_split;
  strategy_ = make_strategy(cfg_.strategy, sampling_, opts);
  for (int fr : cfg_.rails) drivers_.push_back(Driver{fr, false});
  // Live load feed for cost-model strategies: the engine clock plus each
  // local rail's NIC egress occupancy, straight from the fabric (includes
  // co-located processes sharing the node's NICs).
  strategy_->set_load_probe([this] {
    RailLoad l;
    l.now = eng_.now();
    l.busy_until.reserve(drivers_.size());
    l.ingress_busy_until.reserve(drivers_.size());
    for (const Driver& d : drivers_) {
      l.busy_until.push_back(fabric_.egress_busy_until(my_node_, d.fabric_rail));
      l.ingress_busy_until.push_back(fabric_.ingress_busy_until(my_node_, d.fabric_rail));
    }
    return l;
  });
  router.register_proc(my_proc_, [this](net::WirePacket&& pkt) { rx_wire(std::move(pkt)); });
  if (cfg_.fault_plan != nullptr) {
    // Rail death is reported synchronously by the local NIC at the death
    // instant (the listener fires for every core; cores not driving the rail
    // ignore it). Restart wipes this process's rendezvous landing progress.
    cfg_.fault_plan->on_rail_down([this](int fr) { handle_rail_down(fr, /*from_wire=*/false); });
    cfg_.fault_plan->on_restart(my_proc_, [this] { on_restart(); });
  }
}

Request* Core::new_request(Request r) {
  live_.push_back(std::move(r));
  auto it = std::prev(live_.end());
  it->self = it;
  return &*it;
}

Core::GateState& Core::gate(int peer) { return gates_[peer]; }

bool Core::any_rail_needs_registration() const {
  for (const Driver& d : drivers_) {
    if (fabric_.profile(d.fabric_rail).needs_registration) return true;
  }
  return false;
}

int Core::local_rail_of(int fabric_rail) const {
  for (std::size_t r = 0; r < drivers_.size(); ++r) {
    if (drivers_[r].fabric_rail == fabric_rail) return static_cast<int>(r);
  }
  return -1;
}

// --------------------------------------------------------------------------
// nm_sr interface
// --------------------------------------------------------------------------

Request* Core::isend(int dst, Tag tag, const void* buf, std::size_t len, void* user_ctx,
                     std::uint64_t span) {
  NMX_ASSERT_MSG(dst != my_proc_, "NewMadeleine handles inter-node traffic only");
  Request* req = new_request([&] {
    Request r;
    r.kind = Request::Kind::Send;
    r.peer = dst;
    r.tag = tag;
    r.len = len;
    r.sbuf = static_cast<const std::byte*>(buf);
    r.user_ctx = user_ctx;
    r.span = span;
    return r;
  }());

  GateState& g = gate(dst);
  const std::uint32_t seq = g.send_seq[tag]++;
  obs::Recorder* rec = eng_.recorder();
  Entry e;
  e.dst_proc = dst;
  e.tag = tag;
  e.seq = seq;
  e.span = span;
  if (len <= cfg_.rdv_threshold) {
    e.kind = Entry::Kind::Eager;
    if (len > 0) {
      e.bytes.resize(len);
      std::memcpy(e.bytes.data(), buf, len);
    }
    e.sreq = req;
    if (rec != nullptr) {
      rec->metrics().counter("nmad.eager.count").add(1);
      rec->metrics().counter("nmad.eager.bytes").add(len);
    }
  } else {
    // Internal rendezvous (§2.1.3): RTS now, data after the CTS grant. The
    // NmadRdv span covers the handshake: RTS post -> CTS back at the sender.
    const std::uint64_t id = next_rdv_++;
    req->rdv_id = id;
    req->rdv_rts_t = eng_.now();
    rdv_out_.emplace(id, req);
    ++rdv_started_;
    e.kind = Entry::Kind::Rts;
    e.rdv_id = id;
    e.rdv_total = len;
    req->rts_seq = seq;
    // CTS-timeout recovery: if the grant has not arrived by then, retransmit
    // the RTS (same seq / rdv id). Off by default — healthy runs schedule
    // nothing extra; chaos configurations opt in.
    if (cfg_.rdv_retry_timeout > 0) {
      req->retry_timer = eng_.schedule_in_checked(cfg_.rdv_retry_timeout, [this, req] { rts_retry(req); });
    }
    if (rec != nullptr) {
      req->rdv_span = rec->begin(eng_.now(), my_proc_, obs::Cat::NmadRdv, len, dst);
      rec->instant(eng_.now(), my_proc_, obs::Cat::RdvRts, len, dst);
      rec->metrics().counter("nmad.rdv.count").add(1);
      rec->metrics().counter("nmad.rdv.bytes").add(len);
    }
  }
  enqueue(std::move(e));
  kick();
  return req;
}

Request* Core::irecv(int src, Tag tag, void* buf, std::size_t len, void* user_ctx,
                     std::uint64_t span) {
  NMX_ASSERT_MSG(src != my_proc_, "NewMadeleine handles inter-node traffic only");
  Request* req = new_request([&] {
    Request r;
    r.kind = Request::Kind::Recv;
    r.peer = src;
    r.tag = tag;
    r.len = len;
    r.rbuf = static_cast<std::byte*>(buf);
    r.user_ctx = user_ctx;
    r.span = span;
    return r;
  }());

  GateState& g = gate(src);
  auto& unex = g.unexpected[tag];
  if (!unex.empty()) {
    Unexpected u = std::move(unex.front());
    unex.pop_front();
    --unexpected_total_;
    if (obs::Recorder* rec = eng_.recorder()) {
      rec->metrics().gauge("nmad.unexpected.depth").set(static_cast<double>(unexpected_total_));
    }
    if (!u.rdv) {
      NMX_ASSERT_MSG(u.payload.size() <= req->len, "eager message overflows receive buffer");
      if (!u.payload.empty()) std::memcpy(req->rbuf, u.payload.data(), u.payload.size());
      req->received = u.payload.size();
      req->peer_span = u.span;
      complete(*req);
    } else {
      start_rdv_recv(src, req, u.rdv_id, u.len, u.span);
    }
    return req;
  }
  g.posted[tag].push_back(req);
  return req;
}

void Core::release(Request* r) {
  NMX_ASSERT_MSG(r->completed, "requests cannot be cancelled, only completed ones released");
  // A completed rendezvous cancelled its retry timer when the CTS landed;
  // cancel defensively anyway so a released request can never be called back.
  if (r->retry_timer != 0) {
    eng_.cancel(r->retry_timer);
    r->retry_timer = 0;
  }
  live_.erase(r->self);
}

std::optional<ProbeInfo> Core::probe(std::optional<int> src, TagSelector sel) const {
  const Unexpected* best = nullptr;
  ProbeInfo info;
  auto consider = [&](int gsrc, Tag gtag, const std::deque<Unexpected>& q) {
    if (q.empty() || !sel.matches(gtag)) return;
    const Unexpected& u = q.front();
    // Total order on candidates: earliest arrival, then lowest (src, tag).
    // The explicit tie-break makes the selection independent of the hash-map
    // visitation order below — two messages landing at the same instant used
    // to be picked by whichever bucket came first.
    const bool better =
        best == nullptr || u.arrival < best->arrival ||
        (u.arrival == best->arrival &&
         (gsrc < info.src || (gsrc == info.src && gtag < info.tag)));
    if (better) {
      best = &u;
      info.src = gsrc;
      info.tag = gtag;
      info.len = u.len;
    }
  };
  // nmx-lint: allow(determinism) selection is tie-broken to a total order above; visitation order cannot leak
  for (const auto& [gsrc, g] : gates_) {
    if (src && *src != gsrc) continue;
    // nmx-lint: allow(determinism) same total-order tie-break as the outer loop
    for (const auto& [gtag, q] : g.unexpected) consider(gsrc, gtag, q);
  }
  if (!best) return std::nullopt;
  return info;
}

// --------------------------------------------------------------------------
// progress engine
// --------------------------------------------------------------------------

void Core::enter_progress() {
  ++progress_depth_;
  progress();
}

void Core::leave_progress() {
  NMX_ASSERT(progress_depth_ > 0);
  --progress_depth_;
}

void Core::progress() {
  drain_rx();
  try_flush();
}

void Core::enqueue(Entry e) {
  ++strat_depth_;
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->instant(eng_.now(), my_proc_, obs::Cat::StratEnqueue, e.wire_bytes(),
                 static_cast<std::int64_t>(e.kind));
    rec->metrics().gauge("nmad.strategy.queue_depth").set(static_cast<double>(strat_depth_));
  }
  strategy_->enqueue(std::move(e));
  sample_sched();
}

void Core::sample_sched() {
  obs::Recorder* rec = eng_.recorder();
  if (rec == nullptr) return;
  const Time now = eng_.now();
  rec->sample(now, my_proc_, "nmad.strategy.queue_depth", static_cast<double>(strat_depth_));
  for (std::size_t r = 0; r < drivers_.size(); ++r) {
    const std::string rail_label = "rail=" + std::to_string(r);
    const auto backlog = static_cast<double>(strategy_->backlog_bytes(static_cast<int>(r)));
    rec->metrics().gauge("nmad.sched.backlog_bytes", rail_label).set(backlog);
    rec->metrics()
        .gauge("nmad.sched.steals", rail_label)
        .set(static_cast<double>(strategy_->steals(static_cast<int>(r))));
    rec->sample(now, my_proc_, "nmad.sched.backlog_bytes." + rail_label, backlog);
  }
  rec->metrics()
      .gauge("nmad.sched.rdv_backlog_bytes")
      .set(static_cast<double>(strategy_->rdv_backlog_bytes()));
}

void Core::kick() {
  if (progress_allowed()) {
    try_flush();
  } else {
    pending_flush_ = true;
    notify_async();
  }
}

void Core::try_flush() {
  pending_flush_ = false;
  for (std::size_t r = 0; r < drivers_.size(); ++r) {
    Driver& d = drivers_[r];
    while (!d.busy && !d.dead) {
      auto wm = strategy_->next(static_cast<int>(r), my_proc_);
      if (!wm) break;
      submit(static_cast<int>(r), std::move(*wm));
    }
  }
}

void Core::submit(int local_rail, WireMsg wm, bool nic_direct) {
  Driver& d = drivers_[static_cast<std::size_t>(local_rail)];
  NMX_ASSERT(!d.busy);
  d.busy = true;

  // Software cost before the NIC sees the packet: generic-layer injection,
  // eager copy into the packet wrapper, and on-the-fly registration of
  // rendezvous payload (NewMadeleine has no registration cache — §4.1.1).
  // NIC-offloaded collective packets never touch the host: they are charged
  // the firmware processing cost only.
  Time pre;
  if (nic_direct) {
    pre = kNicCollProc;
  } else {
    pre = cfg_.inject_overhead();
    pre += calib::copy_cost(wm.copied_bytes());
    const net::NicProfile& prof = fabric_.profile(d.fabric_rail);
    if (prof.needs_registration && wm.rdv_bytes() > 0) {
      pre += calib::ib_reg_cost(wm.rdv_bytes());
    }
  }

  std::vector<Note> notes;
  for (const Entry& e : wm.entries) {
    if (e.sreq != nullptr) {
      notes.push_back(Note{e.sreq, e.kind, e.bytes.size(), e.epoch});
      ++e.sreq->inflight_notes;
    }
  }

  const int dst = wm.dst_proc;
  const std::size_t bytes = wm.wire_bytes();
  // Cost-model prediction of this packet's egress completion: software
  // pre-cost, then queueing behind whatever the NIC is already booked for,
  // then the sampled *egress* transfer model (alpha_tx — the one-way predict()
  // includes wire latency the sender never waits for). Compared against
  // reality at on_egress.
  d.tx_pred = std::max(eng_.now() + pre, fabric_.egress_busy_until(my_node_, d.fabric_rail)) +
              sampling_.predict_egress(local_rail, bytes);
  // NIC-direct packets bypass the strategy queue entirely; only host-path
  // submissions shrink its depth.
  if (!nic_direct) strat_depth_ -= std::min(strat_depth_, wm.entries.size());
  if (obs::Recorder* rec = eng_.recorder()) {
    d.tx_span = rec->begin(eng_.now(), my_proc_, obs::Cat::NmadTx, bytes, local_rail);
    d.tx_begin = eng_.now();
    rec->metrics().gauge("nmad.strategy.queue_depth").set(static_cast<double>(strat_depth_));
    const std::string rail_label = "rail=" + std::to_string(local_rail);
    rec->metrics().counter("nmad.rail.tx_packets", rail_label).add(1);
    rec->metrics().counter("nmad.rail.tx_bytes", rail_label).add(bytes);
  }
  eng_.schedule_in_checked(pre, [this, local_rail, dst, bytes, wm = std::move(wm),
                         notes = std::move(notes)]() mutable {
    net::WirePacket pkt;
    pkt.src_node = my_node_;
    pkt.dst_node = fabric_.topology().node_of(dst);
    pkt.dst_proc = dst;
    pkt.rail = drivers_[static_cast<std::size_t>(local_rail)].fabric_rail;
    pkt.bytes = bytes;
    pkt.payload = std::move(wm);
    const Time queued_from = std::max(eng_.now(), fabric_.egress_busy_until(my_node_, pkt.rail));
    const Time egress = fabric_.transmit(std::move(pkt));
    // Measured NIC occupancy (egress grant minus queueing) fed back into the
    // bandwidth model: silent rail degradation surfaces as a lower implied
    // beta, and the sampling layer re-learns it from this prediction error
    // instead of letting the stale probe poison every future split.
    if (cfg_.beta_relearn && sampling_.observe_egress(local_rail, bytes, egress - queued_from)) {
      if (obs::Recorder* rec = eng_.recorder()) {
        rec->metrics()
            .counter("nmad.sched.beta_relearned", "rail=" + std::to_string(local_rail))
            .add(1);
      }
    }
    eng_.schedule_checked(egress, [this, local_rail, notes = std::move(notes)]() mutable {
      on_egress(local_rail, std::move(notes));
    });
  });
}

void Core::on_egress(int local_rail, std::vector<Note> notes) {
  Driver& d = drivers_[static_cast<std::size_t>(local_rail)];
  d.busy = false;
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->end(eng_.now(), my_proc_, obs::Cat::NmadTx, d.tx_span, 0, local_rail);
    rec->metrics()
        .counter("nmad.rail.busy_ns", "rail=" + std::to_string(local_rail))
        .add(static_cast<std::uint64_t>((eng_.now() - d.tx_begin) * 1e9));
    // Cost-model accuracy: |predicted - actual| egress completion. With the
    // egress-fitted alpha_tx the wire-latency offset is gone; residual error
    // comes from cross-process NIC contention the predictor cannot see.
    rec->metrics()
        .histogram("nmad.sched.pred_error_us", {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500})
        .observe(std::abs(eng_.now() - d.tx_pred) * 1e6);
    d.tx_span = 0;
  }
  for (const Note& n : notes) {
    NMX_ASSERT(n.sreq->inflight_notes > 0);
    --n.sreq->inflight_notes;
    if (n.kind == Entry::Kind::Eager) {
      complete(*n.sreq);
    } else if (n.kind == Entry::Kind::RdvChunk) {
      if (n.epoch == n.sreq->epoch) {
        NMX_ASSERT(n.sreq->bytes_outstanding >= n.bytes);
        n.sreq->bytes_outstanding -= n.bytes;
      } else if (obs::Recorder* rec2 = eng_.recorder()) {
        // Chunk of a superseded grant epoch drained after a receiver restart:
        // the replay re-sends these bytes, so they must not count here.
        rec2->metrics().counter("nmad.rdv.stale_tx_notes").add(1);
      }
      // Retirement needs *three* things: every byte of the current epoch
      // drained, no note still in flight (a pending stale-epoch note would
      // otherwise fire after the request was released), and — the part
      // egress alone cannot prove — the receiver's completion ack
      // (fin_seen). Retiring on egress used to orphan restart re-grants
      // that were still racing toward us (nmad.rdv.orphan_cts).
      try_retire(n.sreq);
    }
  }
  sample_sched();
  drain_nic_txq();
  if (strategy_->pending()) kick();
}

void Core::notify_async() {
  if (async_notifier_) async_notifier_();
}

void Core::rts_retry(Request* req) {
  req->retry_timer = 0;
  if (req->cts_seen || req->completed) return;  // grant arrived; timer raced it
  obs::Recorder* rec = eng_.recorder();
  if (req->rts_retries >= static_cast<std::uint32_t>(cfg_.rdv_retry_limit)) {
    // Out of retries: stop retransmitting but keep waiting. A CTS is only
    // ever sent once the receive is posted, so a slow consumer looks exactly
    // like a lost handshake from here — giving up would turn every slow
    // receiver into a hard failure. A genuinely lost handshake surfaces as a
    // deadlock (and in tests, a timeout), not an infinite retry loop.
    if (rec != nullptr) rec->metrics().counter("nmad.rdv.retry_exhausted").add(1);
    return;
  }
  ++req->rts_retries;
  if (rec != nullptr) {
    rec->metrics().counter("nmad.rdv.retries").add(1);
    rec->instant(eng_.now(), my_proc_, obs::Cat::RdvRts, req->len, req->peer);
  }
  // Retransmit under the *original* matching slot and rendezvous id: the
  // receiver either never saw the RTS (slots in normally) or recognises the
  // duplicate and re-grants (handle_dup_rts).
  Entry e;
  e.kind = Entry::Kind::Rts;
  e.dst_proc = req->peer;
  e.tag = req->tag;
  e.seq = req->rts_seq;
  e.rdv_id = req->rdv_id;
  e.rdv_total = req->len;
  e.retry = req->rts_retries;
  e.span = req->span;
  enqueue(std::move(e));
  // Exponential backoff so a receiver that is slow rather than faulted is
  // probed at timeout, 2x, 4x, ... instead of being flooded.
  const Time backoff = cfg_.rdv_retry_timeout *
                       static_cast<double>(1ull << std::min<std::uint32_t>(req->rts_retries, 20));
  req->retry_timer = eng_.schedule_in_checked(backoff, [this, req] { rts_retry(req); });
  kick();
}

// --------------------------------------------------------------------------
// receive path
// --------------------------------------------------------------------------

void Core::rx_wire(net::WirePacket&& pkt) {
  WireMsg& m = std::any_cast<WireMsg&>(pkt.payload);
  // NIC-offloaded collective control is consumed by the NIC unit itself: no
  // host matching, no deliver overhead, no progress gating — that autonomy
  // is the point of the Yu et al. offload. CollCtl always travels alone
  // (nic_coll_send builds single-entry packets).
  if (!m.entries.empty() && m.entries[0].kind == Entry::Kind::CollCtl) {
    for (const Entry& e : m.entries) {
      eng_.schedule_in_checked(kNicCollProc,
                               [this, id = e.rdv_id, value = e.coll_value, ctl = e.coll_ctl] {
                                 nic_coll_rx(id, value, ctl);
                               });
    }
    return;
  }
  pending_rx_.push_back(RxItem{pkt.rail, std::move(m)});
  if (progress_allowed()) {
    drain_rx();
  } else {
    notify_async();
  }
}

void Core::drain_rx() {
  while (!pending_rx_.empty()) {
    RxItem it = std::move(pending_rx_.front());
    pending_rx_.pop_front();
    // Charge the generic-layer receive cost (matching, completion dispatch,
    // PIOMan locking when enabled) per wire message.
    eng_.schedule_in_checked(cfg_.deliver_overhead(), [this, it = std::move(it)]() mutable {
      handle_wire(it.fabric_rail, std::move(it.msg));
    });
  }
}

void Core::handle_wire(int fabric_rail, WireMsg m) {
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->instant(eng_.now(), my_proc_, obs::Cat::NmadRx, m.wire_bytes(), m.src_proc);
    rec->metrics().counter("nmad.rx.msgs").add(1);
    rec->metrics().counter("nmad.rx.bytes").add(m.wire_bytes());
  }
  const int src = m.src_proc;
  for (Entry& e : m.entries) {
    // Fault-injection point: one roll per delivered *control* entry. Data
    // entries (Eager, RdvChunk) are never faulted — this protocol has no
    // payload ack/retransmit layer, so dropping them is unrecoverable by
    // design; the recoverable fault surface is the rendezvous control plane.
    if (cfg_.fault_plan != nullptr &&
        (e.kind == Entry::Kind::Rts || e.kind == Entry::Kind::Cts)) {
      const sim::FaultPlan::EntryDecision dec =
          cfg_.fault_plan->entry_action(static_cast<int>(e.kind), src, my_proc_, eng_.now());
      obs::Recorder* rec = eng_.recorder();
      const std::string kind_label = std::string("kind=") + Entry::kind_name(e.kind);
      if (dec.action == sim::EntryAction::Drop) {
        if (rec != nullptr) rec->metrics().counter("nmad.fault.dropped", kind_label).add(1);
        continue;
      }
      if (dec.action == sim::EntryAction::Duplicate) {
        if (rec != nullptr) rec->metrics().counter("nmad.fault.duplicated", kind_label).add(1);
        Entry twin = e;
        dispatch_entry(src, fabric_rail, std::move(twin));
        // fall through: the original lands right behind its twin
      } else if (dec.action == sim::EntryAction::Delay) {
        if (rec != nullptr) rec->metrics().counter("nmad.fault.delayed", kind_label).add(1);
        // Box the entry: a raw Entry capture (~150 bytes) would spill the
        // event slot's inline closure storage. One explicit allocation on
        // this cold fault path keeps the SmallFn-inline invariant intact.
        eng_.schedule_in_checked(
            dec.delay, [this, src, fabric_rail, de = std::make_unique<Entry>(std::move(e))] {
              dispatch_entry(src, fabric_rail, std::move(*de));
            });
        continue;
      }
    }
    dispatch_entry(src, fabric_rail, std::move(e));
  }
}

void Core::dispatch_entry(int src, int fabric_rail, Entry e) {
  switch (e.kind) {
    case Entry::Kind::Eager:
    case Entry::Kind::Rts:
      ingest_ordered(src, std::move(e), fabric_rail);
      break;
    case Entry::Kind::Cts:
      handle_cts(src, e);
      break;
    case Entry::Kind::RdvChunk:
      handle_rdv_data(src, fabric_rail, e);
      break;
    case Entry::Kind::RailDown:
      if (obs::Recorder* rec = eng_.recorder()) {
        rec->metrics().counter("nmad.fault.raildown_rx").add(1);
      }
      // Redundant in the simulator (every core sees the death synchronously
      // through the FaultPlan listener) but kept honest: this is the only
      // signal a real remote peer would have. Idempotent on arrival.
      handle_rail_down(e.down_rail, /*from_wire=*/true);
      break;
    case Entry::Kind::RdvFin:
      handle_rdv_fin(e);
      break;
    case Entry::Kind::CollCtl:
      // Normally peeled in rx_wire (the NIC unit handles these without host
      // progress); reaching the host dispatch path is harmless — hand it to
      // the same unit.
      nic_coll_rx(e.rdv_id, e.coll_value, e.coll_ctl);
      break;
  }
}

void Core::ingest_ordered(int src, Entry e, int fabric_rail) {
  GateState& g = gate(src);
  std::uint32_t& expected = g.recv_seq[e.tag];
  if (e.seq != expected) {
    if (e.seq < expected) {
      // This matching slot was already consumed: a wire duplicate or a
      // sender retransmission. Eager entries are never faulted, so only an
      // Rts can get here — and it must never re-enter the matching stream
      // (that would double-deliver). Re-grant or drop instead.
      if (e.kind == Entry::Kind::Rts) handle_dup_rts(src, e);
      return;
    }
    // Arrived ahead of an in-flight predecessor (possible across rails);
    // stash until its turn to preserve MPI matching order. A duplicate of an
    // already-stashed seq is discarded by the emplace.
    const Tag tag = e.tag;
    const std::uint32_t seq = e.seq;
    g.out_of_order.emplace(std::make_pair(tag, seq), PendingIngest{std::move(e), src, fabric_rail});
    return;
  }
  ++expected;
  ingest(src, e, fabric_rail);
  // Drain any stashed successors that are now in order.
  for (;;) {
    auto it = g.out_of_order.find({e.tag, g.recv_seq[e.tag]});
    if (it == g.out_of_order.end()) break;
    Entry next = std::move(it->second.entry);
    const int next_rail = it->second.fabric_rail;
    g.out_of_order.erase(it);
    ++g.recv_seq[next.tag];
    ingest(src, next, next_rail);
  }
}

void Core::ingest(int src, Entry& e, int fabric_rail) {
  if (e.kind == Entry::Kind::Eager) {
    deliver_eager(src, e, fabric_rail);
  } else {
    handle_rts(src, e);
  }
}

void Core::deliver_eager(int src, Entry& e, int fabric_rail) {
  // Landing link for the critical-path analyzer: last byte of this eager
  // entry is on the receiver, on `fabric_rail`, named by the sender's span.
  if (obs::Recorder* rec = eng_.recorder()) {
    if (e.span != 0) {
      rec->link(eng_.now(), my_proc_, obs::Cat::WireLand, e.span, e.bytes.size(), fabric_rail);
    }
  }
  GateState& g = gate(src);
  auto& posted = g.posted[e.tag];
  if (!posted.empty()) {
    Request* req = posted.front();
    posted.pop_front();
    NMX_ASSERT_MSG(e.bytes.size() <= req->len, "eager message overflows receive buffer");
    if (!e.bytes.empty()) std::memcpy(req->rbuf, e.bytes.data(), e.bytes.size());
    req->received = e.bytes.size();
    req->peer_span = e.span;
    complete(*req);
    return;
  }
  const std::size_t len = e.bytes.size();
  Unexpected u;
  u.arrival = arrival_counter_++;
  u.rdv = false;
  u.len = len;
  u.span = e.span;
  u.payload = std::move(e.bytes);
  g.unexpected[e.tag].push_back(std::move(u));
  ++unexpected_total_;
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->instant(eng_.now(), my_proc_, obs::Cat::Unexpected, len, src);
    rec->metrics().gauge("nmad.unexpected.depth").set(static_cast<double>(unexpected_total_));
  }
  if (on_unexpected_) on_unexpected_(ProbeInfo{src, e.tag, len});
}

void Core::handle_rts(int src, Entry& e) {
  GateState& g = gate(src);
  auto& posted = g.posted[e.tag];
  if (!posted.empty()) {
    Request* req = posted.front();
    posted.pop_front();
    start_rdv_recv(src, req, e.rdv_id, e.rdv_total, e.span);
    return;
  }
  Unexpected u;
  u.arrival = arrival_counter_++;
  u.rdv = true;
  u.len = e.rdv_total;
  u.rdv_id = e.rdv_id;
  u.span = e.span;
  g.unexpected[e.tag].push_back(std::move(u));
  ++unexpected_total_;
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->instant(eng_.now(), my_proc_, obs::Cat::Unexpected, e.rdv_total, src);
    rec->metrics().gauge("nmad.unexpected.depth").set(static_cast<double>(unexpected_total_));
  }
  if (on_unexpected_) on_unexpected_(ProbeInfo{src, e.tag, e.rdv_total});
}

void Core::handle_dup_rts(int src, Entry& e) {
  obs::Recorder* rec = eng_.recorder();
  if (rec != nullptr) rec->metrics().counter("nmad.rdv.dup_rts").add(1);
  // A plain wire duplicate (retry == 0): the original was processed normally,
  // its CTS is queued or in flight. Nothing to do.
  if (e.retry == 0) return;
  // A sender retransmission: our grant was lost (or is still in flight). If
  // the rendezvous is still pending here, re-issue the CTS under the current
  // epoch — if the original grant survives after all, the sender recognises
  // the duplicate and ignores one of them. If it is not pending, either the
  // receive was never posted (the original RTS still sits in the unexpected
  // queue; the grant goes out when the recv posts) or the transfer already
  // finished (the retransmission crossed our grant + the data). Drop it.
  auto it = rdv_in_.find({src, e.rdv_id});
  if (it == rdv_in_.end()) return;
  if (rec != nullptr) rec->metrics().counter("nmad.rdv.regrants").add(1);
  send_cts(src, e.rdv_id, it->second.epoch, it->second.req->span);
}

void Core::decay_rx_mix(GateState& g) const {
  const Time now = eng_.now();
  if (now > g.rdv_rx_t && !g.rdv_rx_by_rail.empty()) {
    const double f = std::exp(-(now - g.rdv_rx_t) / kMixDecayTau);
    for (double& w : g.rdv_rx_by_rail) w *= f;
  }
  g.rdv_rx_t = now;
}

std::vector<RailAd> Core::sample_rail_ads(int granting_src, std::uint64_t granting_rdv) const {
  const Time now = eng_.now();
  std::vector<RailAd> ads(drivers_.size());
  for (std::size_t r = 0; r < drivers_.size(); ++r) {
    ads[r].fabric_rail = drivers_[r].fabric_rail;
    const Time busy = fabric_.ingress_busy_until(my_node_, drivers_[r].fabric_rail);
    ads[r].busy_delta = busy > now ? busy - now : 0;
  }
  // Granted-but-unlanded inbound rendezvous bytes, attributed to rails by
  // each peer's observed *recent* arrival mix: the per-rail landing mass
  // decays exponentially (kMixDecayTau), so the attribution follows the
  // current landing rate — a rail that went quiet (died, got congested, or
  // lost the sender's favor) stops attracting backlog instead of being
  // pinned by cumulative history. The beta-proportional prior only fills
  // whatever share of kMixPriorBytes the decayed observation has not earned
  // yet. The rendezvous being granted is excluded — its bytes are exactly
  // what the sender is about to plan.
  for (const auto& [key, rin] : rdv_in_) {
    if (key.first == granting_src && key.second == granting_rdv) continue;
    const std::size_t outstanding = rin.req != nullptr ? rin.req->bytes_outstanding : 0;
    if (outstanding == 0) continue;
    double beta_sum = 0.0;
    for (const auto& rp : sampling_.rails()) beta_sum += rp.beta;
    auto git = gates_.find(key.first);
    double obs_f = 0.0;  // decay factor at read time (state stays const here)
    double obs_total = 0.0;
    if (git != gates_.end() && !git->second.rdv_rx_by_rail.empty()) {
      obs_f = std::exp(-(now - git->second.rdv_rx_t) / kMixDecayTau);
      for (double w : git->second.rdv_rx_by_rail) obs_total += w * obs_f;
    }
    const double prior_mass =
        std::max(0.0, static_cast<double>(kMixPriorBytes) - obs_total);
    std::vector<double> weight(drivers_.size(), 0.0);
    double total_w = 0.0;
    for (std::size_t r = 0; r < drivers_.size(); ++r) {
      double w = prior_mass * sampling_.rails()[r].beta / beta_sum;
      if (git != gates_.end() && r < git->second.rdv_rx_by_rail.size()) {
        w += git->second.rdv_rx_by_rail[r] * obs_f;
      }
      weight[r] = w;
      total_w += w;
    }
    if (total_w <= 0.0) continue;
    for (std::size_t r = 0; r < drivers_.size(); ++r) {
      ads[r].backlog_bytes +=
          static_cast<std::uint64_t>(static_cast<double>(outstanding) * weight[r] / total_w);
    }
  }
  return ads;
}

void Core::start_rdv_recv(int src, Request* req, std::uint64_t rdv_id, std::size_t total,
                          std::uint64_t sender_span) {
  NMX_ASSERT_MSG(total <= req->len, "rendezvous message overflows receive buffer");
  req->received = total;  // final size; arrival tracked via rdv_in bytes
  req->peer_span = sender_span;
  rdv_in_.emplace(std::make_pair(src, rdv_id), RdvIn{req});
  req->bytes_outstanding = total;  // bytes not yet landed

  // Grant: register the receive buffer (on-the-fly, uncached) and send CTS.
  Time reg = 0;
  if (any_rail_needs_registration()) reg = calib::ib_reg_cost(total);
  auto grant = [this, src, rdv_id, span = req->span] { send_cts(src, rdv_id, 0, span); };
  if (reg > 0) {
    eng_.schedule_in_checked(reg, grant);
  } else {
    grant();
  }
}

void Core::send_cts(int dst, std::uint64_t rdv_id, std::uint32_t epoch, std::uint64_t span) {
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->instant(eng_.now(), my_proc_, obs::Cat::RdvCts, 0, dst);
  }
  Entry cts;
  cts.kind = Entry::Kind::Cts;
  cts.dst_proc = dst;
  cts.rdv_id = rdv_id;
  cts.epoch = epoch;
  cts.span = span;
  // Receiver-directed flow control: advertise this end's per-rail ingress
  // occupancy and granted backlog so the sender's cost model sees both
  // ends of each rail. Sampled at grant time — by the time the CTS lands
  // the deltas have decayed, which the sender accounts for by anchoring
  // them at its own "now".
  if (cfg_.advertise_rdv_load) cts.rail_ads = sample_rail_ads(dst, rdv_id);
  enqueue(std::move(cts));
  kick();
}

void Core::handle_cts(int src, Entry& cts) {
  const std::uint64_t rdv_id = cts.rdv_id;
  auto it = rdv_out_.find(rdv_id);
  if (it == rdv_out_.end()) {
    // An id below the allocation watermark names a rendezvous that existed
    // and was retired — a late grant (wire duplicate, or a restart re-grant
    // that crossed the final data chunks). Ignore it. An id we never issued
    // is a protocol bug, faults or not.
    NMX_ASSERT_MSG(rdv_id < next_rdv_, "CTS for unknown rendezvous");
    if (obs::Recorder* rec = eng_.recorder()) {
      rec->metrics().counter("nmad.rdv.orphan_cts").add(1);
    }
    return;
  }
  Request* req = it->second;
  // The grant must come from the process the RTS was addressed to: rdv_ids
  // are sender-scoped, so a CTS echoing our id from anyone else is a
  // cross-wired grant — start sending and the data lands in the wrong
  // process's buffer. Fail loudly instead of trusting the id alone.
  NMX_ASSERT_MSG(src == req->peer,
                 "cross-wired CTS: grant from proc " + std::to_string(src) +
                     " for a rendezvous addressed to proc " + std::to_string(req->peer));

  if (req->cts_seen) {
    if (cts.epoch <= req->epoch) {
      // Same-epoch duplicate (wire fault, or a re-grant answering an RTS
      // retransmission that crossed the original grant): the data phase is
      // already running — queueing the payload twice would break the
      // exactly-once guarantee. Drop it.
      if (obs::Recorder* rec = eng_.recorder()) {
        rec->metrics().counter("nmad.rdv.dup_cts").add(1);
      }
      return;
    }
    // Newer epoch: the receiver restarted and lost its landing progress.
    // Drop every chunk still queued under the stale grant and replay the
    // data phase from byte 0; chunks already on a NIC drain and are
    // discarded at both ends via the epoch stamp.
    const std::size_t drained = strategy_->cancel_rdv(req->peer, rdv_id);
    if (obs::Recorder* rec = eng_.recorder()) {
      rec->metrics().counter("nmad.rdv.restart_replays").add(1);
      rec->metrics().counter("nmad.sched.cancel_drained_bytes").add(drained);
    }
    req->epoch = cts.epoch;
    start_rdv_data(req, cts);
    return;
  }
  req->cts_seen = true;
  req->epoch = cts.epoch;
  if (req->retry_timer != 0) {
    eng_.cancel(req->retry_timer);
    req->retry_timer = 0;
  }

  // The CTS closes the sender-side handshake span begun at the RTS post.
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->end(eng_.now(), my_proc_, obs::Cat::NmadRdv, req->rdv_span, req->len, req->peer);
    req->rdv_span = 0;
    rec->metrics()
        .histogram("nmad.rdv.handshake_us", {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000})
        .observe((eng_.now() - req->rdv_rts_t) * 1e6);
    if (!cts.rail_ads.empty()) {
      rec->metrics().counter("nmad.sched.cts_ads").add(1);
      for (const RailAd& ad : cts.rail_ads) {
        const std::string rail_label = "rail=" + std::to_string(ad.fabric_rail);
        const double busy_us = ad.busy_delta * 1e6;
        rec->metrics().gauge("nmad.sched.remote_busy_us", rail_label).set(busy_us);
        rec->metrics()
            .gauge("nmad.sched.remote_backlog_bytes", rail_label)
            .set(static_cast<double>(ad.backlog_bytes));
        rec->sample(eng_.now(), my_proc_, "nmad.sched.remote_busy_us." + rail_label, busy_us);
        rec->sample(eng_.now(), my_proc_, "nmad.sched.remote_backlog_bytes." + rail_label,
                    static_cast<double>(ad.backlog_bytes));
      }
    }
  }

  start_rdv_data(req, cts);
}

void Core::start_rdv_data(Request* req, Entry& cts) {
  req->bytes_outstanding = req->len;
  // A restart replay supersedes any (impossible in practice, see
  // handle_rdv_fin) earlier ack: the new epoch must earn its own fin.
  req->fin_seen = false;

  // Cost-model strategies carve the payload into chunks themselves, re-solving
  // the split per chunk as rails drain; hand them the whole payload unplanned,
  // along with the receiver's load advertisement so each re-solve folds in the
  // far end of every rail.
  if (strategy_->plans_rdv_chunks()) {
    Entry e;
    e.kind = Entry::Kind::RdvChunk;
    e.dst_proc = req->peer;
    e.rdv_id = req->rdv_id;
    e.offset = 0;
    e.rail = -1;  // unplanned
    e.epoch = req->epoch;
    e.bytes.assign(req->sbuf, req->sbuf + req->len);
    e.sreq = req;
    e.span = req->span;
    if (cfg_.advertise_rdv_load) e.rail_ads = std::move(cts.rail_ads);
    enqueue(std::move(e));
    kick();
    return;
  }

  // Plan the data chunks across rails (adaptive split for SplitBalance).
  const std::vector<std::size_t> shares = strategy_->plan_rdv(req->len);
  std::size_t offset = 0;
  for (std::size_t r = 0; r < shares.size(); ++r) {
    if (shares[r] == 0) continue;
    Entry e;
    e.kind = Entry::Kind::RdvChunk;
    e.dst_proc = req->peer;
    e.rdv_id = req->rdv_id;
    e.offset = offset;
    e.rail = static_cast<int>(r);
    e.epoch = req->epoch;
    e.bytes.assign(req->sbuf + offset, req->sbuf + offset + shares[r]);
    e.sreq = req;
    e.span = req->span;
    offset += shares[r];
    enqueue(std::move(e));
  }
  NMX_ASSERT(offset == req->len);
  kick();
}

void Core::handle_rdv_data(int src, int fabric_rail, Entry& e) {
  auto it = rdv_in_.find({src, e.rdv_id});
  if (it == rdv_in_.end() || e.epoch != it->second.epoch) {
    // A chunk answering a superseded grant (we restarted and re-granted
    // under a newer epoch), or one that landed after the replayed transfer
    // already finished. Only reachable under fault injection — on a healthy
    // run this is a protocol bug and stays a hard failure.
    NMX_ASSERT_MSG(cfg_.fault_plan != nullptr, "rendezvous data without matching grant");
    if (obs::Recorder* rec = eng_.recorder()) {
      rec->metrics().counter("nmad.rdv.stale_chunks").add(1);
    }
    return;
  }
  Request* req = it->second.req;
  // Feed the per-peer arrival mix that attributes granted-but-unlanded bytes
  // to rails in future CTS load advertisements. Decay-then-add keeps the mix
  // a landing-*rate* observation, not a cumulative history.
  GateState& g = gate(src);
  if (g.rdv_rx_by_rail.size() < drivers_.size()) g.rdv_rx_by_rail.resize(drivers_.size(), 0.0);
  decay_rx_mix(g);
  const int lr = local_rail_of(fabric_rail);
  if (lr >= 0) {
    g.rdv_rx_by_rail[static_cast<std::size_t>(lr)] += static_cast<double>(e.bytes.size());
  }
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->instant(eng_.now(), my_proc_, obs::Cat::RdvData, e.bytes.size(),
                 static_cast<std::int64_t>(e.span));
    if (e.span != 0) {
      rec->link(eng_.now(), my_proc_, obs::Cat::WireLand, e.span, e.bytes.size(), fabric_rail);
    }
    // Close the two-ended prediction loop: the sender stamped its predicted
    // arrival on the chunk; the receiver measures the miss at landing.
    if (e.pred_arrival > 0) {
      rec->metrics()
          .histogram("nmad.sched.remote_pred_error_us",
                     {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500})
          .observe(std::abs(eng_.now() - e.pred_arrival) * 1e6);
    }
  }
  NMX_ASSERT(e.offset + e.bytes.size() <= req->len);
  if (!e.bytes.empty()) std::memcpy(req->rbuf + e.offset, e.bytes.data(), e.bytes.size());
  NMX_ASSERT(req->bytes_outstanding >= e.bytes.size());
  req->bytes_outstanding -= e.bytes.size();
  if (req->bytes_outstanding == 0) {
    // Completion ack before the grant state goes away: the sender's
    // retirement is gated on this fin, so a restart re-grant can never race
    // an already-retired rendezvous (the orphan window).
    send_rdv_fin(src, e.rdv_id, req->received, it->second.epoch, req->span);
    rdv_in_.erase(it);
    complete(*req);
  }
}

void Core::send_rdv_fin(int dst, std::uint64_t rdv_id, std::size_t landed, std::uint32_t epoch,
                        std::uint64_t span) {
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->metrics().counter("nmad.rdv.fin_tx").add(1);
  }
  Entry fin;
  fin.kind = Entry::Kind::RdvFin;
  fin.dst_proc = dst;
  fin.rdv_id = rdv_id;
  fin.rdv_total = landed;  // the landed-byte ack (charged in kRdvFinHeader)
  fin.epoch = epoch;
  fin.span = span;
  enqueue(std::move(fin));
  kick();
}

void Core::handle_rdv_fin(Entry& e) {
  auto it = rdv_out_.find(e.rdv_id);
  if (it == rdv_out_.end()) {
    // Fins are never faulted, so a fin for a retired rendezvous should be
    // unreachable; tolerate it defensively (a duplicate would otherwise
    // crash the sender) but surface it.
    NMX_ASSERT_MSG(e.rdv_id < next_rdv_, "completion ack for unknown rendezvous");
    if (obs::Recorder* rec = eng_.recorder()) {
      rec->metrics().counter("nmad.rdv.stale_fins").add(1);
    }
    return;
  }
  Request* req = it->second;
  if (e.epoch != req->epoch) {
    // Ack of a superseded grant epoch. Cannot normally happen — a completed
    // grant is erased before a restart could re-grant it — but a fin that
    // crossed a newer re-grant must not retire the replayed transfer.
    if (obs::Recorder* rec = eng_.recorder()) {
      rec->metrics().counter("nmad.rdv.stale_fins").add(1);
    }
    return;
  }
  NMX_ASSERT_MSG(e.rdv_total == req->len, "completion ack does not cover the full payload");
  req->fin_seen = true;
  try_retire(req);
}

void Core::try_retire(Request* req) {
  if (!req->fin_seen || req->bytes_outstanding != 0 || req->inflight_notes != 0) return;
  // Every planned chunk must be gone from the strategy before the rendezvous
  // is retired — anything still queued here would leak into the per-rail
  // backlog accounting forever. Drain defensively and surface the leak
  // instead of silently corrupting the cost model.
  const std::size_t leaked = strategy_->cancel_rdv(req->peer, req->rdv_id);
  if (leaked > 0) {
    if (obs::Recorder* rec = eng_.recorder()) {
      rec->metrics().counter("nmad.sched.cancel_drained_bytes").add(leaked);
    }
  }
  rdv_out_.erase(req->rdv_id);
  complete(*req);
}

void Core::handle_rail_down(int fabric_rail, bool from_wire) {
  const int lr = local_rail_of(fabric_rail);
  if (lr < 0) return;  // this core does not drive the dead rail
  Driver& d = drivers_[static_cast<std::size_t>(lr)];
  if (d.dead) return;  // idempotent: local NIC report, then peer notifications
  d.dead = true;
  obs::Recorder* rec = eng_.recorder();
  if (rec != nullptr) {
    rec->metrics().counter("nmad.fault.rail_down", "rail=" + std::to_string(lr)).add(1);
  }

  // Displace everything queued on the dead rail and re-route it onto the
  // survivors: small entries re-enter the strategy unassigned (pick_rail now
  // excludes the dead rail), pre-planned rendezvous chunks are re-split
  // across the live rails.
  std::vector<Entry> displaced = strategy_->on_rail_down(lr);
  std::size_t rerouted_bytes = 0;
  for (Entry& e : displaced) {
    rerouted_bytes += e.wire_bytes();
    if (e.kind == Entry::Kind::RdvChunk) {
      const std::vector<std::size_t> shares = strategy_->plan_rdv(e.bytes.size());
      std::size_t off = 0;
      for (std::size_t r = 0; r < shares.size(); ++r) {
        if (shares[r] == 0) continue;
        Entry part;
        part.kind = Entry::Kind::RdvChunk;
        part.dst_proc = e.dst_proc;
        part.rdv_id = e.rdv_id;
        part.offset = e.offset + off;
        part.rail = static_cast<int>(r);
        part.epoch = e.epoch;
        part.sreq = e.sreq;
        part.span = e.span;
        part.bytes.assign(e.bytes.begin() + static_cast<std::ptrdiff_t>(off),
                          e.bytes.begin() + static_cast<std::ptrdiff_t>(off + shares[r]));
        off += shares[r];
        enqueue(std::move(part));
      }
      NMX_ASSERT(off == e.bytes.size());
    } else {
      enqueue(std::move(e));
    }
  }
  if (rec != nullptr && !displaced.empty()) {
    rec->metrics().counter("nmad.fault.rerouted_entries").add(displaced.size());
    rec->metrics().counter("nmad.fault.rerouted_bytes").add(rerouted_bytes);
  }

  // Notify the senders of our pending inbound rendezvous — they may have
  // chunks planned toward this rail. Redundant in the simulator (every core
  // observes the death synchronously through the FaultPlan) but kept honest:
  // the wire notification is the only signal a real remote peer would get.
  if (!from_wire) {
    std::set<int> peers;  // ordered: deterministic notification order
    for (const auto& [key, rin] : rdv_in_) peers.insert(key.first);
    for (int p : peers) {
      Entry e;
      e.kind = Entry::Kind::RailDown;
      e.dst_proc = p;
      e.down_rail = fabric_rail;
      enqueue(std::move(e));
    }
  }
  kick();
}

void Core::on_restart() {
  // Crash/restart of this process's receive side: all landing progress for
  // pending inbound rendezvous is lost. Bump each grant's epoch — in-flight
  // chunks of the old grant are discarded on arrival — reset the byte
  // bookkeeping to "nothing landed", and re-grant so the sender replays.
  obs::Recorder* rec = eng_.recorder();
  if (rec != nullptr) rec->metrics().counter("nmad.fault.restarts").add(1);
  for (auto& [key, rin] : rdv_in_) {
    ++rin.epoch;
    rin.req->bytes_outstanding = rin.req->received;  // the full total again
    if (rec != nullptr) rec->metrics().counter("nmad.rdv.restart_grants").add(1);
    send_cts(key.first, key.second, rin.epoch, rin.req->span);
  }
  // The observed per-peer arrival mix is landing-progress state too.
  // nmx-lint: allow(determinism) per-peer reset to identical fresh values; order cannot leak
  for (auto& [peer, g] : gates_) {
    g.rdv_rx_by_rail.clear();
    g.rdv_rx_t = eng_.now();
  }
  kick();
}

// --------------------------------------------------------------------------
// NIC-offloaded collectives (Yu/Buntinas/Graham/Panda model)
// --------------------------------------------------------------------------

namespace {
/// Combine op encoding shared with mpi::Transport::nic_coll: 0 sum, 1 prod,
/// 2 min, 3 max, 4 broadcast (the root's value wins; contributions gate only).
double nic_combine(int op, double a, double b) {
  switch (op) {
    case 1: return a * b;
    case 2: return std::min(a, b);
    case 3: return std::max(a, b);
    case 4: return a;  // broadcast: the locally posted value is kept
    default: return a + b;
  }
}
}  // namespace

void Core::nic_coll_post(std::uint64_t coll_id, int parent, std::vector<int> children,
                         double value, int op, std::function<void(double)> done) {
  NicColl& st = nic_colls_[coll_id];
  NMX_ASSERT_MSG(!st.posted, "NIC collective posted twice under one id");
  st.parent = parent;
  st.children = std::move(children);
  st.posted = true;
  st.op = op;
  st.done = std::move(done);
  // The local contribution is folded first so op 4 (broadcast) keeps it.
  st.acc = st.has_acc ? nic_combine(op, value, st.acc) : value;
  st.has_acc = true;
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->metrics().counter("nmad.coll.nic_posts").add(1);
  }
  nic_coll_maybe_up(coll_id, st);
}

void Core::nic_coll_rx(std::uint64_t id, double value, std::uint32_t ctl) {
  if ((ctl & Entry::kCollDown) != 0) {
    nic_coll_release(id, value);
    return;
  }
  NicColl& st = nic_colls_[id];
  const int op = static_cast<int>(ctl & Entry::kCollOpMask);
  st.op = op;  // arrivals may precede the local post; the ctl word carries op
  // Child contributions fold in as the second operand so op 4 keeps the
  // locally posted value regardless of arrival order.
  st.acc = st.has_acc ? nic_combine(op, st.acc, value) : value;
  st.has_acc = true;
  ++st.arrived;
  nic_coll_maybe_up(id, st);
}

void Core::nic_coll_maybe_up(std::uint64_t id, NicColl& st) {
  if (!st.posted || st.arrived < st.children.size()) return;
  if (st.parent >= 0) {
    nic_coll_send(st.parent, id, st.acc, static_cast<std::uint32_t>(st.op));
    return;  // state stays: the broadcast-down releases us
  }
  nic_coll_release(id, st.acc);
}

void Core::nic_coll_release(std::uint64_t id, double result) {
  auto it = nic_colls_.find(id);
  NMX_ASSERT_MSG(it != nic_colls_.end() && it->second.posted,
                 "NIC collective released without a local post");
  const std::uint32_t ctl = static_cast<std::uint32_t>(it->second.op) | Entry::kCollDown;
  for (int c : it->second.children) nic_coll_send(c, id, result, ctl);
  std::function<void(double)> done = std::move(it->second.done);
  nic_colls_.erase(it);
  if (done) done(result);
}

void Core::nic_coll_send(int dst, std::uint64_t id, double value, std::uint32_t ctl) {
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->metrics().counter("nmad.coll.nic_msgs").add(1);
  }
  if (fabric_.topology().node_of(dst) == my_node_) {
    // Co-located ranks share the node's NICs: the combine step between them
    // is NIC-internal — no wire, no egress occupancy. Delivered through the
    // router straight into the peer's NIC unit.
    WireMsg wm;
    wm.src_proc = my_proc_;
    wm.dst_proc = dst;
    Entry e;
    e.kind = Entry::Kind::CollCtl;
    e.dst_proc = dst;
    e.rdv_id = id;
    e.coll_value = value;
    e.coll_ctl = ctl;
    wm.entries.push_back(std::move(e));
    net::WirePacket pkt;
    pkt.src_node = my_node_;
    pkt.dst_node = my_node_;
    pkt.dst_proc = dst;
    pkt.rail = drivers_[0].fabric_rail;
    pkt.bytes = wm.wire_bytes();
    pkt.payload = std::move(wm);
    eng_.schedule_in_checked(kNicCollLoopback,
                             [this, bp = std::make_unique<net::WirePacket>(std::move(pkt))] {
                               router_.deliver_local(std::move(*bp));
                             });
    return;
  }
  Entry e;
  e.kind = Entry::Kind::CollCtl;
  e.dst_proc = dst;
  e.rdv_id = id;
  e.coll_value = value;
  e.coll_ctl = ctl;
  nic_txq_.push_back(std::move(e));
  drain_nic_txq();
}

void Core::drain_nic_txq() {
  while (!nic_txq_.empty()) {
    const std::size_t bytes = nic_txq_.front().wire_bytes();
    // Cost-model rail choice for the tree edge: earliest predicted egress
    // completion among live rails — queueing behind whatever the shared NIC
    // is already booked for, then the sampled egress transfer model. A dead
    // rail is skipped; a congested one loses the argmin.
    int best = -1;
    Time best_t = 0;
    for (std::size_t r = 0; r < drivers_.size(); ++r) {
      const Driver& d = drivers_[r];
      if (d.dead) continue;
      const Time t =
          std::max(eng_.now(), fabric_.egress_busy_until(my_node_, d.fabric_rail)) +
          sampling_.predict_egress(static_cast<int>(r), bytes);
      if (best < 0 || t < best_t) {
        best = static_cast<int>(r);
        best_t = t;
      }
    }
    NMX_ASSERT_MSG(best >= 0, "NIC collective with every rail dead");
    if (drivers_[static_cast<std::size_t>(best)].busy) return;  // its egress re-drains
    Entry e = std::move(nic_txq_.front());
    nic_txq_.pop_front();
    WireMsg wm;
    wm.src_proc = my_proc_;
    wm.dst_proc = e.dst_proc;
    wm.entries.push_back(std::move(e));
    submit(best, std::move(wm), /*nic_direct=*/true);
  }
}

void Core::complete(Request& r) {
  NMX_ASSERT_MSG(!r.completed, "request completed twice");
  r.completed = true;
  if (on_complete_) on_complete_(r);
}

}  // namespace nmx::nmad
