#include "nmad/core.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

namespace nmx::nmad {

namespace {
/// Pseudo-byte weight of the beta-proportional prior in the per-peer arrival
/// mix (sample_rail_ads): observed landings dominate once a peer has landed
/// more than this many rendezvous bytes.
constexpr std::size_t kMixPriorBytes = 256 * 1024;
}  // namespace

Core::Core(sim::Engine& eng, net::Fabric& fabric, net::ProcRouter& router, int my_proc,
           ExtendedConfig cfg)
    : eng_(eng),
      fabric_(fabric),
      my_proc_(my_proc),
      my_node_(fabric.topology().node_of(my_proc)),
      cfg_(cfg),
      sampling_(fabric, cfg.rails) {
  NMX_ASSERT(!cfg_.rails.empty());
  StrategyOptions opts;
  opts.max_aggregate = cfg_.max_aggregate;
  opts.min_split_chunk = cfg_.min_split_chunk;
  opts.rdv_quantum = cfg_.rdv_quantum;
  opts.adaptive_split = cfg_.adaptive_split;
  strategy_ = make_strategy(cfg_.strategy, sampling_, opts);
  for (int fr : cfg_.rails) drivers_.push_back(Driver{fr, false});
  // Live load feed for cost-model strategies: the engine clock plus each
  // local rail's NIC egress occupancy, straight from the fabric (includes
  // co-located processes sharing the node's NICs).
  strategy_->set_load_probe([this] {
    RailLoad l;
    l.now = eng_.now();
    l.busy_until.reserve(drivers_.size());
    l.ingress_busy_until.reserve(drivers_.size());
    for (const Driver& d : drivers_) {
      l.busy_until.push_back(fabric_.egress_busy_until(my_node_, d.fabric_rail));
      l.ingress_busy_until.push_back(fabric_.ingress_busy_until(my_node_, d.fabric_rail));
    }
    return l;
  });
  router.register_proc(my_proc_, [this](net::WirePacket&& pkt) { rx_wire(std::move(pkt)); });
}

Request* Core::new_request(Request r) {
  live_.push_back(std::move(r));
  auto it = std::prev(live_.end());
  it->self = it;
  return &*it;
}

Core::GateState& Core::gate(int peer) { return gates_[peer]; }

bool Core::any_rail_needs_registration() const {
  for (const Driver& d : drivers_) {
    if (fabric_.profile(d.fabric_rail).needs_registration) return true;
  }
  return false;
}

int Core::local_rail_of(int fabric_rail) const {
  for (std::size_t r = 0; r < drivers_.size(); ++r) {
    if (drivers_[r].fabric_rail == fabric_rail) return static_cast<int>(r);
  }
  return -1;
}

// --------------------------------------------------------------------------
// nm_sr interface
// --------------------------------------------------------------------------

Request* Core::isend(int dst, Tag tag, const void* buf, std::size_t len, void* user_ctx,
                     std::uint64_t span) {
  NMX_ASSERT_MSG(dst != my_proc_, "NewMadeleine handles inter-node traffic only");
  Request* req = new_request([&] {
    Request r;
    r.kind = Request::Kind::Send;
    r.peer = dst;
    r.tag = tag;
    r.len = len;
    r.sbuf = static_cast<const std::byte*>(buf);
    r.user_ctx = user_ctx;
    r.span = span;
    return r;
  }());

  GateState& g = gate(dst);
  const std::uint32_t seq = g.send_seq[tag]++;
  obs::Recorder* rec = eng_.recorder();
  Entry e;
  e.dst_proc = dst;
  e.tag = tag;
  e.seq = seq;
  e.span = span;
  if (len <= cfg_.rdv_threshold) {
    e.kind = Entry::Kind::Eager;
    if (len > 0) {
      e.bytes.resize(len);
      std::memcpy(e.bytes.data(), buf, len);
    }
    e.sreq = req;
    if (rec != nullptr) {
      rec->metrics().counter("nmad.eager.count").add(1);
      rec->metrics().counter("nmad.eager.bytes").add(len);
    }
  } else {
    // Internal rendezvous (§2.1.3): RTS now, data after the CTS grant. The
    // NmadRdv span covers the handshake: RTS post -> CTS back at the sender.
    const std::uint64_t id = next_rdv_++;
    req->rdv_id = id;
    req->rdv_rts_t = eng_.now();
    rdv_out_.emplace(id, req);
    ++rdv_started_;
    e.kind = Entry::Kind::Rts;
    e.rdv_id = id;
    e.rdv_total = len;
    if (rec != nullptr) {
      req->rdv_span = rec->begin(eng_.now(), my_proc_, obs::Cat::NmadRdv, len, dst);
      rec->instant(eng_.now(), my_proc_, obs::Cat::RdvRts, len, dst);
      rec->metrics().counter("nmad.rdv.count").add(1);
      rec->metrics().counter("nmad.rdv.bytes").add(len);
    }
  }
  enqueue(std::move(e));
  kick();
  return req;
}

Request* Core::irecv(int src, Tag tag, void* buf, std::size_t len, void* user_ctx,
                     std::uint64_t span) {
  NMX_ASSERT_MSG(src != my_proc_, "NewMadeleine handles inter-node traffic only");
  Request* req = new_request([&] {
    Request r;
    r.kind = Request::Kind::Recv;
    r.peer = src;
    r.tag = tag;
    r.len = len;
    r.rbuf = static_cast<std::byte*>(buf);
    r.user_ctx = user_ctx;
    r.span = span;
    return r;
  }());

  GateState& g = gate(src);
  auto& unex = g.unexpected[tag];
  if (!unex.empty()) {
    Unexpected u = std::move(unex.front());
    unex.pop_front();
    --unexpected_total_;
    if (obs::Recorder* rec = eng_.recorder()) {
      rec->metrics().gauge("nmad.unexpected.depth").set(static_cast<double>(unexpected_total_));
    }
    if (!u.rdv) {
      NMX_ASSERT_MSG(u.payload.size() <= req->len, "eager message overflows receive buffer");
      if (!u.payload.empty()) std::memcpy(req->rbuf, u.payload.data(), u.payload.size());
      req->received = u.payload.size();
      req->peer_span = u.span;
      complete(*req);
    } else {
      start_rdv_recv(src, req, u.rdv_id, u.len, u.span);
    }
    return req;
  }
  g.posted[tag].push_back(req);
  return req;
}

void Core::release(Request* r) {
  NMX_ASSERT_MSG(r->completed, "requests cannot be cancelled, only completed ones released");
  live_.erase(r->self);
}

std::optional<ProbeInfo> Core::probe(std::optional<int> src, TagSelector sel) const {
  const Unexpected* best = nullptr;
  ProbeInfo info;
  auto consider = [&](int gsrc, Tag gtag, const std::deque<Unexpected>& q) {
    if (q.empty() || !sel.matches(gtag)) return;
    const Unexpected& u = q.front();
    if (best == nullptr || u.arrival < best->arrival) {
      best = &u;
      info.src = gsrc;
      info.tag = gtag;
      info.len = u.len;
    }
  };
  for (const auto& [gsrc, g] : gates_) {
    if (src && *src != gsrc) continue;
    for (const auto& [gtag, q] : g.unexpected) consider(gsrc, gtag, q);
  }
  if (!best) return std::nullopt;
  return info;
}

// --------------------------------------------------------------------------
// progress engine
// --------------------------------------------------------------------------

void Core::enter_progress() {
  ++progress_depth_;
  progress();
}

void Core::leave_progress() {
  NMX_ASSERT(progress_depth_ > 0);
  --progress_depth_;
}

void Core::progress() {
  drain_rx();
  try_flush();
}

void Core::enqueue(Entry e) {
  ++strat_depth_;
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->instant(eng_.now(), my_proc_, obs::Cat::StratEnqueue, e.wire_bytes(),
                 static_cast<std::int64_t>(e.kind));
    rec->metrics().gauge("nmad.strategy.queue_depth").set(static_cast<double>(strat_depth_));
  }
  strategy_->enqueue(std::move(e));
  sample_sched();
}

void Core::sample_sched() {
  obs::Recorder* rec = eng_.recorder();
  if (rec == nullptr) return;
  const Time now = eng_.now();
  rec->sample(now, my_proc_, "nmad.strategy.queue_depth", static_cast<double>(strat_depth_));
  for (std::size_t r = 0; r < drivers_.size(); ++r) {
    const std::string rail_label = "rail=" + std::to_string(r);
    const auto backlog = static_cast<double>(strategy_->backlog_bytes(static_cast<int>(r)));
    rec->metrics().gauge("nmad.sched.backlog_bytes", rail_label).set(backlog);
    rec->metrics()
        .gauge("nmad.sched.steals", rail_label)
        .set(static_cast<double>(strategy_->steals(static_cast<int>(r))));
    rec->sample(now, my_proc_, "nmad.sched.backlog_bytes." + rail_label, backlog);
  }
  rec->metrics()
      .gauge("nmad.sched.rdv_backlog_bytes")
      .set(static_cast<double>(strategy_->rdv_backlog_bytes()));
}

void Core::kick() {
  if (progress_allowed()) {
    try_flush();
  } else {
    pending_flush_ = true;
    notify_async();
  }
}

void Core::try_flush() {
  pending_flush_ = false;
  for (std::size_t r = 0; r < drivers_.size(); ++r) {
    Driver& d = drivers_[r];
    while (!d.busy) {
      auto wm = strategy_->next(static_cast<int>(r), my_proc_);
      if (!wm) break;
      submit(static_cast<int>(r), std::move(*wm));
    }
  }
}

void Core::submit(int local_rail, WireMsg wm) {
  Driver& d = drivers_[static_cast<std::size_t>(local_rail)];
  NMX_ASSERT(!d.busy);
  d.busy = true;

  // Software cost before the NIC sees the packet: generic-layer injection,
  // eager copy into the packet wrapper, and on-the-fly registration of
  // rendezvous payload (NewMadeleine has no registration cache — §4.1.1).
  Time pre = cfg_.inject_overhead();
  pre += calib::copy_cost(wm.copied_bytes());
  const net::NicProfile& prof = fabric_.profile(d.fabric_rail);
  if (prof.needs_registration && wm.rdv_bytes() > 0) {
    pre += calib::ib_reg_cost(wm.rdv_bytes());
  }

  std::vector<Note> notes;
  for (const Entry& e : wm.entries) {
    if (e.sreq != nullptr) notes.push_back(Note{e.sreq, e.kind, e.bytes.size()});
  }

  const int dst = wm.dst_proc;
  const std::size_t bytes = wm.wire_bytes();
  // Cost-model prediction of this packet's egress completion: software
  // pre-cost, then queueing behind whatever the NIC is already booked for,
  // then the sampled *egress* transfer model (alpha_tx — the one-way predict()
  // includes wire latency the sender never waits for). Compared against
  // reality at on_egress.
  d.tx_pred = std::max(eng_.now() + pre, fabric_.egress_busy_until(my_node_, d.fabric_rail)) +
              sampling_.predict_egress(local_rail, bytes);
  strat_depth_ -= std::min(strat_depth_, wm.entries.size());
  if (obs::Recorder* rec = eng_.recorder()) {
    d.tx_span = rec->begin(eng_.now(), my_proc_, obs::Cat::NmadTx, bytes, local_rail);
    d.tx_begin = eng_.now();
    rec->metrics().gauge("nmad.strategy.queue_depth").set(static_cast<double>(strat_depth_));
    const std::string rail_label = "rail=" + std::to_string(local_rail);
    rec->metrics().counter("nmad.rail.tx_packets", rail_label).add(1);
    rec->metrics().counter("nmad.rail.tx_bytes", rail_label).add(bytes);
  }
  eng_.schedule_in(pre, [this, local_rail, dst, bytes, wm = std::move(wm),
                         notes = std::move(notes)]() mutable {
    net::WirePacket pkt;
    pkt.src_node = my_node_;
    pkt.dst_node = fabric_.topology().node_of(dst);
    pkt.dst_proc = dst;
    pkt.rail = drivers_[static_cast<std::size_t>(local_rail)].fabric_rail;
    pkt.bytes = bytes;
    pkt.payload = std::move(wm);
    const Time egress = fabric_.transmit(std::move(pkt));
    eng_.schedule(egress, [this, local_rail, notes = std::move(notes)]() mutable {
      on_egress(local_rail, std::move(notes));
    });
  });
}

void Core::on_egress(int local_rail, std::vector<Note> notes) {
  Driver& d = drivers_[static_cast<std::size_t>(local_rail)];
  d.busy = false;
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->end(eng_.now(), my_proc_, obs::Cat::NmadTx, d.tx_span, 0, local_rail);
    rec->metrics()
        .counter("nmad.rail.busy_ns", "rail=" + std::to_string(local_rail))
        .add(static_cast<std::uint64_t>((eng_.now() - d.tx_begin) * 1e9));
    // Cost-model accuracy: |predicted - actual| egress completion. With the
    // egress-fitted alpha_tx the wire-latency offset is gone; residual error
    // comes from cross-process NIC contention the predictor cannot see.
    rec->metrics()
        .histogram("nmad.sched.pred_error_us", {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500})
        .observe(std::abs(eng_.now() - d.tx_pred) * 1e6);
    d.tx_span = 0;
  }
  for (const Note& n : notes) {
    if (n.kind == Entry::Kind::Eager) {
      complete(*n.sreq);
    } else if (n.kind == Entry::Kind::RdvChunk) {
      NMX_ASSERT(n.sreq->bytes_outstanding >= n.bytes);
      n.sreq->bytes_outstanding -= n.bytes;
      if (n.sreq->bytes_outstanding == 0) {
        // Every planned chunk must be gone from the strategy before the
        // rendezvous is retired — anything still queued here would leak into
        // the per-rail backlog accounting forever. Drain defensively and
        // surface the leak instead of silently corrupting the cost model.
        const std::size_t leaked = strategy_->cancel_rdv(n.sreq->peer, n.sreq->rdv_id);
        if (leaked > 0) {
          if (obs::Recorder* rec = eng_.recorder()) {
            rec->metrics().counter("nmad.sched.cancel_drained_bytes").add(leaked);
          }
        }
        rdv_out_.erase(n.sreq->rdv_id);
        complete(*n.sreq);
      }
    }
  }
  sample_sched();
  if (strategy_->pending()) kick();
}

void Core::notify_async() {
  if (async_notifier_) async_notifier_();
}

// --------------------------------------------------------------------------
// receive path
// --------------------------------------------------------------------------

void Core::rx_wire(net::WirePacket&& pkt) {
  pending_rx_.push_back(RxItem{pkt.rail, std::move(std::any_cast<WireMsg&>(pkt.payload))});
  if (progress_allowed()) {
    drain_rx();
  } else {
    notify_async();
  }
}

void Core::drain_rx() {
  while (!pending_rx_.empty()) {
    RxItem it = std::move(pending_rx_.front());
    pending_rx_.pop_front();
    // Charge the generic-layer receive cost (matching, completion dispatch,
    // PIOMan locking when enabled) per wire message.
    eng_.schedule_in(cfg_.deliver_overhead(), [this, it = std::move(it)]() mutable {
      handle_wire(it.fabric_rail, std::move(it.msg));
    });
  }
}

void Core::handle_wire(int fabric_rail, WireMsg m) {
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->instant(eng_.now(), my_proc_, obs::Cat::NmadRx, m.wire_bytes(), m.src_proc);
    rec->metrics().counter("nmad.rx.msgs").add(1);
    rec->metrics().counter("nmad.rx.bytes").add(m.wire_bytes());
  }
  const int src = m.src_proc;
  for (Entry& e : m.entries) {
    switch (e.kind) {
      case Entry::Kind::Eager:
      case Entry::Kind::Rts:
        ingest_ordered(src, std::move(e), fabric_rail);
        break;
      case Entry::Kind::Cts:
        handle_cts(src, e);
        break;
      case Entry::Kind::RdvChunk:
        handle_rdv_data(src, fabric_rail, e);
        break;
    }
  }
}

void Core::ingest_ordered(int src, Entry e, int fabric_rail) {
  GateState& g = gate(src);
  std::uint32_t& expected = g.recv_seq[e.tag];
  if (e.seq != expected) {
    // Arrived ahead of an in-flight predecessor (possible across rails);
    // stash until its turn to preserve MPI matching order.
    const Tag tag = e.tag;
    const std::uint32_t seq = e.seq;
    g.out_of_order.emplace(std::make_pair(tag, seq), PendingIngest{std::move(e), src, fabric_rail});
    return;
  }
  ++expected;
  ingest(src, e, fabric_rail);
  // Drain any stashed successors that are now in order.
  for (;;) {
    auto it = g.out_of_order.find({e.tag, g.recv_seq[e.tag]});
    if (it == g.out_of_order.end()) break;
    Entry next = std::move(it->second.entry);
    const int next_rail = it->second.fabric_rail;
    g.out_of_order.erase(it);
    ++g.recv_seq[next.tag];
    ingest(src, next, next_rail);
  }
}

void Core::ingest(int src, Entry& e, int fabric_rail) {
  if (e.kind == Entry::Kind::Eager) {
    deliver_eager(src, e, fabric_rail);
  } else {
    handle_rts(src, e);
  }
}

void Core::deliver_eager(int src, Entry& e, int fabric_rail) {
  // Landing link for the critical-path analyzer: last byte of this eager
  // entry is on the receiver, on `fabric_rail`, named by the sender's span.
  if (obs::Recorder* rec = eng_.recorder()) {
    if (e.span != 0) {
      rec->link(eng_.now(), my_proc_, obs::Cat::WireLand, e.span, e.bytes.size(), fabric_rail);
    }
  }
  GateState& g = gate(src);
  auto& posted = g.posted[e.tag];
  if (!posted.empty()) {
    Request* req = posted.front();
    posted.pop_front();
    NMX_ASSERT_MSG(e.bytes.size() <= req->len, "eager message overflows receive buffer");
    if (!e.bytes.empty()) std::memcpy(req->rbuf, e.bytes.data(), e.bytes.size());
    req->received = e.bytes.size();
    req->peer_span = e.span;
    complete(*req);
    return;
  }
  const std::size_t len = e.bytes.size();
  Unexpected u;
  u.arrival = arrival_counter_++;
  u.rdv = false;
  u.len = len;
  u.span = e.span;
  u.payload = std::move(e.bytes);
  g.unexpected[e.tag].push_back(std::move(u));
  ++unexpected_total_;
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->instant(eng_.now(), my_proc_, obs::Cat::Unexpected, len, src);
    rec->metrics().gauge("nmad.unexpected.depth").set(static_cast<double>(unexpected_total_));
  }
  if (on_unexpected_) on_unexpected_(ProbeInfo{src, e.tag, len});
}

void Core::handle_rts(int src, Entry& e) {
  GateState& g = gate(src);
  auto& posted = g.posted[e.tag];
  if (!posted.empty()) {
    Request* req = posted.front();
    posted.pop_front();
    start_rdv_recv(src, req, e.rdv_id, e.rdv_total, e.span);
    return;
  }
  Unexpected u;
  u.arrival = arrival_counter_++;
  u.rdv = true;
  u.len = e.rdv_total;
  u.rdv_id = e.rdv_id;
  u.span = e.span;
  g.unexpected[e.tag].push_back(std::move(u));
  ++unexpected_total_;
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->instant(eng_.now(), my_proc_, obs::Cat::Unexpected, e.rdv_total, src);
    rec->metrics().gauge("nmad.unexpected.depth").set(static_cast<double>(unexpected_total_));
  }
  if (on_unexpected_) on_unexpected_(ProbeInfo{src, e.tag, e.rdv_total});
}

std::vector<RailAd> Core::sample_rail_ads(int granting_src, std::uint64_t granting_rdv) const {
  const Time now = eng_.now();
  std::vector<RailAd> ads(drivers_.size());
  for (std::size_t r = 0; r < drivers_.size(); ++r) {
    ads[r].fabric_rail = drivers_[r].fabric_rail;
    const Time busy = fabric_.ingress_busy_until(my_node_, drivers_[r].fabric_rail);
    ads[r].busy_delta = busy > now ? busy - now : 0;
  }
  // Granted-but-unlanded inbound rendezvous bytes, attributed to rails by
  // each peer's observed arrival mix (beta-proportional prior until enough
  // bytes have landed to trust the observation). The rendezvous being granted
  // is excluded — its bytes are exactly what the sender is about to plan.
  for (const auto& [key, rin] : rdv_in_) {
    if (key.first == granting_src && key.second == granting_rdv) continue;
    const std::size_t outstanding = rin.req != nullptr ? rin.req->bytes_outstanding : 0;
    if (outstanding == 0) continue;
    double beta_sum = 0.0;
    for (const auto& rp : sampling_.rails()) beta_sum += rp.beta;
    std::vector<double> weight(drivers_.size(), 0.0);
    double total_w = 0.0;
    auto git = gates_.find(key.first);
    for (std::size_t r = 0; r < drivers_.size(); ++r) {
      // Pseudo-bytes: the prior pretends kMixPriorBytes already landed in
      // bandwidth proportion, so one early chunk cannot pin the whole mix.
      double w = static_cast<double>(kMixPriorBytes) * sampling_.rails()[r].beta / beta_sum;
      if (git != gates_.end() && r < git->second.rdv_rx_by_rail.size()) {
        w += static_cast<double>(git->second.rdv_rx_by_rail[r]);
      }
      weight[r] = w;
      total_w += w;
    }
    if (total_w <= 0.0) continue;
    for (std::size_t r = 0; r < drivers_.size(); ++r) {
      ads[r].backlog_bytes +=
          static_cast<std::uint64_t>(static_cast<double>(outstanding) * weight[r] / total_w);
    }
  }
  return ads;
}

void Core::start_rdv_recv(int src, Request* req, std::uint64_t rdv_id, std::size_t total,
                          std::uint64_t sender_span) {
  NMX_ASSERT_MSG(total <= req->len, "rendezvous message overflows receive buffer");
  req->received = total;  // final size; arrival tracked via rdv_in bytes
  req->peer_span = sender_span;
  rdv_in_.emplace(std::make_pair(src, rdv_id), RdvIn{req});
  req->bytes_outstanding = total;  // bytes not yet landed

  // Grant: register the receive buffer (on-the-fly, uncached) and send CTS.
  Time reg = 0;
  if (any_rail_needs_registration()) reg = calib::ib_reg_cost(total);
  auto send_cts = [this, src, rdv_id, span = req->span] {
    if (obs::Recorder* rec = eng_.recorder()) {
      rec->instant(eng_.now(), my_proc_, obs::Cat::RdvCts, 0, src);
    }
    Entry cts;
    cts.kind = Entry::Kind::Cts;
    cts.dst_proc = src;
    cts.rdv_id = rdv_id;
    cts.span = span;
    // Receiver-directed flow control: advertise this end's per-rail ingress
    // occupancy and granted backlog so the sender's cost model sees both
    // ends of each rail. Sampled at grant time — by the time the CTS lands
    // the deltas have decayed, which the sender accounts for by anchoring
    // them at its own "now".
    if (cfg_.advertise_rdv_load) cts.rail_ads = sample_rail_ads(src, rdv_id);
    enqueue(std::move(cts));
    kick();
  };
  if (reg > 0) {
    eng_.schedule_in(reg, send_cts);
  } else {
    send_cts();
  }
}

void Core::handle_cts(int src, Entry& cts) {
  const std::uint64_t rdv_id = cts.rdv_id;
  auto it = rdv_out_.find(rdv_id);
  NMX_ASSERT_MSG(it != rdv_out_.end(), "CTS for unknown rendezvous");
  Request* req = it->second;
  // The grant must come from the process the RTS was addressed to: rdv_ids
  // are sender-scoped, so a CTS echoing our id from anyone else is a
  // cross-wired grant — start sending and the data lands in the wrong
  // process's buffer. Fail loudly instead of trusting the id alone.
  NMX_ASSERT_MSG(src == req->peer,
                 "cross-wired CTS: grant from proc " + std::to_string(src) +
                     " for a rendezvous addressed to proc " + std::to_string(req->peer));
  NMX_ASSERT_MSG(!req->cts_seen,
                 "duplicate CTS for rendezvous " + std::to_string(rdv_id) +
                     " (payload would be queued twice)");
  req->cts_seen = true;

  // The CTS closes the sender-side handshake span begun at the RTS post.
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->end(eng_.now(), my_proc_, obs::Cat::NmadRdv, req->rdv_span, req->len, req->peer);
    req->rdv_span = 0;
    rec->metrics()
        .histogram("nmad.rdv.handshake_us", {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000})
        .observe((eng_.now() - req->rdv_rts_t) * 1e6);
    if (!cts.rail_ads.empty()) {
      rec->metrics().counter("nmad.sched.cts_ads").add(1);
      for (const RailAd& ad : cts.rail_ads) {
        const std::string rail_label = "rail=" + std::to_string(ad.fabric_rail);
        const double busy_us = ad.busy_delta * 1e6;
        rec->metrics().gauge("nmad.sched.remote_busy_us", rail_label).set(busy_us);
        rec->metrics()
            .gauge("nmad.sched.remote_backlog_bytes", rail_label)
            .set(static_cast<double>(ad.backlog_bytes));
        rec->sample(eng_.now(), my_proc_, "nmad.sched.remote_busy_us." + rail_label, busy_us);
        rec->sample(eng_.now(), my_proc_, "nmad.sched.remote_backlog_bytes." + rail_label,
                    static_cast<double>(ad.backlog_bytes));
      }
    }
  }

  req->bytes_outstanding = req->len;

  // Cost-model strategies carve the payload into chunks themselves, re-solving
  // the split per chunk as rails drain; hand them the whole payload unplanned,
  // along with the receiver's load advertisement so each re-solve folds in the
  // far end of every rail.
  if (strategy_->plans_rdv_chunks()) {
    Entry e;
    e.kind = Entry::Kind::RdvChunk;
    e.dst_proc = req->peer;
    e.rdv_id = rdv_id;
    e.offset = 0;
    e.rail = -1;  // unplanned
    e.bytes.assign(req->sbuf, req->sbuf + req->len);
    e.sreq = req;
    e.span = req->span;
    if (cfg_.advertise_rdv_load) e.rail_ads = std::move(cts.rail_ads);
    enqueue(std::move(e));
    kick();
    return;
  }

  // Plan the data chunks across rails (adaptive split for SplitBalance).
  const std::vector<std::size_t> shares = strategy_->plan_rdv(req->len);
  std::size_t offset = 0;
  for (std::size_t r = 0; r < shares.size(); ++r) {
    if (shares[r] == 0) continue;
    Entry e;
    e.kind = Entry::Kind::RdvChunk;
    e.dst_proc = req->peer;
    e.rdv_id = rdv_id;
    e.offset = offset;
    e.rail = static_cast<int>(r);
    e.bytes.assign(req->sbuf + offset, req->sbuf + offset + shares[r]);
    e.sreq = req;
    e.span = req->span;
    offset += shares[r];
    enqueue(std::move(e));
  }
  NMX_ASSERT(offset == req->len);
  kick();
}

void Core::handle_rdv_data(int src, int fabric_rail, Entry& e) {
  auto it = rdv_in_.find({src, e.rdv_id});
  NMX_ASSERT_MSG(it != rdv_in_.end(), "rendezvous data without matching grant");
  Request* req = it->second.req;
  // Feed the per-peer arrival mix that attributes granted-but-unlanded bytes
  // to rails in future CTS load advertisements.
  GateState& g = gate(src);
  if (g.rdv_rx_by_rail.size() < drivers_.size()) g.rdv_rx_by_rail.resize(drivers_.size(), 0);
  const int lr = local_rail_of(fabric_rail);
  if (lr >= 0) g.rdv_rx_by_rail[static_cast<std::size_t>(lr)] += e.bytes.size();
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->instant(eng_.now(), my_proc_, obs::Cat::RdvData, e.bytes.size(),
                 static_cast<std::int64_t>(e.span));
    if (e.span != 0) {
      rec->link(eng_.now(), my_proc_, obs::Cat::WireLand, e.span, e.bytes.size(), fabric_rail);
    }
    // Close the two-ended prediction loop: the sender stamped its predicted
    // arrival on the chunk; the receiver measures the miss at landing.
    if (e.pred_arrival > 0) {
      rec->metrics()
          .histogram("nmad.sched.remote_pred_error_us",
                     {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500})
          .observe(std::abs(eng_.now() - e.pred_arrival) * 1e6);
    }
  }
  NMX_ASSERT(e.offset + e.bytes.size() <= req->len);
  if (!e.bytes.empty()) std::memcpy(req->rbuf + e.offset, e.bytes.data(), e.bytes.size());
  NMX_ASSERT(req->bytes_outstanding >= e.bytes.size());
  req->bytes_outstanding -= e.bytes.size();
  if (req->bytes_outstanding == 0) {
    rdv_in_.erase(it);
    complete(*req);
  }
}

void Core::complete(Request& r) {
  NMX_ASSERT_MSG(!r.completed, "request completed twice");
  r.completed = true;
  if (on_complete_) on_complete_(r);
}

}  // namespace nmx::nmad
