// Network sampling and adaptive multirail splitting.
//
// "A network sampling mechanism is used to compute an adaptive split ratio
// tailored to fit each available networks' abilities" — §2.2, citing Aumage,
// Brunet, Mercier, Namyst (HCW 2007). Real NewMadeleine runs probe transfers
// at install time and stores per-size timings; we fit the same linear model
// (alpha + len/beta) from two probe sizes measured on the idle fabric.
//
// The split solves: distribute `len` bytes over rails so all rails finish
// simultaneously:  share_r = beta_r * (T - alpha_r)  with  sum(share) = len.
// Rails whose share would be below `min_chunk` are dropped and the remainder
// re-balanced (sending a sliver on a slow rail costs more latency than it
// saves bandwidth).
//
// The load-aware generalization (split_with_ready) lets each rail start at a
// different time — its current backlog — and solves for equal *finish* times
// instead:  share_r = beta_r * (T - ready_r - alpha_r). A rail busy with
// other traffic behaves exactly like a rail with that much extra latency, so
// the same candidate-pruning solver covers both.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "net/fabric.hpp"

namespace nmx::nmad {

struct RailPerf {
  int fabric_rail = 0;   ///< rail index in the fabric topology
  Time alpha = 0;        ///< fitted per-message latency (one-way, incl. wire)
  Bandwidth beta = 0;    ///< fitted bandwidth (bytes/s)
  /// Fitted per-message *egress* latency: the share of alpha the sending NIC
  /// actually holds the buffer for (excludes wire propagation, which overlaps
  /// with the next submission). Negative means "not probed" — the vector
  /// constructor then falls back to alpha, preserving the old estimator.
  Time alpha_tx = -1;
};

class Sampling {
 public:
  /// Probe every rail in `rails` (fabric rail indices) on the idle fabric.
  Sampling(const net::Fabric& fabric, const std::vector<int>& rails);

  /// Construct from externally supplied measurements (tests, ablations).
  explicit Sampling(std::vector<RailPerf> rails);

  const std::vector<RailPerf>& rails() const { return rails_; }
  std::size_t num_rails() const { return rails_.size(); }

  /// Local index of the lowest-latency rail — where small messages go
  /// ("choose the fastest network for small messages", §4.1.1).
  int fastest() const { return fastest_; }

  /// Predicted uncontended one-way time for `len` bytes on local rail `r`.
  Time predict(int r, std::size_t len) const;

  /// Predicted uncontended *egress* time for `len` bytes on local rail `r` —
  /// how long the sending NIC is busy, i.e. what Fabric::transmit's return
  /// value advances by on an idle rail. This is the right estimator for
  /// tx-completion bookkeeping (Core's tx_pred): using the one-way predict()
  /// there over-estimates by the wire-latency share and shows up as a
  /// systematic offset in the nmad.sched.pred_error_us histogram.
  Time predict_egress(int r, std::size_t len) const;

  /// Predicted completion time for `len` bytes on local rail `r` when the
  /// rail cannot start before `ready` (backlog ahead of this transfer).
  Time completion(int r, std::size_t len, Time ready) const;

  /// Byte share per local rail for a rendezvous of `len` bytes. Shares sum
  /// to exactly `len`; rails not worth using get 0.
  std::vector<std::size_t> split(std::size_t len, std::size_t min_chunk) const;

  /// Load-aware split: rail `r` cannot start before `ready[r]` (same time
  /// origin for every rail; zeros reproduce the idle-fabric split except
  /// that small payloads go to the earliest-*completing* rail rather than
  /// the lowest-latency one). Shares sum to exactly `len`.
  std::vector<std::size_t> split_with_ready(std::size_t len, std::size_t min_chunk,
                                            const std::vector<Time>& ready) const;

  /// Two-ended split: rail `r` cannot start before the *later* of the local
  /// egress ready time `local[r]` and the receiver-advertised ingress ready
  /// time `remote[r]` (both relative to now). A rail whose ingress is booked
  /// at the far end behaves exactly like a locally backlogged rail — the
  /// element-wise max folds both ends into one equal-finish solve. With
  /// all-zero `remote` this degenerates to split_with_ready (the one-ended
  /// model).
  std::vector<std::size_t> split_two_ended(std::size_t len, std::size_t min_chunk,
                                           const std::vector<Time>& local,
                                           const std::vector<Time>& remote) const;

  /// Fixed even split over all rails — the naive policy the adaptive ratio
  /// is compared against in bench/abl_splitratio.
  std::vector<std::size_t> split_even(std::size_t len) const;

  /// split() restricted to the rails flagged live. Dead rails are modelled
  /// as infinitely backlogged, so the equal-finish solver prunes them and
  /// the unsplittable-payload path picks the fastest *live* rail.
  std::vector<std::size_t> split_live(std::size_t len, std::size_t min_chunk,
                                      const std::vector<bool>& live) const;

  /// Lowest-latency rail among those flagged live (fastest() when all are).
  int fastest_live(const std::vector<bool>& live) const;

  /// Feed one measured egress occupancy (how long the NIC held the buffer
  /// for `bytes` wire bytes) back into the model. Large transfers re-fit
  /// beta via an EWMA of the implied bandwidth; when the fit drifts past the
  /// adoption threshold the rail's beta is replaced and true is returned.
  /// On a healthy fabric the implied bandwidth equals the fitted beta
  /// exactly (alpha_tx is exact), so this never perturbs an accurate model —
  /// it only reacts to real drift, e.g. silent rail degradation.
  bool observe_egress(int r, std::size_t bytes, Time occupancy);

 private:
  void find_fastest();
  std::vector<std::size_t> solve_split(std::size_t len, std::size_t min_chunk,
                                       const std::vector<Time>& ready, int small_rail) const;
  std::vector<RailPerf> rails_;
  int fastest_ = 0;
  std::vector<double> beta_hat_;  ///< per-rail EWMA of observed bandwidth
};

}  // namespace nmx::nmad
