// Network sampling and adaptive multirail splitting.
//
// "A network sampling mechanism is used to compute an adaptive split ratio
// tailored to fit each available networks' abilities" — §2.2, citing Aumage,
// Brunet, Mercier, Namyst (HCW 2007). Real NewMadeleine runs probe transfers
// at install time and stores per-size timings; we fit the same linear model
// (alpha + len/beta) from two probe sizes measured on the idle fabric.
//
// The split solves: distribute `len` bytes over rails so all rails finish
// simultaneously:  share_r = beta_r * (T - alpha_r)  with  sum(share) = len.
// Rails whose share would be below `min_chunk` are dropped and the remainder
// re-balanced (sending a sliver on a slow rail costs more latency than it
// saves bandwidth).
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "net/fabric.hpp"

namespace nmx::nmad {

struct RailPerf {
  int fabric_rail = 0;   ///< rail index in the fabric topology
  Time alpha = 0;        ///< fitted per-message latency
  Bandwidth beta = 0;    ///< fitted bandwidth (bytes/s)
};

class Sampling {
 public:
  /// Probe every rail in `rails` (fabric rail indices) on the idle fabric.
  Sampling(const net::Fabric& fabric, const std::vector<int>& rails);

  /// Construct from externally supplied measurements (tests, ablations).
  explicit Sampling(std::vector<RailPerf> rails);

  const std::vector<RailPerf>& rails() const { return rails_; }
  std::size_t num_rails() const { return rails_.size(); }

  /// Local index of the lowest-latency rail — where small messages go
  /// ("choose the fastest network for small messages", §4.1.1).
  int fastest() const { return fastest_; }

  /// Predicted uncontended one-way time for `len` bytes on local rail `r`.
  Time predict(int r, std::size_t len) const;

  /// Byte share per local rail for a rendezvous of `len` bytes. Shares sum
  /// to exactly `len`; rails not worth using get 0.
  std::vector<std::size_t> split(std::size_t len, std::size_t min_chunk) const;

  /// Fixed even split over all rails — the naive policy the adaptive ratio
  /// is compared against in bench/abl_splitratio.
  std::vector<std::size_t> split_even(std::size_t len) const;

 private:
  void find_fastest();
  std::vector<RailPerf> rails_;
  int fastest_ = 0;
};

}  // namespace nmx::nmad
