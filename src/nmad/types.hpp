// Basic NewMadeleine types: tags, requests, configuration.
//
// The request object mirrors the paper's description (§2.2.1): "requests are
// opaque objects allocated internally each time a send or receive operation
// is submitted. Once this object is created, the user can query NewMadeleine
// in order to get information about a request's completion." — and, crucially
// for the any-source machinery in CH3 (§3.2), "NewMadeleine does not yet
// support the cancellation of a posted request", which we preserve: there is
// deliberately no cancel() here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>

#include "common/units.hpp"
#include "net/calibration.hpp"

namespace nmx::nmad {

/// Message tag. CH3 packs (context id, MPI tag) into this.
using Tag = std::uint64_t;

/// Tag filter: matches when (tag & mask) == value. An all-ones mask is an
/// exact match; masking out low bits probes "any user tag in this context".
struct TagSelector {
  Tag value = 0;
  Tag mask = 0;
  bool matches(Tag t) const { return (t & mask) == value; }
  static TagSelector exact(Tag t) { return {t, ~Tag{0}}; }
  static TagSelector any() { return {0, 0}; }
};

enum class StrategyKind {
  Default,       ///< FIFO, one packet per wire message, single rail
  Aggreg,        ///< aggregates small packets per destination (§2.2)
  SplitBalance,  ///< multirail: fast rail for small, adaptive split for large (§2.2, [4])
  CostModel,     ///< load-aware: completion-time cost model picks rails using
                 ///< live NIC occupancy + queued backlog, and re-plans the
                 ///< rendezvous split chunk by chunk as rails drain
};

struct Request {
  enum class Kind { Send, Recv };

  Kind kind = Kind::Send;
  int peer = -1;
  Tag tag = 0;
  bool completed = false;
  void* user_ctx = nullptr;  ///< upper-layer request (the CH3 pointer of §3.1.1)
  std::size_t len = 0;       ///< posted length (recv: buffer capacity)

  // receive side
  std::byte* rbuf = nullptr;
  std::size_t received = 0;  ///< actual message size once completed

  // send side
  const std::byte* sbuf = nullptr;
  /// Rendezvous bytes still in flight: sender side counts bytes not yet
  /// through NIC egress, receiver side bytes not yet landed. Byte-based so
  /// strategies may carve the payload into any number of chunks.
  std::size_t bytes_outstanding = 0;
  std::uint64_t rdv_id = 0;  ///< nonzero while in rendezvous
  /// Sender side: set when the CTS grant arrives. A second CTS for the same
  /// rendezvous (duplicate or cross-wired) is a protocol violation — the data
  /// phase must not be restarted.
  bool cts_seen = false;

  // observability (obs/recorder.hpp): spans threaded through the stack
  std::uint64_t span = 0;      ///< upper-layer message-lifecycle span id
  std::uint64_t peer_span = 0; ///< recv side: the matched sender's span id
  std::uint64_t rdv_span = 0;  ///< sender-side rendezvous-handshake span id
  Time rdv_rts_t = 0;          ///< when the RTS was posted (handshake latency)

  std::list<Request>::iterator self;  ///< owner-list position (for release)
};

struct Config {
  /// Fabric rail indices this core drives (local rail i = rails[i]).
  std::vector<int> rails{0};
  StrategyKind strategy = StrategyKind::Aggreg;
  std::size_t rdv_threshold = calib::kNmadRdvThreshold;
  std::size_t max_aggregate = calib::kNmadMaxAggregate;
  /// Minimum rendezvous chunk worth putting on an extra rail.
  std::size_t min_split_chunk = 16_KiB;
  /// CostModel: largest rendezvous chunk emitted per wire message, so the
  /// split is re-planned as rails drain (0 = emit each rail's full share).
  std::size_t rdv_quantum = 2_MiB;
  Time sw_send = calib::kNmadSwSend;
  Time sw_recv = calib::kNmadSwRecv;
  /// PIOMan integration: thread-safe request lists + driver locks cost ~2µs
  /// per message (§4.1.2), charged half on injection, half on completion.
  bool pioman_sync = false;
  /// Receiver-directed flow control: advertise this core's per-rail ingress
  /// load in every CTS grant (RailAd vector) so load-aware senders solve the
  /// rendezvous split for both ends of the transfer. Costs
  /// RailAd::kWireSize bytes per rail on each CTS. Off = 16-byte legacy CTS,
  /// senders fall back to the one-ended (egress-only) cost model.
  bool advertise_rdv_load = true;

  Time inject_overhead() const {
    return sw_send + (pioman_sync ? calib::kPiomanNetOverhead / 2 : 0.0);
  }
  Time deliver_overhead() const {
    return sw_recv + (pioman_sync ? calib::kPiomanNetOverhead / 2 : 0.0);
  }
};

}  // namespace nmx::nmad
