// Basic NewMadeleine types: tags, requests, configuration.
//
// The request object mirrors the paper's description (§2.2.1): "requests are
// opaque objects allocated internally each time a send or receive operation
// is submitted. Once this object is created, the user can query NewMadeleine
// in order to get information about a request's completion." — and, crucially
// for the any-source machinery in CH3 (§3.2), "NewMadeleine does not yet
// support the cancellation of a posted request", which we preserve: there is
// deliberately no cancel() here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>

#include "common/units.hpp"
#include "net/calibration.hpp"

namespace nmx::sim {
class FaultPlan;
}

namespace nmx::nmad {

/// Message tag. CH3 packs (context id, MPI tag) into this.
using Tag = std::uint64_t;

/// Tag filter: matches when (tag & mask) == value. An all-ones mask is an
/// exact match; masking out low bits probes "any user tag in this context".
struct TagSelector {
  Tag value = 0;
  Tag mask = 0;
  bool matches(Tag t) const { return (t & mask) == value; }
  static TagSelector exact(Tag t) { return {t, ~Tag{0}}; }
  static TagSelector any() { return {0, 0}; }
};

enum class StrategyKind {
  Default,       ///< FIFO, one packet per wire message, single rail
  Aggreg,        ///< aggregates small packets per destination (§2.2)
  SplitBalance,  ///< multirail: fast rail for small, adaptive split for large (§2.2, [4])
  CostModel,     ///< load-aware: completion-time cost model picks rails using
                 ///< live NIC occupancy + queued backlog, and re-plans the
                 ///< rendezvous split chunk by chunk as rails drain
};

struct Request {
  enum class Kind { Send, Recv };

  Kind kind = Kind::Send;
  int peer = -1;
  Tag tag = 0;
  bool completed = false;
  void* user_ctx = nullptr;  ///< upper-layer request (the CH3 pointer of §3.1.1)
  std::size_t len = 0;       ///< posted length (recv: buffer capacity)

  // receive side
  std::byte* rbuf = nullptr;
  std::size_t received = 0;  ///< actual message size once completed

  // send side
  const std::byte* sbuf = nullptr;
  /// Rendezvous bytes still in flight: sender side counts bytes not yet
  /// through NIC egress, receiver side bytes not yet landed. Byte-based so
  /// strategies may carve the payload into any number of chunks.
  std::size_t bytes_outstanding = 0;
  std::uint64_t rdv_id = 0;  ///< nonzero while in rendezvous
  /// Sender side: set when the first CTS grant arrives. Later CTSes for the
  /// same rendezvous are duplicates (wire faults, receiver re-grants) unless
  /// they carry a *newer* epoch — then the receiver restarted and the data
  /// phase is replayed from scratch.
  bool cts_seen = false;
  /// Sender side: the receiver's completion ack (RdvFin) for the current
  /// epoch has arrived. Retirement is gated on it — egress alone is not
  /// proof of delivery, and retiring early would orphan a restart re-grant
  /// that was already in flight (nmad.rdv.orphan_cts).
  bool fin_seen = false;

  // control-plane recovery state (sender side unless noted)
  std::uint32_t epoch = 0;        ///< current grant epoch (both sides)
  std::uint32_t rts_seq = 0;      ///< matching seq of the original RTS
  std::uint32_t rts_retries = 0;  ///< RTS retransmissions sent so far
  std::uint64_t retry_timer = 0;  ///< pending CTS-timeout event (sim::EventId)
  /// Egress notes not yet fired for this request. A rendezvous may only
  /// complete when bytes_outstanding == 0 *and* no note is in flight —
  /// otherwise a stale-epoch chunk still on a NIC would fire its note after
  /// the request was released.
  int inflight_notes = 0;

  // observability (obs/recorder.hpp): spans threaded through the stack
  std::uint64_t span = 0;      ///< upper-layer message-lifecycle span id
  std::uint64_t peer_span = 0; ///< recv side: the matched sender's span id
  std::uint64_t rdv_span = 0;  ///< sender-side rendezvous-handshake span id
  Time rdv_rts_t = 0;          ///< when the RTS was posted (handshake latency)

  std::list<Request>::iterator self;  ///< owner-list position (for release)
};

struct Config {
  /// Fabric rail indices this core drives (local rail i = rails[i]).
  std::vector<int> rails{0};
  StrategyKind strategy = StrategyKind::Aggreg;
  std::size_t rdv_threshold = calib::kNmadRdvThreshold;
  std::size_t max_aggregate = calib::kNmadMaxAggregate;
  /// Minimum rendezvous chunk worth putting on an extra rail.
  std::size_t min_split_chunk = 16_KiB;
  /// CostModel: largest rendezvous chunk emitted per wire message, so the
  /// split is re-planned as rails drain (0 = emit each rail's full share).
  std::size_t rdv_quantum = 2_MiB;
  Time sw_send = calib::kNmadSwSend;
  Time sw_recv = calib::kNmadSwRecv;
  /// PIOMan integration: thread-safe request lists + driver locks cost ~2µs
  /// per message (§4.1.2), charged half on injection, half on completion.
  bool pioman_sync = false;
  /// Receiver-directed flow control: advertise this core's per-rail ingress
  /// load in every CTS grant (RailAd vector) so load-aware senders solve the
  /// rendezvous split for both ends of the transfer. Costs
  /// RailAd::kWireSize bytes per rail on each CTS. Off = 20-byte legacy CTS,
  /// senders fall back to the one-ended (egress-only) cost model.
  bool advertise_rdv_load = true;

  /// Control-plane recovery: when a rendezvous' CTS grant has not arrived
  /// within this time, retransmit the RTS (same seq and rdv id, bumped retry
  /// counter) with exponential backoff. 0 disables the timer — the default,
  /// so healthy runs schedule nothing extra; chaos/faulted configurations
  /// turn it on.
  Time rdv_retry_timeout = 0;
  /// Give up retransmitting (but keep waiting) after this many retries, so a
  /// receiver that simply has not posted its receive yet is not hammered
  /// forever. The request stays pending; a genuinely lost handshake then
  /// surfaces as a deadlock/test timeout, not an infinite retry loop.
  int rdv_retry_limit = 10;
  /// Feed measured egress occupancy of large transfers back into the sampled
  /// per-rail bandwidth (Sampling::observe_egress), so silent rail
  /// degradation is re-learned from prediction error instead of poisoning
  /// the split forever. Exact-model runs observe beta exactly, so this is a
  /// no-op on a healthy fabric.
  bool beta_relearn = true;
  /// Deterministic fault injection (not owned; null = healthy run). The core
  /// consults it per delivered wire entry and registers rail-down/restart
  /// listeners on it.
  sim::FaultPlan* fault_plan = nullptr;

  Time inject_overhead() const {
    return sw_send + (pioman_sync ? calib::kPiomanNetOverhead / 2 : 0.0);
  }
  Time deliver_overhead() const {
    return sw_recv + (pioman_sync ? calib::kPiomanNetOverhead / 2 : 0.0);
  }
};

}  // namespace nmx::nmad
