#include "nmad/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"

namespace nmx::nmad {

namespace {
constexpr std::size_t kProbeSmall = 4096;
constexpr std::size_t kProbeLarge = 4 * 1024 * 1024;
/// Transfers below this carry too much fixed-cost noise to re-fit beta from.
constexpr std::size_t kRelearnMinBytes = 128 * 1024;
/// Relative drift of the observed-bandwidth EWMA from the fitted beta that
/// triggers adoption. Below it, the fitted (probe-time) value stands.
constexpr double kRelearnAdopt = 0.08;
/// Ready time modelling a dead rail in split_live: far beyond any plausible
/// completion, so the equal-finish solver always prunes it.
constexpr Time kDeadRailReady = 1e30;
}  // namespace

Sampling::Sampling(const net::Fabric& fabric, const std::vector<int>& rails) {
  NMX_ASSERT(!rails.empty());
  for (int fr : rails) {
    // Two-point fit of t(len) = alpha + len / beta, exactly what a pair of
    // probe transfers on the idle machine would measure.
    const Time t_small = fabric.uncontended_time(fr, kProbeSmall);
    const Time t_large = fabric.uncontended_time(fr, kProbeLarge);
    RailPerf p;
    p.fabric_rail = fr;
    p.beta = static_cast<double>(kProbeLarge - kProbeSmall) / (t_large - t_small);
    p.alpha = t_small - static_cast<double>(kProbeSmall) / p.beta;
    // Egress probes time only how long the NIC holds the send buffer; the
    // bandwidth term is shared, so one small probe pins down alpha_tx.
    p.alpha_tx =
        fabric.uncontended_egress_time(fr, kProbeSmall) - static_cast<double>(kProbeSmall) / p.beta;
    rails_.push_back(p);
  }
  find_fastest();
}

Sampling::Sampling(std::vector<RailPerf> rails) : rails_(std::move(rails)) {
  NMX_ASSERT(!rails_.empty());
  for (RailPerf& p : rails_) {
    if (p.alpha_tx < 0) p.alpha_tx = p.alpha;  // unprobed: old one-way estimator
  }
  find_fastest();
}

void Sampling::find_fastest() {
  fastest_ = 0;
  for (std::size_t i = 1; i < rails_.size(); ++i) {
    if (rails_[i].alpha < rails_[static_cast<std::size_t>(fastest_)].alpha) {
      fastest_ = static_cast<int>(i);
    }
  }
}

Time Sampling::predict(int r, std::size_t len) const {
  const RailPerf& p = rails_.at(static_cast<std::size_t>(r));
  return p.alpha + static_cast<double>(len) / p.beta;
}

Time Sampling::predict_egress(int r, std::size_t len) const {
  const RailPerf& p = rails_.at(static_cast<std::size_t>(r));
  return p.alpha_tx + static_cast<double>(len) / p.beta;
}

Time Sampling::completion(int r, std::size_t len, Time ready) const {
  return ready + predict(r, len);
}

std::vector<std::size_t> Sampling::split(std::size_t len, std::size_t min_chunk) const {
  static const std::vector<Time> kNoReady;
  return solve_split(len, min_chunk, kNoReady, fastest_);
}

std::vector<std::size_t> Sampling::split_with_ready(std::size_t len, std::size_t min_chunk,
                                                    const std::vector<Time>& ready) const {
  NMX_ASSERT(ready.size() == rails_.size());
  // Unsplittable payloads chase the earliest predicted completion, not the
  // lowest idle latency — that is the whole point of being load-aware.
  int best = 0;
  for (std::size_t i = 1; i < rails_.size(); ++i) {
    if (completion(static_cast<int>(i), len, ready[i]) <
        completion(best, len, ready[static_cast<std::size_t>(best)])) {
      best = static_cast<int>(i);
    }
  }
  return solve_split(len, min_chunk, ready, best);
}

std::vector<std::size_t> Sampling::split_two_ended(std::size_t len, std::size_t min_chunk,
                                                   const std::vector<Time>& local,
                                                   const std::vector<Time>& remote) const {
  NMX_ASSERT(local.size() == rails_.size());
  NMX_ASSERT(remote.size() == rails_.size());
  std::vector<Time> ready(rails_.size());
  for (std::size_t i = 0; i < rails_.size(); ++i) ready[i] = std::max(local[i], remote[i]);
  return split_with_ready(len, min_chunk, ready);
}

std::vector<std::size_t> Sampling::solve_split(std::size_t len, std::size_t min_chunk,
                                               const std::vector<Time>& ready,
                                               int small_rail) const {
  // A rail that cannot start before ready_r behaves like a rail with that
  // much extra latency; fold it in and solve the classic equal-finish split.
  auto lat = [&](std::size_t i) {
    return rails_[i].alpha + (ready.empty() ? 0.0 : ready[i]);
  };
  std::vector<std::size_t> shares(rails_.size(), 0);
  if (rails_.size() == 1 || len <= min_chunk) {
    shares[static_cast<std::size_t>(small_rail)] = len;
    return shares;
  }

  // Candidate rails, pruned until every share clears min_chunk (a negative
  // share — the rail could not even start before the others finish — is
  // always below min_chunk, so contended rails prune themselves).
  std::vector<std::size_t> cand(rails_.size());
  std::iota(cand.begin(), cand.end(), 0);
  std::vector<double> share(rails_.size(), 0.0);
  while (true) {
    double beta_sum = 0.0, alpha_beta_sum = 0.0;
    for (std::size_t i : cand) {
      beta_sum += rails_[i].beta;
      alpha_beta_sum += lat(i) * rails_[i].beta;
    }
    // Equal-finish-time allocation.
    const double T = (static_cast<double>(len) + alpha_beta_sum) / beta_sum;
    bool ok = true;
    std::size_t worst = cand.front();
    double worst_share = 1e300;
    for (std::size_t i : cand) {
      share[i] = rails_[i].beta * (T - lat(i));
      if (share[i] < worst_share) {
        worst_share = share[i];
        worst = i;
      }
      if (share[i] < static_cast<double>(min_chunk)) ok = false;
    }
    if (ok || cand.size() == 1) break;
    std::erase(cand, worst);
    for (auto& s : share) s = 0.0;
    if (cand.size() == 1) {
      share[cand.front()] = static_cast<double>(len);
      break;
    }
  }

  // Round to integral bytes, handing the remainder to the first used rail.
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < rails_.size(); ++i) {
    shares[i] = share[i] > 0.0 ? static_cast<std::size_t>(share[i]) : 0;
    assigned += shares[i];
  }
  NMX_ASSERT(assigned <= len);
  std::size_t remainder = len - assigned;
  for (std::size_t i = 0; i < rails_.size() && remainder > 0; ++i) {
    if (shares[i] > 0) {
      shares[i] += remainder;
      remainder = 0;
    }
  }
  if (remainder > 0) shares[static_cast<std::size_t>(small_rail)] += remainder;
  return shares;
}

std::vector<std::size_t> Sampling::split_even(std::size_t len) const {
  std::vector<std::size_t> shares(rails_.size(), len / rails_.size());
  shares[0] += len % rails_.size();
  return shares;
}

int Sampling::fastest_live(const std::vector<bool>& live) const {
  NMX_ASSERT(live.size() == rails_.size());
  int best = -1;
  for (std::size_t i = 0; i < rails_.size(); ++i) {
    if (!live[i]) continue;
    if (best < 0 || rails_[i].alpha < rails_[static_cast<std::size_t>(best)].alpha) {
      best = static_cast<int>(i);
    }
  }
  NMX_ASSERT_MSG(best >= 0, "no live rail left");
  return best;
}

std::vector<std::size_t> Sampling::split_live(std::size_t len, std::size_t min_chunk,
                                              const std::vector<bool>& live) const {
  NMX_ASSERT(live.size() == rails_.size());
  std::vector<Time> ready(rails_.size(), 0.0);
  for (std::size_t i = 0; i < rails_.size(); ++i) {
    if (!live[i]) ready[i] = kDeadRailReady;
  }
  return solve_split(len, min_chunk, ready, fastest_live(live));
}

bool Sampling::observe_egress(int r, std::size_t bytes, Time occupancy) {
  if (bytes < kRelearnMinBytes) return false;
  RailPerf& p = rails_.at(static_cast<std::size_t>(r));
  const Time xfer = occupancy - p.alpha_tx;
  if (xfer <= 0) return false;
  const double observed = static_cast<double>(bytes) / xfer;
  if (beta_hat_.empty()) beta_hat_.assign(rails_.size(), -1.0);
  double& hat = beta_hat_[static_cast<std::size_t>(r)];
  hat = hat < 0 ? observed : 0.5 * hat + 0.5 * observed;
  if (p.beta > 0 && std::abs(hat - p.beta) / p.beta > kRelearnAdopt) {
    p.beta = hat;
    return true;
  }
  return false;
}

}  // namespace nmx::nmad
