// The NewMadeleine communication core: the nm_sr interface (§2.2.1), internal
// tag matching, the eager / internal-rendezvous protocols, the submission
// window drained by strategies, and the per-rail drivers.
//
// Progress rule (the key to Figure 7): NewMadeleine "works with the network's
// activity" — requests are queued, and the software steps that move them
// (packing by the strategy, NIC submission, incoming-packet handling,
// rendezvous replies) run only while some party is *in the progress engine*:
// either an application thread inside an MPI call (enter_progress /
// leave_progress bracket) or PIOMan reacting in the background (service()).
// Hardware-side events (NIC egress completion, wire delivery) always fire;
// it is the software reaction to them that is gated.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "net/router.hpp"
#include "nmad/sampling.hpp"
#include "nmad/strategy.hpp"
#include "nmad/types.hpp"
#include "nmad/wire.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace nmx::nmad {

/// Result of probing the unexpected queues (feeds the CH3 any-source lists).
struct ProbeInfo {
  int src = -1;
  Tag tag = 0;
  std::size_t len = 0;
};

class Core {
 public:
  struct ExtendedConfig : Config {
    /// Ablation switch for bench/abl_splitratio.
    bool adaptive_split = true;
  };

  Core(sim::Engine& eng, net::Fabric& fabric, net::ProcRouter& router, int my_proc,
       ExtendedConfig cfg);

  int proc() const { return my_proc_; }
  const ExtendedConfig& config() const { return cfg_; }
  const Sampling& sampling() const { return sampling_; }
  const Strategy& strategy() const { return *strategy_; }

  // --- nm_sr interface ----------------------------------------------------

  /// nm_sr_isend(destination, tag, buffer, size) — §2.2.1. `span` is the
  /// upper layer's message-lifecycle span id (0 = none), threaded onto the
  /// wire entries for end-to-end tracing.
  Request* isend(int dst, Tag tag, const void* buf, std::size_t len, void* user_ctx = nullptr,
                 std::uint64_t span = 0);
  /// nm_sr_irecv(source, tag, buffer, capacity) — §2.2.1. The source must be
  /// known; MPI_ANY_SOURCE is handled above us by the CH3 lists (§3.2).
  Request* irecv(int src, Tag tag, void* buf, std::size_t len, void* user_ctx = nullptr,
                 std::uint64_t span = 0);

  bool test(const Request* r) const { return r->completed; }
  /// Free a request the upper layer is done with. Requests cannot be
  /// cancelled (§2.2.1) — only completed requests may be released.
  void release(Request* r);

  /// Non-destructive look at the unexpected queues: the oldest message
  /// matching (src?, selector). This is the "new NewMadeleine function" the
  /// module polls for any-source handling (§3.2.2).
  std::optional<ProbeInfo> probe(std::optional<int> src, TagSelector sel) const;

  /// Fired on the engine thread whenever a request completes (§3.1.3: lets
  /// the module mark the corresponding CH3 request complete).
  void set_on_complete(std::function<void(Request&)> fn) { on_complete_ = std::move(fn); }

  /// Fired when a message lands with no posted request — the trigger for
  /// the CH3 any-source lists to probe and dynamically create a request.
  void set_on_unexpected(std::function<void(const ProbeInfo&)> fn) {
    on_unexpected_ = std::move(fn);
  }

  // --- progress control ---------------------------------------------------

  /// Bracket for blocking MPI calls: while the depth is nonzero, incoming
  /// packets are handled and strategies flushed as events arrive.
  void enter_progress();
  void leave_progress();
  bool progress_allowed() const { return progress_depth_ > 0; }

  /// One explicit progress pass (MPI_Test / netmod poll).
  void progress();

  /// PIOMan's entry point: a progress pass made by the background engine.
  void service() {
    ++progress_depth_;
    progress();
    --progress_depth_;
  }

  /// Called when gated work appears while nobody is in the progress engine
  /// — PIOMan hooks this to schedule a background reaction (§2.2.2).
  void set_async_notifier(std::function<void()> fn) { async_notifier_ = std::move(fn); }
  bool has_gated_work() const { return !pending_rx_.empty() || pending_flush_; }

  // --- introspection ------------------------------------------------------

  std::size_t outstanding_requests() const { return live_.size(); }
  std::size_t unexpected_count() const { return unexpected_total_; }
  std::size_t rdv_started() const { return rdv_started_; }

  // --- NIC-offloaded collectives (Yu/Buntinas/Graham/Panda model) ---------

  /// Post this rank's contribution to NIC combine tree `coll_id`: the NIC
  /// unit folds children's values into ours (op per the coll layer's
  /// encoding), forwards the partial up the tree (`parent`, -1 = root), and
  /// the root's broadcast-down releases every rank by firing `done(result)`.
  /// Control packets are handled by the NIC itself — no host matching, no
  /// deliver overhead, and no progress gating — and each tree edge picks the
  /// rail with the earliest predicted egress among live rails, so a dead or
  /// congested rail bends the combine tree like any other cost-model edge.
  void nic_coll_post(std::uint64_t coll_id, int parent, std::vector<int> children, double value,
                     int op, std::function<void(double)> done);

 private:
  struct Unexpected {
    std::uint64_t arrival = 0;  ///< global arrival order (for wildcard probe)
    bool rdv = false;
    std::size_t len = 0;
    std::uint64_t rdv_id = 0;
    std::uint64_t span = 0;  ///< sender's message span (deferred-match linking)
    std::vector<std::byte> payload;  ///< eager only
  };

  /// An Eager or Rts entry waiting for its sequence turn (multirail safety).
  struct PendingIngest {
    Entry entry;
    int src;
    int fabric_rail = -1;
  };

  struct GateState {
    std::unordered_map<Tag, std::uint32_t> send_seq;
    std::unordered_map<Tag, std::uint32_t> recv_seq;
    std::map<std::pair<Tag, std::uint32_t>, PendingIngest> out_of_order;
    std::unordered_map<Tag, std::deque<Request*>> posted;
    std::unordered_map<Tag, std::deque<Unexpected>> unexpected;
    /// Rendezvous bytes from this peer that landed per local rail — the
    /// observed arrival mix used to attribute granted-but-unlanded bytes to
    /// rails in the CTS load advertisement (empty until first chunk lands).
    /// Exponentially time-decayed (kMixDecayTau) so the mix tracks the
    /// *current* landing rate: a rail that stopped landing bytes stops
    /// attracting backlog attribution instead of being pinned forever by
    /// stale history.
    std::vector<double> rdv_rx_by_rail;
    Time rdv_rx_t = 0;  ///< last time the decay was applied to the mix
  };

  struct RdvIn {
    Request* req = nullptr;
    /// Grant epoch: bumped on receiver restart so chunks answering a stale
    /// grant are recognised and dropped instead of double-landed.
    std::uint32_t epoch = 0;
  };

  struct Driver {
    int fabric_rail = 0;
    bool busy = false;
    bool dead = false;          ///< fail-stop: never submit here again
    std::uint64_t tx_span = 0;  ///< open NicTx span (one per rail: busy-gated)
    Time tx_begin = 0;          ///< submission time of the in-flight packet
    Time tx_pred = 0;           ///< cost-model predicted egress completion
  };

  struct Note {  // sender-side egress bookkeeping
    Request* sreq;
    Entry::Kind kind;
    std::size_t bytes;  ///< payload bytes (rendezvous byte accounting)
    /// Grant epoch the chunk was sent under; a note from a superseded epoch
    /// must not decrement the (replayed) outstanding-byte count.
    std::uint32_t epoch;
  };

  Request* new_request(Request r);
  GateState& gate(int peer);
  /// Strategy hand-off, instrumented: StratEnqueue record + queue-depth gauge.
  void enqueue(Entry e);
  /// Scheduler observability: per-rail backlog/steal gauges plus counter-track
  /// samples (Perfetto "C" events) of the queue depths over time.
  void sample_sched();
  void kick();
  void try_flush();
  /// `nic_direct`: a NIC-offloaded collective packet — charged the firmware
  /// processing cost instead of host injection + copy overheads.
  void submit(int local_rail, WireMsg wm, bool nic_direct = false);
  void on_egress(int local_rail, std::vector<Note> notes);
  void rx_wire(net::WirePacket&& pkt);
  void drain_rx();
  void handle_wire(int fabric_rail, WireMsg m);
  /// Deliver one wire entry to its protocol handler (post fault filtering).
  void dispatch_entry(int src, int fabric_rail, Entry e);
  void ingest_ordered(int src, Entry e, int fabric_rail);
  void ingest(int src, Entry& e, int fabric_rail);
  void deliver_eager(int src, Entry& e, int fabric_rail);
  void handle_rts(int src, Entry& e);
  /// An Rts whose matching slot was already consumed (wire duplicate or
  /// sender retransmission): re-grant when our CTS was the casualty.
  void handle_dup_rts(int src, Entry& e);
  void handle_cts(int src, Entry& cts);
  /// (Re)start the rendezvous data phase after a grant: reset the
  /// outstanding-byte count and enqueue the payload under req->epoch.
  void start_rdv_data(Request* req, Entry& cts);
  void handle_rdv_data(int src, int fabric_rail, Entry& e);
  /// Receiver->sender completion ack: every byte of the rendezvous landed
  /// under this grant epoch. Sets fin_seen and attempts retirement.
  void handle_rdv_fin(Entry& e);
  /// Enqueue the completion ack once the last rendezvous byte lands.
  void send_rdv_fin(int dst, std::uint64_t rdv_id, std::size_t landed, std::uint32_t epoch,
                    std::uint64_t span);
  /// Retire a sender-side rendezvous iff the receiver acked completion
  /// (fin_seen), all bytes cleared egress, and no note is in flight. Gating
  /// on the ack closes the restart orphan window: egress alone does not
  /// prove delivery, and a restart re-grant may still be racing toward us.
  void try_retire(Request* req);
  void start_rdv_recv(int src, Request* req, std::uint64_t rdv_id, std::size_t total,
                      std::uint64_t sender_span = 0);
  /// Build and enqueue one CTS grant (initial grant, re-grant on duplicate
  /// RTS, restart re-grant).
  void send_cts(int dst, std::uint64_t rdv_id, std::uint32_t epoch, std::uint64_t span);
  /// CTS-timeout handler: retransmit the RTS with exponential backoff.
  void rts_retry(Request* req);
  /// Fail-stop rail death: mark the driver, displace + re-route queued
  /// entries, notify rendezvous peers. `from_wire` marks a peer notification
  /// (no re-notify; the local-NIC report path sends them).
  void handle_rail_down(int fabric_rail, bool from_wire);
  /// Fault-plan restart listener: wipe rendezvous landing progress and
  /// re-grant every pending inbound rendezvous under a bumped epoch.
  void on_restart();
  void complete(Request& r);
  void notify_async();
  bool any_rail_needs_registration() const;
  /// Local rail index driving `fabric_rail`, or -1 when this core does not
  /// drive it (heterogeneous per-process rail bindings).
  int local_rail_of(int fabric_rail) const;
  /// The receiver's per-rail load advertisement for a CTS grant: ingress
  /// occupancy past "now" plus granted-but-unlanded inbound bytes (excluding
  /// the rendezvous being granted, which the sender accounts for itself).
  std::vector<RailAd> sample_rail_ads(int granting_src, std::uint64_t granting_rdv) const;
  /// Apply the exponential landing-mix decay to a gate (idempotent per time).
  void decay_rx_mix(GateState& g) const;

  // NIC collective unit internals. State is keyed by collective id; arrivals
  // may precede the local post (the CollCtl carries the op), so entries are
  // created on first touch.
  struct NicColl {
    int parent = -1;
    std::vector<int> children;
    std::size_t arrived = 0;  ///< children contributions combined so far
    bool posted = false;      ///< local rank contributed (done/children valid)
    bool has_acc = false;
    double acc = 0;
    int op = 0;
    std::function<void(double)> done;
  };
  /// CollCtl arrival, after the NIC processing delay.
  void nic_coll_rx(std::uint64_t id, double value, std::uint32_t ctl);
  /// Forward the partial up (or release at the root) once everything local
  /// arrived and the local contribution was posted.
  void nic_coll_maybe_up(std::uint64_t id, NicColl& st);
  /// Root result reached this rank: forward down the tree and fire done().
  void nic_coll_release(std::uint64_t id, double result);
  void nic_coll_send(int dst, std::uint64_t id, double value, std::uint32_t ctl);
  /// Submit queued CollCtl packets: each picks the live rail with the
  /// earliest predicted egress completion. Runs unconditionally from egress
  /// events — the NIC unit does not wait for host progress.
  void drain_nic_txq();

  sim::Engine& eng_;
  net::Fabric& fabric_;
  net::ProcRouter& router_;
  int my_proc_;
  int my_node_;
  ExtendedConfig cfg_;
  Sampling sampling_;
  std::unique_ptr<Strategy> strategy_;
  std::vector<Driver> drivers_;

  std::list<Request> live_;
  std::unordered_map<int, GateState> gates_;
  std::unordered_map<std::uint64_t, Request*> rdv_out_;  ///< rdv_id -> send req
  std::map<std::pair<int, std::uint64_t>, RdvIn> rdv_in_;

  struct RxItem {
    int fabric_rail = -1;  ///< rail the packet arrived on (for the rx mix)
    WireMsg msg;
  };
  std::deque<RxItem> pending_rx_;
  bool pending_flush_ = false;
  int progress_depth_ = 0;

  std::map<std::uint64_t, NicColl> nic_colls_;
  std::deque<Entry> nic_txq_;  ///< CollCtl packets awaiting a free rail

  std::function<void(Request&)> on_complete_;
  std::function<void(const ProbeInfo&)> on_unexpected_;
  std::function<void()> async_notifier_;

  std::uint64_t next_rdv_ = 1;
  std::uint64_t arrival_counter_ = 0;
  std::size_t unexpected_total_ = 0;
  std::size_t rdv_started_ = 0;
  std::size_t strat_depth_ = 0;  ///< entries handed to the strategy, not yet on a NIC
};

}  // namespace nmx::nmad
