// Scheduling strategies (§2.2): how accumulated protocol entries are packed
// into wire messages once a NIC becomes idle, and how rendezvous payloads are
// distributed over rails.
//
//  * Default      — FIFO, one entry per wire message, fastest rail only.
//  * Aggreg       — aggregates small entries sharing a destination into one
//                   wire message (the paper's "messages aggregation").
//  * SplitBalance — Aggreg behaviour for small traffic, plus the adaptive
//                   multirail split ratio from sampling for rendezvous data
//                   ("distribute the message chunks across the multiple
//                   networks in case of large messages", §4.1.1).
//  * CostModel    — SplitBalance extended with a per-rail completion-time
//                   estimator: the sampled alpha/beta model plus the rail's
//                   current backlog (queued entries here + live NIC occupancy
//                   fed by the core through a LoadProbe). Small traffic goes
//                   to the rail with the earliest predicted completion, and
//                   rendezvous payloads are carved into chunks on demand so
//                   the split is re-solved as rails drain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "nmad/sampling.hpp"
#include "nmad/wire.hpp"

namespace nmx::nmad {

/// Live per-rail load snapshot a load-aware strategy reads before deciding:
/// the engine's virtual "now" and, per local rail, the absolute time the NIC
/// egress channel is booked until (<= now when idle). The core installs a
/// probe backed by the engine and fabric; strategies never re-derive this
/// from observability data.
struct RailLoad {
  Time now = 0;
  std::vector<Time> busy_until;
  /// Absolute time each local rail's *ingress* channel is booked until — the
  /// receive-direction mirror of busy_until. Strategies never read this for
  /// egress decisions; the core samples it (through the same probe) when it
  /// builds a CTS load advertisement. May be empty for egress-only probes.
  std::vector<Time> ingress_busy_until;
};
using LoadProbe = std::function<RailLoad()>;

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Queue a protocol entry. The strategy assigns the rail for small
  /// entries; RdvChunk entries arrive with their rail already planned, or —
  /// for strategies with plans_rdv_chunks() — with rail < 0 and the whole
  /// payload, to be carved into chunks as rails become idle.
  virtual void enqueue(Entry e) = 0;

  /// Build the next wire message for idle local rail `rail`, or nullopt if
  /// nothing is queued for it.
  virtual std::optional<WireMsg> next(int rail, int src_proc) = 0;

  /// Any entries waiting on any rail?
  virtual bool pending() const = 0;

  /// Byte share per local rail for a rendezvous payload of `len` bytes.
  virtual std::vector<std::size_t> plan_rdv(std::size_t len) const = 0;

  /// Install the engine/fabric-backed load snapshot provider. Load-blind
  /// strategies simply never call it.
  void set_load_probe(LoadProbe probe) { probe_ = std::move(probe); }

  /// True when the strategy carves rendezvous payloads into chunks itself;
  /// the core then enqueues one unplanned RdvChunk instead of pre-splitting.
  virtual bool plans_rdv_chunks() const { return false; }

  /// Drop every queued chunk (and any held unplanned job) belonging to
  /// rendezvous `rdv_id` toward `dst`, fixing the per-rail and rendezvous
  /// backlog accounting. Returns the payload bytes dropped. This is the
  /// error/cancel drain: a rendezvous the core abandons must not leave
  /// phantom bytes inflating the cost model's view of a rail forever.
  virtual std::size_t cancel_rdv(int dst, std::uint64_t rdv_id) = 0;

  /// Fail-stop notification: local rail `rail` is dead. The strategy marks
  /// it (rail picks and rendezvous splits exclude it from now on) and
  /// returns every entry it had queued on that rail, with backlog debited —
  /// the core re-routes them onto surviving rails.
  virtual std::vector<Entry> on_rail_down(int /*rail*/) { return {}; }

  // --- introspection (cost-model metrics read these; 0 when untracked) ----

  /// Wire bytes queued for local rail `r` (excludes unassigned rendezvous
  /// backlog — see rdv_backlog_bytes()).
  virtual std::size_t backlog_bytes(int /*rail*/) const { return 0; }
  /// Rendezvous bytes accepted but not yet assigned to any rail.
  virtual std::size_t rdv_backlog_bytes() const { return 0; }
  /// Entries routed to `rail` although it is not the sampled-fastest one,
  /// because the cost model predicted an earlier completion there.
  virtual std::uint64_t steals(int /*rail*/) const { return 0; }

  std::size_t packets_built() const { return packets_built_; }
  std::size_t entries_sent() const { return entries_sent_; }

 protected:
  /// Snapshot from the installed probe, padded/clamped to `num_rails` so
  /// strategies can index it unconditionally (no probe => all rails idle).
  RailLoad load(std::size_t num_rails) const {
    RailLoad l;
    if (probe_) l = probe_();
    l.busy_until.resize(num_rails, l.now);
    return l;
  }

  std::size_t packets_built_ = 0;
  std::size_t entries_sent_ = 0;

 private:
  LoadProbe probe_;
};

struct StrategyOptions {
  std::size_t max_aggregate = calib::kNmadMaxAggregate;
  std::size_t min_split_chunk = 16_KiB;
  /// CostModel: cap on the rendezvous chunk emitted per wire message so the
  /// split keeps re-planning while the transfer drains (0 = no cap).
  std::size_t rdv_quantum = 2_MiB;
  /// Ablation switch: use the naive even split instead of the adaptive one.
  bool adaptive_split = true;
};

std::unique_ptr<Strategy> make_strategy(StrategyKind kind, const Sampling& sampling,
                                        const StrategyOptions& opts);

}  // namespace nmx::nmad
