// Scheduling strategies (§2.2): how accumulated protocol entries are packed
// into wire messages once a NIC becomes idle, and how rendezvous payloads are
// distributed over rails.
//
//  * Default      — FIFO, one entry per wire message, fastest rail only.
//  * Aggreg       — aggregates small entries sharing a destination into one
//                   wire message (the paper's "messages aggregation").
//  * SplitBalance — Aggreg behaviour for small traffic, plus the adaptive
//                   multirail split ratio from sampling for rendezvous data
//                   ("distribute the message chunks across the multiple
//                   networks in case of large messages", §4.1.1).
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "nmad/sampling.hpp"
#include "nmad/wire.hpp"

namespace nmx::nmad {

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Queue a protocol entry. The strategy assigns the rail for small
  /// entries; RdvChunk entries arrive with their rail already planned.
  virtual void enqueue(Entry e) = 0;

  /// Build the next wire message for idle local rail `rail`, or nullopt if
  /// nothing is queued for it.
  virtual std::optional<WireMsg> next(int rail, int src_proc) = 0;

  /// Any entries waiting on any rail?
  virtual bool pending() const = 0;

  /// Byte share per local rail for a rendezvous payload of `len` bytes.
  virtual std::vector<std::size_t> plan_rdv(std::size_t len) const = 0;

  std::size_t packets_built() const { return packets_built_; }
  std::size_t entries_sent() const { return entries_sent_; }

 protected:
  std::size_t packets_built_ = 0;
  std::size_t entries_sent_ = 0;
};

struct StrategyOptions {
  std::size_t max_aggregate = calib::kNmadMaxAggregate;
  std::size_t min_split_chunk = 16_KiB;
  /// Ablation switch: use the naive even split instead of the adaptive one.
  bool adaptive_split = true;
};

std::unique_ptr<Strategy> make_strategy(StrategyKind kind, const Sampling& sampling,
                                        const StrategyOptions& opts);

}  // namespace nmx::nmad
