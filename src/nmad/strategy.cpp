#include "nmad/strategy.hpp"

#include <utility>

#include "common/assert.hpp"

namespace nmx::nmad {

namespace {

/// Common machinery: per-(rail, destination) FIFOs with round-robin
/// destination selection per rail.
class QueuedStrategy : public Strategy {
 public:
  QueuedStrategy(const Sampling& sampling, StrategyOptions opts, bool aggregate)
      : sampling_(sampling), opts_(opts), aggregate_(aggregate) {}

  void enqueue(Entry e) override {
    if (e.kind != Entry::Kind::RdvChunk) e.rail = sampling_.fastest();
    auto& q = queues_[{e.rail, e.dst_proc}];
    q.push_back(std::move(e));
    ++pending_;
  }

  std::optional<WireMsg> next(int rail, int src_proc) override {
    // Round-robin across destinations that have traffic on this rail.
    auto& cursor = rr_cursor_[rail];
    auto begin = queues_.lower_bound({rail, cursor});
    auto pick = queues_.end();
    for (auto it = begin; it != queues_.end() && it->first.first == rail; ++it) {
      if (!it->second.empty()) {
        pick = it;
        break;
      }
    }
    if (pick == queues_.end()) {
      for (auto it = queues_.lower_bound({rail, 0});
           it != begin && it->first.first == rail; ++it) {
        if (!it->second.empty()) {
          pick = it;
          break;
        }
      }
    }
    if (pick == queues_.end()) return std::nullopt;

    std::deque<Entry>& q = pick->second;
    WireMsg wm;
    wm.src_proc = src_proc;
    wm.dst_proc = pick->first.second;
    // Rendezvous data always travels alone (zero-copy DMA of user memory).
    if (q.front().kind == Entry::Kind::RdvChunk) {
      wm.entries.push_back(std::move(q.front()));
      q.pop_front();
      --pending_;
    } else {
      std::size_t packed_bytes = 0;
      do {
        packed_bytes += q.front().bytes.size();
        wm.entries.push_back(std::move(q.front()));
        q.pop_front();
        --pending_;
      } while (aggregate_ && !q.empty() && q.front().kind != Entry::Kind::RdvChunk &&
               packed_bytes + q.front().bytes.size() <= opts_.max_aggregate);
    }
    cursor = pick->first.second + 1;  // resume after this destination
    ++packets_built_;
    entries_sent_ += wm.entries.size();
    return wm;
  }

  bool pending() const override { return pending_ > 0; }

 protected:
  const Sampling& sampling_;
  StrategyOptions opts_;

 private:
  bool aggregate_;
  // (rail, dst) -> FIFO. Ordered map so round-robin iteration is stable.
  std::map<std::pair<int, int>, std::deque<Entry>> queues_;
  std::map<int, int> rr_cursor_;
  std::size_t pending_ = 0;
};

class StratDefault final : public QueuedStrategy {
 public:
  StratDefault(const Sampling& s, StrategyOptions o) : QueuedStrategy(s, o, /*aggregate=*/false) {}
  std::vector<std::size_t> plan_rdv(std::size_t len) const override {
    std::vector<std::size_t> shares(sampling_.num_rails(), 0);
    shares[static_cast<std::size_t>(sampling_.fastest())] = len;
    return shares;
  }
};

class StratAggreg final : public QueuedStrategy {
 public:
  StratAggreg(const Sampling& s, StrategyOptions o) : QueuedStrategy(s, o, /*aggregate=*/true) {}
  std::vector<std::size_t> plan_rdv(std::size_t len) const override {
    std::vector<std::size_t> shares(sampling_.num_rails(), 0);
    shares[static_cast<std::size_t>(sampling_.fastest())] = len;
    return shares;
  }
};

class StratSplitBalance final : public QueuedStrategy {
 public:
  StratSplitBalance(const Sampling& s, StrategyOptions o)
      : QueuedStrategy(s, o, /*aggregate=*/true) {}
  std::vector<std::size_t> plan_rdv(std::size_t len) const override {
    if (!opts_.adaptive_split) return sampling_.split_even(len);
    return sampling_.split(len, opts_.min_split_chunk);
  }
};

}  // namespace

std::unique_ptr<Strategy> make_strategy(StrategyKind kind, const Sampling& sampling,
                                        const StrategyOptions& opts) {
  switch (kind) {
    case StrategyKind::Default: return std::make_unique<StratDefault>(sampling, opts);
    case StrategyKind::Aggreg: return std::make_unique<StratAggreg>(sampling, opts);
    case StrategyKind::SplitBalance: return std::make_unique<StratSplitBalance>(sampling, opts);
  }
  NMX_FAIL("unknown strategy kind");
}

}  // namespace nmx::nmad
