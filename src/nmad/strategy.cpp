#include "nmad/strategy.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/assert.hpp"

namespace nmx::nmad {

namespace {

/// Common machinery: per-(rail, destination) FIFOs with round-robin
/// destination selection per rail, and per-rail queued-byte accounting.
class QueuedStrategy : public Strategy {
 public:
  QueuedStrategy(const Sampling& sampling, StrategyOptions opts, bool aggregate)
      : sampling_(sampling),
        opts_(opts),
        live_(sampling.num_rails(), true),
        aggregate_(aggregate),
        backlog_(sampling.num_rails(), 0) {}

  void enqueue(Entry e) override {
    if (e.kind != Entry::Kind::RdvChunk) e.rail = pick_rail(e);
    backlog_[static_cast<std::size_t>(e.rail)] += e.wire_bytes();
    auto& q = queues_[{e.rail, e.dst_proc}];
    q.push_back(std::move(e));
    ++pending_;
  }

  std::optional<WireMsg> next(int rail, int src_proc) override {
    if (!rail_live(rail)) return std::nullopt;
    // Round-robin across destinations that have traffic on this rail.
    auto& cursor = rr_cursor_[rail];
    auto begin = queues_.lower_bound({rail, cursor});
    auto pick = queues_.end();
    for (auto it = begin; it != queues_.end() && it->first.first == rail; ++it) {
      if (!it->second.empty()) {
        pick = it;
        break;
      }
    }
    if (pick == queues_.end()) {
      for (auto it = queues_.lower_bound({rail, 0});
           it != begin && it->first.first == rail; ++it) {
        if (!it->second.empty()) {
          pick = it;
          break;
        }
      }
    }
    if (pick == queues_.end()) return std::nullopt;

    std::deque<Entry>& q = pick->second;
    auto& backlog = backlog_[static_cast<std::size_t>(rail)];
    WireMsg wm;
    wm.src_proc = src_proc;
    wm.dst_proc = pick->first.second;
    // Debit the backlog before moving the entry out — wire_bytes() counts the
    // payload, which the move empties.
    auto take_front = [&] {
      backlog -= std::min(backlog, q.front().wire_bytes());
      wm.entries.push_back(std::move(q.front()));
      q.pop_front();
      --pending_;
    };
    // Rendezvous data always travels alone (zero-copy DMA of user memory).
    if (q.front().kind == Entry::Kind::RdvChunk) {
      take_front();
    } else {
      std::size_t packed_bytes = 0;
      do {
        packed_bytes += q.front().bytes.size();
        take_front();
      } while (aggregate_ && !q.empty() && q.front().kind != Entry::Kind::RdvChunk &&
               packed_bytes + q.front().bytes.size() <= opts_.max_aggregate);
    }
    cursor = pick->first.second + 1;  // resume after this destination
    ++packets_built_;
    entries_sent_ += wm.entries.size();
    return wm;
  }

  bool pending() const override { return pending_ > 0; }

  std::size_t backlog_bytes(int rail) const override {
    return backlog_.at(static_cast<std::size_t>(rail));
  }

  std::size_t cancel_rdv(int dst, std::uint64_t rdv_id) override {
    std::size_t dropped = 0;
    for (auto& [key, q] : queues_) {
      if (key.second != dst) continue;
      auto& backlog = backlog_[static_cast<std::size_t>(key.first)];
      for (auto it = q.begin(); it != q.end();) {
        if (it->kind == Entry::Kind::RdvChunk && it->rdv_id == rdv_id) {
          backlog -= std::min(backlog, it->wire_bytes());
          dropped += it->bytes.size();
          it = q.erase(it);
          --pending_;
        } else {
          ++it;
        }
      }
    }
    return dropped;
  }

  std::vector<Entry> on_rail_down(int rail) override {
    NMX_ASSERT(rail >= 0 && static_cast<std::size_t>(rail) < live_.size());
    live_[static_cast<std::size_t>(rail)] = false;
    std::vector<Entry> displaced;
    auto& backlog = backlog_[static_cast<std::size_t>(rail)];
    auto it = queues_.lower_bound({rail, std::numeric_limits<int>::min()});
    while (it != queues_.end() && it->first.first == rail) {
      for (Entry& e : it->second) {
        backlog -= std::min(backlog, e.wire_bytes());
        --pending_;
        displaced.push_back(std::move(e));
      }
      it = queues_.erase(it);
    }
    return displaced;
  }

 protected:
  /// Rail a non-rendezvous entry is queued on. The paper's default: "choose
  /// the fastest network for small messages" (§4.1.1) — restricted to live
  /// rails once a rail has failed.
  virtual int pick_rail(const Entry& /*e*/) { return sampling_.fastest_live(live_); }

  bool rail_live(int rail) const {
    return rail >= 0 && static_cast<std::size_t>(rail) < live_.size() &&
           live_[static_cast<std::size_t>(rail)];
  }
  bool all_rails_live() const {
    return std::all_of(live_.begin(), live_.end(), [](bool b) { return b; });
  }

  const Sampling& sampling_;
  StrategyOptions opts_;
  std::vector<bool> live_;  ///< per local rail, cleared by on_rail_down

 private:
  bool aggregate_;
  // (rail, dst) -> FIFO. Ordered map so round-robin iteration is stable.
  std::map<std::pair<int, int>, std::deque<Entry>> queues_;
  std::map<int, int> rr_cursor_;
  std::size_t pending_ = 0;
  std::vector<std::size_t> backlog_;  ///< queued wire bytes per rail
};

class StratDefault final : public QueuedStrategy {
 public:
  StratDefault(const Sampling& s, StrategyOptions o) : QueuedStrategy(s, o, /*aggregate=*/false) {}
  std::vector<std::size_t> plan_rdv(std::size_t len) const override {
    std::vector<std::size_t> shares(sampling_.num_rails(), 0);
    shares[static_cast<std::size_t>(sampling_.fastest_live(live_))] = len;
    return shares;
  }
};

class StratAggreg final : public QueuedStrategy {
 public:
  StratAggreg(const Sampling& s, StrategyOptions o) : QueuedStrategy(s, o, /*aggregate=*/true) {}
  std::vector<std::size_t> plan_rdv(std::size_t len) const override {
    std::vector<std::size_t> shares(sampling_.num_rails(), 0);
    shares[static_cast<std::size_t>(sampling_.fastest_live(live_))] = len;
    return shares;
  }
};

class StratSplitBalance final : public QueuedStrategy {
 public:
  StratSplitBalance(const Sampling& s, StrategyOptions o)
      : QueuedStrategy(s, o, /*aggregate=*/true) {}
  std::vector<std::size_t> plan_rdv(std::size_t len) const override {
    if (!all_rails_live()) return sampling_.split_live(len, opts_.min_split_chunk, live_);
    if (!opts_.adaptive_split) return sampling_.split_even(len);
    return sampling_.split(len, opts_.min_split_chunk);
  }
};

/// Load-aware cost-model scheduler. Small entries are routed to the rail
/// with the earliest *predicted completion* (live NIC occupancy + queued
/// backlog + sampled alpha + len/beta), not blindly to the fastest rail.
/// Rendezvous payloads are held as jobs and carved into chunks on demand:
/// every time a rail asks for work the remaining bytes are re-split with the
/// current per-rail ready times, so rails that pick up contention mid-flight
/// shed their share to the others.
class StratCostModel final : public QueuedStrategy {
 public:
  StratCostModel(const Sampling& s, StrategyOptions o)
      : QueuedStrategy(s, o, /*aggregate=*/true), steals_(s.num_rails(), 0) {}

  bool plans_rdv_chunks() const override { return true; }

  void enqueue(Entry e) override {
    if (e.kind == Entry::Kind::RdvChunk && e.rail < 0) {
      RdvJob job;
      job.dst = e.dst_proc;
      job.rdv_id = e.rdv_id;
      job.base = e.offset;
      job.span = e.span;
      job.sreq = e.sreq;
      job.epoch = e.epoch;
      job.bytes = std::move(e.bytes);
      // Receiver load advertised in the CTS grant: convert each rail's
      // (busy_delta, backlog) into an absolute "ingress free at" estimate.
      // The advertised backlog drains at the rail's bandwidth, so the whole
      // advert collapses into one time horizon that decays naturally as the
      // transfer proceeds — no per-chunk re-advertisement needed.
      if (!e.rail_ads.empty()) {
        const Time now = load(sampling_.num_rails()).now;
        job.remote_free_abs.assign(sampling_.num_rails(), now);
        for (std::size_t r = 0; r < sampling_.num_rails(); ++r) {
          for (const RailAd& ad : e.rail_ads) {
            if (ad.fabric_rail != sampling_.rails()[r].fabric_rail) continue;
            job.remote_free_abs[r] = now + ad.busy_delta +
                                     static_cast<double>(ad.backlog_bytes) /
                                         sampling_.rails()[r].beta;
            break;
          }
        }
      }
      rdv_backlog_ += job.bytes.size();
      jobs_.push_back(std::move(job));
      return;
    }
    QueuedStrategy::enqueue(std::move(e));
  }

  std::optional<WireMsg> next(int rail, int src_proc) override {
    if (!rail_live(rail)) return std::nullopt;
    // Latency-sensitive queued traffic first, then rendezvous bulk.
    if (auto wm = QueuedStrategy::next(rail, src_proc)) return wm;
    return next_rdv_chunk(rail, src_proc);
  }

  bool pending() const override { return QueuedStrategy::pending() || !jobs_.empty(); }

  std::vector<std::size_t> plan_rdv(std::size_t len) const override {
    return sampling_.split_with_ready(len, opts_.min_split_chunk, rail_ready().ready);
  }

  std::size_t rdv_backlog_bytes() const override { return rdv_backlog_; }
  std::uint64_t steals(int rail) const override {
    return steals_.at(static_cast<std::size_t>(rail));
  }

  std::size_t cancel_rdv(int dst, std::uint64_t rdv_id) override {
    std::size_t dropped = QueuedStrategy::cancel_rdv(dst, rdv_id);
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->dst == dst && it->rdv_id == rdv_id) {
        const std::size_t rest = it->bytes.size() - it->consumed;
        rdv_backlog_ -= std::min(rdv_backlog_, rest);
        dropped += rest;
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
    return dropped;
  }

 protected:
  int pick_rail(const Entry& e) override {
    const std::vector<Time> ready = rail_ready().ready;
    int best = -1;
    Time best_t = 0;
    for (std::size_t r = 0; r < ready.size(); ++r) {
      if (!rail_live(static_cast<int>(r))) continue;
      const Time t = sampling_.completion(static_cast<int>(r), e.wire_bytes(), ready[r]);
      if (best < 0 || t < best_t) {
        best_t = t;
        best = static_cast<int>(r);
      }
    }
    NMX_ASSERT_MSG(best >= 0, "no live rail left");
    if (best != sampling_.fastest()) ++steals_[static_cast<std::size_t>(best)];
    return best;
  }

 private:
  struct RdvJob {
    int dst = -1;
    std::uint64_t rdv_id = 0;
    std::size_t base = 0;      ///< offset of bytes[0] in the full message
    std::size_t consumed = 0;  ///< bytes already carved into chunks
    std::uint64_t span = 0;
    std::uint32_t epoch = 0;   ///< grant epoch stamped on every carved chunk
    Request* sreq = nullptr;
    std::vector<std::byte> bytes;
    /// Per local rail: absolute time the *receiver's* ingress is estimated
    /// free, from the CTS load advert (empty = no advert, one-ended model).
    std::vector<Time> remote_free_abs;
  };

  struct ReadyState {
    Time now = 0;
    std::vector<Time> ready;  ///< earliest start per rail, relative to now
  };

  /// Earliest start time per rail, relative to now: live NIC occupancy from
  /// the probe plus the transfer time of wire bytes already queued here.
  ReadyState rail_ready() const {
    const RailLoad l = load(sampling_.num_rails());
    ReadyState rs;
    rs.now = l.now;
    rs.ready.assign(sampling_.num_rails(), 0.0);
    for (std::size_t r = 0; r < rs.ready.size(); ++r) {
      if (!rail_live(static_cast<int>(r))) {
        // Dead rail: infinitely backlogged, so every solve prunes it (same
        // convention as Sampling::split_live).
        rs.ready[r] = 1e30;
        continue;
      }
      rs.ready[r] = std::max(0.0, l.busy_until[r] - l.now) +
                    static_cast<double>(backlog_bytes(static_cast<int>(r))) /
                        sampling_.rails()[r].beta;
    }
    return rs;
  }

  /// Receiver-side ready times for `job`, relative to `now`. Decays to zero
  /// as the advertised horizon passes.
  std::vector<Time> remote_ready(const RdvJob& job, Time now) const {
    std::vector<Time> remote(sampling_.num_rails(), 0.0);
    for (std::size_t r = 0; r < job.remote_free_abs.size() && r < remote.size(); ++r) {
      remote[r] = std::max(0.0, job.remote_free_abs[r] - now);
    }
    return remote;
  }

  std::optional<WireMsg> next_rdv_chunk(int rail, int src_proc) {
    const ReadyState rs = rail_ready();
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      RdvJob& job = *it;
      const std::size_t remaining = job.bytes.size() - job.consumed;
      // Two-ended re-solve: the receiver's advertised ingress availability is
      // folded in element-wise with the local egress view, so a rail whose
      // far end is hammered sheds its share even when it looks idle here.
      const std::vector<Time> remote = remote_ready(job, rs.now);
      const std::vector<std::size_t> shares =
          sampling_.split_two_ended(remaining, opts_.min_split_chunk, rs.ready, remote);
      std::size_t take = shares[static_cast<std::size_t>(rail)];
      if (take == 0) continue;  // this rail is not worth using for this job now
      if (opts_.rdv_quantum > 0) take = std::min(take, opts_.rdv_quantum);

      Entry e;
      e.kind = Entry::Kind::RdvChunk;
      e.dst_proc = job.dst;
      e.rdv_id = job.rdv_id;
      e.offset = job.base + job.consumed;
      e.rail = rail;
      e.span = job.span;
      e.epoch = job.epoch;
      e.sreq = job.sreq;
      // Two-ended arrival estimate for this chunk, checked by the receiver
      // against the actual landing time (nmad.sched.remote_pred_error_us).
      e.pred_arrival =
          rs.now +
          std::max(rs.ready[static_cast<std::size_t>(rail)],
                   remote[static_cast<std::size_t>(rail)]) +
          sampling_.predict(rail, take + Entry::kRdvChunkHeader);
      e.bytes.assign(job.bytes.begin() + static_cast<std::ptrdiff_t>(job.consumed),
                     job.bytes.begin() + static_cast<std::ptrdiff_t>(job.consumed + take));
      job.consumed += take;
      rdv_backlog_ -= take;
      if (job.consumed == job.bytes.size()) jobs_.erase(it);

      WireMsg wm;
      wm.src_proc = src_proc;
      wm.dst_proc = e.dst_proc;
      wm.entries.push_back(std::move(e));
      ++packets_built_;
      ++entries_sent_;
      return wm;
    }
    return std::nullopt;
  }

  std::deque<RdvJob> jobs_;
  std::size_t rdv_backlog_ = 0;
  std::vector<std::uint64_t> steals_;
};

}  // namespace

std::unique_ptr<Strategy> make_strategy(StrategyKind kind, const Sampling& sampling,
                                        const StrategyOptions& opts) {
  switch (kind) {
    case StrategyKind::Default: return std::make_unique<StratDefault>(sampling, opts);
    case StrategyKind::Aggreg: return std::make_unique<StratAggreg>(sampling, opts);
    case StrategyKind::SplitBalance: return std::make_unique<StratSplitBalance>(sampling, opts);
    case StrategyKind::CostModel: return std::make_unique<StratCostModel>(sampling, opts);
  }
  NMX_FAIL("unknown strategy kind");
}

}  // namespace nmx::nmad
