// NewMadeleine wire format: the protocol units ("entries") strategies queue,
// and the wire message (packet wrapper) a strategy builds for one NIC
// submission. A wire message may aggregate several entries for the same
// destination — that is the whole point of the uncoupled request submission
// described in §2.2: "when a network becomes idle, it has the possibility to
// apply optimizations on the accumulated communication requests".
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "nmad/types.hpp"

namespace nmx::nmad {

/// One rail's receiver-side load advertisement, carried in the CTS grant so
/// the sender's cost model can account for *both* ends of the transfer. The
/// receiver samples these at grant time: how long its ingress channel is
/// already booked past "now" on this rail, plus how many rendezvous bytes it
/// has granted to other senders that have not landed yet (attributed to
/// rails by the observed per-peer arrival mix).
struct RailAd {
  int fabric_rail = -1;            ///< fabric rail index (receiver and sender
                                   ///< may drive different local subsets)
  Time busy_delta = 0;             ///< ingress booked this far past grant time
  std::uint64_t backlog_bytes = 0; ///< granted inbound bytes expected here
  /// Serialized size: rail id (4) + busy delta (8) + backlog (8).
  static constexpr std::size_t kWireSize = 4 + 8 + 8;
};

// Wire-layout pins. The serialized ad is the three fields above, packed in
// declaration order with no padding; a field added or widened without
// re-deriving kWireSize (and the CTS header charging that uses it) is a
// build error, not a silent cross-version framing bug.
static_assert(RailAd::kWireSize == sizeof(std::int32_t) + sizeof(std::uint64_t) +
                                       sizeof(std::uint64_t),
              "RailAd::kWireSize must equal the packed size of (fabric_rail, busy_delta, "
              "backlog_bytes); update the constant and the CTS charging together");
static_assert(RailAd::kWireSize == 20, "RailAd wire size is pinned at 20 bytes "
              "(tests/wire_test.cpp and the CTS header math both assume it)");

/// One protocol unit queued toward a destination.
struct Entry {
  enum class Kind : std::uint8_t { Eager, Rts, Cts, RdvChunk, RailDown, RdvFin, CollCtl };
  static constexpr int kNumKinds = 7;

  /// Fixed header cost per kind, excluding variable-length payload fields.
  /// Eager/RdvChunk: kind + dst + tag + seq/offset bookkeeping packed in 16
  /// (RdvChunk adds the 4-byte grant epoch it answers).
  /// Rts: adds rdv id + total size + matching info (32) plus the 4-byte
  /// retransmission counter.
  /// Cts: base grant (rdv id + ack) + 4-byte grant epoch — the per-rail load
  /// vector is charged on top via header_bytes(), see RailAd::kWireSize.
  /// RailDown: kind + dst bookkeeping + the dead fabric rail (16).
  /// RdvFin: receiver->sender completion ack — rdv id (8) + landed-byte ack
  /// (8) + the grant epoch it confirms (4). Retirement of the sender-side
  /// rendezvous state is gated on it (closes the restart orphan window).
  /// CollCtl: NIC-offloaded collective control (Yu et al. model) — eager
  /// bookkeeping + collective id (8) + combine value (8) + op/phase word (4).
  static constexpr std::size_t kEagerHeader = 16;
  static constexpr std::size_t kRtsHeader = 36;
  static constexpr std::size_t kCtsHeaderBase = 20;
  static constexpr std::size_t kRdvChunkHeader = 20;
  static constexpr std::size_t kRailDownHeader = 16;
  static constexpr std::size_t kRdvFinHeader = 20;
  static constexpr std::size_t kCollCtlHeader = 36;

  /// CollCtl op/phase word: bits 0..7 = reduce op (coll layer encoding),
  /// bit 8 = broadcast-down phase (unset = combine-up).
  static constexpr std::uint32_t kCollOpMask = 0xff;
  static constexpr std::uint32_t kCollDown = 0x100;

  Kind kind = Kind::Eager;
  int dst_proc = -1;
  Tag tag = 0;
  /// Per-(destination, tag) sequence number stamped on Eager and Rts so the
  /// receiver matches in MPI send order even across rails.
  std::uint32_t seq = 0;
  std::uint64_t rdv_id = 0;     ///< Rts / Cts / RdvChunk
  std::size_t rdv_total = 0;    ///< Rts: full message size
  std::size_t offset = 0;       ///< RdvChunk: position in the message
  /// Rts: retransmission attempt (0 = original). A retransmitted RTS reuses
  /// the original seq/rdv_id so it either slots into the matching stream (the
  /// original was lost) or is recognised as a duplicate (only the CTS was).
  std::uint32_t retry = 0;
  /// Cts / RdvChunk: the receiver's grant epoch. Bumped when the receiver
  /// restarts and re-grants; chunks answering a stale epoch are dropped by
  /// the receiver and not double-counted by the sender.
  std::uint32_t epoch = 0;
  /// RailDown: the fabric rail that died (receiver-to-sender notification so
  /// the sender re-plans in-flight rendezvous onto surviving rails).
  int down_rail = -1;
  /// CollCtl: the combine value riding the NIC collective tree edge (bit
  /// pattern preserved end to end — never arithmetic on the wire).
  double coll_value = 0;
  /// CollCtl: reduce op (kCollOpMask bits) + phase (kCollDown bit).
  std::uint32_t coll_ctl = 0;
  std::vector<std::byte> bytes; ///< Eager payload or RdvChunk data
  /// Cts: the receiver's per-rail load advertisement (empty when the
  /// receiver does not advertise). Also rides the internal unplanned-RdvChunk
  /// hand-off from the core to chunk-planning strategies; never serialized
  /// for other kinds.
  std::vector<RailAd> rail_ads;
  Request* sreq = nullptr;      ///< sender request to progress at egress
  int rail = 0;                 ///< local rail, assigned by the strategy
  std::uint64_t span = 0;       ///< message-lifecycle span this entry belongs to
  /// RdvChunk diagnostic (not charged on the wire, like span/sreq): the
  /// sender's predicted arrival time of this chunk at the receiver, from the
  /// two-ended estimator. The receiver compares it against the actual landing
  /// time (nmad.sched.remote_pred_error_us). 0 = not stamped.
  Time pred_arrival = 0;

  /// Header cost of this entry on the wire, derived from the fields the kind
  /// actually carries (tests/wire_test.cpp checks every kind against its
  /// field layout).
  std::size_t header_bytes() const {
    switch (kind) {
      case Kind::Eager: return kEagerHeader;
      case Kind::Rts: return kRtsHeader;
      case Kind::Cts: return kCtsHeaderBase + rail_ads.size() * RailAd::kWireSize;
      case Kind::RdvChunk: return kRdvChunkHeader;
      case Kind::RailDown: return kRailDownHeader;
      case Kind::RdvFin: return kRdvFinHeader;
      case Kind::CollCtl: return kCollCtlHeader;
    }
    return kEagerHeader;
  }

  static const char* kind_name(Kind k) {
    switch (k) {
      case Kind::Eager: return "Eager";
      case Kind::Rts: return "Rts";
      case Kind::Cts: return "Cts";
      case Kind::RdvChunk: return "RdvChunk";
      case Kind::RailDown: return "RailDown";
      case Kind::RdvFin: return "RdvFin";
      case Kind::CollCtl: return "CollCtl";
    }
    return "?";
  }
  std::size_t wire_bytes() const { return header_bytes() + bytes.size(); }
};

// Fixed-header layout pins, derived from the field widths each kind carries
// (the same derivations tests/wire_test.cpp checks at runtime; here they are
// build errors). nmx_lint's wire-conformance pass closes the remaining gap:
// every Kind enumerator must be charged in header_bytes() and pinned in
// tests/wire_test.cpp, which a static_assert cannot express.
static_assert(Entry::kEagerHeader == 16,
              "eager header: kind + dst + tag + seq bookkeeping packed in 16");
static_assert(Entry::kRtsHeader == Entry::kEagerHeader + sizeof(std::uint64_t) +
                                       sizeof(std::uint64_t) + sizeof(std::uint32_t),
              "RTS header = eager bookkeeping + rdv id (8) + total size (8) + retry (4)");
static_assert(Entry::kCtsHeaderBase ==
                  sizeof(std::uint64_t) + sizeof(std::uint64_t) + sizeof(std::uint32_t),
              "CTS base grant = rdv id (8) + ack (8) + grant epoch (4); "
              "per-rail ads are charged on top via RailAd::kWireSize");
static_assert(Entry::kRdvChunkHeader == Entry::kEagerHeader + sizeof(std::uint32_t),
              "rdv chunk header = eager bookkeeping + the grant epoch it answers (4)");
static_assert(Entry::kRailDownHeader == Entry::kEagerHeader,
              "rail-down notification: kind + dst bookkeeping + dead rail fit the 16-byte base");
static_assert(Entry::kRdvFinHeader ==
                  sizeof(std::uint64_t) + sizeof(std::uint64_t) + sizeof(std::uint32_t),
              "rdv completion ack = rdv id (8) + landed-byte ack (8) + grant epoch (4)");
static_assert(Entry::kCollCtlHeader == Entry::kEagerHeader + sizeof(std::uint64_t) +
                                           sizeof(double) + sizeof(std::uint32_t),
              "CollCtl header = eager bookkeeping + collective id (8) + combine value (8) + "
              "op/phase word (4)");

/// One NIC submission: entries aggregated for a single destination.
struct WireMsg {
  int src_proc = -1;
  int dst_proc = -1;
  std::vector<Entry> entries;

  std::size_t wire_bytes() const {
    return std::accumulate(entries.begin(), entries.end(), std::size_t{0},
                           [](std::size_t a, const Entry& e) { return a + e.wire_bytes(); });
  }
  /// Bytes that were memcpy'd into the packet wrapper (eager payloads) —
  /// charged at host copy bandwidth on submission.
  std::size_t copied_bytes() const {
    std::size_t n = 0;
    for (const Entry& e : entries)
      if (e.kind == Entry::Kind::Eager) n += e.bytes.size();
    return n;
  }
  /// Rendezvous payload bytes (zero-copy, but need registration on IB).
  std::size_t rdv_bytes() const {
    std::size_t n = 0;
    for (const Entry& e : entries)
      if (e.kind == Entry::Kind::RdvChunk) n += e.bytes.size();
    return n;
  }
};

}  // namespace nmx::nmad
