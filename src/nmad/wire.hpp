// NewMadeleine wire format: the protocol units ("entries") strategies queue,
// and the wire message (packet wrapper) a strategy builds for one NIC
// submission. A wire message may aggregate several entries for the same
// destination — that is the whole point of the uncoupled request submission
// described in §2.2: "when a network becomes idle, it has the possibility to
// apply optimizations on the accumulated communication requests".
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "nmad/types.hpp"

namespace nmx::nmad {

/// One protocol unit queued toward a destination.
struct Entry {
  enum class Kind : std::uint8_t { Eager, Rts, Cts, RdvChunk };

  Kind kind = Kind::Eager;
  int dst_proc = -1;
  Tag tag = 0;
  /// Per-(destination, tag) sequence number stamped on Eager and Rts so the
  /// receiver matches in MPI send order even across rails.
  std::uint32_t seq = 0;
  std::uint64_t rdv_id = 0;     ///< Rts / Cts / RdvChunk
  std::size_t rdv_total = 0;    ///< Rts: full message size
  std::size_t offset = 0;       ///< RdvChunk: position in the message
  std::vector<std::byte> bytes; ///< Eager payload or RdvChunk data
  Request* sreq = nullptr;      ///< sender request to progress at egress
  int rail = 0;                 ///< local rail, assigned by the strategy
  std::uint64_t span = 0;       ///< message-lifecycle span this entry belongs to

  /// Header cost of this entry on the wire.
  std::size_t header_bytes() const {
    switch (kind) {
      case Kind::Eager: return 16;
      case Kind::Rts: return 32;
      case Kind::Cts: return 16;
      case Kind::RdvChunk: return 16;
    }
    return 16;
  }
  std::size_t wire_bytes() const { return header_bytes() + bytes.size(); }
};

/// One NIC submission: entries aggregated for a single destination.
struct WireMsg {
  int src_proc = -1;
  int dst_proc = -1;
  std::vector<Entry> entries;

  std::size_t wire_bytes() const {
    return std::accumulate(entries.begin(), entries.end(), std::size_t{0},
                           [](std::size_t a, const Entry& e) { return a + e.wire_bytes(); });
  }
  /// Bytes that were memcpy'd into the packet wrapper (eager payloads) —
  /// charged at host copy bandwidth on submission.
  std::size_t copied_bytes() const {
    std::size_t n = 0;
    for (const Entry& e : entries)
      if (e.kind == Entry::Kind::Eager) n += e.bytes.size();
    return n;
  }
  /// Rendezvous payload bytes (zero-copy, but need registration on IB).
  std::size_t rdv_bytes() const {
    std::size_t n = 0;
    for (const Entry& e : entries)
      if (e.kind == Entry::Kind::RdvChunk) n += e.bytes.size();
    return n;
  }
};

}  // namespace nmx::nmad
