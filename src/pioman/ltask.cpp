#include "pioman/ltask.hpp"

#include "common/assert.hpp"

namespace nmx::pioman {

bool Ltask::step() {
  NMX_ASSERT(state_ == LtaskState::Scheduled || state_ == LtaskState::Created);
  state_ = LtaskState::Running;
  ++runs_;
  const bool again = body_();
  state_ = LtaskState::Scheduled;  // persistent pollable: parked, not done
  return again;
}

}  // namespace nmx::pioman
