#include "pioman/pioman.hpp"

namespace nmx::pioman {

Manager::Manager(sim::Engine& eng, ManagerConfig cfg) : eng_(eng), cfg_(cfg) {}

Ltask& Manager::submit(std::string name, Ltask::Body body) {
  tasks_.push_back(std::make_unique<Ltask>(std::move(name), std::move(body)));
  tasks_.back()->state_ = LtaskState::Scheduled;
  return *tasks_.back();
}

void Manager::notify() {
  if (scheduled_) return;
  scheduled_ = true;
  eng_.schedule_in_checked(cfg_.reaction_period, [this] {
    scheduled_ = false;
    service();
  });
}

void Manager::service() {
  ++passes_;
  bool more = false;
  int serviced = 0;
  for (auto& t : tasks_) {
    if (t->state() == LtaskState::Done) continue;
    if (t->step()) {
      more = true;
      ++serviced;
    }
  }
  if (obs::Recorder* rec = eng_.recorder()) {
    rec->instant(eng_.now(), cfg_.rank, obs::Cat::PiomanPass, 0, serviced);
    rec->metrics().counter("pioman.passes").add(1);
    rec->metrics()
        .histogram("pioman.pass.serviced", {0, 1, 2, 4, 8})
        .observe(static_cast<double>(serviced));
  }
  if (more) notify();
}

}  // namespace nmx::pioman
