#include "pioman/pioman.hpp"

namespace nmx::pioman {

Manager::Manager(sim::Engine& eng, ManagerConfig cfg) : eng_(eng), cfg_(cfg) {}

Ltask& Manager::submit(std::string name, Ltask::Body body) {
  tasks_.push_back(std::make_unique<Ltask>(std::move(name), std::move(body)));
  tasks_.back()->state_ = LtaskState::Scheduled;
  return *tasks_.back();
}

void Manager::notify() {
  if (scheduled_) return;
  scheduled_ = true;
  eng_.schedule_in(cfg_.reaction_period, [this] {
    scheduled_ = false;
    service();
  });
}

void Manager::service() {
  if (sim::Tracer* tr = eng_.tracer()) {
    tr->record(eng_.now(), -1, sim::TraceCat::PiomanPass);
  }
  ++passes_;
  bool more = false;
  for (auto& t : tasks_) {
    if (t->state() == LtaskState::Done) continue;
    if (t->step()) more = true;
  }
  if (more) notify();
}

}  // namespace nmx::pioman
