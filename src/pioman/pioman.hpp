// PIOMan: the I/O event manager (§2.2.2, §3.3).
//
// PIOMan's job in the paper is to guarantee communication progress while the
// application computes: "the detection of the message completion is performed
// in the background by PIOMan during context switches, timer interrupts or
// when a CPU is idle". We model those trigger points with a reaction period:
// when gated work appears (a packet pended, a strategy has unflushed
// entries, shm cells landed), the Manager schedules a service pass
// `reaction_period` later on the simulated idle core, and keeps servicing
// while work remains.
//
// The measured price of this machinery — thread-safe request lists and driver
// locks — is charged by the layers themselves (calib::kPiomanNetOverhead,
// kPiomanShmOverhead) whenever PIOMan mode is on; the Manager contributes the
// *asynchrony*, not the constants.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/calibration.hpp"
#include "pioman/ltask.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace nmx::pioman {

struct ManagerConfig {
  Time reaction_period = calib::kPiomanReactionPeriod;
  /// Rank this manager serves, for trace attribution (-1 = engine-wide).
  int rank = -1;
};

class Manager {
 public:
  Manager(sim::Engine& eng, ManagerConfig cfg = {});

  /// Submit a recurring poll task. Its body runs at every service pass and
  /// returns whether more gated work may remain.
  Ltask& submit(std::string name, Ltask::Body body);

  /// Signal that gated work appeared (hooked to NewMadeleine's async
  /// notifier and the Nemesis mailbox). Schedules a service pass one
  /// reaction period out, if none is pending.
  void notify();

  std::uint64_t service_passes() const { return passes_; }

 private:
  void service();

  sim::Engine& eng_;
  ManagerConfig cfg_;
  std::vector<std::unique_ptr<Ltask>> tasks_;
  bool scheduled_ = false;
  std::uint64_t passes_ = 0;
};

}  // namespace nmx::pioman
