// PIOMan ltasks: the unit of background progression work (§2.2.2).
//
// Real PIOMan submits small polling tasks ("ltasks") to the Marcel thread
// scheduler, which runs them on whatever core is idle, on context switches
// and on timer interrupts. Here an ltask is a callback with a state machine
// and an optional repetition: the Manager runs ready ltasks at its reaction
// points, and an ltask that reports more pending work is rescheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace nmx::pioman {

enum class LtaskState : std::uint8_t {
  Created,    ///< not yet submitted
  Scheduled,  ///< waiting for a reaction point
  Running,    ///< body executing
  Done,       ///< completed, will not run again
};

class Ltask {
 public:
  /// The body returns true while it believes more gated work remains — the
  /// Manager then schedules another reaction without waiting for a new
  /// notification. Poll tasks are persistent: returning false parks the
  /// task until the next notify(), it does not complete it.
  using Body = std::function<bool()>;

  Ltask(std::string name, Body body) : name_(std::move(name)), body_(std::move(body)) {}

  const std::string& name() const { return name_; }
  LtaskState state() const { return state_; }
  std::uint64_t runs() const { return runs_; }

  /// Permanently retire the task (e.g. endpoint teardown).
  void complete() { state_ = LtaskState::Done; }

  /// Execute one step. Returns true if more work may remain.
  bool step();

 private:
  friend class Manager;
  std::string name_;
  Body body_;
  LtaskState state_ = LtaskState::Created;
  std::uint64_t runs_ = 0;
};

}  // namespace nmx::pioman
