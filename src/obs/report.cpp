#include "obs/report.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>

namespace nmx::obs {

namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Escape the few characters run names could smuggle into a JSON string.
std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void write_critpath(const CritPathResult& cp, std::ostream& os) {
  os << "{\"wall\":" << num(cp.wall) << ",\"compute\":" << num(cp.compute)
     << ",\"wire\":" << num(cp.wire) << ",\"sw\":" << num(cp.sw)
     << ",\"blocked\":" << num(cp.blocked)
     << ",\"wire_share\":" << num(cp.wire_share()) << ",\"wire_by_rail\":{";
  bool first = true;
  for (const auto& [rail, d] : cp.wire_by_rail) {
    if (!first) os << ",";
    first = false;
    os << "\"" << rail << "\":" << num(d);
  }
  os << "},\"iterations\":[";
  first = true;
  for (const IterPath& it : cp.iterations) {
    if (!first) os << ",";
    first = false;
    os << "{\"iter\":" << it.iter << ",\"wall\":" << num(it.wall())
       << ",\"path_sum\":" << num(it.path_sum())
       << ",\"compute\":" << num(it.compute) << ",\"wire\":" << num(it.wire)
       << ",\"sw\":" << num(it.sw) << ",\"blocked\":" << num(it.blocked)
       << "}";
  }
  os << "]}";
}

void write_tolerance(const ToleranceReport& tr, std::ostream& os) {
  os << "{\"measured_wall\":" << num(tr.measured_wall)
     << ",\"model_wall\":" << num(tr.model_wall)
     << ",\"model_error\":" << num(tr.model_error)
     << ",\"critical_rail\":" << tr.critical_rail << ",\"rails\":[";
  bool first = true;
  for (const RailTolerance& r : tr.rails) {
    if (!first) os << ",";
    first = false;
    os << "{\"rail\":" << r.rail << ",\"name\":" << jstr(r.name)
       << ",\"wire_time\":" << num(r.wire_time)
       << ",\"wire_share\":" << num(r.wire_share)
       << ",\"tol_1pct\":" << num(r.tol_1pct)
       << ",\"tol_5pct\":" << num(r.tol_5pct)
       << ",\"tol_10pct\":" << num(r.tol_10pct) << "}";
  }
  os << "],\"sweep\":[";
  first = true;
  for (const SweepPoint& s : tr.sweep) {
    if (!first) os << ",";
    first = false;
    os << "{\"rail\":" << s.rail << ",\"lambda_scale\":" << num(s.lambda_scale)
       << ",\"wall_growth\":" << num(s.wall_growth) << "}";
  }
  os << "]}";
}

/// Tile the extracted critical path by collective phase: for every path
/// segment, the time overlapping a Cat::Coll span on the segment's rank is
/// attributed to that span's op (the Coll arg packs op in bits 8+).
std::vector<CollPhase> tile_coll_phases(const SpanIndex& idx, const CritPathResult& cp) {
  constexpr std::array<const char*, 4> kOp = {"barrier", "bcast", "allreduce", "alltoall"};
  struct Iv {
    Time t0, t1;
    int op;
  };
  std::map<int, std::vector<Iv>> by_rank;
  std::array<std::uint64_t, 4> span_count{};
  // nmx-lint: allow(determinism) intervals are sorted and counts summed; visitation order cannot leak
  for (const auto& [id, s] : idx.spans) {
    if (s.cat != Cat::Coll || !s.closed) continue;
    const int op = static_cast<int>(s.arg_begin >> 8);
    if (op < 0 || op >= static_cast<int>(kOp.size())) continue;
    by_rank[s.rank].push_back(Iv{s.t0, s.t1, op});
    ++span_count[static_cast<std::size_t>(op)];
  }
  if (by_rank.empty()) return {};
  for (auto& [rank, ivs] : by_rank) {
    std::sort(ivs.begin(), ivs.end(),
              [](const Iv& a, const Iv& b) { return a.t0 < b.t0; });
  }

  std::array<double, 4> crit{};
  for (const IterPath& it : cp.iterations) {
    for (const PathSegment& seg : it.segments) {
      const auto r = by_rank.find(seg.rank);
      if (r == by_rank.end()) continue;
      for (const Iv& iv : r->second) {
        if (iv.t0 >= seg.t1) break;
        const double ov = std::min(seg.t1, iv.t1) - std::max(seg.t0, iv.t0);
        if (ov > 0) crit[static_cast<std::size_t>(iv.op)] += ov;
      }
    }
  }

  std::vector<CollPhase> out;
  for (std::size_t op = 0; op < kOp.size(); ++op) {
    if (span_count[op] == 0) continue;
    out.push_back(CollPhase{static_cast<int>(op), kOp[op], crit[op], span_count[op]});
  }
  return out;
}

}  // namespace

RunReport analyze_run(const Recorder& rec, std::string name, int ranks,
                      const std::vector<RailParam>& rails) {
  RunReport run;
  run.name = std::move(name);
  run.ranks = ranks;
  const SpanIndex idx = build_span_index(rec);
  run.critpath = extract_critical_path(idx);
  run.tolerance = analyze_latency_tolerance(idx, run.critpath, rails);
  run.coll = tile_coll_phases(idx, run.critpath);
  return run;
}

void write_report(const Report& rep, std::ostream& os) {
  os << "{\"schema\":\"nmx-report-v1\",\"bench\":" << jstr(rep.bench)
     << ",\"runs\":[\n";
  bool first = true;
  for (const RunReport& run : rep.runs) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":" << jstr(run.name) << ",\"ranks\":" << run.ranks
       << ",\"critpath\":";
    write_critpath(run.critpath, os);
    os << ",\"latency_tolerance\":";
    write_tolerance(run.tolerance, os);
    os << ",\"coll\":{\"covered\":" << num(run.coll_covered()) << ",\"phases\":[";
    bool pfirst = true;
    for (const CollPhase& p : run.coll) {
      if (!pfirst) os << ",";
      pfirst = false;
      os << "{\"op\":" << jstr(p.name) << ",\"crit_time\":" << num(p.crit_time)
         << ",\"spans\":" << p.spans << "}";
    }
    os << "]}}";
  }
  os << "\n]}\n";
}

bool write_report_file(const Report& rep, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_report(rep, os);
  return static_cast<bool>(os);
}

void print_report_summary(const Report& rep, std::ostream& os) {
  char buf[256];
  os << "== " << rep.bench << ": critical-path composition & latency tolerance ==\n";
  std::snprintf(buf, sizeof(buf), "%-28s %9s %8s %8s %8s %8s %8s  %s\n", "run",
                "wall(ms)", "compute", "wire", "sw", "blocked", "model", "tol(10%)");
  os << buf;
  for (const RunReport& run : rep.runs) {
    const CritPathResult& cp = run.critpath;
    const double w = cp.wall > 0 ? cp.wall : 1;
    std::string tol = "-";
    for (const RailTolerance& r : run.tolerance.rails) {
      if (r.rail == run.tolerance.critical_rail && r.tol_10pct >= 0) {
        std::snprintf(buf, sizeof(buf), "%.1fus@rail%d", r.tol_10pct * 1e6, r.rail);
        tol = buf;
        break;
      }
    }
    std::snprintf(buf, sizeof(buf),
                  "%-28s %9.2f %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.2f%%  %s\n",
                  run.name.c_str(), cp.wall * 1e3, 100 * cp.compute / w,
                  100 * cp.wire / w, 100 * cp.sw / w, 100 * cp.blocked / w,
                  100 * run.tolerance.model_error, tol.c_str());
    os << buf;
    if (!run.coll.empty()) {
      std::string phases;
      for (const CollPhase& p : run.coll) {
        std::snprintf(buf, sizeof(buf), " %s=%.1f%%", p.name.c_str(),
                      100 * p.crit_time / w);
        phases += buf;
      }
      std::snprintf(buf, sizeof(buf), "%-28s   coll tiling: %.1f%% of path:%s\n", "",
                    100 * run.coll_covered(), phases.c_str());
      os << buf;
    }
  }
}

}  // namespace nmx::obs
