#include "obs/recorder.hpp"

#include <map>

namespace nmx::obs {

const char* to_string(Cat cat) {
  switch (cat) {
    case Cat::MpiSend: return "MPI_SEND";
    case Cat::MpiRecv: return "MPI_RECV";
    case Cat::MpiWait: return "MPI_WAIT";
    case Cat::MpiColl: return "MPI_COLL";
    case Cat::NmadTx: return "NMAD_TX";
    case Cat::NmadRx: return "NMAD_RX";
    case Cat::NmadRdv: return "NMAD_RDV";
    case Cat::ShmCell: return "SHM_CELL";
    case Cat::PiomanPass: return "PIOM_PASS";
    case Cat::Compute: return "COMPUTE";
    case Cat::MsgSend: return "MSG_SEND";
    case Cat::MsgRecv: return "MSG_RECV";
    case Cat::StratEnqueue: return "STRAT_ENQ";
    case Cat::RdvRts: return "RDV_RTS";
    case Cat::RdvCts: return "RDV_CTS";
    case Cat::RdvData: return "RDV_DATA";
    case Cat::Unexpected: return "UNEXPECTED";
    case Cat::Iter: return "ITER";
    case Cat::MsgMatch: return "MSG_MATCH";
    case Cat::WireLand: return "WIRE_LAND";
    case Cat::Coll: return "COLL";
  }
  return "?";
}

void Recorder::set_capacity(std::size_t cap) {
  cap_ = cap;
  // Re-establish the invariants under the new bound: rings start at 0 and
  // sizes fit. Oldest entries go first, same as steady-state overwrite.
  normalize(records_, rec_start_);
  normalize(samples_, samp_start_);
  if (cap_ == 0) return;
  if (records_.size() > cap_) {
    const std::size_t excess = records_.size() - cap_;
    records_.erase(records_.begin(), records_.begin() + static_cast<std::ptrdiff_t>(excess));
    dropped_records_ += excess;
  }
  if (samples_.size() > cap_) {
    const std::size_t excess = samples_.size() - cap_;
    samples_.erase(samples_.begin(), samples_.begin() + static_cast<std::ptrdiff_t>(excess));
    dropped_samples_ += excess;
  }
}

std::vector<SpanId> Recorder::unbalanced_spans() const {
  std::map<SpanId, int> open;  // +1 per Begin, -1 per End
  for (const Record& r : records_) {
    if (r.ph == Ph::Begin) ++open[r.span];
    if (r.ph == Ph::End) --open[r.span];
  }
  std::vector<SpanId> out;
  for (const auto& [id, n] : open) {
    if (n != 0) out.push_back(id);
  }
  return out;
}

}  // namespace nmx::obs
