// CSV exporters: the metrics sidecar every figure bench writes next to its
// table, and a raw event dump for per-message dependency analysis (the LLAMP
// style of latency-sensitivity work needs the individual records, not the
// aggregates).
#pragma once

#include <iosfwd>
#include <string>

namespace nmx::obs {

class Recorder;

/// Metrics registry dump: `kind,name,label,field,value` (see
/// Registry::write_csv for the row grammar).
void write_metrics_csv(const Recorder& rec, std::ostream& os);
bool write_metrics_csv_file(const Recorder& rec, const std::string& path);

/// Raw record dump: `t_us,rank,category,phase,span,bytes,arg`.
void write_events_csv(const Recorder& rec, std::ostream& os);

}  // namespace nmx::obs
