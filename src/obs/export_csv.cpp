#include "obs/export_csv.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "obs/recorder.hpp"

namespace nmx::obs {

void write_metrics_csv(const Recorder& rec, std::ostream& os) {
  rec.metrics().write_csv(os);
}

bool write_metrics_csv_file(const Recorder& rec, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_metrics_csv(rec, os);
  return static_cast<bool>(os);
}

void write_events_csv(const Recorder& rec, std::ostream& os) {
  os << "t_us,rank,category,phase,span,bytes,arg\n";
  for (const Record& r : rec.records()) {
    char t[32];
    std::snprintf(t, sizeof(t), "%.3f", r.t * 1e6);
    const char* ph = r.ph == Ph::Instant ? "i" : r.ph == Ph::Begin ? "B" : "E";
    os << t << ',' << r.rank << ',' << to_string(r.cat) << ',' << ph << ',' << r.span << ','
       << r.bytes << ',' << r.arg << '\n';
  }
}

}  // namespace nmx::obs
