// Metrics registry: named counters, gauges and fixed-bucket histograms the
// protocol layers update while a Recorder is attached to the Engine. Metrics
// answer the aggregate questions the event stream is too fine-grained for —
// per-rail byte totals, strategy queue depth, PIOMan pass counts, rendezvous
// handshake latency — and export as a machine-readable CSV sidecar
// (obs/export_csv.hpp) next to every figure bench's table.
//
// Identity is (name, label): `nmad.rail.tx_bytes` with label `rail=0` and
// `rail=1` are two counters. Lookup is by map, so callers on hot paths should
// only touch the registry when tracing is enabled (recorder attached).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace nmx::obs {

/// Monotonically increasing event count or byte total.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Point-in-time level (queue depth, pinned bytes). Remembers its high-water
/// mark so a summary row captures transients the final value would hide.
class Gauge {
 public:
  void set(double v) {
    v_ = v;
    if (v > max_) max_ = v;
  }
  void add(double d) { set(v_ + d); }
  double value() const { return v_; }
  double max() const { return max_; }

 private:
  double v_ = 0;
  double max_ = 0;
};

/// Fixed-bucket histogram. A sample lands in the first bucket whose upper
/// edge is >= the value ("le" semantics); samples above the last edge land in
/// the overflow bucket, so bucket_counts().size() == edges().size() + 1.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& edges() const { return edges_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> edges_;           // ascending upper edges
  std::vector<std::uint64_t> counts_;   // edges_.size() + 1 (last = overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

class Registry {
 public:
  using Key = std::pair<std::string, std::string>;  // (name, label)

  Counter& counter(const std::string& name, const std::string& label = "");
  Gauge& gauge(const std::string& name, const std::string& label = "");
  /// `edges` only takes effect on the call that creates the histogram.
  Histogram& histogram(const std::string& name, std::vector<double> edges,
                       const std::string& label = "");

  /// Lookup without creating; null when absent.
  const Counter* find_counter(const std::string& name, const std::string& label = "") const;
  const Gauge* find_gauge(const std::string& name, const std::string& label = "") const;
  const Histogram* find_histogram(const std::string& name, const std::string& label = "") const;

  const std::map<Key, Counter>& counters() const { return counters_; }
  const std::map<Key, Gauge>& gauges() const { return gauges_; }
  const std::map<Key, Histogram>& histograms() const { return histograms_; }

  bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }
  void clear();

  /// CSV dump, one row per scalar: `kind,name,label,field,value`. Counters
  /// emit `value`; gauges `last` and `max`; histograms `count`, `sum` and a
  /// cumulative `le_<edge>` row per bucket plus `le_inf`.
  void write_csv(std::ostream& os) const;

 private:
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

}  // namespace nmx::obs
