#include "obs/critpath.hpp"

#include <algorithm>
#include <cmath>

namespace nmx::obs {

namespace {

/// Two records closer than this are treated as simultaneous. Simulated times
/// are exact doubles; eps only guards against accumulated rounding in the
/// walk itself.
constexpr double kEps = 1e-12;

}  // namespace

const char* to_string(SegKind k) {
  switch (k) {
    case SegKind::Compute: return "compute";
    case SegKind::Wire: return "wire";
    case SegKind::Sw: return "sw";
    case SegKind::Blocked: return "blocked";
  }
  return "?";
}

SpanIndex build_span_index(const Recorder& rec) {
  SpanIndex idx;
  const std::vector<Record>& recs = rec.records();

  // Iteration windows are keyed by iteration index; built from the record
  // stream (not the span map) so construction order is deterministic.
  std::map<int, IterWindow> iters;
  int last_rank = 0;  // rank of the latest record — synthetic-window fallback

  bool first = true;
  for (const Record& r : recs) {
    if (first) {
      idx.t_min = idx.t_max = r.t;
      first = false;
    }
    idx.t_min = std::min(idx.t_min, r.t);
    if (r.t >= idx.t_max) {
      idx.t_max = r.t;
      if (r.rank >= 0) last_rank = r.rank;
    }
    switch (r.ph) {
      case Ph::Begin: {
        SpanInfo& s = idx.spans[r.span];
        s.cat = r.cat;
        s.rank = r.rank;
        s.t0 = s.t1 = r.t;
        s.closed = false;
        s.bytes = r.bytes;
        s.arg_begin = r.arg;
        break;
      }
      case Ph::End: {
        const auto it = idx.spans.find(r.span);
        if (it == idx.spans.end()) break;  // Begin lost to ring rotation
        SpanInfo& s = it->second;
        s.t1 = r.t;
        s.closed = true;
        s.arg_end = r.arg;
        // Activity timelines and iteration windows are closed-span views;
        // push at End time so insertion order is the record order.
        if (s.rank >= 0) {
          if (s.cat == Cat::MpiWait) {
            idx.activity[s.rank].push_back(
                Interval{s.t0, s.t1, true, static_cast<SpanId>(s.arg_end)});
          } else if (s.cat == Cat::Compute) {
            idx.activity[s.rank].push_back(Interval{s.t0, s.t1, false, 0});
          } else if (s.cat == Cat::Iter && s.arg_begin >= 0) {
            IterWindow& w = iters[static_cast<int>(s.arg_begin)];
            w.iter = static_cast<int>(s.arg_begin);
            if (w.per_rank.empty() || s.t0 < w.t0) w.t0 = s.t0;
            if (w.per_rank.empty() || s.t1 > w.t1) {
              w.t1 = s.t1;
              w.end_rank = s.rank;
            }
            w.per_rank[s.rank] = {s.t0, s.t1};
          }
        }
        break;
      }
      case Ph::Instant:
        if (r.cat == Cat::MsgMatch && r.span != 0 && r.arg > 0) {
          idx.match[r.span] = static_cast<SpanId>(r.arg);
          idx.rmatch[static_cast<SpanId>(r.arg)] = r.span;
        } else if (r.cat == Cat::WireLand && r.span != 0) {
          idx.landings[r.span].push_back(
              Landing{r.t, static_cast<int>(r.arg), r.bytes});
        }
        break;
    }
  }

  for (auto& [rank, v] : idx.activity) {
    std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
      if (a.t0 != b.t0) return a.t0 < b.t0;
      if (a.t1 != b.t1) return a.t1 < b.t1;
      return a.waited < b.waited;
    });
  }

  idx.iters.reserve(iters.size());
  for (auto& [i, w] : iters) idx.iters.push_back(std::move(w));

  if (idx.iters.empty() && !recs.empty()) {
    // No Iter spans (e.g. a microbench): analyze the whole trace as one
    // window, starting the walk on the rank whose activity ended last.
    IterWindow w;
    w.iter = -1;
    w.t0 = idx.t_min;
    w.t1 = idx.t_max;
    w.end_rank = last_rank;
    Time best = idx.t_min - 1;
    for (const auto& [rank, v] : idx.activity) {
      if (!v.empty()) {
        Time end = v.front().t1;
        for (const Interval& iv : v) end = std::max(end, iv.t1);
        if (end > best) {
          best = end;
          w.end_rank = rank;
        }
      }
    }
    idx.iters.push_back(w);
    idx.synthetic_window = true;
  }
  return idx;
}

namespace {

/// Latest activity interval of `rank` starting strictly before `t` (nullptr
/// when the rank has none).
const Interval* interval_before(const SpanIndex& idx, int rank, Time t) {
  const auto it_act = idx.activity.find(rank);
  if (it_act == idx.activity.end()) return nullptr;
  const std::vector<Interval>& v = it_act->second;
  const auto it = std::upper_bound(
      v.begin(), v.end(), t - kEps,
      [](Time x, const Interval& iv) { return x < iv.t0; });
  if (it == v.begin()) return nullptr;
  return &*std::prev(it);
}

/// Latest landing of sender span `send` no later than `t`. Ties on time break
/// toward the lowest rail index (deterministic multi-rail overlap handling).
bool last_landing(const SpanIndex& idx, SpanId send, Time t, Time& t_land,
                  int& rail) {
  const auto it = idx.landings.find(send);
  if (it == idx.landings.end()) return false;
  bool have = false;
  for (const Landing& L : it->second) {
    if (L.t > t + kEps) continue;  // landed after the frontier: not this path
    if (!have || L.t > t_land + kEps ||
        (std::abs(L.t - t_land) <= kEps && L.rail < rail)) {
      t_land = L.t;
      rail = L.rail;
      have = true;
    }
  }
  return have;
}

IterPath extract_iter(const SpanIndex& idx, const IterWindow& w) {
  IterPath p;
  p.iter = w.iter;
  p.t_begin = w.t0;
  p.t_end = w.t1;

  auto emit = [&](int rank, Time a, Time b, SegKind kind, int rail,
                  SpanId cause) {
    a = std::max(a, w.t0);
    b = std::min(b, w.t1);
    if (b - a <= 0) return;
    p.segments.push_back(PathSegment{rank, a, b, kind, rail, cause});
    const double d = b - a;
    switch (kind) {
      case SegKind::Compute: p.compute += d; break;
      case SegKind::Wire:
        p.wire += d;
        p.wire_by_rail[rail] += d;
        break;
      case SegKind::Sw: p.sw += d; break;
      case SegKind::Blocked: p.blocked += d; break;
    }
  };

  int r = w.end_rank;
  Time t = w.t1;
  // Every step strictly decreases t; the guard only catches degenerate
  // traces (e.g. all records at one instant).
  std::size_t guard = 16 * (idx.spans.size() + idx.match.size()) + 1024;

  while (t > w.t0 + kEps) {
    if (guard-- == 0) {
      emit(r, w.t0, t, SegKind::Blocked, -1, 0);
      break;
    }
    const Interval* iv = interval_before(idx, r, t);
    if (iv == nullptr || iv->t1 < t - kEps) {
      // Gap between instrumented intervals: the rank was running protocol /
      // library code — software overhead.
      const Time g0 = std::max(w.t0, iv ? iv->t1 : w.t0);
      emit(r, g0, t, SegKind::Sw, -1, 0);
      t = g0;
      continue;
    }
    if (!iv->wait) {
      emit(r, iv->t0, t, SegKind::Compute, -1, 0);
      t = std::max(w.t0, iv->t0);
      continue;
    }
    // Inside a wait. If the frontier is strictly before the wait's end we
    // arrived via a jump while the rank was still blocked; the resolving
    // event lies in the future of this frontier, so charge blocked time back
    // to the wait's start.
    auto blocked_to_start = [&] {
      emit(r, iv->t0, t, SegKind::Blocked, -1, iv->waited);
      t = std::max(w.t0, iv->t0);
    };
    if (t < iv->t1 - kEps) {
      blocked_to_start();
      continue;
    }
    const SpanId waited = iv->waited;
    const auto si = idx.spans.find(waited);
    if (waited == 0 || si == idx.spans.end()) {
      blocked_to_start();
      continue;
    }
    const SpanInfo& s = si->second;
    if (s.cat == Cat::MsgRecv) {
      // The wait resolved on a receive: follow the message to its sender.
      const auto mi = idx.match.find(waited);
      const SpanInfo* send = nullptr;
      SpanId send_id = 0;
      if (mi != idx.match.end()) {
        const auto pi = idx.spans.find(mi->second);
        if (pi != idx.spans.end()) {
          send = &pi->second;
          send_id = mi->second;
        }
      }
      if (send == nullptr || send->t0 >= t - kEps) {
        blocked_to_start();
        continue;
      }
      const Time t_post = send->t0;
      Time t_land = t_post;
      int rail = -1;
      if (last_landing(idx, send_id, t, t_land, rail) && t_land > t_post) {
        const Time tl = std::min(t_land, t);
        emit(r, tl, t, SegKind::Sw, -1, waited);  // delivery, match, wakeup
        emit(r, t_post, tl, SegKind::Wire, rail, send_id);
      } else {
        // No wire landing recorded: shm/self/local transport.
        emit(r, t_post, t, SegKind::Wire, -1, send_id);
      }
      r = send->rank;
      t = std::max(w.t0, t_post);
      continue;
    }
    if (s.cat == Cat::MsgSend) {
      // The wait resolved on a send. For rendezvous the completion can be
      // bound by the *receiver* posting late (RTS sat unmatched); otherwise
      // it is bound by our own egress. Either way the stretch back to the
      // binding post is transport time (wire + handshake), attributed to the
      // rail the message landed on.
      Time t_land = s.t0;
      int rail = -1;
      last_landing(idx, waited, t, t_land, rail);
      const auto ri = idx.rmatch.find(waited);
      const SpanInfo* recv = nullptr;
      if (ri != idx.rmatch.end()) {
        const auto pi = idx.spans.find(ri->second);
        if (pi != idx.spans.end()) recv = &pi->second;
      }
      if (recv != nullptr && recv->t0 > s.t0 + kEps && recv->t0 < t - kEps) {
        emit(r, recv->t0, t, SegKind::Wire, rail, waited);
        r = recv->rank;
        t = std::max(w.t0, recv->t0);
        continue;
      }
      if (s.t0 < t - kEps) {
        emit(r, s.t0, t, SegKind::Wire, rail, waited);
        t = std::max(w.t0, s.t0);  // stay on this rank, before the send post
        continue;
      }
      blocked_to_start();
      continue;
    }
    blocked_to_start();
  }

  std::reverse(p.segments.begin(), p.segments.end());
  return p;
}

}  // namespace

CritPathResult extract_critical_path(const SpanIndex& idx) {
  CritPathResult res;
  res.iterations.reserve(idx.iters.size());
  for (const IterWindow& w : idx.iters) {
    IterPath p = extract_iter(idx, w);
    res.wall += p.wall();
    res.compute += p.compute;
    res.wire += p.wire;
    res.sw += p.sw;
    res.blocked += p.blocked;
    for (const auto& [rail, d] : p.wire_by_rail) res.wire_by_rail[rail] += d;
    res.iterations.push_back(std::move(p));
  }
  return res;
}

CritPathResult extract_critical_path(const Recorder& rec) {
  return extract_critical_path(build_span_index(rec));
}

}  // namespace nmx::obs
