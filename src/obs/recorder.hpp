// The observability store: a flat, time-ordered stream of typed records
// (instants and span begin/end pairs) plus the metrics registry. Layers reach
// it through sim::Engine::recorder(); when none is attached, instrumentation
// costs one null check.
//
// Span model: a span is the lifetime of one protocol-level activity — an MPI
// request from post to completion, a rendezvous handshake from RTS to CTS, a
// NIC occupied from submission to egress, a wait or compute block. begin()
// allocates a process-global SpanId which upper layers thread down the stack
// (MpidRequest::span -> nmad::Request::span -> Entry::span) so every record a
// message touches can name the request that caused it. Exporters:
//   * obs/export_chrome.hpp — Chrome trace-event JSON (open in Perfetto)
//   * obs/export_csv.hpp    — metrics + raw-event CSV
//   * sim/trace.hpp         — the legacy Paje-flavoured text view (shim)
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace nmx::obs {

/// Record categories. The first block is the legacy sim::TraceCat set (names
/// and Paje dump strings preserved); the second block arrived with the span
/// layer. sim::TraceCat aliases this enum.
enum class Cat : std::uint8_t {
  MpiSend,      ///< MPI-level send posted
  MpiRecv,      ///< MPI-level receive posted
  MpiWait,      ///< blocking wait (span)
  MpiColl,      ///< collective operation
  NmadTx,       ///< NIC occupied by one wire message (span; arg = local rail)
  NmadRx,       ///< NewMadeleine wire message handled
  NmadRdv,      ///< rendezvous handshake, sender side RTS->CTS (span)
  ShmCell,      ///< Nemesis cell enqueued
  PiomanPass,   ///< PIOMan service pass
  Compute,      ///< application compute block (span)
  MsgSend,      ///< MPI send-request lifetime, post -> completion (span)
  MsgRecv,      ///< MPI recv-request lifetime, post -> completion (span)
  StratEnqueue, ///< protocol entry queued into the strategy
  RdvRts,       ///< RTS arrived at the receiver
  RdvCts,       ///< CTS granted by the receiver
  RdvData,      ///< rendezvous data chunk landed
  Unexpected,   ///< message arrived with no posted request
  Iter,         ///< one timed application iteration (span; arg = iter index)
  MsgMatch,     ///< recv completed: link record, span = receiver's MsgRecv
                ///< span, arg = sender's MsgSend span (0 when unknown)
  WireLand,     ///< last byte of a wire entry landed: link record, span =
                ///< sender's MsgSend span, arg = fabric rail index
  Coll,         ///< one collective phase on one rank (span; arg packs the
                ///< coll layer's op in bits 8+ and algorithm in bits 0..7)
};

/// Number of enumerators in Cat — bound for per-category tables/bitmasks.
inline constexpr std::size_t kNumCats = static_cast<std::size_t>(Cat::Coll) + 1;
static_assert(kNumCats <= 32, "Cat enable mask is a uint32_t bitmask");

const char* to_string(Cat cat);

enum class Ph : std::uint8_t { Instant, Begin, End };

/// 0 is never a valid span id.
using SpanId = std::uint64_t;

struct Record {
  Time t = 0;
  int rank = -1;  ///< -1: engine/background context
  Cat cat = Cat::MpiSend;
  Ph ph = Ph::Instant;
  SpanId span = 0;           ///< nonzero for Begin/End
  std::size_t bytes = 0;
  std::int64_t arg = 0;      ///< category-specific (peer, rail, tag, ...)
};

/// One point on a named counter track — the time series behind Perfetto's
/// "C"-phase line charts (queue depths, per-rail backlog). Kept separate from
/// the record stream: samples carry a value, not a span.
struct CounterSample {
  Time t = 0;
  int rank = -1;
  std::string track;
  double value = 0;
};

class Recorder {
 public:
  void instant(Time t, int rank, Cat cat, std::size_t bytes = 0, std::int64_t arg = 0) {
    if (!enabled(cat)) return;
    push_record(Record{t, rank, cat, Ph::Instant, 0, bytes, arg});
  }

  /// Link record: an Instant that *references* an existing span instead of
  /// opening one (MsgMatch naming the receiver's span, WireLand naming the
  /// sender's). Kept out of begin/end accounting — the span field is a
  /// cross-reference, not a lifetime edge.
  void link(Time t, int rank, Cat cat, SpanId span, std::size_t bytes = 0, std::int64_t arg = 0) {
    if (!enabled(cat)) return;
    push_record(Record{t, rank, cat, Ph::Instant, span, bytes, arg});
  }

  /// Open a span and return its id (always nonzero when recorded; 0 when the
  /// category is disabled, which makes the matching end() a no-op).
  SpanId begin(Time t, int rank, Cat cat, std::size_t bytes = 0, std::int64_t arg = 0) {
    if (!enabled(cat)) return 0;
    const SpanId id = next_span_++;
    push_record(Record{t, rank, cat, Ph::Begin, id, bytes, arg});
    ++begun_;
    return id;
  }

  /// Close span `id`. No-op when `id` is 0 (span opened with no recorder
  /// attached or with the category disabled), so callers may invoke it
  /// unconditionally.
  void end(Time t, int rank, Cat cat, SpanId id, std::size_t bytes = 0, std::int64_t arg = 0) {
    if (id == 0 || !enabled(cat)) return;
    push_record(Record{t, rank, cat, Ph::End, id, bytes, arg});
    ++ended_;
  }

  // --- per-category enable masks -------------------------------------------
  // Hot benches can drop categories they never analyze; a disabled category
  // costs one bit test in instant/begin/end/link. Disabling a category
  // between a begin and its end truncates that span (the End is suppressed
  // too), which the exporter's synthesized-close path then flags.

  void set_enabled(Cat cat, bool on) {
    const std::uint32_t bit = 1u << static_cast<unsigned>(cat);
    if (on) {
      mask_ |= bit;
    } else {
      mask_ &= ~bit;
    }
  }
  bool enabled(Cat cat) const { return mask_ & (1u << static_cast<unsigned>(cat)); }
  /// Raw bitmask, bit i = Cat(i) enabled. All-ones by default.
  std::uint32_t enabled_mask() const { return mask_; }
  void set_enabled_mask(std::uint32_t mask) { mask_ = mask; }

  /// Append a point to counter track `track` (created on first use).
  void sample(Time t, int rank, std::string track, double value) {
    push_sample(CounterSample{t, rank, std::move(track), value});
  }

  // --- ring-buffer mode ----------------------------------------------------
  // Long NAS runs emit millions of records; bounding the store keeps tracing
  // usable without unbounded memory. Once full, the *oldest* record/sample is
  // overwritten (the interesting end of a trace is almost always the recent
  // one) and a dropped counter ticks so exporters can flag truncation.
  // Metrics (counters/gauges/histograms) are aggregates and are never
  // dropped; spans_begun/ended keep counting every event.

  /// Bound records *and* samples to `cap` entries each; 0 restores unbounded
  /// mode. Shrinking below the current size drops the oldest entries now.
  void set_capacity(std::size_t cap);
  std::size_t capacity() const { return cap_; }
  /// Records / counter samples overwritten (or shed by set_capacity) so far.
  std::uint64_t dropped_records() const { return dropped_records_; }
  std::uint64_t dropped_samples() const { return dropped_samples_; }

  const std::vector<Record>& records() const {
    normalize(records_, rec_start_);
    return records_;
  }
  const std::vector<CounterSample>& samples() const {
    normalize(samples_, samp_start_);
    return samples_;
  }
  std::size_t size() const { return records_.size(); }

  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }

  std::uint64_t spans_begun() const { return begun_; }
  std::uint64_t spans_ended() const { return ended_; }

  /// Span ids with a Begin but no matching End (or vice versa) — empty when
  /// every recorded span is properly paired.
  std::vector<SpanId> unbalanced_spans() const;

  void clear() {
    records_.clear();
    samples_.clear();
    metrics_.clear();
    begun_ = ended_ = 0;
    rec_start_ = samp_start_ = 0;
    dropped_records_ = dropped_samples_ = 0;
  }

 private:
  void push_record(Record&& r) {
    if (cap_ == 0 || records_.size() < cap_) {
      records_.push_back(std::move(r));
      return;
    }
    records_[rec_start_] = std::move(r);  // overwrite the oldest
    rec_start_ = (rec_start_ + 1) % cap_;
    ++dropped_records_;
  }
  void push_sample(CounterSample&& s) {
    if (cap_ == 0 || samples_.size() < cap_) {
      samples_.push_back(std::move(s));
      return;
    }
    samples_[samp_start_] = std::move(s);
    samp_start_ = (samp_start_ + 1) % cap_;
    ++dropped_samples_;
  }
  /// Rotate the ring so index 0 is the oldest entry, letting the accessors
  /// keep returning plain time-ordered vectors. Amortized: reads between
  /// wraps pay nothing.
  template <typename T>
  static void normalize(std::vector<T>& v, std::size_t& start) {
    if (start == 0) return;
    std::rotate(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(start), v.end());
    start = 0;
  }

  // mutable: the ring is rotated into canonical order on const reads
  mutable std::vector<Record> records_;
  mutable std::vector<CounterSample> samples_;
  mutable std::size_t rec_start_ = 0;
  mutable std::size_t samp_start_ = 0;
  std::size_t cap_ = 0;  ///< 0: unbounded
  std::uint32_t mask_ = ~0u;  ///< per-Cat enable bits; configuration, survives clear()
  std::uint64_t dropped_records_ = 0;
  std::uint64_t dropped_samples_ = 0;
  Registry metrics_;
  SpanId next_span_ = 1;
  std::uint64_t begun_ = 0;
  std::uint64_t ended_ = 0;
};

}  // namespace nmx::obs
