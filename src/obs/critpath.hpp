// Critical-path extraction from Recorder traces.
//
// The span layer records enough structure to reconstruct the happens-before
// DAG of a run after the fact:
//   * MsgSend/MsgRecv spans  — request lifetime, post -> completion
//   * MsgMatch link records  — receiver's MsgRecv span -> sender's MsgSend span
//   * WireLand link records  — last byte of a wire entry landed (sender's
//                              MsgSend span, fabric rail index)
//   * MpiWait spans          — End arg names the span the wait resolved on
//   * Compute spans          — application compute blocks
//   * Iter spans             — per-iteration analysis windows (arg = index)
//
// build_span_index() parses the flat record stream once into lookup tables;
// extract_critical_path() then walks each iteration window *backward* from
// the rank that finished last. At every step the walk asks "what was this
// rank doing just before time t?" and either consumes local time (compute,
// software overhead, blocked-in-wait) or follows a message edge to the
// sending rank. Message edges split into a wire portion ([send post, last
// landing], attributed to the landing's fabric rail) and a software tail
// ([landing, wait end]: delivery, matching, wakeup).
//
// The walk *tiles* the window: emitted segments are contiguous and sum
// exactly to the iteration wall time, so the per-category breakdown is a
// true decomposition, not a sampling estimate. Tie-breaking is
// deterministic: among simultaneous landings the lowest rail index wins;
// interval lookup is by latest start before t.
//
// The same SpanIndex feeds obs/lat_tolerance.hpp, which re-times the DAG
// under perturbed rail parameters to estimate latency tolerance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "obs/recorder.hpp"

namespace nmx::obs {

/// One span reconstructed from its Begin/End records.
struct SpanInfo {
  Cat cat = Cat::MpiSend;
  int rank = -1;
  Time t0 = 0;
  Time t1 = 0;
  bool closed = false;       ///< End record seen
  std::size_t bytes = 0;     ///< Begin bytes (message length for Msg* spans)
  std::int64_t arg_begin = 0;
  std::int64_t arg_end = 0;  ///< MpiWait: span id the wait resolved on
};

/// One WireLand record: the last byte of a wire entry of a message reached
/// the receiving NIC.
struct Landing {
  Time t = 0;
  int rail = -1;
  std::size_t bytes = 0;
};

/// One wait or compute interval on a rank's timeline, sorted by t0.
struct Interval {
  Time t0 = 0;
  Time t1 = 0;
  bool wait = false;   ///< true: MpiWait, false: Compute
  SpanId waited = 0;   ///< wait: span the wait resolved on (0 = unknown)
};

/// One per-iteration analysis window (global extent over all ranks).
struct IterWindow {
  int iter = -1;  ///< iteration index; -1 for the synthetic whole-trace window
  Time t0 = 0;
  Time t1 = 0;
  int end_rank = 0;  ///< rank whose Iter span ended last (walk start)
  /// Per-rank [begin, end] of this iteration's Iter span.
  std::map<int, std::pair<Time, Time>> per_rank;
};

/// Parsed view of a Recorder stream: span table, message-match and landing
/// maps, per-rank activity timelines, iteration windows.
struct SpanIndex {
  std::unordered_map<SpanId, SpanInfo> spans;
  /// receiver's MsgRecv span -> sender's MsgSend span (from MsgMatch links)
  std::unordered_map<SpanId, SpanId> match;
  /// sender's MsgSend span -> receiver's MsgRecv span
  std::unordered_map<SpanId, SpanId> rmatch;
  /// sender's MsgSend span -> wire landings (multi-rail sends land per entry)
  std::unordered_map<SpanId, std::vector<Landing>> landings;
  /// rank -> wait/compute intervals sorted by (t0, t1)
  std::map<int, std::vector<Interval>> activity;
  /// iteration windows sorted by iteration index; when the trace has no Iter
  /// spans this holds one synthetic window covering the whole trace
  std::vector<IterWindow> iters;
  bool synthetic_window = false;
  Time t_min = 0;
  Time t_max = 0;
};

SpanIndex build_span_index(const Recorder& rec);

/// What a critical-path segment's time was spent on.
enum class SegKind : std::uint8_t {
  Compute,  ///< inside an application Compute span
  Wire,     ///< message in flight: send post -> last wire landing
  Sw,       ///< software: overhead gaps, delivery/matching/wakeup tails
  Blocked,  ///< waiting with no resolvable cause (self-sync, untraced dep)
};

const char* to_string(SegKind k);

/// One tile of the critical path. Segments are contiguous in time and tile
/// the iteration window exactly.
struct PathSegment {
  int rank = -1;  ///< rank whose timeline the segment lies on (Wire: receiver)
  Time t0 = 0;
  Time t1 = 0;
  SegKind kind = SegKind::Sw;
  int rail = -1;     ///< Wire: fabric rail index; -1 = shm/self/local
  SpanId cause = 0;  ///< span that pinned the segment (message / wait), or 0
  double dur() const { return t1 - t0; }
};

/// Critical path of one iteration with its per-category breakdown.
struct IterPath {
  int iter = -1;
  Time t_begin = 0;
  Time t_end = 0;
  double compute = 0;
  double wire = 0;
  double sw = 0;
  double blocked = 0;
  /// wire time by fabric rail; key -1 = shm/self/local transport
  std::map<int, double> wire_by_rail;
  std::vector<PathSegment> segments;  ///< chronological order
  double wall() const { return t_end - t_begin; }
  /// Sum of segment durations — equals wall() up to FP rounding.
  double path_sum() const { return compute + wire + sw + blocked; }
};

/// Whole-run result: per-iteration paths plus aggregate breakdown.
struct CritPathResult {
  std::vector<IterPath> iterations;
  double wall = 0;
  double compute = 0;
  double wire = 0;
  double sw = 0;
  double blocked = 0;
  std::map<int, double> wire_by_rail;
  double wire_share() const { return wall > 0 ? wire / wall : 0; }
};

CritPathResult extract_critical_path(const SpanIndex& idx);
CritPathResult extract_critical_path(const Recorder& rec);

}  // namespace nmx::obs
