// Machine-readable analysis reports: critical-path breakdown plus latency
// tolerance for one or more traced runs, serialized as a `<stem>.report.json`
// sidecar. CI's perf-smoke job archives these and
// tools/check_bench_regression.py gates on the critical-path *composition*
// (wire share) staying inside a band of the checked-in baseline — a
// composition shift flags a protocol change even when wall time stays put.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/critpath.hpp"
#include "obs/lat_tolerance.hpp"

namespace nmx::obs {

/// Critical-path time spent inside one collective op's Cat::Coll spans:
/// the tiling of the extracted path by collective phase.
struct CollPhase {
  int op = 0;            ///< 0 barrier, 1 bcast, 2 allreduce, 3 alltoall
  std::string name;      ///< op name ("alltoall", ...)
  double crit_time = 0;  ///< critical-path seconds covered by this op
  std::uint64_t spans = 0;  ///< closed Coll spans of this op in the trace
};

/// Analysis of one traced run (one cluster execution).
struct RunReport {
  std::string name;  ///< e.g. "CG/32procs/MPICH2-NMad"
  int ranks = 0;
  CritPathResult critpath;
  ToleranceReport tolerance;
  /// Collective-phase tiling of the critical path (empty when the trace has
  /// no Cat::Coll spans — e.g. pre-engine traces).
  std::vector<CollPhase> coll;
  /// Fraction of the critical path inside *some* collective phase.
  double coll_covered() const {
    double t = 0;
    for (const CollPhase& p : coll) t += p.crit_time;
    return critpath.wall > 0 ? t / critpath.wall : 0;
  }
};

struct Report {
  std::string bench;  ///< bench binary stem, e.g. "fig8_nas"
  std::vector<RunReport> runs;
};

/// Run the full pipeline on one trace: span index -> critical path ->
/// latency-tolerance model.
RunReport analyze_run(const Recorder& rec, std::string name, int ranks,
                      const std::vector<RailParam>& rails);

/// Serialize as JSON (schema "nmx-report-v1").
void write_report(const Report& rep, std::ostream& os);
bool write_report_file(const Report& rep, const std::string& path);

/// Human-readable digest: one row per run with the critical-path composition
/// and the critical rail's tolerance numbers — what perf-smoke CI prints.
void print_report_summary(const Report& rep, std::ostream& os);

}  // namespace nmx::obs
