// Chrome trace-event JSON exporter. The output loads directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing: one process ("pid") per MPI
// rank, named lanes per activity kind — and one lane per NIC rail — inside
// each rank. Spans export as complete ("X") slices with their span id, bytes
// and peer/rail in args; instant records export as "i" marks. Overlapping
// spans of the same kind (e.g. concurrent sends from one rank) are spread
// over numbered sub-lanes so every slice track stays properly nested.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

namespace nmx::obs {

class Recorder;

/// Non-const: spans whose End was lost (ring-buffer rotation mid-span) get a
/// synthesized close at trace end and tick the `nmad.obs.truncated_spans`
/// metrics counter on `rec`.
void write_chrome_trace(Recorder& rec, std::ostream& os);

/// Number of trace events (excluding metadata) write_chrome_trace emits:
/// one per instant record plus one per span (truncated spans included — they
/// export as slices closed at trace end). Lets tests round-trip counts.
std::size_t chrome_event_count(const Recorder& rec);

/// Convenience: write to `path`. Returns false if the file cannot be opened.
bool write_chrome_trace_file(Recorder& rec, const std::string& path);

}  // namespace nmx::obs
