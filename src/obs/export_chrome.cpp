#include "obs/export_chrome.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <queue>
#include <vector>

#include "obs/recorder.hpp"

namespace nmx::obs {

namespace {

// pid used for records with no rank (engine/background context).
constexpr int kEnginePid = 1 << 20;

int pid_of(const Record& r) { return r.rank >= 0 ? r.rank : kEnginePid; }

const char* group_of(Cat cat) {
  switch (cat) {
    case Cat::MpiSend:
    case Cat::MpiRecv:
    case Cat::MpiWait:
    case Cat::MpiColl: return "mpi";
    case Cat::MsgSend:
    case Cat::MsgRecv: return "msg";
    case Cat::Compute:
    case Cat::Iter: return "app";
    case Cat::PiomanPass: return "pioman";
    case Cat::ShmCell: return "shm";
    default: return "nmad";
  }
}

/// Base lane a span renders on inside its rank's process.
std::string lane_of(const Record& begin) {
  switch (begin.cat) {
    case Cat::MpiWait: return "wait";
    case Cat::Compute: return "compute";
    case Cat::Iter: return "iteration";
    case Cat::MsgSend: return "msg send";
    case Cat::MsgRecv: return "msg recv";
    case Cat::NmadRdv: return "rdv handshake";
    case Cat::NmadTx: return "rail " + std::to_string(begin.arg) + " tx";
    default: return "spans";
  }
}

struct SpanOut {
  int pid;
  std::string lane;  // base lane; slot suffix appended during layout
  Time t0, t1;
  Cat cat;
  SpanId span;
  std::size_t bytes;
  std::int64_t arg;
  std::size_t order;  // record index of the Begin, for stable layout
  bool truncated;     // End synthesized at trace end (ring rotated mid-span)
};

std::string fmt_us(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", t * 1e6);
  return buf;
}

std::string fmt_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

std::size_t chrome_event_count(const Recorder& rec) {
  std::size_t n = 0;
  for (const Record& r : rec.records()) {
    if (r.ph != Ph::End) ++n;  // every Instant and every Begin emits one event
  }
  return n;
}

void write_chrome_trace(Recorder& rec, std::ostream& os) {
  const std::vector<Record>& recs = rec.records();

  // Pair span begins with their ends.
  std::map<SpanId, std::size_t> open;  // span -> begin record index
  std::vector<SpanOut> spans;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    if (r.ph == Ph::Begin) {
      open[r.span] = i;
    } else if (r.ph == Ph::End) {
      const auto it = open.find(r.span);
      if (it == open.end()) continue;  // stray end: drop
      const Record& b = recs[it->second];
      spans.push_back(SpanOut{pid_of(b), lane_of(b), b.t, r.t, b.cat, b.span, b.bytes, b.arg,
                              it->second, false});
      open.erase(it);
    }
  }
  // Begins whose End was lost (ring-buffer rotation mid-span, or a trace cut
  // mid-run): synthesize a close at trace end so the slice still renders with
  // its true start, and count the truncation instead of silently leaking a
  // dangling Begin.
  Time t_last = 0;
  for (const Record& r : recs) t_last = std::max(t_last, r.t);
  for (const auto& [id, idx] : open) {
    const Record& b = recs[idx];
    spans.push_back(SpanOut{pid_of(b), lane_of(b), b.t, std::max(b.t, t_last), b.cat, b.span,
                            b.bytes, b.arg, idx, true});
  }
  if (!open.empty()) {
    rec.metrics().counter("nmad.obs.truncated_spans").add(open.size());
  }

  // Layout: spread overlapping spans of one (pid, lane) over numbered
  // sub-lanes (greedy interval partitioning) so slices never overlap within
  // a track — Perfetto renders every slice instead of dropping unnested ones.
  std::sort(spans.begin(), spans.end(), [](const SpanOut& a, const SpanOut& b) {
    if (a.t0 != b.t0) return a.t0 < b.t0;
    return a.order < b.order;
  });
  {
    std::map<std::pair<int, std::string>, std::priority_queue<std::pair<Time, int>,
                                                              std::vector<std::pair<Time, int>>,
                                                              std::greater<>>>
        lanes;  // (pid, lane) -> min-heap of (end time, slot)
    for (SpanOut& s : spans) {
      auto& heap = lanes[{s.pid, s.lane}];
      int slot;
      if (!heap.empty() && heap.top().first <= s.t0) {
        slot = heap.top().second;
        heap.pop();
      } else {
        slot = static_cast<int>(heap.size());
      }
      heap.push({s.t1, slot});
      if (slot > 0) s.lane += " #" + std::to_string(slot);
    }
  }

  // Assign tids: 0 is the instants lane of every pid; span lanes get 1, 2, ...
  // in first-appearance order.
  std::map<std::pair<int, std::string>, int> tids;
  std::map<int, int> next_tid;
  std::vector<int> pids;
  auto note_pid = [&](int pid) {
    if (next_tid.find(pid) == next_tid.end()) {
      next_tid[pid] = 1;
      pids.push_back(pid);
    }
  };
  for (const Record& r : recs) note_pid(pid_of(r));
  for (const CounterSample& s : rec.samples()) note_pid(s.rank >= 0 ? s.rank : kEnginePid);
  for (const SpanOut& s : spans) {
    note_pid(s.pid);
    if (tids.find({s.pid, s.lane}) == tids.end()) tids[{s.pid, s.lane}] = next_tid[s.pid]++;
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Metadata: name every process and lane.
  for (int pid : pids) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\""
       << (pid == kEnginePid ? std::string("sim engine") : "rank " + std::to_string(pid))
       << "\"}}";
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"events\"}}";
  }
  for (const auto& [key, tid] : tids) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << key.first << ",\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << key.second << "\"}}";
  }

  // Spans as complete slices.
  for (const SpanOut& s : spans) {
    sep();
    os << "{\"ph\":\"X\",\"name\":\"" << to_string(s.cat) << "\",\"cat\":\"" << group_of(s.cat)
       << "\",\"ts\":" << fmt_us(s.t0) << ",\"dur\":" << fmt_us(s.t1 - s.t0)
       << ",\"pid\":" << s.pid << ",\"tid\":" << tids[{s.pid, s.lane}]
       << ",\"args\":{\"span\":" << s.span << ",\"bytes\":" << s.bytes << ",\"arg\":" << s.arg
       << (s.truncated ? ",\"truncated\":1" : "") << "}}";
  }

  // Instants.
  auto emit_instant = [&](const Record& r) {
    sep();
    os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << to_string(r.cat) << "\",\"cat\":\""
       << group_of(r.cat) << "\",\"ts\":" << fmt_us(r.t) << ",\"pid\":" << pid_of(r)
       << ",\"tid\":0,\"args\":{\"span\":" << r.span << ",\"bytes\":" << r.bytes
       << ",\"arg\":" << r.arg << "}}";
  };
  for (const Record& r : recs) {
    if (r.ph == Ph::Instant) emit_instant(r);
  }

  // Counter tracks: Perfetto renders each (pid, name) as a line chart.
  for (const CounterSample& s : rec.samples()) {
    sep();
    os << "{\"ph\":\"C\",\"name\":\"" << s.track << "\",\"ts\":" << fmt_us(s.t)
       << ",\"pid\":" << (s.rank >= 0 ? s.rank : kEnginePid)
       << ",\"tid\":0,\"args\":{\"value\":" << fmt_value(s.value) << "}}";
  }

  os << "\n]}\n";
}

bool write_chrome_trace_file(Recorder& rec, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(rec, os);
  return static_cast<bool>(os);
}

}  // namespace nmx::obs
