// LLAMP-style latency-tolerance analysis: re-time the happens-before DAG of
// a traced run under perturbed rail parameters without re-running the
// simulation.
//
// Model. Each rank's timeline inside an iteration window is a chain of wait
// intervals (anchors). A wait either resolved on a message (MpiWait End arg
// -> MsgMatch -> WireLand chain) or its cause is unknown. New times
// propagate forward:
//
//   * local edge — the running time between consecutive anchors is a fixed
//     cost; the *blocked* portion of a resolved wait is slack (it shrinks or
//     stretches as the message edge moves).
//   * message edge — new_completion >= new_post + measured_tail + delta,
//     where the measured tail is (wait end - sender post) and delta re-costs
//     the wire portion under the perturbation: per rail,
//       delta_r = add_lambda_r + bytes_r * (1/(beta_r * scale_r) - 1/beta_r)
//     applied to that rail's landing offset; the slowest rail wins (a
//     multirail message completes when its last stripe lands). Messages with
//     no wire landings (shm/self) get delta = 0.
//   * unresolved waits keep their full measured elapsed time (conservative:
//     an unknown dependency neither shrinks nor grows).
//
// With a zero perturbation the model reproduces every measured wait end
// exactly, so model_error is a pure self-check of DAG reconstruction.
//
// Latency tolerance of a rail = how much one-way latency (seconds added to
// lambda) the application absorbs before predicted wall time grows by a
// given fraction — the LLAMP question (arXiv:2404.14193) answered from one
// trace instead of an LP solve per point.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/critpath.hpp"

namespace nmx::obs {

/// Analytic parameters of one fabric rail, indexed by fabric rail id.
/// lambda: fixed per-message latency (wire latency + per-message overhead);
/// beta: sustained bandwidth (bytes/s). Built by callers from net::NicProfile.
struct RailParam {
  std::string name;
  double lambda = 0;
  double beta = 0;
};

/// A what-if point: per-rail additive latency and bandwidth scaling.
struct Perturbation {
  std::map<int, double> add_lambda;  ///< rail -> seconds added to lambda
  std::map<int, double> beta_scale;  ///< rail -> multiplier on beta (1 = unchanged)
};

/// Forward re-timing model built once from a SpanIndex; predict() is cheap,
/// so tolerance searches can bisect over many perturbations.
class RetimeModel {
 public:
  RetimeModel(const SpanIndex& idx, std::vector<RailParam> rails);

  /// Sum of measured window wall times (what the simulator reported).
  double measured_wall() const { return measured_; }
  /// Model output at zero perturbation — equals measured_wall() up to FP
  /// rounding when every wait's cause was reconstructed.
  double baseline_wall() const;
  /// Model output under `p`.
  double predict(const Perturbation& p) const;

 private:
  struct RailOff {
    int rail = -1;
    double off = 0;    ///< landing time - sender post (measured wire stretch)
    double bytes = 0;  ///< bytes this rail carried for the message
  };
  struct Node {
    int rank = -1;
    double w0 = 0, w1 = 0;  ///< measured wait interval
    bool has_edge = false;
    int src_rank = -1;   ///< rank whose post bounds the completion
    double t_post = 0;   ///< measured post time on src_rank
    double base_off = 0; ///< max measured rail offset (0: shm/self)
    std::vector<RailOff> rails;
  };
  struct Window {
    double t0 = 0, t1 = 0;
    std::map<int, std::pair<double, double>> per_rank;  ///< rank -> [begin,end]
    std::vector<Node> nodes;  ///< sorted by (w1, rank)
  };

  double predict_window(const Window& w, const Perturbation& p) const;
  double edge_delta(const Node& n, const Perturbation& p) const;

  std::vector<Window> windows_;
  std::vector<RailParam> rails_;
  double measured_ = 0;
};

/// Convenience: predicted total wall of the traced run under `pert`.
double retime_wall(const SpanIndex& idx, const std::vector<RailParam>& rails,
                   const Perturbation& pert);

/// Per-rail tolerance summary. Tolerances are seconds of lambda the rail can
/// gain before predicted wall grows past the threshold; negative = the model
/// never reaches the threshold within the search bound (latency-insensitive).
struct RailTolerance {
  int rail = -1;
  std::string name;
  double wire_time = 0;   ///< critical-path wire seconds on this rail
  double wire_share = 0;  ///< fraction of critical-path wall
  double tol_1pct = -1;
  double tol_5pct = -1;
  double tol_10pct = -1;
};

/// One sweep sample: lambda scaled by `lambda_scale` on `rail` only.
struct SweepPoint {
  int rail = -1;
  double lambda_scale = 1;
  double wall_growth = 0;  ///< predicted wall / baseline - 1
};

struct ToleranceReport {
  double measured_wall = 0;
  double model_wall = 0;
  double model_error = 0;  ///< |model - measured| / measured (self-check)
  int critical_rail = -1;  ///< rail carrying the most critical-path wire time
  std::vector<RailTolerance> rails;
  std::vector<SweepPoint> sweep;
};

/// Full analysis: build the model, self-check it, bisect per-rail tolerances
/// at 1/5/10% wall growth, and sweep lambda scales {1.5, 2, 4, 8} per rail.
ToleranceReport analyze_latency_tolerance(const SpanIndex& idx,
                                          const CritPathResult& cp,
                                          const std::vector<RailParam>& rails);

}  // namespace nmx::obs
