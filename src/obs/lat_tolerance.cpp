#include "obs/lat_tolerance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace nmx::obs {

namespace {

constexpr double kEps = 1e-12;

/// Latency search floor: the bound is max(this, baseline wall) — a rail
/// that absorbs a whole baseline wall of extra lambda without moving the
/// wall is reported as unbounded (-1).
constexpr double kMaxLambdaAdd = 0.1;

}  // namespace

RetimeModel::RetimeModel(const SpanIndex& idx, std::vector<RailParam> rails)
    : rails_(std::move(rails)) {
  windows_.reserve(idx.iters.size());
  for (const IterWindow& iw : idx.iters) {
    Window w;
    w.t0 = iw.t0;
    w.t1 = iw.t1;
    w.per_rank = iw.per_rank;
    if (w.per_rank.empty()) {
      // Synthetic whole-trace window: every active rank spans the window.
      for (const auto& [rank, v] : idx.activity) {
        (void)v;
        w.per_rank[rank] = {w.t0, w.t1};
      }
    }
    for (const auto& [rank, be] : w.per_rank) {
      const auto it_act = idx.activity.find(rank);
      if (it_act == idx.activity.end()) continue;
      for (const Interval& iv : it_act->second) {
        if (!iv.wait) continue;
        if (iv.t1 <= be.first + kEps || iv.t1 > be.second + kEps) continue;
        Node n;
        n.rank = rank;
        n.w0 = std::max(iv.t0, be.first);
        n.w1 = iv.t1;
        // Resolve the wait's cause the same way the critical-path walk does.
        const auto si = idx.spans.find(iv.waited);
        if (iv.waited != 0 && si != idx.spans.end()) {
          const SpanInfo& s = si->second;
          SpanId wire_span = 0;  // span whose landings carry the wire cost
          if (s.cat == Cat::MsgRecv) {
            const auto mi = idx.match.find(iv.waited);
            if (mi != idx.match.end()) {
              const auto pi = idx.spans.find(mi->second);
              if (pi != idx.spans.end() && pi->second.t0 < n.w1 - kEps) {
                n.has_edge = true;
                n.src_rank = pi->second.rank;
                n.t_post = pi->second.t0;
                wire_span = mi->second;
              }
            }
          } else if (s.cat == Cat::MsgSend) {
            // Send completion: bound by the receiver posting late
            // (rendezvous) or by our own post (egress-bound).
            const auto ri = idx.rmatch.find(iv.waited);
            const SpanInfo* recv = nullptr;
            if (ri != idx.rmatch.end()) {
              const auto pi = idx.spans.find(ri->second);
              if (pi != idx.spans.end()) recv = &pi->second;
            }
            if (recv != nullptr && recv->t0 > s.t0 + kEps &&
                recv->t0 < n.w1 - kEps) {
              n.has_edge = true;
              n.src_rank = recv->rank;
              n.t_post = recv->t0;
            } else if (s.t0 < n.w1 - kEps) {
              n.has_edge = true;
              n.src_rank = rank;  // self: chain from our own post
              n.t_post = s.t0;
            }
            if (n.has_edge) wire_span = iv.waited;
          }
          if (n.has_edge && wire_span != 0) {
            const auto li = idx.landings.find(wire_span);
            if (li != idx.landings.end()) {
              std::map<int, RailOff> by_rail;
              for (const Landing& L : li->second) {
                if (L.t > n.w1 + kEps) continue;
                RailOff& ro = by_rail[L.rail];
                ro.rail = L.rail;
                ro.off = std::max(ro.off, L.t - n.t_post);
                ro.bytes += static_cast<double>(L.bytes);
              }
              for (const auto& [rail, ro] : by_rail) {
                n.base_off = std::max(n.base_off, ro.off);
                n.rails.push_back(ro);
              }
            }
          }
        }
        w.nodes.push_back(std::move(n));
      }
    }
    std::sort(w.nodes.begin(), w.nodes.end(), [](const Node& a, const Node& b) {
      if (a.w1 != b.w1) return a.w1 < b.w1;
      if (a.rank != b.rank) return a.rank < b.rank;
      return a.w0 < b.w0;
    });
    measured_ += w.t1 - w.t0;
    windows_.push_back(std::move(w));
  }
}

double RetimeModel::edge_delta(const Node& n, const Perturbation& p) const {
  if (n.rails.empty()) return 0;  // shm/self: rail params don't apply
  double pert_off = 0;
  for (const RailOff& ro : n.rails) {
    double off = ro.off;
    if (const auto it = p.add_lambda.find(ro.rail); it != p.add_lambda.end()) {
      off += it->second;
    }
    if (const auto it = p.beta_scale.find(ro.rail);
        it != p.beta_scale.end() && it->second > 0 &&
        ro.rail >= 0 && ro.rail < static_cast<int>(rails_.size())) {
      const double beta = rails_[static_cast<std::size_t>(ro.rail)].beta;
      if (beta > 0) off += ro.bytes * (1.0 / (beta * it->second) - 1.0 / beta);
    }
    pert_off = std::max(pert_off, off);
  }
  return pert_off - n.base_off;
}

double RetimeModel::predict_window(const Window& w, const Perturbation& p) const {
  // rank -> processed anchors [(measured wait end, new time)], increasing.
  std::map<int, std::vector<std::pair<double, double>>> anchors;

  // New time of rank `rank` at measured instant `t` (while running): the
  // last anchor at or before `t` shifted by the measured running time since.
  // Before the first anchor, times are fixed (the window base is an input).
  auto new_at = [&](int rank, double t) -> double {
    const auto it = anchors.find(rank);
    if (it == anchors.end() || it->second.empty()) return t;
    const std::vector<std::pair<double, double>>& v = it->second;
    const auto a = std::upper_bound(
        v.begin(), v.end(), t + kEps,
        [](double x, const std::pair<double, double>& e) { return x < e.first; });
    if (a == v.begin()) return t;
    const auto& [meas, nt] = *std::prev(a);
    return nt + (t - meas);
  };

  for (const Node& n : w.nodes) {
    double p_meas = w.t0, p_new = w.t0;
    if (const auto it = w.per_rank.find(n.rank); it != w.per_rank.end()) {
      p_meas = p_new = it->second.first;
    }
    auto& v = anchors[n.rank];
    if (!v.empty()) {
      p_meas = v.back().first;
      p_new = v.back().second;
    }
    // Local edge: running time up to the wait entry is fixed; a resolved
    // wait's blocked time is slack, an unresolved one keeps its elapsed.
    double nt = p_new + (n.w0 - p_meas) + (n.has_edge ? 0 : (n.w1 - n.w0));
    if (n.has_edge) {
      const double post_new = new_at(n.src_rank, n.t_post);
      const double edge = post_new + (n.w1 - n.t_post) + edge_delta(n, p);
      nt = std::max(nt, edge);
    }
    v.emplace_back(n.w1, nt);
  }

  double begin = std::numeric_limits<double>::infinity();
  double end = -std::numeric_limits<double>::infinity();
  for (const auto& [rank, be] : w.per_rank) {
    begin = std::min(begin, be.first);
    double meas = be.first, nt = be.first;
    if (const auto it = anchors.find(rank);
        it != anchors.end() && !it->second.empty()) {
      meas = it->second.back().first;
      nt = it->second.back().second;
    }
    end = std::max(end, nt + (be.second - meas));
  }
  if (!std::isfinite(begin) || !std::isfinite(end)) return w.t1 - w.t0;
  return end - begin;
}

double RetimeModel::baseline_wall() const { return predict(Perturbation{}); }

double RetimeModel::predict(const Perturbation& p) const {
  double total = 0;
  for (const Window& w : windows_) total += predict_window(w, p);
  return total;
}

double retime_wall(const SpanIndex& idx, const std::vector<RailParam>& rails,
                   const Perturbation& pert) {
  return RetimeModel(idx, rails).predict(pert);
}

namespace {

/// Smallest add_lambda on `rail` that grows the predicted wall by `growth`;
/// -1 when kMaxLambdaAdd is not enough (the rail is off the critical path).
double tolerance_for(const RetimeModel& model, double baseline, int rail,
                     double growth) {
  if (baseline <= 0) return -1;
  const double target = baseline * (1.0 + growth);
  auto wall_at = [&](double add) {
    Perturbation p;
    p.add_lambda[rail] = add;
    return model.predict(p);
  };
  const double cap = std::max(kMaxLambdaAdd, baseline);
  double hi = 1e-6;
  while (wall_at(hi) < target) {
    hi *= 2;
    if (hi > cap) return -1;
  }
  double lo = 0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    (wall_at(mid) < target ? lo : hi) = mid;
  }
  return hi;
}

}  // namespace

ToleranceReport analyze_latency_tolerance(const SpanIndex& idx,
                                          const CritPathResult& cp,
                                          const std::vector<RailParam>& rails) {
  ToleranceReport rep;
  RetimeModel model(idx, rails);
  rep.measured_wall = model.measured_wall();
  rep.model_wall = model.baseline_wall();
  rep.model_error = rep.measured_wall > 0
                        ? std::abs(rep.model_wall - rep.measured_wall) / rep.measured_wall
                        : 0;

  double best_wire = 0;
  for (const auto& [rail, d] : cp.wire_by_rail) {
    if (rail >= 0 && d > best_wire) {
      best_wire = d;
      rep.critical_rail = rail;
    }
  }

  const double baseline = rep.model_wall;
  for (int rail = 0; rail < static_cast<int>(rails.size()); ++rail) {
    RailTolerance rt;
    rt.rail = rail;
    rt.name = rails[static_cast<std::size_t>(rail)].name;
    if (const auto it = cp.wire_by_rail.find(rail); it != cp.wire_by_rail.end()) {
      rt.wire_time = it->second;
    }
    rt.wire_share = cp.wall > 0 ? rt.wire_time / cp.wall : 0;
    rt.tol_1pct = tolerance_for(model, baseline, rail, 0.01);
    rt.tol_5pct = tolerance_for(model, baseline, rail, 0.05);
    rt.tol_10pct = tolerance_for(model, baseline, rail, 0.10);
    rep.rails.push_back(std::move(rt));

    for (const double scale : {1.5, 2.0, 4.0, 8.0}) {
      Perturbation p;
      p.add_lambda[rail] =
          (scale - 1.0) * rails[static_cast<std::size_t>(rail)].lambda;
      SweepPoint sp;
      sp.rail = rail;
      sp.lambda_scale = scale;
      sp.wall_growth = baseline > 0 ? model.predict(p) / baseline - 1.0 : 0;
      rep.sweep.push_back(sp);
    }
  }
  return rep;
}

}  // namespace nmx::obs
