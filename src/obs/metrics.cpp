#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "common/assert.hpp"

namespace nmx::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  NMX_ASSERT_MSG(!edges_.empty(), "histogram needs at least one bucket edge");
  NMX_ASSERT_MSG(std::is_sorted(edges_.begin(), edges_.end()),
                 "histogram bucket edges must be ascending");
  counts_.assign(edges_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  ++counts_[static_cast<std::size_t>(it - edges_.begin())];
  ++count_;
  sum_ += v;
}

Counter& Registry::counter(const std::string& name, const std::string& label) {
  return counters_[Key{name, label}];
}

Gauge& Registry::gauge(const std::string& name, const std::string& label) {
  return gauges_[Key{name, label}];
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> edges,
                               const std::string& label) {
  auto it = histograms_.find(Key{name, label});
  if (it == histograms_.end()) {
    it = histograms_.emplace(Key{name, label}, Histogram(std::move(edges))).first;
  }
  return it->second;
}

const Counter* Registry::find_counter(const std::string& name, const std::string& label) const {
  const auto it = counters_.find(Key{name, label});
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(const std::string& name, const std::string& label) const {
  const auto it = gauges_.find(Key{name, label});
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(const std::string& name,
                                          const std::string& label) const {
  const auto it = histograms_.find(Key{name, label});
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void Registry::write_csv(std::ostream& os) const {
  os << "kind,name,label,field,value\n";
  for (const auto& [key, c] : counters_) {
    os << "counter," << key.first << ',' << key.second << ",value," << c.value() << '\n';
  }
  for (const auto& [key, g] : gauges_) {
    os << "gauge," << key.first << ',' << key.second << ",last," << g.value() << '\n';
    os << "gauge," << key.first << ',' << key.second << ",max," << g.max() << '\n';
  }
  for (const auto& [key, h] : histograms_) {
    os << "hist," << key.first << ',' << key.second << ",count," << h.count() << '\n';
    os << "hist," << key.first << ',' << key.second << ",sum," << h.sum() << '\n';
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.edges().size(); ++b) {
      cum += h.bucket_counts()[b];
      os << "hist," << key.first << ',' << key.second << ",le_" << h.edges()[b] << ',' << cum
         << '\n';
    }
    os << "hist," << key.first << ',' << key.second << ",le_inf," << h.count() << '\n';
  }
}

}  // namespace nmx::obs
