#include "sim/condition.hpp"

#include <algorithm>

namespace nmx::sim {

void Condition::wait(Actor& self) {
  waiters_.push_back(&self);
  self.block();
  remove(self);
}

bool Condition::wait_until(Actor& self, Time deadline) {
  waiters_.push_back(&self);
  const bool woken = self.block_until(deadline);
  remove(self);
  return woken;
}

void Condition::notify_one() {
  while (!waiters_.empty()) {
    Actor* a = waiters_.front();
    waiters_.pop_front();
    if (!a->finished()) {
      a->wake();
      return;
    }
  }
}

void Condition::notify_all() {
  auto ws = std::move(waiters_);
  waiters_.clear();
  for (Actor* a : ws) {
    if (!a->finished()) a->wake();
  }
}

void Condition::remove(Actor& a) {
  waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), &a), waiters_.end());
}

}  // namespace nmx::sim
