// Discrete-event simulation core.
//
// Execution model (the SMPI/SimGrid methodology): simulated processes (MPI
// ranks, PIOMan progress engines, ...) run as *actors* — real std::threads
// that hold the "baton" one at a time. The engine thread pops timestamped
// events off a priority queue; an event is either a plain callback (protocol
// handlers: packet arrival, NIC completion, ...) or the resumption of a
// blocked actor. While an actor runs, the engine thread waits; while the
// engine runs, every actor waits. The whole simulation therefore has
// single-threaded semantics — stack code needs no locking — yet application
// code (NAS kernels, examples) is written in natural blocking style.
//
// Virtual time only advances in the engine loop. Determinism is total:
// same inputs => same event order => identical timing results.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace nmx::obs {
class Recorder;
}

namespace nmx::sim {

class Engine;

using EventFn = std::function<void()>;
/// Handle for cancelling a scheduled event. 0 is never a valid id.
using EventId = std::uint64_t;

/// Thrown by Engine::run when the event queue drains while actors are still
/// blocked — i.e. the simulated program deadlocked. The message lists the
/// stuck actors, which makes protocol bugs (lost wakeups, missing CTS, ...)
/// easy to localize in tests.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A simulated thread of execution. Created via Engine::spawn; the body runs
/// on a dedicated OS thread but only while the actor holds the baton.
class Actor {
 public:
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;
  ~Actor();

  const std::string& name() const { return name_; }
  Engine& engine() { return engine_; }

  // --- callable from the actor's own thread only -------------------------

  /// Advance this actor's virtual time to `t` (models computation / sleep).
  /// Not interruptible by wake().
  void sleep_until(Time t);
  /// Convenience: sleep_until(now + dt).
  void sleep_for(Time dt);

  /// Block until another party calls wake(). Callers must re-check their
  /// predicate in a loop; block() itself carries no payload.
  void block();

  /// Block until wake() or until virtual `deadline`, whichever comes first.
  /// Returns true if woken, false on timeout.
  bool block_until(Time deadline);

  // --- callable from engine callbacks or other actors --------------------

  /// Make a blocked actor runnable again (resumed at the current virtual
  /// time). No-op if the actor is not blocked, is sleeping, or was already
  /// woken — so completion handlers may call it unconditionally.
  void wake();

  bool finished() const { return state_ == State::Finished; }
  bool blocked() const { return state_ == State::Blocked; }

 private:
  friend class Engine;
  enum class State { Ready, Running, Blocked, Finished };
  struct StopToken {};  // thrown into the actor thread on engine teardown

  Actor(Engine& eng, std::string name, std::function<void(Actor&)> body);

  void thread_main(std::function<void(Actor&)> body);
  void yield_to_engine();  // actor thread: return baton, wait for next token
  void grant_token();      // engine thread: hand baton over, wait for return
  void request_stop();     // engine thread: unblock + join for shutdown

  Engine& engine_;
  std::string name_;
  State state_ = State::Ready;
  std::uint64_t generation_ = 0;  // invalidates stale resume events
  bool woken_ = false;            // resumed by wake() (vs. timer)
  bool interruptible_ = false;    // wake() honored only while true

  std::mutex m_;
  std::condition_variable cv_;
  bool token_ = false;     // actor may run
  bool returned_ = true;   // actor has yielded the baton back
  bool stop_ = false;
  std::exception_ptr error_;
  std::thread thread_;
};

/// The event-driven heart of the simulator.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current virtual time in seconds.
  Time now() const { return now_; }

  /// Schedule `fn` to run on the engine thread at virtual time `t`
  /// (clamped to now; events at equal times run in scheduling order).
  EventId schedule(Time t, EventFn fn);
  /// Schedule `fn` `dt` seconds from now.
  EventId schedule_in(Time dt, EventFn fn) { return schedule(now_ + dt, std::move(fn)); }
  /// Cancel a pending event. No-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Create an actor whose body starts at the current virtual time.
  /// Safe to call both before run() and from inside the simulation.
  Actor& spawn(std::string name, std::function<void(Actor&)> body);

  /// Run the simulation to completion. Throws DeadlockError if actors
  /// remain blocked with no pending events; rethrows any exception that
  /// escaped an actor body or event callback.
  void run();

  std::size_t events_processed() const { return processed_; }

  /// Attach an observability recorder (obs/recorder.hpp). Null disables all
  /// instrumentation; the pointer is not owned and must outlive the
  /// simulation. The legacy sim::Tracer wraps a Recorder — attach one via
  /// `set_recorder(&tracer.recorder())`.
  void set_recorder(obs::Recorder* r) { recorder_ = r; }
  obs::Recorder* recorder() { return recorder_; }
  /// Actor currently holding the baton, or nullptr when an event callback
  /// (engine context) is running.
  Actor* current_actor() { return current_; }

 private:
  friend class Actor;
  void resume(Actor& a);

  struct QEntry {
    Time t;
    std::uint64_t seq;
    EventId id;
    bool operator>(const QEntry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>> queue_;
  std::unordered_map<EventId, EventFn> events_;
  std::vector<std::unique_ptr<Actor>> actors_;
  Actor* current_ = nullptr;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace nmx::sim
