// Discrete-event simulation core.
//
// Execution model (the SMPI/SimGrid methodology): simulated processes (MPI
// ranks, PIOMan progress engines, ...) run as *actors* — stackful fibers
// that hold the "baton" one at a time. The engine pops timestamped events
// off its queues; an event is either a plain callback (protocol handlers:
// packet arrival, NIC completion, ...) or the resumption of a blocked
// actor, which is a direct user-space context switch into the actor's
// fiber. While an actor runs, the engine context is suspended; when the
// actor blocks or sleeps it switches straight back. Exactly one context is
// ever runnable, so the whole simulation has single-threaded semantics —
// stack code needs no locking — yet application code (NAS kernels,
// examples) is written in natural blocking style. Compared with the
// original thread-per-actor design, a baton handoff is ~tens of ns instead
// of a mutex+condvar round trip, and an actor costs a pooled, lazily
// committed fiber stack (sim/fiber.hpp) instead of an 8 MiB thread stack —
// which is what lets NAS runs scale to 1024 ranks.
//
// Virtual time only advances in the engine loop. Determinism is total:
// same inputs => same event order => identical timing results.
//
// Hot-path layout (the storm at 64+ ranks pushes tens of millions of events
// through here, so the scheduling structures are built for throughput):
//
//  * Pooled events. Every scheduled event lives in a slot of a slab pool
//    (fixed-size blocks, stable addresses, free-list reuse) and owns its
//    callback inline via SmallFn — no per-event heap allocation and no
//    side-table: the old std::unordered_map<EventId, EventFn> lookup + erase
//    per event is gone. EventId encodes (generation << 32 | slot), so cancel
//    and stale-id detection are pointer-free O(1) slot probes.
//  * Three queues, one total order. (a) `due_`: FIFO bucket for events
//    scheduled at the current virtual time (actor wakes, resume batons,
//    clamped past events) — push/pop O(1), and same-timestamp resume chains
//    coalesce into one engine pass with a single front comparison instead of
//    a heap sift per handoff. (b) `deltas_`: small set of FIFO queues keyed
//    by exact schedule_in() delta — the "now + constant α" NIC/software
//    costs (inject, deliver, reaction period, ...) are a handful of repeated
//    constants, and now+α is monotone in now, so each queue stays sorted by
//    construction: O(1) push/pop. (c) `heap_`: classic binary heap of
//    (t, seq, slot) for everything else. The dispatcher pops the global
//    (t, seq)-minimum across the three; semantics are identical to a single
//    priority queue (events at equal times run in scheduling order).
//  * Tombstone cancellation. cancel() destroys the callback and flags the
//    slot O(1); queue entries are skipped lazily at the front. When dead
//    entries dominate the heap, it is compacted in one pass (deferred
//    compaction), so cancel-heavy paths (block_until timeouts) never pay a
//    per-cancel O(n) erase or grow the heap without bound.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "sim/fiber.hpp"
#include "sim/smallfn.hpp"

namespace nmx::obs {
class Recorder;
}

namespace nmx::sim {

class Engine;

using EventFn = std::function<void()>;
/// Handle for cancelling a scheduled event. 0 is never a valid id.
using EventId = std::uint64_t;

/// Thrown by Engine::run when the event queue drains while actors are still
/// blocked — i.e. the simulated program deadlocked. The message lists the
/// stuck actors, which makes protocol bugs (lost wakeups, missing CTS, ...)
/// easy to localize in tests.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Engine construction knobs. Default-constructed gives the standard setup.
struct EngineConfig {
  /// Per-actor fiber stack size in KiB. 0 means: use the NMX_FIBER_STACK_KB
  /// environment variable if set, else the built-in default (256 KiB; 1 MiB
  /// under ASan/TSan). The environment variable, when set, wins over this
  /// field too — it is the operator's override of last resort. Every stack
  /// ends in a guard page, so an overflowing actor faults loudly instead of
  /// corrupting its neighbor.
  std::size_t fiber_stack_kb = 0;
};

/// A simulated thread of execution. Created via Engine::spawn; the body runs
/// on a stackful fiber that executes only while the actor holds the baton.
class Actor {
 public:
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;
  ~Actor();

  const std::string& name() const { return name_; }
  Engine& engine() { return engine_; }

  // --- callable from the actor's own fiber only --------------------------

  /// Advance this actor's virtual time to `t` (models computation / sleep).
  /// Not interruptible by wake().
  // nmx-lint: actor-context
  void sleep_until(Time t);
  /// Convenience: sleep_until(now + dt).
  // nmx-lint: actor-context
  void sleep_for(Time dt);

  /// Block until another party calls wake(). Callers must re-check their
  /// predicate in a loop; block() itself carries no payload.
  // nmx-lint: actor-context
  void block();

  /// Block until wake() or until virtual `deadline`, whichever comes first.
  /// Returns true if woken, false on timeout.
  // nmx-lint: actor-context
  bool block_until(Time deadline);

  // --- callable from engine callbacks or other actors --------------------

  /// Make a blocked actor runnable again (resumed at the current virtual
  /// time). No-op if the actor is not blocked, is sleeping, or was already
  /// woken — so completion handlers may call it unconditionally. Cancels the
  /// pending block_until timeout event, if any (O(1) tombstone).
  void wake();

  bool finished() const { return state_ == State::Finished; }
  bool blocked() const { return state_ == State::Blocked; }

 private:
  friend class Engine;
  enum class State { Ready, Running, Blocked, Finished };
  struct StopToken {};  // thrown into the actor fiber on engine teardown

  Actor(Engine& eng, std::string name, std::function<void(Actor&)> body);

  static void fiber_entry(void* self);  // trampoline target
  void fiber_main();                    // runs body_ on the fiber stack
  void yield_to_engine();  // actor fiber: return baton to the engine loop
  void request_stop();     // engine context: unwind the fiber for shutdown

  Engine& engine_;
  std::string name_;
  State state_ = State::Ready;
  std::uint64_t generation_ = 0;  // invalidates stale resume events
  bool woken_ = false;            // resumed by wake() (vs. timer)
  bool interruptible_ = false;    // wake() honored only while true
  EventId timer_ = 0;             // pending block_until timeout event

  std::function<void(Actor&)> body_;  // consumed at the first resume
  bool started_ = false;              // fiber forged and entered at least once
  bool stop_ = false;                 // next yield return throws StopToken
  std::exception_ptr error_;
  FiberStack stack_;  // pooled; held only while started and not finished
  FiberContext ctx_;
};

/// The event-driven heart of the simulator.
class Engine {
 public:
  Engine() : Engine(EngineConfig{}) {}
  explicit Engine(const EngineConfig& cfg);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current virtual time in seconds.
  Time now() const { return now_; }

  /// Schedule `fn` to run on the engine thread at virtual time `t`
  /// (clamped to now; events at equal times run in scheduling order).
  template <typename F>
  EventId schedule(Time t, F&& fn) {
    Event& ev = alloc_event(t < now_ ? now_ : t);
    emplace_fn(ev, std::forward<F>(fn));
    route(ev, /*delta=*/-1.0);
    return id_of(ev);
  }

  /// Schedule `fn` `dt` seconds from now. Constant deltas (the common NIC /
  /// software-cost case) take an O(1) sorted-FIFO fast path.
  template <typename F>
  EventId schedule_in(Time dt, F&& fn) {
    if (dt < 0) dt = 0;
    Event& ev = alloc_event(now_ + dt);
    emplace_fn(ev, std::forward<F>(fn));
    route(ev, dt);
    return id_of(ev);
  }

  /// True when a closure of type F is guaranteed to land in the event slot's
  /// inline SmallFn storage (no per-event heap allocation).
  template <typename F>
  static constexpr bool fits_inline_v =
      sizeof(std::decay_t<F>) <= SmallFn::kInlineBytes &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  /// schedule() with a compile-time guarantee that the closure stays inline:
  /// a capture list that grows past SmallFn::kInlineBytes (or picks up a
  /// throwing move) becomes a build error here instead of a silent per-event
  /// heap allocation. Hot paths use the *_checked forms; nmx_lint's
  /// engine-capacity pass enforces that (tools/nmx_lint).
  template <typename F>
  EventId schedule_checked(Time t, F&& fn) {
    static_assert(fits_inline_v<F>,
                  "closure spills SmallFn inline storage (see SmallFn::kInlineBytes): "
                  "shrink the capture list or use schedule() and accept the heap alloc");
    return schedule(t, std::forward<F>(fn));
  }

  /// schedule_in() with the same compile-time inline-capacity guarantee.
  template <typename F>
  EventId schedule_in_checked(Time dt, F&& fn) {
    static_assert(fits_inline_v<F>,
                  "closure spills SmallFn inline storage (see SmallFn::kInlineBytes): "
                  "shrink the capture list or use schedule_in() and accept the heap alloc");
    return schedule_in(dt, std::forward<F>(fn));
  }

  /// Cancel a pending event: O(1) — destroys the callback and tombstones the
  /// pool slot; the queue entry is reaped lazily. No-op if the event already
  /// ran or was cancelled.
  void cancel(EventId id);

  /// Create an actor whose body starts at the current virtual time.
  /// Safe to call both before run() and from inside the simulation.
  Actor& spawn(std::string name, std::function<void(Actor&)> body);

  /// Run the simulation to completion. Throws DeadlockError if actors
  /// remain blocked with no pending events; rethrows any exception that
  /// escaped an actor body or event callback.
  void run();

  /// Destroy actors whose bodies have completed, returning how many were
  /// reclaimed. Their fiber stacks are already back in the pool the moment
  /// they finished; this drops the Actor records themselves so repeated
  /// spawn/run cycles (Cluster::run per-iteration ranks, spawn benchmarks)
  /// keep per-rank state pooled instead of accumulating. Call it between
  /// runs — after run() returns, no pending event can reference a finished
  /// actor; mid-run the engine itself never needs it.
  std::size_t reap_finished();

  std::size_t events_processed() const { return processed_; }

  // --- pool accounting (stress tests + perf harness assert on these) ------

  /// Slots currently holding a scheduled-or-running event. 0 after a
  /// completed run: anything else means a leaked pool slot.
  std::size_t live_events() const { return slots_total_ - free_.size(); }
  /// Total pool capacity (high-water mark of concurrently pending events,
  /// rounded up to the slab block size).
  std::size_t pool_slots() const { return slots_total_; }
  /// Closures too large (or not nothrow-movable) for the inline event slot —
  /// each one cost a heap allocation. Stays 0 on the steady-state path.
  std::uint64_t closure_heap_allocs() const { return closure_heap_allocs_; }
  /// Cancelled events whose queue entries have not been reaped yet.
  std::size_t tombstones() const { return tombstones_; }
  /// Deferred heap compaction passes performed.
  std::uint64_t heap_compactions() const { return heap_compactions_; }

  // --- fiber accounting ----------------------------------------------------

  /// Usable bytes of one actor fiber stack (resolved from EngineConfig /
  /// NMX_FIBER_STACK_KB at construction; page-rounded).
  std::size_t fiber_stack_bytes() const { return stacks_.stack_bytes(); }
  /// Fiber stacks ever mmap'd — the high-water mark of concurrently live
  /// actors, not the spawn count (freed stacks are reused).
  std::uint64_t fiber_stacks_allocated() const { return stacks_.allocated(); }
  /// Times a freed stack was handed to a new actor instead of mmap'ing.
  std::uint64_t fiber_stack_reuses() const { return stacks_.reuses(); }
  /// Stacks currently owned by live (started, unfinished) actors.
  std::size_t fiber_stacks_in_use() const { return stacks_.in_use(); }

  /// Attach an observability recorder (obs/recorder.hpp). Null disables all
  /// instrumentation; the pointer is not owned and must outlive the
  /// simulation. The legacy sim::Tracer wraps a Recorder — attach one via
  /// `set_recorder(&tracer.recorder())`.
  void set_recorder(obs::Recorder* r) { recorder_ = r; }
  obs::Recorder* recorder() { return recorder_; }
  /// Actor currently holding the baton, or nullptr when an event callback
  /// (engine context) is running.
  Actor* current_actor() { return current_; }

 private:
  friend class Actor;

  static constexpr std::uint32_t kBlockSize = 256;  ///< events per slab block
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::size_t kMaxDeltaQueues = 8;

  enum : std::uint8_t { kStateFree = 0, kStatePending, kStateRunning, kStateCancelled };
  enum : std::uint8_t { kLocDue = 0, kLocDelta, kLocHeap };
  /// Actor-resume events carry no closure at all — mode + actor + generation
  /// live directly in the slot, so the hottest event kind (baton handoff) is
  /// a plain store on schedule and a branch on dispatch.
  enum : std::uint8_t { kResumeNone = 0, kResumeSpawn, kResumeSleep, kResumeTimeout, kResumeWake };

  struct Event {
    Time t = 0;
    std::uint64_t seq = 0;
    SmallFn fn;                     // engaged for callback events only
    Actor* actor = nullptr;         // resume events
    std::uint64_t actor_gen = 0;    // resume events: Actor::generation_ guard
    std::uint32_t slot = 0;         // own index (blocks are address-stable)
    std::uint32_t gen = 1;          // bumped on free; half of the EventId
    std::uint8_t state = kStateFree;
    std::uint8_t loc = kLocDue;
    std::uint8_t resume_mode = kResumeNone;
  };

  struct HeapEntry {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct HeapCmp {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;  // min-(t, seq) at the front
    }
  };

  /// FIFO for one recurring schedule_in() delta. now+dt is monotone in now,
  /// so the queue is sorted by (t, seq) by construction.
  struct DeltaQueue {
    Time dt = 0;
    std::uint64_t hits = 0;
    std::deque<std::uint32_t> q;
  };

  Event& slot_ref(std::uint32_t slot) {
    return blocks_[slot / kBlockSize][slot % kBlockSize];
  }
  static EventId id_of(const Event& ev) {
    return (static_cast<EventId>(ev.gen) << 32) | ev.slot;
  }

  Event& alloc_event(Time t);
  template <typename F>
  void emplace_fn(Event& ev, F&& fn) {
    if (!ev.fn.emplace(std::forward<F>(fn))) ++closure_heap_allocs_;
  }
  /// File the event under due_/deltas_/heap_. `delta` < 0: absolute-time
  /// schedule (due bucket when t == now, else heap).
  void route(Event& ev, Time delta);
  void free_slot(Event& ev);
  /// Pop the (t, seq)-minimum live event across the three queues, reaping
  /// tombstones at the fronts. kNoSlot when everything drained.
  std::uint32_t pop_next();
  void compact_heap();
  void dispatch(Event& ev);

  /// Closure-free actor-resume scheduling (Actor wake/sleep/timeout/spawn).
  EventId schedule_resume(Time t, Actor* a, std::uint64_t actor_gen, std::uint8_t mode);
  void resume(Actor& a);
  /// Return a finished (or unwound) actor's stack to the pool.
  void release_fiber(Actor& a);

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t processed_ = 0;

  // event pool
  std::vector<std::unique_ptr<Event[]>> blocks_;
  std::vector<std::uint32_t> free_;
  std::size_t slots_total_ = 0;
  std::uint64_t closure_heap_allocs_ = 0;

  // queues
  std::deque<std::uint32_t> due_;
  std::vector<DeltaQueue> deltas_;
  std::vector<HeapEntry> heap_;
  std::size_t tombstones_ = 0;
  std::size_t heap_dead_ = 0;  ///< tombstoned entries still in heap_
  std::uint64_t heap_compactions_ = 0;

  std::vector<std::unique_ptr<Actor>> actors_;
  Actor* current_ = nullptr;
  obs::Recorder* recorder_ = nullptr;

  FiberContext main_ctx_;  ///< the engine loop's own context while a fiber runs
  StackPool stacks_;       ///< pooled actor stacks (guard-paged, reused)
};

}  // namespace nmx::sim
