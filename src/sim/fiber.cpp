#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

// ---------------------------------------------------------------------------
// Sanitizer fiber protocol.
//
// ASan tracks one "current stack" per thread; switching stacks behind its
// back makes it poison live frames and misattribute reports. The documented
// contract (sanitizer/common_interface_defs.h) is:
//   start_switch_fiber(&fake_stack_save, dest_bottom, dest_size)  before the
//   switch, finish_switch_fiber(own_fake_stack_save, &from_bottom,
//   &from_size) immediately after landing. Passing nullptr as the save slot
//   in the final switch out of a dying fiber frees its fake stack.
// TSan models each fiber as a logical thread: create/switch_to/destroy.
//
// We declare the entry points ourselves instead of including sanitizer
// headers so plain builds need nothing and sanitizer builds link the
// interceptors the runtime already exports.
// ---------------------------------------------------------------------------

#if defined(__SANITIZE_ADDRESS__)
#define NMX_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NMX_FIBER_ASAN 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define NMX_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NMX_FIBER_TSAN 1
#endif
#endif

#if defined(NMX_FIBER_ASAN)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom, size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save, const void** bottom_old,
                                     size_t* size_old);
void __asan_unpoison_memory_region(const void* addr, size_t size);
}
#endif

#if defined(NMX_FIBER_TSAN)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
void __tsan_set_fiber_name(void* fiber, const char* name);
}
#endif

namespace nmx::sim {
namespace {

// Hooks shared by every switch path. `from` is the context being suspended,
// `to` the one being resumed; must run in this order around the raw swap.
inline void sanitizer_before_switch(FiberContext& from, FiberContext& to, bool from_is_dying) {
#if defined(NMX_FIBER_TSAN)
  if (from.tsan_fiber == nullptr) {
    // Lazily adopt the engine's own thread as a TSan fiber the first time it
    // suspends; actor fibers get theirs in fiber_make.
    from.tsan_fiber = __tsan_get_current_fiber();
  }
  __tsan_switch_to_fiber(to.tsan_fiber, 0);
#endif
#if defined(NMX_FIBER_ASAN)
  __sanitizer_start_switch_fiber(from_is_dying ? nullptr : &from.asan_fake_stack,
                                 to.san_stack_lo, to.san_stack_size);
#else
  (void)from;
  (void)from_is_dying;
  (void)to;
#endif
}

// Runs after a swap lands back in `self`. The switch topology is a star
// (engine <-> one fiber), so the context we just left is always the `peer`
// of the suspended frame; the out-params refresh its recorded bounds — this
// is how the engine's OS-thread stack bounds are learned without guessing.
inline void sanitizer_after_switch(FiberContext& self, FiberContext& peer) {
#if defined(NMX_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(self.asan_fake_stack, &peer.san_stack_lo,
                                  &peer.san_stack_size);
#else
  (void)self;
  (void)peer;
#endif
}

}  // namespace
}  // namespace nmx::sim

#if defined(__x86_64__)

// ---------------------------------------------------------------------------
// x86-64 System V context switch.
//
// A switch only has to preserve what the ABI makes the *callee* preserve:
// rbp, rbx, r12-r15, plus the mxcsr/x87 control words. Everything else is
// dead across the call by contract. We push those onto the suspending
// stack, stash rsp, adopt the new rsp, and pop — ~30 ns, no syscalls.
//
// A brand-new fiber's stack is forged in fiber_make to look exactly like a
// suspended one: the "restored" r13/r12 carry entry/arg, and the return
// address is the trampoline, which moves arg into rdi and calls entry. The
// forged rbp of 0 terminates frame walks; ud2 traps if entry ever returns
// (fibers must leave via fiber_exit_switch).
// ---------------------------------------------------------------------------

asm(R"(
    .text
    .align 16
    .globl nmx_fiber_swap
    .type nmx_fiber_swap, @function
nmx_fiber_swap:
    .cfi_startproc
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq $8, %rsp
    stmxcsr (%rsp)
    fnstcw 4(%rsp)
    movq %rsp, (%rdi)
    movq (%rsi), %rsp
    ldmxcsr (%rsp)
    fldcw 4(%rsp)
    addq $8, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    retq
    .cfi_endproc
    .size nmx_fiber_swap, .-nmx_fiber_swap

    .align 16
    .globl nmx_fiber_trampoline
    .type nmx_fiber_trampoline, @function
nmx_fiber_trampoline:
    .cfi_startproc
    .cfi_undefined rip
    .cfi_undefined rbp
    movq %r12, %rdi
    callq *%r13
    ud2
    .cfi_endproc
    .size nmx_fiber_trampoline, .-nmx_fiber_trampoline
)");

extern "C" void nmx_fiber_swap(void** save_sp, void** restore_sp);
extern "C" void nmx_fiber_trampoline();

namespace nmx::sim {

void fiber_make(FiberContext& ctx, const FiberStack& stack, void (*entry)(void*), void* arg,
                const char* name) {
  // Forge the frame nmx_fiber_swap's restore path expects, at the very top
  // of the stack. Layout from the adopted rsp upward:
  //   +0  mxcsr (4B) | x87 cw at +4 (2B)   — architectural defaults, so
  //                                           every fiber starts with
  //                                           identical FP behavior
  //   +8  r15  +16 r14  +24 r13=entry  +32 r12=arg  +40 rbx  +48 rbp=0
  //   +56 return address = trampoline
  // After the pops, rsp sits at stack.top() (page- hence 16-aligned); the
  // trampoline's callq then re-establishes standard ABI alignment.
  auto* top = static_cast<std::byte*>(stack.top());
  auto* frame = reinterpret_cast<std::uint64_t*>(top - 64);
  frame[0] = 0x1F80ull | (0x037Full << 32);
  frame[1] = 0;                                          // r15
  frame[2] = 0;                                          // r14
  frame[3] = reinterpret_cast<std::uint64_t>(entry);     // r13
  frame[4] = reinterpret_cast<std::uint64_t>(arg);       // r12
  frame[5] = 0;                                          // rbx
  frame[6] = 0;                                          // rbp: stops walkers
  frame[7] = reinterpret_cast<std::uint64_t>(&nmx_fiber_trampoline);
  ctx.sp = frame;
  ctx.asan_fake_stack = nullptr;
  ctx.san_stack_lo = stack.limit();
  ctx.san_stack_size = stack.usable();
#if defined(NMX_FIBER_TSAN)
  ctx.tsan_fiber = __tsan_create_fiber(0);
  __tsan_set_fiber_name(ctx.tsan_fiber, name);
#else
  (void)name;
#endif
}

void fiber_switch(FiberContext& from, FiberContext& to) {
  sanitizer_before_switch(from, to, /*from_is_dying=*/false);
  nmx_fiber_swap(&from.sp, &to.sp);
  sanitizer_after_switch(from, to);
}

[[noreturn]] void fiber_exit_switch(FiberContext& from, FiberContext& to) {
  sanitizer_before_switch(from, to, /*from_is_dying=*/true);
  nmx_fiber_swap(&from.sp, &to.sp);
  __builtin_unreachable();  // nothing ever resumes a dead fiber
}

}  // namespace nmx::sim

#else  // !__x86_64__ — portable ucontext fallback

namespace nmx::sim {
namespace {

struct PendingEntry {
  void (*entry)(void*) = nullptr;
  void* arg = nullptr;
};
// The engine is single-threaded per Engine instance, and fiber_make/first
// switch cannot interleave across engines on one thread, so one slot per
// thread is enough to smuggle the 64-bit pointers past makecontext's
// int-only argument list.
thread_local PendingEntry g_pending;

extern "C" void nmx_fiber_ucontext_shim() {
  PendingEntry p = g_pending;
  p.entry(p.arg);
}

}  // namespace

void fiber_make(FiberContext& ctx, const FiberStack& stack, void (*entry)(void*), void* arg,
                const char* name) {
  getcontext(&ctx.uc);
  ctx.uc.uc_stack.ss_sp = stack.limit();
  ctx.uc.uc_stack.ss_size = stack.usable();
  ctx.uc.uc_link = nullptr;
  ctx.asan_fake_stack = nullptr;
  ctx.san_stack_lo = stack.limit();
  ctx.san_stack_size = stack.usable();
#if defined(NMX_FIBER_TSAN)
  ctx.tsan_fiber = __tsan_create_fiber(0);
  __tsan_set_fiber_name(ctx.tsan_fiber, name);
#else
  (void)name;
#endif
  g_pending = PendingEntry{entry, arg};
  makecontext(&ctx.uc, reinterpret_cast<void (*)()>(&nmx_fiber_ucontext_shim), 0);
}

void fiber_switch(FiberContext& from, FiberContext& to) {
  // The shim reads g_pending at its first instructions, so a fresh fiber
  // must be entered before any other fiber_make on this thread; the engine
  // guarantees that by making the spawn resume immediately forge + enter.
  sanitizer_before_switch(from, to, /*from_is_dying=*/false);
  swapcontext(&from.uc, &to.uc);
  sanitizer_after_switch(from, to);
}

[[noreturn]] void fiber_exit_switch(FiberContext& from, FiberContext& to) {
  sanitizer_before_switch(from, to, /*from_is_dying=*/true);
  setcontext(&to.uc);
  __builtin_unreachable();
}

}  // namespace nmx::sim

#endif  // __x86_64__

namespace nmx::sim {

void fiber_on_entry(FiberContext& self, FiberContext& peer) {
#if defined(NMX_FIBER_ASAN)
  // First time on this stack: no fake stack of our own to restore yet, and
  // the context we arrived from is the engine — record its real bounds.
  __sanitizer_finish_switch_fiber(nullptr, &peer.san_stack_lo, &peer.san_stack_size);
#else
  (void)peer;
#endif
  self.asan_fake_stack = nullptr;
}

void fiber_release(FiberContext& ctx, const FiberStack& stack) {
#if defined(NMX_FIBER_TSAN)
  if (ctx.tsan_fiber != nullptr) {
    __tsan_destroy_fiber(ctx.tsan_fiber);
  }
#endif
#if defined(NMX_FIBER_ASAN)
  // The dead fiber's frames may have left the stack poisoned; the next
  // occupant starts from a clean slate.
  __asan_unpoison_memory_region(stack.limit(), stack.usable());
#else
  (void)stack;
#endif
  ctx = FiberContext{};
}

std::size_t resolve_fiber_stack_bytes(std::size_t config_kb) {
  std::size_t kb = config_kb;
  if (const char* env = std::getenv("NMX_FIBER_STACK_KB"); env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      kb = static_cast<std::size_t>(v);  // explicit operator override wins
    }
  }
  if (kb == 0) {
#if defined(NMX_FIBER_ASAN) || defined(NMX_FIBER_TSAN)
    kb = 1024;  // redzones + shadow frames roughly quadruple stack use
#else
    kb = 256;
#endif
  }
  if (kb < 64) {
    kb = 64;  // below this even spawn bookkeeping would hit the guard
  }
  const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  std::size_t bytes = kb * 1024;
  bytes = (bytes + page - 1) & ~(page - 1);
  return bytes;
}

StackPool::StackPool(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {}

StackPool::~StackPool() {
  for (const FiberStack& s : all_) {
    ::munmap(s.base, s.total);
  }
}

FiberStack StackPool::acquire() {
  ++in_use_;
  if (!free_.empty()) {
    FiberStack s = free_.back();
    free_.pop_back();
    ++reuses_;
    return s;
  }
  const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  const std::size_t total = stack_bytes_ + page;
  int flags = MAP_PRIVATE | MAP_ANONYMOUS;
#if defined(MAP_STACK)
  flags |= MAP_STACK;
#endif
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, flags, -1, 0);
  if (base == MAP_FAILED) {
    std::fprintf(stderr, "nmx: fiber stack mmap(%zu) failed\n", total);
    std::abort();
  }
  // Guard page at the low end: stacks grow down, so overflow walks into
  // PROT_NONE and faults instead of scribbling over the adjacent mapping.
  if (::mprotect(base, page, PROT_NONE) != 0) {
    std::fprintf(stderr, "nmx: fiber guard mprotect failed\n");
    std::abort();
  }
  FiberStack s;
  s.base = static_cast<std::byte*>(base);
  s.total = total;
  s.guard = page;
  all_.push_back(s);
  ++allocated_;
  return s;
}

void StackPool::release(const FiberStack& s) {
  assert(in_use_ > 0);
  --in_use_;
  // Keep the mapping; the kernel already holds the committed pages and the
  // next actor reuses them warm. madvise(DONTNEED) here would trade reuse
  // speed for RSS — measured unnecessary, the pool depth is the live actor
  // high-water mark, not the total spawn count.
  free_.push_back(s);
}

}  // namespace nmx::sim
