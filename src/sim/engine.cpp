#include "sim/engine.hpp"

#include <algorithm>

namespace nmx::sim {

// ---------------------------------------------------------------------------
// Actor
// ---------------------------------------------------------------------------

Actor::Actor(Engine& eng, std::string name, std::function<void(Actor&)> body)
    : engine_(eng), name_(std::move(name)) {
  thread_ = std::thread([this, body = std::move(body)]() mutable { thread_main(std::move(body)); });
}

Actor::~Actor() { request_stop(); }

void Actor::thread_main(std::function<void(Actor&)> body) {
  // Wait for the first token before touching any simulation state.
  {
    std::unique_lock lk(m_);
    cv_.wait(lk, [&] { return token_ || stop_; });
    if (stop_) {
      returned_ = true;
      cv_.notify_all();
      return;
    }
    token_ = false;
  }
  state_ = State::Running;
  try {
    body(*this);
  } catch (StopToken&) {
    // engine teardown: fall through and exit quietly
  } catch (...) {
    error_ = std::current_exception();
  }
  state_ = State::Finished;
  std::unique_lock lk(m_);
  returned_ = true;
  cv_.notify_all();
}

void Actor::yield_to_engine() {
  std::unique_lock lk(m_);
  returned_ = true;
  cv_.notify_all();
  cv_.wait(lk, [&] { return token_ || stop_; });
  if (stop_) throw StopToken{};
  token_ = false;
}

void Actor::grant_token() {
  {
    std::unique_lock lk(m_);
    token_ = true;
    returned_ = false;
    cv_.notify_all();
    cv_.wait(lk, [&] { return returned_; });
  }
  if (error_) {
    auto e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Actor::request_stop() {
  {
    std::unique_lock lk(m_);
    if (!thread_.joinable()) return;
    stop_ = true;
    cv_.notify_all();
  }
  thread_.join();
}

void Actor::sleep_until(Time t) {
  NMX_ASSERT_MSG(state_ == State::Running, "sleep_until outside the actor's own thread");
  state_ = State::Blocked;
  interruptible_ = false;
  woken_ = false;
  const auto gen = ++generation_;
  engine_.schedule(t, [this, gen] {
    if (state_ == State::Blocked && generation_ == gen) {
      woken_ = true;
      engine_.resume(*this);
    }
  });
  yield_to_engine();
  state_ = State::Running;
}

void Actor::sleep_for(Time dt) { sleep_until(engine_.now() + dt); }

void Actor::block() {
  NMX_ASSERT_MSG(state_ == State::Running, "block outside the actor's own thread");
  state_ = State::Blocked;
  interruptible_ = true;
  woken_ = false;
  ++generation_;
  yield_to_engine();
  state_ = State::Running;
  interruptible_ = false;
}

bool Actor::block_until(Time deadline) {
  NMX_ASSERT_MSG(state_ == State::Running, "block_until outside the actor's own thread");
  state_ = State::Blocked;
  interruptible_ = true;
  woken_ = false;
  const auto gen = ++generation_;
  engine_.schedule(deadline, [this, gen] {
    if (state_ == State::Blocked && generation_ == gen && !woken_) {
      engine_.resume(*this);  // timeout path: woken_ stays false
    }
  });
  yield_to_engine();
  state_ = State::Running;
  interruptible_ = false;
  return woken_;
}

void Actor::wake() {
  if (state_ != State::Blocked || !interruptible_ || woken_) return;
  woken_ = true;
  const auto gen = generation_;
  engine_.schedule(engine_.now(), [this, gen] {
    if (state_ == State::Blocked && generation_ == gen) engine_.resume(*this);
  });
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::~Engine() {
  // Stop actors before destroying the event storage they may reference.
  for (auto& a : actors_) a->request_stop();
}

EventId Engine::schedule(Time t, EventFn fn) {
  NMX_ASSERT(fn != nullptr);
  // Floating-point composition can land an instant before `now`; clamp
  // rather than violate monotonicity.
  t = std::max(t, now_);
  const EventId id = next_id_++;
  events_.emplace(id, std::move(fn));
  queue_.push(QEntry{t, seq_++, id});
  return id;
}

void Engine::cancel(EventId id) { events_.erase(id); }

Actor& Engine::spawn(std::string name, std::function<void(Actor&)> body) {
  actors_.emplace_back(std::unique_ptr<Actor>(new Actor(*this, std::move(name), std::move(body))));
  Actor* a = actors_.back().get();
  schedule(now_, [this, a] {
    if (!a->finished()) resume(*a);
  });
  return *a;
}

void Engine::resume(Actor& a) {
  NMX_ASSERT_MSG(current_ == nullptr, "nested actor resume");
  current_ = &a;
  a.grant_token();  // may rethrow an actor-body exception
  current_ = nullptr;
}

void Engine::run() {
  while (!queue_.empty()) {
    const QEntry e = queue_.top();
    queue_.pop();
    auto it = events_.find(e.id);
    if (it == events_.end()) continue;  // cancelled
    EventFn fn = std::move(it->second);
    events_.erase(it);
    NMX_ASSERT_MSG(e.t >= now_, "event queue went backwards in time");
    now_ = e.t;
    ++processed_;
    fn();
  }
  std::string stuck;
  for (auto& a : actors_) {
    if (!a->finished()) stuck += " " + a->name();
  }
  if (!stuck.empty()) {
    throw DeadlockError("simulation deadlock at t=" + std::to_string(now_) +
                        "s; blocked actors:" + stuck);
  }
}

}  // namespace nmx::sim
