#include "sim/engine.hpp"

#include <algorithm>

namespace nmx::sim {

// ---------------------------------------------------------------------------
// Actor
// ---------------------------------------------------------------------------
//
// An actor is a stackful fiber (sim/fiber.hpp). The fiber is forged lazily:
// spawn() only records the body and schedules a kResumeSpawn event; the
// stack is acquired from the pool at the first resume, and returned the
// moment the body finishes. The switch topology is a star — the engine's
// main context resumes exactly one fiber, and that fiber always yields
// straight back — which is precisely the old one-baton thread handshake
// with the mutex/condvar replaced by a register swap.

Actor::Actor(Engine& eng, std::string name, std::function<void(Actor&)> body)
    : engine_(eng), name_(std::move(name)), body_(std::move(body)) {}

Actor::~Actor() { request_stop(); }

void Actor::fiber_entry(void* self) { static_cast<Actor*>(self)->fiber_main(); }

void Actor::fiber_main() {
  fiber_on_entry(ctx_, engine_.main_ctx_);
  state_ = State::Running;
  try {
    // Consume the body up front so its captures (Cluster pointers, per-rank
    // locals) die with this frame, not with the Actor record.
    auto body = std::move(body_);
    body_ = nullptr;
    body(*this);
  } catch (StopToken&) {
    // engine teardown: fall through and exit quietly
  } catch (...) {
    error_ = std::current_exception();
  }
  state_ = State::Finished;
  // Hand the baton back for the last time; the engine context reclaims the
  // stack as soon as this switch lands (nothing on it is live anymore).
  fiber_exit_switch(ctx_, engine_.main_ctx_);
}

void Actor::yield_to_engine() {
  fiber_switch(ctx_, engine_.main_ctx_);
  if (stop_) throw StopToken{};
}

void Actor::request_stop() {
  if (state_ == State::Finished) return;
  if (!started_) {
    // Never ran: nothing on a stack to unwind, just drop the body.
    body_ = nullptr;
    state_ = State::Finished;
    return;
  }
  // Resume the fiber one last time; yield_to_engine sees stop_ and throws
  // StopToken, unwinding the body. fiber_main lands back here Finished.
  stop_ = true;
  fiber_switch(engine_.main_ctx_, ctx_);
  NMX_ASSERT_MSG(state_ == State::Finished, "stopped actor did not unwind");
  engine_.release_fiber(*this);
  // The StopToken unwound the actor out of a possibly-pending block_until —
  // the `timer_ = 0` line there never ran. Tombstone-cancel the orphaned
  // timeout event so teardown mid-run (an exception escaping another actor,
  // retry timers still pending) leaves no event referencing this actor.
  if (timer_ != 0) {
    engine_.cancel(timer_);
    timer_ = 0;
  }
}

void Actor::sleep_until(Time t) {
  NMX_ASSERT_MSG(state_ == State::Running, "sleep_until outside the actor's own fiber");
  state_ = State::Blocked;
  interruptible_ = false;
  woken_ = false;
  const auto gen = ++generation_;
  engine_.schedule_resume(t, this, gen, Engine::kResumeSleep);
  yield_to_engine();
  state_ = State::Running;
}

void Actor::sleep_for(Time dt) { sleep_until(engine_.now() + dt); }

void Actor::block() {
  NMX_ASSERT_MSG(state_ == State::Running, "block outside the actor's own fiber");
  state_ = State::Blocked;
  interruptible_ = true;
  woken_ = false;
  ++generation_;
  yield_to_engine();
  state_ = State::Running;
  interruptible_ = false;
}

bool Actor::block_until(Time deadline) {
  NMX_ASSERT_MSG(state_ == State::Running, "block_until outside the actor's own fiber");
  state_ = State::Blocked;
  interruptible_ = true;
  woken_ = false;
  const auto gen = ++generation_;
  timer_ = engine_.schedule_resume(deadline, this, gen, Engine::kResumeTimeout);
  yield_to_engine();
  state_ = State::Running;
  interruptible_ = false;
  timer_ = 0;  // consumed by the timeout dispatch or cancelled by wake()
  return woken_;
}

void Actor::wake() {
  if (state_ != State::Blocked || !interruptible_ || woken_) return;
  woken_ = true;
  if (timer_ != 0) {
    engine_.cancel(timer_);  // O(1) tombstone; keeps timeout storms off the heap
    timer_ = 0;
  }
  engine_.schedule_resume(engine_.now(), this, generation_, Engine::kResumeWake);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(const EngineConfig& cfg)
    : stacks_(resolve_fiber_stack_bytes(cfg.fiber_stack_kb)) {}

Engine::~Engine() {
  // Stop actors before destroying the event storage they may reference.
  // Pending closures in the pool are destroyed (never invoked) with blocks_.
  for (auto& a : actors_) a->request_stop();
}

Engine::Event& Engine::alloc_event(Time t) {
  if (free_.empty()) {
    NMX_ASSERT_MSG(slots_total_ + kBlockSize < kNoSlot, "event pool exhausted");
    auto block = std::make_unique<Event[]>(kBlockSize);
    const auto base = static_cast<std::uint32_t>(slots_total_);
    for (std::uint32_t i = 0; i < kBlockSize; ++i) block[i].slot = base + i;
    // LIFO free list, low indices last: recently-freed (cache-warm) slots are
    // reused first.
    for (std::uint32_t i = kBlockSize; i-- > 0;) free_.push_back(base + i);
    blocks_.push_back(std::move(block));
    slots_total_ += kBlockSize;
  }
  Event& ev = slot_ref(free_.back());
  free_.pop_back();
  NMX_ASSERT(ev.state == kStateFree);
  ev.t = t;
  ev.seq = seq_++;
  ev.state = kStatePending;
  ev.resume_mode = kResumeNone;
  ev.actor = nullptr;
  ev.actor_gen = 0;
  return ev;
}

void Engine::free_slot(Event& ev) {
  ev.fn.reset();
  ev.state = kStateFree;
  ev.actor = nullptr;
  ++ev.gen;  // invalidates any outstanding EventId for this slot
  free_.push_back(ev.slot);
}

void Engine::route(Event& ev, Time delta) {
  if (ev.t <= now_) {
    // Same-timestamp bucket: actor wakes, resume batons, clamped past events.
    ev.loc = kLocDue;
    due_.push_back(ev.slot);
    return;
  }
  if (delta > 0) {
    for (DeltaQueue& d : deltas_) {
      if (d.dt == delta) {
        ++d.hits;
        ev.loc = kLocDelta;
        d.q.push_back(ev.slot);
        return;
      }
    }
    // Unseen delta: claim a fresh queue while capacity lasts, else recycle
    // the coldest empty one. Variable deltas (per-size copy costs) miss and
    // fall through to the heap, which is always correct.
    DeltaQueue* claim = nullptr;
    if (deltas_.size() < kMaxDeltaQueues) {
      claim = &deltas_.emplace_back();
    } else {
      for (DeltaQueue& d : deltas_) {
        if (d.q.empty() && (claim == nullptr || d.hits < claim->hits)) claim = &d;
      }
    }
    if (claim != nullptr) {
      claim->dt = delta;
      claim->hits = 1;
      ev.loc = kLocDelta;
      claim->q.push_back(ev.slot);
      return;
    }
  }
  ev.loc = kLocHeap;
  heap_.push_back(HeapEntry{ev.t, ev.seq, ev.slot});
  std::push_heap(heap_.begin(), heap_.end(), HeapCmp{});
}

void Engine::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (slot >= slots_total_) return;
  Event& ev = slot_ref(slot);
  if (ev.state != kStatePending || ev.gen != static_cast<std::uint32_t>(id >> 32)) return;
  ev.fn.reset();  // release captured resources immediately
  ev.state = kStateCancelled;
  ++tombstones_;
  if (ev.loc == kLocHeap) {
    ++heap_dead_;
    // Deferred compaction: only when dead entries dominate, so cancel stays
    // O(1) amortized and the heap never fills with tombstones.
    if (heap_dead_ >= 64 && heap_dead_ * 2 >= heap_.size()) compact_heap();
  }
}

void Engine::compact_heap() {
  std::size_t kept = 0;
  for (HeapEntry& e : heap_) {
    Event& ev = slot_ref(e.slot);
    if (ev.state == kStateCancelled) {
      --tombstones_;
      free_slot(ev);
    } else {
      heap_[kept++] = e;
    }
  }
  heap_.resize(kept);
  std::make_heap(heap_.begin(), heap_.end(), HeapCmp{});
  heap_dead_ = 0;
  ++heap_compactions_;
}

std::uint32_t Engine::pop_next() {
  // Reap tombstones at every queue front so min-selection sees live events.
  auto reap_fifo = [&](std::deque<std::uint32_t>& dq) {
    while (!dq.empty()) {
      Event& ev = slot_ref(dq.front());
      if (ev.state != kStateCancelled) break;
      --tombstones_;
      free_slot(ev);
      dq.pop_front();
    }
  };
  reap_fifo(due_);
  for (DeltaQueue& d : deltas_) reap_fifo(d.q);
  while (!heap_.empty()) {
    Event& ev = slot_ref(heap_.front().slot);
    if (ev.state != kStateCancelled) break;
    --tombstones_;
    --heap_dead_;
    free_slot(ev);
    std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
    heap_.pop_back();
  }

  // Global (t, seq) minimum across the three structures. Every queue is
  // sorted, so comparing fronts yields the same total order as one heap.
  enum { kNone, kDue, kDelta, kHeap } src = kNone;
  std::size_t delta_idx = 0;
  Time bt = 0;
  std::uint64_t bs = 0;
  auto better = [&](Time t, std::uint64_t s) {
    return src == kNone || t < bt || (t == bt && s < bs);
  };
  if (!due_.empty()) {
    const Event& ev = slot_ref(due_.front());
    src = kDue;
    bt = ev.t;
    bs = ev.seq;
  }
  for (std::size_t i = 0; i < deltas_.size(); ++i) {
    if (deltas_[i].q.empty()) continue;
    const Event& ev = slot_ref(deltas_[i].q.front());
    if (better(ev.t, ev.seq)) {
      src = kDelta;
      delta_idx = i;
      bt = ev.t;
      bs = ev.seq;
    }
  }
  if (!heap_.empty() && better(heap_.front().t, heap_.front().seq)) src = kHeap;

  switch (src) {
    case kNone: return kNoSlot;
    case kDue: {
      const std::uint32_t s = due_.front();
      due_.pop_front();
      return s;
    }
    case kDelta: {
      const std::uint32_t s = deltas_[delta_idx].q.front();
      deltas_[delta_idx].q.pop_front();
      return s;
    }
    case kHeap: {
      const std::uint32_t s = heap_.front().slot;
      std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
      heap_.pop_back();
      return s;
    }
  }
  NMX_FAIL("unreachable");
}

void Engine::dispatch(Event& ev) {
  ev.state = kStateRunning;
  if (ev.fn) {
    // The closure's captures live in the pool slot; free it (destroying the
    // closure) only after the call returns — or unwinds.
    struct SlotGuard {
      Engine* e;
      Event* ev;
      ~SlotGuard() { e->free_slot(*ev); }
    } guard{this, &ev};
    ev.fn();
  } else {
    // Closure-free actor resume: the hottest event kind is a branch, not an
    // indirect call. Free the slot first — resume() runs arbitrarily long.
    Actor* a = ev.actor;
    const std::uint64_t gen = ev.actor_gen;
    const std::uint8_t mode = ev.resume_mode;
    free_slot(ev);
    switch (mode) {
      case kResumeSpawn:
        if (!a->finished()) resume(*a);
        break;
      case kResumeSleep:
        if (a->state_ == Actor::State::Blocked && a->generation_ == gen) {
          a->woken_ = true;
          resume(*a);
        }
        break;
      case kResumeTimeout:
        if (a->state_ == Actor::State::Blocked && a->generation_ == gen && !a->woken_) {
          a->timer_ = 0;
          resume(*a);  // timeout path: woken_ stays false
        }
        break;
      case kResumeWake:
        if (a->state_ == Actor::State::Blocked && a->generation_ == gen) resume(*a);
        break;
      default:
        NMX_FAIL("corrupt resume event");
    }
  }
}

EventId Engine::schedule_resume(Time t, Actor* a, std::uint64_t actor_gen, std::uint8_t mode) {
  Event& ev = alloc_event(t < now_ ? now_ : t);
  ev.actor = a;
  ev.actor_gen = actor_gen;
  ev.resume_mode = mode;
  route(ev, -1.0);
  return id_of(ev);
}

Actor& Engine::spawn(std::string name, std::function<void(Actor&)> body) {
  actors_.emplace_back(std::unique_ptr<Actor>(new Actor(*this, std::move(name), std::move(body))));
  Actor* a = actors_.back().get();
  schedule_resume(now_, a, 0, kResumeSpawn);
  return *a;
}

void Engine::resume(Actor& a) {
  NMX_ASSERT_MSG(current_ == nullptr, "nested actor resume");
  if (!a.started_) {
    // First resume: forge the fiber on a pooled stack. Acquisition order
    // follows resume order, which is event order — deterministic.
    a.stack_ = stacks_.acquire();
    fiber_make(a.ctx_, a.stack_, &Actor::fiber_entry, &a, a.name_.c_str());
    a.started_ = true;
  }
  current_ = &a;
  fiber_switch(main_ctx_, a.ctx_);
  current_ = nullptr;
  if (a.finished()) {
    release_fiber(a);
    if (a.error_) {
      auto e = a.error_;
      a.error_ = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void Engine::release_fiber(Actor& a) {
  if (!a.stack_) return;
  fiber_release(a.ctx_, a.stack_);
  stacks_.release(a.stack_);
  a.stack_ = FiberStack{};
}

std::size_t Engine::reap_finished() {
  NMX_ASSERT_MSG(current_ == nullptr, "reap_finished from inside an actor");
  const std::size_t before = actors_.size();
  std::erase_if(actors_, [](const std::unique_ptr<Actor>& a) { return a->finished(); });
  return before - actors_.size();
}

void Engine::run() {
  for (;;) {
    const std::uint32_t slot = pop_next();
    if (slot == kNoSlot) break;
    Event& ev = slot_ref(slot);
    NMX_ASSERT_MSG(ev.t >= now_, "event queue went backwards in time");
    now_ = ev.t;
    ++processed_;
    dispatch(ev);
  }
  std::string stuck;
  for (auto& a : actors_) {
    if (!a->finished()) stuck += " " + a->name();
  }
  if (!stuck.empty()) {
    throw DeadlockError("simulation deadlock at t=" + std::to_string(now_) +
                        "s; blocked actors:" + stuck);
  }
}

}  // namespace nmx::sim
