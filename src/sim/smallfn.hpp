// Small-buffer-optimized, move-only callable storage for engine events.
//
// Nearly every event handler in the stack captures a few pointers and ints
// (profiling: ≥95% of closures fit in 104 bytes), yet std::function heap-
// allocates anything beyond its ~16-byte inline buffer. SmallFn stores the
// closure inline in the event pool slot instead, so the steady-state event
// path performs zero per-event heap allocations. Oversized or potentially
// throwing-move closures fall back to the heap; Engine counts those
// (Engine::closure_heap_allocs) so tests can assert the fast path stays hot.
//
// SmallFn is deliberately narrower than std::function: construct-in-place
// (emplace), invoke, destroy. No copy, no move — events live at a fixed slab
// address from schedule to dispatch, so relocation support would be dead code.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace nmx::sim {

class SmallFn {
 public:
  /// Inline capacity, sized so the common nmad submit closure (this + rail +
  /// dst + bytes + WireMsg + notes vector ≈ 80 bytes) stays inline.
  static constexpr std::size_t kInlineBytes = 104;

  SmallFn() noexcept = default;
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  /// Construct a callable in place. Must be empty (never engaged, or reset).
  /// Returns true when the closure landed in the inline buffer.
  template <typename F>
  bool emplace(F&& f) {
    NMX_ASSERT_MSG(ops_ == nullptr, "SmallFn::emplace on an engaged instance");
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &Vt<Fn, /*Heap=*/false>::kOps;
      return true;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &Vt<Fn, /*Heap=*/true>::kOps;
      return false;
    }
  }

  void operator()() {
    NMX_ASSERT(ops_ != nullptr);
    ops_->invoke(buf_);
  }

  /// Destroy the stored callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  bool on_heap() const noexcept { return ops_ != nullptr && ops_->heap; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <typename Fn, bool Heap>
  struct Vt {
    static Fn* get(void* b) noexcept {
      if constexpr (Heap) {
        return *std::launder(reinterpret_cast<Fn**>(b));
      } else {
        return std::launder(reinterpret_cast<Fn*>(b));
      }
    }
    static void invoke(void* b) { (*get(b))(); }
    static void destroy(void* b) noexcept {
      if constexpr (Heap) {
        delete get(b);
      } else {
        get(b)->~Fn();
      }
    }
    static constexpr Ops kOps{&invoke, &destroy, Heap};
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace nmx::sim
