#include "sim/trace.hpp"

#include <iomanip>
#include <ostream>

namespace nmx::sim {

const char* to_string(TraceCat cat) {
  switch (cat) {
    case TraceCat::MpiSend: return "MPI_SEND";
    case TraceCat::MpiRecv: return "MPI_RECV";
    case TraceCat::MpiWait: return "MPI_WAIT";
    case TraceCat::MpiColl: return "MPI_COLL";
    case TraceCat::NmadTx: return "NMAD_TX";
    case TraceCat::NmadRx: return "NMAD_RX";
    case TraceCat::NmadRdv: return "NMAD_RDV";
    case TraceCat::ShmCell: return "SHM_CELL";
    case TraceCat::PiomanPass: return "PIOM_PASS";
    case TraceCat::Compute: return "COMPUTE";
  }
  return "?";
}

std::map<TraceCat, Tracer::CatSummary> Tracer::summary() const {
  std::map<TraceCat, CatSummary> out;
  for (const Event& e : events_) {
    CatSummary& s = out[e.cat];
    ++s.count;
    s.bytes += e.bytes;
  }
  return out;
}

void Tracer::dump(std::ostream& os) const {
  os << "# t_us rank category bytes aux\n";
  for (const Event& e : events_) {
    os << std::fixed << std::setprecision(3) << e.t * 1e6 << ' ' << e.rank << ' '
       << to_string(e.cat) << ' ' << e.bytes << ' ' << e.a << '\n';
  }
}

}  // namespace nmx::sim
