#include "sim/trace.hpp"

#include <cstdio>
#include <ostream>

namespace nmx::sim {

const char* to_string(TraceCat cat) { return obs::to_string(cat); }

std::vector<Tracer::Event> Tracer::events() const {
  std::vector<Event> out;
  out.reserve(rec_.records().size());
  for (const auto& r : rec_.records()) {
    if (r.ph == obs::Ph::End) continue;  // a span counts once, at its begin
    out.push_back(Event{r.t, r.rank, r.cat, r.bytes, r.arg});
  }
  return out;
}

std::map<TraceCat, Tracer::CatSummary> Tracer::summary() const {
  std::map<TraceCat, CatSummary> out;
  for (const auto& r : rec_.records()) {
    if (r.ph == obs::Ph::End) continue;
    auto& s = out[r.cat];
    ++s.count;
    s.bytes += r.bytes;
  }
  return out;
}

void Tracer::dump(std::ostream& os) const {
  os << "# t_us rank category bytes aux\n";
  char buf[64];
  for (const auto& r : rec_.records()) {
    std::snprintf(buf, sizeof(buf), "%.3f", r.t * 1e6);
    os << buf << ' ' << r.rank << ' ' << obs::to_string(r.cat) << ' ' << r.bytes << ' ' << r.arg;
    if (r.ph == obs::Ph::Begin)
      os << " B " << r.span;
    else if (r.ph == obs::Ph::End)
      os << " E " << r.span;
    os << '\n';
  }
}

}  // namespace nmx::sim
