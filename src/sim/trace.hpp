// Event tracing — the simulator's stand-in for the PM2 suite's FxT trace
// machinery. When a Tracer is attached to the Engine, instrumented layers
// (MPI calls, NewMadeleine submissions/deliveries, PIOMan service passes,
// Nemesis cells) record timestamped events. Dumps are a Paje-flavoured text
// format readable by humans and greppable by scripts; summary() aggregates
// per-category counts and bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace nmx::sim {

enum class TraceCat : std::uint8_t {
  MpiSend,      ///< MPI-level send posted
  MpiRecv,      ///< MPI-level receive posted
  MpiWait,      ///< blocking wait entered
  MpiColl,      ///< collective operation
  NmadTx,       ///< NewMadeleine wire packet submitted to a NIC
  NmadRx,       ///< NewMadeleine wire packet handled
  NmadRdv,      ///< internal rendezvous started
  ShmCell,      ///< Nemesis cell enqueued
  PiomanPass,   ///< PIOMan service pass
  Compute,      ///< application compute block
};

const char* to_string(TraceCat cat);

class Tracer {
 public:
  struct Event {
    Time t = 0;
    int rank = -1;
    TraceCat cat = TraceCat::MpiSend;
    std::size_t bytes = 0;
    std::int64_t a = 0;  ///< category-specific (peer, tag, rail, ...)
  };

  struct CatSummary {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
  };

  void record(Time t, int rank, TraceCat cat, std::size_t bytes = 0, std::int64_t a = 0) {
    events_.push_back(Event{t, rank, cat, bytes, a});
  }

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Per-category totals.
  std::map<TraceCat, CatSummary> summary() const;

  /// Paje-flavoured text dump: one line per event,
  /// `t_us  rank  CATEGORY  bytes  aux`.
  void dump(std::ostream& os) const;

 private:
  std::vector<Event> events_;
};

}  // namespace nmx::sim
