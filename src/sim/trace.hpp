// Legacy tracing facade — kept as a thin view over the obs::Recorder store
// (src/obs/). Instrumented layers now write typed instant/span records and
// metrics through Engine::recorder(); this class preserves the original
// Tracer surface (record / events / summary / Paje-flavoured dump) on top of
// that store so existing tests and tools keep working, and exposes the
// Recorder for the new exporters (Chrome trace JSON, metrics CSV).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/recorder.hpp"

namespace nmx::sim {

/// Legacy name for the record category set (the original ten values are the
/// first ten enumerators; the span layer added the rest).
using TraceCat = obs::Cat;

const char* to_string(TraceCat cat);

class Tracer {
 public:
  struct Event {
    Time t = 0;
    int rank = -1;
    TraceCat cat = TraceCat::MpiSend;
    std::size_t bytes = 0;
    std::int64_t a = 0;  ///< category-specific (peer, tag, rail, ...)
  };

  struct CatSummary {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
  };

  void record(Time t, int rank, TraceCat cat, std::size_t bytes = 0, std::int64_t a = 0) {
    rec_.instant(t, rank, cat, bytes, a);
  }

  /// The legacy one-entry-per-event view: instants plus span *begins* (a
  /// span counts once, at its opening edge). Materialized on each call.
  std::vector<Event> events() const;

  /// Total records in the underlying store (span ends included).
  std::size_t size() const { return rec_.size(); }
  void clear() { rec_.clear(); }

  /// Per-category totals over events() — span End records are not counted,
  /// so totals for the original categories match the pre-span tracer.
  std::map<TraceCat, CatSummary> summary() const;

  /// Paje-flavoured text dump: one line per record,
  /// `t_us  rank  CATEGORY  bytes  aux [phase span]`
  /// (the phase/span columns appear only on span begin/end lines).
  void dump(std::ostream& os) const;

  /// The underlying store — metrics registry and exporter input.
  obs::Recorder& recorder() { return rec_; }
  const obs::Recorder& recorder() const { return rec_; }

 private:
  obs::Recorder rec_;
};

}  // namespace nmx::sim
