#include "sim/fault.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "sim/engine.hpp"

namespace nmx::sim {

FaultPlan::FaultPlan(FaultSpec spec) : spec_(std::move(spec)), rng_(spec_.seed) {
  for (const auto& rd : spec_.rail_down) {
    NMX_ASSERT_MSG(rd.rail >= 0 && rd.rail < 64, "rail index out of FaultPlan range");
  }
  for (const auto& d : spec_.degrade) {
    NMX_ASSERT_MSG(d.beta_factor > 0 && d.beta_factor <= 1,
                   "beta_factor must be in (0, 1] — rail death is RailDown, not factor 0");
  }
  for (const auto& ef : spec_.entry_faults) {
    NMX_ASSERT_MSG(ef.drop_p >= 0 && ef.dup_p >= 0 && ef.delay_p >= 0 &&
                       ef.drop_p + ef.dup_p + ef.delay_p <= 1.0,
                   "entry-fault probabilities must be in [0, 1] and sum to <= 1");
  }
}

void FaultPlan::arm(Engine& eng) {
  NMX_ASSERT_MSG(!armed_, "FaultPlan armed twice");
  armed_ = true;
  for (const auto& rd : spec_.rail_down) {
    eng.schedule_checked(rd.at, [this, rail = rd.rail] {
      if (rail_dead(rail)) return;  // double-listed rail: first event wins
      dead_mask_ |= 1ull << rail;
      for (const auto& fn : rail_down_fns_) fn(rail);
    });
  }
  for (const auto& rs : spec_.restart) {
    eng.schedule_checked(rs.at, [this, proc = rs.proc] {
      for (const auto& [p, fn] : restart_fns_) {
        if (p == proc) fn();
      }
    });
  }
}

double FaultPlan::beta_factor(int rail, Time now) const {
  double factor = 1.0;
  for (const auto& d : spec_.degrade) {
    if (d.rail == rail && now >= d.from) factor = std::min(factor, d.beta_factor);
  }
  return factor;
}

FaultPlan::EntryDecision FaultPlan::entry_action(int kind, int src, int dst, Time now) {
  for (const auto& ef : spec_.entry_faults) {
    if (ef.kind >= 0 && ef.kind != kind) continue;
    if (ef.src >= 0 && ef.src != src) continue;
    if (ef.dst >= 0 && ef.dst != dst) continue;
    if (now < ef.from || now >= ef.until) continue;
    const double roll = rng_.uniform();
    if (roll < ef.drop_p) {
      ++drops_;
      return {EntryAction::Drop, 0};
    }
    if (roll < ef.drop_p + ef.dup_p) {
      ++duplicates_;
      return {EntryAction::Duplicate, 0};
    }
    if (roll < ef.drop_p + ef.dup_p + ef.delay_p) {
      ++delays_;
      return {EntryAction::Delay, ef.delay};
    }
    // A row matched and rolled "deliver": later rows do not get a second
    // shot, otherwise stacking rows would silently compound probabilities.
    return {EntryAction::Deliver, 0};
  }
  return {EntryAction::Deliver, 0};
}

}  // namespace nmx::sim
