// Simulated condition variable: lets an actor wait for a predicate that an
// engine callback or another actor will establish. Because the simulation has
// single-threaded semantics there are no races between checking a predicate
// and waiting — but callers should still loop on their predicate, since
// notify_all wakes every waiter.
#pragma once

#include <cstddef>
#include <deque>

#include "sim/engine.hpp"

namespace nmx::sim {

class Condition {
 public:
  Condition() = default;
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  /// Block `self` until notified.
  void wait(Actor& self);

  /// Block `self` until notified or `deadline`. Returns false on timeout.
  bool wait_until(Actor& self, Time deadline);

  /// Wake the longest-waiting actor (FIFO), if any.
  void notify_one();

  /// Wake every waiting actor.
  void notify_all();

  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  void remove(Actor& a);
  std::deque<Actor*> waiters_;
};

}  // namespace nmx::sim
