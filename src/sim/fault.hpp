// Deterministic fault injection for the simulated fabric and the protocol
// layers above it.
//
// A FaultPlan is a *schedule*, not a dice roll at run time: timed faults
// (rail death, silent bandwidth degradation, receiver restart) fire at fixed
// virtual times via engine events, and probabilistic wire-entry faults
// (drop / duplicate / delay of protocol entries) are rolled on a seeded
// generator whose consumption order follows the engine's — itself fully
// deterministic — event order. Two runs of the same plan therefore inject
// the *same* faults at the *same* points and produce byte-identical
// artifacts, which is what turns a chaos failure into a reproducible test
// case instead of a flake (cf. Hunold & Carpen-Amarie on seeded,
// replayable experiment schedules).
//
// The sim layer stays protocol-agnostic: wire-entry kinds are opaque ints
// the protocol layer maps its own enum onto, and the fault model's semantics
// (what a dead rail means for in-flight packets, what a restart wipes) are
// decided by the consumers — see DESIGN.md "Fault model".
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hpp"
#include "sim/rng.hpp"

namespace nmx::sim {

class Engine;

/// Declarative fault schedule. Empty vectors = healthy run.
struct FaultSpec {
  /// Seed for the probabilistic wire-entry rolls. Timed faults do not
  /// consume randomness.
  std::uint64_t seed = 1;

  /// Fail-stop rail death at a fixed virtual time: the rail stops admitting
  /// new transmits; packets already on the NIC or the wire drain normally.
  struct RailDown {
    Time at = 0;
    int rail = -1;  ///< fabric rail index
  };
  std::vector<RailDown> rail_down;

  /// Silent bandwidth degradation: from `from` on, the rail's effective
  /// bandwidth is beta_factor x nominal. "Silent" — sampling probes and
  /// uncontended-time queries keep reporting the healthy profile, so the
  /// cost model only finds out through prediction error.
  struct Degrade {
    Time from = 0;
    int rail = -1;          ///< fabric rail index
    double beta_factor = 1; ///< effective bandwidth multiplier, in (0, 1]
  };
  std::vector<Degrade> degrade;

  /// Receiver restart: at `at`, process `proc` loses its rendezvous progress
  /// state (landed-byte bookkeeping) and must re-grant pending inbound
  /// rendezvous. What exactly is wiped is the listener's business.
  struct Restart {
    Time at = 0;
    int proc = -1;
  };
  std::vector<Restart> restart;

  /// Probabilistic per-entry wire fault, rolled when a matching protocol
  /// entry is delivered. Filters narrow the roll to an entry kind, a time
  /// window and src/dst processes; -1 matches any. Probabilities are
  /// evaluated in order drop, duplicate, delay on a single roll, so they
  /// are mutually exclusive and their sum must be <= 1.
  struct EntryFault {
    int kind = -1;  ///< protocol entry kind (opaque to sim), -1 = any
    int src = -1;   ///< sending proc filter
    int dst = -1;   ///< receiving proc filter
    Time from = 0;
    Time until = 1e30;
    double drop_p = 0;
    double dup_p = 0;
    double delay_p = 0;
    Time delay = 20e-6;  ///< reorder horizon for delayed entries
  };
  std::vector<EntryFault> entry_faults;

  bool empty() const {
    return rail_down.empty() && degrade.empty() && restart.empty() && entry_faults.empty();
  }
};

/// What to do with one delivered wire entry.
enum class EntryAction : std::uint8_t { Deliver, Drop, Duplicate, Delay };

class FaultPlan {
 public:
  explicit FaultPlan(FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }

  /// Schedule the timed faults (rail death, restarts) on `eng`. Call exactly
  /// once, after every listener is registered and before the run starts.
  void arm(Engine& eng);

  // --- queried by net::Fabric ---------------------------------------------

  /// True once a scheduled RailDown for `rail` has fired.
  bool rail_dead(int rail) const {
    return rail >= 0 && rail < 64 && ((dead_mask_ >> rail) & 1u) != 0;
  }
  /// Effective-bandwidth multiplier for `rail` at time `now` (1.0 = healthy).
  /// Overlapping degradations compose by taking the worst (minimum) factor.
  double beta_factor(int rail, Time now) const;

  // --- queried by the protocol layer, one roll per delivered entry --------

  struct EntryDecision {
    EntryAction action = EntryAction::Deliver;
    Time delay = 0;  ///< set when action == Delay
  };
  /// Roll the entry-fault table for one delivered entry. Consumes randomness
  /// only when some row's filters match, so unrelated traffic does not shift
  /// the stream.
  EntryDecision entry_action(int kind, int src, int dst, Time now);

  // --- listeners (registered before arm()) --------------------------------

  /// Invoked on the engine thread at the instant a rail dies, once per
  /// registered listener, in registration order. Cores register here so no
  /// new packet is ever admitted to a dead rail.
  void on_rail_down(std::function<void(int rail)> fn) {
    rail_down_fns_.push_back(std::move(fn));
  }
  /// Invoked when `proc` restarts.
  void on_restart(int proc, std::function<void()> fn) {
    restart_fns_.push_back({proc, std::move(fn)});
  }

  // --- accounting ----------------------------------------------------------

  std::uint64_t drops() const { return drops_; }
  std::uint64_t duplicates() const { return duplicates_; }
  std::uint64_t delays() const { return delays_; }

 private:
  FaultSpec spec_;
  Xoshiro256 rng_;
  std::uint64_t dead_mask_ = 0;
  bool armed_ = false;
  std::vector<std::function<void(int)>> rail_down_fns_;
  std::vector<std::pair<int, std::function<void()>>> restart_fns_;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t delays_ = 0;
};

}  // namespace nmx::sim
