// Stackful fibers: the execution substrate under sim::Actor.
//
// An actor used to be a dedicated std::thread that held the "baton" one at a
// time — semantically single-threaded, but every handoff paid a mutex +
// condvar round trip (~µs) and every rank paid an 8 MiB kernel thread stack.
// A fiber keeps the exact same run-one-context-at-a-time semantics with a
// user-space register switch (~tens of ns) on a pooled, guard-paged, lazily
// committed stack (virtual reservation; RSS grows only with pages actually
// touched), so the engine scales to 1024+ ranks without a thread wall.
//
// Layering: this header knows nothing about events or actors. It provides
//   * FiberStack  — an mmap'd stack with a PROT_NONE guard page below it, so
//     an overflowing fiber faults loudly instead of corrupting a neighbor;
//   * StackPool   — free-list reuse of stacks (spawn/teardown-heavy
//     workloads never re-enter mmap in steady state);
//   * FiberContext + fiber_make/fiber_switch/fiber_exit_switch — the raw
//     context-switch primitive (hand-rolled x86-64 assembly; ucontext
//     fallback elsewhere) with ASan/TSan fiber annotations built in.
//
// The switch primitives are engine internals: only sim::Engine/Actor may
// call them (enforced by nmx-lint's thread-discipline pass). Everything
// above the engine keeps using Actor::sleep/block/wake.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#if !defined(__x86_64__)
#include <ucontext.h>
#endif

namespace nmx::sim {

/// One fiber stack: a single mmap region whose lowest page(s) are PROT_NONE.
/// The usable range is [limit(), top()); x86 stacks grow down from top().
struct FiberStack {
  std::byte* base = nullptr;  ///< mmap base (the guard page starts here)
  std::size_t total = 0;      ///< mapped bytes including the guard
  std::size_t guard = 0;      ///< guard bytes at the low end

  void* limit() const { return base + guard; }       ///< lowest usable byte
  void* top() const { return base + total; }         ///< one past highest byte
  std::size_t usable() const { return total - guard; }
  explicit operator bool() const { return base != nullptr; }
};

/// Saved execution state of one context (a fiber, or the engine's own
/// thread while a fiber runs). POD-ish; owned by Actor / Engine.
struct FiberContext {
  void* sp = nullptr;  ///< saved stack pointer (x86-64 path)
#if !defined(__x86_64__)
  ucontext_t uc = {};  ///< portable fallback
#endif
  // Sanitizer bookkeeping (all nullptr/0 in plain builds; see fiber.cpp).
  void* asan_fake_stack = nullptr;
  const void* san_stack_lo = nullptr;  ///< low address of this context's stack
  std::size_t san_stack_size = 0;
  void* tsan_fiber = nullptr;
};

/// Prepare `ctx` so the first fiber_switch into it calls entry(arg) on
/// `stack`. `name` labels the fiber for sanitizer reports.
void fiber_make(FiberContext& ctx, const FiberStack& stack, void (*entry)(void*), void* arg,
                const char* name);

/// Suspend the currently running context into `from` and resume `to`.
/// Returns when something later switches back into `from`. In this engine
/// the topology is a star: the engine context resumes fibers, fibers yield
/// back to the engine context — `to` is always the peer we will eventually
/// return from.
void fiber_switch(FiberContext& from, FiberContext& to);

/// Final switch out of a finished fiber (its stack may be recycled once the
/// destination context runs). Never returns.
[[noreturn]] void fiber_exit_switch(FiberContext& from, FiberContext& to);

/// First statement of a fiber entry function: completes the sanitizer
/// switch protocol and records the peer (engine) stack bounds.
void fiber_on_entry(FiberContext& self, FiberContext& peer);

/// Release per-fiber sanitizer state after the fiber finished (or before
/// recycling its stack). Must be called from a different context.
void fiber_release(FiberContext& ctx, const FiberStack& stack);

/// Resolve the per-fiber stack size in bytes: `config_kb` KiB when nonzero,
/// else the NMX_FIBER_STACK_KB environment override, else a built-in
/// default (256 KiB; 1 MiB under ASan/TSan, whose redzones and shadow
/// frames inflate stack use). Clamped to at least 64 KiB and rounded up to
/// the page size.
std::size_t resolve_fiber_stack_bytes(std::size_t config_kb);

/// Free-list pool of equally sized fiber stacks. Stacks are mmap'd with a
/// one-page guard and recycled on release; everything is unmapped when the
/// pool dies. Counters feed engine accounting (tests assert reuse).
class StackPool {
 public:
  explicit StackPool(std::size_t stack_bytes);
  ~StackPool();
  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  FiberStack acquire();
  void release(const FiberStack& s);

  std::size_t stack_bytes() const { return stack_bytes_; }
  std::uint64_t allocated() const { return allocated_; }
  std::uint64_t reuses() const { return reuses_; }
  std::size_t in_use() const { return in_use_; }

 private:
  std::size_t stack_bytes_;         ///< usable bytes per stack (page-rounded)
  std::vector<FiberStack> free_;    ///< recycled stacks, LIFO (cache-warm first)
  std::vector<FiberStack> all_;     ///< every mapping, for teardown
  std::uint64_t allocated_ = 0;
  std::uint64_t reuses_ = 0;
  std::size_t in_use_ = 0;
};

}  // namespace nmx::sim
