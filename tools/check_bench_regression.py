#!/usr/bin/env python3
"""Compare a fresh BENCH_engine.json against the checked-in baseline.

Fails (exit 1) when:
  * any (bench, ranks) series present in both files lost more than the
    allowed fraction of events/sec (--max-loss, default 0.25), or
  * any series grew its peak RSS by more than the allowed fraction
    (--max-rss-gain, default 0.5), or
  * a baseline series is missing from the current run. A silently dropped
    bench is exactly how a perf gate rots: the run "passes" while measuring
    less and less. Removing a bench on purpose means updating the baseline
    in the same change.

Faster-than-baseline results pass and print a hint to refresh the baseline.
A new bench with no baseline entry is reported but not fatal, so adding a
bench does not require touching CI in the same commit.

Usage: check_bench_regression.py <current.json> <baseline.json>
           [--max-loss=0.25] [--max-rss-gain=0.5]
"""

import json
import sys


def load(path):
    with open(path) as f:
        rows = json.load(f)
    return {(r["bench"], r.get("ranks", 0)): r for r in rows}


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    max_loss = 0.25
    max_rss_gain = 0.5
    for a in argv[3:]:
        if a.startswith("--max-loss="):
            max_loss = float(a.split("=", 1)[1])
        elif a.startswith("--max-rss-gain="):
            max_rss_gain = float(a.split("=", 1)[1])
    current, baseline = load(argv[1]), load(argv[2])

    failed = False
    for key in sorted(set(current) | set(baseline)):
        name = f"{key[0]}@{key[1]}ranks"
        if key not in current:
            print(f"  {name}: FAIL — in baseline but missing from this run "
                  "(dropped bench? update the baseline if intentional)")
            failed = True
            continue
        if key not in baseline:
            print(f"  {name}: new bench, no baseline yet")
            continue
        cur = current[key]["events_per_s"]
        base = baseline[key]["events_per_s"]
        loss = 1.0 - cur / base
        verdict = "OK"
        if loss > max_loss:
            verdict = f"FAIL (>{max_loss:.0%} regression)"
            failed = True
        elif loss < -0.10:
            verdict = "OK (faster — consider refreshing the baseline)"
        print(f"  {name}: {cur:,.0f} vs baseline {base:,.0f} events/s "
              f"({-loss:+.1%}) {verdict}")

        cur_rss = current[key].get("rss_mb")
        base_rss = baseline[key].get("rss_mb")
        if cur_rss and base_rss:
            gain = cur_rss / base_rss - 1.0
            if gain > max_rss_gain:
                failed = True
                print(f"  {name}: rss {cur_rss:.1f}MB vs baseline "
                      f"{base_rss:.1f}MB ({gain:+.1%}) "
                      f"FAIL (>{max_rss_gain:.0%} memory growth)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
