#!/usr/bin/env python3
"""Gate bench results against checked-in baselines.

Engine-throughput gate (positional args). Fails (exit 1) when:
  * any (bench, ranks) series present in both files lost more than the
    allowed fraction of events/sec (--max-loss, default 0.25), or
  * any series grew its peak RSS by more than the allowed fraction
    (--max-rss-gain, default 0.5), or
  * a baseline series is missing from the current run. A silently dropped
    bench is exactly how a perf gate rots: the run "passes" while measuring
    less and less. Removing a bench on purpose means updating the baseline
    in the same change, or
  * an --rss-sublinear gate is violated: with BENCH:R1:R2:MAXRATIO, peak
    RSS of BENCH at R2 ranks must stay below MAXRATIO x its RSS at R1
    ranks. With the fiber runtime, per-rank memory is a pooled lazily
    committed stack, so an 8x rank scale-up must cost well under 8x the
    memory — linear growth means thread-stack-style per-rank overhead
    crept back in.

Critical-path composition gate (--report / --report-baseline). The
simulation is deterministic, so a report.json produced by a bench is stable
until the protocol actually changes. Fails when:
  * a run's wire share drifted more than --max-wire-drift (absolute share
    points) from the baseline — a composition shift flags a protocol or
    scheduling change even when wall time stays put, or
  * the latency-tolerance model's self-check error exceeds
    --max-model-error — the re-timed DAG no longer reproduces the measured
    wall, i.e. trace reconstruction broke, or
  * any iteration's critical-path segments no longer tile its wall time
    within 1%, or
  * a baseline run is missing from the current report.

Faster-than-baseline results pass and print a hint to refresh the baseline.
A new series/run with no baseline entry is reported but not fatal, so adding
one does not require touching CI in the same commit.

Usage: check_bench_regression.py [<current.json> <baseline.json>]
           [--max-loss=0.25] [--max-rss-gain=0.5]
           [--rss-sublinear=BENCH:R1:R2:MAXRATIO]   (repeatable)
           [--report=R.report.json --report-baseline=BASE.report.json]
           [--max-wire-drift=0.05] [--max-model-error=0.02]
"""

import json
import sys


def load(path):
    with open(path) as f:
        rows = json.load(f)
    return {(r["bench"], r.get("ranks", 0)): r for r in rows}


def check_engine(cur_path, base_path, max_loss, max_rss_gain):
    current, baseline = load(cur_path), load(base_path)
    failed = False
    for key in sorted(set(current) | set(baseline)):
        name = f"{key[0]}@{key[1]}ranks"
        if key not in current:
            print(f"  {name}: FAIL — in baseline but missing from this run "
                  "(dropped bench? update the baseline if intentional)")
            failed = True
            continue
        if key not in baseline:
            print(f"  {name}: new bench, no baseline yet")
            continue
        cur = current[key]["events_per_s"]
        base = baseline[key]["events_per_s"]
        loss = 1.0 - cur / base
        verdict = "OK"
        if loss > max_loss:
            verdict = f"FAIL (>{max_loss:.0%} regression)"
            failed = True
        elif loss < -0.10:
            verdict = "OK (faster — consider refreshing the baseline)"
        print(f"  {name}: {cur:,.0f} vs baseline {base:,.0f} events/s "
              f"({-loss:+.1%}) {verdict}")

        cur_rss = current[key].get("rss_mb")
        base_rss = baseline[key].get("rss_mb")
        if cur_rss and base_rss:
            gain = cur_rss / base_rss - 1.0
            if gain > max_rss_gain:
                failed = True
                print(f"  {name}: rss {cur_rss:.1f}MB vs baseline "
                      f"{base_rss:.1f}MB ({gain:+.1%}) "
                      f"FAIL (>{max_rss_gain:.0%} memory growth)")
    return failed


def check_rss_sublinear(cur_path, gates):
    """Each gate is (bench, low_ranks, high_ranks, max_ratio)."""
    current = load(cur_path)
    failed = False
    for bench, lo, hi, max_ratio in gates:
        lo_row = current.get((bench, lo))
        hi_row = current.get((bench, hi))
        if lo_row is None or hi_row is None:
            missing = lo if lo_row is None else hi
            print(f"  {bench} rss-sublinear: FAIL — no {bench}@{missing}ranks "
                  "series in this run (the gate needs both endpoints)")
            failed = True
            continue
        lo_rss, hi_rss = lo_row["rss_mb"], hi_row["rss_mb"]
        if not lo_rss or not hi_rss:
            print(f"  {bench} rss-sublinear: SKIP — no rss_mb recorded")
            continue
        ratio = hi_rss / lo_rss
        rank_ratio = hi / lo
        verdict = "OK"
        if ratio > max_ratio:
            verdict = f"FAIL (> {max_ratio:g}x allowed)"
            failed = True
        print(f"  {bench} rss: {lo_rss:.1f}MB@{lo}ranks -> "
              f"{hi_rss:.1f}MB@{hi}ranks = {ratio:.2f}x for a "
              f"{rank_ratio:g}x rank scale-up {verdict}")
    return failed


def load_report(path):
    with open(path) as f:
        rep = json.load(f)
    return {run["name"]: run for run in rep.get("runs", [])}


def check_report(cur_path, base_path, max_wire_drift, max_model_error):
    current = load_report(cur_path)
    baseline = load_report(base_path) if base_path else {}
    failed = False
    for name in sorted(set(current) | set(baseline)):
        if name not in current:
            print(f"  report {name}: FAIL — in baseline but missing from this "
                  "run (dropped run? update the baseline if intentional)")
            failed = True
            continue
        run = current[name]
        cp = run["critpath"]
        # Internal invariant first: segments must tile each iteration.
        for it in cp.get("iterations", []):
            wall = it["wall"]
            if wall > 0 and abs(it["path_sum"] - wall) > 0.01 * wall:
                print(f"  report {name}: FAIL — iteration {it['iter']} "
                      f"critical path sums to {it['path_sum']:.6g}s but wall "
                      f"is {wall:.6g}s (>1% apart: extraction broke)")
                failed = True
        err = run["latency_tolerance"]["model_error"]
        if err > max_model_error:
            print(f"  report {name}: FAIL — re-timing self-check error "
                  f"{err:.2%} (> {max_model_error:.0%}): DAG reconstruction "
                  "no longer reproduces the measured wall")
            failed = True
        if name not in baseline:
            print(f"  report {name}: new run, no baseline yet "
                  f"(wire share {cp['wire_share']:.1%})")
            continue
        base_share = baseline[name]["critpath"]["wire_share"]
        drift = cp["wire_share"] - base_share
        verdict = "OK"
        if abs(drift) > max_wire_drift:
            verdict = (f"FAIL (composition drift > "
                       f"{max_wire_drift * 100:.0f} share points)")
            failed = True
        print(f"  report {name}: wire share {cp['wire_share']:.1%} vs "
              f"baseline {base_share:.1%} ({drift * 100:+.1f}pt), "
              f"model error {err:.2%} {verdict}")
    return failed


def main(argv):
    positional = []
    max_loss = 0.25
    max_rss_gain = 0.5
    rss_sublinear = []
    report = None
    report_baseline = None
    max_wire_drift = 0.05
    max_model_error = 0.02
    for a in argv[1:]:
        if a.startswith("--max-loss="):
            max_loss = float(a.split("=", 1)[1])
        elif a.startswith("--max-rss-gain="):
            max_rss_gain = float(a.split("=", 1)[1])
        elif a.startswith("--rss-sublinear="):
            parts = a.split("=", 1)[1].split(":")
            if len(parts) != 4:
                print(f"bad --rss-sublinear spec: {a}")
                print(__doc__)
                return 2
            rss_sublinear.append((parts[0], int(parts[1]), int(parts[2]),
                                  float(parts[3])))
        elif a.startswith("--report="):
            report = a.split("=", 1)[1]
        elif a.startswith("--report-baseline="):
            report_baseline = a.split("=", 1)[1]
        elif a.startswith("--max-wire-drift="):
            max_wire_drift = float(a.split("=", 1)[1])
        elif a.startswith("--max-model-error="):
            max_model_error = float(a.split("=", 1)[1])
        elif a.startswith("--"):
            print(f"unknown option: {a}")
            print(__doc__)
            return 2
        else:
            positional.append(a)
    if not positional and report is None:
        print(__doc__)
        return 2
    if len(positional) not in (0, 2):
        print(__doc__)
        return 2

    failed = False
    if positional:
        failed |= check_engine(positional[0], positional[1], max_loss,
                               max_rss_gain)
        if rss_sublinear:
            failed |= check_rss_sublinear(positional[0], rss_sublinear)
    if report is not None:
        failed |= check_report(report, report_baseline, max_wire_drift,
                               max_model_error)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
