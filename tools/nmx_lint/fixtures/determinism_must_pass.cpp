// Must-pass corpus for the determinism pass: the deterministic idioms the
// real tree uses. None of these may produce a finding.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture_det_pass {

struct Engine {
  double now() const { return 0.0; }
};

/// Virtual time comes from the engine, never from the host clock.
inline double sim_timestamp(const Engine& eng) { return eng.now(); }

/// Seeded, configuration-owned PRNG (the sim/rng.hpp shape): reproducible
/// by construction, so nothing here is flagged.
struct SplitMix {
  std::uint64_t state;
  explicit SplitMix(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    return z ^ (z >> 31);
  }
};

/// Ordered container: iteration order is part of the contract. `pending` is
/// also the name of an unordered map in the must-flag fixture — the local
/// std::map declaration must win.
inline std::vector<int> emit_in_key_order(const std::map<int, int>& pending) {
  std::vector<int> wire;
  for (const auto& [dst, bytes] : pending) wire.push_back(dst + bytes);
  return wire;
}

struct PerPeer {
  std::unordered_map<int, int> landed;
};

/// Clearing per-element state is order-insensitive: auto-allowed.
inline void reset_gates(std::unordered_map<int, PerPeer>& gates) {
  for (auto& [peer, g] : gates) g.landed.clear();
}

/// Commutative fold, with the justification the suppression grammar requires.
inline long total_landed(const std::unordered_map<int, int>& landed) {
  long sum = 0;
  // nmx-lint: allow(determinism) integer sum is commutative; order cannot leak
  for (const auto& [peer, bytes] : landed) sum += bytes;
  return sum;
}

}  // namespace fixture_det_pass
