// Must-flag corpus for the engine-capacity pass. The mock Engine mirrors the
// sim::Engine scheduling surface but carries no static_assert, so these
// violations compile — exactly the situation the lint pass exists to catch
// at review time (in the real tree the *_checked forms also fail the build).
#include <array>
#include <cstddef>

namespace fixture_cap_flag {

using EventId = unsigned long long;
using Time = double;

struct Engine {
  template <typename F>
  EventId schedule(Time, F&&) { return 1; }
  template <typename F>
  EventId schedule_in(Time, F&&) { return 1; }
  template <typename F>
  EventId schedule_checked(Time, F&&) { return 1; }
  template <typename F>
  EventId schedule_in_checked(Time, F&&) { return 1; }
};

/// A 256-byte by-value payload capture: 2.5x the 104-byte inline event slot,
/// so every such event would heap-allocate its closure.
inline void oversized_capture(Engine& eng) {
  std::array<std::byte, 256> payload{};
  eng.schedule_in_checked(1.0, [payload] { (void)payload; });  // EXPECT: engine-capacity
}

/// Small capture, but routed through the unchecked form: nothing stops the
/// capture list from growing past the slot later.
inline void unchecked_schedule(Engine& eng, int dst) {
  eng.schedule_in(1.0, [dst] { (void)dst; });  // EXPECT: engine-capacity
}

}  // namespace fixture_cap_flag
