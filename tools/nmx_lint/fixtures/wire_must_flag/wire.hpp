// Must-flag corpus for the wire-conformance pass: a miniature wire header
// where a Kind was added (Probe) without updating kNumKinds, without
// charging it in header_bytes(), and without a layout pin in wire_test.cpp
// — the three regressions the pass exists to catch.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fixture_wire_flag {

struct Entry {
  enum class Kind : std::uint8_t { Eager, Rts, Probe };  // EXPECT: wire-conformance
  static constexpr int kNumKinds = 2;  // EXPECT: wire-conformance

  static constexpr std::size_t kEagerHeader = 16;
  static constexpr std::size_t kRtsHeader = 36;

  Kind kind = Kind::Eager;

  std::size_t header_bytes() const {  // EXPECT: wire-conformance
    switch (kind) {
      case Kind::Eager: return kEagerHeader;
      case Kind::Rts: return kRtsHeader;
      default: return kEagerHeader;  // Probe rides for free: never charged
    }
  }
};

}  // namespace fixture_wire_flag
