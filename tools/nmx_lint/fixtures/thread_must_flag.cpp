// Must-flag corpus for the thread-discipline pass. The mocks mirror the
// sim::Engine / net::Fabric surfaces including their context markers: the
// pass learns which functions are engine-context / actor-context from the
// `nmx-lint: <context>` comments on the declarations.
#include <functional>
#include <string>
#include <thread>

namespace fixture_thr_flag {

struct Packet {
  int dst = 0;
};

struct Fabric {
  /// Books NIC occupancy at the current virtual time.
  // nmx-lint: engine-context
  double transmit(Packet) { return 0.0; }
};

struct Actor {
  // nmx-lint: actor-context
  bool block_until(double) { return true; }
  void wake() {}
};

struct Engine {
  template <typename F>
  unsigned long long schedule_in_checked(double, F&&) { return 1; }
  Actor& spawn(const std::string&, std::function<void(Actor&)>) {
    static Actor a;
    return a;
  }
};

/// An actor body driving the NIC directly: occupancy gets booked before the
/// driver's software pre-cost has elapsed, bypassing the event queue.
inline void actor_touches_nic(Engine& eng, Fabric& fab) {
  eng.spawn("sender", [&fab](Actor&) {
    fab.transmit(Packet{});  // EXPECT: thread-discipline
  });
}

/// An engine callback blocking an actor: engine callbacks must never block.
inline void callback_blocks(Engine& eng, Actor& actor) {
  eng.schedule_in_checked(1.0, [&actor] {
    actor.block_until(2.0);  // EXPECT: thread-discipline
  });
}

struct FiberContext {};
// Mock of the sim/fiber.hpp primitive; the declaration itself is annotated
// because only the engine's own files are path-exempt.
// nmx-lint: allow(thread-discipline) mock declaration, not a context switch
void fiber_switch(FiberContext&, FiberContext&);

/// Simulated code spinning up a real OS thread: the fiber runtime's whole
/// correctness argument is "one context runs at a time"; a kernel thread
/// races the engine no matter how careful the body is.
inline void progress_helper_thread(Engine& eng) {
  std::thread helper([&eng] { (void)eng; });  // EXPECT: thread-discipline
  helper.join();
}

/// Hand-rolled baton passing: grabbing the switch primitive bypasses the
/// event queue's (t, seq) total order.
inline void sneaky_handoff(FiberContext& mine, FiberContext& engine_ctx) {
  fiber_switch(mine, engine_ctx);  // EXPECT: thread-discipline
}

}  // namespace fixture_thr_flag
