// Must-flag corpus for the determinism pass. Every line tagged EXPECT below
// is a reproducibility leak the simulated layers must never contain: the
// byte-identical replay tiers (determinism_test, chaos same-seed) only mean
// something if no wall clock, hardware entropy, or hash-map visitation order
// can reach simulated results.
//
// Compiled as part of the nmx_lint_fixtures target so the corpus can never
// rot into invalid C++.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>
#include <vector>

namespace fixture_det_flag {

inline double wallclock_timestamp() {
  const auto t = std::chrono::system_clock::now();  // EXPECT: determinism
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

inline double monotonic_timestamp() {
  const auto t = std::chrono::steady_clock::now();  // EXPECT: determinism
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

inline int unseeded_random_backoff() {
  return std::rand() % 7;  // EXPECT: determinism
}

inline long c_time_seed() {
  return static_cast<long>(time(nullptr));  // EXPECT: determinism
}

inline unsigned hardware_entropy_seed() {
  std::random_device entropy;  // EXPECT: determinism
  return entropy();
}

/// Wire emission in hash-map visitation order: the byte stream differs
/// across standard-library versions even though every local run "passes".
inline std::vector<int> emit_in_bucket_order(
    const std::unordered_map<int, int>& pending) {
  std::vector<int> wire;
  for (const auto& [dst, bytes] : pending) {  // EXPECT: determinism
    wire.push_back(dst + bytes);
  }
  return wire;
}

}  // namespace fixture_det_flag
