// Must-pass corpus for the engine-capacity pass: the idioms the real tree
// uses to keep event closures inside the inline slot.
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace fixture_cap_pass {

using EventId = unsigned long long;
using Time = double;

struct Engine {
  template <typename F>
  EventId schedule(Time, F&&) { return 1; }
  template <typename F>
  EventId schedule_checked(Time, F&&) { return 1; }
  template <typename F>
  EventId schedule_in_checked(Time, F&&) { return 1; }
};

/// Scalar captures through the checked form: the steady-state shape.
inline void small_capture(Engine& eng, int dst, std::size_t bytes) {
  eng.schedule_in_checked(1.0, [dst, bytes] { (void)dst; (void)bytes; });
}

/// Bulky state boxed behind a pointer, so only 8 bytes land in the slot.
inline void boxed_payload(Engine& eng) {
  auto payload = std::make_unique<std::vector<int>>(1024);
  eng.schedule_checked(0.0, [p = std::move(payload)] { (void)p->size(); });
}

/// A cold path that deliberately accepts the heap spill, with the
/// justification the suppression grammar requires.
inline void annotated_spill(Engine& eng, const std::vector<int>& big) {
  // nmx-lint: allow(engine-capacity) cold recovery path; spill counted by closure_heap_allocs
  eng.schedule(0.0, [big] { (void)big.size(); });
}

}  // namespace fixture_cap_pass
