// Must-pass corpus for the thread-discipline pass: the legal context
// pairings, including the innermost-context rule (a schedule-lambda inside
// an actor body is engine context).
#include <functional>
#include <string>
#include <thread>

namespace fixture_thr_pass {

struct Packet {
  int dst = 0;
};

struct Fabric {
  // nmx-lint: engine-context
  double transmit(Packet) { return 0.0; }
};

struct Actor {
  // nmx-lint: actor-context
  bool block_until(double) { return true; }
  void wake() {}
};

struct Engine {
  template <typename F>
  unsigned long long schedule_in_checked(double, F&&) { return 1; }
  Actor& spawn(const std::string&, std::function<void(Actor&)>) {
    static Actor a;
    return a;
  }
};

/// Engine callbacks own the fabric: transmit from a scheduled closure is the
/// intended shape.
inline void engine_callback_transmits(Engine& eng, Fabric& fab) {
  eng.schedule_in_checked(1.0, [&fab] { fab.transmit(Packet{}); });
}

/// An actor that routes NIC work through the event queue and blocks in its
/// own context: both calls are legal, including the engine-context transmit
/// inside the nested schedule-lambda (innermost context wins).
inline void actor_routes_through_queue(Engine& eng, Fabric& fab) {
  eng.spawn("rank0", [&eng, &fab](Actor& self) {
    eng.schedule_in_checked(0.5, [&fab] { fab.transmit(Packet{}); });
    self.block_until(1.0);
  });
}

/// The sanctioned escape hatch for real threads: code that provably never
/// touches simulation state (here, a harness timing guard) may keep one
/// behind a justification the next reader can audit.
inline void watchdog_outside_simulation() {
  // nmx-lint: allow(thread-discipline) wall-clock watchdog, never touches sim state
  std::thread guard([] {});
  guard.join();
}

}  // namespace fixture_thr_pass
