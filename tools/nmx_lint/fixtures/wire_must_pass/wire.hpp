// Must-pass corpus for the wire-conformance pass: every enumerator counted
// by kNumKinds, charged in header_bytes(), named in kind_name(), and pinned
// in the sibling wire_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fixture_wire_pass {

struct Entry {
  enum class Kind : std::uint8_t { Eager, Rts };
  static constexpr int kNumKinds = 2;

  static constexpr std::size_t kEagerHeader = 16;
  static constexpr std::size_t kRtsHeader = 36;

  Kind kind = Kind::Eager;

  std::size_t header_bytes() const {
    switch (kind) {
      case Kind::Eager: return kEagerHeader;
      case Kind::Rts: return kRtsHeader;
    }
    return kEagerHeader;
  }

  static const char* kind_name(Kind k) {
    switch (k) {
      case Kind::Eager: return "Eager";
      case Kind::Rts: return "Rts";
    }
    return "?";
  }
};

}  // namespace fixture_wire_pass
