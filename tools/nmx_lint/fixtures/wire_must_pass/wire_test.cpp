// Complete layout pins: one per Kind enumerator.
#include "wire.hpp"

namespace fixture_wire_pass {

static_assert(Entry::kEagerHeader == 16, "eager header pin");
static_assert(Entry::kRtsHeader == 36, "rts header pin");

int pin_eager() { return static_cast<int>(Entry::Kind::Eager); }
int pin_rts() { return static_cast<int>(Entry::Kind::Rts); }

}  // namespace fixture_wire_pass
