"""Optional libclang (clang.cindex) frontend for the type-sensitive passes.

When python-clang + libclang are installed (the CI lint job installs them;
the dev container may not have them), this module replaces the *evidence
source* for the two checks where a real AST beats lexical analysis:

  * determinism: banned wall-clock/entropy calls are matched against fully
    qualified names, and range-for statements are classified by the actual
    (desugared) type of the range expression — no name-collision heuristics;
  * engine-capacity: the closure size of a lambda passed to Engine::schedule*
    is the compiler's own record layout (Type.get_sizeof), not an estimate.

The wire-conformance and thread-discipline passes stay textual in both
frontends: they reason about comments, test pins and annotation markers that
no AST carries.  Every entry point degrades gracefully: import failure,
missing compile_commands.json or a TU that fails to parse makes the caller
fall back to the builtin frontend for that evidence.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from .source import Finding, SourceFile

_BANNED_QUALIFIED = {
    "std::chrono::system_clock": "wall clock (std::chrono::system_clock)",
    "std::chrono::steady_clock": "wall clock (std::chrono::steady_clock)",
    "std::chrono::high_resolution_clock":
        "wall clock (std::chrono::high_resolution_clock)",
    "std::random_device": "hardware entropy (std::random_device)",
    "rand": "unseeded C rand()",
    "srand": "srand() — seed state hidden from the run configuration",
    "time": "wall clock (time())",
    "clock_gettime": "wall clock (clock_gettime)",
    "gettimeofday": "wall clock (gettimeofday)",
    "getentropy": "hardware entropy (getentropy)",
}


def clang_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
    except Exception:
        return False
    try:
        clang.cindex.Index.create()
        return True
    except Exception:
        return False


def _qualified(cursor) -> str:
    parts = []
    c = cursor
    while c is not None and c.spelling:
        parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


class ClangEvidence:
    """AST-derived facts for one run; keys are (abs path, 1-based line)."""

    def __init__(self) -> None:
        self.banned_calls: List[Tuple[str, int, str]] = []
        self.unordered_fors: List[Tuple[str, int, str]] = []
        # (path, line, closure_bytes, callee_name)
        self.closures: List[Tuple[str, int, int, str]] = []
        self.parsed_files: set = set()


def collect(build_dir: str, paths: List[str]) -> Optional[ClangEvidence]:
    """Parse every TU in compile_commands.json that covers `paths` and
    harvest evidence. None when libclang is unusable."""
    if not clang_available():
        return None
    import clang.cindex as ci

    try:
        cdb = ci.CompilationDatabase.fromDirectory(build_dir)
    except ci.CompilationDatabaseError:
        return None
    index = ci.Index.create()
    wanted = {os.path.realpath(p) for p in paths}
    ev = ClangEvidence()

    for cmd in cdb.getAllCompileCommands():
        tu_path = os.path.realpath(os.path.join(cmd.directory, cmd.filename))
        if tu_path not in wanted:
            continue
        args = [a for a in list(cmd.arguments)[1:]
                if a not in (cmd.filename, tu_path, "-c", "-o")]
        # drop the object-file operand that follows a stripped -o
        args = [a for a in args if not a.endswith(".o")]
        try:
            tu = index.parse(tu_path, args=args)
        except ci.TranslationUnitLoadError:
            continue
        ev.parsed_files.add(tu_path)
        _walk(ci, tu.cursor, wanted, ev)
    return ev


def _walk(ci, cursor, wanted, ev: ClangEvidence) -> None:
    K = ci.CursorKind
    for node in cursor.walk_preorder():
        loc = node.location
        if loc.file is None:
            continue
        path = os.path.realpath(loc.file.name)
        if path not in wanted:
            continue
        if node.kind in (K.DECL_REF_EXPR, K.TYPE_REF):
            ref = node.referenced
            if ref is not None:
                q = _qualified(ref)
                for banned, what in _BANNED_QUALIFIED.items():
                    if q == banned or q.endswith("::" + banned):
                        ev.banned_calls.append((path, loc.line, what))
                        break
        elif node.kind == K.CXX_FOR_RANGE_STMT:
            children = list(node.get_children())
            if children:
                rng = children[-2] if len(children) >= 2 else children[0]
                t = rng.type.get_canonical().spelling if rng.type else ""
                if "unordered_map" in t or "unordered_set" in t or \
                   "unordered_multimap" in t or "unordered_multiset" in t:
                    ev.unordered_fors.append((path, loc.line, t))
        elif node.kind == K.CALL_EXPR and node.spelling in (
                "schedule", "schedule_in", "schedule_checked",
                "schedule_in_checked"):
            for arg in node.get_arguments():
                lam = _first_lambda(ci, arg)
                if lam is not None:
                    size = lam.type.get_sizeof()
                    if isinstance(size, int) and size > 0:
                        ev.closures.append(
                            (path, lam.location.line, size, node.spelling))
                    break


def _first_lambda(ci, node):
    if node is None:
        return None
    if node.kind == ci.CursorKind.LAMBDA_EXPR:
        return node
    for child in node.get_children():
        found = _first_lambda(ci, child)
        if found is not None:
            return found
    return None


def determinism_findings(ev: ClangEvidence,
                         files: Dict[str, SourceFile]) -> List[Finding]:
    out: List[Finding] = []
    for path, line, what in ev.banned_calls:
        sf = files.get(path)
        if sf is not None and sf.suppressed(line, "determinism"):
            continue
        out.append(Finding(
            "determinism", path, line,
            f"{what} in simulated code: take time from Engine::now() and "
            "randomness from a config-seeded generator"))
    for path, line, t in ev.unordered_fors:
        sf = files.get(path)
        if sf is not None and sf.suppressed(line, "determinism"):
            continue
        out.append(Finding(
            "determinism", path, line,
            f"range-iteration over '{t}': hash-map visitation order leaks "
            "into results — iterate an ordered structure, impose a total "
            "order, or annotate `nmx-lint: allow(determinism) <reason>`"))
    return out


def capacity_findings(ev: ClangEvidence, files: Dict[str, SourceFile],
                      cap: int) -> List[Finding]:
    out: List[Finding] = []
    for path, line, size, callee in ev.closures:
        sf = files.get(path)
        suppressed = sf is not None and (
            sf.suppressed(line, "engine-capacity"))
        if suppressed:
            continue
        if callee in ("schedule", "schedule_in"):
            out.append(Finding(
                "engine-capacity", path, line,
                f"lambda scheduled via unchecked {callee}(): use "
                f"{callee}_checked() so a capture list outgrowing the "
                f"{cap}-byte inline slot breaks the build, or annotate "
                "`nmx-lint: allow(engine-capacity) <why the spill is ok>`"))
        if size > cap:
            out.append(Finding(
                "engine-capacity", path, line,
                f"closure is {size} bytes (compiler layout), over the "
                f"{cap}-byte SmallFn inline slot: the closure heap-allocates "
                "on every event — move bulky state behind a pointer or "
                "pre-build it outside the closure"))
    return out
