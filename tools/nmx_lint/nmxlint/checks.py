"""The four nmx_lint passes (builtin lexical frontend).

Each check is a callable ``run(files, ctx) -> List[Finding]`` over parsed
SourceFile objects.  Findings already filtered through per-line
``nmx-lint: allow(<check>)`` suppressions.  See tools/nmx_lint/README.md for
the rule catalogue and DESIGN.md "Determinism invariants" for why each rule
exists.
"""

from __future__ import annotations

import dataclasses
import os
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .source import (
    Finding,
    Lambda,
    SourceFile,
    find_lambdas,
    match_brace,
    split_top_level,
)


@dataclasses.dataclass
class Context:
    """Cross-file knowledge shared by the checks."""

    # capture-capacity bound; parsed from smallfn.hpp when linting the tree
    inline_bytes: int = 104
    # wire-conformance inputs
    wire_header: Optional[SourceFile] = None
    wire_test: Optional[SourceFile] = None
    # names of unordered-/ordered-container variables harvested per file and
    # globally (headers declare members that .cpp files iterate)
    unordered_names: Set[str] = dataclasses.field(default_factory=set)
    ordered_names: Set[str] = dataclasses.field(default_factory=set)
    per_file_ordered: Dict[str, Set[str]] = dataclasses.field(default_factory=dict)
    per_file_unordered: Dict[str, Set[str]] = dataclasses.field(default_factory=dict)
    # thread-discipline markers harvested from every file in the run
    engine_context_fns: Set[str] = dataclasses.field(default_factory=set)
    actor_context_fns: Set[str] = dataclasses.field(default_factory=set)


# ---------------------------------------------------------------------------
# shared harvesting
# ---------------------------------------------------------------------------

_UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
_ORDERED_DECL_RE = re.compile(r"\b(?:map|set|multimap|multiset|vector|deque|array|list)\s*<")


def _decl_names(code: str, head_re: re.Pattern) -> Set[str]:
    """Variable/member names declared with a container type matched by
    head_re, e.g. ``std::unordered_map<Tag, int> send_seq;`` -> {"send_seq"}."""
    names: Set[str] = set()
    for m in head_re.finditer(code):
        # walk the template argument list
        depth = 0
        i = m.end() - 1
        n = len(code)
        while i < n:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = code[i + 1:i + 160]
        dm = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)\s*[;={(,)\[]", tail)
        if dm is not None:
            names.add(dm.group(1))
    return names


def build_context(files: Iterable[SourceFile], ctx: Context) -> None:
    for sf in files:
        unordered = _decl_names(sf.code, _UNORDERED_DECL_RE)
        ordered = _decl_names(sf.code, _ORDERED_DECL_RE) - unordered
        ctx.per_file_unordered[sf.path] = unordered
        ctx.per_file_ordered[sf.path] = ordered
        ctx.unordered_names |= unordered
        ctx.ordered_names |= ordered
        ctx.engine_context_fns |= sf.engine_context_fns
        ctx.actor_context_fns |= sf.actor_context_fns


# ---------------------------------------------------------------------------
# check 1: determinism
# ---------------------------------------------------------------------------

# Wall-clock and entropy sources. Simulated code must take time from
# sim::Engine::now() and randomness from a seeded generator threaded through
# the configuration, or byte-identical replay (determinism_test, the chaos
# same-seed tier) silently stops meaning anything.
_BANNED_TOKENS: List[Tuple[re.Pattern, str]] = [
    (re.compile(r"\bsystem_clock\b"), "wall clock (std::chrono::system_clock)"),
    (re.compile(r"\bsteady_clock\b"), "wall clock (std::chrono::steady_clock)"),
    (re.compile(r"\bhigh_resolution_clock\b"), "wall clock (std::chrono::high_resolution_clock)"),
    (re.compile(r"\brandom_device\b"), "hardware entropy (std::random_device)"),
    (re.compile(r"\brand\s*\("), "unseeded C rand()"),
    (re.compile(r"\bsrand\s*\("), "srand() — seed state hidden from the run configuration"),
    (re.compile(r"\btime\s*\(\s*(?:0|NULL|nullptr)?\s*\)"), "wall clock (time())"),
    (re.compile(r"\bclock_gettime\b"), "wall clock (clock_gettime)"),
    (re.compile(r"\bgettimeofday\b"), "wall clock (gettimeofday)"),
    (re.compile(r"\bgetentropy\b"), "hardware entropy (getentropy)"),
]

_RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
# a loop body that only clears/erases per-element state is order-insensitive
_CLEAR_ONLY_RE = re.compile(
    r"^\s*(?:[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*\.(?:clear|reset)\(\)\s*;\s*)+$")


def _range_expr_root(expr: str) -> Optional[str]:
    """Last member-chain component of a range expression: ``g.unexpected`` ->
    ``unexpected``, ``gates_`` -> ``gates_``. None for calls/complex exprs."""
    expr = expr.strip()
    if not expr or expr.endswith(")"):
        return None
    m = re.search(r"([A-Za-z_]\w*)$", expr)
    return m.group(1) if m else None


def check_determinism(files: List[SourceFile], ctx: Context) -> List[Finding]:
    out: List[Finding] = []
    for sf in files:
        for pat, what in _BANNED_TOKENS:
            for m in pat.finditer(sf.code):
                line = sf.line_of(m.start())
                if sf.suppressed(line, "determinism"):
                    continue
                out.append(Finding(
                    "determinism", sf.path, line,
                    f"{what} in simulated code: take time from Engine::now() "
                    "and randomness from a config-seeded generator"))
        out.extend(_unordered_iteration(sf, ctx))
    return out


def _unordered_iteration(sf: SourceFile, ctx: Context) -> List[Finding]:
    out: List[Finding] = []
    local_ordered = ctx.per_file_ordered.get(sf.path, set())
    local_unordered = ctx.per_file_unordered.get(sf.path, set())
    for m in _RANGE_FOR_RE.finditer(sf.code):
        close = match_brace(sf.code, m.end() - 1, "(", ")")
        header = sf.code[m.end():close - 1]
        parts = split_top_level(header, ":")
        if len(parts) != 2:
            continue  # classic for(;;), not a range-for
        root = _range_expr_root(parts[1])
        if root is None:
            continue
        is_unordered = root in ctx.unordered_names or root in local_unordered
        # a local declaration with an ordered/sequence type wins over a
        # same-named unordered member elsewhere in the tree
        if root in local_ordered and root not in local_unordered:
            is_unordered = False
        if root in ctx.ordered_names and root not in ctx.unordered_names:
            is_unordered = False
        if not is_unordered:
            continue
        line = sf.line_of(m.start())
        if sf.suppressed(line, "determinism"):
            continue
        # order-insensitive loop bodies (pure per-element clear) are fine
        body_start = close
        while body_start < len(sf.code) and sf.code[body_start] in " \t\n":
            body_start += 1
        if body_start < len(sf.code):
            if sf.code[body_start] == "{":
                body = sf.code[body_start + 1:match_brace(sf.code, body_start) - 1]
            else:
                semi = sf.code.find(";", body_start)
                body = sf.code[body_start:semi + 1] if semi >= 0 else ""
            if _CLEAR_ONLY_RE.match(body.strip()):
                continue
        out.append(Finding(
            "determinism", sf.path, line,
            f"range-iteration over unordered container '{root}': hash-map "
            "visitation order leaks into results — iterate an ordered "
            "structure, impose a total order, or annotate "
            "`nmx-lint: allow(determinism) <why order cannot leak>`"))
    return out


# ---------------------------------------------------------------------------
# check 2: wire conformance
# ---------------------------------------------------------------------------

_ENUM_KIND_RE = re.compile(r"enum\s+class\s+Kind[^{]*\{([^}]*)\}")
_NUM_KINDS_RE = re.compile(r"kNumKinds\s*=\s*(\d+)")
_CASE_RE = re.compile(r"case\s+(?:Entry\s*::\s*)?Kind\s*::\s*(\w+)")


def _switch_cases(sf: SourceFile, fn_name: str) -> Optional[Tuple[int, Set[str]]]:
    """(line, {case enumerators}) of the switch inside fn_name's body."""
    m = re.search(r"\b" + re.escape(fn_name) + r"\s*\([^)]*\)[^{;]*\{", sf.code)
    if m is None:
        return None
    body_end = match_brace(sf.code, m.end() - 1)
    body = sf.code[m.end():body_end]
    return sf.line_of(m.start()), {c.group(1) for c in _CASE_RE.finditer(body)}


def check_wire_conformance(files: List[SourceFile], ctx: Context) -> List[Finding]:
    out: List[Finding] = []
    hdr, test = ctx.wire_header, ctx.wire_test
    if hdr is None:
        return out
    em = _ENUM_KIND_RE.search(hdr.code)
    if em is None:
        out.append(Finding("wire-conformance", hdr.path, 1,
                           "no `enum class Kind` found in wire header"))
        return out
    enum_line = hdr.line_of(em.start())
    kinds = []
    for item in em.group(1).split(","):
        name = item.split("=")[0].strip()
        if name:
            kinds.append(name)

    nm = _NUM_KINDS_RE.search(hdr.code)
    if nm is not None:
        declared = int(nm.group(1))
        line = hdr.line_of(nm.start())
        if declared != len(kinds) and not hdr.suppressed(line, "wire-conformance"):
            out.append(Finding(
                "wire-conformance", hdr.path, line,
                f"kNumKinds = {declared} but enum class Kind has "
                f"{len(kinds)} enumerators"))

    for fn in ("header_bytes", "kind_name"):
        res = _switch_cases(hdr, fn)
        if res is None:
            continue
        fn_line, cases = res
        if hdr.suppressed(fn_line, "wire-conformance"):
            continue
        for k in kinds:
            if k not in cases:
                out.append(Finding(
                    "wire-conformance", hdr.path, fn_line,
                    f"{fn}() switch does not handle Kind::{k} — every wire "
                    "kind must be charged/named explicitly"))
        for c in cases:
            if c not in kinds:
                out.append(Finding(
                    "wire-conformance", hdr.path, fn_line,
                    f"{fn}() switch handles unknown enumerator Kind::{c}"))

    if test is not None:
        pinned = {c.group(1) for c in _CASE_RE.finditer(test.code)}
        pinned |= {m.group(1) for m in re.finditer(r"Kind\s*::\s*(\w+)", test.code)}
        for k in kinds:
            if k not in pinned and not hdr.suppressed(enum_line, "wire-conformance"):
                out.append(Finding(
                    "wire-conformance", hdr.path, enum_line,
                    f"Kind::{k} has no layout pin in {test.path} — add a "
                    "header-size test before shipping a new wire kind"))
    return out


# ---------------------------------------------------------------------------
# check 3: engine capacity
# ---------------------------------------------------------------------------

_SCHEDULE_UNCHECKED = ["schedule", "schedule_in"]
_SCHEDULE_CHECKED = ["schedule_checked", "schedule_in_checked"]

# libstdc++ x86-64 sizes for the types that show up in capture lists.
_TYPE_SIZES: Dict[str, int] = {
    "bool": 1, "char": 1, "signed char": 1, "unsigned char": 1,
    "short": 2, "unsigned short": 2, "int": 4, "unsigned": 4,
    "unsigned int": 4, "float": 4, "long": 8, "unsigned long": 8,
    "long long": 8, "unsigned long long": 8, "double": 8, "size_t": 8,
    "std::size_t": 8, "std::uint8_t": 1, "std::uint16_t": 2,
    "std::uint32_t": 4, "std::uint64_t": 8, "std::int8_t": 1,
    "std::int16_t": 2, "std::int32_t": 4, "std::int64_t": 8,
    "uint8_t": 1, "uint16_t": 2, "uint32_t": 4, "uint64_t": 8,
    "int8_t": 1, "int16_t": 2, "int32_t": 4, "int64_t": 8,
    "Time": 8, "double_t": 8, "std::byte": 1,
}
_TEMPLATE_SIZES: Dict[str, int] = {
    "vector": 24, "basic_string": 32, "string": 32, "deque": 80,
    "function": 32, "unique_ptr": 8, "shared_ptr": 16, "any": 16,
    "optional_ptr": 8, "span": 16, "string_view": 16, "list": 24,
    "map": 48, "set": 48, "unordered_map": 56, "unordered_set": 56,
}
_UNKNOWN_SIZE = 16  # conservative floor for an unrecognized by-value type


def _type_size(type_text: str) -> Tuple[int, bool]:
    """(bytes, exact) for a declared type. Pointers/references are 8."""
    t = type_text.strip().rstrip("&*").strip()
    if type_text.rstrip().endswith(("*", "&")):
        return 8, True
    if t.startswith("const "):
        t = t[len("const "):].strip()
    if t in _TYPE_SIZES:
        return _TYPE_SIZES[t], True
    m = re.match(r"(?:std\s*::\s*)?array\s*<(.+),\s*(\d+)\s*>$", t)
    if m is not None:
        elem, exact = _type_size(m.group(1))
        return elem * int(m.group(2)), exact
    m = re.match(r"(?:std\s*::\s*)?(\w+)\s*<", t)
    if m is not None and m.group(1) in _TEMPLATE_SIZES:
        return _TEMPLATE_SIZES[m.group(1)], True
    base = t.split("::")[-1]
    if base in _TYPE_SIZES:
        return _TYPE_SIZES[base], True
    return _UNKNOWN_SIZE, False


_DECL_FOR_NAME_TMPL = (
    r"([A-Za-z_][\w:]*(?:\s*<[^;{{}}()]*>)?(?:\s+const)?[\s*&]+)"
    r"{name}\s*(?:[;=({{\[]|,|\))"
)


def _find_decl_type(code: str, upto: int, name: str) -> Optional[str]:
    """Declared type of `name`, from the nearest preceding declaration."""
    pat = re.compile(_DECL_FOR_NAME_TMPL.format(name=re.escape(name)))
    best = None
    for m in pat.finditer(code, 0, upto):
        head = m.group(1).strip()
        if head in ("return", "else", "case", "delete", "new", "typename",
                    "using", "namespace", "goto", "break", "continue"):
            continue
        best = head
    return best


def estimate_capture_bytes(sf: SourceFile, lam: Lambda) -> Tuple[int, bool]:
    """(estimated closure size, exact) from the capture list. References,
    pointers and `this` cost 8; by-value captures are sized from the nearest
    visible declaration. Unknown types count a conservative 16 bytes, making
    the estimate a lower bound (exact=False)."""
    total = 0
    exact = True
    for item in split_top_level(lam.captures):
        if not item:
            continue
        if item in ("&", "="):
            # default capture: individual captures are invisible lexically
            exact = False
            continue
        if item == "this" or item.startswith("&") or item == "*this":
            total += 8
            continue
        name = item.split("=")[0].strip()
        init = item.split("=", 1)[1].strip() if "=" in item else item
        mm = re.match(r"std\s*::\s*move\s*\(\s*([\w.\->]+)\s*\)", init)
        if mm is not None:
            init_name = mm.group(1).split(".")[-1].split("->")[-1]
        elif re.match(r"[A-Za-z_]\w*$", init):
            init_name = init
        elif re.match(r"std\s*::\s*make_unique\b", init):
            total += 8
            continue
        else:
            total += 8  # literal / address-of / arithmetic expression
            continue
        decl = _find_decl_type(sf.code, lam.start, init_name)
        if decl is None:
            total += _UNKNOWN_SIZE
            exact = False
            continue
        sz, ex = _type_size(decl)
        total += sz
        exact = exact and ex
        _ = name
    return total, exact


def check_engine_capacity(files: List[SourceFile], ctx: Context) -> List[Finding]:
    out: List[Finding] = []
    cap = ctx.inline_bytes
    for sf in files:
        for fn, a0, a1 in sf.call_argument_ranges(_SCHEDULE_UNCHECKED + _SCHEDULE_CHECKED):
            lams = find_lambdas(sf.code, a0, a1)
            # only the lambda passed directly as the callback argument —
            # nested lambdas inside its body are not this event's closure
            lams = [l for l in lams if l.start < (lams[0].body_begin if lams else a1)][:1]
            if not lams:
                continue
            lam = lams[0]
            line = sf.line_of(lam.start)
            call_line = sf.line_of(a0)
            checked = fn in _SCHEDULE_CHECKED
            est, exact = estimate_capture_bytes(sf, lam)
            if not checked and not (sf.suppressed(line, "engine-capacity")
                                    or sf.suppressed(call_line, "engine-capacity")):
                out.append(Finding(
                    "engine-capacity", sf.path, call_line,
                    f"lambda scheduled via unchecked {fn}(): use "
                    f"{fn}_checked() so a capture list outgrowing the "
                    f"{cap}-byte inline slot breaks the build, or annotate "
                    "`nmx-lint: allow(engine-capacity) <why the spill is ok>`"))
            if est > cap and not (sf.suppressed(line, "engine-capacity")
                                  or sf.suppressed(call_line, "engine-capacity")):
                out.append(Finding(
                    "engine-capacity", sf.path, line,
                    f"captures {'=' if exact else '>='} {est} bytes, over the "
                    f"{cap}-byte SmallFn inline slot: the closure heap-"
                    "allocates on every event — move bulky state behind a "
                    "pointer or pre-build it outside the closure"))
    return out


# ---------------------------------------------------------------------------
# check 4: thread discipline
# ---------------------------------------------------------------------------

# Since the fiber runtime, an Actor is a stackful fiber multiplexed onto the
# engine's one thread — OS threads are not the concurrency primitive anywhere
# in the simulated layers. Raw std::thread construction outside the engine
# itself reintroduces real parallelism into code whose correctness argument
# is "exactly one context runs at a time", so it is banned; the engine/fiber
# translation units are the single sanctioned home for context machinery.
_ENGINE_INTERNAL_BASENAMES = ("engine.hpp", "engine.cpp", "fiber.hpp", "fiber.cpp")
_THREAD_CTOR_RE = re.compile(r"\bstd\s*::\s*j?thread\b")

# The raw context-switch primitives (sim/fiber.hpp) are engine internals:
# calling one from protocol or application code would hand the baton around
# behind the scheduler's back, breaking the (t, seq) total order and every
# invariant the markers encode. The context resolver knows them by name so
# they are policed even though they are free functions, not marked members.
_FIBER_PRIMITIVES = ("fiber_make", "fiber_switch", "fiber_exit_switch",
                     "fiber_on_entry", "fiber_release", "nmx_fiber_swap")
_FIBER_CALL_RE = re.compile(
    r"(?<![\w.>])(" + "|".join(_FIBER_PRIMITIVES) + r")\s*\(")


def _regions(sf: SourceFile, fn_names: List[str]) -> List[Tuple[int, int]]:
    """Body extents of lambdas passed to any of fn_names."""
    out: List[Tuple[int, int]] = []
    for _, a0, a1 in sf.call_argument_ranges(fn_names):
        for lam in find_lambdas(sf.code, a0, a1):
            if lam.start < a1:
                out.append((lam.body_begin, lam.body_end))
                break  # first lambda per call: the callback/body argument
    return out


def check_thread_discipline(files: List[SourceFile], ctx: Context) -> List[Finding]:
    out: List[Finding] = []
    for sf in files:
        if os.path.basename(sf.path) not in _ENGINE_INTERNAL_BASENAMES:
            for m in _THREAD_CTOR_RE.finditer(sf.code):
                line = sf.line_of(m.start())
                if sf.suppressed(line, "thread-discipline"):
                    continue
                out.append(Finding(
                    "thread-discipline", sf.path, line,
                    "raw std::thread in simulated code: actors are fibers "
                    "scheduled by the engine — use Engine::spawn(), or "
                    "annotate `nmx-lint: allow(thread-discipline) <why a "
                    "real thread cannot race the simulation>`"))
            for m in _FIBER_CALL_RE.finditer(sf.code):
                line = sf.line_of(m.start())
                if sf.suppressed(line, "thread-discipline"):
                    continue
                out.append(Finding(
                    "thread-discipline", sf.path, line,
                    f"{m.group(1)}() is a raw fiber-switch primitive "
                    "(engine internal): switching contexts outside the "
                    "engine bypasses the event queue's (t, seq) order — "
                    "block/wake through the Actor API instead"))
    if not ctx.engine_context_fns and not ctx.actor_context_fns:
        return out
    for sf in files:
        actor_regions = _regions(sf, ["spawn"])
        engine_regions = _regions(sf, _SCHEDULE_UNCHECKED + _SCHEDULE_CHECKED)

        def in_any(pos: int, regions: List[Tuple[int, int]]) -> bool:
            return any(b <= pos < e for b, e in regions)

        for name in sorted(ctx.engine_context_fns):
            for m in re.finditer(r"[.\->]\s*" + re.escape(name) + r"\s*\(", sf.code):
                pos = m.start()
                # innermost context wins: a schedule-lambda inside an actor
                # body is engine context
                if in_any(pos, actor_regions) and not in_any(pos, engine_regions):
                    line = sf.line_of(pos)
                    if sf.suppressed(line, "thread-discipline"):
                        continue
                    out.append(Finding(
                        "thread-discipline", sf.path, line,
                        f"{name}() is engine-context (mutates engine/fabric "
                        "shared state at the current virtual time) but is "
                        "called from an actor body — route it through "
                        "Engine::schedule*() instead"))
        for name in sorted(ctx.actor_context_fns):
            for m in re.finditer(r"[.\->]\s*" + re.escape(name) + r"\s*\(", sf.code):
                pos = m.start()
                if in_any(pos, engine_regions):
                    line = sf.line_of(pos)
                    if sf.suppressed(line, "thread-discipline"):
                        continue
                    out.append(Finding(
                        "thread-discipline", sf.path, line,
                        f"{name}() blocks the calling actor but is invoked "
                        "from an engine callback — engine callbacks must "
                        "never block; wake the actor and let it re-check "
                        "its predicate"))
    return out


ALL_CHECKS = {
    "determinism": check_determinism,
    "wire-conformance": check_wire_conformance,
    "engine-capacity": check_engine_capacity,
    "thread-discipline": check_thread_discipline,
}
