"""Source model for nmx_lint's builtin frontend.

Loads a C++ translation unit (or header) and exposes:

  * ``code``      -- the text with comments and string/char literals blanked
                     out (offsets and line structure preserved), so checks can
                     pattern-match without tripping over prose;
  * suppressions  -- ``// nmx-lint: allow(<check>) <reason>`` comments, which
                     silence findings of <check> on their own line and the
                     next line; a missing reason is itself reported;
  * markers       -- ``// nmx-lint: engine-context`` / ``actor-context``
                     comments that tag the function declared on the following
                     line for the thread-discipline pass;
  * structural helpers -- brace matching and lambda-extent discovery shared
                     by the capacity and thread-discipline checks.

The model is deliberately lexical: it never sees preprocessor output and
does not resolve overloads.  Checks built on it trade a little precision for
zero build-time dependencies; when python-clang is installed the clang
frontend (clang_frontend.py) replaces the evidence source for the
type-sensitive checks with real AST queries.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Set, Tuple

CHECK_NAMES = (
    "determinism",
    "wire-conformance",
    "engine-capacity",
    "thread-discipline",
)

_ALLOW_RE = re.compile(r"nmx-lint:\s*allow\(([a-z\-]+)\)\s*(.*)")
_MARKER_RE = re.compile(r"nmx-lint:\s*(engine-context|actor-context)\b")


@dataclasses.dataclass(frozen=True)
class Finding:
    check: str
    path: str
    line: int  # 1-based
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


@dataclasses.dataclass
class Lambda:
    """One lambda expression: capture list + body extent (offsets in code)."""

    start: int          # offset of '['
    captures: str       # raw capture-list text
    body_begin: int     # offset of '{'
    body_end: int        # offset one past matching '}'


def blank_comments_and_strings(text: str) -> Tuple[str, List[Tuple[int, str]]]:
    """Return (code, comments) where code has comments and string/char
    literals replaced by spaces (newlines kept) and comments is a list of
    (offset, comment_text)."""
    out = list(text)
    comments: List[Tuple[int, str]] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            comments.append((i, text[i:j]))
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            comments.append((i, text[i:j]))
            for k in range(i, j):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                j += 1
            else:
                j = n
            # keep the quotes themselves so adjacent tokens stay separated
            for k in range(i + 1, min(j - 1, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        else:
            i += 1
    return "".join(out), comments


def match_brace(code: str, open_pos: int, open_ch: str = "{", close_ch: str = "}") -> int:
    """Offset one past the brace matching code[open_pos]; len(code) if
    unbalanced."""
    depth = 0
    for i in range(open_pos, len(code)):
        c = code[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


_LAMBDA_HEAD_RE = re.compile(
    r"\[(?P<cap>[^\[\]]*)\]\s*"          # capture list (no nested brackets)
    r"(?:\((?P<params>[^()]*)\)\s*)?"    # optional parameter list
    r"(?:mutable\s*)?(?:noexcept\s*)?"
    r"(?:->\s*[\w:<>,&*\s]+?\s*)?"
    r"\{"
)


def find_lambdas(code: str, begin: int = 0, end: Optional[int] = None) -> List[Lambda]:
    """Lambda expressions whose '[' lies in [begin, end). Lexical heuristic:
    a bracketed capture list followed (optionally via a parameter list) by a
    brace. Array subscripts never match because they are not followed by
    '{' or '(...) {'."""
    if end is None:
        end = len(code)
    out: List[Lambda] = []
    pos = begin
    while pos < end:
        m = _LAMBDA_HEAD_RE.search(code, pos, end)
        if m is None:
            break
        body_begin = m.end() - 1
        body_end = match_brace(code, body_begin)
        out.append(Lambda(m.start(), m.group("cap"), body_begin, body_end))
        pos = m.start() + 1
    return out


def split_top_level(text: str, sep: str = ",") -> List[str]:
    """Split on `sep` at zero bracket depth ((), [], {}, <>)."""
    parts: List[str] = []
    depth = 0
    cur: List[str] = []
    for c in text:
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth = max(0, depth - 1)
        if c == sep and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


class SourceFile:
    def __init__(self, path: str, text: Optional[str] = None):
        self.path = path
        if text is None:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        self.text = text
        self.code, self._comments = blank_comments_and_strings(text)
        # line starts for offset -> line translation
        self._line_starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                self._line_starts.append(i + 1)
        self.suppressions: Dict[int, Set[str]] = {}
        self.bad_suppressions: List[Finding] = []
        self.engine_context_fns: Set[str] = set()
        self.actor_context_fns: Set[str] = set()
        self._parse_annotations()

    # -- coordinates --------------------------------------------------------

    def line_of(self, offset: int) -> int:
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def line_text(self, line: int) -> str:
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        return self.text[start:] if end < 0 else self.text[start:end]

    def num_lines(self) -> int:
        return len(self._line_starts)

    # -- annotations --------------------------------------------------------

    def _parse_annotations(self) -> None:
        for off, comment in self._comments:
            line = self.line_of(off)
            m = _ALLOW_RE.search(comment)
            if m is not None:
                check, reason = m.group(1), m.group(2).strip()
                if check not in CHECK_NAMES:
                    self.bad_suppressions.append(
                        Finding("lint-annotation", self.path, line,
                                f"allow() names unknown check '{check}'"))
                    continue
                if not reason:
                    self.bad_suppressions.append(
                        Finding("lint-annotation", self.path, line,
                                "allow() suppression requires a justification "
                                "after the closing paren"))
                    continue
                for covered in (line, line + 1):
                    self.suppressions.setdefault(covered, set()).add(check)
            m = _MARKER_RE.search(comment)
            if m is not None:
                name = self._declared_fn_after(line)
                if name is None:
                    self.bad_suppressions.append(
                        Finding("lint-annotation", self.path, line,
                                f"{m.group(1)} marker is not followed by a "
                                "function declaration"))
                elif m.group(1) == "engine-context":
                    self.engine_context_fns.add(name)
                else:
                    self.actor_context_fns.add(name)

    def _declared_fn_after(self, marker_line: int) -> Optional[str]:
        """Name of the function declared on the first non-blank code line
        after `marker_line` (the identifier directly before a '(')."""
        for line in range(marker_line + 1, min(marker_line + 4, self.num_lines() + 1)):
            start = self._line_starts[line - 1]
            end = self.text.find("\n", start)
            code_line = self.code[start:(len(self.code) if end < 0 else end)]
            if not code_line.strip():
                continue
            m = re.search(r"(\w+)\s*\(", code_line)
            return m.group(1) if m else None
        return None

    def suppressed(self, line: int, check: str) -> bool:
        return check in self.suppressions.get(line, set())

    # -- structural helpers --------------------------------------------------

    def call_argument_ranges(self, fn_names: List[str]) -> List[Tuple[str, int, int]]:
        """(name, args_begin, args_end) offset ranges (exclusive of parens)
        for every call whose callee token is one of fn_names, e.g.
        ``eng_.schedule_in(`` or ``spawn(``."""
        out: List[Tuple[str, int, int]] = []
        pattern = re.compile(
            r"\b(" + "|".join(re.escape(n) for n in fn_names) + r")\s*\(")
        for m in pattern.finditer(self.code):
            # skip declarations/definitions: `EventId schedule_in(Time dt, ...)`
            # are recognizable by a type token directly before the name.
            close = match_brace(self.code, m.end() - 1, "(", ")")
            out.append((m.group(1), m.end(), close - 1))
        return out
