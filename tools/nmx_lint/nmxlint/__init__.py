"""nmx_lint: repo-specific static checks (see nmx_lint.py for the CLI)."""
