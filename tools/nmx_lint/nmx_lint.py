#!/usr/bin/env python3
"""nmx-lint: repo-specific static checks for the NewMadeleine/MPICH2 sim.

Four passes guard the invariants the runtime test tiers depend on:

  determinism        no wall clocks, no unseeded entropy, no hash-map
                     iteration order leaking into results in the simulated
                     layers (src/sim, src/nmad, src/net, src/obs)
  wire-conformance   every wire::Entry::Kind enumerator is charged in
                     header_bytes(), named in kind_name(), counted by
                     kNumKinds and pinned in tests/wire_test.cpp
  engine-capacity    lambdas handed to Engine::schedule*/schedule_in* use the
                     *_checked forms (compile-time SmallFn bound) and their
                     captures fit the inline event slot
  thread-discipline  engine-context APIs (e.g. Fabric::transmit) are never
                     called from actor bodies, and actor-blocking APIs never
                     from engine callbacks

Frontends: a builtin lexical frontend (zero dependencies, runs everywhere)
and an optional clang.cindex frontend over compile_commands.json that
upgrades the type-sensitive evidence when python-clang is installed
(--frontend=auto picks it up). Suppress a finding with
`// nmx-lint: allow(<check>) <justification>` on or directly above the line.

Usage:
  nmx_lint.py --repo . --build-dir build            # lint the tree
  nmx_lint.py --self-test                           # fixture corpus
  nmx_lint.py --assert-non-vacuous                  # each check must bite
"""

from __future__ import annotations

import argparse
import glob
import os
import re
import sys
from typing import Dict, List, Optional, Set, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from nmxlint import clang_frontend  # noqa: E402
from nmxlint.checks import (  # noqa: E402
    ALL_CHECKS,
    Context,
    build_context,
    check_determinism,
    check_engine_capacity,
    check_thread_discipline,
    check_wire_conformance,
)
from nmxlint.source import CHECK_NAMES, Finding, SourceFile  # noqa: E402

DETERMINISM_SCOPE = ("src/sim", "src/nmad", "src/net", "src/obs")
_EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([a-z\-]+(?:\s*,\s*[a-z\-]+)*)")


def _load(paths: List[str]) -> List[SourceFile]:
    return [SourceFile(p) for p in sorted(paths)]


def _glob_sources(root: str, subdirs: Tuple[str, ...]) -> List[str]:
    out: List[str] = []
    for sub in subdirs:
        for ext in ("hpp", "cpp", "h", "cc"):
            out.extend(glob.glob(os.path.join(root, sub, "**", f"*.{ext}"),
                                 recursive=True))
    return sorted(set(out))


def _parse_inline_bytes(repo: str) -> int:
    smallfn = os.path.join(repo, "src/sim/smallfn.hpp")
    if os.path.exists(smallfn):
        with open(smallfn) as f:
            m = re.search(r"kInlineBytes\s*=\s*(\d+)", f.read())
            if m:
                return int(m.group(1))
    return 104


def lint_tree(repo: str, build_dir: Optional[str], frontend: str,
              enabled: Set[str]) -> List[Finding]:
    all_src = _load(_glob_sources(repo, ("src",)))
    det_files = [sf for sf in all_src
                 if any(os.path.relpath(sf.path, repo).startswith(d)
                        for d in DETERMINISM_SCOPE)]
    ctx = Context(inline_bytes=_parse_inline_bytes(repo))
    build_context(all_src, ctx)
    wire_hpp = os.path.join(repo, "src/nmad/wire.hpp")
    wire_test = os.path.join(repo, "tests/wire_test.cpp")
    if os.path.exists(wire_hpp):
        ctx.wire_header = SourceFile(wire_hpp)
    if os.path.exists(wire_test):
        ctx.wire_test = SourceFile(wire_test)

    by_path = {os.path.realpath(sf.path): sf for sf in all_src}
    evidence = None
    if frontend in ("auto", "clang") and build_dir is not None:
        evidence = clang_frontend.collect(build_dir, list(by_path))
        if evidence is None and frontend == "clang":
            print("nmx-lint: --frontend=clang requested but libclang/"
                  "compile_commands.json unavailable", file=sys.stderr)
            sys.exit(2)
    if evidence is not None:
        print(f"nmx-lint: clang frontend ({len(evidence.parsed_files)} TUs)")
    else:
        print("nmx-lint: builtin frontend (python-clang not available)")

    findings: List[Finding] = []
    for sf in all_src:
        findings.extend(sf.bad_suppressions)
    if "determinism" in enabled:
        if evidence is not None:
            det_paths = {os.path.realpath(sf.path) for sf in det_files}
            findings.extend(
                f for f in clang_frontend.determinism_findings(evidence, by_path)
                if os.path.realpath(f.path) in det_paths)
        else:
            findings.extend(check_determinism(det_files, ctx))
    if "wire-conformance" in enabled:
        findings.extend(check_wire_conformance(all_src, ctx))
    if "engine-capacity" in enabled:
        if evidence is not None:
            findings.extend(clang_frontend.capacity_findings(
                evidence, by_path, ctx.inline_bytes))
        else:
            findings.extend(check_engine_capacity(all_src, ctx))
    if "thread-discipline" in enabled:
        findings.extend(check_thread_discipline(all_src, ctx))
    return findings


# ---------------------------------------------------------------------------
# fixture self-test
# ---------------------------------------------------------------------------

def _expectations(sf: SourceFile) -> Set[Tuple[str, int, str]]:
    out: Set[Tuple[str, int, str]] = set()
    for line_no in range(1, sf.num_lines() + 1):
        m = _EXPECT_RE.search(sf.line_text(line_no))
        if m is not None:
            for check in re.split(r"\s*,\s*", m.group(1)):
                out.add((sf.path, line_no, check))
    return out


def self_test(fixtures: str, enabled: Set[str], quiet: bool = False) -> int:
    """0 when every must-flag fixture line is flagged by exactly its check
    and must-pass fixtures are clean. The corpus pins the builtin frontend:
    the clang frontend is exercised on the real tree, where both must agree
    on zero findings."""
    flat = _load(glob.glob(os.path.join(fixtures, "*.cpp")))
    expected: Set[Tuple[str, int, str]] = set()
    for sf in flat:
        expected |= _expectations(sf)

    ctx = Context()
    build_context(flat, ctx)
    found: List[Finding] = []
    for sf in flat:
        found.extend(sf.bad_suppressions)
    if "determinism" in enabled:
        found.extend(check_determinism(flat, ctx))
    if "engine-capacity" in enabled:
        found.extend(check_engine_capacity(flat, ctx))
    if "thread-discipline" in enabled:
        found.extend(check_thread_discipline(flat, ctx))

    for wire_dir in sorted(glob.glob(os.path.join(fixtures, "wire_*"))):
        hdr_path = os.path.join(wire_dir, "wire.hpp")
        test_path = os.path.join(wire_dir, "wire_test.cpp")
        if not os.path.isdir(wire_dir) or not os.path.exists(hdr_path):
            continue
        wctx = Context()
        wctx.wire_header = SourceFile(hdr_path)
        wctx.wire_test = SourceFile(test_path) if os.path.exists(test_path) else None
        expected |= _expectations(wctx.wire_header)
        if wctx.wire_test is not None:
            expected |= _expectations(wctx.wire_test)
        if "wire-conformance" in enabled:
            found.extend(check_wire_conformance([], wctx))

    got = {(f.path, f.line, f.check) for f in found}
    missing = expected - got
    surplus = got - expected
    if not quiet:
        for f in sorted(found, key=lambda f: (f.path, f.line)):
            mark = "ok   " if (f.path, f.line, f.check) in expected else "EXTRA"
            print(f"  {mark} {f.format()}")
    ok = not missing and not surplus
    for path, line, check in sorted(missing):
        print(f"MISSING expected finding {path}:{line} [{check}]")
    for path, line, check in sorted(surplus):
        print(f"SURPLUS unexpected finding {path}:{line} [{check}]")
    print(f"self-test: {len(expected)} expected, {len(got)} found, "
          f"{len(missing)} missing, {len(surplus)} surplus -> "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def assert_non_vacuous(fixtures: str) -> int:
    """Every check must have at least one fixture only *it* catches:
    disabling the check must break the self-test."""
    rc = self_test(fixtures, set(CHECK_NAMES), quiet=True)
    if rc != 0:
        print("non-vacuous: baseline self-test failed")
        return 1
    failures = 0
    for check in CHECK_NAMES:
        enabled = set(CHECK_NAMES) - {check}
        rc = self_test(fixtures, enabled, quiet=True)
        verdict = "bites (self-test fails without it)" if rc != 0 else \
            "VACUOUS — no fixture depends on it"
        print(f"  {check}: {verdict}")
        if rc == 0:
            failures += 1
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--repo", default=os.path.join(os.path.dirname(
        os.path.abspath(__file__)), "..", ".."))
    ap.add_argument("--build-dir", default=None,
                    help="build dir with compile_commands.json (clang frontend)")
    ap.add_argument("--frontend", choices=("auto", "builtin", "clang"),
                    default="auto")
    ap.add_argument("--disable", action="append", default=[],
                    metavar="CHECK", help="disable one check (repeatable)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture corpus instead of the tree")
    ap.add_argument("--assert-non-vacuous", action="store_true",
                    help="verify each check has a fixture only it catches")
    ap.add_argument("--fixtures", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "fixtures"))
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args()

    if args.list_checks:
        for name in ALL_CHECKS:
            print(name)
        return 0
    for name in args.disable:
        if name not in CHECK_NAMES:
            ap.error(f"unknown check '{name}' (see --list-checks)")
    enabled = set(CHECK_NAMES) - set(args.disable)

    if args.assert_non_vacuous:
        return assert_non_vacuous(args.fixtures)
    if args.self_test:
        return self_test(args.fixtures, enabled)

    repo = os.path.abspath(args.repo)
    build_dir = args.build_dir
    if build_dir is None and os.path.exists(
            os.path.join(repo, "build", "compile_commands.json")):
        build_dir = os.path.join(repo, "build")
    frontend = "builtin" if args.frontend == "builtin" else args.frontend
    findings = lint_tree(repo, build_dir, frontend, enabled)
    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f.format())
    n = len(findings)
    print(f"nmx-lint: {n} finding{'s' if n != 1 else ''} "
          f"({', '.join(sorted(enabled))})")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
