// Mini-NAS kernel tests: every kernel runs on every stack (class S, full
// iterations, validation stamps on), scaling sanity, square-count
// enforcement, and extrapolation consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "mpi/cluster.hpp"
#include "nas/grid.hpp"
#include "nas/nas.hpp"

namespace nmx::nas {
namespace {

mpi::ClusterConfig testbed(mpi::StackKind stack, int procs, bool pioman = false) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 10;
  cfg.procs = procs;
  cfg.cyclic_mapping = true;
  cfg.stack = stack;
  cfg.pioman = pioman;
  return cfg;
}

struct KernelCase {
  std::string kernel;
  mpi::StackKind stack;
  int procs;
};

class KernelRuns : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelRuns, ClassSCompletesWithValidation) {
  const auto& p = GetParam();
  mpi::Cluster cluster(testbed(p.stack, p.procs));
  NasConfig cfg;
  cfg.cls = NasClass::S;
  cfg.validate = true;
  const NasResult r = run_nas(cluster, p.kernel, cfg);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_EQ(r.procs, p.procs);
}

std::vector<KernelCase> kernel_cases() {
  std::vector<KernelCase> cases;
  for (const auto& k : all_kernels()) {
    const bool square = (k == "BT" || k == "SP");
    for (int procs : {4, 8, 9, 16, 25, 36}) {
      const int root = static_cast<int>(std::lround(std::sqrt(procs)));
      if (square && root * root != procs) continue;
      if (!square && (procs == 9 || procs == 25)) continue;
      for (auto stack : {mpi::StackKind::Mpich2Nmad, mpi::StackKind::Mvapich2,
                         mpi::StackKind::OpenMpiBtlIb}) {
        cases.push_back({k, stack, procs});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelRuns, ::testing::ValuesIn(kernel_cases()),
                         [](const auto& info) {
                           std::string s = mpi::to_string(info.param.stack);
                           std::erase(s, '-');
                           return info.param.kernel + "_" + s + "_p" +
                                  std::to_string(info.param.procs);
                         });

TEST(KernelRuns, PiomanVariantCompletesIncludingPaperDeadlockCases) {
  // The paper could not run MG, LU or 64 processes with PIOMan (§4.2);
  // our implementation must.
  for (const char* k : {"MG", "LU"}) {
    mpi::Cluster cluster(testbed(mpi::StackKind::Mpich2Nmad, 8, /*pioman=*/true));
    NasConfig cfg;
    cfg.cls = NasClass::S;
    EXPECT_GT(run_nas(cluster, k, cfg).seconds, 0.0) << k;
  }
  mpi::Cluster cluster64(testbed(mpi::StackKind::Mpich2Nmad, 64, /*pioman=*/true));
  NasConfig cfg;
  cfg.cls = NasClass::S;
  EXPECT_GT(run_nas(cluster64, "CG", cfg).seconds, 0.0);
}

TEST(KernelScaling, MoreProcessesRunFaster) {
  for (const auto& k : all_kernels()) {
    const bool square = (k == "BT" || k == "SP");
    const int p_small = square ? 4 : 4;
    const int p_large = square ? 16 : 16;
    NasConfig cfg;
    cfg.cls = NasClass::S;
    mpi::Cluster small(testbed(mpi::StackKind::Mpich2Nmad, p_small));
    mpi::Cluster large(testbed(mpi::StackKind::Mpich2Nmad, p_large));
    const double t_small = run_nas(small, k, cfg).seconds;
    const double t_large = run_nas(large, k, cfg).seconds;
    EXPECT_LT(t_large, t_small) << k << " does not scale";
  }
}

TEST(KernelScaling, ClassesOrderedByWork) {
  NasConfig s_cfg, a_cfg;
  s_cfg.cls = NasClass::S;
  a_cfg.cls = NasClass::A;
  a_cfg.iter_fraction = 0.2;
  mpi::Cluster c1(testbed(mpi::StackKind::Mpich2Nmad, 8));
  mpi::Cluster c2(testbed(mpi::StackKind::Mpich2Nmad, 8));
  const double t_s = run_nas(c1, "CG", s_cfg).seconds;
  const double t_a = run_nas(c2, "CG", a_cfg).seconds;
  EXPECT_GT(t_a, t_s * 10);
}

TEST(KernelScaling, ExtrapolationIsConsistent) {
  // Running a fraction of the iterations and extrapolating must land close
  // to the full run (the timed loop is steady-state).
  NasConfig full, frac;
  full.cls = NasClass::S;
  frac.cls = NasClass::S;
  frac.iter_fraction = 0.25;
  mpi::Cluster c1(testbed(mpi::StackKind::Mpich2Nmad, 8));
  mpi::Cluster c2(testbed(mpi::StackKind::Mpich2Nmad, 8));
  const double t_full = run_nas(c1, "FT", full).seconds;
  const double t_frac = run_nas(c2, "FT", frac).seconds;
  EXPECT_NEAR(t_frac, t_full, 0.15 * t_full);
}

TEST(KernelRuns, SquareKernelsRejectNonSquareCounts) {
  mpi::Cluster cluster(testbed(mpi::StackKind::Mpich2Nmad, 8));
  NasConfig cfg;
  cfg.cls = NasClass::S;
  EXPECT_THROW(run_nas(cluster, "BT", cfg), AssertionError);
}

TEST(MemBw, DilationKicksInAboveTwoLocalRanks) {
  sim::Engine eng;
  // Build Comms by hand would need a transport; instead exercise the
  // formula through a tiny cluster: 8 ranks on 2 nodes = 4 per node.
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 8;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  mpi::Cluster cluster(cfg);
  cluster.run([&](mpi::Comm& c) {
    EXPECT_EQ(c.local_ranks(), 4);
    EXPECT_DOUBLE_EQ(membw_dilation(c, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(membw_dilation(c, 1.0), 1.5);
  });
}

TEST(Grids, Grid2DFactorsAndNeighbors) {
  const Grid2D g = Grid2D::make(5, 12);  // 3x4 grid, rank 5 = (x=2, y=1)
  EXPECT_EQ(g.px, 3);
  EXPECT_EQ(g.py, 4);
  EXPECT_EQ(g.x, 2);
  EXPECT_EQ(g.y, 1);
  EXPECT_EQ(g.west(), 4);
  EXPECT_EQ(g.east(), -1);  // boundary
  EXPECT_EQ(g.north(), 2);
  EXPECT_EQ(g.south(), 8);
}

TEST(Grids, Grid3DCoversAllRanksUniquely) {
  for (int procs : {8, 12, 27, 32, 64}) {
    std::vector<int> seen(static_cast<std::size_t>(procs), 0);
    for (int r = 0; r < procs; ++r) {
      const Grid3D g = Grid3D::make(r, procs);
      EXPECT_EQ(g.dims[0] * g.dims[1] * g.dims[2], procs);
      seen[static_cast<std::size_t>(g.rank_of(g.coord))]++;
    }
    for (int r = 0; r < procs; ++r) EXPECT_EQ(seen[static_cast<std::size_t>(r)], 1) << procs;
  }
}

TEST(Grids, Grid3DNeighborsAreInverse) {
  const Grid3D g = Grid3D::make(13, 27);
  for (int d = 0; d < 3; ++d) {
    const int plus = g.neighbor(d, +1);
    if (plus >= 0) {
      const Grid3D n = Grid3D::make(plus, 27);
      EXPECT_EQ(n.neighbor(d, -1), 13);
    }
  }
}

}  // namespace
}  // namespace nmx::nas
