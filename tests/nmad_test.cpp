// NewMadeleine core tests: sampling/splitting, strategies (aggregation,
// rail selection), eager/rendezvous protocols, tag matching order, probes,
// gated progress and the multirail data path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>

#include "net/router.hpp"
#include "nmad/core.hpp"

namespace nmx::nmad {
namespace {

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

TEST(Sampling, FitRecoversLinkParameters) {
  sim::Engine eng;
  net::Topology topo = net::Topology::blocked(2, 2, {net::ib_profile(), net::mx_profile()});
  net::Fabric fabric(eng, topo);
  Sampling s(fabric, {0, 1});
  ASSERT_EQ(s.num_rails(), 2u);
  // alpha ~ wire latency + per-message; beta ~ NIC bandwidth.
  EXPECT_NEAR(s.rails()[0].alpha, calib::kIbWireLatency + calib::kIbPerMessage, 0.1e-6);
  EXPECT_NEAR(s.rails()[0].beta, calib::kIbBandwidth, 1e6);
  EXPECT_NEAR(s.rails()[1].beta, calib::kMxBandwidth, 1e6);
  EXPECT_EQ(s.fastest(), 0);  // IB has the lower latency
}

TEST(Sampling, SmallMessagesGoEntirelyToFastestRail) {
  Sampling s({RailPerf{0, 1e-6, 1e9}, RailPerf{1, 2e-6, 1e9}});
  auto shares = s.split(4096, 16384);
  EXPECT_EQ(shares[0], 4096u);
  EXPECT_EQ(shares[1], 0u);
}

TEST(Sampling, EqualRailsSplitEvenly) {
  Sampling s({RailPerf{0, 1e-6, 1e9}, RailPerf{1, 1e-6, 1e9}});
  auto shares = s.split(1 << 20, 16384);
  EXPECT_EQ(shares[0] + shares[1], std::size_t{1} << 20);
  EXPECT_NEAR(static_cast<double>(shares[0]), static_cast<double>(shares[1]), 2.0);
}

TEST(Sampling, AsymmetricRailsSplitProportionallyToBandwidth) {
  Sampling s({RailPerf{0, 1e-6, 2e9}, RailPerf{1, 1e-6, 1e9}});
  auto shares = s.split(3 << 20, 16384);
  EXPECT_EQ(shares[0] + shares[1], std::size_t{3} << 20);
  // Equal finish time => shares proportional to beta (alphas equal).
  EXPECT_NEAR(static_cast<double>(shares[0]) / static_cast<double>(shares[1]), 2.0, 0.01);
}

TEST(Sampling, SlowRailDroppedWhenShareBelowMinChunk) {
  Sampling s({RailPerf{0, 1e-6, 2e9}, RailPerf{1, 1e-6, 10e6}});  // 200x slower
  auto shares = s.split(100000, 16384);
  EXPECT_EQ(shares[1], 0u);  // its share would be ~500 bytes: dropped
  EXPECT_EQ(shares[0], 100000u);
}

TEST(Sampling, SplitAccountsForAlphaDifferences) {
  // Same bandwidth, one rail much higher latency: it gets a smaller share.
  Sampling s({RailPerf{0, 1e-6, 1e9}, RailPerf{1, 200e-6, 1e9}});
  auto shares = s.split(1 << 20, 16384);
  EXPECT_EQ(shares[0] + shares[1], std::size_t{1} << 20);
  EXPECT_GT(shares[0], shares[1]);
}

TEST(Sampling, EvenSplitIsNaive) {
  Sampling s({RailPerf{0, 1e-6, 2e9}, RailPerf{1, 1e-6, 1e9}});
  auto shares = s.split_even(1000);
  EXPECT_EQ(shares[0], 500u);
  EXPECT_EQ(shares[1], 500u);
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

Entry eager_entry(int dst, Tag tag, std::uint32_t seq, std::size_t n) {
  Entry e;
  e.kind = Entry::Kind::Eager;
  e.dst_proc = dst;
  e.tag = tag;
  e.seq = seq;
  e.bytes.resize(n);
  return e;
}

TEST(Strategy, DefaultSendsOneEntryPerPacket) {
  Sampling s({RailPerf{0, 1e-6, 1e9}});
  auto strat = make_strategy(StrategyKind::Default, s, {});
  strat->enqueue(eager_entry(1, 7, 0, 100));
  strat->enqueue(eager_entry(1, 7, 1, 100));
  auto wm1 = strat->next(0, 0);
  ASSERT_TRUE(wm1.has_value());
  EXPECT_EQ(wm1->entries.size(), 1u);
  auto wm2 = strat->next(0, 0);
  ASSERT_TRUE(wm2.has_value());
  EXPECT_EQ(wm2->entries.size(), 1u);
  EXPECT_FALSE(strat->next(0, 0).has_value());
  EXPECT_FALSE(strat->pending());
}

TEST(Strategy, AggregPacksSmallEntriesToSameDestination) {
  Sampling s({RailPerf{0, 1e-6, 1e9}});
  StrategyOptions opts;
  opts.max_aggregate = 4096;
  auto strat = make_strategy(StrategyKind::Aggreg, s, opts);
  for (std::uint32_t i = 0; i < 5; ++i) strat->enqueue(eager_entry(1, 7, i, 500));
  auto wm = strat->next(0, 0);
  ASSERT_TRUE(wm.has_value());
  EXPECT_EQ(wm->entries.size(), 5u);  // 2500 bytes <= 4096 cap
  // sequence order preserved inside the packet
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(wm->entries[i].seq, i);
}

TEST(Strategy, AggregRespectsByteCap) {
  Sampling s({RailPerf{0, 1e-6, 1e9}});
  StrategyOptions opts;
  opts.max_aggregate = 1000;
  auto strat = make_strategy(StrategyKind::Aggreg, s, opts);
  for (std::uint32_t i = 0; i < 4; ++i) strat->enqueue(eager_entry(1, 7, i, 400));
  auto wm = strat->next(0, 0);
  ASSERT_TRUE(wm.has_value());
  EXPECT_EQ(wm->entries.size(), 2u);  // 800 <= 1000 < 1200
}

TEST(Strategy, AggregDoesNotMixDestinations) {
  Sampling s({RailPerf{0, 1e-6, 1e9}});
  auto strat = make_strategy(StrategyKind::Aggreg, s, {});
  strat->enqueue(eager_entry(1, 7, 0, 100));
  strat->enqueue(eager_entry(2, 7, 0, 100));
  auto wm1 = strat->next(0, 0);
  ASSERT_TRUE(wm1.has_value());
  EXPECT_EQ(wm1->entries.size(), 1u);
  auto wm2 = strat->next(0, 0);
  ASSERT_TRUE(wm2.has_value());
  EXPECT_NE(wm1->dst_proc, wm2->dst_proc);  // round-robin across destinations
}

TEST(Strategy, RdvChunksTravelAlone) {
  Sampling s({RailPerf{0, 1e-6, 1e9}});
  auto strat = make_strategy(StrategyKind::Aggreg, s, {});
  strat->enqueue(eager_entry(1, 7, 0, 100));
  Entry chunk;
  chunk.kind = Entry::Kind::RdvChunk;
  chunk.dst_proc = 1;
  chunk.rail = 0;
  chunk.bytes.resize(100000);
  strat->enqueue(std::move(chunk));
  auto wm1 = strat->next(0, 0);
  ASSERT_TRUE(wm1.has_value());
  EXPECT_EQ(wm1->entries.size(), 1u);
  EXPECT_EQ(wm1->entries[0].kind, Entry::Kind::Eager);
  auto wm2 = strat->next(0, 0);
  ASSERT_TRUE(wm2.has_value());
  EXPECT_EQ(wm2->entries.size(), 1u);
  EXPECT_EQ(wm2->entries[0].kind, Entry::Kind::RdvChunk);
}

TEST(Strategy, CostModelSteersSmallEntriesAwayFromBusyRail) {
  Sampling s({RailPerf{0, 1e-6, 1e9}, RailPerf{1, 2e-6, 1e9}});
  auto strat = make_strategy(StrategyKind::CostModel, s, {});
  // Idle fabric: the cost model agrees with the fastest-rail rule.
  strat->enqueue(eager_entry(1, 7, 0, 100));
  EXPECT_TRUE(strat->next(0, 0).has_value());
  EXPECT_EQ(strat->steals(0), 0u);
  EXPECT_EQ(strat->steals(1), 0u);
  // Rail 0 booked for a millisecond: the entry's predicted completion is
  // earlier on rail 1, so it is stolen from the fastest rail.
  strat->set_load_probe([] {
    RailLoad l;
    l.now = 0;
    l.busy_until = {1e-3, 0.0};
    return l;
  });
  strat->enqueue(eager_entry(1, 7, 1, 100));
  EXPECT_FALSE(strat->next(0, 0).has_value());
  auto wm = strat->next(1, 0);
  ASSERT_TRUE(wm.has_value());
  EXPECT_EQ(wm->entries[0].seq, 1u);
  EXPECT_EQ(strat->steals(1), 1u);
}

TEST(Strategy, CostModelQueuedBacklogCountsAsLoad) {
  // No probe at all: the rail's own queued bytes must still steer traffic.
  Sampling s({RailPerf{0, 1e-6, 1e9}, RailPerf{1, 2e-6, 1e9}});
  auto strat = make_strategy(StrategyKind::CostModel, s, {});
  // Fill rail 0 with ~1 ms of queued bytes without draining it.
  strat->enqueue(eager_entry(1, 7, 0, 1 << 20));
  EXPECT_GT(strat->backlog_bytes(0), std::size_t{1} << 20);
  strat->enqueue(eager_entry(1, 7, 1, 100));
  EXPECT_GT(strat->backlog_bytes(1), 0u);  // steered to the empty rail
  EXPECT_EQ(strat->steals(1), 1u);
}

TEST(Strategy, CostModelCarvesRendezvousIntoQuantumChunks) {
  Sampling s({RailPerf{0, 1e-6, 1e9}, RailPerf{1, 1e-6, 1e9}});
  StrategyOptions opts;
  opts.min_split_chunk = 4_KiB;
  opts.rdv_quantum = 64_KiB;
  auto strat = make_strategy(StrategyKind::CostModel, s, opts);
  ASSERT_TRUE(strat->plans_rdv_chunks());

  const std::size_t len = 300_KiB;
  Entry job;
  job.kind = Entry::Kind::RdvChunk;
  job.dst_proc = 1;
  job.rdv_id = 1;
  job.rail = -1;  // unplanned: the strategy carves it
  job.bytes.resize(len);
  strat->enqueue(std::move(job));
  EXPECT_EQ(strat->rdv_backlog_bytes(), len);

  std::vector<std::size_t> per_rail(2, 0);
  std::vector<std::pair<std::size_t, std::size_t>> cover;
  int rail = 0;
  while (strat->pending()) {
    auto wm = strat->next(rail, 0);
    rail = 1 - rail;  // alternate like two idle drivers would
    if (!wm) continue;
    ASSERT_EQ(wm->entries.size(), 1u);
    const Entry& e = wm->entries[0];
    ASSERT_EQ(e.kind, Entry::Kind::RdvChunk);
    EXPECT_LE(e.bytes.size(), opts.rdv_quantum);  // quantum respected
    EXPECT_GT(e.bytes.size(), 0u);
    per_rail[static_cast<std::size_t>(e.rail)] += e.bytes.size();
    cover.emplace_back(e.offset, e.bytes.size());
  }
  EXPECT_EQ(strat->rdv_backlog_bytes(), 0u);
  EXPECT_GT(per_rail[0], 0u);  // equal rails: both carry data
  EXPECT_GT(per_rail[1], 0u);
  std::sort(cover.begin(), cover.end());
  std::size_t cursor = 0;
  for (const auto& [off, n] : cover) {
    EXPECT_EQ(off, cursor);  // contiguous, no gap, no overlap
    cursor = off + n;
  }
  EXPECT_EQ(cursor, len);
}

// ---------------------------------------------------------------------------
// Core: two processes on two nodes exchanging through the fabric.
// ---------------------------------------------------------------------------

struct CoreFixture : ::testing::Test {
  sim::Engine eng;
  net::Topology topo = net::Topology::blocked(2, 2, {net::ib_profile(), net::mx_profile()});
  net::Fabric fabric{eng, topo};
  net::ProcRouter router0{fabric, 0};
  net::ProcRouter router1{fabric, 1};
  Core::ExtendedConfig cfg;

  std::unique_ptr<Core> a;  // proc 0
  std::unique_ptr<Core> b;  // proc 1

  void make_cores(StrategyKind strat = StrategyKind::Aggreg, std::vector<int> rails = {0}) {
    cfg.strategy = strat;
    cfg.rails = std::move(rails);
    a = std::make_unique<Core>(eng, fabric, router0, 0, cfg);
    b = std::make_unique<Core>(eng, fabric, router1, 1, cfg);
    // Always-in-progress processes (the MPI layer provides the bracketing).
    a->enter_progress();
    b->enter_progress();
  }

  std::vector<std::byte> pattern(std::size_t n, int seed) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::byte>((i * 7 + static_cast<std::size_t>(seed)) & 0xff);
    }
    return v;
  }
};

TEST_F(CoreFixture, EagerSendRecvCarriesBytes) {
  make_cores();
  auto msg = pattern(1024, 1);
  std::vector<std::byte> dst(1024);
  Request* sr = a->isend(1, 42, msg.data(), msg.size());
  Request* rr = b->irecv(0, 42, dst.data(), dst.size());
  eng.run();
  EXPECT_TRUE(sr->completed);
  EXPECT_TRUE(rr->completed);
  EXPECT_EQ(rr->received, msg.size());
  EXPECT_EQ(dst, msg);
  a->release(sr);
  b->release(rr);
  EXPECT_EQ(a->outstanding_requests(), 0u);
}

TEST_F(CoreFixture, UnexpectedEagerMatchesLaterIrecv) {
  make_cores();
  auto msg = pattern(100, 2);
  a->isend(1, 5, msg.data(), msg.size());
  eng.run();
  EXPECT_EQ(b->unexpected_count(), 1u);
  std::vector<std::byte> dst(100);
  Request* rr = b->irecv(0, 5, dst.data(), dst.size());
  EXPECT_TRUE(rr->completed);  // consumed synchronously from the buffers
  EXPECT_EQ(dst, msg);
  EXPECT_EQ(b->unexpected_count(), 0u);
}

TEST_F(CoreFixture, RendezvousTransfersLargeMessage) {
  make_cores();
  const std::size_t big = 1 << 20;
  auto msg = pattern(big, 3);
  std::vector<std::byte> dst(big);
  Request* rr = b->irecv(0, 9, dst.data(), dst.size());
  Request* sr = a->isend(1, 9, msg.data(), msg.size());
  eng.run();
  EXPECT_TRUE(sr->completed);
  EXPECT_TRUE(rr->completed);
  EXPECT_EQ(a->rdv_started(), 1u);
  EXPECT_EQ(dst, msg);
}

TEST_F(CoreFixture, MultirailSplitsRendezvousAcrossBothRails) {
  make_cores(StrategyKind::SplitBalance, {0, 1});
  const std::size_t big = 8 << 20;
  auto msg = pattern(big, 4);
  std::vector<std::byte> dst(big);
  b->irecv(0, 9, dst.data(), dst.size());
  a->isend(1, 9, msg.data(), msg.size());
  const std::size_t before = fabric.packets_sent();
  eng.run();
  EXPECT_EQ(dst, msg);
  // RTS + CTS + two data chunks (one per rail) + the receiver's RdvFin
  // completion ack = 5 packets.
  EXPECT_EQ(fabric.packets_sent() - before, 5u);
}

TEST_F(CoreFixture, CostModelRendezvousDeliversInQuantumChunks) {
  make_cores(StrategyKind::CostModel, {0, 1});
  const std::size_t big = 8_MiB;  // > 4 chunks at the default 2 MiB quantum
  auto msg = pattern(big, 13);
  std::vector<std::byte> dst(big);
  Request* rr = b->irecv(0, 9, dst.data(), dst.size());
  Request* sr = a->isend(1, 9, msg.data(), msg.size());
  const std::size_t before = fabric.packets_sent();
  eng.run();
  EXPECT_TRUE(sr->completed);
  EXPECT_TRUE(rr->completed);
  EXPECT_EQ(dst, msg);
  // RTS + CTS + at least ceil(8 MiB / 2 MiB) data chunks.
  EXPECT_GE(fabric.packets_sent() - before, 6u);
}

TEST(CostModelCore, MatchesSplitBalanceOnIdleFabric) {
  // Same transfer, both strategies, each on a fresh fabric: on an idle
  // fabric the cost model's split degenerates to the sampled one, so
  // completion times must be close.
  auto timed = [](StrategyKind k) {
    sim::Engine eng;
    net::Topology topo = net::Topology::blocked(2, 2, {net::ib_profile(), net::mx_profile()});
    net::Fabric fabric(eng, topo);
    net::ProcRouter r0(fabric, 0), r1(fabric, 1);
    Core::ExtendedConfig cfg;
    cfg.strategy = k;
    cfg.rails = {0, 1};
    Core a(eng, fabric, r0, 0, cfg);
    Core b(eng, fabric, r1, 1, cfg);
    a.enter_progress();
    b.enter_progress();
    const std::size_t big = 4_MiB;
    std::vector<std::byte> msg(big, std::byte{0x5a});
    std::vector<std::byte> dst(big);
    b.irecv(0, 9, dst.data(), dst.size());
    a.isend(1, 9, msg.data(), msg.size());
    eng.run();
    EXPECT_EQ(dst, msg);
    return eng.now();
  };
  const Time split = timed(StrategyKind::SplitBalance);
  const Time cost = timed(StrategyKind::CostModel);
  EXPECT_LT(cost, split * 1.05);  // no idle-fabric regression
}

TEST_F(CoreFixture, PerTagFifoMatchingOrder) {
  make_cores();
  auto m1 = pattern(64, 5);
  auto m2 = pattern(64, 6);
  std::vector<std::byte> d1(64), d2(64);
  Request* r1 = b->irecv(0, 3, d1.data(), 64);
  Request* r2 = b->irecv(0, 3, d2.data(), 64);
  a->isend(1, 3, m1.data(), 64);
  a->isend(1, 3, m2.data(), 64);
  eng.run();
  EXPECT_TRUE(r1->completed && r2->completed);
  EXPECT_EQ(d1, m1);  // first posted gets first sent
  EXPECT_EQ(d2, m2);
}

TEST_F(CoreFixture, DifferentTagsMatchIndependently) {
  make_cores();
  auto m1 = pattern(64, 7);
  auto m2 = pattern(64, 8);
  std::vector<std::byte> d1(64), d2(64);
  Request* r2 = b->irecv(0, 20, d2.data(), 64);
  Request* r1 = b->irecv(0, 10, d1.data(), 64);
  a->isend(1, 10, m1.data(), 64);
  a->isend(1, 20, m2.data(), 64);
  eng.run();
  EXPECT_TRUE(r1->completed && r2->completed);
  EXPECT_EQ(d1, m1);
  EXPECT_EQ(d2, m2);
}

TEST_F(CoreFixture, ProbeSeesOldestUnexpected) {
  make_cores();
  auto m = pattern(256, 9);
  a->isend(1, 77, m.data(), m.size());
  eng.run();
  auto p = b->probe(std::nullopt, TagSelector::any());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->src, 0);
  EXPECT_EQ(p->tag, 77u);
  EXPECT_EQ(p->len, 256u);
  // Probe is non-destructive.
  EXPECT_TRUE(b->probe(std::nullopt, TagSelector::exact(77)).has_value());
  EXPECT_FALSE(b->probe(std::nullopt, TagSelector::exact(78)).has_value());
  EXPECT_FALSE(b->probe(5, TagSelector::any()).has_value());
}

TEST_F(CoreFixture, OnUnexpectedHookFires) {
  make_cores();
  int hooks = 0;
  ProbeInfo seen;
  b->set_on_unexpected([&](const ProbeInfo& info) {
    ++hooks;
    seen = info;
  });
  auto m = pattern(64, 10);
  a->isend(1, 55, m.data(), m.size());
  eng.run();
  EXPECT_EQ(hooks, 1);
  EXPECT_EQ(seen.src, 0);
  EXPECT_EQ(seen.tag, 55u);
}

TEST_F(CoreFixture, GatedInjectionWaitsForProgress) {
  make_cores();
  a->leave_progress();  // sender's application is "computing"
  auto m = pattern(64, 11);
  std::vector<std::byte> d(64);
  Request* rr = b->irecv(0, 1, d.data(), 64);
  Request* sr = a->isend(1, 1, m.data(), 64);
  eng.run();  // nothing can move: injection is gated
  EXPECT_FALSE(sr->completed);
  EXPECT_FALSE(rr->completed);
  EXPECT_TRUE(a->has_gated_work());
  a->enter_progress();  // "the application entered an MPI call"
  eng.run();
  EXPECT_TRUE(sr->completed);
  EXPECT_TRUE(rr->completed);
  EXPECT_EQ(d, m);
}

TEST_F(CoreFixture, AsyncNotifierFiresWhenGatedWorkAppears) {
  make_cores();
  a->leave_progress();
  int notified = 0;
  a->set_async_notifier([&] { ++notified; });
  auto m = pattern(64, 12);
  a->isend(1, 1, m.data(), 64);
  EXPECT_GT(notified, 0);
}

TEST_F(CoreFixture, AggregationReducesWirePackets) {
  make_cores(StrategyKind::Aggreg);
  // Queue several small sends while the sender is gated, then open the gate:
  // the strategy packs them into one wire packet.
  a->leave_progress();
  std::vector<std::vector<std::byte>> msgs;
  std::vector<std::vector<std::byte>> dsts;
  msgs.reserve(6);
  dsts.reserve(6);  // pointers handed to irecv must stay stable
  for (int i = 0; i < 6; ++i) {
    msgs.push_back(pattern(200, i));
    dsts.emplace_back(200);
    b->irecv(0, static_cast<Tag>(i), dsts.back().data(), 200);
  }
  for (int i = 0; i < 6; ++i) a->isend(1, static_cast<Tag>(i), msgs[static_cast<std::size_t>(i)].data(), 200);
  const std::size_t before = fabric.packets_sent();
  a->enter_progress();
  eng.run();
  EXPECT_EQ(fabric.packets_sent() - before, 1u);  // 6 sends, one packet
  for (int i = 0; i < 6; ++i) EXPECT_EQ(dsts[static_cast<std::size_t>(i)], msgs[static_cast<std::size_t>(i)]);
}

TEST_F(CoreFixture, ZeroByteMessageCompletes) {
  make_cores();
  Request* rr = b->irecv(0, 2, nullptr, 0);
  Request* sr = a->isend(1, 2, nullptr, 0);
  eng.run();
  EXPECT_TRUE(sr->completed && rr->completed);
  EXPECT_EQ(rr->received, 0u);
}

TEST_F(CoreFixture, LegacyCtsPathStillCompletesRendezvous) {
  // advertise_rdv_load=false: the grant is the historical 16-byte CTS and the
  // sender falls back to the one-ended split. Data must still flow.
  cfg.advertise_rdv_load = false;
  make_cores(StrategyKind::CostModel, {0, 1});
  const std::size_t big = 1_MiB;
  auto msg = pattern(big, 21);
  std::vector<std::byte> dst(big);
  Request* rr = b->irecv(0, 9, dst.data(), dst.size());
  Request* sr = a->isend(1, 9, msg.data(), msg.size());
  eng.run();
  EXPECT_TRUE(sr->completed && rr->completed);
  EXPECT_EQ(dst, msg);
}

// ---------------------------------------------------------------------------
// Rendezvous hardening: the CTS grant must come from the RTS destination and
// must arrive at most once. Pre-fix, handle_cts matched on rdv_id alone, so a
// grant echoed by the wrong process (or replayed) started the payload toward
// whoever asked — data in the wrong buffer, double-queued chunks.
// ---------------------------------------------------------------------------

struct RdvHardeningFixture : ::testing::Test {
  sim::Engine eng;
  // Three procs on three nodes so a third party can forge grants.
  net::Topology topo = net::Topology::blocked(3, 3, {net::ib_profile()});
  net::Fabric fabric{eng, topo};
  net::ProcRouter router0{fabric, 0};
  net::ProcRouter router1{fabric, 1};
  net::ProcRouter router2{fabric, 2};
  Core::ExtendedConfig cfg;
  std::unique_ptr<Core> a;  // proc 0: rendezvous sender under attack
  std::unique_ptr<Core> b;  // proc 1: the legitimate destination
  std::unique_ptr<Core> c;  // proc 2: bystander

  void make_cores() {
    cfg.rails = {0};
    a = std::make_unique<Core>(eng, fabric, router0, 0, cfg);
    b = std::make_unique<Core>(eng, fabric, router1, 1, cfg);
    c = std::make_unique<Core>(eng, fabric, router2, 2, cfg);
    a->enter_progress();
    b->enter_progress();
    c->enter_progress();
  }

  /// Inject a forged CTS claiming to grant rendezvous `rdv_id`, sent by
  /// `src_proc` to proc 0 — bypassing any Core so the wire contents are
  /// entirely under the test's control.
  void forge_cts(int src_proc, std::uint64_t rdv_id) {
    WireMsg wm;
    wm.src_proc = src_proc;
    wm.dst_proc = 0;
    Entry cts;
    cts.kind = Entry::Kind::Cts;
    cts.dst_proc = 0;
    cts.rdv_id = rdv_id;
    wm.entries.push_back(std::move(cts));
    net::WirePacket pkt;
    pkt.src_node = topo.node_of(src_proc);
    pkt.dst_node = topo.node_of(0);
    pkt.dst_proc = 0;
    pkt.rail = 0;
    pkt.bytes = wm.wire_bytes();
    pkt.payload = std::move(wm);
    fabric.transmit(std::move(pkt));
  }

  std::string run_expecting_assert() {
    try {
      eng.run();
    } catch (const AssertionError& err) {
      return err.message;
    }
    return {};
  }
};

TEST_F(RdvHardeningFixture, CrossWiredCtsFailsLoudly) {
  make_cores();
  // RTS toward proc 1; no recv is posted there, so no legitimate grant exists.
  std::vector<std::byte> msg(128_KiB);
  Request* sr = a->isend(1, 9, msg.data(), msg.size());
  eng.run();
  ASSERT_FALSE(sr->completed);
  // Proc 2 echoes the (guessable, sender-scoped) rendezvous id.
  forge_cts(/*src_proc=*/2, sr->rdv_id);
  const std::string what = run_expecting_assert();
  EXPECT_NE(what.find("cross-wired"), std::string::npos) << what;
}

TEST_F(RdvHardeningFixture, LateDuplicateCtsIsIgnoredAfterCompletion) {
  // A grant that names a *retired* rendezvous — a wire duplicate or a
  // re-grant that crossed the final chunks — must be dropped, not asserted
  // on and not allowed to re-queue the payload. (A duplicate arriving while
  // the data phase runs is exercised end-to-end by the chaos tier.)
  make_cores();
  std::vector<std::byte> msg(128_KiB);
  std::vector<std::byte> dst(128_KiB);
  Request* rr = b->irecv(0, 9, dst.data(), dst.size());
  Request* sr = a->isend(1, 9, msg.data(), msg.size());
  eng.run();
  ASSERT_TRUE(sr->completed && rr->completed);
  const std::size_t sent_before = fabric.packets_sent();
  // Replay the grant twice; both are late duplicates of a known, retired id.
  forge_cts(/*src_proc=*/1, sr->rdv_id);
  forge_cts(/*src_proc=*/1, sr->rdv_id);
  eng.run();
  // No assert, and no payload was re-queued: only the two forged packets
  // themselves crossed the wire.
  EXPECT_EQ(fabric.packets_sent(), sent_before + 2);
  EXPECT_EQ(dst, msg);
}

TEST_F(RdvHardeningFixture, CtsForNeverIssuedRendezvousFailsLoudly) {
  // Late duplicates are tolerated, but an id above the allocation watermark
  // was never issued by this sender — that is a forged or corrupted grant
  // and stays a hard failure.
  make_cores();
  std::vector<std::byte> msg(128_KiB);
  Request* sr = a->isend(1, 9, msg.data(), msg.size());
  eng.run();
  ASSERT_FALSE(sr->completed);
  forge_cts(/*src_proc=*/1, sr->rdv_id + 1000);
  const std::string what = run_expecting_assert();
  EXPECT_NE(what.find("unknown rendezvous"), std::string::npos) << what;
}

}  // namespace
}  // namespace nmx::nmad
