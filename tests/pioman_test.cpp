// PIOMan tests: ltask lifecycle, reaction scheduling, notification
// coalescing, and work-driven rescheduling.
#include <gtest/gtest.h>

#include "pioman/pioman.hpp"

namespace nmx::pioman {
namespace {

TEST(Ltask, BodyRunsAndStaysPersistent) {
  int runs = 0;
  Ltask t("poll", [&] {
    ++runs;
    return false;
  });
  EXPECT_EQ(t.state(), LtaskState::Created);
  EXPECT_FALSE(t.step());
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(t.state(), LtaskState::Scheduled);  // persistent, not Done
  EXPECT_FALSE(t.step());
  EXPECT_EQ(runs, 2);
}

TEST(Ltask, CompleteRetiresTask) {
  Ltask t("once", [] { return false; });
  t.complete();
  EXPECT_EQ(t.state(), LtaskState::Done);
}

TEST(Manager, NotifySchedulesServiceAfterReactionPeriod) {
  sim::Engine eng;
  Manager m(eng, ManagerConfig{1e-6});
  Time serviced_at = -1;
  m.submit("probe", [&] {
    serviced_at = eng.now();
    return false;
  });
  eng.schedule(5e-6, [&] { m.notify(); });
  eng.run();
  EXPECT_DOUBLE_EQ(serviced_at, 6e-6);
  EXPECT_EQ(m.service_passes(), 1u);
}

TEST(Manager, NotifiesCoalesceWhilePending) {
  sim::Engine eng;
  Manager m(eng, ManagerConfig{10e-6});
  int runs = 0;
  m.submit("probe", [&] {
    ++runs;
    return false;
  });
  eng.schedule(0.0, [&] {
    m.notify();
    m.notify();
    m.notify();
  });
  eng.schedule(1e-6, [&] { m.notify(); });  // still inside the pending window
  eng.run();
  EXPECT_EQ(runs, 1);
}

TEST(Manager, ReschedulesWhileTaskReportsWork) {
  sim::Engine eng;
  Manager m(eng, ManagerConfig{1e-6});
  int remaining = 3;
  m.submit("drain", [&] { return --remaining > 0; });
  eng.schedule(0.0, [&] { m.notify(); });
  eng.run();
  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(m.service_passes(), 3u);
}

TEST(Manager, RetiredTasksAreSkipped) {
  sim::Engine eng;
  Manager m(eng);
  int a_runs = 0, b_runs = 0;
  Ltask& a = m.submit("a", [&] {
    ++a_runs;
    return false;
  });
  m.submit("b", [&] {
    ++b_runs;
    return false;
  });
  a.complete();
  eng.schedule(0.0, [&] { m.notify(); });
  eng.run();
  EXPECT_EQ(a_runs, 0);
  EXPECT_EQ(b_runs, 1);
}

TEST(Manager, NewNotifyAfterServiceRearms) {
  sim::Engine eng;
  Manager m(eng, ManagerConfig{1e-6});
  std::vector<Time> at;
  m.submit("probe", [&] {
    at.push_back(eng.now());
    return false;
  });
  eng.schedule(0.0, [&] { m.notify(); });
  eng.schedule(10e-6, [&] { m.notify(); });
  eng.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_DOUBLE_EQ(at[0], 1e-6);
  EXPECT_DOUBLE_EQ(at[1], 11e-6);
}

}  // namespace
}  // namespace nmx::pioman
