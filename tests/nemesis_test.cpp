// Nemesis channel tests: the lock-free MPSC queue (including a real
// multi-threaded stress run — the queue is genuine concurrent code), cell
// fragmentation, ordering, flow control and the PIOMan mailbox counter.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "nemesis/lfqueue.hpp"
#include "nemesis/shm.hpp"

namespace nmx::nemesis {
namespace {

TEST(LockFreeQueue, FifoSingleThread) {
  CellPool pool(8);
  LockFreeQueue q;
  EXPECT_TRUE(q.empty());
  q.enqueue(pool, 3);
  q.enqueue(pool, 1);
  q.enqueue(pool, 5);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.dequeue(pool), 3);
  EXPECT_EQ(q.dequeue(pool), 1);
  EXPECT_EQ(q.dequeue(pool), 5);
  EXPECT_EQ(q.dequeue(pool), kNilCell);
  EXPECT_TRUE(q.empty());
}

TEST(LockFreeQueue, DrainAndRefill) {
  CellPool pool(4);
  LockFreeQueue q;
  for (int round = 0; round < 100; ++round) {
    q.enqueue(pool, round % 4);
    EXPECT_EQ(q.dequeue(pool), round % 4);
    EXPECT_EQ(q.dequeue(pool), kNilCell);
  }
}

TEST(LockFreeQueue, MultiProducerStress) {
  // 4 real producer threads, one consumer: every cell index must come out
  // exactly as many times as it went in, with per-producer FIFO order.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  CellPool pool(kProducers * kPerProducer);
  LockFreeQueue q;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.enqueue(pool, p * kPerProducer + i);
      }
    });
  }

  std::vector<int> next_expected(kProducers, 0);
  int got = 0;
  while (got < kProducers * kPerProducer) {
    const CellIndex c = q.dequeue(pool);
    if (c == kNilCell) continue;
    const int p = c / kPerProducer;
    const int i = c % kPerProducer;
    ASSERT_EQ(i, next_expected[static_cast<std::size_t>(p)]) << "per-producer FIFO violated";
    ++next_expected[static_cast<std::size_t>(p)];
    ++got;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.dequeue(pool), kNilCell);
}

std::vector<std::byte> payload_of(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>((i + static_cast<std::size_t>(seed)) & 0xff);
  return v;
}

struct ShmFixture : ::testing::Test {
  sim::Engine eng;
  ShmNode node{eng, 2};
  std::vector<Message> delivered;

  void SetUp() override {
    node.set_deliver(1, [this](Message&& m) { delivered.push_back(std::move(m)); });
    node.set_deliver(0, [](Message&&) {});
    // Receiver polls whenever cells land (an always-progressing receiver).
    node.set_activity_hook(1, [this] { node.poll(1); });
  }

  void send(std::size_t n, int tag_seed) {
    Message m;
    m.src_local = 0;
    m.header = tag_seed;
    m.payload = payload_of(n, tag_seed);
    node.send(1, std::move(m));
  }
};

TEST_F(ShmFixture, SmallMessageArrivesIntact) {
  send(100, 1);
  eng.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].payload, payload_of(100, 1));
  EXPECT_EQ(std::any_cast<int>(delivered[0].header), 1);
  EXPECT_EQ(delivered[0].src_local, 0);
}

TEST_F(ShmFixture, ZeroByteMessageStillDelivers) {
  send(0, 9);
  eng.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_TRUE(delivered[0].payload.empty());
}

TEST_F(ShmFixture, LargeMessageFragmentsAcrossCells) {
  const std::size_t big = 200 * 1024;  // 25 cells at the 8 KiB default
  send(big, 2);
  eng.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].payload.size(), big);
  EXPECT_EQ(delivered[0].payload, payload_of(big, 2));
}

TEST_F(ShmFixture, MessagesKeepSendOrder) {
  for (int i = 0; i < 10; ++i) send(1000 + static_cast<std::size_t>(i), i);
  eng.run();
  ASSERT_EQ(delivered.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(std::any_cast<int>(delivered[static_cast<std::size_t>(i)].header), i);
  }
}

TEST_F(ShmFixture, FlowControlSurvivesMessageLargerThanAllCells) {
  // 64 cells x 8 KiB = 512 KiB of cells; send 2 MiB. Progress requires the
  // receiver to return cells — the activity hook polls, so it must drain.
  const std::size_t huge = 2 * 1024 * 1024;
  send(huge, 3);
  eng.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].payload.size(), huge);
  EXPECT_EQ(node.cells_in_flight(), 0u);
}

TEST_F(ShmFixture, MailboxCountsArrivedCells) {
  EXPECT_EQ(node.mailbox(1), 0u);
  send(100, 1);
  eng.run();
  EXPECT_EQ(node.mailbox(1), 1u);
  send(20000, 2);  // 3 cells
  eng.run();
  EXPECT_EQ(node.mailbox(1), 4u);
}

TEST(ShmTiming, LatencyMatchesCalibration) {
  // One small message: copy-in + latency + copy-out.
  sim::Engine eng;
  ShmNode node(eng, 2);
  Time arrival = -1;
  node.set_deliver(1, [&](Message&&) { arrival = eng.now(); });
  node.set_activity_hook(1, [&] { node.poll(1); });
  Message m;
  m.src_local = 0;
  m.payload = payload_of(64, 0);
  node.send(1, std::move(m));
  eng.run();
  const Time copies = 2.0 * (64.0 + 64.0) / calib::kShmCopyBandwidth;  // hdr+payload, both sides
  EXPECT_NEAR(arrival, calib::kShmLatency + copies, 1e-9);
}

TEST(ShmTiming, NonPollingReceiverStallsDelivery) {
  sim::Engine eng;
  ShmNode node(eng, 2);
  std::vector<Message> delivered;
  node.set_deliver(1, [&](Message&& m) { delivered.push_back(std::move(m)); });
  // No activity hook: nobody polls.
  Message m;
  m.src_local = 0;
  m.payload = payload_of(100, 0);
  node.send(1, std::move(m));
  eng.run();
  EXPECT_TRUE(delivered.empty());  // cells sit in the receive queue
  EXPECT_TRUE(node.poll(1));
  EXPECT_EQ(delivered.size(), 1u);
}

}  // namespace
}  // namespace nmx::nemesis
