// Boundary and fuzz tests: protocol-threshold edges (eager/rendezvous
// switches, cell sizes) and randomized strategy/channel sweeps asserting
// no message is lost, duplicated or reordered.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mpi/cluster.hpp"
#include "nmad/strategy.hpp"
#include "sim/rng.hpp"

namespace nmx {
namespace {

// ---------------------------------------------------------------------------
// Threshold boundaries: one byte below / at / above every protocol switch.
// ---------------------------------------------------------------------------

class ThresholdEdge : public ::testing::TestWithParam<std::tuple<mpi::StackKind, std::size_t>> {};

TEST_P(ThresholdEdge, BytesSurviveTheProtocolSwitch) {
  const auto [stack, size] = GetParam();
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 4;  // exercises the shm path boundaries too
  cfg.stack = stack;
  mpi::Cluster cluster(cfg);
  std::vector<std::byte> msg(std::max<std::size_t>(size, 1));
  for (std::size_t i = 0; i < size; ++i) msg[i] = static_cast<std::byte>((i * 131) & 0xff);
  cluster.run([&](mpi::Comm& c) {
    // ring: rank r sends to r+1 (mix of shm and network hops)
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() - 1 + c.size()) % c.size();
    std::vector<std::byte> in(std::max<std::size_t>(size, 1));
    auto st = c.sendrecv(msg.data(), size, right, 5, in.data(), size, left, 5);
    EXPECT_EQ(st.count, size);
    for (std::size_t i = 0; i < size; ++i) ASSERT_EQ(in[i], msg[i]) << size << " @" << i;
  });
}

std::vector<std::tuple<mpi::StackKind, std::size_t>> edge_cases() {
  // Every protocol boundary in the system, plus-or-minus one byte:
  // nmad rdv 64K, CH3 shm rdv 64K, Nemesis cell 8K, MVAPICH eager 8K,
  // OMPI eager 12K / send-protocol max 256K / frag sizes 32K & 128K.
  std::vector<std::size_t> sizes;
  for (std::size_t base : {std::size_t{8} << 10, std::size_t{12} << 10, std::size_t{32} << 10,
                           std::size_t{64} << 10, std::size_t{128} << 10, std::size_t{256} << 10}) {
    sizes.push_back(base - 1);
    sizes.push_back(base);
    sizes.push_back(base + 1);
  }
  sizes.push_back(0);
  std::vector<std::tuple<mpi::StackKind, std::size_t>> cases;
  for (auto stack : {mpi::StackKind::Mpich2Nmad, mpi::StackKind::Mvapich2,
                     mpi::StackKind::OpenMpiBtlIb}) {
    for (std::size_t s : sizes) cases.emplace_back(stack, s);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Edges, ThresholdEdge, ::testing::ValuesIn(edge_cases()),
                         [](const auto& info) {
                           std::string s = mpi::to_string(std::get<0>(info.param));
                           std::erase(s, '-');
                           return s + "_" + std::to_string(std::get<1>(info.param));
                         });

// ---------------------------------------------------------------------------
// Sampling::split / split_with_ready boundaries: the solver must conserve
// bytes and stay finite at every degenerate corner.
// ---------------------------------------------------------------------------

TEST(SplitBoundary, LenBelowMinChunkGoesEntirelyToTheFastestRail) {
  nmad::Sampling s({nmad::RailPerf{0, 2e-6, 1e9}, nmad::RailPerf{1, 1e-6, 2e9}});
  const auto shares = s.split(100, 16384);
  EXPECT_EQ(shares[1], 100u);  // rail 1 has the lower alpha
  EXPECT_EQ(shares[0], 0u);
}

TEST(SplitBoundary, ZeroLenYieldsZeroShares) {
  nmad::Sampling s({nmad::RailPerf{0, 1e-6, 1e9}, nmad::RailPerf{1, 2e-6, 1e9}});
  for (std::size_t share : s.split(0, 16384)) EXPECT_EQ(share, 0u);
}

TEST(SplitBoundary, SingleRailTakesEverything) {
  nmad::Sampling s({nmad::RailPerf{0, 1e-6, 1e9}});
  EXPECT_EQ(s.split(1 << 20, 16384)[0], std::size_t{1} << 20);
  EXPECT_EQ(s.split(1, 16384)[0], 1u);
}

TEST(SplitBoundary, AllButOneShareDroppedRebalancesRemainder) {
  // len just above min_chunk over three rails: no multi-rail allocation can
  // give every rail min_chunk, so the solver must prune down to one rail and
  // still hand out exactly len bytes.
  nmad::Sampling s({nmad::RailPerf{0, 1e-6, 1e9}, nmad::RailPerf{1, 1e-6, 1e9},
                    nmad::RailPerf{2, 1e-6, 1e9}});
  const std::size_t len = 16384 + 1;
  const auto shares = s.split(len, 16384);
  std::size_t sum = 0;
  int used = 0;
  for (std::size_t share : shares) {
    sum += share;
    if (share > 0) ++used;
  }
  EXPECT_EQ(sum, len);
  EXPECT_EQ(used, 1);
}

TEST(SplitBoundary, ExtremeAlphaAsymmetryDropsTheSlowStarter) {
  // Rail 1's alpha alone exceeds the whole transfer time on rail 0: its
  // equal-finish share is negative, which must prune it (not underflow).
  nmad::Sampling s({nmad::RailPerf{0, 1e-6, 1e9}, nmad::RailPerf{1, 1.0, 1e9}});
  const auto shares = s.split(1 << 20, 1024);
  EXPECT_EQ(shares[0], std::size_t{1} << 20);
  EXPECT_EQ(shares[1], 0u);
}

TEST(SplitBoundary, ExtremeBetaAsymmetryConservesBytes) {
  nmad::Sampling s({nmad::RailPerf{0, 1e-6, 1e12}, nmad::RailPerf{1, 1e-6, 1.0}});
  const auto shares = s.split((1 << 20) + 7, 1024);
  EXPECT_EQ(shares[0] + shares[1], (std::size_t{1} << 20) + 7);
  EXPECT_EQ(shares[1], 0u);  // 1 B/s rail is never worth a chunk
}

TEST(SplitBoundary, ReadyTimesExcludeABusyRail) {
  nmad::Sampling s({nmad::RailPerf{0, 1e-6, 1e9}, nmad::RailPerf{1, 1e-6, 1e9}});
  // Rail 0 cannot start for a full second — everything goes to rail 1.
  const auto shares = s.split_with_ready(1 << 20, 16384, {1.0, 0.0});
  EXPECT_EQ(shares[0], 0u);
  EXPECT_EQ(shares[1], std::size_t{1} << 20);
}

TEST(SplitBoundary, ZeroReadyMatchesTheIdleSplit) {
  nmad::Sampling s({nmad::RailPerf{0, 1e-6, 2e9}, nmad::RailPerf{1, 2e-6, 1e9}});
  for (std::size_t len : {std::size_t{1} << 18, std::size_t{3} << 20}) {
    EXPECT_EQ(s.split_with_ready(len, 16384, {0.0, 0.0}), s.split(len, 16384)) << len;
  }
}

TEST(SplitBoundary, UnsplittablePayloadChasesEarliestCompletionNotLowestAlpha) {
  nmad::Sampling s({nmad::RailPerf{0, 1e-6, 1e9}, nmad::RailPerf{1, 2e-6, 1e9}});
  // Too small to split; the fastest rail is busy, so the load-aware variant
  // must pick rail 1 while the idle split keeps rail 0.
  EXPECT_EQ(s.split(1000, 16384)[0], 1000u);
  const auto shares = s.split_with_ready(1000, 16384, {5e-4, 0.0});
  EXPECT_EQ(shares[0], 0u);
  EXPECT_EQ(shares[1], 1000u);
}

TEST(SplitBoundary, RandomReadyTimesAlwaysConserveBytes) {
  sim::Xoshiro256 rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t nrails = 1 + rng.below(4);
    std::vector<nmad::RailPerf> perfs;
    for (std::size_t r = 0; r < nrails; ++r) {
      perfs.push_back(nmad::RailPerf{static_cast<int>(r), rng.uniform(0.5e-6, 300e-6),
                                     rng.uniform(1e6, 2e9)});
    }
    nmad::Sampling s(perfs);
    std::vector<Time> ready;
    for (std::size_t r = 0; r < nrails; ++r) ready.push_back(rng.uniform(0.0, 1e-2));
    const std::size_t len = 1 + rng.below(1u << 24);
    const auto shares = s.split_with_ready(len, 1 + rng.below(65536), ready);
    std::size_t sum = 0;
    for (std::size_t share : shares) sum += share;
    ASSERT_EQ(sum, len) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Strategy fuzz: random entries in, drained over random rails — every entry
// must come out exactly once, with per-(dst, tag) sequence order preserved
// and the aggregation byte cap respected.
// ---------------------------------------------------------------------------

class StrategyFuzz
    : public ::testing::TestWithParam<std::tuple<nmad::StrategyKind, std::uint64_t>> {};

TEST_P(StrategyFuzz, NoLossNoDuplicationNoReorder) {
  const auto [kind, seed] = GetParam();
  nmad::Sampling sampling({nmad::RailPerf{0, 1e-6, 1e9}, nmad::RailPerf{1, 2e-6, 5e8}});
  nmad::StrategyOptions opts;
  opts.max_aggregate = 2048;
  auto strat = nmad::make_strategy(kind, sampling, opts);

  sim::Xoshiro256 rng(seed);
  struct Key {
    int dst;
    nmad::Tag tag;
    bool operator<(const Key& o) const { return std::tie(dst, tag) < std::tie(o.dst, o.tag); }
  };
  std::map<Key, std::uint32_t> next_seq;
  std::set<std::pair<int, std::uint32_t>> injected;  // (dst, global id)
  int id = 0;

  for (int i = 0; i < 200; ++i) {
    nmad::Entry e;
    e.kind = nmad::Entry::Kind::Eager;
    e.dst_proc = static_cast<int>(rng.below(4));
    e.tag = rng.below(3);
    e.seq = next_seq[{e.dst_proc, e.tag}]++;
    e.bytes.resize(16 + rng.below(1000));
    injected.insert({e.dst_proc, (static_cast<std::uint32_t>(e.dst_proc) << 16) |
                                     static_cast<std::uint32_t>(id++)});
    strat->enqueue(std::move(e));
  }

  std::map<Key, std::uint32_t> seen_seq;
  std::size_t drained = 0;
  while (strat->pending()) {
    const int rail = static_cast<int>(rng.below(2));
    auto wm = strat->next(rail, /*src=*/0);
    if (!wm) continue;
    std::size_t packed = 0;
    for (const nmad::Entry& e : wm->entries) {
      EXPECT_EQ(e.dst_proc, wm->dst_proc);  // one destination per packet
      // per-(dst, tag) sequence order never regresses
      auto& next = seen_seq[{e.dst_proc, e.tag}];
      EXPECT_EQ(e.seq, next) << "reorder within (dst, tag)";
      ++next;
      packed += e.bytes.size();
      ++drained;
    }
    if (wm->entries.size() > 1) {
      EXPECT_LE(packed, opts.max_aggregate);  // cap respected when aggregating
    }
  }
  EXPECT_EQ(drained, 200u);  // everything out exactly once
  EXPECT_FALSE(strat->next(0, 0).has_value());
  EXPECT_FALSE(strat->next(1, 0).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, StrategyFuzz,
    ::testing::Combine(::testing::Values(nmad::StrategyKind::Default, nmad::StrategyKind::Aggreg,
                                         nmad::StrategyKind::SplitBalance),
                       ::testing::Values(1, 7, 42)),
    [](const auto& info) {
      const char* k = std::get<0>(info.param) == nmad::StrategyKind::Default  ? "default"
                      : std::get<0>(info.param) == nmad::StrategyKind::Aggreg ? "aggreg"
                                                                              : "split";
      return std::string(k) + "_s" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Random-size message storm through one pair, mixed tags, both directions.
// ---------------------------------------------------------------------------

TEST(SizeFuzz, MixedSizesBothDirections) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  mpi::Cluster cluster(cfg);
  sim::Xoshiro256 rng(99);
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 30; ++i) sizes.push_back(rng.below(300000));
  cluster.run([&](mpi::Comm& c) {
    const int peer = 1 - c.rank();
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::vector<std::byte> out(std::max<std::size_t>(sizes[i], 1));
      std::vector<std::byte> in(std::max<std::size_t>(sizes[i], 1));
      for (std::size_t k = 0; k < sizes[i]; ++k) {
        out[k] = static_cast<std::byte>((k + i) & 0xff);
      }
      auto st = c.sendrecv(out.data(), sizes[i], peer, static_cast<int>(i % 5), in.data(),
                           sizes[i], peer, static_cast<int>(i % 5));
      ASSERT_EQ(st.count, sizes[i]);
      for (std::size_t k = 0; k < sizes[i]; k += 257) {
        ASSERT_EQ(in[k], static_cast<std::byte>((k + i) & 0xff));
      }
    }
  });
}

}  // namespace
}  // namespace nmx
