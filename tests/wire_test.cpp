// Wire-format accounting: every Entry kind's header cost must match the
// fields that kind actually carries. The CTS in particular is no longer a
// fixed 16 bytes — it grows by RailAd::kWireSize per advertised rail, and a
// hard-coded size here silently mis-charges every rendezvous handshake. The
// control-plane recovery fields (RTS retry counter, CTS/chunk grant epoch,
// rail-down notification) are wire-charged too: recovery traffic must not be
// free, or the chaos tier's recovery-time bounds measure fiction.
#include <gtest/gtest.h>

#include "nmad/wire.hpp"

namespace {

using namespace nmx;
using nmad::Entry;
using nmad::RailAd;
using nmad::WireMsg;

TEST(WireFormat, EveryKindHeaderMatchesItsFieldLayout) {
  static_assert(Entry::kNumKinds == 7, "new Kind added: extend this test");
  // Eager packs its matching info (kind + dst + tag + seq) into 16 bytes.
  EXPECT_EQ(Entry::kEagerHeader, 16u);
  // RdvChunk is an Eager-style header plus the 4-byte grant epoch it answers
  // (the receiver discards chunks of a superseded grant by this stamp).
  EXPECT_EQ(Entry::kRdvChunkHeader, Entry::kEagerHeader + 4);
  // Rts adds rdv id (8), total size (8) and the retransmission counter (4) —
  // a retried RTS reuses seq/rdv_id, so the counter is the only thing that
  // distinguishes it on the wire.
  EXPECT_EQ(Entry::kRtsHeader, Entry::kEagerHeader + 8 + 8 + 4);
  // The CTS base grant is the legacy 16-byte grant plus the 4-byte epoch.
  EXPECT_EQ(Entry::kCtsHeaderBase, 16u + 4u);
  // RailDown carries kind + dst bookkeeping + the dead fabric rail in 16.
  EXPECT_EQ(Entry::kRailDownHeader, 16u);
  // RdvFin is the receiver's completion ack: rdv id (8) + landed-byte count
  // (8) + the grant epoch it confirms (4). Sender retirement gates on it.
  EXPECT_EQ(Entry::kRdvFinHeader, 8u + 8u + 4u);
  // CollCtl rides an Eager-style header plus collective id (8), combine
  // value (8) and the op/phase word (4) — NIC collective control traffic is
  // wire-charged like everything else.
  EXPECT_EQ(Entry::kCollCtlHeader, Entry::kEagerHeader + 8 + 8 + 4);
  // RailAd: fabric rail (4) + busy delta (8) + backlog bytes (8).
  EXPECT_EQ(RailAd::kWireSize, 4u + 8u + 8u);
}

TEST(WireFormat, HeaderBytesDispatchesOnKind) {
  Entry e;
  e.kind = Entry::Kind::Eager;
  EXPECT_EQ(e.header_bytes(), Entry::kEagerHeader);
  e.kind = Entry::Kind::Rts;
  EXPECT_EQ(e.header_bytes(), Entry::kRtsHeader);
  e.kind = Entry::Kind::Cts;
  EXPECT_EQ(e.header_bytes(), Entry::kCtsHeaderBase);
  e.kind = Entry::Kind::RdvChunk;
  EXPECT_EQ(e.header_bytes(), Entry::kRdvChunkHeader);
  e.kind = Entry::Kind::RailDown;
  EXPECT_EQ(e.header_bytes(), Entry::kRailDownHeader);
  e.kind = Entry::Kind::RdvFin;
  EXPECT_EQ(e.header_bytes(), Entry::kRdvFinHeader);
  e.kind = Entry::Kind::CollCtl;
  EXPECT_EQ(e.header_bytes(), Entry::kCollCtlHeader);
}

TEST(WireFormat, FinAndCollCtlCarryNoPayload) {
  // RdvFin reuses rdv_total as the landed-byte ack and CollCtl carries its
  // combine value in fixed header fields; neither has a payload vector, so
  // the wire charge is exactly the header.
  Entry fin;
  fin.kind = Entry::Kind::RdvFin;
  fin.rdv_id = 9;
  fin.rdv_total = 1_MiB;  // landed-byte ack: header field, not payload
  fin.epoch = 2;
  EXPECT_EQ(fin.wire_bytes(), Entry::kRdvFinHeader);

  Entry ctl;
  ctl.kind = Entry::Kind::CollCtl;
  ctl.rdv_id = 77;        // collective id
  ctl.coll_value = 3.25;  // combine contribution
  ctl.coll_ctl = 0x102;   // op | kCollDown
  EXPECT_EQ(ctl.wire_bytes(), Entry::kCollCtlHeader);
}

TEST(WireFormat, CtsHeaderGrowsByWireSizePerRailAd) {
  Entry cts;
  cts.kind = Entry::Kind::Cts;
  // A no-advertisement grant costs exactly the base header.
  EXPECT_EQ(cts.header_bytes(), Entry::kCtsHeaderBase);
  for (std::size_t n = 1; n <= 3; ++n) {
    cts.rail_ads.push_back(RailAd{static_cast<int>(n) - 1, 1e-6, 4096});
    EXPECT_EQ(cts.header_bytes(), Entry::kCtsHeaderBase + n * RailAd::kWireSize);
    EXPECT_EQ(cts.wire_bytes(), cts.header_bytes());  // a CTS has no payload
  }
}

TEST(WireFormat, RecoveryFieldsAreHeaderChargedNotExtra) {
  // retry, epoch and down_rail are fixed header fields — always charged, so
  // stamping them must not change an entry's wire size (no hidden free or
  // double-charged recovery traffic).
  Entry rts;
  rts.kind = Entry::Kind::Rts;
  const std::size_t rts_base = rts.wire_bytes();
  rts.retry = 3;
  EXPECT_EQ(rts.wire_bytes(), rts_base);

  Entry cts;
  cts.kind = Entry::Kind::Cts;
  const std::size_t cts_base = cts.wire_bytes();
  cts.epoch = 7;
  EXPECT_EQ(cts.wire_bytes(), cts_base);

  Entry down;
  down.kind = Entry::Kind::RailDown;
  const std::size_t down_base = down.wire_bytes();
  down.down_rail = 1;
  EXPECT_EQ(down.wire_bytes(), down_base);
  EXPECT_EQ(down_base, Entry::kRailDownHeader);  // notification has no payload
}

TEST(WireFormat, DiagnosticFieldsAreNotWireCharged) {
  // span, sreq and pred_arrival are simulator bookkeeping that real hardware
  // would not serialize; stamping them must not change the charged size.
  Entry e;
  e.kind = Entry::Kind::RdvChunk;
  e.bytes.resize(1024);
  const std::size_t base = e.wire_bytes();
  e.span = 42;
  e.pred_arrival = 1.5;
  EXPECT_EQ(e.wire_bytes(), base);
  EXPECT_EQ(base, Entry::kRdvChunkHeader + 1024);
}

TEST(WireFormat, WireMsgAggregatesEntryCosts) {
  WireMsg wm;
  Entry eager;
  eager.kind = Entry::Kind::Eager;
  eager.bytes.resize(100);
  Entry cts;
  cts.kind = Entry::Kind::Cts;
  cts.rail_ads.resize(2);
  Entry chunk;
  chunk.kind = Entry::Kind::RdvChunk;
  chunk.bytes.resize(2048);
  wm.entries = {eager, cts, chunk};
  EXPECT_EQ(wm.wire_bytes(), (Entry::kEagerHeader + 100) +
                                 (Entry::kCtsHeaderBase + 2 * RailAd::kWireSize) +
                                 (Entry::kRdvChunkHeader + 2048));
  EXPECT_EQ(wm.copied_bytes(), 100u);  // only the eager payload is memcpy'd
  EXPECT_EQ(wm.rdv_bytes(), 2048u);    // only the chunk needs registration
}

}  // namespace
