// Wire-format accounting: every Entry kind's header cost must match the
// fields that kind actually carries. The CTS in particular is no longer a
// fixed 16 bytes — it grows by RailAd::kWireSize per advertised rail, and a
// hard-coded size here silently mis-charges every rendezvous handshake.
#include <gtest/gtest.h>

#include "nmad/wire.hpp"

namespace {

using namespace nmx;
using nmad::Entry;
using nmad::RailAd;
using nmad::WireMsg;

TEST(WireFormat, EveryKindHeaderMatchesItsFieldLayout) {
  static_assert(Entry::kNumKinds == 4, "new Kind added: extend this test");
  // Eager and RdvChunk pack their matching info (kind + dst + tag + seq,
  // resp. kind + dst + rdv id + offset) into the same 16-byte budget.
  EXPECT_EQ(Entry::kEagerHeader, 16u);
  EXPECT_EQ(Entry::kRdvChunkHeader, Entry::kEagerHeader);
  // Rts is an Eager-style matched header plus rdv id (8) and total size (8).
  EXPECT_EQ(Entry::kRtsHeader, Entry::kEagerHeader + 8 + 8);
  // The CTS base grant keeps the legacy fixed cost so a no-advertisement
  // grant (advertise_rdv_load=false) is byte-identical to the old wire format.
  EXPECT_EQ(Entry::kCtsHeaderBase, 16u);
  // RailAd: fabric rail (4) + busy delta (8) + backlog bytes (8).
  EXPECT_EQ(RailAd::kWireSize, 4u + 8u + 8u);
}

TEST(WireFormat, HeaderBytesDispatchesOnKind) {
  Entry e;
  e.kind = Entry::Kind::Eager;
  EXPECT_EQ(e.header_bytes(), Entry::kEagerHeader);
  e.kind = Entry::Kind::Rts;
  EXPECT_EQ(e.header_bytes(), Entry::kRtsHeader);
  e.kind = Entry::Kind::Cts;
  EXPECT_EQ(e.header_bytes(), Entry::kCtsHeaderBase);
  e.kind = Entry::Kind::RdvChunk;
  EXPECT_EQ(e.header_bytes(), Entry::kRdvChunkHeader);
}

TEST(WireFormat, CtsHeaderGrowsByWireSizePerRailAd) {
  Entry cts;
  cts.kind = Entry::Kind::Cts;
  // The legacy grant (no advertisement) keeps its historical 16-byte cost.
  EXPECT_EQ(cts.header_bytes(), 16u);
  for (std::size_t n = 1; n <= 3; ++n) {
    cts.rail_ads.push_back(RailAd{static_cast<int>(n) - 1, 1e-6, 4096});
    EXPECT_EQ(cts.header_bytes(), Entry::kCtsHeaderBase + n * RailAd::kWireSize);
    EXPECT_EQ(cts.wire_bytes(), cts.header_bytes());  // a CTS has no payload
  }
}

TEST(WireFormat, DiagnosticFieldsAreNotWireCharged) {
  // span, sreq and pred_arrival are simulator bookkeeping that real hardware
  // would not serialize; stamping them must not change the charged size.
  Entry e;
  e.kind = Entry::Kind::RdvChunk;
  e.bytes.resize(1024);
  const std::size_t base = e.wire_bytes();
  e.span = 42;
  e.pred_arrival = 1.5;
  EXPECT_EQ(e.wire_bytes(), base);
  EXPECT_EQ(base, Entry::kRdvChunkHeader + 1024);
}

TEST(WireFormat, WireMsgAggregatesEntryCosts) {
  WireMsg wm;
  Entry eager;
  eager.kind = Entry::Kind::Eager;
  eager.bytes.resize(100);
  Entry cts;
  cts.kind = Entry::Kind::Cts;
  cts.rail_ads.resize(2);
  Entry chunk;
  chunk.kind = Entry::Kind::RdvChunk;
  chunk.bytes.resize(2048);
  wm.entries = {eager, cts, chunk};
  EXPECT_EQ(wm.wire_bytes(), (Entry::kEagerHeader + 100) +
                                 (Entry::kCtsHeaderBase + 2 * RailAd::kWireSize) +
                                 (Entry::kRdvChunkHeader + 2048));
  EXPECT_EQ(wm.copied_bytes(), 100u);  // only the eager payload is memcpy'd
  EXPECT_EQ(wm.rdv_bytes(), 2048u);    // only the chunk needs registration
}

}  // namespace
