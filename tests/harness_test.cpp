// Harness and end-to-end determinism tests: identical configurations must
// produce bit-identical virtual timings (the reproducibility claim of
// EXPERIMENTS.md rests on this), and the netpipe/overlap harnesses must
// behave sanely across their sweep ranges.
#include <gtest/gtest.h>

#include "harness/netpipe.hpp"
#include "harness/overlap.hpp"
#include "harness/table.hpp"
#include "mpi/cluster.hpp"
#include "nas/nas.hpp"
#include "nmad/core.hpp"

namespace nmx {
namespace {

mpi::ClusterConfig ib2(mpi::StackKind stack = mpi::StackKind::Mpich2Nmad) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.stack = stack;
  return cfg;
}

TEST(Determinism, NetpipeRunsAreBitIdentical) {
  const auto sizes = harness::bandwidth_sizes();
  const auto a = harness::netpipe(ib2(), sizes);
  const auto b = harness::netpipe(ib2(), sizes);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].latency_us, b[i].latency_us) << "size " << a[i].size;
    EXPECT_EQ(a[i].bandwidth_MBps, b[i].bandwidth_MBps);
  }
}

TEST(Determinism, NasRunsAreBitIdentical) {
  auto run_once = [] {
    mpi::ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.procs = 8;
    cfg.stack = mpi::StackKind::Mpich2Nmad;
    cfg.pioman = true;
    mpi::Cluster cluster(cfg);
    nas::NasConfig nc;
    nc.cls = nas::NasClass::S;
    return nas::run_nas(cluster, "CG", nc).seconds;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Netpipe, BandwidthGrowsThenSaturates) {
  const auto pts = harness::netpipe(ib2(mpi::StackKind::Mvapich2), harness::bandwidth_sizes());
  // Monotone non-decreasing bandwidth for a cache-friendly stack.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].bandwidth_MBps, pts[i - 1].bandwidth_MBps * 0.95) << pts[i].size;
  }
  // Saturation below the NIC line rate.
  EXPECT_LT(pts.back().bandwidth_MBps, 1460.0);
  EXPECT_GT(pts.back().bandwidth_MBps, 1350.0);
}

TEST(Netpipe, LatencyIsFlatForTinyMessages) {
  const auto pts = harness::netpipe(ib2(), {1, 2, 4, 8});
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_NEAR(pts[i].latency_us, pts[0].latency_us, 0.02);
  }
}

TEST(Overlap, ReferenceTracksMessageSize) {
  const auto pts = harness::overlap(ib2(), {4096, 65536, 1 << 20}, 0.0);
  EXPECT_LT(pts[0].send_time_us, pts[1].send_time_us);
  EXPECT_LT(pts[1].send_time_us, pts[2].send_time_us);
}

TEST(Overlap, ComputeDominatesSmallMessages) {
  const auto pts = harness::overlap(ib2(), {64}, 100e-6);
  EXPECT_GT(pts[0].send_time_us, 100.0);
  EXPECT_LT(pts[0].send_time_us, 115.0);
}

TEST(Table, FormatsBytesAndNumbers) {
  EXPECT_EQ(harness::Table::bytes(512), "512");
  EXPECT_EQ(harness::Table::bytes(4096), "4K");
  EXPECT_EQ(harness::Table::bytes(16 << 20), "16M");
  EXPECT_EQ(harness::Table::fmt(3.14159, 2), "3.14");
  std::ostringstream os;
  harness::Table t({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.print(os);
  EXPECT_NE(os.str().find("bbbb"), std::string::npos);
}

TEST(NmadRaw, StandaloneLatencyIs1p8us) {
  // §4.1.1: NewMadeleine alone (no CH3 on top) measures 1.8µs — "not shown
  // on the graph". Measure a core-level ping-pong.
  sim::Engine eng;
  net::Topology topo = net::Topology::blocked(2, 2, {net::ib_profile()});
  net::Fabric fabric(eng, topo);
  net::ProcRouter r0(fabric, 0), r1(fabric, 1);
  nmad::Core::ExtendedConfig cfg;
  nmad::Core a(eng, fabric, r0, 0, cfg);
  nmad::Core b(eng, fabric, r1, 1, cfg);
  a.enter_progress();
  b.enter_progress();

  char byte = 0;
  Time t_done = 0;
  // One-way chain of 4 hops; measure average hop time.
  constexpr int kHops = 4;
  std::function<void(int)> hop = [&](int i) {
    if (i == kHops) {
      t_done = eng.now();
      return;
    }
    nmad::Core& src = (i % 2 == 0) ? a : b;
    nmad::Core& dst = (i % 2 == 0) ? b : a;
    dst.irecv(src.proc(), 1, &byte, 1);
    dst.set_on_complete([&, i](nmad::Request& r) {
      if (r.kind == nmad::Request::Kind::Recv) hop(i + 1);
    });
    src.isend(dst.proc(), 1, &byte, 1);
  };
  hop(0);
  eng.run();
  EXPECT_NEAR(t_done / kHops * 1e6, 1.8, 0.15);
}

}  // namespace
}  // namespace nmx
