// Tests for the nmx::obs observability layer: metrics registry semantics,
// span begin/end pairing in the Recorder, end-to-end span balance on a traced
// cluster, the Chrome trace-event / CSV exporters, and equivalence between
// the legacy sim::Tracer view and the Recorder stream backing it.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_csv.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "sim/trace.hpp"

namespace nmx {
namespace {

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// The traced workload every end-to-end test below runs: one network
/// rendezvous, one shared-memory eager message, compute overlap, a barrier.
mpi::Cluster& traced_cluster() {
  // Held in a unique_ptr (not leaked) so the Engine destructor runs at exit
  // and joins the finished actor threads — TSan flags them as leaked
  // otherwise.
  static std::unique_ptr<mpi::Cluster> cluster = [] {
    mpi::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.procs = 4;
    cfg.stack = mpi::StackKind::Mpich2Nmad;
    cfg.pioman = true;
    cfg.trace = true;
    auto c = std::make_unique<mpi::Cluster>(cfg);
    c->run([](mpi::Comm& comm) {
      std::vector<std::byte> big(256 * 1024), small(512);
      if (comm.rank() == 0) {
        mpi::Request r = comm.isend(big.data(), big.size(), 3, 1);  // rendezvous
        comm.compute(20e-6);
        comm.wait(r);
        comm.send(small.data(), small.size(), 1, 2);  // shm eager
      } else if (comm.rank() == 3) {
        comm.recv(big.data(), big.size(), 0, 1);
      } else if (comm.rank() == 1) {
        comm.recv(small.data(), small.size(), 0, 2);
      }
      comm.barrier();
    });
    return c;
  }();
  return *cluster;
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, HistogramBucketEdgesUseLeSemantics) {
  obs::Histogram h({1.0, 2.0, 5.0});
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 edges + overflow

  h.observe(0.5);  // below first edge -> bucket 0
  h.observe(1.0);  // exactly on an edge counts in that bucket ("le")
  h.observe(1.5);  // -> bucket 1
  h.observe(2.0);  // -> bucket 1
  h.observe(5.0);  // -> bucket 2
  h.observe(7.0);  // above the last edge -> overflow

  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 7.0);
}

TEST(Metrics, RegistryKeysByNameAndLabel) {
  obs::Registry reg;
  reg.counter("rail.bytes", "rail=0").add(100);
  reg.counter("rail.bytes", "rail=1").add(7);
  reg.counter("rail.bytes", "rail=0").add(1);  // same counter as the first
  EXPECT_EQ(reg.find_counter("rail.bytes", "rail=0")->value(), 101u);
  EXPECT_EQ(reg.find_counter("rail.bytes", "rail=1")->value(), 7u);
  EXPECT_EQ(reg.find_counter("rail.bytes", "rail=2"), nullptr);

  obs::Gauge& g = reg.gauge("depth");
  g.set(3);
  g.set(1);
  EXPECT_DOUBLE_EQ(reg.find_gauge("depth")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("depth")->max(), 3.0);  // high-water mark kept
}

TEST(Metrics, WriteCsvEmitsEveryKind) {
  obs::Registry reg;
  reg.counter("c.total").add(42);
  reg.gauge("g.depth").set(2);
  reg.histogram("h.lat", {1.0, 10.0}).observe(3.0);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,name,label,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,c.total,,value,42"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g.depth,,last,2"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g.depth,,max,2"), std::string::npos);
  EXPECT_NE(csv.find("hist,h.lat,,count,1"), std::string::npos);
  EXPECT_NE(csv.find("hist,h.lat,,le_10,1"), std::string::npos);  // cumulative
  EXPECT_NE(csv.find("hist,h.lat,,le_inf,1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Recorder span pairing
// ---------------------------------------------------------------------------

TEST(Recorder, SpanBeginEndPairing) {
  obs::Recorder rec;
  const obs::SpanId a = rec.begin(1e-6, 0, obs::Cat::MpiWait);
  const obs::SpanId b = rec.begin(2e-6, 1, obs::Cat::Compute);
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);

  rec.end(3e-6, 1, obs::Cat::Compute, b);
  EXPECT_EQ(rec.spans_begun(), 2u);
  EXPECT_EQ(rec.spans_ended(), 1u);
  const auto unbalanced = rec.unbalanced_spans();
  ASSERT_EQ(unbalanced.size(), 1u);
  EXPECT_EQ(unbalanced[0], a);

  rec.end(4e-6, 0, obs::Cat::MpiWait, a);
  EXPECT_TRUE(rec.unbalanced_spans().empty());
  EXPECT_EQ(rec.spans_begun(), rec.spans_ended());
}

TEST(Recorder, EndOfSpanZeroIsANoop) {
  obs::Recorder rec;
  rec.end(1e-6, 0, obs::Cat::MpiWait, 0);  // span opened with no recorder attached
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.spans_ended(), 0u);
}

// ---------------------------------------------------------------------------
// Ring-buffer mode
// ---------------------------------------------------------------------------

TEST(RecorderRing, DropsOldestAndCountsDrops) {
  obs::Recorder rec;
  rec.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    rec.instant(static_cast<Time>(i) * 1e-6, 0, obs::Cat::PiomanPass, 0, i);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped_records(), 6u);
  // The survivors are the *newest* four, still in time order.
  const auto& recs = rec.records();
  ASSERT_EQ(recs.size(), 4u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].arg, static_cast<std::int64_t>(6 + i));
    if (i > 0) {
      EXPECT_GE(recs[i].t, recs[i - 1].t);
    }
  }
}

TEST(RecorderRing, SamplesRingIndependently) {
  obs::Recorder rec;
  rec.set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    rec.sample(static_cast<Time>(i) * 1e-6, 0, "q", static_cast<double>(i));
  }
  rec.instant(1e-6, 0, obs::Cat::PiomanPass);  // records ring untouched by samples
  EXPECT_EQ(rec.dropped_samples(), 2u);
  EXPECT_EQ(rec.dropped_records(), 0u);
  const auto& s = rec.samples();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].value, 2.0);
  EXPECT_EQ(s[2].value, 4.0);
}

TEST(RecorderRing, ReadingMidWrapKeepsTimeOrder) {
  obs::Recorder rec;
  rec.set_capacity(4);
  for (int i = 0; i < 6; ++i) {
    rec.instant(static_cast<Time>(i) * 1e-6, 0, obs::Cat::PiomanPass, 0, i);
    // Interleaved reads must always see a time-ordered window (the rotate-on-
    // read normalization), and must not disturb subsequent writes.
    const auto& recs = rec.records();
    for (std::size_t j = 1; j < recs.size(); ++j) EXPECT_GE(recs[j].t, recs[j - 1].t);
  }
  EXPECT_EQ(rec.records().back().arg, 5);
  EXPECT_EQ(rec.dropped_records(), 2u);
}

TEST(RecorderRing, SpanAndMetricAggregatesSurviveDrops) {
  obs::Recorder rec;
  rec.set_capacity(2);
  std::vector<obs::SpanId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(rec.begin(1e-6, 0, obs::Cat::Compute));
  for (obs::SpanId id : ids) rec.end(2e-6, 0, obs::Cat::Compute, id);
  rec.metrics().counter("c").add(8);
  // The record window truncated, but the aggregate views kept counting.
  EXPECT_EQ(rec.spans_begun(), 8u);
  EXPECT_EQ(rec.spans_ended(), 8u);
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.dropped_records(), 14u);
  EXPECT_EQ(rec.metrics().counter("c").value(), 8u);
}

TEST(RecorderRing, ShrinkingCapacityShedsOldestNow) {
  obs::Recorder rec;
  for (int i = 0; i < 6; ++i) {
    rec.instant(static_cast<Time>(i) * 1e-6, 0, obs::Cat::PiomanPass, 0, i);
  }
  rec.set_capacity(2);
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.dropped_records(), 4u);
  EXPECT_EQ(rec.records()[0].arg, 4);
  EXPECT_EQ(rec.records()[1].arg, 5);
  // Back to unbounded: nothing sheds, new pushes append.
  rec.set_capacity(0);
  rec.instant(9e-6, 0, obs::Cat::PiomanPass, 0, 9);
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.dropped_records(), 4u);
}

TEST(RecorderRing, ClearResetsRingState) {
  obs::Recorder rec;
  rec.set_capacity(2);
  for (int i = 0; i < 5; ++i) rec.instant(1e-6, 0, obs::Cat::PiomanPass);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped_records(), 0u);
  rec.instant(1e-6, 0, obs::Cat::PiomanPass, 0, 7);
  EXPECT_EQ(rec.records()[0].arg, 7);  // ring restarts cleanly at slot 0
}

// ---------------------------------------------------------------------------
// End-to-end: traced cluster
// ---------------------------------------------------------------------------

TEST(ObsCluster, EverySpanOfACompletedRunIsBalanced) {
  mpi::Cluster& cluster = traced_cluster();
  ASSERT_NE(cluster.recorder(), nullptr);
  obs::Recorder& rec = *cluster.recorder();
  EXPECT_GT(rec.spans_begun(), 0u);
  EXPECT_EQ(rec.spans_begun(), rec.spans_ended());
  EXPECT_TRUE(rec.unbalanced_spans().empty());
}

TEST(ObsCluster, MetricsCoverEveryLayer) {
  mpi::Cluster& cluster = traced_cluster();
  const obs::Registry& m = cluster.recorder()->metrics();

  // MPI layer.
  ASSERT_NE(m.find_counter("mpi.send.count"), nullptr);
  EXPECT_GT(m.find_counter("mpi.send.count")->value(), 0u);
  EXPECT_GT(m.find_counter("mpi.send.bytes")->value(), 0u);
  ASSERT_NE(m.find_counter("mpi.coll.count"), nullptr);  // the barrier

  // NewMadeleine: eager + rendezvous split, per-rail NIC counters.
  ASSERT_NE(m.find_counter("nmad.rdv.count"), nullptr);
  EXPECT_EQ(m.find_counter("nmad.rdv.count")->value(), 1u);  // one big send
  EXPECT_EQ(m.find_counter("nmad.rdv.bytes")->value(), 256u * 1024u);
  ASSERT_NE(m.find_counter("nmad.rail.tx_bytes", "rail=0"), nullptr);
  EXPECT_GT(m.find_counter("nmad.rail.tx_bytes", "rail=0")->value(), 0u);
  EXPECT_GT(m.find_counter("nmad.rail.tx_packets", "rail=0")->value(), 0u);
  EXPECT_GT(m.find_counter("nmad.rail.busy_ns", "rail=0")->value(), 0u);

  // Rendezvous handshake latency histogram saw the one handshake.
  const obs::Histogram* h = m.find_histogram("nmad.rdv.handshake_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GT(h->sum(), 0.0);

  // PIOMan.
  ASSERT_NE(m.find_counter("pioman.passes"), nullptr);
  EXPECT_GT(m.find_counter("pioman.passes")->value(), 0u);
  ASSERT_NE(m.find_histogram("pioman.pass.serviced"), nullptr);
  EXPECT_EQ(m.find_histogram("pioman.pass.serviced")->count(),
            m.find_counter("pioman.passes")->value());

  // Nemesis shared memory (the small message stayed on-node).
  ASSERT_NE(m.find_counter("shm.cells"), nullptr);
  EXPECT_GT(m.find_counter("shm.cells")->value(), 0u);
}

TEST(ObsCluster, RailByteCountersMatchTheTraceStream) {
  mpi::Cluster& cluster = traced_cluster();
  obs::Recorder& rec = *cluster.recorder();

  // Sum of the per-rail tx byte counters == bytes carried by NmadTx spans.
  std::uint64_t from_counters = 0;
  for (const auto& [key, c] : rec.metrics().counters()) {
    if (key.first == "nmad.rail.tx_bytes") from_counters += c.value();
  }
  std::uint64_t from_records = 0;
  for (const obs::Record& r : rec.records()) {
    if (r.cat == obs::Cat::NmadTx && r.ph == obs::Ph::Begin) from_records += r.bytes;
  }
  EXPECT_GT(from_counters, 0u);
  EXPECT_EQ(from_counters, from_records);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(Exporters, ChromeTraceIsStructurallyValidJson) {
  mpi::Cluster& cluster = traced_cluster();
  std::ostringstream os;
  obs::write_chrome_trace(*cluster.recorder(), os);
  const std::string json = os.str();

  // Structural sanity: balanced braces/brackets (no emitted string contains
  // either character), one trailing newline, the trace-event envelope.
  std::int64_t braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);

  // Per-rank process tracks for Perfetto.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  for (int rank = 0; rank < 4; ++rank) {
    EXPECT_NE(json.find("{\"name\":\"rank " + std::to_string(rank) + "\"}"), std::string::npos);
  }

  // Both slices (spans) and instants are present.
  EXPECT_GT(count_occurrences(json, "\"ph\":\"X\""), 0u);
  EXPECT_GT(count_occurrences(json, "\"ph\":\"i\""), 0u);
}

TEST(Exporters, ChromeEventCountMatchesTheEmittedEvents) {
  mpi::Cluster& cluster = traced_cluster();
  obs::Recorder& rec = *cluster.recorder();
  std::ostringstream os;
  obs::write_chrome_trace(rec, os);
  const std::string json = os.str();
  // Every Instant emits "i" and every Begin emits either a complete slice
  // ("X", when its End arrived) or an instant; "M" rows are metadata only.
  const std::size_t emitted =
      count_occurrences(json, "\"ph\":\"X\"") + count_occurrences(json, "\"ph\":\"i\"");
  EXPECT_EQ(emitted, obs::chrome_event_count(rec));
}

TEST(Exporters, CounterSamplesBecomeChromeCounterTracks) {
  obs::Recorder rec;
  rec.sample(1e-6, 0, "nmad.sched.backlog_bytes.rail=0", 4096.0);
  rec.sample(2e-6, 0, "nmad.sched.backlog_bytes.rail=0", 0.0);
  rec.sample(3e-6, -1, "engine.depth", 2.5);

  std::ostringstream os;
  obs::write_chrome_trace(rec, os);
  const std::string json = os.str();

  EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""), 3u);
  EXPECT_NE(json.find("{\"ph\":\"C\",\"name\":\"nmad.sched.backlog_bytes.rail=0\",\"ts\":1.000,"
                      "\"pid\":0,\"tid\":0,\"args\":{\"value\":4096}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":2.5}"), std::string::npos);  // %.10g, not %d

  // Rank-less samples land on the engine pid, which gets its metadata row
  // even when no span/instant record ever touched it.
  EXPECT_NE(json.find("\"name\":\"engine.depth\",\"ts\":3.000,\"pid\":1048576"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"sim engine\"}"), std::string::npos);

  // Counter events are extra: chrome_event_count still covers spans and
  // instants only (the ChromeEventCount test above depends on that).
  EXPECT_EQ(obs::chrome_event_count(rec), 0u);
}

TEST(Exporters, SchedulerCounterTracksAppearInTheClusterTrace) {
  mpi::Cluster& cluster = traced_cluster();
  obs::Recorder& rec = *cluster.recorder();
  ASSERT_GT(rec.samples().size(), 0u);  // nmad core sampled its scheduler state

  std::ostringstream os;
  obs::write_chrome_trace(rec, os);
  const std::string json = os.str();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""), rec.samples().size());
  EXPECT_NE(json.find("\"ph\":\"C\",\"name\":\"nmad.strategy.queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"nmad.sched.backlog_bytes.rail=0\""), std::string::npos);
}

TEST(Exporters, EventsCsvHasOneRowPerRecord) {
  mpi::Cluster& cluster = traced_cluster();
  obs::Recorder& rec = *cluster.recorder();
  std::ostringstream os;
  obs::write_events_csv(rec, os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("t_us,rank,category,phase,span,bytes,arg\n", 0), 0u);
  EXPECT_EQ(count_occurrences(csv, "\n"), rec.size() + 1);  // header + one per record
}

TEST(Exporters, MetricsCsvCarriesTheHeadlineSeries) {
  mpi::Cluster& cluster = traced_cluster();
  std::ostringstream os;
  obs::write_metrics_csv(*cluster.recorder(), os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("counter,nmad.rail.tx_bytes,rail=0,"), std::string::npos);
  EXPECT_NE(csv.find("counter,pioman.passes,,"), std::string::npos);
  EXPECT_NE(csv.find("hist,nmad.rdv.handshake_us,,count,"), std::string::npos);
  EXPECT_NE(csv.find("counter,mpi.send.bytes,,"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Legacy sim::Tracer shim
// ---------------------------------------------------------------------------

TEST(TracerShim, SummaryMatchesTheRecorderStream) {
  mpi::Cluster& cluster = traced_cluster();
  const sim::Tracer& tr = *cluster.tracer();
  const obs::Recorder& rec = tr.recorder();

  // The shim's per-category summary counts each span once (at its Begin), so
  // it must agree with a direct scan of the records that skips Ends.
  auto summary = tr.summary();
  std::map<obs::Cat, std::uint64_t> expect_count;
  std::map<obs::Cat, std::uint64_t> expect_bytes;
  for (const obs::Record& r : rec.records()) {
    if (r.ph == obs::Ph::End) continue;
    ++expect_count[r.cat];
    expect_bytes[r.cat] += r.bytes;
  }
  for (const auto& [cat, s] : summary) {
    EXPECT_EQ(s.count, expect_count[cat]) << obs::to_string(cat);
    EXPECT_EQ(s.bytes, expect_bytes[cat]) << obs::to_string(cat);
  }
  EXPECT_EQ(summary.size(), expect_count.size());

  // events() is the same stream minus the Ends, still time-ordered.
  const auto ev = tr.events();
  EXPECT_EQ(ev.size(), rec.size() - rec.spans_ended());
}

// ---------------------------------------------------------------------------
// Per-category enable masks
// ---------------------------------------------------------------------------

TEST(Recorder, CategoryEnableMaskSuppressesRecords) {
  obs::Recorder rec;
  EXPECT_TRUE(rec.enabled(obs::Cat::Compute));
  rec.set_enabled(obs::Cat::Compute, false);
  EXPECT_FALSE(rec.enabled(obs::Cat::Compute));

  // A disabled category records nothing through any entry point, and the
  // 0 span id from begin() makes the matching end() a no-op.
  const obs::SpanId dead = rec.begin(1.0, 0, obs::Cat::Compute);
  EXPECT_EQ(dead, 0u);
  rec.end(2.0, 0, obs::Cat::Compute, dead);
  rec.instant(1.0, 0, obs::Cat::Compute);
  rec.link(1.0, 0, obs::Cat::Compute, 7);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.spans_begun(), 0u);

  // Other categories are unaffected.
  const obs::SpanId live = rec.begin(1.0, 0, obs::Cat::MpiWait);
  EXPECT_NE(live, 0u);
  rec.end(2.0, 0, obs::Cat::MpiWait, live);
  EXPECT_EQ(rec.size(), 2u);

  rec.set_enabled(obs::Cat::Compute, true);
  EXPECT_NE(rec.begin(3.0, 0, obs::Cat::Compute), 0u);
}

TEST(Recorder, EnableMaskRoundTripsAndSurvivesClear) {
  obs::Recorder rec;
  const std::uint32_t all = rec.enabled_mask();
  rec.set_enabled(obs::Cat::ShmCell, false);
  EXPECT_EQ(rec.enabled_mask(),
            all & ~(1u << static_cast<unsigned>(obs::Cat::ShmCell)));
  rec.clear();  // mask is configuration, not data
  EXPECT_FALSE(rec.enabled(obs::Cat::ShmCell));
  rec.set_enabled_mask(all);
  EXPECT_TRUE(rec.enabled(obs::Cat::ShmCell));
}

// ---------------------------------------------------------------------------
// Exporter: dangling-Begin truncation
// ---------------------------------------------------------------------------

TEST(ChromeExport, SynthesizesCloseForDanglingBegins) {
  obs::Recorder rec;
  const obs::SpanId a = rec.begin(1.0, 0, obs::Cat::Compute);
  rec.end(2.0, 0, obs::Cat::Compute, a);
  rec.begin(1.5, 0, obs::Cat::MpiWait);  // End never recorded

  std::ostringstream os;
  obs::write_chrome_trace(rec, os);
  const std::string json = os.str();

  // The dangling span still renders as a complete slice, closed at trace
  // end and flagged, and the truncation counter ticks.
  EXPECT_EQ(count_occurrences(json, "\"truncated\":1"), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(obs::chrome_event_count(rec), 2u);
  const obs::Counter* c = rec.metrics().find_counter("nmad.obs.truncated_spans");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 1u);
}

}  // namespace
}  // namespace nmx
