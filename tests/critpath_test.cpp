// Tests for critical-path extraction (obs/critpath) and the re-timing
// latency-tolerance model (obs/lat_tolerance) on hand-built synthetic
// traces where the true critical path is known: category breakdown,
// landing tie-breaking, multi-rail overlap, unresolved-wait fallback, the
// whole-trace window, and the model's baseline exactness + perturbation
// response. End-to-end acceptance assertions on real NAS traces live in
// report_test.cpp (ctest label "report").
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "obs/critpath.hpp"
#include "obs/lat_tolerance.hpp"
#include "obs/recorder.hpp"

namespace nmx {
namespace {

using obs::Cat;

/// Segments must tile [t_begin, t_end] back to back.
void expect_tiling(const obs::IterPath& p) {
  ASSERT_FALSE(p.segments.empty());
  EXPECT_NEAR(p.segments.front().t0, p.t_begin, 1e-9);
  EXPECT_NEAR(p.segments.back().t1, p.t_end, 1e-9);
  for (std::size_t i = 1; i < p.segments.size(); ++i) {
    EXPECT_NEAR(p.segments[i - 1].t1, p.segments[i].t0, 1e-9);
  }
  EXPECT_NEAR(p.path_sum(), p.wall(), 1e-9);
}

struct Synthetic {
  obs::Recorder rec;
  obs::SpanId send = 0;
  obs::SpanId recv = 0;
};

/// Two ranks, one iteration on window [0, 10]:
///   rank 0: compute [0,3], MsgSend posted t=3 (eager, completes at 3.2),
///           compute [3.2,9], Iter ends at 9
///   rank 1: compute [0,2], MsgRecv posted t=2, MpiWait [2,6] resolved by
///           the message (wire landings given by `landings`, matched at 6),
///           compute [6,10], Iter ends at 10  -> rank 1 is the walk start
/// Known critical path: compute [6,10] + message jump + compute [0,3].
Synthetic make_trace(const std::vector<std::pair<double, int>>& landings) {
  Synthetic s;
  obs::Recorder& rec = s.rec;

  const obs::SpanId it0 = rec.begin(0.0, 0, Cat::Iter, 0, 0);
  const obs::SpanId c00 = rec.begin(0.0, 0, Cat::Compute);
  rec.end(3.0, 0, Cat::Compute, c00);
  s.send = rec.begin(3.0, 0, Cat::MsgSend, 1000, 1);
  rec.end(3.2, 0, Cat::MsgSend, s.send, 1000, 1);
  const obs::SpanId c01 = rec.begin(3.2, 0, Cat::Compute);
  rec.end(9.0, 0, Cat::Compute, c01);
  rec.end(9.0, 0, Cat::Iter, it0, 0, 0);

  const obs::SpanId it1 = rec.begin(0.0, 1, Cat::Iter, 0, 0);
  const obs::SpanId c10 = rec.begin(0.0, 1, Cat::Compute);
  rec.end(2.0, 1, Cat::Compute, c10);
  s.recv = rec.begin(2.0, 1, Cat::MsgRecv, 1000, 0);
  const obs::SpanId w = rec.begin(2.0, 1, Cat::MpiWait);
  for (const auto& [t, rail] : landings) {
    rec.link(t, 1, Cat::WireLand, s.send, 1000, rail);
  }
  rec.link(6.0, 1, Cat::MsgMatch, s.recv, 1000,
           static_cast<std::int64_t>(s.send));
  rec.end(6.0, 1, Cat::MsgRecv, s.recv, 1000, 0);
  rec.end(6.0, 1, Cat::MpiWait, w, 0, static_cast<std::int64_t>(s.recv));
  const obs::SpanId c11 = rec.begin(6.0, 1, Cat::Compute);
  rec.end(10.0, 1, Cat::Compute, c11);
  rec.end(10.0, 1, Cat::Iter, it1, 0, 0);
  return s;
}

TEST(CritPath, BackwardWalkSplitsWireAndDeliveryTail) {
  Synthetic s = make_trace({{5.5, 0}});
  const obs::CritPathResult cp = obs::extract_critical_path(s.rec);

  ASSERT_EQ(cp.iterations.size(), 1u);
  const obs::IterPath& p = cp.iterations[0];
  EXPECT_EQ(p.iter, 0);
  EXPECT_NEAR(p.wall(), 10.0, 1e-12);
  expect_tiling(p);

  // compute [6,10] + [0,3]; wire [3,5.5] on rail 0; sw tail [5.5,6].
  EXPECT_NEAR(p.compute, 7.0, 1e-9);
  EXPECT_NEAR(p.wire, 2.5, 1e-9);
  EXPECT_NEAR(p.sw, 0.5, 1e-9);
  EXPECT_NEAR(p.blocked, 0.0, 1e-9);
  ASSERT_EQ(p.wire_by_rail.count(0), 1u);
  EXPECT_NEAR(p.wire_by_rail.at(0), 2.5, 1e-9);

  // The wire segment names the sender's span; the walk crossed to rank 0.
  bool saw_wire = false;
  for (const obs::PathSegment& seg : p.segments) {
    if (seg.kind == obs::SegKind::Wire) {
      saw_wire = true;
      EXPECT_EQ(seg.cause, s.send);
      EXPECT_EQ(seg.rail, 0);
    }
  }
  EXPECT_TRUE(saw_wire);
}

TEST(CritPath, SimultaneousLandingsBreakTiesToLowestRail) {
  Synthetic s = make_trace({{5.5, 2}, {5.5, 1}});
  const obs::CritPathResult cp = obs::extract_critical_path(s.rec);
  ASSERT_EQ(cp.iterations.size(), 1u);
  const obs::IterPath& p = cp.iterations[0];
  expect_tiling(p);
  ASSERT_EQ(p.wire_by_rail.size(), 1u);
  EXPECT_EQ(p.wire_by_rail.begin()->first, 1);  // lowest rail among the tie
  EXPECT_NEAR(p.wire_by_rail.at(1), 2.5, 1e-9);
}

TEST(CritPath, MultiRailOverlapAttributesLatestLanding) {
  // Stripes land on rail 0 at 5.0 and rail 1 at 5.5: the message is only
  // complete when the last stripe lands, so rail 1 carries the path.
  Synthetic s = make_trace({{5.0, 0}, {5.5, 1}});
  const obs::CritPathResult cp = obs::extract_critical_path(s.rec);
  ASSERT_EQ(cp.iterations.size(), 1u);
  const obs::IterPath& p = cp.iterations[0];
  expect_tiling(p);
  ASSERT_EQ(p.wire_by_rail.size(), 1u);
  EXPECT_EQ(p.wire_by_rail.begin()->first, 1);
  EXPECT_NEAR(p.wire_by_rail.at(1), 2.5, 1e-9);
  EXPECT_NEAR(p.sw, 0.5, 1e-9);
}

TEST(CritPath, NoLandingsMeansLocalTransport) {
  // shm/self messages never cross a NIC: the whole stretch from send post
  // to wait end is wire on pseudo-rail -1.
  Synthetic s = make_trace({});
  const obs::CritPathResult cp = obs::extract_critical_path(s.rec);
  ASSERT_EQ(cp.iterations.size(), 1u);
  const obs::IterPath& p = cp.iterations[0];
  expect_tiling(p);
  EXPECT_NEAR(p.wire, 3.0, 1e-9);  // [3,6]
  EXPECT_NEAR(p.sw, 0.0, 1e-9);
  ASSERT_EQ(p.wire_by_rail.count(-1), 1u);
}

TEST(CritPath, UnresolvedWaitFallsBackToBlocked) {
  obs::Recorder rec;
  const obs::SpanId it = rec.begin(0.0, 0, Cat::Iter, 0, 0);
  const obs::SpanId c0 = rec.begin(0.0, 0, Cat::Compute);
  rec.end(2.0, 0, Cat::Compute, c0);
  const obs::SpanId w = rec.begin(2.0, 0, Cat::MpiWait);
  rec.end(6.0, 0, Cat::MpiWait, w, 0, 0);  // arg 0: cause unknown
  const obs::SpanId c1 = rec.begin(6.0, 0, Cat::Compute);
  rec.end(10.0, 0, Cat::Compute, c1);
  rec.end(10.0, 0, Cat::Iter, it, 0, 0);

  const obs::CritPathResult cp = obs::extract_critical_path(rec);
  ASSERT_EQ(cp.iterations.size(), 1u);
  const obs::IterPath& p = cp.iterations[0];
  expect_tiling(p);
  EXPECT_NEAR(p.compute, 6.0, 1e-9);
  EXPECT_NEAR(p.blocked, 4.0, 1e-9);
}

TEST(CritPath, TraceWithoutIterSpansGetsWholeTraceWindow) {
  obs::Recorder rec;
  const obs::SpanId c0 = rec.begin(1.0, 0, Cat::Compute);
  rec.end(4.0, 0, Cat::Compute, c0);
  const obs::SpanId c1 = rec.begin(1.0, 1, Cat::Compute);
  rec.end(5.0, 1, Cat::Compute, c1);

  const obs::SpanIndex idx = obs::build_span_index(rec);
  EXPECT_TRUE(idx.synthetic_window);
  ASSERT_EQ(idx.iters.size(), 1u);
  EXPECT_EQ(idx.iters[0].iter, -1);
  EXPECT_EQ(idx.iters[0].end_rank, 1);  // rank 1's activity ends last

  const obs::CritPathResult cp = obs::extract_critical_path(idx);
  ASSERT_EQ(cp.iterations.size(), 1u);
  const obs::IterPath& p = cp.iterations[0];
  EXPECT_NEAR(p.wall(), 4.0, 1e-12);  // [1,5]
  expect_tiling(p);
}

// ---------------------------------------------------------------------------
// Re-timing model
// ---------------------------------------------------------------------------

std::vector<obs::RailParam> two_rails() {
  // beta chosen so 1000 bytes at half bandwidth cost exactly +1s extra.
  return {{"r0", 1e-6, 1000.0}, {"r1", 1e-6, 1000.0}};
}

TEST(LatTolerance, BaselineReproducesMeasuredWallExactly) {
  Synthetic s = make_trace({{5.5, 0}});
  const obs::SpanIndex idx = obs::build_span_index(s.rec);
  obs::RetimeModel model(idx, two_rails());
  EXPECT_NEAR(model.measured_wall(), 10.0, 1e-12);
  EXPECT_NEAR(model.baseline_wall(), 10.0, 1e-9);
}

TEST(LatTolerance, LatencyOnCriticalRailShiftsWallOneForOne) {
  Synthetic s = make_trace({{5.5, 0}});
  const obs::SpanIndex idx = obs::build_span_index(s.rec);
  obs::RetimeModel model(idx, two_rails());

  obs::Perturbation p;
  p.add_lambda[0] = 1.0;
  // The message is on the critical path and the blocked time after the
  // landing is not slack-rich enough to absorb it: +1s latency -> +1s wall.
  EXPECT_NEAR(model.predict(p), 11.0, 1e-9);

  obs::Perturbation q;
  q.add_lambda[1] = 1.0;  // rail 1 carries nothing
  EXPECT_NEAR(model.predict(q), 10.0, 1e-9);
}

TEST(LatTolerance, BandwidthScalingUsesCarriedBytes) {
  Synthetic s = make_trace({{5.5, 0}});
  const obs::SpanIndex idx = obs::build_span_index(s.rec);
  obs::RetimeModel model(idx, two_rails());
  obs::Perturbation p;
  p.beta_scale[0] = 0.5;  // 1000 B at 1000 B/s: 1s -> 2s, delta = +1s
  EXPECT_NEAR(model.predict(p), 11.0, 1e-9);
}

TEST(LatTolerance, ToleranceBisectionFindsLinearResponse) {
  Synthetic s = make_trace({{5.5, 0}});
  const obs::SpanIndex idx = obs::build_span_index(s.rec);
  const obs::CritPathResult cp = obs::extract_critical_path(idx);
  const obs::ToleranceReport rep =
      obs::analyze_latency_tolerance(idx, cp, two_rails());

  EXPECT_NEAR(rep.measured_wall, 10.0, 1e-12);
  EXPECT_LT(rep.model_error, 1e-9);
  EXPECT_EQ(rep.critical_rail, 0);
  ASSERT_EQ(rep.rails.size(), 2u);
  // Wall is 10 + add on rail 0, so the thresholds sit at exactly the growth
  // fractions; the search bound declares rail 1 latency-insensitive.
  EXPECT_NEAR(rep.rails[0].tol_1pct, 0.1, 1e-3);
  EXPECT_NEAR(rep.rails[0].tol_5pct, 0.5, 1e-3);
  EXPECT_NEAR(rep.rails[0].tol_10pct, 1.0, 1e-3);
  EXPECT_LT(rep.rails[1].tol_10pct, 0.0);
  EXPECT_EQ(rep.sweep.size(), 8u);  // 2 rails x 4 lambda scales
}

}  // namespace
}  // namespace nmx
