// Unit tests for the discrete-event core: event ordering, actor lifecycle,
// virtual time, conditions, deadlock detection and determinism.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"
#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace nmx::sim {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(3e-6, [&] { order.push_back(3); });
  eng.schedule(1e-6, [&] { order.push_back(1); });
  eng.schedule(2e-6, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3e-6);
  EXPECT_EQ(eng.events_processed(), 3u);
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule(1e-6, [&, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, CancelledEventsDoNotRun) {
  Engine eng;
  int ran = 0;
  const EventId id = eng.schedule(1e-6, [&] { ran = 1; });
  eng.schedule(2e-6, [&] { ran += 10; });
  eng.cancel(id);
  eng.run();
  EXPECT_EQ(ran, 10);
}

TEST(Engine, PastEventsClampToNow) {
  Engine eng;
  Time seen = -1;
  eng.schedule(5e-6, [&] {
    eng.schedule(1e-6, [&] { seen = eng.now(); });  // "in the past"
  });
  eng.run();
  EXPECT_DOUBLE_EQ(seen, 5e-6);
}

TEST(Engine, EventsScheduledInsideEventsRun) {
  Engine eng;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) eng.schedule_in(1e-6, recurse);
  };
  eng.schedule(0, recurse);
  eng.run();
  EXPECT_EQ(depth, 5);
}

TEST(Actor, SleepAdvancesVirtualTime) {
  Engine eng;
  Time t1 = -1, t2 = -1;
  eng.spawn("a", [&](Actor& self) {
    t1 = eng.now();
    self.sleep_for(10e-6);
    t2 = eng.now();
  });
  eng.run();
  EXPECT_DOUBLE_EQ(t1, 0.0);
  EXPECT_DOUBLE_EQ(t2, 10e-6);
}

TEST(Actor, SleepIsNotInterruptibleByWake) {
  Engine eng;
  Time woke_at = -1;
  Actor& a = eng.spawn("sleeper", [&](Actor& self) {
    self.sleep_for(10e-6);
    woke_at = eng.now();
  });
  eng.schedule(1e-6, [&] { a.wake(); });
  eng.run();
  EXPECT_DOUBLE_EQ(woke_at, 10e-6);
}

TEST(Actor, BlockAndWake) {
  Engine eng;
  Time woke_at = -1;
  Actor& a = eng.spawn("blocker", [&](Actor& self) {
    self.block();
    woke_at = eng.now();
  });
  eng.schedule(4e-6, [&] { a.wake(); });
  eng.run();
  EXPECT_DOUBLE_EQ(woke_at, 4e-6);
}

TEST(Actor, DoubleWakeIsHarmless) {
  Engine eng;
  int resumes = 0;
  Actor& a = eng.spawn("b", [&](Actor& self) {
    self.block();
    ++resumes;
    self.sleep_for(1e-6);  // a stale second resume must not interrupt this
    ++resumes;
  });
  eng.schedule(1e-6, [&] {
    a.wake();
    a.wake();
  });
  eng.run();
  EXPECT_EQ(resumes, 2);
}

TEST(Actor, BlockUntilTimesOut) {
  Engine eng;
  bool woken = true;
  Time at = -1;
  eng.spawn("t", [&](Actor& self) {
    woken = self.block_until(5e-6);
    at = eng.now();
  });
  eng.run();
  EXPECT_FALSE(woken);
  EXPECT_DOUBLE_EQ(at, 5e-6);
}

TEST(Actor, BlockUntilWokenBeforeDeadline) {
  Engine eng;
  bool woken = false;
  Time at = -1;
  Actor& a = eng.spawn("t", [&](Actor& self) {
    woken = self.block_until(5e-6);
    at = eng.now();
  });
  eng.schedule(2e-6, [&] { a.wake(); });
  eng.run();
  EXPECT_TRUE(woken);
  EXPECT_DOUBLE_EQ(at, 2e-6);
  eng.run();  // the stale timeout event at 5us must be ignored
}

TEST(Actor, TwoActorsHandshake) {
  Engine eng;
  int state = 0;
  Actor* b_ptr = nullptr;
  Actor& a = eng.spawn("a", [&](Actor& self) {
    state = 1;
    self.block();
    EXPECT_EQ(state, 2);
    state = 3;
    b_ptr->wake();
  });
  Actor& b = eng.spawn("b", [&](Actor& self) {
    EXPECT_EQ(state, 1);  // spawn order = run order at equal time
    state = 2;
    a.wake();
    self.block();
    EXPECT_EQ(state, 3);
    state = 4;
  });
  b_ptr = &b;
  eng.run();
  EXPECT_EQ(state, 4);
}

TEST(Engine, DeadlockIsDetectedAndNamed) {
  Engine eng;
  eng.spawn("stuck-actor", [&](Actor& self) { self.block(); });
  try {
    eng.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("stuck-actor"), std::string::npos);
  }
}

TEST(Engine, ActorExceptionsPropagate) {
  Engine eng;
  eng.spawn("thrower", [&](Actor&) { throw std::runtime_error("boom"); });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, SpawnDuringRun) {
  Engine eng;
  Time spawned_ran_at = -1;
  eng.spawn("parent", [&](Actor& self) {
    self.sleep_for(2e-6);
    eng.spawn("child", [&](Actor& child) {
      child.sleep_for(1e-6);
      spawned_ran_at = eng.now();
    });
    self.sleep_for(5e-6);
  });
  eng.run();
  EXPECT_DOUBLE_EQ(spawned_ran_at, 3e-6);
}

TEST(Condition, NotifyOneWakesFifo) {
  Engine eng;
  Condition cv;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    // Built via append: `"w" + std::to_string(i)` trips a GCC 12 -Wrestrict
    // false positive when inlined at -O3.
    std::string name = "w";
    name += std::to_string(i);
    eng.spawn(name, [&, i](Actor& self) {
      cv.wait(self);
      order.push_back(i);
    });
  }
  eng.schedule(1e-6, [&] { cv.notify_one(); });
  eng.schedule(2e-6, [&] { cv.notify_one(); });
  eng.schedule(3e-6, [&] { cv.notify_one(); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Condition, NotifyAllWakesEveryone) {
  Engine eng;
  Condition cv;
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    std::string name = "w";  // append form: see NotifyOneWakesFifo
    name += std::to_string(i);
    eng.spawn(name, [&](Actor& self) {
      cv.wait(self);
      ++woke;
    });
  }
  eng.schedule(1e-6, [&] { cv.notify_all(); });
  eng.run();
  EXPECT_EQ(woke, 5);
}

TEST(Condition, WaitUntilTimeoutLeavesQueueClean) {
  Engine eng;
  Condition cv;
  bool woken = true;
  eng.spawn("w", [&](Actor& self) { woken = cv.wait_until(self, 2e-6); });
  eng.run();
  EXPECT_FALSE(woken);
  EXPECT_EQ(cv.waiter_count(), 0u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Xoshiro256 r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Units, LiteralsCompose) {
  EXPECT_DOUBLE_EQ(1.5_us, 1.5e-6);
  EXPECT_DOUBLE_EQ(2_ns, 2e-9);
  EXPECT_EQ(64_KiB, 65536u);
  EXPECT_DOUBLE_EQ(to_MBps(1048576.0), 1.0);
}

}  // namespace
}  // namespace nmx::sim
