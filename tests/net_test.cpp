// Network substrate tests: channel reservation, uncontended transfer math,
// NIC contention (egress and ingress serialization), topology mappings and
// per-process routing.
#include <gtest/gtest.h>

#include "net/calibration.hpp"
#include "net/fabric.hpp"
#include "net/router.hpp"

namespace nmx::net {
namespace {

TEST(Channel, ReservationsSerialize) {
  Channel ch;
  auto a = ch.reserve(0.0, 2.0);
  EXPECT_DOUBLE_EQ(a.begin, 0.0);
  EXPECT_DOUBLE_EQ(a.end, 2.0);
  auto b = ch.reserve(1.0, 3.0);  // wants to start while busy
  EXPECT_DOUBLE_EQ(b.begin, 2.0);
  EXPECT_DOUBLE_EQ(b.end, 5.0);
  auto c = ch.reserve(10.0, 1.0);  // idle gap
  EXPECT_DOUBLE_EQ(c.begin, 10.0);
}

TEST(Topology, BlockedMappingFillsNodesInOrder) {
  Topology t = Topology::blocked(3, 7, {ib_profile()});
  // ceil(7/3) = 3 per node: 0,1,2 | 3,4,5 | 6
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(2), 0);
  EXPECT_EQ(t.node_of(3), 1);
  EXPECT_EQ(t.node_of(6), 2);
  EXPECT_TRUE(t.same_node(0, 2));
  EXPECT_FALSE(t.same_node(2, 3));
}

TEST(Topology, CyclicMappingScatters) {
  Topology t = Topology::cyclic(10, 16, {ib_profile()});
  for (int p = 0; p < 16; ++p) EXPECT_EQ(t.node_of(p), p % 10);
  // "in the 8 processes case, only one process runs on a node"
  Topology t8 = Topology::cyclic(10, 8, {ib_profile()});
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) EXPECT_FALSE(t8.same_node(a, b));
  }
}

struct FabricFixture : ::testing::Test {
  sim::Engine eng;
  Topology topo = Topology::blocked(3, 3, {ib_profile()});
  Fabric fabric{eng, topo};
  std::vector<std::pair<Time, int>> arrivals;  // (time, src_node)

  void listen(int node) {
    fabric.register_rx(node, 0, [this](WirePacket&& p) {
      arrivals.emplace_back(eng.now(), p.src_node);
    });
  }
  WirePacket pkt(int src, int dst, std::size_t bytes) {
    WirePacket p;
    p.src_node = src;
    p.dst_node = dst;
    p.dst_proc = dst;
    p.rail = 0;
    p.bytes = bytes;
    return p;
  }
};

TEST_F(FabricFixture, UncontendedTransferMatchesModel) {
  listen(1);
  fabric.transmit(pkt(0, 1, 4096));
  eng.run();
  ASSERT_EQ(arrivals.size(), 1u);
  const NicProfile& prof = fabric.profile(0);
  EXPECT_NEAR(arrivals[0].first, prof.wire_latency + prof.occupancy(4096), 1e-12);
  EXPECT_NEAR(fabric.uncontended_time(0, 4096), arrivals[0].first, 1e-12);
}

TEST_F(FabricFixture, EgressSerializesSameSender) {
  listen(1);
  fabric.transmit(pkt(0, 1, 1 << 20));
  fabric.transmit(pkt(0, 1, 1 << 20));
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const Time occupancy = fabric.profile(0).occupancy(1 << 20);
  EXPECT_NEAR(arrivals[1].first - arrivals[0].first, occupancy, 1e-9);
}

TEST_F(FabricFixture, IngressSerializesDifferentSenders) {
  // Two senders to one node: the receiving NIC is the bottleneck — this is
  // the many-processes-per-node contention of the NAS testbed.
  listen(2);
  fabric.transmit(pkt(0, 2, 1 << 20));
  fabric.transmit(pkt(1, 2, 1 << 20));
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const Time occupancy = fabric.profile(0).occupancy(1 << 20);
  EXPECT_NEAR(arrivals[1].first - arrivals[0].first, occupancy, occupancy * 0.05);
}

TEST_F(FabricFixture, DistinctPairsDoNotContend) {
  listen(1);
  listen(2);
  fabric.transmit(pkt(0, 1, 1 << 20));
  fabric.transmit(pkt(2, 1, 64));  // tiny message into the same ingress: queues
  eng.run();
  // Both arrive; order by completion time.
  ASSERT_EQ(arrivals.size(), 2u);
}

TEST_F(FabricFixture, LoopbackIsRejected) {
  EXPECT_THROW(fabric.transmit(pkt(1, 1, 64)), AssertionError);
}

TEST(Router, DispatchesByDestinationProcess) {
  sim::Engine eng;
  Topology topo = Topology::blocked(2, 4, {ib_profile()});  // procs 0,1 | 2,3
  Fabric fabric(eng, topo);
  ProcRouter r0(fabric, 0);
  ProcRouter r1(fabric, 1);
  int got2 = 0, got3 = 0;
  r1.register_proc(2, [&](WirePacket&&) { ++got2; });
  r1.register_proc(3, [&](WirePacket&&) { ++got3; });
  r0.register_proc(0, [](WirePacket&&) {});
  r0.register_proc(1, [](WirePacket&&) {});

  WirePacket p;
  p.src_node = 0;
  p.dst_node = 1;
  p.rail = 0;
  p.bytes = 64;
  p.dst_proc = 2;
  fabric.transmit(p);
  p.dst_proc = 3;
  fabric.transmit(p);
  p.dst_proc = 3;
  fabric.transmit(std::move(p));
  eng.run();
  EXPECT_EQ(got2, 1);
  EXPECT_EQ(got3, 2);
}

TEST(Profiles, PaperCalibration) {
  const NicProfile ib = ib_profile();
  const NicProfile mx = mx_profile();
  EXPECT_TRUE(ib.needs_registration);
  EXPECT_FALSE(mx.needs_registration);
  EXPECT_LT(ib.wire_latency, mx.wire_latency);  // IB is the low-latency rail
  EXPECT_GT(ib.bandwidth, mx.bandwidth);
  // Raw one-way small-message time ~ 1.2 us (§4.1.1).
  EXPECT_NEAR(ib.wire_latency + ib.occupancy(1), 1.2e-6, 0.05e-6);
}

}  // namespace
}  // namespace nmx::net
