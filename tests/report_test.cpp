// Acceptance tests for the critical-path / latency-tolerance reports on
// real NAS traces (ctest label "report"):
//   * the fig8 testbed's CG at 32 ranks produces per-iteration critical
//     paths that tile the measured iteration wall within 1%, and the
//     re-timing model's self-check reproduces the measured wall;
//   * inflating the critical rail's latency by the reported 10%-growth
//     tolerance moves the *simulated* wall by >= 5%, while the same
//     inflation on an unused rail moves it by < 1% — the model's what-if
//     answers hold up against actually re-running the simulation.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sidecar.hpp"
#include "mpi/cluster.hpp"
#include "nas/nas.hpp"
#include "obs/report.hpp"

namespace nmx {
namespace {

mpi::ClusterConfig fig8_testbed(int procs) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 10;
  cfg.procs = procs;
  cfg.rails = {net::ib_profile()};
  cfg.cyclic_mapping = true;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  return cfg;
}

nas::NasResult run_cg(const mpi::ClusterConfig& cfg, mpi::Cluster*& out,
                      double fraction = 0.03) {
  static std::vector<mpi::Cluster*> keep;  // keep traces alive for analysis
  keep.push_back(new mpi::Cluster(cfg));
  out = keep.back();
  nas::NasConfig nc;
  nc.cls = nas::NasClass::S;  // wall scales with class; path structure doesn't
  nc.iter_fraction = fraction;
  return nas::run_nas(*out, "CG", nc);
}

TEST(Report, Fig8CgCriticalPathTilesIterationWall) {
  mpi::ClusterConfig cfg = fig8_testbed(32);
  cfg.trace = true;
  mpi::Cluster* cluster = nullptr;
  run_cg(cfg, cluster);

  const obs::RunReport run =
      harness::analyze_cluster(*cluster, "CG/32procs/MPICH2-NMad");
  const obs::CritPathResult& cp = run.critpath;
  ASSERT_GE(cp.iterations.size(), 2u);
  for (const obs::IterPath& it : cp.iterations) {
    ASSERT_GT(it.wall(), 0.0);
    // Acceptance: per-iteration critical path sums to the measured wall
    // within 1% (by construction the tiling is exact; 1% is the gate).
    EXPECT_NEAR(it.path_sum(), it.wall(), 0.01 * it.wall());
    // Segments are contiguous from window start to end.
    ASSERT_FALSE(it.segments.empty());
    EXPECT_NEAR(it.segments.front().t0, it.t_begin, 1e-9);
    EXPECT_NEAR(it.segments.back().t1, it.t_end, 1e-9);
    for (std::size_t i = 1; i < it.segments.size(); ++i) {
      EXPECT_NEAR(it.segments[i - 1].t1, it.segments[i].t0, 1e-9);
    }
  }
  // Every category shows up with a sane share on this workload: CG class S
  // at 32 ranks is communication-heavy.
  EXPECT_GT(cp.wire, 0.0);
  EXPECT_GT(cp.compute, 0.0);
  // Model self-check: the re-timed DAG reproduces the measured wall.
  EXPECT_LT(run.tolerance.model_error, 1e-6);
}

TEST(Report, InflatingCriticalRailLatencyByToleranceMovesTheWall) {
  // Two rails, every rank pinned to rail 0: rail 0 carries all wire
  // traffic (critical), rail 1 none. Pinning also stops the strategy from
  // routing around the slowdown, which would otherwise soften the check.
  mpi::ClusterConfig cfg = fig8_testbed(16);
  cfg.rails = {net::ib_profile(), net::mx_profile()};
  for (int p = 0; p < cfg.procs; ++p) cfg.rank_rails[p] = {0};
  cfg.trace = true;

  mpi::Cluster* cluster = nullptr;
  const double base = run_cg(cfg, cluster).seconds;
  ASSERT_GT(base, 0.0);

  const obs::RunReport run = harness::analyze_cluster(*cluster, "CG/16procs");
  ASSERT_EQ(run.tolerance.critical_rail, 0);
  ASSERT_EQ(run.tolerance.rails.size(), 2u);
  const double tol = run.tolerance.rails[0].tol_10pct;
  ASSERT_GT(tol, 0.0);
  // Rail 1 carries nothing: the model reports it latency-insensitive.
  EXPECT_LT(run.tolerance.rails[1].tol_10pct, 0.0);

  // Re-run the simulation with rail 0's latency inflated by the reported
  // tolerance: the model promised ~10% growth, the acceptance bar is >= 5%.
  mpi::ClusterConfig slow0 = cfg;
  slow0.trace = false;
  slow0.rails[0].wire_latency += tol;
  mpi::Cluster* c0 = nullptr;
  const double pert0 = run_cg(slow0, c0).seconds;
  EXPECT_GE((pert0 - base) / base, 0.05)
      << "base=" << base << " pert=" << pert0 << " tol=" << tol;

  // Same inflation on the unused rail must not move the wall (< 1%).
  mpi::ClusterConfig slow1 = cfg;
  slow1.trace = false;
  slow1.rails[1].wire_latency += tol;
  mpi::Cluster* c1 = nullptr;
  const double pert1 = run_cg(slow1, c1).seconds;
  EXPECT_LT(std::abs(pert1 - base) / base, 0.01)
      << "base=" << base << " pert=" << pert1 << " tol=" << tol;
}

TEST(Report, JsonSidecarRoundTrips) {
  mpi::ClusterConfig cfg = fig8_testbed(8);
  cfg.trace = true;
  mpi::Cluster* cluster = nullptr;
  run_cg(cfg, cluster);

  obs::Report rep;
  rep.bench = "report_test";
  rep.runs.push_back(harness::analyze_cluster(*cluster, "CG/8procs"));
  std::ostringstream os;
  obs::write_report(rep, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"nmx-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"wire_share\":"), std::string::npos);
  EXPECT_NE(json.find("\"tol_10pct\":"), std::string::npos);
  // Balanced braces is a cheap well-formedness proxy (no JSON lib here;
  // CI additionally json.load()s the real sidecar).
  long depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace nmx
