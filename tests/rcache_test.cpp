// Registration-cache unit tests: hit/miss accounting, interval merging,
// partial coverage, LRU eviction.
#include <gtest/gtest.h>

#include "net/calibration.hpp"
#include "rcache/rcache.hpp"

namespace nmx::rcache {
namespace {

Time unit_cost(std::size_t bytes) { return static_cast<double>(bytes); }

TEST(Rcache, FirstAcquireIsAMiss) {
  RegistrationCache rc(1 << 20, unit_cost);
  EXPECT_DOUBLE_EQ(rc.acquire(0x1000, 4096), 4096.0);
  EXPECT_EQ(rc.misses(), 1u);
  EXPECT_EQ(rc.hits(), 0u);
  EXPECT_EQ(rc.pinned_bytes(), 4096u);
}

TEST(Rcache, RepeatAcquireIsAFreeHit) {
  RegistrationCache rc(1 << 20, unit_cost);
  rc.acquire(0x1000, 4096);
  EXPECT_DOUBLE_EQ(rc.acquire(0x1000, 4096), 0.0);
  EXPECT_EQ(rc.hits(), 1u);
}

TEST(Rcache, SubrangeOfCachedRegionIsAHit) {
  RegistrationCache rc(1 << 20, unit_cost);
  rc.acquire(0x1000, 8192);
  EXPECT_DOUBLE_EQ(rc.acquire(0x1800, 1024), 0.0);
  EXPECT_EQ(rc.hits(), 1u);
}

TEST(Rcache, PartialOverlapChargesOnlyUncoveredBytes) {
  RegistrationCache rc(1 << 20, unit_cost);
  rc.acquire(0x1000, 4096);  // [0x1000, 0x2000)
  // [0x1800, 0x2800): 0x800 covered, 0x800 new.
  EXPECT_DOUBLE_EQ(rc.acquire(0x1800, 4096), 2048.0);
  EXPECT_EQ(rc.pinned_bytes(), 0x1800u);  // merged [0x1000, 0x2800)
}

TEST(Rcache, AdjacentRegionsMerge) {
  RegistrationCache rc(1 << 20, unit_cost);
  rc.acquire(0x1000, 4096);
  rc.acquire(0x2000, 4096);  // touches the first region
  EXPECT_DOUBLE_EQ(rc.acquire(0x1000, 8192), 0.0);  // fully covered by the merge
}

TEST(Rcache, BridgingAcquireMergesThreeRegions) {
  RegistrationCache rc(1 << 20, unit_cost);
  rc.acquire(0x1000, 0x1000);
  rc.acquire(0x3000, 0x1000);
  // Bridge the hole [0x2000, 0x3000).
  EXPECT_DOUBLE_EQ(rc.acquire(0x1000, 0x3000), 4096.0);
  EXPECT_EQ(rc.pinned_bytes(), 0x3000u);
}

TEST(Rcache, LruEvictionRespectsCapacity) {
  RegistrationCache rc(8192, unit_cost);
  rc.acquire(0x10000, 4096);
  rc.acquire(0x20000, 4096);
  rc.acquire(0x30000, 4096);  // evicts 0x10000 (least recently used)
  EXPECT_EQ(rc.evictions(), 1u);
  EXPECT_LE(rc.pinned_bytes(), 8192u);
  EXPECT_GT(rc.acquire(0x10000, 4096), 0.0);  // miss again
  EXPECT_DOUBLE_EQ(rc.acquire(0x30000, 4096), 0.0);  // still cached
}

TEST(Rcache, TouchRefreshesLruOrder) {
  RegistrationCache rc(8192, unit_cost);
  rc.acquire(0x10000, 4096);
  rc.acquire(0x20000, 4096);
  rc.acquire(0x10000, 4096);  // refresh
  rc.acquire(0x30000, 4096);  // should evict 0x20000
  EXPECT_DOUBLE_EQ(rc.acquire(0x10000, 4096), 0.0);
  EXPECT_GT(rc.acquire(0x20000, 4096), 0.0);
}

TEST(Rcache, ClearDropsEverything) {
  RegistrationCache rc(1 << 20, unit_cost);
  rc.acquire(0x1000, 4096);
  rc.clear();
  EXPECT_EQ(rc.pinned_bytes(), 0u);
  EXPECT_GT(rc.acquire(0x1000, 4096), 0.0);
}

TEST(Rcache, OversizedRegionStaysPinnedWhileInUse) {
  RegistrationCache rc(4096, unit_cost);
  // A single region larger than capacity must not be evicted mid-acquire.
  EXPECT_DOUBLE_EQ(rc.acquire(0x1000, 16384), 16384.0);
  EXPECT_EQ(rc.pinned_bytes(), 16384u);
  EXPECT_DOUBLE_EQ(rc.acquire(0x1000, 16384), 0.0);
}

TEST(Rcache, IbCostModelScalesWithPages) {
  const Time one = calib::ib_reg_cost(4096);
  const Time ten = calib::ib_reg_cost(10 * 4096);
  EXPECT_GT(ten, one);
  EXPECT_NEAR(ten - one, 9 * calib::kIbRegPerPage, 1e-12);
}

}  // namespace
}  // namespace nmx::rcache
