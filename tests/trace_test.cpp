// Tests for the event tracer and the MPI_THREAD_MULTIPLE-style execution
// mode (run_threads) — the simulator-side analogues of the PM2 suite's FxT
// tracing and of §3.3.2's semaphore-based thread waiting.
#include <gtest/gtest.h>

#include <sstream>

#include "mpi/cluster.hpp"
#include "sim/trace.hpp"

namespace nmx {
namespace {

TEST(Tracer, RecordsAndSummarizes) {
  sim::Tracer tr;
  tr.record(1e-6, 0, sim::TraceCat::MpiSend, 100, 1);
  tr.record(2e-6, 1, sim::TraceCat::MpiRecv, 100, 0);
  tr.record(3e-6, 0, sim::TraceCat::MpiSend, 50, 1);
  auto s = tr.summary();
  EXPECT_EQ(s[sim::TraceCat::MpiSend].count, 2u);
  EXPECT_EQ(s[sim::TraceCat::MpiSend].bytes, 150u);
  EXPECT_EQ(s[sim::TraceCat::MpiRecv].count, 1u);
  std::ostringstream os;
  tr.dump(os);
  EXPECT_NE(os.str().find("MPI_SEND"), std::string::npos);
  EXPECT_NE(os.str().find("1.000 0"), std::string::npos);
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
}

TEST(Tracer, ClusterTraceCapturesAllLayers) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 4;  // shm + network traffic
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.pioman = true;
  cfg.trace = true;
  mpi::Cluster cluster(cfg);
  cluster.run([](mpi::Comm& c) {
    std::vector<std::byte> buf(256 * 1024);  // rendezvous-sized
    if (c.rank() == 0) {
      c.send(buf.data(), buf.size(), 3, 1);   // network
      c.send(buf.data(), 100, 1, 2);          // shared memory
      c.compute(5e-6);
    } else if (c.rank() == 3) {
      c.recv(buf.data(), buf.size(), 0, 1);
    } else if (c.rank() == 1) {
      c.recv(buf.data(), 100, 0, 2);
    }
    c.barrier();
  });
  ASSERT_NE(cluster.tracer(), nullptr);
  auto s = cluster.tracer()->summary();
  EXPECT_GT(s[sim::TraceCat::MpiSend].count, 0u);
  EXPECT_GT(s[sim::TraceCat::MpiWait].count, 0u);
  EXPECT_GT(s[sim::TraceCat::MpiColl].count, 0u);
  EXPECT_GT(s[sim::TraceCat::NmadTx].count, 0u);
  EXPECT_GT(s[sim::TraceCat::NmadRx].count, 0u);
  EXPECT_EQ(s[sim::TraceCat::NmadRdv].count, 1u);  // exactly one big send
  EXPECT_GT(s[sim::TraceCat::ShmCell].count, 0u);
  EXPECT_GT(s[sim::TraceCat::PiomanPass].count, 0u);
  EXPECT_EQ(s[sim::TraceCat::Compute].count, 1u);
  // Events are time-ordered (each layer records at emission time).
  const auto& ev = cluster.tracer()->events();
  for (std::size_t i = 1; i < ev.size(); ++i) EXPECT_GE(ev[i].t, ev[i - 1].t);
}

TEST(Tracer, DisabledByDefaultCostsNothing) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  mpi::Cluster cluster(cfg);
  EXPECT_EQ(cluster.tracer(), nullptr);
  cluster.run([](mpi::Comm& c) {
    if (c.rank() == 0) c.send_value(1, 1, 0);
    if (c.rank() == 1) c.recv_value<int>(0, 0);
  });
}

// ---------------------------------------------------------------------------
// run_threads — MPI_THREAD_MULTIPLE-style execution
// ---------------------------------------------------------------------------

TEST(ThreadMultiple, TwoThreadsPerRankExchangeIndependently) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  mpi::Cluster cluster(cfg);
  // Thread 0 uses tag 100, thread 1 uses tag 200; both block in MPI calls
  // concurrently on the same process's stack.
  cluster.run_threads(2, [](mpi::Comm& c, int thread) {
    const int tag = 100 + thread * 100;
    if (c.rank() == 0) {
      c.send_value(thread * 10 + 1, 1, tag);
      EXPECT_EQ(c.recv_value<int>(1, tag), thread * 10 + 2);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, tag), thread * 10 + 1);
      c.send_value(thread * 10 + 2, 0, tag);
    }
  });
}

TEST(ThreadMultiple, ConcurrentWaitsBlockOnTheirOwnCompletions) {
  // §3.3.2: "instead of concurrently polling when several threads invoke
  // MPI_Wait ... these threads would relinquish the CPU". One thread waits
  // on a slow rendezvous while the other completes fast sends; neither
  // prevents the other from progressing.
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.pioman = true;
  mpi::Cluster cluster(cfg);
  double fast_done = 0, slow_done = 0;
  cluster.run_threads(2, [&](mpi::Comm& c, int thread) {
    if (c.rank() == 0) {
      if (thread == 0) {
        std::vector<std::byte> big(8 << 20);
        c.send(big.data(), big.size(), 1, 1);  // slow rendezvous
        slow_done = c.wtime();
      } else {
        for (int i = 0; i < 5; ++i) c.send_value(i, 1, 2);
        fast_done = c.wtime();
      }
    } else {
      if (thread == 0) {
        std::vector<std::byte> big(8 << 20);
        c.recv(big.data(), big.size(), 0, 1);
      } else {
        for (int i = 0; i < 5; ++i) EXPECT_EQ(c.recv_value<int>(0, 2), i);
      }
    }
  });
  EXPECT_GT(slow_done, 0.0);
  EXPECT_GT(fast_done, 0.0);
  EXPECT_LT(fast_done, slow_done);  // the fast thread was not serialized behind the slow one
}

TEST(ThreadMultiple, ThreadsShareCollectivesViaDistinctThreads) {
  // One thread per rank does a collective while the other computes.
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 4;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  mpi::Cluster cluster(cfg);
  cluster.run_threads(2, [](mpi::Comm& c, int thread) {
    if (thread == 0) {
      const double sum = c.allreduce_one(1.0, mpi::ReduceOp::Sum);
      EXPECT_DOUBLE_EQ(sum, c.size());
    } else {
      c.compute(10e-6);
    }
  });
}

}  // namespace
}  // namespace nmx
