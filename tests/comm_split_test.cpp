// Tests for sub-communicators (MPI_Comm_split) and MPI_Waitany — the API
// surface real NPB codes (row/column communicators in CG, multi-pending
// receives in LU) expect from a production MPI layer.
#include <gtest/gtest.h>

#include "mpi/cluster.hpp"

namespace nmx {
namespace {

mpi::ClusterConfig cfg6() {
  mpi::ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.procs = 6;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  return cfg;
}

TEST(CommSplit, RowGroupsHaveLocalRanksAndSizes) {
  mpi::Cluster cluster(cfg6());
  cluster.run([](mpi::Comm& world) {
    // 2 rows x 3 columns: color = row, key = column.
    const int row = world.rank() / 3;
    const int col = world.rank() % 3;
    mpi::Comm rowc = world.split(row, col);
    EXPECT_EQ(rowc.size(), 3);
    EXPECT_EQ(rowc.rank(), col);
  });
}

TEST(CommSplit, KeyOrdersTheNewRanks) {
  mpi::Cluster cluster(cfg6());
  cluster.run([](mpi::Comm& world) {
    // One group, ranks reversed by key.
    mpi::Comm rev = world.split(0, world.size() - world.rank());
    EXPECT_EQ(rev.rank(), world.size() - 1 - world.rank());
  });
}

TEST(CommSplit, Pt2PtUsesLocalRanksAndTranslatesStatus) {
  mpi::Cluster cluster(cfg6());
  cluster.run([](mpi::Comm& world) {
    const int row = world.rank() / 3;
    mpi::Comm rowc = world.split(row, world.rank());
    if (rowc.rank() == 0) {
      rowc.send_value(row * 100 + 7, 2, 5);  // to local rank 2 of MY row
    } else if (rowc.rank() == 2) {
      int v = -1;
      auto st = rowc.recv(&v, sizeof(v), mpi::ANY_SOURCE, 5);
      EXPECT_EQ(v, row * 100 + 7);       // from my own row's rank 0
      EXPECT_EQ(st.source, 0);           // local rank, not world rank
    }
  });
}

TEST(CommSplit, CollectivesScopeToTheSubgroup) {
  mpi::Cluster cluster(cfg6());
  cluster.run([](mpi::Comm& world) {
    const int row = world.rank() / 3;
    mpi::Comm rowc = world.split(row, world.rank());
    const double sum = rowc.allreduce_one(1.0, mpi::ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(sum, 3.0);  // only the row, not the world

    int root_val = rowc.rank() == 0 ? row * 11 : -1;
    rowc.bcast(&root_val, sizeof(root_val), 0);
    EXPECT_EQ(root_val, row * 11);

    rowc.barrier();
    world.barrier();
  });
}

TEST(CommSplit, SiblingTrafficCannotCrossMatch) {
  mpi::Cluster cluster(cfg6());
  cluster.run([](mpi::Comm& world) {
    const int row = world.rank() / 3;
    mpi::Comm rowc = world.split(row, world.rank());
    // Same local ranks and same tag in both rows simultaneously: contexts
    // must keep them apart.
    if (rowc.rank() == 0) rowc.send_value(1000 + row, 1, 9);
    if (rowc.rank() == 1) {
      EXPECT_EQ(rowc.recv_value<int>(0, 9), 1000 + row);
    }
  });
}

TEST(CommSplit, SplitOfASplitNests) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.procs = 8;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  mpi::Cluster cluster(cfg);
  cluster.run([](mpi::Comm& world) {
    mpi::Comm half = world.split(world.rank() / 4, world.rank());  // two halves of 4
    mpi::Comm quarter = half.split(half.rank() / 2, half.rank());  // four pairs
    EXPECT_EQ(quarter.size(), 2);
    const double sum = quarter.allreduce_one(1.0, mpi::ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(sum, 2.0);
  });
}

TEST(CommSplit, SuccessiveSplitsGetFreshContexts) {
  mpi::Cluster cluster(cfg6());
  cluster.run([](mpi::Comm& world) {
    mpi::Comm a = world.split(0, world.rank());
    mpi::Comm b = world.split(0, world.rank());
    // A receive on `b` must not match a send on `a`.
    if (world.rank() == 0) a.send_value(111, 1, 3);
    if (world.rank() == 1) {
      EXPECT_FALSE(b.iprobe(0, 3).has_value());
      EXPECT_EQ(a.recv_value<int>(0, 3), 111);
    }
  });
}

TEST(Waitany, ReturnsTheFirstCompletion) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 3;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  mpi::Cluster cluster(cfg);
  cluster.run([](mpi::Comm& c) {
    if (c.rank() == 0) {
      int a = -1, b = -1;
      std::vector<mpi::Request> reqs;
      reqs.push_back(c.irecv(&a, sizeof(a), 1, 1));
      reqs.push_back(c.irecv(&b, sizeof(b), 2, 2));
      mpi::Status st;
      const int first = c.waitany(reqs, &st);
      EXPECT_EQ(first, 1);  // rank 2 sends immediately; rank 1 delays
      EXPECT_EQ(st.source, 2);
      EXPECT_EQ(b, 22);
      EXPECT_FALSE(reqs[1].valid());
      const int second = c.waitany(reqs, &st);
      EXPECT_EQ(second, 0);
      EXPECT_EQ(a, 11);
    } else if (c.rank() == 1) {
      c.compute(50e-6);
      c.send_value(11, 0, 1);
    } else {
      c.send_value(22, 0, 2);
    }
  });
}

TEST(Waitany, CompletedRequestReturnsWithoutBlocking) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  mpi::Cluster cluster(cfg);
  cluster.run([](mpi::Comm& c) {
    if (c.rank() == 0) {
      int v = -1;
      std::vector<mpi::Request> reqs;
      reqs.push_back(c.irecv(&v, sizeof(v), 1, 1));
      c.compute(50e-6);  // completion already happened
      EXPECT_EQ(c.waitany(reqs, nullptr), 0);
      EXPECT_EQ(v, 5);
    } else {
      c.send_value(5, 0, 1);
    }
  });
}

}  // namespace
}  // namespace nmx
