// Chaos conformance tier: every fault kind the FaultPlan can inject — rail
// death mid-rendezvous, dropped / reordered CTS, duplicated RTS, silent
// bandwidth degradation, receiver restart — must leave the stack with
// exactly-once delivery, byte-intact payloads, bounded recovery time, and
// byte-identical artifacts across two same-seed runs. A chaos failure is a
// reproducible test case, never a flake: the fault schedule is part of the
// config, and the simulator's determinism promise extends to faulted runs.
//
// Layout: run_scenario() drives a rank0 -> rank1 transfer workload whose
// payload is a closed-form pattern, so the receiver can verify every byte
// without shipping a reference copy; each focused test runs its scenario
// twice (replay check) and then interrogates the recovery counters; the
// FaultMatrix smoke sweeps all kinds at a second seed with just the oracle.
#include <gtest/gtest.h>

#include <cstddef>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mpi/cluster.hpp"
#include "nmad/wire.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_csv.hpp"

namespace nmx {
namespace {

constexpr int kCts = static_cast<int>(nmad::Entry::Kind::Cts);
constexpr int kRts = static_cast<int>(nmad::Entry::Kind::Rts);

// Every run must finish within this much virtual time — generous against the
// healthy baseline (a few ms), tight against a runaway retry/replay loop.
constexpr Time kRecoveryBound = 50e-3;

/// Deterministic payload byte: f(round, offset). Exactly-once + intactness
/// oracle — a dropped, duplicated, stale or misplaced chunk shows up as a
/// mismatch against this closed form.
std::byte pattern(int round, std::size_t i) {
  return static_cast<std::byte>((static_cast<std::size_t>(round) * 131 + i * 7 + 5) & 0xff);
}

struct Scenario {
  mpi::ClusterConfig cfg;
  int rounds = 3;
  std::size_t msg = 1_MiB;  // above the rendezvous threshold
  /// false: one send/recv at a time (clean per-round handshake timing).
  /// true: all sends posted as isends up front, so the strategy holds a real
  /// backlog when a timed fault fires mid-drain.
  bool concurrent = false;
};

struct Outcome {
  std::string metrics_csv;
  std::string trace_json;
  Time elapsed = 0;
  std::size_t bad_bytes = 0;   // payload bytes that missed the pattern
  std::uint64_t recvs = 0;     // completed receives (exactly-once: == rounds)
  std::map<std::pair<std::string, std::string>, std::uint64_t> counters;

  std::uint64_t counter(const std::string& name, const std::string& label = "") const {
    auto it = counters.find({name, label});
    return it == counters.end() ? 0 : it->second;
  }
};

Outcome run_scenario(const Scenario& s) {
  mpi::ClusterConfig cfg = s.cfg;
  cfg.trace = true;
  mpi::Cluster cluster(cfg);
  Outcome o;
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(s.rounds));
      std::vector<mpi::Request> reqs;
      for (int round = 0; round < s.rounds; ++round) {
        auto& buf = bufs[static_cast<std::size_t>(round)];
        buf.resize(s.msg);
        for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = pattern(round, i);
        if (s.concurrent) {
          reqs.push_back(c.isend(buf.data(), buf.size(), 1, round));
        } else {
          c.send(buf.data(), buf.size(), 1, round);
        }
      }
      if (s.concurrent) c.waitall(reqs);
    } else if (c.rank() == 1) {
      std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(s.rounds));
      std::vector<mpi::Request> reqs;
      for (int round = 0; round < s.rounds; ++round) {
        auto& buf = bufs[static_cast<std::size_t>(round)];
        buf.assign(s.msg, std::byte{0xee});
        if (s.concurrent) {
          reqs.push_back(c.irecv(buf.data(), buf.size(), 0, round));
        } else {
          c.recv(buf.data(), buf.size(), 0, round);
          ++o.recvs;
        }
      }
      if (s.concurrent) {
        c.waitall(reqs);
        o.recvs += static_cast<std::uint64_t>(s.rounds);
      }
      for (int round = 0; round < s.rounds; ++round) {
        const auto& buf = bufs[static_cast<std::size_t>(round)];
        for (std::size_t i = 0; i < buf.size(); ++i) {
          if (buf[i] != pattern(round, i)) ++o.bad_bytes;
        }
      }
    }
  });
  o.elapsed = cluster.now();
  obs::Recorder* rec = cluster.recorder();
  EXPECT_NE(rec, nullptr);
  std::ostringstream metrics, trace;
  obs::write_metrics_csv(*rec, metrics);
  obs::write_chrome_trace(*rec, trace);
  o.metrics_csv = metrics.str();
  o.trace_json = trace.str();
  for (const auto& [key, c] : rec->metrics().counters()) o.counters[key] = c.value();
  return o;
}

/// Delivery oracle + recovery bound + same-seed replay, shared by every
/// focused test: runs the scenario twice and hands back the first outcome.
Outcome run_checked(const Scenario& s) {
  const Outcome a = run_scenario(s);
  const Outcome b = run_scenario(s);
  std::cout << "virtual time to completion: " << a.elapsed * 1e3 << " ms\n";
  EXPECT_EQ(a.recvs, static_cast<std::uint64_t>(s.rounds)) << "lost or duplicated completion";
  EXPECT_EQ(a.bad_bytes, 0u) << "payload corrupted by fault recovery";
  EXPECT_LT(a.elapsed, kRecoveryBound) << "recovery exceeded the virtual-time bound";
  EXPECT_EQ(a.metrics_csv, b.metrics_csv) << "same-seed faulted runs diverged (metrics)";
  EXPECT_EQ(a.trace_json, b.trace_json) << "same-seed faulted runs diverged (trace)";
  return a;
}

// ---------------------------------------------------------------------------
// Scenario builders (shared between the focused tests and the fault matrix)
// ---------------------------------------------------------------------------

mpi::ClusterConfig base_cfg() {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;  // rank 0 on node 0, rank 1 on node 1: all traffic on the fabric
  cfg.rails = {net::ib_profile(), net::mx_profile()};
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  return cfg;
}

Scenario dropped_cts(std::uint64_t seed) {
  Scenario s;
  s.cfg = base_cfg();
  s.cfg.rdv_retry_timeout = 200e-6;  // > grant latency (~60us incl. registration)
  s.cfg.faults.seed = seed;
  sim::FaultSpec::EntryFault f;
  f.kind = kCts;
  f.drop_p = 0.6;
  s.cfg.faults.entry_faults.push_back(f);
  s.rounds = 5;
  return s;
}

Scenario duplicated_rts(std::uint64_t seed) {
  Scenario s;
  s.cfg = base_cfg();
  s.cfg.faults.seed = seed;
  sim::FaultSpec::EntryFault f;
  f.kind = kRts;
  f.dup_p = 1.0;  // every RTS lands twice
  s.cfg.faults.entry_faults.push_back(f);
  return s;
}

Scenario reordered_cts(std::uint64_t seed) {
  Scenario s;
  s.cfg = base_cfg();
  // Delay every grant past the retry timeout: the sender retransmits, the
  // receiver re-grants, and two CTS for the same rendezvous race on the wire.
  s.cfg.rdv_retry_timeout = 200e-6;
  s.cfg.faults.seed = seed;
  sim::FaultSpec::EntryFault f;
  f.kind = kCts;
  f.delay_p = 1.0;
  f.delay = 400e-6;
  s.cfg.faults.entry_faults.push_back(f);
  return s;
}

Scenario rail_down_mid_rdv(std::uint64_t seed) {
  Scenario s;
  s.cfg = base_cfg();
  // SplitBalance plans all per-rail chunks at grant time, so with 4
  // concurrent 2 MiB rendezvous in flight the dying rail's queue is
  // guaranteed non-empty at t = 1 ms (total egress is ~3 ms healthy).
  s.cfg.strategy = nmad::StrategyKind::SplitBalance;
  s.cfg.faults.seed = seed;
  s.cfg.faults.rail_down.push_back({1e-3, /*rail=*/1});
  s.rounds = 4;
  s.msg = 2_MiB;
  s.concurrent = true;
  return s;
}

Scenario silent_degradation(std::uint64_t seed) {
  Scenario s;
  s.cfg = base_cfg();
  s.cfg.strategy = nmad::StrategyKind::CostModel;
  s.cfg.faults.seed = seed;
  // Rail 0 silently loses 70% of its bandwidth from the start: probes keep
  // reporting the healthy profile, so only the egress-occupancy feedback
  // (beta_relearn, on by default) can pull the split back toward reality.
  s.cfg.faults.degrade.push_back({0.0, /*rail=*/0, /*beta_factor=*/0.3});
  s.rounds = 8;
  s.msg = 2_MiB;
  return s;
}

Scenario receiver_restart(std::uint64_t seed) {
  Scenario s;
  s.cfg = base_cfg();
  s.cfg.strategy = nmad::StrategyKind::SplitBalance;
  s.cfg.faults.seed = seed;
  // One 8 MiB rendezvous: chunks egress until ~3.3 ms, so a restart at
  // 1.5 ms lands while the sender still owns the rendezvous (it can replay)
  // and the old-epoch chunks are still in flight (they land stale).
  s.cfg.faults.restart.push_back({1.5e-3, /*proc=*/1});
  s.rounds = 1;
  s.msg = 8_MiB;
  return s;
}

// ---------------------------------------------------------------------------
// Focused per-kind tests: oracle + replay + the recovery counters
// ---------------------------------------------------------------------------

TEST(Chaos, UnfaultedControlNeverRetries) {
  // Same workload and retry timer as the dropped-CTS run, zero faults: the
  // timeout must never fire on a healthy fabric, or every slow-but-correct
  // receiver would eat spurious retransmissions.
  Scenario s = dropped_cts(1);
  s.cfg.faults = sim::FaultSpec{};  // healthy: no FaultPlan is even built
  const Outcome o = run_checked(s);
  EXPECT_EQ(o.counter("nmad.rdv.retries"), 0u);
  EXPECT_EQ(o.counter("nmad.fault.dropped", "kind=Cts"), 0u);
}

TEST(Chaos, DroppedCtsRecoversViaTimeoutAndRetry) {
  const Outcome o = run_checked(dropped_cts(1));
  EXPECT_GT(o.counter("nmad.fault.dropped", "kind=Cts"), 0u) << "fault never injected";
  EXPECT_GT(o.counter("nmad.rdv.retries"), 0u) << "lost grants must trigger RTS retransmission";
  // Every retransmission that found the rendezvous still pending re-granted.
  EXPECT_GT(o.counter("nmad.rdv.regrants"), 0u);
}

TEST(Chaos, DuplicatedRtsIsRecognisedNotRematched) {
  const Outcome o = run_checked(duplicated_rts(1));
  EXPECT_GT(o.counter("nmad.fault.duplicated", "kind=Rts"), 0u);
  EXPECT_GT(o.counter("nmad.rdv.dup_rts"), 0u) << "wire duplicate must hit the dup path";
  // A plain wire duplicate (retry == 0) must not re-grant: the original's
  // CTS is already queued or in flight.
  EXPECT_EQ(o.counter("nmad.rdv.regrants"), 0u);
}

TEST(Chaos, ReorderedCtsRaceIsSettledByTheFirstGrant) {
  const Outcome o = run_checked(reordered_cts(1));
  EXPECT_GT(o.counter("nmad.fault.delayed", "kind=Cts"), 0u);
  // The delay outruns the retry timer every round: retransmit, re-grant,
  // then the loser of the two-CTS race is recognised as a duplicate.
  EXPECT_GT(o.counter("nmad.rdv.retries"), 0u);
  EXPECT_GT(o.counter("nmad.rdv.regrants"), 0u);
  EXPECT_GT(o.counter("nmad.rdv.dup_cts"), 0u);
}

TEST(Chaos, RailDownMidRendezvousReroutesOntoSurvivors) {
  const Outcome o = run_checked(rail_down_mid_rdv(1));
  EXPECT_GE(o.counter("nmad.fault.rail_down", "rail=1"), 1u);
  EXPECT_GT(o.counter("nmad.fault.rerouted_entries"), 0u)
      << "queued work on the dead rail was not displaced";
  EXPECT_GT(o.counter("nmad.fault.rerouted_bytes"), 0u);
  // Fail-stop at admission: nothing may be handed to a dead rail.
  EXPECT_EQ(o.counter("net.fault.tx_on_dead_rail"), 0u);
}

TEST(Chaos, SilentDegradationIsRelearnedFromEgressOccupancy) {
  const Outcome o = run_checked(silent_degradation(1));
  EXPECT_GT(o.counter("nmad.sched.beta_relearned", "rail=0"), 0u)
      << "cost model never adopted the measured bandwidth";
}

TEST(Chaos, ReceiverRestartForcesEpochedReplay) {
  const Outcome o = run_checked(receiver_restart(1));
  EXPECT_EQ(o.counter("nmad.fault.restarts"), 1u);
  EXPECT_EQ(o.counter("nmad.rdv.restart_grants"), 1u) << "pending rendezvous not re-granted";
  EXPECT_EQ(o.counter("nmad.rdv.restart_replays"), 1u) << "sender did not replay from byte 0";
  // The pre-restart chunks were in flight when the epoch bumped: they must
  // land stale (discarded), and their egress notes must not double-credit
  // the replayed transfer.
  EXPECT_GE(o.counter("nmad.rdv.stale_chunks"), 1u);
  EXPECT_GE(o.counter("nmad.rdv.stale_tx_notes"), 1u);
  // Sender retirement is gated on the receiver's RdvFin ack, so a restart
  // re-grant can never land on an already-retired rendezvous.
  EXPECT_GT(o.counter("nmad.rdv.fin_tx"), 0u) << "receiver never acked completion";
  EXPECT_EQ(o.counter("nmad.rdv.orphan_cts"), 0u) << "restart re-grant orphaned";
}

// The orphan window was widest right where the sender finished pushing bytes:
// before the RdvFin gate, egress completion retired the rendezvous, and a
// restart re-grant racing toward the sender found nothing to replay. Sweep
// restart times bracketing the 8 MiB transfer's egress completion (~3.3 ms)
// and demand zero orphans — and an intact payload — at every point.
class RestartSweep : public ::testing::TestWithParam<double> {};

TEST_P(RestartSweep, NoGrantIsOrphanedAtAnyRestartTime) {
  Scenario s = receiver_restart(1);
  s.cfg.faults.restart.clear();
  s.cfg.faults.restart.push_back({GetParam(), /*proc=*/1});
  const Outcome o = run_scenario(s);
  EXPECT_EQ(o.recvs, static_cast<std::uint64_t>(s.rounds));
  EXPECT_EQ(o.bad_bytes, 0u);
  EXPECT_LT(o.elapsed, kRecoveryBound);
  // No restarts==1 assertion: the latest sweep points may land after the
  // transfer fully retired (workload done, event never fires) — the property
  // under test is that wherever the restart lands, nothing is orphaned.
  EXPECT_EQ(o.counter("nmad.rdv.orphan_cts"), 0u)
      << "restart at t=" << GetParam() << " orphaned a re-grant";
}

INSTANTIATE_TEST_SUITE_P(AcrossEgressCompletion, RestartSweep,
                         ::testing::Values(0.5e-3, 1.5e-3, 2.5e-3, 3.1e-3, 3.3e-3, 3.5e-3),
                         [](const auto& info) {
                           return "t" + std::to_string(static_cast<int>(info.param * 1e4));
                         });

// ---------------------------------------------------------------------------
// Fault-matrix smoke: every kind x one more seed, oracle only
// ---------------------------------------------------------------------------

struct MatrixEntry {
  const char* name;
  Scenario (*build)(std::uint64_t seed);
};

constexpr MatrixEntry kMatrix[] = {
    {"dropped_cts", dropped_cts},       {"duplicated_rts", duplicated_rts},
    {"reordered_cts", reordered_cts},   {"rail_down", rail_down_mid_rdv},
    {"degradation", silent_degradation}, {"receiver_restart", receiver_restart},
};

class FaultMatrix : public ::testing::TestWithParam<MatrixEntry> {};

TEST_P(FaultMatrix, CompletesExactlyOnceWithIntactPayloads) {
  const Scenario s = GetParam().build(42);
  const Outcome o = run_scenario(s);
  EXPECT_EQ(o.recvs, static_cast<std::uint64_t>(s.rounds));
  EXPECT_EQ(o.bad_bytes, 0u);
  EXPECT_LT(o.elapsed, kRecoveryBound);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FaultMatrix, ::testing::ValuesIn(kMatrix),
                         [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace nmx
