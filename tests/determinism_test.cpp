// Determinism regression: the simulator promises bit-identical replays — two
// clusters built from the same ClusterConfig and driven by the same workload
// must produce byte-identical observability artifacts (metrics CSV, Chrome
// trace) and identical span counts. A diff here means some scheduling
// decision leaked nondeterminism (iteration over an unordered container,
// wall-clock time, address-dependent ordering).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_csv.hpp"
#include "sim/rng.hpp"

namespace nmx {
namespace {

struct Artifacts {
  std::string metrics_csv;
  std::string trace_json;
  std::uint64_t spans_begun = 0;
  std::uint64_t spans_ended = 0;
};

Artifacts run_once(const mpi::ClusterConfig& cfg) {
  mpi::Cluster cluster(cfg);
  // Mixed workload: eager + rendezvous traffic, a seeded random storm, and a
  // collective — enough to exercise strategies, rails and the progress engine.
  cluster.run([&](mpi::Comm& c) {
    const int peer = c.rank() < c.size() / 2 ? c.rank() + c.size() / 2 : c.rank() - c.size() / 2;
    sim::Xoshiro256 rng(1234 + static_cast<std::uint64_t>(c.rank() < peer ? c.rank() : peer));
    for (int i = 0; i < 10; ++i) {
      const std::size_t size = 1 + rng.below(256_KiB);
      std::vector<std::byte> out(size), in(size);
      c.sendrecv(out.data(), size, peer, i, in.data(), size, peer, i);
    }
    double v = c.rank();
    double sum = 0;
    c.allreduce(&v, &sum, 1, mpi::ReduceOp::Sum);
    c.barrier();
  });

  Artifacts a;
  obs::Recorder* rec = cluster.recorder();
  EXPECT_NE(rec, nullptr);
  std::ostringstream metrics, trace;
  obs::write_metrics_csv(*rec, metrics);
  obs::write_chrome_trace(*rec, trace);
  a.metrics_csv = metrics.str();
  a.trace_json = trace.str();
  a.spans_begun = rec->spans_begun();
  a.spans_ended = rec->spans_ended();
  return a;
}

class Determinism : public ::testing::TestWithParam<nmad::StrategyKind> {};

TEST_P(Determinism, IdenticalConfigAndSeedGiveIdenticalArtifacts) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 4;
  cfg.rails = {net::ib_profile(), net::mx_profile()};
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.strategy = GetParam();
  cfg.pioman = true;
  cfg.trace = true;

  const Artifacts a = run_once(cfg);
  const Artifacts b = run_once(cfg);

  EXPECT_FALSE(a.metrics_csv.empty());
  EXPECT_GT(a.spans_begun, 0u);
  EXPECT_EQ(a.spans_begun, b.spans_begun);
  EXPECT_EQ(a.spans_ended, b.spans_ended);
  EXPECT_EQ(a.metrics_csv, b.metrics_csv) << "metrics CSV diverged between identical runs";
  EXPECT_EQ(a.trace_json, b.trace_json) << "trace diverged between identical runs";
}

INSTANTIATE_TEST_SUITE_P(Strategies, Determinism,
                         ::testing::Values(nmad::StrategyKind::SplitBalance,
                                           nmad::StrategyKind::CostModel),
                         [](const auto& info) {
                           return info.param == nmad::StrategyKind::CostModel ? "costmodel"
                                                                              : "split";
                         });

TEST(DeterminismFaulted, SameFaultPlanAndSeedGiveIdenticalArtifacts) {
  // The determinism promise extends to faulted runs: the fault schedule is
  // part of the config (timed faults fire at fixed virtual times, wire-entry
  // rolls come from a seeded generator consumed in event order), so two runs
  // of the same chaos config must replay byte-for-byte. This is what makes a
  // chaos failure reproducible instead of a flake.
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 4;
  cfg.rails = {net::ib_profile(), net::mx_profile()};
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.strategy = nmad::StrategyKind::CostModel;
  cfg.pioman = true;
  cfg.trace = true;
  cfg.rdv_retry_timeout = 200e-6;
  cfg.faults.seed = 7;
  cfg.faults.rail_down.push_back({2e-3, /*rail=*/1});
  sim::FaultSpec::EntryFault drop;
  drop.kind = 2;  // nmad::Entry::Kind::Cts
  drop.drop_p = 0.3;
  drop.dup_p = 0.2;
  drop.delay_p = 0.2;
  cfg.faults.entry_faults.push_back(drop);

  const Artifacts a = run_once(cfg);
  const Artifacts b = run_once(cfg);

  EXPECT_FALSE(a.metrics_csv.empty());
  EXPECT_GT(a.spans_begun, 0u);
  EXPECT_EQ(a.spans_begun, b.spans_begun);
  EXPECT_EQ(a.spans_ended, b.spans_ended);
  EXPECT_EQ(a.metrics_csv, b.metrics_csv) << "faulted metrics CSV diverged between replays";
  EXPECT_EQ(a.trace_json, b.trace_json) << "faulted trace diverged between replays";
}

}  // namespace
}  // namespace nmx
