// Randomized property tests over every scheduling strategy: for seeded random
// entry streams and rail profiles, a strategy must conserve bytes, emit every
// entry exactly once, keep per-(rail, dst, tag) sequence order, plan
// rendezvous shares that sum to the payload, and never stall while work is
// pending.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "mpi/cluster.hpp"
#include "nmad/strategy.hpp"
#include "sim/rng.hpp"

namespace nmx {
namespace {

class StrategyProperty
    : public ::testing::TestWithParam<std::tuple<nmad::StrategyKind, std::uint64_t>> {};

TEST_P(StrategyProperty, ConservesEntriesBytesAndOrderWithoutStarving) {
  const auto [kind, seed] = GetParam();
  sim::Xoshiro256 rng(seed);

  const std::size_t nrails = 1 + rng.below(3);
  std::vector<nmad::RailPerf> perfs;
  for (std::size_t r = 0; r < nrails; ++r) {
    nmad::RailPerf p;
    p.fabric_rail = static_cast<int>(r);
    p.alpha = (0.5 + static_cast<double>(rng.below(50)) / 10.0) * 1e-6;
    p.beta = 1e8 * static_cast<double>(1 + rng.below(20));
    perfs.push_back(p);
  }
  nmad::Sampling sampling(perfs);

  nmad::StrategyOptions opts;
  opts.max_aggregate = 1024 + rng.below(4096);
  opts.min_split_chunk = 1_KiB;
  opts.rdv_quantum = 4_KiB;
  auto strat = nmad::make_strategy(kind, sampling, opts);

  // Deterministic load probe, stable within one drain sweep (refreshed
  // between sweeps below) so load-aware strategies see changing but
  // consistent per-rail occupancy.
  double now = 0.0;
  std::vector<Time> busy(nrails, 0.0);
  strat->set_load_probe([&] {
    nmad::RailLoad l;
    l.now = now;
    l.busy_until = busy;
    return l;
  });
  auto shuffle_load = [&] {
    now += 1e-5;
    for (std::size_t r = 0; r < nrails; ++r) {
      busy[r] = now + static_cast<double>(rng.below(200)) * 1e-6;
    }
  };
  shuffle_load();

  // Rendezvous plans always cover the payload exactly.
  for (int i = 0; i < 20; ++i) {
    const std::size_t len = 1 + rng.below(1u << 22);
    const std::vector<std::size_t> shares = strat->plan_rdv(len);
    ASSERT_EQ(shares.size(), nrails);
    std::size_t sum = 0;
    for (std::size_t s : shares) sum += s;
    EXPECT_EQ(sum, len) << "plan_rdv shares must sum to len=" << len;
    shuffle_load();
  }

  // Inject a random eager stream...
  constexpr int kEager = 200;
  struct Key {
    int dst;
    nmad::Tag tag;
    bool operator<(const Key& o) const { return std::tie(dst, tag) < std::tie(o.dst, o.tag); }
  };
  std::map<Key, std::uint32_t> next_seq;
  std::size_t eager_bytes_in = 0;
  for (int i = 0; i < kEager; ++i) {
    nmad::Entry e;
    e.kind = nmad::Entry::Kind::Eager;
    e.dst_proc = static_cast<int>(rng.below(4));
    e.tag = rng.below(3);
    e.seq = next_seq[{e.dst_proc, e.tag}]++;
    e.bytes.resize(1 + rng.below(2000));
    eager_bytes_in += e.bytes.size();
    strat->enqueue(std::move(e));
  }

  // ...plus rendezvous payloads with recognizable contents. Chunk-planning
  // strategies get the whole payload unplanned (rail = -1, as the core
  // does); static planners get pre-split chunks from their own plan.
  struct Rdv {
    std::size_t len;
    std::vector<std::pair<std::size_t, std::size_t>> out;  ///< (offset, len) seen
  };
  std::map<std::uint64_t, Rdv> rdvs;
  auto pattern = [](std::uint64_t id, std::size_t off) {
    return static_cast<std::byte>((id * 131 + off) & 0xff);
  };
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const std::size_t len = 64_KiB + rng.below(1u << 20);
    rdvs[id].len = len;
    std::vector<std::byte> payload(len);
    for (std::size_t i = 0; i < len; ++i) payload[i] = pattern(id, i);
    if (strat->plans_rdv_chunks()) {
      nmad::Entry e;
      e.kind = nmad::Entry::Kind::RdvChunk;
      e.dst_proc = static_cast<int>(rng.below(4));
      e.rdv_id = id;
      e.offset = 0;
      e.rail = -1;
      e.bytes = std::move(payload);
      strat->enqueue(std::move(e));
    } else {
      const std::vector<std::size_t> shares = strat->plan_rdv(len);
      const int dst = static_cast<int>(rng.below(4));
      std::size_t off = 0;
      for (std::size_t r = 0; r < shares.size(); ++r) {
        if (shares[r] == 0) continue;
        nmad::Entry e;
        e.kind = nmad::Entry::Kind::RdvChunk;
        e.dst_proc = dst;
        e.rdv_id = id;
        e.offset = off;
        e.rail = static_cast<int>(r);
        e.bytes.assign(payload.begin() + static_cast<std::ptrdiff_t>(off),
                       payload.begin() + static_cast<std::ptrdiff_t>(off + shares[r]));
        off += shares[r];
        strat->enqueue(std::move(e));
      }
      ASSERT_EQ(off, len);
    }
  }

  // Drain: a full sweep over every rail must make progress while anything is
  // pending (no rail starves, the stream never stalls).
  std::map<std::tuple<int, int, nmad::Tag>, std::uint32_t> rail_seq;  // (rail, dst, tag)
  std::size_t eager_out = 0;
  std::size_t eager_bytes_out = 0;
  while (strat->pending()) {
    bool progress = false;
    for (std::size_t r = 0; r < nrails; ++r) {
      while (auto wm = strat->next(static_cast<int>(r), /*src=*/0)) {
        progress = true;
        std::size_t packed = 0;
        for (const nmad::Entry& e : wm->entries) {
          EXPECT_EQ(e.dst_proc, wm->dst_proc);
          if (e.kind == nmad::Entry::Kind::Eager) {
            // Within one rail, a (dst, tag) stream keeps its order; the
            // receiver's sequence gate handles cross-rail interleaving.
            auto it = rail_seq.find({static_cast<int>(r), e.dst_proc, e.tag});
            if (it != rail_seq.end()) {
              EXPECT_GT(e.seq, it->second) << "reorder within (rail, dst, tag)";
            }
            rail_seq[{static_cast<int>(r), e.dst_proc, e.tag}] = e.seq;
            ++eager_out;
            eager_bytes_out += e.bytes.size();
            packed += e.bytes.size();
          } else {
            ASSERT_EQ(e.kind, nmad::Entry::Kind::RdvChunk);
            ASSERT_TRUE(rdvs.count(e.rdv_id));
            EXPECT_GT(e.bytes.size(), 0u);
            for (std::size_t i = 0; i < e.bytes.size(); i += 97) {
              ASSERT_EQ(e.bytes[i], pattern(e.rdv_id, e.offset + i)) << "payload corrupted";
            }
            rdvs[e.rdv_id].out.emplace_back(e.offset, e.bytes.size());
          }
        }
        if (wm->entries.size() > 1) {
          EXPECT_LE(packed, opts.max_aggregate);
        }
      }
    }
    ASSERT_TRUE(progress) << "strategy stalled with pending entries";
    shuffle_load();
  }

  // Exactly-once, byte-conserving delivery.
  EXPECT_EQ(eager_out, static_cast<std::size_t>(kEager));
  EXPECT_EQ(eager_bytes_out, eager_bytes_in);
  for (auto& [id, rdv] : rdvs) {
    std::sort(rdv.out.begin(), rdv.out.end());
    std::size_t cursor = 0;
    for (const auto& [off, len] : rdv.out) {
      EXPECT_EQ(off, cursor) << "gap or overlap in rendezvous " << id;
      cursor = off + len;
    }
    EXPECT_EQ(cursor, rdv.len) << "rendezvous " << id << " bytes lost";
  }

  // Accounting drains to zero with the queues.
  for (std::size_t r = 0; r < nrails; ++r) {
    EXPECT_EQ(strat->backlog_bytes(static_cast<int>(r)), 0u);
    EXPECT_FALSE(strat->next(static_cast<int>(r), 0).has_value());
  }
  EXPECT_EQ(strat->rdv_backlog_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Props, StrategyProperty,
    ::testing::Combine(::testing::Values(nmad::StrategyKind::Default, nmad::StrategyKind::Aggreg,
                                         nmad::StrategyKind::SplitBalance,
                                         nmad::StrategyKind::CostModel),
                       ::testing::Values(1, 7, 42, 12345)),
    [](const auto& info) {
      const char* k = std::get<0>(info.param) == nmad::StrategyKind::Default  ? "default"
                      : std::get<0>(info.param) == nmad::StrategyKind::Aggreg ? "aggreg"
                      : std::get<0>(info.param) == nmad::StrategyKind::SplitBalance
                          ? "split"
                          : "costmodel";
      return std::string(k) + "_s" + std::to_string(std::get<1>(info.param));
    });

// The cost model predicts *egress* completion (when the sending NIC releases
// the buffer), so its alpha must be the egress-fitted alpha_tx, not the
// one-way alpha that includes wire latency. With the one-way alpha every
// prediction carried a systematic ~1.1us (IB wire latency) offset; with
// alpha_tx the mean |error| on an uncongested workload must sit well below
// that — residual error is only cross-process NIC contention.
TEST(CostModelPrediction, EgressFittedAlphaRemovesWireLatencyOffset) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.rails = {net::ib_profile()};
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.strategy = nmad::StrategyKind::CostModel;
  cfg.pioman = true;
  cfg.trace = true;

  mpi::Cluster cluster(cfg);
  cluster.run([&](mpi::Comm& c) {
    const int peer = c.rank() < c.size() / 2 ? c.rank() + c.size() / 2 : c.rank() - c.size() / 2;
    sim::Xoshiro256 rng(99 + static_cast<std::uint64_t>(c.rank() < peer ? c.rank() : peer));
    for (int i = 0; i < 20; ++i) {
      const std::size_t size = 1 + rng.below(128_KiB);
      std::vector<std::byte> out(size), in(size);
      c.sendrecv(out.data(), size, peer, i, in.data(), size, peer, i);
    }
    c.barrier();
  });

  const obs::Recorder* rec = cluster.recorder();
  ASSERT_NE(rec, nullptr);
  const obs::Histogram* h = rec->metrics().find_histogram("nmad.sched.pred_error_us");
  ASSERT_NE(h, nullptr);
  ASSERT_GT(h->count(), 0u);
  const double mean_us = h->sum() / static_cast<double>(h->count());
  // Old estimator: mean |error| ~= kIbWireLatency = 1.1us. Demand < 0.5us.
  EXPECT_LT(mean_us, 0.5) << "pred_error mean " << mean_us
                          << "us — wire-latency offset is back in the estimator";
}

// Skewed-rail landing: rank 0 floods the receiver with rendezvous traffic
// pinned to rail 0 only, while rank 1 (the sender under measurement) drives
// both rails with the cost model. The receiver's CTS advertisements
// attribute the granted-but-unlanded backlog to rails by the *observed*
// decayed landing rate — so the interferer's bytes are charged to rail 0,
// where they actually land, and rank 1's per-chunk arrival predictions stay
// honest. The old beta-proportional pseudo-byte prior (a fixed 256 KiB that
// never faded against sustained one-rail traffic) spread that backlog 50/50
// across the equal rails, and the resulting phantom rail-1 queue put a
// systematic multi-chunk-drain offset into every prediction.
TEST(RemotePrediction, SkewedRailLandingKeepsBacklogAttributionHonest) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 4;  // ranks 0,1 on node 0; ranks 2,3 on node 1
  cfg.rails = {net::ib_profile(), net::ib_profile()};  // equal betas: the
  // prior's 50/50 split is maximally wrong against a 100/0 landing skew
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.strategy = nmad::StrategyKind::CostModel;
  cfg.trace = true;
  cfg.rank_rails[0] = {0};  // the interferer drives rail 0 only
  cfg.rdv_quantum = 256_KiB;  // small chunks: prediction errors are measured
  // at chunk grain, so a misattributed backlog shows up many times per round

  constexpr int kRounds = 10;
  constexpr std::size_t kMsg = 2_MiB;
  mpi::Cluster cluster(cfg);
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0 || c.rank() == 1) {
      std::vector<std::byte> buf(kMsg);
      for (int i = 0; i < kRounds; ++i) {
        c.send(buf.data(), kMsg, 2, c.rank() * 100 + i);
      }
    } else if (c.rank() == 2) {
      // Both streams in flight at once: the interferer's outstanding bytes
      // sit granted-but-unlanded exactly when rank 1's grants sample the
      // rail advertisements.
      std::vector<std::byte> a(kMsg), b(kMsg);
      for (int i = 0; i < kRounds; ++i) {
        auto ra = c.irecv(a.data(), kMsg, 0, i);
        auto rb = c.irecv(b.data(), kMsg, 1, 100 + i);
        c.wait(ra);
        c.wait(rb);
      }
    }
    c.barrier();
  });

  const obs::Recorder* rec = cluster.recorder();
  ASSERT_NE(rec, nullptr);
  const obs::Histogram* h = rec->metrics().find_histogram("nmad.sched.remote_pred_error_us");
  ASSERT_NE(h, nullptr);
  ASSERT_GT(h->count(), 0u);
  const double mean_us = h->sum() / static_cast<double>(h->count());
  // With honest landing-rate attribution the mean |error| on this workload
  // sits near 200us — the irreducible part is the interferer's chunks landing
  // *after* the grant sampled the ads. A systematic misattribution (the stuck
  // prior charging half the rail-0 backlog to rail 1) adds a phantom
  // queue-drain offset on every rail-1 chunk, which lifts the mean well past
  // this ceiling. Non-regression pin at ~2x the observed value.
  EXPECT_LT(mean_us, 400.0) << "remote_pred_error mean " << mean_us
                          << "us — backlog attribution no longer follows the landing rate";
}

// Two-ended scenario: two equal rails, but the receiver advertises (via the
// CTS rail_ads riding the unplanned-job hand-off) that rail 0's ingress is
// booked far beyond the whole transfer. A one-ended solve would split the
// payload roughly evenly; the two-ended solve must shed rail 0 entirely and
// push every byte through the receiver-quiet rail — while still conserving
// bytes exactly once with a contiguous cover.
TEST(TwoEndedSplit, ReceiverSaturatedRailShedsItsShare) {
  std::vector<nmad::RailPerf> perfs(2);
  for (int r = 0; r < 2; ++r) {
    perfs[static_cast<std::size_t>(r)].fabric_rail = r;
    perfs[static_cast<std::size_t>(r)].alpha = 2e-6;
    perfs[static_cast<std::size_t>(r)].beta = 1e9;
  }
  nmad::Sampling sampling(perfs);
  nmad::StrategyOptions opts;
  opts.min_split_chunk = 1_KiB;
  opts.rdv_quantum = 4_KiB;

  auto drain = [&](const std::vector<nmad::RailAd>& ads, std::size_t len,
                   std::vector<std::size_t>& per_rail) {
    auto strat = nmad::make_strategy(nmad::StrategyKind::CostModel, sampling, opts);
    nmad::Entry e;
    e.kind = nmad::Entry::Kind::RdvChunk;
    e.dst_proc = 1;
    e.rdv_id = 7;
    e.offset = 0;
    e.rail = -1;  // unplanned: the strategy carves chunks itself
    e.rail_ads = ads;
    e.bytes.resize(len);
    strat->enqueue(std::move(e));
    EXPECT_EQ(strat->rdv_backlog_bytes(), len);

    per_rail.assign(2, 0);
    std::vector<std::pair<std::size_t, std::size_t>> cover;
    while (strat->pending()) {
      bool progress = false;
      // One chunk per rail per sweep — the core asks for the next wire
      // message as each NIC frees, so rails alternate instead of one rail
      // monopolizing the carve loop.
      for (int r = 0; r < 2; ++r) {
        if (auto wm = strat->next(r, /*src=*/0)) {
          progress = true;
          for (const nmad::Entry& c : wm->entries) {
            ASSERT_EQ(c.kind, nmad::Entry::Kind::RdvChunk);
            per_rail[static_cast<std::size_t>(r)] += c.bytes.size();
            cover.emplace_back(c.offset, c.bytes.size());
          }
        }
      }
      ASSERT_TRUE(progress) << "two-ended solve stalled with bytes pending";
    }
    // Exactly-once, contiguous, byte-conserving.
    std::sort(cover.begin(), cover.end());
    std::size_t cursor = 0;
    for (const auto& [off, n] : cover) {
      EXPECT_EQ(off, cursor) << "gap or overlap in the carved chunks";
      cursor = off + n;
    }
    EXPECT_EQ(cursor, len);
    EXPECT_EQ(strat->rdv_backlog_bytes(), 0u);
  };

  constexpr std::size_t kLen = 256_KiB;
  // Baseline: no advertisement — equal rails share the payload.
  std::vector<std::size_t> even;
  drain({}, kLen, even);
  EXPECT_GT(even[0], 0u) << "one-ended split should use both equal rails";
  EXPECT_GT(even[1], 0u);

  // Rail 0's far end booked for a full second (orders of magnitude beyond the
  // ~260us transfer): every byte must shift to the receiver-quiet rail 1.
  std::vector<std::size_t> shed;
  drain({nmad::RailAd{/*fabric_rail=*/0, /*busy_delta=*/1.0, /*backlog_bytes=*/0}}, kLen, shed);
  EXPECT_EQ(shed[0], 0u) << "receiver-saturated rail still carried payload";
  EXPECT_EQ(shed[1], kLen);

  // Same outcome when the saturation is expressed as backlog instead of a
  // busy horizon (1 GiB queued at 1e9 B/s ~= 1.07s of drain time).
  std::vector<std::size_t> shed2;
  drain({nmad::RailAd{0, 0.0, 1u << 30}}, kLen, shed2);
  EXPECT_EQ(shed2[0], 0u);
  EXPECT_EQ(shed2[1], kLen);
}

// cancel_rdv accounting (bugfix b): abandoning a rendezvous mid-drain must
// drop the held job *and* any already-planned chunks, returning the backlog
// to zero — phantom bytes here would permanently skew the cost model's view
// of the rail. Unrelated traffic must survive the cancel untouched.
TEST(CancelRdv, DrainsHeldJobAndPlannedChunksToZeroBacklog) {
  std::vector<nmad::RailPerf> perfs(2);
  for (int r = 0; r < 2; ++r) {
    perfs[static_cast<std::size_t>(r)].fabric_rail = r;
    perfs[static_cast<std::size_t>(r)].alpha = 2e-6;
    perfs[static_cast<std::size_t>(r)].beta = 1e9;
  }
  nmad::Sampling sampling(perfs);
  nmad::StrategyOptions opts;
  opts.min_split_chunk = 1_KiB;
  opts.rdv_quantum = 4_KiB;

  {  // CostModel: unplanned job, partially carved, then cancelled.
    auto strat = nmad::make_strategy(nmad::StrategyKind::CostModel, sampling, opts);
    constexpr std::size_t kLen = 64_KiB;
    nmad::Entry e;
    e.kind = nmad::Entry::Kind::RdvChunk;
    e.dst_proc = 1;
    e.rdv_id = 9;
    e.offset = 0;
    e.rail = -1;
    e.bytes.resize(kLen);
    strat->enqueue(std::move(e));

    const auto wm = strat->next(0, /*src=*/0);  // carve one chunk first
    ASSERT_TRUE(wm.has_value());
    const std::size_t carved = wm->entries.front().bytes.size();
    ASSERT_GT(carved, 0u);
    ASSERT_LT(carved, kLen);
    EXPECT_EQ(strat->rdv_backlog_bytes(), kLen - carved);

    EXPECT_EQ(strat->cancel_rdv(/*dst=*/1, /*rdv_id=*/9), kLen - carved);
    EXPECT_EQ(strat->rdv_backlog_bytes(), 0u);
    EXPECT_FALSE(strat->pending());
    for (int r = 0; r < 2; ++r) {
      EXPECT_EQ(strat->backlog_bytes(r), 0u);
      EXPECT_FALSE(strat->next(r, 0).has_value());
    }
    // Cancelling an unknown rendezvous is a no-op, not an accounting error.
    EXPECT_EQ(strat->cancel_rdv(1, 9), 0u);
  }

  {  // SplitBalance: pre-planned chunks sitting in the rail queues.
    auto strat = nmad::make_strategy(nmad::StrategyKind::SplitBalance, sampling, opts);
    constexpr std::size_t kLen = 128_KiB;
    const std::vector<std::size_t> shares = strat->plan_rdv(kLen);
    std::size_t off = 0;
    for (std::size_t r = 0; r < shares.size(); ++r) {
      if (shares[r] == 0) continue;
      nmad::Entry c;
      c.kind = nmad::Entry::Kind::RdvChunk;
      c.dst_proc = 2;
      c.rdv_id = 11;
      c.offset = off;
      c.rail = static_cast<int>(r);
      c.bytes.resize(shares[r]);
      off += shares[r];
      strat->enqueue(std::move(c));
    }
    ASSERT_EQ(off, kLen);
    // An unrelated eager message to the same destination must survive.
    nmad::Entry keep;
    keep.kind = nmad::Entry::Kind::Eager;
    keep.dst_proc = 2;
    keep.tag = 3;
    keep.bytes.resize(256);
    strat->enqueue(std::move(keep));

    EXPECT_EQ(strat->cancel_rdv(/*dst=*/2, /*rdv_id=*/11), kLen);
    std::size_t eager_seen = 0;
    for (int r = 0; r < 2; ++r) {
      while (auto wm = strat->next(r, 0)) {
        for (const nmad::Entry& x : wm->entries) {
          EXPECT_NE(x.kind, nmad::Entry::Kind::RdvChunk) << "cancelled chunk still emitted";
          if (x.kind == nmad::Entry::Kind::Eager) ++eager_seen;
        }
      }
      EXPECT_EQ(strat->backlog_bytes(r), 0u);
    }
    EXPECT_EQ(eager_seen, 1u) << "cancel_rdv must not drop unrelated traffic";
    EXPECT_FALSE(strat->pending());
  }
}

}  // namespace
}  // namespace nmx
