// MPI layer tests: point-to-point semantics (ordering, statuses, waitall,
// test), typed helpers, and property-style sweeps of every collective
// against a locally computed reference, across process counts and stacks.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"
#include "sim/rng.hpp"

namespace nmx {
namespace {

mpi::ClusterConfig cfg_nmad(int nodes, int procs) {
  mpi::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.procs = procs;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  return cfg;
}

TEST(Pt2Pt, StatusCarriesSourceTagCount) {
  mpi::Cluster cluster(cfg_nmad(2, 2));
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> v(10, 3.5);
      c.send(v.data(), v.size() * sizeof(double), 1, 33);
    } else {
      std::vector<double> v(32);
      auto st = c.recv(v.data(), v.size() * sizeof(double), 0, 33);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 33);
      EXPECT_EQ(st.count, 10 * sizeof(double));
      EXPECT_DOUBLE_EQ(v[9], 3.5);
    }
  });
}

TEST(Pt2Pt, PerPairPerTagOrderIsFifo) {
  mpi::Cluster cluster(cfg_nmad(2, 2));
  cluster.run([&](mpi::Comm& c) {
    constexpr int kN = 50;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) c.send_value(i, 1, 4);
    } else {
      for (int i = 0; i < kN; ++i) EXPECT_EQ(c.recv_value<int>(0, 4), i);
    }
  });
}

TEST(Pt2Pt, WaitallCompletesMixedRequests) {
  mpi::Cluster cluster(cfg_nmad(2, 4));
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> in(3, -1);
      std::vector<mpi::Request> reqs;
      for (int p = 1; p < 4; ++p) {
        reqs.push_back(c.irecv(&in[static_cast<std::size_t>(p - 1)], sizeof(int), p, 9));
      }
      c.waitall(reqs);
      for (int p = 1; p < 4; ++p) EXPECT_EQ(in[static_cast<std::size_t>(p - 1)], p * 7);
    } else {
      int v = c.rank() * 7;
      c.send(&v, sizeof(v), 0, 9);
    }
  });
}

TEST(Pt2Pt, TestPollsUntilComplete) {
  mpi::Cluster cluster(cfg_nmad(2, 2));
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      c.compute(5e-6);
      int v = 77;
      c.send(&v, sizeof(v), 1, 2);
    } else {
      int v = -1;
      mpi::Request r = c.irecv(&v, sizeof(v), 0, 2);
      mpi::Status st;
      int polls = 0;
      while (!c.test(r, &st)) {
        c.compute(1e-6);
        ++polls;
      }
      EXPECT_GT(polls, 0);
      EXPECT_EQ(v, 77);
      EXPECT_EQ(st.count, sizeof(int));
    }
  });
}

TEST(Pt2Pt, SelfSendMatchesOwnReceive) {
  mpi::Cluster cluster(cfg_nmad(1, 1));
  cluster.run([&](mpi::Comm& c) {
    int out = 41, in = -1;
    mpi::Request r = c.irecv(&in, sizeof(in), 0, 5);
    c.send(&out, sizeof(out), 0, 5);
    c.wait(r);
    EXPECT_EQ(in, 41);
  });
}

TEST(Pt2Pt, SendrecvExchangesWithoutDeadlockInRing) {
  mpi::Cluster cluster(cfg_nmad(3, 6));
  cluster.run([&](mpi::Comm& c) {
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() - 1 + c.size()) % c.size();
    int out = c.rank(), in = -1;
    auto st = c.sendrecv(&out, sizeof(out), right, 1, &in, sizeof(in), left, 1);
    EXPECT_EQ(in, left);
    EXPECT_EQ(st.source, left);
  });
}

// ---------------------------------------------------------------------------
// Collectives: property sweeps over (procs, payload size) for every stack.
// ---------------------------------------------------------------------------

struct CollectiveCase {
  mpi::StackKind stack;
  int nodes;
  int procs;
  int count;  // doubles per rank
};

class Collectives : public ::testing::TestWithParam<CollectiveCase> {};

TEST_P(Collectives, MatchReference) {
  const auto param = GetParam();
  mpi::ClusterConfig cfg;
  cfg.nodes = param.nodes;
  cfg.procs = param.procs;
  cfg.stack = param.stack;
  mpi::Cluster cluster(cfg);

  const int P = param.procs;
  const std::size_t count = static_cast<std::size_t>(param.count);

  // Deterministic per-rank contributions.
  auto value = [](int rank, std::size_t i) {
    return static_cast<double>(rank + 1) * 0.5 + static_cast<double>(i);
  };

  cluster.run([&](mpi::Comm& c) {
    const int r = c.rank();
    std::vector<double> mine(count);
    for (std::size_t i = 0; i < count; ++i) mine[i] = value(r, i);

    // allreduce(sum)
    std::vector<double> sum(count);
    c.allreduce(mine.data(), sum.data(), count, mpi::ReduceOp::Sum);
    for (std::size_t i = 0; i < count; ++i) {
      double expect = 0;
      for (int p = 0; p < P; ++p) expect += value(p, i);
      ASSERT_DOUBLE_EQ(sum[i], expect);
    }

    // reduce(max) to a non-zero root
    const int root = P - 1;
    std::vector<double> mx(count);
    c.reduce(mine.data(), mx.data(), count, mpi::ReduceOp::Max, root);
    if (r == root) {
      for (std::size_t i = 0; i < count; ++i) ASSERT_DOUBLE_EQ(mx[i], value(P - 1, i));
    }

    // bcast from the middle rank
    std::vector<double> bc(count);
    if (r == P / 2) bc = mine;
    c.bcast(bc.data(), count * sizeof(double), P / 2);
    for (std::size_t i = 0; i < count; ++i) ASSERT_DOUBLE_EQ(bc[i], value(P / 2, i));

    // allgather
    std::vector<double> all(count * static_cast<std::size_t>(P));
    c.allgather(mine.data(), count * sizeof(double), all.data());
    for (int p = 0; p < P; ++p) {
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_DOUBLE_EQ(all[static_cast<std::size_t>(p) * count + i], value(p, i));
      }
    }

    // gather / scatter round trip through rank 0
    std::vector<double> gathered(count * static_cast<std::size_t>(P));
    c.gather(mine.data(), count * sizeof(double), gathered.data(), 0);
    std::vector<double> scattered(count);
    c.scatter(gathered.data(), count * sizeof(double), scattered.data(), 0);
    for (std::size_t i = 0; i < count; ++i) ASSERT_DOUBLE_EQ(scattered[i], mine[i]);

    // alltoall
    std::vector<double> to(static_cast<std::size_t>(P)), from(static_cast<std::size_t>(P));
    for (int p = 0; p < P; ++p) to[static_cast<std::size_t>(p)] = r * 1000.0 + p;
    c.alltoall(to.data(), sizeof(double), from.data());
    for (int p = 0; p < P; ++p) {
      ASSERT_DOUBLE_EQ(from[static_cast<std::size_t>(p)], p * 1000.0 + r);
    }

    c.barrier();
  });
}

std::vector<CollectiveCase> collective_cases() {
  std::vector<CollectiveCase> cases;
  for (auto stack : {mpi::StackKind::Mpich2Nmad, mpi::StackKind::Mvapich2,
                     mpi::StackKind::OpenMpiBtlIb}) {
    for (int procs : {2, 3, 4, 5, 7, 8, 12, 16}) {
      cases.push_back({stack, (procs + 1) / 2, procs, 17});
    }
  }
  // Larger payloads (crossing eager/rendezvous) on the paper's stack.
  for (int count : {1, 1024, 20000}) {
    cases.push_back({mpi::StackKind::Mpich2Nmad, 3, 6, count});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Collectives, ::testing::ValuesIn(collective_cases()),
                         [](const auto& info) {
                           std::string s = mpi::to_string(info.param.stack);
                           std::erase(s, '-');
                           return s + "_p" + std::to_string(info.param.procs) + "_n" +
                                  std::to_string(info.param.count);
                         });

// ---------------------------------------------------------------------------
// Randomized pt2pt traffic property: many messages with random sizes, tags
// and directions; everything must arrive intact and in per-(pair, tag) order.
// ---------------------------------------------------------------------------

class RandomTraffic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTraffic, AllMessagesArriveInOrder) {
  mpi::Cluster cluster(cfg_nmad(2, 4));
  const std::uint64_t seed = GetParam();

  // Pre-generate a deterministic schedule every rank agrees on:
  // rounds of (src, dst, tag, len).
  struct Msg {
    int src, dst, tag;
    std::size_t len;
  };
  sim::Xoshiro256 rng(seed);
  std::vector<Msg> schedule;
  for (int i = 0; i < 60; ++i) {
    Msg m;
    m.src = static_cast<int>(rng.below(4));
    m.dst = static_cast<int>(rng.below(4));
    if (m.dst == m.src) m.dst = (m.dst + 1) % 4;
    m.tag = static_cast<int>(rng.below(3));
    m.len = 8 + rng.below(200000);  // crosses cells, eager and rendezvous
    schedule.push_back(m);
  }

  cluster.run([&](mpi::Comm& c) {
    // Post receives in schedule order (per pair+tag FIFO must hold), then
    // send in schedule order, then wait for everything.
    std::vector<std::vector<std::byte>> rbufs;
    std::vector<std::vector<std::byte>> sbufs;
    std::vector<mpi::Request> reqs;
    rbufs.reserve(schedule.size());
    sbufs.reserve(schedule.size());
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const Msg& m = schedule[i];
      if (m.dst == c.rank()) {
        rbufs.emplace_back(m.len);
        reqs.push_back(c.irecv(rbufs.back().data(), m.len, m.src, m.tag));
      }
    }
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const Msg& m = schedule[i];
      if (m.src == c.rank()) {
        sbufs.emplace_back(m.len);
        auto& buf = sbufs.back();
        for (std::size_t k = 0; k < std::min<std::size_t>(m.len, 64); ++k) {
          buf[k] = static_cast<std::byte>((i * 13 + k) & 0xff);
        }
        reqs.push_back(c.isend(buf.data(), m.len, m.dst, m.tag));
      }
    }
    c.waitall(reqs);

    // Validate: replay the schedule and check the i-th matching message.
    std::size_t ri = 0;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const Msg& m = schedule[i];
      if (m.dst != c.rank()) continue;
      const auto& buf = rbufs[ri++];
      ASSERT_EQ(buf.size(), m.len);
      for (std::size_t k = 0; k < std::min<std::size_t>(m.len, 64); ++k) {
        ASSERT_EQ(buf[k], static_cast<std::byte>((i * 13 + k) & 0xff))
            << "message " << i << " byte " << k << " (seed " << seed << ")";
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraffic, ::testing::Values(1, 2, 3, 42, 1234, 99999));

}  // namespace
}  // namespace nmx
