// Integration tests asserting the *shapes* of the paper's figures — the
// claims EXPERIMENTS.md makes are enforced here so a regression in any layer
// shows up as a test failure, not as a silently wrong bench table.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "harness/netpipe.hpp"
#include "harness/overlap.hpp"
#include "harness/sidecar.hpp"
#include "mpi/cluster.hpp"

namespace nmx {
namespace {

mpi::ClusterConfig two_nodes(mpi::StackKind stack, std::vector<net::NicProfile> rails,
                             bool pioman = false) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.rails = std::move(rails);
  cfg.stack = stack;
  cfg.pioman = pioman;
  if (cfg.rails.size() > 1) cfg.strategy = nmad::StrategyKind::SplitBalance;
  return cfg;
}

double lat4(mpi::ClusterConfig cfg, bool as = false) {
  return harness::netpipe(std::move(cfg), {4}, 3, as)[0].latency_us;
}
double bw(mpi::ClusterConfig cfg, std::size_t size) {
  return harness::netpipe(std::move(cfg), {size})[0].bandwidth_MBps;
}

// --- Figure 4 ---------------------------------------------------------------

TEST(Fig4Shape, LatencyOrderingAndValues) {
  const double mvapich = lat4(two_nodes(mpi::StackKind::Mvapich2, {net::ib_profile()}));
  const double ompi = lat4(two_nodes(mpi::StackKind::OpenMpiBtlIb, {net::ib_profile()}));
  const double nmad = lat4(two_nodes(mpi::StackKind::Mpich2Nmad, {net::ib_profile()}));
  const double nmad_as = lat4(two_nodes(mpi::StackKind::Mpich2Nmad, {net::ib_profile()}), true);
  EXPECT_NEAR(mvapich, 1.5, 0.2);
  EXPECT_NEAR(ompi, 1.6, 0.2);
  EXPECT_NEAR(nmad, 2.1, 0.2);
  EXPECT_NEAR(nmad_as - nmad, 0.3, 0.05);  // constant any-source gap
  EXPECT_LT(mvapich, ompi);
  EXPECT_LT(ompi, nmad);
}

TEST(Fig4Shape, BandwidthOrdering) {
  const auto ib = net::ib_profile();
  // MVAPICH2 outperforms everyone at large sizes (registration cache).
  for (std::size_t size : {1u << 20, 16u << 20}) {
    const double m = bw(two_nodes(mpi::StackKind::Mvapich2, {ib}), size);
    const double n = bw(two_nodes(mpi::StackKind::Mpich2Nmad, {ib}), size);
    const double o = bw(two_nodes(mpi::StackKind::OpenMpiBtlIb, {ib}), size);
    EXPECT_GT(m, n) << size;
    EXPECT_GT(n, o) << size;  // and Nmad stays above Open MPI
  }
  // "higher bandwidth than Open MPI for medium-sized messages" (§4.1.1).
  for (std::size_t size : {16384u, 65536u, 262144u}) {
    const double n = bw(two_nodes(mpi::StackKind::Mpich2Nmad, {ib}), size);
    const double o = bw(two_nodes(mpi::StackKind::OpenMpiBtlIb, {ib}), size);
    EXPECT_GT(n, o) << size;
  }
}

// --- Figure 5 ---------------------------------------------------------------

TEST(Fig5Shape, MultirailPicksFastestRailForSmallMessages) {
  const double ib = lat4(two_nodes(mpi::StackKind::Mpich2Nmad, {net::ib_profile()}));
  mpi::ClusterConfig multi = two_nodes(mpi::StackKind::Mpich2Nmad,
                                       {net::ib_profile(), net::mx_profile()});
  multi.strategy = nmad::StrategyKind::SplitBalance;
  const double m = lat4(multi);
  EXPECT_NEAR(m, ib, 0.02);  // small messages ride the IB rail only
}

TEST(Fig5Shape, MultirailBandwidthApproachesSumOfRails) {
  const std::size_t size = 16u << 20;
  const double ib = bw(two_nodes(mpi::StackKind::Mpich2Nmad, {net::ib_profile()}), size);
  const double mx = bw(two_nodes(mpi::StackKind::Mpich2Nmad, {net::mx_profile()}), size);
  mpi::ClusterConfig multi = two_nodes(mpi::StackKind::Mpich2Nmad,
                                       {net::ib_profile(), net::mx_profile()});
  multi.strategy = nmad::StrategyKind::SplitBalance;
  const double both = bw(multi, size);
  EXPECT_GT(both, ib * 1.5);          // clearly aggregated
  EXPECT_GT(both, 0.85 * (ib + mx));  // "almost ... the sum" (§4.1.1)
  EXPECT_LT(both, ib + mx);           // but not more than the sum
}

// --- Figure 6 ---------------------------------------------------------------

TEST(Fig6Shape, PiomanShmOverheadIsConstant450ns) {
  auto shm_cfg = [](bool pioman) {
    mpi::ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.procs = 2;
    cfg.stack = mpi::StackKind::Mpich2Nmad;
    cfg.pioman = pioman;
    return cfg;
  };
  const auto base = harness::netpipe(shm_cfg(false), {4, 512});
  const auto piom = harness::netpipe(shm_cfg(true), {4, 512});
  EXPECT_NEAR(piom[0].latency_us - base[0].latency_us, 0.45, 0.05);
  EXPECT_NEAR(piom[1].latency_us - base[1].latency_us, 0.45, 0.05);  // constant in size
}

TEST(Fig6Shape, PiomanNetworkOverheadIsRoughly2us) {
  const double base = lat4(two_nodes(mpi::StackKind::Mpich2Nmad, {net::mx_profile()}));
  const double piom = lat4(two_nodes(mpi::StackKind::Mpich2Nmad, {net::mx_profile()}, true));
  EXPECT_NEAR(piom - base, 2.0, 0.2);
}

TEST(Fig6Shape, CmPmlBeatsBtlOverMx) {
  const double cm = lat4(two_nodes(mpi::StackKind::OpenMpiCmMx, {net::mx_profile()}));
  const double btl = lat4(two_nodes(mpi::StackKind::OpenMpiBtlMx, {net::mx_profile()}));
  const double nmad = lat4(two_nodes(mpi::StackKind::Mpich2Nmad, {net::mx_profile()}));
  EXPECT_LT(cm, nmad);
  EXPECT_LT(nmad, btl);
}

// --- Figure 7 ---------------------------------------------------------------

TEST(Fig7Shape, OnlyPiomanOverlapsEagerSends) {
  const std::vector<std::size_t> sizes{16384};
  const double compute = 20e-6;
  auto ref = harness::overlap(two_nodes(mpi::StackKind::Mpich2Nmad, {net::mx_profile()}), sizes,
                              0.0)[0].send_time_us;
  auto plain = harness::overlap(two_nodes(mpi::StackKind::Mpich2Nmad, {net::mx_profile()}), sizes,
                                compute)[0].send_time_us;
  auto piom = harness::overlap(two_nodes(mpi::StackKind::Mpich2Nmad, {net::mx_profile()}, true),
                               sizes, compute)[0].send_time_us;
  auto ompi = harness::overlap(two_nodes(mpi::StackKind::OpenMpiCmMx, {net::mx_profile()}), sizes,
                               compute)[0].send_time_us;
  // No background progression: sum(comm, compute).
  EXPECT_NEAR(plain, ref + 20.0, 2.0);
  EXPECT_NEAR(ompi, ref + 20.0, 4.0);
  // PIOMan: max(comm, compute).
  EXPECT_NEAR(piom, std::max(ref, 20.0), 2.5);
}

TEST(Fig7Shape, OnlyPiomanProgressesRendezvousDuringCompute) {
  const std::vector<std::size_t> sizes{1 << 20};
  const double compute = 400e-6;
  const auto ib = net::ib_profile();
  auto ref = harness::overlap(two_nodes(mpi::StackKind::Mpich2Nmad, {ib}), sizes, 0.0)[0]
                  .send_time_us;
  auto plain = harness::overlap(two_nodes(mpi::StackKind::Mpich2Nmad, {ib}), sizes, compute)[0]
                   .send_time_us;
  auto piom = harness::overlap(two_nodes(mpi::StackKind::Mpich2Nmad, {ib}, true), sizes,
                               compute)[0].send_time_us;
  auto mvapich = harness::overlap(two_nodes(mpi::StackKind::Mvapich2, {ib}), sizes, compute)[0]
                     .send_time_us;
  EXPECT_NEAR(plain, ref + 400.0, 10.0);
  EXPECT_GT(mvapich, 1000.0);  // no handshake detection during compute
  EXPECT_LT(piom, plain - 300.0);  // most of the compute is hidden
  EXPECT_NEAR(piom, std::max(ref, 400.0), 0.15 * std::max(ref, 400.0));
}

// --- Metrics-backed assertions ---------------------------------------------
// The fig benches leave `<stem>.metrics.csv` sidecars behind (see
// harness/sidecar.hpp). These tests run the same traced sidecar workload and
// assert the figures' claims from the exported metrics themselves, so a
// regression in the *instrumentation* fails as loudly as one in the timings.

std::optional<double> read_metric(const std::string& path, const std::string& kind,
                                  const std::string& name, const std::string& label,
                                  const std::string& field) {
  std::ifstream in(path);
  const std::string want = kind + ',' + name + ',' + label + ',' + field + ',';
  for (std::string line; std::getline(in, line);) {
    if (line.rfind(want, 0) == 0) return std::stod(line.substr(want.size()));
  }
  return std::nullopt;
}

TEST(SidecarMetrics, Fig5MultirailSidecarShowsTrafficOnBothRails) {
  mpi::ClusterConfig cfg =
      two_nodes(mpi::StackKind::Mpich2Nmad, {net::ib_profile(), net::mx_profile()});
  cfg.strategy = nmad::StrategyKind::SplitBalance;
  ASSERT_GT(harness::run_traced_sidecar(cfg, "shape_fig5_sidecar"), 0u);
  const std::string csv = "shape_fig5_sidecar.metrics.csv";
  const auto ib = read_metric(csv, "counter", "nmad.rail.tx_bytes", "rail=0", "value");
  const auto mx = read_metric(csv, "counter", "nmad.rail.tx_bytes", "rail=1", "value");
  ASSERT_TRUE(ib.has_value());
  ASSERT_TRUE(mx.has_value()) << "multirail run moved no bytes over the second rail";
  EXPECT_GT(*ib, 0.0);
  EXPECT_GT(*mx, 0.0);
  // The equal-finish split favours the higher-beta IB rail, but the MX rail
  // must still carry a real share of the rendezvous payload.
  EXPECT_GT(*ib, *mx);
  EXPECT_GT(*mx, 16.0 * 1024.0);  // at least one min_split_chunk
}

TEST(SidecarMetrics, Fig6PiomanSidecarRecordsProgressPasses) {
  mpi::ClusterConfig cfg = two_nodes(mpi::StackKind::Mpich2Nmad, {net::mx_profile()}, true);
  ASSERT_GT(harness::run_traced_sidecar(cfg, "shape_fig6_sidecar"), 0u);
  const auto passes =
      read_metric("shape_fig6_sidecar.metrics.csv", "counter", "pioman.passes", "", "value");
  ASSERT_TRUE(passes.has_value()) << "PIOMan ran but exported no pass counter";
  EXPECT_GT(*passes, 0.0);
}

TEST(SidecarMetrics, TwoEndedCtsAdvertisementShowsUpInSidecar) {
  // The sidecar workload's 256 KiB isend crosses the rendezvous threshold, so
  // with the cost model + two-ended grants every CTS must carry a per-rail
  // load advertisement and every carved chunk a checked arrival prediction.
  mpi::ClusterConfig cfg =
      two_nodes(mpi::StackKind::Mpich2Nmad, {net::ib_profile(), net::mx_profile()});
  cfg.strategy = nmad::StrategyKind::CostModel;
  cfg.two_ended_rdv = true;
  ASSERT_GT(harness::run_traced_sidecar(cfg, "shape_cts_ads_sidecar"), 0u);
  const std::string csv = "shape_cts_ads_sidecar.metrics.csv";

  const auto ads = read_metric(csv, "counter", "nmad.sched.cts_ads", "", "value");
  ASSERT_TRUE(ads.has_value()) << "rendezvous ran but no CTS carried a load advertisement";
  EXPECT_GT(*ads, 0.0);
  // One gauge pair per advertised rail, labelled by fabric rail index. An
  // idle receiver legitimately advertises zeros — existence is the claim.
  for (int r = 0; r < 2; ++r) {
    const std::string label = "rail=" + std::to_string(r);
    EXPECT_TRUE(read_metric(csv, "gauge", "nmad.sched.remote_busy_us", label, "last").has_value())
        << "missing busy advertisement for " << label;
    EXPECT_TRUE(
        read_metric(csv, "gauge", "nmad.sched.remote_backlog_bytes", label, "last").has_value())
        << "missing backlog advertisement for " << label;
  }
  const auto preds =
      read_metric(csv, "hist", "nmad.sched.remote_pred_error_us", "", "count");
  ASSERT_TRUE(preds.has_value()) << "no chunk carried a two-ended arrival prediction";
  EXPECT_GT(*preds, 0.0);
}

// --- Cost-model scheduler (ablation shape) ----------------------------------
// Mirrors bench/abl_costmodel.cc: a rendezvous foreground stream plus a
// co-located eager injection storm over shared NICs. The load-aware cost
// model must not lose on an idle fabric and must win under cross-traffic.

double aggregate_MBps(nmad::StrategyKind strat, bool contended) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 4;  // block mapping: ranks 0,1 on node 0 / ranks 2,3 on node 1
  cfg.rails = {net::ib_profile(), net::mx_profile()};
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.strategy = strat;

  constexpr std::size_t kFgMsg = 8u << 20;
  constexpr int kFgIters = 4;
  constexpr std::size_t kNoise = 32u << 10;
  constexpr int kNoiseMsgs = 384;

  mpi::Cluster cluster(cfg);
  const double t0 = cluster.now();
  cluster.run([&](mpi::Comm& c) {
    switch (c.rank()) {
      case 0: {
        std::vector<std::byte> buf(kFgMsg);
        for (int i = 0; i < kFgIters; ++i) c.send(buf.data(), buf.size(), 2, 1);
        char ack = 0;
        c.recv(&ack, 1, 2, 2);
        break;
      }
      case 2: {
        std::vector<std::byte> buf(kFgMsg);
        for (int i = 0; i < kFgIters; ++i) c.recv(buf.data(), buf.size(), 0, 1);
        const char ack = 1;
        c.send(&ack, 1, 0, 2);
        break;
      }
      case 1: {
        if (!contended) break;
        std::vector<std::byte> noise(kNoise);
        std::vector<mpi::Request> reqs;
        reqs.reserve(kNoiseMsgs);
        for (int i = 0; i < kNoiseMsgs; ++i) {
          reqs.push_back(c.isend(noise.data(), noise.size(), 3, 5));
        }
        c.waitall(reqs);
        break;
      }
      case 3: {
        if (!contended) break;
        std::vector<std::byte> noise(kNoise);
        for (int i = 0; i < kNoiseMsgs; ++i) c.recv(noise.data(), noise.size(), 1, 5);
        break;
      }
      default:
        break;
    }
  });
  const double elapsed = cluster.now() - t0;
  const double bytes = static_cast<double>(kFgIters) * static_cast<double>(kFgMsg) +
                       (contended ? static_cast<double>(kNoiseMsgs) * kNoise : 0.0);
  return bytes / elapsed / (1024.0 * 1024.0);
}

TEST(CostModelShape, MatchesSplitBalanceOnIdleFabric) {
  const double sb = aggregate_MBps(nmad::StrategyKind::SplitBalance, false);
  const double cm = aggregate_MBps(nmad::StrategyKind::CostModel, false);
  EXPECT_GT(cm, 0.98 * sb) << "cost model must degenerate to the sampled split when idle";
}

TEST(CostModelShape, BeatsSplitBalanceUnderEagerCrossTraffic) {
  const double sb = aggregate_MBps(nmad::StrategyKind::SplitBalance, true);
  const double cm = aggregate_MBps(nmad::StrategyKind::CostModel, true);
  EXPECT_GE(cm, sb) << "load-aware scheduling lost aggregate bandwidth under contention";
  EXPECT_GT(cm, 1.05 * sb) << "cross-traffic case no longer shows a load-aware win";
}

}  // namespace
}  // namespace nmx
