// End-to-end smoke tests: every stack moves bytes correctly and the headline
// latency calibration (§4.1.1) holds.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"

namespace nmx {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 31 + static_cast<std::size_t>(seed)) & 0xff);
  }
  return v;
}

class PingPong : public ::testing::TestWithParam<mpi::StackKind> {};

TEST_P(PingPong, InterNodeRoundtripCarriesBytes) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.stack = GetParam();
  mpi::Cluster cluster(cfg);

  const auto msg = pattern(1024, 7);
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      c.send(msg.data(), msg.size(), 1, 42);
      std::vector<std::byte> back(msg.size());
      auto st = c.recv(back.data(), back.size(), 1, 43);
      EXPECT_EQ(st.count, msg.size());
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(back, msg);
    } else {
      std::vector<std::byte> in(msg.size());
      auto st = c.recv(in.data(), in.size(), 0, 42);
      EXPECT_EQ(st.count, msg.size());
      EXPECT_EQ(in, msg);
      c.send(in.data(), in.size(), 0, 43);
    }
  });
}

TEST_P(PingPong, LargeRendezvousMessage) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 2;
  cfg.stack = GetParam();
  mpi::Cluster cluster(cfg);

  const auto msg = pattern(3 * 1024 * 1024 + 17, 3);
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      c.send(msg.data(), msg.size(), 1, 1);
    } else {
      std::vector<std::byte> in(msg.size());
      auto st = c.recv(in.data(), in.size(), 0, 1);
      EXPECT_EQ(st.count, msg.size());
      EXPECT_EQ(in, msg);
    }
  });
}

TEST_P(PingPong, IntraNodeSharedMemory) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.procs = 2;
  cfg.stack = GetParam();
  mpi::Cluster cluster(cfg);

  const auto small = pattern(512, 1);
  const auto big = pattern(300 * 1024, 2);  // well past cell and LMT sizes
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      c.send(small.data(), small.size(), 1, 5);
      c.send(big.data(), big.size(), 1, 6);
    } else {
      std::vector<std::byte> a(small.size()), b(big.size());
      c.recv(a.data(), a.size(), 0, 5);
      auto st = c.recv(b.data(), b.size(), 0, 6);
      EXPECT_EQ(a, small);
      EXPECT_EQ(b, big);
      EXPECT_EQ(st.count, big.size());
    }
  });
}

TEST_P(PingPong, CollectivesAgree) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.procs = 6;
  cfg.stack = GetParam();
  mpi::Cluster cluster(cfg);

  cluster.run([&](mpi::Comm& c) {
    c.barrier();
    double v = c.rank() + 1.0;
    double sum = c.allreduce_one(v, mpi::ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(sum, 21.0);  // 1+2+...+6

    int root_val = c.rank() == 2 ? 1234 : 0;
    c.bcast(&root_val, sizeof(root_val), 2);
    EXPECT_EQ(root_val, 1234);

    std::vector<int> mine(3, c.rank());
    std::vector<int> all(3 * 6, -1);
    c.allgather(mine.data(), mine.size() * sizeof(int), all.data());
    for (int p = 0; p < 6; ++p) {
      for (int i = 0; i < 3; ++i) EXPECT_EQ(all[static_cast<std::size_t>(p * 3 + i)], p);
    }

    std::vector<int> tosend(6), got(6, -1);
    for (int p = 0; p < 6; ++p) tosend[static_cast<std::size_t>(p)] = c.rank() * 100 + p;
    c.alltoall(tosend.data(), sizeof(int), got.data());
    for (int p = 0; p < 6; ++p) EXPECT_EQ(got[static_cast<std::size_t>(p)], p * 100 + c.rank());
  });
}

INSTANTIATE_TEST_SUITE_P(AllStacks, PingPong,
                         ::testing::Values(mpi::StackKind::Mpich2Nmad, mpi::StackKind::Mvapich2,
                                           mpi::StackKind::OpenMpiBtlIb,
                                           mpi::StackKind::OpenMpiCmMx),
                         [](const auto& info) {
                           std::string s = mpi::to_string(info.param);
                           std::erase(s, '-');
                           return s;
                         });

TEST(Calibration, SmallMessageLatenciesMatchPaper) {
  // §4.1.1: MVAPICH2 1.5µs, Open MPI 1.6µs, MPICH2-NewMadeleine 2.1µs.
  auto one_way = [](mpi::StackKind stack) {
    mpi::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.procs = 2;
    cfg.stack = stack;
    mpi::Cluster cluster(cfg);
    double t = 0;
    cluster.run([&](mpi::Comm& c) {
      char b = 'x';
      const int iters = 10;
      // warmup
      if (c.rank() == 0) {
        c.send(&b, 1, 1, 0);
        c.recv(&b, 1, 1, 0);
      } else {
        c.recv(&b, 1, 0, 0);
        c.send(&b, 1, 0, 0);
      }
      const double t0 = c.wtime();
      for (int i = 0; i < iters; ++i) {
        if (c.rank() == 0) {
          c.send(&b, 1, 1, 0);
          c.recv(&b, 1, 1, 0);
        } else {
          c.recv(&b, 1, 0, 0);
          c.send(&b, 1, 0, 0);
        }
      }
      if (c.rank() == 0) t = (c.wtime() - t0) / (2.0 * iters);
    });
    return t * 1e6;  // µs
  };

  const double nmad = one_way(mpi::StackKind::Mpich2Nmad);
  const double mvapich = one_way(mpi::StackKind::Mvapich2);
  const double ompi = one_way(mpi::StackKind::OpenMpiBtlIb);
  EXPECT_NEAR(nmad, 2.1, 0.25);
  EXPECT_NEAR(mvapich, 1.5, 0.2);
  EXPECT_NEAR(ompi, 1.6, 0.2);
  EXPECT_LT(mvapich, ompi);
  EXPECT_LT(ompi, nmad);
}

}  // namespace
}  // namespace nmx
