// Stress tests for the pooled-event engine: randomized schedule/cancel
// sequences are replayed against a naive reference queue (a multimap ordered
// by (t, seq)) and must execute in exactly the reference order; the pool
// accounting must balance (no leaked slots, no tombstone residue, zero heap
// allocations for small closures); and the fiber actor runtime must stay
// sound at 1024 ranks — spawn/teardown waves reuse pooled stacks, blocked
// actors unwind cleanly on destruction, an overflowing actor hits its guard
// page instead of a neighbor, and the deadlock detector names every stuck
// actor.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace nmx {
namespace {

using sim::Engine;
using sim::EventId;

// ---------------------------------------------------------------------------
// Randomized schedule/cancel vs. a naive reference queue
// ---------------------------------------------------------------------------

// Mirrors the engine's contract with the simplest possible structure: every
// schedule inserts (t_clamped, insertion-order) -> label; cancel marks the
// label dead; execution must visit live labels in exact key order.
struct ReferenceQueue {
  std::map<std::pair<Time, std::uint64_t>, std::uint64_t> pending;  // (t, seq) -> label
  std::set<std::uint64_t> cancelled;
  std::uint64_t next_seq = 0;

  void insert(Time t, std::uint64_t label) { pending[{t, next_seq++}] = label; }

  /// Pop the next live label; asserts it matches `label` at time `t`.
  void expect_front(Time t, std::uint64_t label) {
    while (!pending.empty() && cancelled.count(pending.begin()->second) > 0) {
      pending.erase(pending.begin());
    }
    ASSERT_FALSE(pending.empty()) << "engine ran label " << label << " the reference lacks";
    EXPECT_EQ(pending.begin()->second, label) << "execution order diverged from reference";
    EXPECT_EQ(pending.begin()->first.first, t) << "event ran at the wrong virtual time";
    pending.erase(pending.begin());
  }

  std::size_t live() const {
    std::size_t n = 0;
    for (const auto& [key, label] : pending) n += cancelled.count(label) == 0 ? 1 : 0;
    return n;
  }
};

class StressDriver {
 public:
  StressDriver(std::uint64_t seed, std::size_t max_events)
      : rng_(seed), max_events_(max_events) {}

  void run() {
    for (int i = 0; i < 32; ++i) step();  // seed the storm from t=0
    eng_.run();
    EXPECT_EQ(ref_.live(), 0u) << "reference still has live events the engine never ran";
    // Pool accounting: every slot returned, every tombstone reaped, and the
    // small closures below never touched the heap.
    EXPECT_EQ(eng_.live_events(), 0u) << "leaked pool slots";
    EXPECT_EQ(eng_.tombstones(), 0u);
    EXPECT_EQ(eng_.closure_heap_allocs(), 0u) << "steady-state closure spilled to the heap";
    EXPECT_EQ(executed_, eng_.events_processed());
  }

 private:
  // One random action: mostly schedules (mixed absolute/delta/past-clamped),
  // sometimes cancels of a random outstanding, stale, or already-run id.
  void step() {
    const std::uint64_t roll = rng_.below(100);
    if (roll < 70 && scheduled_ < max_events_) {
      schedule_one();
    } else if (!outstanding_.empty()) {
      const std::size_t pick = rng_.below(outstanding_.size());
      const auto [id, label] = outstanding_[pick];
      eng_.cancel(id);     // O(1) tombstone; may be stale (already ran) — no-op then
      eng_.cancel(id);     // double-cancel must also be a no-op
      ref_.cancelled.insert(label);
      outstanding_[pick] = outstanding_.back();
      outstanding_.pop_back();
    }
  }

  void schedule_one() {
    const std::uint64_t label = next_label_++;
    ++scheduled_;
    Time t;
    EventId id;
    auto body = [this, label] { on_fire(label); };
    switch (rng_.below(4)) {
      case 0: {  // constant-delta fast path (NIC-style)
        static constexpr Time kDeltas[3] = {1e-7, 3e-7, 1.1e-6};
        const Time dt = kDeltas[rng_.below(3)];
        t = eng_.now() + dt;
        id = eng_.schedule_in(dt, body);
        break;
      }
      case 1: {  // varying delta -> heap
        const Time dt = static_cast<Time>(1 + rng_.below(5000)) * 1e-9;
        t = eng_.now() + dt;
        id = eng_.schedule_in(dt, body);
        break;
      }
      case 2: {  // absolute future time -> heap
        t = eng_.now() + static_cast<Time>(rng_.below(3000)) * 1e-9;
        id = eng_.schedule(t, body);
        break;
      }
      default: {  // past absolute time: clamps to now -> due bucket
        t = eng_.now();
        id = eng_.schedule(eng_.now() - 1e-6, body);
        break;
      }
    }
    ref_.insert(t, label);
    outstanding_.push_back({id, label});
  }

  void on_fire(std::uint64_t label) {
    ++executed_;
    ref_.expect_front(eng_.now(), label);
    std::erase_if(outstanding_, [&](const auto& p) { return p.second == label; });
    // Keep the storm alive: every execution takes a few more random actions.
    const int n = 1 + static_cast<int>(rng_.below(3));
    for (int i = 0; i < n; ++i) step();
  }

  sim::Xoshiro256 rng_;
  std::size_t max_events_;
  Engine eng_;
  ReferenceQueue ref_;
  std::vector<std::pair<EventId, std::uint64_t>> outstanding_;
  std::uint64_t next_label_ = 0;
  std::size_t scheduled_ = 0;
  std::size_t executed_ = 0;
};

class EngineStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineStress, MatchesReferenceQueueOrderWithoutLeaks) {
  StressDriver d(GetParam(), /*max_events=*/20000);
  d.run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineStress, ::testing::Values(1, 7, 42, 1234, 987654321));

// ---------------------------------------------------------------------------
// Cancellation-heavy paths
// ---------------------------------------------------------------------------

TEST(EngineStress, MassCancellationCompactsTheHeapAndFreesEverySlot) {
  Engine eng;
  std::vector<EventId> ids;
  std::size_t fired = 0;
  // Distinct deltas so everything lands in the binary heap (the delta-queue
  // fast path only keeps 8 repeated constants).
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(eng.schedule_in(1e-6 + static_cast<Time>(i) * 1e-9, [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 10 != 0) eng.cancel(ids[i]);  // kill 90%
  }
  EXPECT_GT(eng.tombstones(), 0u);
  eng.run();
  EXPECT_EQ(fired, 500u);
  EXPECT_EQ(eng.events_processed(), 500u) << "cancelled events must not count as processed";
  EXPECT_GE(eng.heap_compactions(), 1u) << "deferred compaction never triggered";
  EXPECT_EQ(eng.live_events(), 0u);
  EXPECT_EQ(eng.tombstones(), 0u);
}

TEST(EngineStress, StaleIdsAfterSlotReuseAreNoOps) {
  Engine eng;
  bool second_ran = false;
  const EventId first = eng.schedule_in(1e-6, [] {});
  eng.run();  // first ran; its slot goes back to the free list
  const EventId second = eng.schedule_in(1e-6, [&] { second_ran = true; });
  EXPECT_NE(first, second) << "generation must disambiguate a reused slot";
  eng.cancel(first);  // stale id likely aliases second's slot — must be a no-op
  eng.run();
  EXPECT_TRUE(second_ran);
}

// ---------------------------------------------------------------------------
// Spawn/teardown and the deadlock detector at scale
// ---------------------------------------------------------------------------

constexpr int kRanks = 64;        // mixed-traffic soak: every blocking shape
constexpr int kManyRanks = 1024;  // fiber-wall scale: thread actors capped out here

TEST(EngineAtScale, SixtyFourActorsSpawnRunAndTearDownCleanly) {
  Engine eng;
  int done = 0;
  for (int r = 0; r < kRanks; ++r) {
    eng.spawn("rank" + std::to_string(r), [&eng, &done, r](sim::Actor& self) {
      // Mixed sleep / timed-block traffic, with cross-actor wakes via events.
      for (int i = 0; i < 10; ++i) {
        self.sleep_for(static_cast<Time>(1 + r) * 1e-7);
        eng.schedule_in(5e-8, [&self] { self.wake(); });
        self.block_until(eng.now() + 1.0);  // woken long before the deadline
      }
      ++done;
    });
  }
  eng.run();
  EXPECT_EQ(done, kRanks);
  EXPECT_EQ(eng.live_events(), 0u) << "teardown leaked pool slots";
  EXPECT_EQ(eng.tombstones(), 0u) << "wake() left unreaped timeout tombstones";
}

TEST(EngineAtScale, DeadlockDetectorNamesAllSixtyFourStuckActors) {
  Engine eng;
  for (int r = 0; r < kRanks; ++r) {
    eng.spawn("stuck" + std::to_string(r), [](sim::Actor& self) { self.block(); });
  }
  try {
    eng.run();
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    const std::string msg = e.what();
    for (int r = 0; r < kRanks; ++r) {
      EXPECT_NE(msg.find("stuck" + std::to_string(r)), std::string::npos)
          << "actor stuck" << r << " missing from deadlock report";
    }
  }
}

TEST(EngineAtScale, DestructionWith1024BlockedActorsDoesNotHang) {
  auto eng = std::make_unique<Engine>();
  for (int r = 0; r < kManyRanks; ++r) {
    eng->spawn("held" + std::to_string(r), [](sim::Actor& self) { self.block(); });
  }
  EXPECT_THROW(eng->run(), sim::DeadlockError);
  eng.reset();  // must unwind all 1024 parked fibers without hanging
}

TEST(EngineAtScale, TeardownWithPendingBlockUntilTimersIsClean) {
  // Actors parked in block_until() each hold a live timeout event. When the
  // engine is torn down mid-run (here: an exception aborts run() while the
  // timers are still far in the future), request_stop() unwinds each actor
  // with a StopToken — which skips the normal block_until epilogue that
  // clears timer_. Teardown must tombstone-cancel those timers itself while
  // the actors still exist; regressing this leaves resume events pointing at
  // destroyed actors in the pool during queue destruction (caught by the
  // sanitizer jobs).
  auto eng = std::make_unique<Engine>();
  for (int r = 0; r < kManyRanks; ++r) {
    eng->spawn("timed" + std::to_string(r), [](sim::Actor& self) {
      self.block_until(self.engine().now() + 1e9);  // never woken, never due
    });
  }
  eng->spawn("bomb", [](sim::Actor&) { throw std::runtime_error("abort the run"); });
  EXPECT_THROW(eng->run(), std::runtime_error);
  eng.reset();
}

TEST(EngineAtScale, ThousandActorWavesReusePooledStacks) {
  Engine eng;
  int done = 0;
  auto wave = [&](int w) {
    for (int r = 0; r < kManyRanks; ++r) {
      eng.spawn("wave" + std::to_string(w) + ".r" + std::to_string(r),
                [&done](sim::Actor& self) {
                  self.sleep_for(1e-9);  // forces a real park + fiber re-entry
                  ++done;
                });
    }
    eng.run();
  };

  wave(0);
  EXPECT_EQ(done, kManyRanks);
  // All 1024 actors were live at once (they all start before the first sleep
  // expires), then every stack went back to the pool as its actor finished.
  EXPECT_EQ(eng.fiber_stacks_in_use(), 0u);
  const auto mapped = eng.fiber_stacks_allocated();
  EXPECT_EQ(mapped, static_cast<std::uint64_t>(kManyRanks));
  EXPECT_EQ(eng.reap_finished(), static_cast<std::size_t>(kManyRanks));

  wave(1);
  EXPECT_EQ(done, 2 * kManyRanks);
  // The second wave must ride entirely on recycled stacks: the pool's mmap
  // count is the live-actor high-water mark, not the spawn count.
  EXPECT_EQ(eng.fiber_stacks_allocated(), mapped) << "stack pool failed to reuse freed stacks";
  EXPECT_GE(eng.fiber_stack_reuses(), static_cast<std::uint64_t>(kManyRanks));
  EXPECT_EQ(eng.fiber_stacks_in_use(), 0u);
  EXPECT_EQ(eng.reap_finished(), static_cast<std::size_t>(kManyRanks));
  EXPECT_EQ(eng.live_events(), 0u);
}

// ---------------------------------------------------------------------------
// Fiber stack sizing and the guard page
// ---------------------------------------------------------------------------

TEST(FiberStackConfig, ConfigEnvOverrideAndFloorResolveAsDocumented) {
  ::unsetenv("NMX_FIBER_STACK_KB");
  {
    sim::EngineConfig cfg;
    cfg.fiber_stack_kb = 128;
    Engine eng(cfg);
    EXPECT_EQ(eng.fiber_stack_bytes(), 128u * 1024u);
  }
  {
    ::setenv("NMX_FIBER_STACK_KB", "512", 1);
    sim::EngineConfig cfg;
    cfg.fiber_stack_kb = 128;
    Engine eng(cfg);  // the operator's env override outranks the config
    EXPECT_EQ(eng.fiber_stack_bytes(), 512u * 1024u);
  }
  {
    ::setenv("NMX_FIBER_STACK_KB", "1", 1);  // below the 64 KiB floor
    Engine eng;
    EXPECT_EQ(eng.fiber_stack_bytes(), 64u * 1024u);
  }
  ::unsetenv("NMX_FIBER_STACK_KB");
}

namespace overflow {

// Deep enough to blow any configured stack; the volatile pad defeats both
// inlining of the frame and tail-call collapse.
[[gnu::noinline]] int recurse(int n) {
  volatile char pad[1024];
  pad[0] = static_cast<char>(n);
  if (n <= 0) return pad[0];
  return recurse(n - 1) + pad[0];
}

}  // namespace overflow

TEST(FiberStackGuardDeathTest, OverflowFaultsLoudlyInsteadOfCorruptingANeighbor) {
  // The guard page under each fiber stack turns overflow into an immediate
  // fault. Without it, the runaway frames would scribble into whatever
  // mapping sits below the stack — typically another actor's pooled stack —
  // and the simulation would continue on corrupted state.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ::unsetenv("NMX_FIBER_STACK_KB");
  sim::EngineConfig cfg;
  cfg.fiber_stack_kb = 64;
  EXPECT_DEATH(
      {
        Engine eng(cfg);
        eng.spawn("overflow", [](sim::Actor&) { overflow::recurse(1 << 20); });
        eng.run();
      },
      "");
}

}  // namespace
}  // namespace nmx
