// Collective-engine conformance: every algorithm x {barrier, bcast,
// allreduce, alltoall} x a rank sweep (including non-powers-of-two) against
// closed-form oracles; byte-identical same-seed determinism per algorithm;
// and a chaos leg driving an allreduce through a timed rail death.
//
// Algorithms that cannot serve a shape (NIC offload on a vector payload,
// recursive-doubling alltoall on a non-power-of-two group) demote per the
// documented rules — conformance must hold regardless of which algorithm
// ends up running, so the sweep exercises the demotion matrix too.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "coll/coll.hpp"
#include "mpi/cluster.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_csv.hpp"

namespace nmx {
namespace {

coll::Config every_op(coll::Algo a) {
  coll::Config c;
  c.barrier = c.bcast = c.allreduce = c.alltoall = a;
  return c;
}

mpi::ClusterConfig coll_cfg(int procs, coll::Algo a) {
  mpi::ClusterConfig cfg;
  cfg.nodes = std::max(2, procs / 4);
  cfg.procs = procs;
  cfg.rails = {net::ib_profile(), net::mx_profile()};
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.coll = every_op(a);
  return cfg;
}

constexpr coll::Algo kAlgos[] = {coll::Algo::Auto,        coll::Algo::Binomial,
                                 coll::Algo::Kary,        coll::Algo::Ring,
                                 coll::Algo::RecDoubling, coll::Algo::NicOffload};

// ---------------------------------------------------------------------------
// Conformance sweep: algorithm x rank count, all four ops with oracles
// ---------------------------------------------------------------------------

class CollConformance
    : public ::testing::TestWithParam<std::tuple<coll::Algo, int>> {};

TEST_P(CollConformance, EveryOpMatchesItsOracle) {
  const auto [algo, procs] = GetParam();
  mpi::Cluster cluster(coll_cfg(procs, algo));
  const int P = procs;
  auto value = [](int rank, std::size_t i) {
    return static_cast<double>(rank + 1) * 0.25 + static_cast<double>(i);
  };

  cluster.run([&](mpi::Comm& c) {
    const int r = c.rank();

    // Barrier: no rank may leave before the last rank arrives. Rank r spends
    // r*5us computing first, so exit time must be >= the slowest entry.
    const double entry_of_last = c.wtime() + (P - 1) * 5e-6;
    c.compute(r * 5e-6);
    c.barrier();
    EXPECT_GE(c.wtime(), entry_of_last) << "rank " << r << " escaped the barrier";

    // Bcast from a middle root: vector payload (crosses eager) ...
    constexpr std::size_t kCount = 1500;
    const int root = P / 2;
    std::vector<double> bc(kCount);
    if (r == root) {
      for (std::size_t i = 0; i < kCount; ++i) bc[i] = value(root, i);
    }
    c.bcast(bc.data(), kCount * sizeof(double), root);
    for (std::size_t i = 0; i < kCount; ++i) ASSERT_DOUBLE_EQ(bc[i], value(root, i));
    // ... and the scalar shape the NIC offload serves natively.
    double one = r == root ? 41.5 : -1.0;
    c.bcast(&one, sizeof(one), root);
    EXPECT_DOUBLE_EQ(one, 41.5);

    // Allreduce: vector sum ...
    std::vector<double> mine(kCount), sum(kCount);
    for (std::size_t i = 0; i < kCount; ++i) mine[i] = value(r, i);
    c.allreduce(mine.data(), sum.data(), kCount, mpi::ReduceOp::Sum);
    for (std::size_t i = 0; i < kCount; ++i) {
      double expect = 0;
      for (int p = 0; p < P; ++p) expect += value(p, i);
      ASSERT_DOUBLE_EQ(sum[i], expect);
    }
    // ... scalar max (NIC combine path) and scalar sum.
    EXPECT_DOUBLE_EQ(c.allreduce_one(static_cast<double>(r), mpi::ReduceOp::Max),
                     static_cast<double>(P - 1));
    EXPECT_DOUBLE_EQ(c.allreduce_one(1.0 + r, mpi::ReduceOp::Sum),
                     static_cast<double>(P) * (P + 1) / 2);

    // Alltoall: every (src, dst) block carries a closed-form pattern.
    constexpr std::size_t kBlock = 40 * sizeof(double);
    std::vector<double> to(40 * static_cast<std::size_t>(P));
    std::vector<double> from(40 * static_cast<std::size_t>(P));
    for (int p = 0; p < P; ++p) {
      for (std::size_t i = 0; i < 40; ++i) {
        to[static_cast<std::size_t>(p) * 40 + i] = r * 1e6 + p * 1e3 + static_cast<double>(i);
      }
    }
    c.alltoall(to.data(), kBlock, from.data());
    for (int p = 0; p < P; ++p) {
      for (std::size_t i = 0; i < 40; ++i) {
        ASSERT_DOUBLE_EQ(from[static_cast<std::size_t>(p) * 40 + i],
                         p * 1e6 + r * 1e3 + static_cast<double>(i))
            << "block from " << p << " at rank " << r;
      }
    }

    c.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollConformance,
    ::testing::Combine(::testing::ValuesIn(kAlgos), ::testing::Values(3, 4, 8, 32, 64)),
    [](const auto& info) {
      return coll::to_string(std::get<0>(info.param)) + std::string("_p") +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Determinism: two same-seed runs of one algorithm must produce byte-identical
// metrics and trace artifacts (the simulator's promise extends to the engine).
// ---------------------------------------------------------------------------

struct Artifacts {
  std::string metrics;
  std::string trace;
};

Artifacts run_traced(coll::Algo algo) {
  mpi::ClusterConfig cfg = coll_cfg(8, algo);
  cfg.trace = true;
  mpi::Cluster cluster(cfg);
  cluster.run([&](mpi::Comm& c) {
    std::vector<double> v(2000, 1.0 + c.rank());
    c.bcast(v.data(), v.size() * sizeof(double), 0);
    c.allreduce(v.data(), v.data(), v.size(), mpi::ReduceOp::Sum);
    std::vector<double> from(static_cast<std::size_t>(c.size()) * 32);
    std::vector<double> to(from.size(), c.rank() * 1.5);
    c.alltoall(to.data(), 32 * sizeof(double), from.data());
    c.barrier();
  });
  obs::Recorder* rec = cluster.recorder();
  EXPECT_NE(rec, nullptr);
  std::ostringstream metrics, trace;
  obs::write_metrics_csv(*rec, metrics);
  obs::write_chrome_trace(*rec, trace);
  return {metrics.str(), trace.str()};
}

class CollDeterminism : public ::testing::TestWithParam<coll::Algo> {};

TEST_P(CollDeterminism, SameSeedRunsAreByteIdentical) {
  const Artifacts a = run_traced(GetParam());
  const Artifacts b = run_traced(GetParam());
  EXPECT_EQ(a.metrics, b.metrics) << "same-seed collective runs diverged (metrics)";
  EXPECT_EQ(a.trace, b.trace) << "same-seed collective runs diverged (trace)";
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, CollDeterminism, ::testing::ValuesIn(kAlgos),
                         [](const auto& info) { return std::string(coll::to_string(info.param)); });

// ---------------------------------------------------------------------------
// Chaos leg: an allreduce large enough to hold rendezvous chunks in flight
// runs through a timed rail death. The payload oracle must hold exactly, and
// the RdvFin retirement gate must leave zero orphaned grants.
// ---------------------------------------------------------------------------

class CollChaos : public ::testing::TestWithParam<coll::Algo> {};

TEST_P(CollChaos, AllreduceSurvivesTimedRailDeath) {
  mpi::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.procs = 4;
  cfg.rails = {net::ib_profile(), net::mx_profile()};
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.strategy = nmad::StrategyKind::SplitBalance;  // plans chunks onto both
  // rails at grant time, so the dying rail's queue is non-empty at the kill
  cfg.coll = every_op(GetParam());
  cfg.trace = true;
  cfg.faults.seed = 7;
  cfg.faults.rail_down.push_back({0.5e-3, /*rail=*/1});

  constexpr std::size_t kCount = 1u << 18;  // 2 MiB of doubles: rendezvous
  mpi::Cluster cluster(cfg);
  cluster.run([&](mpi::Comm& c) {
    std::vector<double> v(kCount), out(kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
      v[i] = static_cast<double>(c.rank() + 1) + static_cast<double>(i % 97);
    }
    c.allreduce(v.data(), out.data(), kCount, mpi::ReduceOp::Sum);
    const int P = c.size();
    for (std::size_t i = 0; i < kCount; ++i) {
      const double expect =
          static_cast<double>(P) * (P + 1) / 2 + static_cast<double>(P) * (i % 97);
      ASSERT_DOUBLE_EQ(out[i], expect) << "allreduce payload corrupted at " << i;
    }
    c.barrier();
  });

  obs::Recorder* rec = cluster.recorder();
  ASSERT_NE(rec, nullptr);
  std::uint64_t down = 0, orphans = 0, dead_tx = 0;
  for (const auto& [key, ctr] : rec->metrics().counters()) {
    if (key.first == "nmad.fault.rail_down") down += ctr.value();
    if (key.first == "nmad.rdv.orphan_cts") orphans += ctr.value();
    if (key.first == "net.fault.tx_on_dead_rail") dead_tx += ctr.value();
  }
  EXPECT_GE(down, 1u) << "the rail death was never injected";
  EXPECT_EQ(orphans, 0u) << "rail death orphaned a rendezvous grant";
  EXPECT_EQ(dead_tx, 0u) << "traffic was handed to the dead rail";
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, CollChaos,
                         ::testing::Values(coll::Algo::Binomial, coll::Algo::Ring,
                                           coll::Algo::RecDoubling),
                         [](const auto& info) { return std::string(coll::to_string(info.param)); });

}  // namespace
}  // namespace nmx
